/**
 * @file
 * StateWriter/StateReader round-trip and integrity-guard tests: every
 * scalar type survives a round trip bit-exactly, truncated buffers are
 * rejected, and expectU64 guards fire on mismatch.
 */

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "ckpt/state_io.h"

namespace confsim {
namespace {

TEST(StateIoTest, ScalarsRoundTrip)
{
    StateWriter out;
    out.putU8(0xAB);
    out.putU16(0xBEEF);
    out.putU32(0xDEADBEEFu);
    out.putU64(0x0123456789ABCDEFull);
    out.putBool(true);
    out.putBool(false);
    out.putString("hello, checkpoint");
    out.putString("");

    StateReader in(out.bytes());
    EXPECT_EQ(in.getU8(), 0xAB);
    EXPECT_EQ(in.getU16(), 0xBEEF);
    EXPECT_EQ(in.getU32(), 0xDEADBEEFu);
    EXPECT_EQ(in.getU64(), 0x0123456789ABCDEFull);
    EXPECT_TRUE(in.getBool());
    EXPECT_FALSE(in.getBool());
    EXPECT_EQ(in.getString(), "hello, checkpoint");
    EXPECT_EQ(in.getString(), "");
    EXPECT_TRUE(in.atEnd());
}

TEST(StateIoTest, DoublesRoundTripBitExactly)
{
    const double values[] = {0.0,
                             -0.0,
                             1.0 / 3.0,
                             std::numeric_limits<double>::min(),
                             std::numeric_limits<double>::max(),
                             std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN()};
    StateWriter out;
    for (const double v : values)
        out.putF64(v);
    StateReader in(out.bytes());
    for (const double v : values) {
        const double got = in.getF64();
        std::uint64_t want_bits = 0;
        std::uint64_t got_bits = 0;
        std::memcpy(&want_bits, &v, sizeof v);
        std::memcpy(&got_bits, &got, sizeof got);
        EXPECT_EQ(got_bits, want_bits);
    }
    EXPECT_TRUE(in.atEnd());
}

TEST(StateIoTest, LittleEndianEncoding)
{
    StateWriter out;
    out.putU32(0x01020304u);
    ASSERT_EQ(out.bytes().size(), 4u);
    EXPECT_EQ(out.bytes()[0], 0x04);
    EXPECT_EQ(out.bytes()[1], 0x03);
    EXPECT_EQ(out.bytes()[2], 0x02);
    EXPECT_EQ(out.bytes()[3], 0x01);
}

TEST(StateIoTest, TruncatedBufferThrows)
{
    StateWriter out;
    out.putU32(42);
    StateReader in(out.bytes());
    EXPECT_THROW(in.getU64(), std::runtime_error);
}

TEST(StateIoTest, ExpectU64GuardsMismatch)
{
    StateWriter out;
    out.putU64(16);
    {
        StateReader in(out.bytes());
        EXPECT_NO_THROW(in.expectU64(16, "table size"));
    }
    {
        StateReader in(out.bytes());
        EXPECT_THROW(in.expectU64(32, "table size"),
                     std::runtime_error);
    }
}

TEST(StateIoTest, TakeMovesBufferOut)
{
    StateWriter out;
    out.putU16(7);
    const std::vector<std::uint8_t> bytes = out.take();
    EXPECT_EQ(bytes.size(), 2u);
}

} // namespace
} // namespace confsim
