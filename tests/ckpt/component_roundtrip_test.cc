/**
 * @file
 * Save/load round-trip property tests for every checkpointable
 * component: train an instance, snapshot it, desynchronize a fresh
 * instance, restore the snapshot into it, and require bit-identical
 * behaviour on a continued input stream. This is the per-component
 * half of the bit-exact-resume guarantee; the whole-driver half lives
 * in tests/integration/checkpoint_resume_test.cc.
 */

#include <filesystem>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint_store.h"
#include "ckpt/state_io.h"
#include "confidence/associative_ct.h"
#include "confidence/composite_confidence.h"
#include "confidence/one_level.h"
#include "confidence/perceptron_margin.h"
#include "confidence/self_counter.h"
#include "confidence/static_confidence.h"
#include "confidence/tage_confidence.h"
#include "confidence/two_level.h"
#include "confidence/unaliased.h"
#include "predictor/agree.h"
#include "predictor/bimodal.h"
#include "predictor/gselect.h"
#include "predictor/gshare.h"
#include "predictor/hybrid.h"
#include "predictor/perceptron.h"
#include "predictor/static_predictor.h"
#include "predictor/tage.h"
#include "predictor/two_level.h"
#include "sim/driver.h"
#include "fault/fault_injection.h"
#include "trace/vector_trace_source.h"
#include "workload/workload_generator.h"

namespace confsim {
namespace {

/** Deterministic xorshift stream for synthesizing branch activity. */
class Xorshift
{
  public:
    explicit Xorshift(std::uint64_t seed)
        : state_(seed)
    {}

    std::uint64_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }

  private:
    std::uint64_t state_;
};

/** One synthetic dynamic branch: address, context, and resolution. */
struct Step
{
    std::uint64_t pc;
    BranchContext ctx;
    bool correct;
    bool taken;
};

Step
makeStep(Xorshift &rng)
{
    const std::uint64_t r = rng.next();
    Step step;
    // 256 static branches on a 4-byte grid, random 16-bit histories.
    step.pc = ((r >> 8) & 0xFF) * 4;
    step.ctx.pc = step.pc;
    step.ctx.bhr = (r >> 16) & 0xFFFF;
    step.ctx.bhrBits = 16;
    step.ctx.gcir = (r >> 32) & 0xFFFF;
    step.ctx.gcirBits = 16;
    step.correct = ((r >> 1) & 1) != 0;
    step.taken = (r & 1) != 0;
    return step;
}

// ---------------------------------------------------------------------
// Predictors

using PredictorFactory =
    std::function<std::unique_ptr<BranchPredictor>()>;

void
trainPredictor(BranchPredictor &predictor, std::uint64_t seed,
               int steps)
{
    Xorshift rng(seed);
    for (int i = 0; i < steps; ++i) {
        const Step step = makeStep(rng);
        (void)predictor.predict(step.pc);
        predictor.update(step.pc, step.taken);
    }
}

/**
 * The round-trip property: snapshot a trained instance A, restore it
 * into a desynchronized fresh instance B, and drive both through the
 * same continued stream asserting identical predictions throughout.
 */
void
expectPredictorRoundTrip(const PredictorFactory &make)
{
    const auto a = make();
    SCOPED_TRACE(a->name());
    ASSERT_TRUE(a->checkpointable())
        << a->name() << " is not checkpointable";
    trainPredictor(*a, 0xA11CE, 5000);

    StateWriter out;
    a->saveState(out);

    const auto b = make();
    trainPredictor(*b, 0xB0B, 1234); // desynchronize before restore

    StateReader in(out.bytes());
    b->loadState(in);
    EXPECT_TRUE(in.atEnd())
        << a->name() << " left " << in.remaining()
        << " unconsumed byte(s)";

    // serialize -> restore -> serialize is byte-identical.
    StateWriter again;
    b->saveState(again);
    EXPECT_EQ(again.bytes(), out.bytes())
        << a->name() << " re-serialization differs after restore";

    Xorshift rng(0xC0FFEE);
    for (int i = 0; i < 5000; ++i) {
        const Step step = makeStep(rng);
        ASSERT_EQ(a->predict(step.pc), b->predict(step.pc))
            << "diverged at step " << i;
        a->update(step.pc, step.taken);
        b->update(step.pc, step.taken);
    }
}

TEST(PredictorRoundTripTest, Bimodal)
{
    expectPredictorRoundTrip(
        [] { return std::make_unique<BimodalPredictor>(4096); });
}

TEST(PredictorRoundTripTest, Gshare)
{
    expectPredictorRoundTrip(
        [] { return std::make_unique<GsharePredictor>(4096, 12); });
}

TEST(PredictorRoundTripTest, Gselect)
{
    expectPredictorRoundTrip(
        [] { return std::make_unique<GselectPredictor>(4096, 6); });
}

TEST(PredictorRoundTripTest, Agree)
{
    expectPredictorRoundTrip(
        [] { return std::make_unique<AgreePredictor>(4096, 10); });
}

TEST(PredictorRoundTripTest, TwoLevelGAg)
{
    expectPredictorRoundTrip([] {
        return std::make_unique<TwoLevelPredictor>(TwoLevelScheme::GAg,
                                                   12);
    });
}

TEST(PredictorRoundTripTest, TwoLevelPAp)
{
    expectPredictorRoundTrip([] {
        return std::make_unique<TwoLevelPredictor>(TwoLevelScheme::PAp,
                                                   8, 512, 16);
    });
}

TEST(PredictorRoundTripTest, Hybrid)
{
    expectPredictorRoundTrip([] {
        return std::make_unique<HybridPredictor>(
            std::make_unique<GsharePredictor>(1024, 10),
            std::make_unique<BimodalPredictor>(1024), 1024);
    });
}

TEST(PredictorRoundTripTest, Tage)
{
    // Tagged tables, bimodal base, use_alt counter, aging clock and
    // global history all have to survive the trip for the provider
    // selection to stay bit-exact.
    expectPredictorRoundTrip([] {
        return std::make_unique<TagePredictor>(
            TageConfig::makeSmall());
    });
}

TEST(PredictorRoundTripTest, Perceptron)
{
    expectPredictorRoundTrip([] {
        return std::make_unique<PerceptronPredictor>(
            PerceptronConfig::makeSmall());
    });
}

TEST(PredictorRoundTripTest, Static)
{
    expectPredictorRoundTrip([] {
        return std::make_unique<StaticPredictor>(
            StaticPolicy::AlwaysTaken);
    });
}

// ---------------------------------------------------------------------
// Confidence estimators

using EstimatorFactory =
    std::function<std::unique_ptr<ConfidenceEstimator>()>;

void
trainEstimator(ConfidenceEstimator &estimator, std::uint64_t seed,
               int steps)
{
    Xorshift rng(seed);
    for (int i = 0; i < steps; ++i) {
        const Step step = makeStep(rng);
        (void)estimator.bucketOf(step.ctx);
        estimator.update(step.ctx, step.correct, step.taken);
    }
}

void
expectEstimatorRoundTrip(const EstimatorFactory &make)
{
    const auto a = make();
    SCOPED_TRACE(a->name());
    ASSERT_TRUE(a->checkpointable())
        << a->name() << " is not checkpointable";
    trainEstimator(*a, 0xA11CE, 5000);

    StateWriter out;
    a->saveState(out);

    const auto b = make();
    trainEstimator(*b, 0xB0B, 1234); // desynchronize before restore

    StateReader in(out.bytes());
    b->loadState(in);
    EXPECT_TRUE(in.atEnd())
        << a->name() << " left " << in.remaining()
        << " unconsumed byte(s)";

    // serialize -> restore -> serialize is byte-identical.
    StateWriter again;
    b->saveState(again);
    EXPECT_EQ(again.bytes(), out.bytes())
        << a->name() << " re-serialization differs after restore";

    Xorshift rng(0xC0FFEE);
    for (int i = 0; i < 5000; ++i) {
        const Step step = makeStep(rng);
        ASSERT_EQ(a->bucketOf(step.ctx), b->bucketOf(step.ctx))
            << "diverged at step " << i;
        a->update(step.ctx, step.correct, step.taken);
        b->update(step.ctx, step.correct, step.taken);
    }
}

TEST(EstimatorRoundTripTest, OneLevelCirRawPattern)
{
    expectEstimatorRoundTrip([] {
        return std::make_unique<OneLevelCirConfidence>(
            IndexScheme::PcXorBhr, 4096, 4, CirReduction::RawPattern);
    });
}

TEST(EstimatorRoundTripTest, OneLevelCirOnesCount)
{
    expectEstimatorRoundTrip([] {
        return std::make_unique<OneLevelCirConfidence>(
            IndexScheme::Pc, 1024, 8, CirReduction::OnesCount,
            CtInit::Zeros);
    });
}

TEST(EstimatorRoundTripTest, OneLevelCounterSaturating)
{
    expectEstimatorRoundTrip([] {
        return std::make_unique<OneLevelCounterConfidence>(
            IndexScheme::PcXorBhr, 4096, CounterKind::Saturating, 16,
            0);
    });
}

TEST(EstimatorRoundTripTest, OneLevelCounterResetting)
{
    expectEstimatorRoundTrip([] {
        return std::make_unique<OneLevelCounterConfidence>(
            IndexScheme::PcXorBhr, 4096, CounterKind::Resetting, 16,
            0);
    });
}

TEST(EstimatorRoundTripTest, OneLevelCounterHalfReset)
{
    expectEstimatorRoundTrip([] {
        return std::make_unique<OneLevelCounterConfidence>(
            IndexScheme::Pc, 1024, CounterKind::HalfReset, 16, 0);
    });
}

TEST(EstimatorRoundTripTest, TwoLevelCir)
{
    expectEstimatorRoundTrip([] {
        return std::make_unique<TwoLevelConfidence>(
            IndexScheme::PcXorBhr, 4096, 8, SecondLevelIndex::Cir, 4);
    });
}

TEST(EstimatorRoundTripTest, TwoLevelCirXorPcXorBhr)
{
    expectEstimatorRoundTrip([] {
        return std::make_unique<TwoLevelConfidence>(
            IndexScheme::Pc, 1024, 6,
            SecondLevelIndex::CirXorPcXorBhr, 5);
    });
}

TEST(EstimatorRoundTripTest, SelfCounter)
{
    expectEstimatorRoundTrip([] {
        return std::make_unique<SelfCounterConfidence>(IndexScheme::Pc,
                                                       4096, 3);
    });
}

TEST(EstimatorRoundTripTest, AssociativeCounter)
{
    // Tagged and associative: replacement state must survive the trip.
    expectEstimatorRoundTrip([] {
        return std::make_unique<AssociativeCounterConfidence>(
            IndexScheme::Pc, 256, 4, 8, CounterKind::Resetting, 16);
    });
}

TEST(EstimatorRoundTripTest, UnaliasedCounter)
{
    // Backed by an unordered per-PC map: serialization must impose a
    // deterministic order for the round trip to be bit-exact.
    expectEstimatorRoundTrip([] {
        return std::make_unique<UnaliasedCounterConfidence>(
            IndexScheme::Pc, CounterKind::Saturating, 16);
    });
}

TEST(EstimatorRoundTripTest, Composite)
{
    expectEstimatorRoundTrip([] {
        return std::make_unique<CompositeConfidence>(
            std::make_unique<OneLevelCounterConfidence>(
                IndexScheme::PcXorBhr, 1024, CounterKind::Saturating,
                16, 0),
            std::make_unique<SelfCounterConfidence>(IndexScheme::Pc,
                                                    1024, 3));
    });
}

TEST(EstimatorRoundTripTest, TageProvider)
{
    // The estimator is a full shadow TAGE replica; its state is the
    // predictor's state and must restore to the same bucket stream.
    expectEstimatorRoundTrip([] {
        return std::make_unique<TageProviderConfidence>(
            TageConfig::makeSmall());
    });
}

TEST(EstimatorRoundTripTest, PerceptronMargin)
{
    expectEstimatorRoundTrip([] {
        return std::make_unique<PerceptronMarginConfidence>(
            PerceptronConfig::makeSmall(), 8);
    });
}

TEST(EstimatorRoundTripTest, StaticProfile)
{
    expectEstimatorRoundTrip([] {
        return std::make_unique<StaticConfidence>(
            std::unordered_set<std::uint64_t>{0x10, 0x40, 0x100});
    });
}

// ---------------------------------------------------------------------
// Trace sources

TEST(TraceSourceRoundTripTest, WorkloadGeneratorResumesMidStream)
{
    const BenchmarkProfile profile = ibsProfile("groff");
    WorkloadGenerator a(profile, 40000);
    ASSERT_TRUE(a.checkpointable());

    BranchRecord record;
    for (int i = 0; i < 15000; ++i)
        ASSERT_TRUE(a.next(record));

    StateWriter out;
    a.saveState(out);

    WorkloadGenerator b(profile, 40000);
    for (int i = 0; i < 37; ++i) // desynchronize before restore
        ASSERT_TRUE(b.next(record));
    StateReader in(out.bytes());
    b.loadState(in);
    EXPECT_TRUE(in.atEnd());

    // Both must now emit the identical remainder of the trace.
    std::uint64_t remaining = 0;
    for (;;) {
        BranchRecord ra;
        BranchRecord rb;
        const bool more_a = a.next(ra);
        const bool more_b = b.next(rb);
        ASSERT_EQ(more_a, more_b);
        if (!more_a)
            break;
        ASSERT_EQ(ra, rb) << "diverged " << remaining
                          << " records after restore";
        ++remaining;
    }
    EXPECT_EQ(remaining, 25000u);
}

TEST(TraceSourceRoundTripTest, FaultInjectingSourceResumesMidStream)
{
    // The decorator carries an Rng plus drop/duplicate bookkeeping on
    // top of its inner source; all of it must survive the round trip.
    std::vector<BranchRecord> records;
    Xorshift rng(0x7EA5E);
    for (int i = 0; i < 2000; ++i) {
        const Step step = makeStep(rng);
        BranchRecord record;
        record.pc = step.pc;
        record.target = step.pc + 8;
        record.taken = step.taken;
        records.push_back(record);
    }
    FaultSpec spec;
    spec.dropProb = 0.1;
    spec.duplicateProb = 0.1;

    FaultInjectingTraceSource a(
        std::make_unique<VectorTraceSource>(records), spec);
    ASSERT_TRUE(a.checkpointable());
    BranchRecord record;
    for (int i = 0; i < 500; ++i)
        ASSERT_TRUE(a.next(record));

    StateWriter out;
    a.saveState(out);

    FaultInjectingTraceSource b(
        std::make_unique<VectorTraceSource>(records), spec);
    for (int i = 0; i < 7; ++i) // desynchronize before restore
        ASSERT_TRUE(b.next(record));
    StateReader in(out.bytes());
    b.loadState(in);
    EXPECT_TRUE(in.atEnd());

    for (;;) {
        BranchRecord ra;
        BranchRecord rb;
        const bool more_a = a.next(ra);
        const bool more_b = b.next(rb);
        ASSERT_EQ(more_a, more_b);
        if (!more_a)
            break;
        ASSERT_EQ(ra, rb);
    }
}

// ---------------------------------------------------------------------
// The driver's checkpointable gate

/** An estimator that never audited its state (checkpointable()==false). */
class OpaqueEstimator : public ConfidenceEstimator
{
  public:
    std::uint64_t
    bucketOf(const BranchContext &) const override
    {
        return 0;
    }
    void update(const BranchContext &, bool, bool) override {}
    std::uint64_t numBuckets() const override { return 1; }
    std::uint64_t storageBits() const override { return 0; }
    std::string name() const override { return "opaque"; }
    void reset() override {}
};

TEST(DriverCheckpointGateTest, RefusesNonCheckpointableEstimator)
{
    const std::string dir =
        ::testing::TempDir() + "/confsim_ckpt_gate";
    std::filesystem::remove_all(dir);

    GsharePredictor predictor(1024, 10);
    OpaqueEstimator opaque;
    std::vector<ConfidenceEstimator *> estimators{&opaque};
    DriverOptions options;
    SimulationDriver driver(predictor, estimators, options);
    CheckpointStore store(dir, "gate", 2);

    // A period with no store, and a non-checkpointable estimator with
    // a period, must both be rejected up front — never mid-run.
    EXPECT_THROW(driver.checkpointEvery(1000, nullptr),
                 std::runtime_error);
    EXPECT_THROW(driver.checkpointEvery(1000, &store),
                 std::runtime_error);
    // Disabling is always allowed.
    EXPECT_NO_THROW(driver.checkpointEvery(0, nullptr));

    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace confsim
