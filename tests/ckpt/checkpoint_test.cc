/**
 * @file
 * CSK1 container and CheckpointStore tests: serialize/deserialize
 * round-trip, whole-file and per-component CRC detection, lenient
 * inspection verdicts, component lookup guards, generation rotation
 * with pruning, fall-back-one-generation recovery, done-markers, and
 * store event hooks.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "ckpt/checkpoint_store.h"

namespace confsim {
namespace {

/** A trivial serializable payload for container tests. */
struct Blob
{
    std::uint64_t a = 0;
    double b = 0.0;

    void
    saveState(StateWriter &out) const
    {
        out.putU64(a);
        out.putF64(b);
    }

    void
    loadState(StateReader &in)
    {
        a = in.getU64();
        b = in.getF64();
    }
};

Checkpoint
makeCheckpoint()
{
    Checkpoint ckpt;
    ckpt.label = "groff";
    ckpt.watermark = 123456;
    ckpt.branches = 100000;
    Blob blob{42, 0.25};
    ckpt.addState("blob", 3, blob);
    ckpt.add("raw", 1, {0xDE, 0xAD, 0xBE, 0xEF});
    return ckpt;
}

TEST(CheckpointTest, SerializeDeserializeRoundTrip)
{
    const Checkpoint ckpt = makeCheckpoint();
    const auto bytes = ckpt.serialize();
    const Checkpoint back = Checkpoint::deserialize(bytes);
    EXPECT_EQ(back.label, "groff");
    EXPECT_EQ(back.watermark, 123456u);
    EXPECT_EQ(back.branches, 100000u);
    ASSERT_EQ(back.components().size(), 2u);

    Blob blob;
    back.restoreState("blob", 3, blob);
    EXPECT_EQ(blob.a, 42u);
    EXPECT_EQ(blob.b, 0.25);
    const CheckpointComponent *raw = back.find("raw");
    ASSERT_NE(raw, nullptr);
    EXPECT_EQ(raw->payload.size(), 4u);
}

TEST(CheckpointTest, MagicLeadsTheFile)
{
    const auto bytes = makeCheckpoint().serialize();
    ASSERT_GE(bytes.size(), 4u);
    EXPECT_EQ(bytes[0], 'C');
    EXPECT_EQ(bytes[1], 'S');
    EXPECT_EQ(bytes[2], 'K');
    EXPECT_EQ(bytes[3], '1');
}

TEST(CheckpointTest, AnySingleFlippedByteIsDetected)
{
    const auto bytes = makeCheckpoint().serialize();
    // Every byte position participates in the whole-file CRC (or is
    // the CRC itself), so flipping any one byte must be detected.
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        auto damaged = bytes;
        damaged[i] ^= 0x40;
        EXPECT_THROW(Checkpoint::deserialize(damaged),
                     std::runtime_error)
            << "undetected corruption at byte " << i;
    }
}

TEST(CheckpointTest, TruncationIsDetected)
{
    const auto bytes = makeCheckpoint().serialize();
    for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                   bytes.size() / 2,
                                   bytes.size() - 1}) {
        const std::vector<std::uint8_t> cut(bytes.begin(),
                                            bytes.begin() + keep);
        EXPECT_THROW(Checkpoint::deserialize(cut), std::runtime_error);
    }
}

TEST(CheckpointTest, RestoreGuardsNameVersionAndResidue)
{
    const Checkpoint back =
        Checkpoint::deserialize(makeCheckpoint().serialize());
    Blob blob;
    // Unknown component.
    EXPECT_THROW(back.restoreState("missing", 1, blob),
                 std::runtime_error);
    // Version mismatch.
    EXPECT_THROW(back.restoreState("blob", 2, blob),
                 std::runtime_error);
    // Payload not fully consumed ("raw" is 4 bytes, Blob reads 16).
    EXPECT_THROW(back.restoreState("raw", 1, blob),
                 std::runtime_error);
}

TEST(CheckpointTest, InspectReportsPerComponentDamage)
{
    const Checkpoint ckpt = makeCheckpoint();
    auto bytes = ckpt.serialize();

    const CheckpointInspection clean = inspectCheckpoint(bytes);
    EXPECT_TRUE(clean.valid());
    EXPECT_TRUE(clean.magicOk);
    EXPECT_TRUE(clean.versionOk);
    EXPECT_TRUE(clean.fileCrcOk);
    EXPECT_TRUE(clean.structureOk);
    EXPECT_EQ(clean.formatVersion, kCheckpointFormatVersion);
    EXPECT_EQ(clean.label, "groff");
    EXPECT_EQ(clean.watermark, 123456u);
    ASSERT_EQ(clean.components.size(), 2u);
    EXPECT_EQ(clean.components[0].name, "blob");
    EXPECT_EQ(clean.components[0].version, 3u);
    EXPECT_TRUE(clean.components[0].crcOk);
    EXPECT_TRUE(clean.components[1].crcOk);

    // Damage the second component's payload (the 0xDE byte): its CRC
    // fails, the first component's still passes, and the file CRC
    // flags the container.
    for (std::size_t i = 0; i + 4 < bytes.size(); ++i) {
        if (bytes[i] == 0xDE && bytes[i + 1] == 0xAD &&
            bytes[i + 2] == 0xBE && bytes[i + 3] == 0xEF) {
            bytes[i] ^= 0xFF;
            break;
        }
    }
    const CheckpointInspection damaged = inspectCheckpoint(bytes);
    EXPECT_FALSE(damaged.valid());
    EXPECT_FALSE(damaged.fileCrcOk);
    EXPECT_TRUE(damaged.structureOk);
    ASSERT_EQ(damaged.components.size(), 2u);
    EXPECT_TRUE(damaged.components[0].crcOk);
    EXPECT_FALSE(damaged.components[1].crcOk);
}

TEST(CheckpointTest, InspectToleratesGarbage)
{
    const std::vector<std::uint8_t> garbage = {'N', 'O', 'P', 'E', 1,
                                               2,   3,   4,   5};
    const CheckpointInspection info = inspectCheckpoint(garbage);
    EXPECT_FALSE(info.valid());
    EXPECT_FALSE(info.magicOk);
}

// ---------------------------------------------------------------------
// CheckpointStore

class CheckpointStoreTest : public ::testing::Test
{
  protected:
    std::string dir_;

    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "/confsim_ckpt_store_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        std::filesystem::remove_all(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    Checkpoint
    at(std::uint64_t branches)
    {
        Checkpoint ckpt = makeCheckpoint();
        ckpt.branches = branches;
        return ckpt;
    }

    /** Flip one byte in the middle of @p path. */
    static void
    corruptFile(const std::string &path)
    {
        std::fstream file(path, std::ios::binary | std::ios::in |
                                    std::ios::out);
        ASSERT_TRUE(file);
        file.seekg(0, std::ios::end);
        const auto size = file.tellg();
        const auto pos = static_cast<std::streamoff>(size) / 2;
        file.seekg(pos);
        char byte = 0;
        file.get(byte);
        file.seekp(pos);
        file.put(static_cast<char>(byte ^ 0x20));
    }
};

TEST_F(CheckpointStoreTest, GenerationsRotateAndPrune)
{
    CheckpointStore store(dir_, "groff", 2);
    store.write(at(100));
    store.write(at(200));
    store.write(at(300));

    const auto gens = store.generations();
    ASSERT_EQ(gens.size(), 2u); // pruned to keepGenerations
    EXPECT_EQ(gens[0], 3u);     // newest first
    EXPECT_EQ(gens[1], 2u);
    EXPECT_FALSE(std::filesystem::exists(store.generationPath(1)));

    const auto newest = store.loadLatestValid();
    ASSERT_TRUE(newest.has_value());
    EXPECT_EQ(newest->branches, 300u);
}

TEST_F(CheckpointStoreTest, CorruptNewestFallsBackOneGeneration)
{
    CheckpointStore store(dir_, "groff", 3);
    store.write(at(100));
    store.write(at(200));
    corruptFile(store.generationPath(2));

    std::vector<CheckpointStoreEvent> events;
    store.setEventHook([&events](const CheckpointStoreEvent &event) {
        events.push_back(event);
    });

    const auto loaded = store.loadLatestValid();
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->branches, 100u); // fell back to generation 1
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckpointStoreEvent::Kind::Corrupt);
    EXPECT_EQ(events[0].generation, 2u);
    EXPECT_FALSE(events[0].detail.empty());
}

TEST_F(CheckpointStoreTest, AllGenerationsCorruptYieldsNothing)
{
    CheckpointStore store(dir_, "groff", 2);
    store.write(at(100));
    store.write(at(200));
    corruptFile(store.generationPath(1));
    corruptFile(store.generationPath(2));
    EXPECT_FALSE(store.loadLatestValid().has_value());
}

TEST_F(CheckpointStoreTest, WriteEventsCarryGenerationAndSize)
{
    CheckpointStore store(dir_, "groff", 2);
    std::vector<CheckpointStoreEvent> events;
    store.setEventHook([&events](const CheckpointStoreEvent &event) {
        events.push_back(event);
    });
    store.write(at(500));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckpointStoreEvent::Kind::Written);
    EXPECT_EQ(events[0].generation, 1u);
    EXPECT_EQ(events[0].atBranch, 500u);
    EXPECT_GT(events[0].bytes, 0u);
    EXPECT_EQ(events[0].path, store.generationPath(1));
}

TEST_F(CheckpointStoreTest, NewStoreContinuesGenerationSequence)
{
    {
        CheckpointStore store(dir_, "groff", 2);
        store.write(at(100));
        store.write(at(200));
    }
    // A restarted process must not reuse generation numbers it could
    // then confuse with stale files.
    CheckpointStore reopened(dir_, "groff", 2);
    reopened.write(at(300));
    const auto gens = reopened.generations();
    ASSERT_GE(gens.size(), 1u);
    EXPECT_EQ(gens[0], 3u);
}

TEST_F(CheckpointStoreTest, DoneMarkerRoundTripsAndOutlivesPrune)
{
    CheckpointStore store(dir_, "groff", 2);
    store.write(at(100));
    store.writeCompleted(at(999));
    store.removeGenerations();

    EXPECT_TRUE(store.generations().empty());
    const auto done = store.loadCompleted();
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->branches, 999u);
}

TEST_F(CheckpointStoreTest, CorruptDoneMarkerIsRejected)
{
    CheckpointStore store(dir_, "groff", 2);
    store.writeCompleted(at(999));
    corruptFile(store.completedPath());
    EXPECT_FALSE(store.loadCompleted().has_value());
}

TEST_F(CheckpointStoreTest, LabelsAreIsolated)
{
    CheckpointStore a(dir_, "groff", 2);
    CheckpointStore b(dir_, "jpeg", 2);
    a.write(at(100));
    EXPECT_EQ(a.generations().size(), 1u);
    EXPECT_TRUE(b.generations().empty());
}

TEST_F(CheckpointStoreTest, NoTemporaryFilesSurviveWrites)
{
    CheckpointStore store(dir_, "groff", 2);
    store.write(at(100));
    store.writeCompleted(at(200));
    for (const auto &entry :
         std::filesystem::directory_iterator(dir_)) {
        EXPECT_NE(entry.path().extension(), ".tmp")
            << entry.path() << " left behind";
    }
}

} // namespace
} // namespace confsim
