/**
 * @file
 * Unit tests for the fault plane (fault/fault_plan.h), the structured
 * error taxonomy (util/error.h), and cooperative cancellation
 * (util/cancellation.h): grammar round-trips, one-shot per-scope
 * firing, action-to-category mapping, observer delivery, RAII
 * disarming, retryability contracts, and token chaining.
 */

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "util/cancellation.h"
#include "util/error.h"

namespace confsim {
namespace {

TEST(FaultPlanParse, EmptySpecYieldsEmptyPlan)
{
    EXPECT_TRUE(FaultPlan::parse("").empty());
    EXPECT_TRUE(FaultPlan::parse(";;").empty());
}

TEST(FaultPlanParse, FullGrammar)
{
    const FaultPlan plan = FaultPlan::parse(
        "decode:batch=100:throw;ckpt:write=3:enospc;"
        "shard:cfg=5:crash;sink:flush:fail;shard:cfg=1,batch=2:hang");
    ASSERT_EQ(plan.rules().size(), 5u);

    EXPECT_EQ(plan.rules()[0].site, FaultSite::kDecodeBatch);
    EXPECT_EQ(plan.rules()[0].at, 100u);
    EXPECT_EQ(plan.rules()[0].key, FaultRule::kAnyKey);
    EXPECT_EQ(plan.rules()[0].action, FaultAction::kThrow);

    EXPECT_EQ(plan.rules()[1].site, FaultSite::kCheckpointWrite);
    EXPECT_EQ(plan.rules()[1].at, 3u);
    EXPECT_EQ(plan.rules()[1].action, FaultAction::kEnospc);

    EXPECT_EQ(plan.rules()[2].site, FaultSite::kShardReplay);
    EXPECT_EQ(plan.rules()[2].key, 5u);
    EXPECT_EQ(plan.rules()[2].at, 1u); // batch defaults to the first
    EXPECT_EQ(plan.rules()[2].action, FaultAction::kCrash);

    EXPECT_EQ(plan.rules()[3].site, FaultSite::kSinkFlush);
    EXPECT_EQ(plan.rules()[3].at, 1u); // bare `flush` means the first
    EXPECT_EQ(plan.rules()[3].action, FaultAction::kFail);

    EXPECT_EQ(plan.rules()[4].site, FaultSite::kShardReplay);
    EXPECT_EQ(plan.rules()[4].key, 1u);
    EXPECT_EQ(plan.rules()[4].at, 2u);
    EXPECT_EQ(plan.rules()[4].action, FaultAction::kHang);
}

/** Expect parse() to raise Error{kConfig} mentioning the rule text. */
void
expectRejected(const std::string &spec)
{
    SCOPED_TRACE(spec);
    try {
        FaultPlan::parse(spec);
        FAIL() << "expected fatal(kConfig)";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kConfig);
        EXPECT_NE(std::string(e.what()).find("fault plan rule"),
                  std::string::npos);
    }
}

TEST(FaultPlanParse, RejectsBadGrammar)
{
    expectRejected("disk:write=1");          // unknown site
    expectRejected("ckpt:write=1:explode");  // unknown action
    expectRejected("ckpt:write=0");          // 0 is not a 1-based count
    expectRejected("shard:batch=2");         // shard requires cfg=N
    expectRejected("decode:records=5");      // unknown trigger key
    expectRejected("decode:batch=x");        // unparseable number
    expectRejected("ckpt");                  // no trigger at all
    expectRejected("ckpt:write=1:throw:extra");
}

TEST(FaultInjector, CountsPerScopeAndFiresOnce)
{
    ScopedFaultPlan scoped("ckpt:write=2:throw");
    FaultInjector &injector = FaultInjector::instance();
    EXPECT_TRUE(injector.armed());

    // Occurrence counting is per scope: interleaving stores does not
    // advance each other's counters.
    EXPECT_EQ(injector.fire(FaultSite::kCheckpointWrite, "a"),
              FaultAction::kNone);
    EXPECT_EQ(injector.fire(FaultSite::kCheckpointWrite, "b"),
              FaultAction::kNone);
    EXPECT_THROW(injector.fire(FaultSite::kCheckpointWrite, "a"),
                 Error);

    // One-shot: the rule is consumed, the injector disarms, and scope
    // "b" never reaches a pending trigger.
    EXPECT_FALSE(injector.armed());
    EXPECT_EQ(injector.fire(FaultSite::kCheckpointWrite, "b"),
              FaultAction::kNone);
    EXPECT_EQ(injector.injectedCount(), 1u);

    const std::vector<FaultHit> hits = injector.hits();
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].site, FaultSite::kCheckpointWrite);
    EXPECT_EQ(hits[0].scope, "a");
    EXPECT_EQ(hits[0].occurrence, 2u);
}

TEST(FaultInjector, ActionsMapOntoTaxonomy)
{
    {
        ScopedFaultPlan scoped("ckpt:write=1:enospc");
        try {
            FaultInjector::instance().fire(FaultSite::kCheckpointWrite,
                                           "s");
            FAIL() << "expected injected ENOSPC";
        } catch (const Error &e) {
            EXPECT_EQ(e.category(), ErrorCategory::kResource);
            EXPECT_TRUE(e.retryable());
            EXPECT_NE(std::string(e.what()).find("ENOSPC"),
                      std::string::npos);
        }
    }
    {
        ScopedFaultPlan scoped("shard:cfg=5:crash");
        FaultInjector &injector = FaultInjector::instance();
        // Key mismatch: config 4's first batch does not trigger a
        // cfg=5 rule (but does advance config 4's own counter).
        EXPECT_EQ(injector.fire(FaultSite::kShardReplay, "s", 4),
                  FaultAction::kNone);
        try {
            injector.fire(FaultSite::kShardReplay, "s", 5);
            FAIL() << "expected injected crash";
        } catch (const Error &e) {
            EXPECT_EQ(e.category(), ErrorCategory::kInternal);
            EXPECT_NE(std::string(e.what()).find("simulated crash"),
                      std::string::npos);
        }
    }
    {
        ScopedFaultPlan scoped("decode:batch=1:throw");
        try {
            FaultInjector::instance().fire(FaultSite::kDecodeBatch,
                                           "s");
            FAIL() << "expected injected decode fault";
        } catch (const Error &e) {
            EXPECT_EQ(e.category(), ErrorCategory::kTrace);
        }
    }
    {
        ScopedFaultPlan scoped("sink:flush:fail");
        try {
            FaultInjector::instance().fire(FaultSite::kSinkFlush, "s");
            FAIL() << "expected injected sink fault";
        } catch (const Error &e) {
            EXPECT_EQ(e.category(), ErrorCategory::kResource);
        }
    }
}

TEST(FaultInjector, HangIsReturnedNotThrown)
{
    ScopedFaultPlan scoped("decode:batch=1:hang");
    EXPECT_EQ(FaultInjector::instance().fire(FaultSite::kDecodeBatch,
                                             "s"),
              FaultAction::kHang);
}

TEST(FaultInjector, ObserverSeesEveryHit)
{
    std::vector<FaultHit> seen;
    ScopedFaultPlan scoped("shard:cfg=2,batch=3:throw",
                           [&seen](const FaultHit &hit) {
                               seen.push_back(hit);
                           });
    FaultInjector &injector = FaultInjector::instance();
    EXPECT_EQ(injector.fire(FaultSite::kShardReplay, "jpeg", 2),
              FaultAction::kNone);
    EXPECT_EQ(injector.fire(FaultSite::kShardReplay, "jpeg", 2),
              FaultAction::kNone);
    EXPECT_THROW(injector.fire(FaultSite::kShardReplay, "jpeg", 2),
                 Error);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].scope, "jpeg");
    EXPECT_EQ(seen[0].key, 2u);
    EXPECT_EQ(seen[0].occurrence, 3u);
    EXPECT_EQ(seen[0].action, FaultAction::kThrow);
}

TEST(FaultInjector, ScopedPlanDisarmsOnDestruction)
{
    {
        ScopedFaultPlan scoped("decode:batch=1:throw");
        EXPECT_TRUE(FaultInjector::instance().armed());
    }
    EXPECT_FALSE(FaultInjector::instance().armed());
    EXPECT_EQ(FaultInjector::instance().fire(FaultSite::kDecodeBatch,
                                             "s"),
              FaultAction::kNone);
}

TEST(ErrorTaxonomy, RetryableContract)
{
    EXPECT_TRUE(Error(ErrorCategory::kTrace, "x").retryable());
    EXPECT_TRUE(Error(ErrorCategory::kCheckpoint, "x").retryable());
    EXPECT_TRUE(Error(ErrorCategory::kResource, "x").retryable());
    EXPECT_TRUE(Error(ErrorCategory::kInternal, "x").retryable());
    EXPECT_FALSE(Error(ErrorCategory::kTimeout, "x").retryable());
    EXPECT_FALSE(Error(ErrorCategory::kConfig, "x").retryable());
    EXPECT_FALSE(Error(ErrorCategory::kCancelled, "x").retryable());
}

TEST(ErrorTaxonomy, NonErrorExceptionsStayRetryableInternal)
{
    const std::runtime_error legacy("pre-taxonomy failure");
    EXPECT_EQ(categoryOf(legacy), ErrorCategory::kInternal);
    EXPECT_TRUE(isRetryable(legacy));
}

TEST(ErrorTaxonomy, CategorizedFatalKeepsMessageText)
{
    try {
        fatal(ErrorCategory::kCheckpoint, "store exploded");
        FAIL() << "fatal() must throw";
    } catch (const Error &e) {
        EXPECT_STREQ(e.what(), "fatal: store exploded");
        EXPECT_EQ(e.category(), ErrorCategory::kCheckpoint);
    }
    // Pre-taxonomy catch sites that expect std::runtime_error still
    // see categorized errors.
    EXPECT_THROW(fatal(ErrorCategory::kConfig, "bad flag"),
                 std::runtime_error);
}

TEST(Cancellation, TokenChainsToParent)
{
    CancellationToken parent;
    CancellationToken child(&parent);
    EXPECT_FALSE(child.cancelled());
    EXPECT_NO_THROW(child.throwIfCancelled("work"));

    parent.cancel();
    EXPECT_TRUE(child.cancelled());
    EXPECT_FALSE(parent.cancelled() && false); // parent unaffected API
    try {
        child.throwIfCancelled("sweep shard");
        FAIL() << "expected Error{kCancelled}";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kCancelled);
        EXPECT_STREQ(e.what(), "sweep shard cancelled");
        EXPECT_FALSE(e.retryable());
    }
}

TEST(Cancellation, ChildCancelDoesNotPropagateUp)
{
    CancellationToken parent;
    CancellationToken child(&parent);
    child.cancel();
    EXPECT_TRUE(child.cancelled());
    EXPECT_FALSE(parent.cancelled());
}

TEST(Cancellation, InterruptibleSleepWakesEarly)
{
    CancellationToken token;
    token.cancel();
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(interruptibleSleepMs(&token, 10'000));
    const auto elapsed = std::chrono::duration_cast<
        std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                   start);
    EXPECT_LT(elapsed.count(), 1'000);

    // Uninterrupted sleeps complete (and a null token is allowed).
    EXPECT_TRUE(interruptibleSleepMs(nullptr, 1));
    CancellationToken calm;
    EXPECT_TRUE(interruptibleSleepMs(&calm, 1));
}

} // namespace
} // namespace confsim
