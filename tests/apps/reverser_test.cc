/** @file Unit tests for the branch prediction reverser. */

#include "apps/reverser.h"

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "predictor/gshare.h"
#include "predictor/static_predictor.h"
#include "trace/vector_trace_source.h"
#include "workload/workload_generator.h"

namespace confsim {
namespace {

TEST(ReverserTest, ReversesPersistentlyWrongBucket)
{
    // Always-taken predictor on an always-not-taken branch: the
    // resetting counter pins at 0 with a 100% misprediction rate, so
    // bucket 0 enters the reversal set and pass 2 fixes every miss
    // after warmup.
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source(std::vector<BranchRecord>(
        500, {0x1000, 0x2000, false, BranchType::Conditional}));
    const auto result = runReverser(source, pred, est, 0.5, 10.0);
    EXPECT_EQ(result.branches, 500u);
    EXPECT_EQ(result.baseMispredicts, 500u);
    ASSERT_FALSE(result.reversalBuckets.empty());
    EXPECT_EQ(result.reversalBuckets[0], 0u);
    EXPECT_EQ(result.reversedMispredicts, 0u);
    EXPECT_EQ(result.reversals, 500u);
}

TEST(ReverserTest, NoBucketAboveThresholdMeansNoChange)
{
    // Always-taken predictor on an always-taken branch: zero misses,
    // no bucket qualifies, pass 2 must be bit-identical to pass 1.
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source(std::vector<BranchRecord>(
        200, {0x1000, 0x2000, true, BranchType::Conditional}));
    const auto result = runReverser(source, pred, est);
    EXPECT_TRUE(result.reversalBuckets.empty());
    EXPECT_EQ(result.reversals, 0u);
    EXPECT_EQ(result.baseMispredicts, result.reversedMispredicts);
}

TEST(ReverserTest, MinRefsGuardSuppressesNoisyBuckets)
{
    // A single mispredicted execution would give a 100% rate but with
    // refs below the guard the bucket must not be reversed.
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    std::vector<BranchRecord> records(
        50, {0x1000, 0x2000, true, BranchType::Conditional});
    records.push_back({0x2000, 0x3000, false,
                       BranchType::Conditional});
    VectorTraceSource source(records);
    const auto result = runReverser(source, pred, est, 0.5, 100.0);
    EXPECT_TRUE(result.reversalBuckets.empty());
}

TEST(ReverserTest, PaperFindingStrongPredictorHasNoReversibleBucket)
{
    // With the paper's resetting-counter estimator over a gshare
    // predictor, even the least-confident bucket stays under 50%
    // mispredicted (Table 1 row 0: 37.6%), so the reverser finds
    // nothing to do. Our synthetic suite reproduces that conclusion.
    WorkloadGenerator gen(ibsProfile("groff"), 200000);
    GsharePredictor pred(4096, 12);
    OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 4096,
                                  CounterKind::Resetting, 16, 0);
    const auto result = runReverser(gen, pred, est, 0.5, 500.0);
    EXPECT_TRUE(result.reversalBuckets.empty());
    EXPECT_EQ(result.baseMispredicts, result.reversedMispredicts);
}

TEST(ReverserTest, PassesAreDeterministicallyIdentical)
{
    // Pass 2 without any reversal must reproduce pass 1's miss count
    // exactly (the training paths are identical).
    WorkloadGenerator gen(ibsProfile("jpeg"), 50000);
    GsharePredictor pred(4096, 12);
    OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 4096,
                                  CounterKind::Resetting, 16, 0);
    // Threshold 1.01 is unreachable: reversal set provably empty.
    const auto result = runReverser(gen, pred, est, 1.01, 1.0);
    EXPECT_EQ(result.baseMispredicts, result.reversedMispredicts);
}

} // namespace
} // namespace confsim
