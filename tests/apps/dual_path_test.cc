/** @file Unit tests for the selective dual-path execution model. */

#include "apps/dual_path.h"

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "predictor/gshare.h"
#include "predictor/static_predictor.h"
#include "trace/vector_trace_source.h"
#include "workload/workload_generator.h"

namespace confsim {
namespace {

BenchmarkProfile
testProfile()
{
    BenchmarkProfile p;
    p.name = "dp-test";
    p.targetBlocks = 150;
    p.seed = 91;
    p.mix = BehaviorMix{0.4, 0.1, 0.05, 0.3, 0.0, 0.1};
    return p;
}

TEST(DualPathTest, AllLowConfidenceForksEverywhereWithinResources)
{
    // With every bucket low-confidence and a 1-branch window, a fork
    // fires whenever the slot is free.
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source(std::vector<BranchRecord>(
        100, {0x1000, 0x2000, true, BranchType::Conditional}));
    DualPathConfig config;
    config.resolutionWindow = 1;
    const auto result = runDualPath(
        source, pred, est, std::vector<bool>(est.numBuckets(), true),
        config);
    EXPECT_EQ(result.branches, 100u);
    EXPECT_EQ(result.forkRequests, 100u);
    // With window 1, a fork is held for one subsequent branch, so at
    // most every other branch can fork.
    EXPECT_GE(result.forks, 50u);
}

TEST(DualPathTest, NoLowConfidenceNeverForks)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source(std::vector<BranchRecord>(
        100, {0x1000, 0x2000, false, BranchType::Conditional}));
    const auto result = runDualPath(
        source, pred, est, std::vector<bool>(est.numBuckets(), false));
    EXPECT_EQ(result.forks, 0u);
    EXPECT_EQ(result.coveredMispredicts, 0u);
    EXPECT_EQ(result.mispredicts, 100u);
    // Without forks the dual-path machine degenerates to baseline.
    EXPECT_DOUBLE_EQ(result.dualPathCycles, result.baselineCycles);
    EXPECT_DOUBLE_EQ(result.speedup(), 1.0);
}

TEST(DualPathTest, CoveredMispredictsPayReducedPenalty)
{
    // Deterministic single-branch trace: always-taken predictor on an
    // always-not-taken branch with everything low confidence and a
    // 1-wide window: every branch forks and every miss is covered.
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source(std::vector<BranchRecord>(
        50, {0x1000, 0x2000, false, BranchType::Conditional}));
    DualPathConfig config;
    config.resolutionWindow = 1;
    const auto result = runDualPath(
        source, pred, est, std::vector<bool>(est.numBuckets(), true),
        config);
    // Every miss resets the fork slot, so the fork is always free at
    // the next branch: full coverage.
    EXPECT_EQ(result.mispredicts, 50u);
    EXPECT_EQ(result.coveredMispredicts, 50u);
    EXPECT_DOUBLE_EQ(result.coverage(), 1.0);
    const double expected_baseline =
        50 * (config.baseCyclesPerBranch + config.mispredictPenalty);
    const double expected_dual =
        50 * (config.baseCyclesPerBranch + config.forkCost +
              config.forkedMispredictPenalty);
    EXPECT_DOUBLE_EQ(result.baselineCycles, expected_baseline);
    EXPECT_DOUBLE_EQ(result.dualPathCycles, expected_dual);
    EXPECT_GT(result.speedup(), 1.0);
}

TEST(DualPathTest, ConfidenceGuidedForkingBeatsBlindForkingOnBudget)
{
    // On a realistic workload, forking on the resetting counter's low
    // buckets must cover a disproportionate share of mispredictions
    // relative to the forks spent.
    WorkloadGenerator gen(testProfile(), 150000);
    GsharePredictor pred(4096, 12);
    OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 4096,
                                  CounterKind::Resetting, 16, 0);
    std::vector<bool> low(est.numBuckets(), false);
    for (std::uint64_t b = 0; b <= 3; ++b)
        low[b] = true; // fork only on the least-confident buckets
    const auto result = runDualPath(gen, pred, est, low);
    EXPECT_GT(result.mispredicts, 0u);
    // Coverage should exceed fork rate substantially (the whole point
    // of confidence-guided forking).
    EXPECT_GT(result.coverage(), result.forkRate() * 1.5);
    EXPECT_GT(result.speedup(), 1.0);
}

TEST(DualPathTest, MismatchedMaskIsFatal)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source({});
    EXPECT_THROW(
        runDualPath(source, pred, est, std::vector<bool>(2, true)),
        std::runtime_error);
}


TEST(DualPathTest, MoreForkSlotsIncreaseCoverage)
{
    // Eager-execution-style hardware: with more simultaneous forks,
    // coverage can only improve (same trigger policy).
    auto run = [](unsigned slots) {
        WorkloadGenerator gen(testProfile(), 100000);
        GsharePredictor pred(4096, 12);
        OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 4096,
                                      CounterKind::Resetting, 16, 0);
        std::vector<bool> low(est.numBuckets(), false);
        for (std::uint64_t b = 0; b <= 7; ++b)
            low[b] = true;
        DualPathConfig config;
        config.maxForks = slots;
        return runDualPath(gen, pred, est, low, config);
    };
    const auto one = run(1);
    const auto four = run(4);
    EXPECT_GE(four.coverage(), one.coverage());
    EXPECT_GE(four.forks, one.forks);
}

TEST(DualPathTest, ZeroForkSlotsIsFatal)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source({});
    DualPathConfig config;
    config.maxForks = 0;
    EXPECT_THROW(runDualPath(source, pred, est,
                             std::vector<bool>(est.numBuckets(), true),
                             config),
                 std::runtime_error);
}
} // namespace
} // namespace confsim
