/** @file Unit tests for the SMT fetch-gating model. */

#include "apps/smt_fetch.h"

#include <memory>

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "predictor/gshare.h"
#include "workload/workload_generator.h"

namespace confsim {
namespace {

BenchmarkProfile
threadProfile(std::uint64_t seed)
{
    BenchmarkProfile p;
    p.name = "smt-test";
    p.targetBlocks = 150;
    p.seed = seed;
    p.mix = BehaviorMix{0.35, 0.15, 0.05, 0.3, 0.0, 0.1};
    return p;
}

/** Bundled ownership for one model thread. */
struct ThreadBundle
{
    std::unique_ptr<WorkloadGenerator> source;
    std::unique_ptr<GsharePredictor> predictor;
    std::unique_ptr<OneLevelCounterConfidence> estimator;

    explicit ThreadBundle(std::uint64_t seed)
        : source(std::make_unique<WorkloadGenerator>(
              threadProfile(seed), 1'000'000)),
          predictor(std::make_unique<GsharePredictor>(4096, 12)),
          estimator(std::make_unique<OneLevelCounterConfidence>(
              IndexScheme::PcXorBhr, 4096, CounterKind::Resetting, 16,
              0))
    {}

    SmtThreadSpec
    spec(std::uint64_t low_threshold) const
    {
        SmtThreadSpec s;
        s.source = source.get();
        s.predictor = predictor.get();
        s.estimator = estimator.get();
        s.lowBuckets.assign(estimator->numBuckets(), false);
        for (std::uint64_t b = 0;
             b <= low_threshold && b < s.lowBuckets.size(); ++b) {
            s.lowBuckets[b] = true;
        }
        return s;
    }
};

SmtFetchResult
runModel(bool gate, std::uint64_t low_threshold,
         std::uint64_t slots = 200000)
{
    std::vector<ThreadBundle> bundles;
    bundles.reserve(4);
    for (std::uint64_t t = 0; t < 4; ++t)
        bundles.emplace_back(100 + t);
    std::vector<SmtThreadSpec> specs;
    for (const auto &bundle : bundles)
        specs.push_back(bundle.spec(low_threshold));
    SmtFetchConfig config;
    config.gateOnLowConfidence = gate;
    config.fetchSlots = slots;
    return runSmtFetch(specs, config);
}

TEST(SmtFetchTest, FetchesEverySlotWithoutGating)
{
    const auto result = runModel(false, 0, 50000);
    EXPECT_EQ(result.gatedSlots, 0u);
    EXPECT_EQ(result.fetchedInstructions, 50000u * 8u);
    EXPECT_GT(result.branches, 0u);
    EXPECT_GT(result.mispredicts, 0u);
    EXPECT_GT(result.wastedFraction(), 0.0);
}

TEST(SmtFetchTest, GatingReducesWastedFraction)
{
    const auto ungated = runModel(false, 8);
    const auto gated = runModel(true, 8);
    EXPECT_LT(gated.wastedFraction(), ungated.wastedFraction());
    EXPECT_GT(gated.gatedSlots, 0u);
}

TEST(SmtFetchTest, GatingImprovesUsefulThroughput)
{
    // The net win the application cares about: more useful
    // instructions per fetch slot. A mild threshold gates only the
    // least-confident predictions, trading a little fetch bandwidth
    // for much less wrong-path work.
    const std::uint64_t slots = 200000;
    const auto ungated = runModel(false, 2, slots);
    const auto gated = runModel(true, 2, slots);
    EXPECT_GT(gated.usefulPerSlot(slots),
              ungated.usefulPerSlot(slots) * 0.98);
}

TEST(SmtFetchTest, AggressiveGatingGatesMore)
{
    const auto mild = runModel(true, 2, 50000);
    const auto aggressive = runModel(true, 15, 50000);
    EXPECT_LT(mild.wastedFraction() + 0.0,
              1.0); // sanity
    EXPECT_GE(aggressive.gatedSlots, mild.gatedSlots);
}

TEST(SmtFetchTest, EmptyThreadListIsFatal)
{
    std::vector<SmtThreadSpec> none;
    EXPECT_THROW(runSmtFetch(none), std::runtime_error);
}

TEST(SmtFetchTest, IncompleteSpecIsFatal)
{
    std::vector<SmtThreadSpec> specs(1);
    EXPECT_THROW(runSmtFetch(specs), std::runtime_error);
}

TEST(SmtFetchTest, MismatchedMaskIsFatal)
{
    ThreadBundle bundle(7);
    auto spec = bundle.spec(8);
    spec.lowBuckets.resize(3);
    std::vector<SmtThreadSpec> specs = {spec};
    EXPECT_THROW(runSmtFetch(specs), std::runtime_error);
}

} // namespace
} // namespace confsim
