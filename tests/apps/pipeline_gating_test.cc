/** @file Unit tests for the pipeline-gating (speculation control)
 *  model. */

#include "apps/pipeline_gating.h"

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "predictor/gshare.h"
#include "predictor/static_predictor.h"
#include "trace/vector_trace_source.h"
#include "workload/workload_generator.h"

namespace confsim {
namespace {

std::vector<BranchRecord>
repeated(std::uint64_t pc, std::size_t n, bool taken)
{
    return std::vector<BranchRecord>(
        n, {pc, pc + 16, taken, BranchType::Conditional});
}

GatingConfig
smallConfig(bool gate, unsigned threshold = 0)
{
    GatingConfig config;
    config.fetchWidth = 4;
    config.resolveLatency = 8;
    config.instrsPerBranch = 3;
    config.enableGating = gate;
    config.gateThreshold = threshold;
    config.branches = 1'000'000; // run to trace exhaustion
    return config;
}

TEST(PipelineGatingTest, PerfectPredictionFetchesNoJunk)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source(repeated(0x1000, 200, true));
    const auto result = runPipelineGating(
        source, pred, est, std::vector<bool>(est.numBuckets(), false),
        smallConfig(false));
    EXPECT_EQ(result.branches, 200u);
    EXPECT_EQ(result.mispredicts, 0u);
    EXPECT_EQ(result.wrongPathInstructions, 0u);
    EXPECT_EQ(result.committedInstructions,
              result.fetchedInstructions);
    // 200 branches x (3 gap instrs + the branch) / 4-wide fetch, plus
    // the drain tail.
    EXPECT_GE(result.cycles, 200u);
    EXPECT_GT(result.ipc(), 3.0);
}

TEST(PipelineGatingTest, MispredictsCostWrongPathWork)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source(repeated(0x1000, 100, false));
    const auto result = runPipelineGating(
        source, pred, est, std::vector<bool>(est.numBuckets(), false),
        smallConfig(false));
    EXPECT_EQ(result.mispredicts, 100u);
    EXPECT_GT(result.wrongPathInstructions, 0u);
    EXPECT_GT(result.wastedFraction(), 0.3);
}

TEST(PipelineGatingTest, GatingOnAlwaysLowStopsWrongPathFetch)
{
    // Every prediction low-confidence + threshold 0: after fetching a
    // branch, fetch stalls until it resolves, so no wrong-path
    // instruction is ever fetched.
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source(repeated(0x1000, 100, false));
    const auto result = runPipelineGating(
        source, pred, est, std::vector<bool>(est.numBuckets(), true),
        smallConfig(true, 0));
    EXPECT_EQ(result.mispredicts, 100u);
    EXPECT_EQ(result.wrongPathInstructions, 0u);
    EXPECT_GT(result.gatedCycles, 0u);
}

TEST(PipelineGatingTest, GatingTradesCyclesForWaste)
{
    // On a realistic workload: gating must reduce the wasted fraction;
    // the IPC cost must be bounded (that's the entire selling point).
    const auto run = [](bool gate) {
        WorkloadGenerator gen(ibsProfile("groff"), 200000);
        GsharePredictor pred(4096, 12);
        OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 4096,
                                      CounterKind::Resetting, 16, 0);
        std::vector<bool> low(est.numBuckets(), false);
        for (std::uint64_t b = 0; b <= 7; ++b)
            low[b] = true;
        GatingConfig config;
        config.enableGating = gate;
        config.gateThreshold = 1;
        config.branches = 200000;
        return runPipelineGating(gen, pred, est, low, config);
    };
    const auto baseline = run(false);
    const auto gated = run(true);
    EXPECT_LT(gated.wastedFraction(), baseline.wastedFraction());
    EXPECT_GT(gated.gatedCycles, 0u);
    // Gating may cost some IPC but must stay within ~30% here.
    EXPECT_GT(gated.ipc(), baseline.ipc() * 0.70);
    // Committed work is identical — same trace either way.
    EXPECT_EQ(gated.committedInstructions,
              baseline.committedInstructions);
}

TEST(PipelineGatingTest, HighThresholdNeverGates)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source(repeated(0x1000, 100, true));
    GatingConfig config = smallConfig(true, 1000);
    const auto result = runPipelineGating(
        source, pred, est, std::vector<bool>(est.numBuckets(), true),
        config);
    EXPECT_EQ(result.gatedCycles, 0u);
}

TEST(PipelineGatingTest, BranchBudgetStopsEarly)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source(repeated(0x1000, 1000, true));
    GatingConfig config = smallConfig(false);
    config.branches = 50;
    const auto result = runPipelineGating(
        source, pred, est, std::vector<bool>(est.numBuckets(), false),
        config);
    EXPECT_EQ(result.branches, 50u);
}

TEST(PipelineGatingTest, MismatchedMaskIsFatal)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source({});
    EXPECT_THROW(runPipelineGating(source, pred, est,
                                   std::vector<bool>(2, true)),
                 std::runtime_error);
}

} // namespace
} // namespace confsim
