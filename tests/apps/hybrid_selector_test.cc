/** @file Unit tests for the confidence-driven hybrid selector. */

#include "apps/hybrid_selector.h"

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "predictor/bimodal.h"
#include "predictor/gshare.h"
#include "trace/vector_trace_source.h"
#include "workload/workload_generator.h"

namespace confsim {
namespace {

OneLevelCounterConfidence
makeEstimator(std::size_t entries = 1024)
{
    return OneLevelCounterConfidence(IndexScheme::Pc, entries,
                                     CounterKind::Resetting, 16, 0);
}

TEST(HybridSelectorTest, RequiresOrderedBuckets)
{
    BimodalPredictor p1(256);
    GsharePredictor p2(256, 8);
    OneLevelCounterConfidence c1 = makeEstimator();
    OneLevelCirConfidence raw(IndexScheme::Pc, 256, 8,
                              CirReduction::RawPattern);
    VectorTraceSource source({});
    EXPECT_THROW(runHybridSelector(source, p1, raw, p2, c1),
                 std::runtime_error);
}

TEST(HybridSelectorTest, CountsConstituentAndSelectedMisses)
{
    // Alternating outcomes: bimodal flounders, gshare learns. The
    // confidence selector must converge to gshare.
    BimodalPredictor p1(1024);
    GsharePredictor p2(1024, 10);
    auto c1 = makeEstimator();
    auto c2 = makeEstimator();

    std::vector<BranchRecord> records;
    for (int i = 0; i < 20000; ++i) {
        records.push_back(
            {0x1000, 0x2000, i % 2 == 0, BranchType::Conditional});
    }
    VectorTraceSource source(records);
    const auto result =
        runHybridSelector(source, p1, c1, p2, c2);
    EXPECT_EQ(result.branches, 20000u);
    // gshare way better than bimodal here.
    EXPECT_LT(result.secondMispredicts * 5, result.firstMispredicts);
    // Selection must be close to the better constituent.
    EXPECT_LT(result.selectedMispredicts,
              result.secondMispredicts + result.branches / 50);
    // Oracle is a lower bound on everything.
    EXPECT_LE(result.oracleMispredicts, result.selectedMispredicts);
    EXPECT_LE(result.oracleMispredicts, result.firstMispredicts);
}

TEST(HybridSelectorTest, SelectorBeatsWorseConstituentOnRealWorkload)
{
    WorkloadGenerator gen(ibsProfile("verilog"), 200000);
    BimodalPredictor p1(4096);
    GsharePredictor p2(4096, 12);
    auto c1 = makeEstimator(4096);
    auto c2 = makeEstimator(4096);
    const auto result = runHybridSelector(gen, p1, c1, p2, c2);
    EXPECT_LT(result.selectedMispredicts,
              std::max(result.firstMispredicts,
                       result.secondMispredicts));
    EXPECT_GT(result.disagreements, 0u);
}

TEST(HybridSelectorTest, EmptyTraceGivesZeros)
{
    BimodalPredictor p1(64);
    GsharePredictor p2(64, 4);
    auto c1 = makeEstimator(64);
    auto c2 = makeEstimator(64);
    VectorTraceSource source({});
    const auto result = runHybridSelector(source, p1, c1, p2, c2);
    EXPECT_EQ(result.branches, 0u);
    EXPECT_DOUBLE_EQ(result.rate(result.selectedMispredicts), 0.0);
}

} // namespace
} // namespace confsim
