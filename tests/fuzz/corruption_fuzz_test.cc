/**
 * @file
 * Seeded corruption fuzzing over the two on-disk container formats.
 *
 * CBT2 traces: every byte past the 4-byte magic is covered by an
 * integrity check — the header count by its CRC, each chunk header by
 * the marker / size-bound / record-count cross-checks, each payload
 * (and its CRC footer) by the per-chunk CRC32. So a single-byte flip
 * anywhere in that region must make a kStrict reader throw — never
 * crash, never silently deliver altered records. The magic itself is
 * excluded from fuzzing because a flip there can legitimately alias to
 * the legacy "CBT1" magic, reinterpreting the file as the unchecked
 * format rather than damaging this one.
 *
 * kSkipCorrupt is held to an exact accounting contract: a flip
 * confined to one chunk's payload+CRC region drops exactly that
 * chunk's records — droppedRecords() matches, the corruption hook
 * names that chunk, and every delivered record is bit-identical to
 * the pristine sequence with the damaged chunk excised.
 *
 * CSK1 checkpoints carry a whole-file CRC plus per-component CRCs, so
 * EVERY byte is covered: any single-byte flip must make
 * readCheckpointFile() throw, and the tolerant inspectCheckpoint()
 * parse must report the file invalid without throwing.
 *
 * All flips are drawn from the repo's deterministic Rng with fixed
 * seeds, so a pass is reproducible — there is no flaky tail.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "confidence/one_level.h"
#include "confidence/tage_confidence.h"
#include "predictor/gshare.h"
#include "predictor/tage.h"
#include "trace/trace_io.h"
#include "util/rng.h"
#include "workload/suite.h"

namespace confsim {
namespace {

constexpr std::uint64_t kTraceBranches = 10'000;

std::filesystem::path
tempPath(const std::string &name)
{
    return std::filesystem::path(::testing::TempDir()) / name;
}

std::vector<std::uint8_t>
slurp(const std::filesystem::path &path)
{
    return readFileBytes(path.string());
}

void
writeBytes(const std::filesystem::path &path,
           const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << path;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** Write the reference CBT2 trace once and return its bytes. */
const std::vector<std::uint8_t> &
pristineTraceBytes()
{
    static const std::vector<std::uint8_t> bytes = [] {
        const auto path = tempPath("fuzz_pristine.cbt2");
        const auto suite = BenchmarkSuite::ibsSmall(kTraceBranches);
        const auto source = suite.makeGenerator(0);
        writeTraceFile(*source, path.string(), TraceFormat::kCbt2);
        return readFileBytes(path.string());
    }();
    return bytes;
}

std::vector<BranchRecord>
drainFile(const std::filesystem::path &path, RecoveryMode mode)
{
    TraceFileReader reader(path.string(), mode);
    std::vector<BranchRecord> records;
    BranchRecord record;
    while (reader.next(record))
        records.push_back(record);
    return records;
}

std::uint32_t
readLe32(const std::vector<std::uint8_t> &bytes, std::size_t at)
{
    return static_cast<std::uint32_t>(bytes[at]) |
           static_cast<std::uint32_t>(bytes[at + 1]) << 8 |
           static_cast<std::uint32_t>(bytes[at + 2]) << 16 |
           static_cast<std::uint32_t>(bytes[at + 3]) << 24;
}

/** Byte extent of one chunk, parsed from the pristine layout. */
struct ChunkSpan
{
    std::size_t start = 0;       //!< offset of the 12-byte chunk header
    std::size_t payloadBegin = 0; //!< first payload byte
    std::size_t end = 0;          //!< one past the CRC footer
    std::uint64_t records = 0;    //!< record count from the header
};

/**
 * Walk the CBT2 container: 16-byte file header (magic + u64 count +
 * count CRC), then per chunk a 12-byte header (marker, payload size,
 * record count), the payload, and a 4-byte CRC footer.
 */
std::vector<ChunkSpan>
parseChunks(const std::vector<std::uint8_t> &bytes)
{
    constexpr std::size_t kFileHeader = 16;
    constexpr std::size_t kChunkHeader = 12;
    std::vector<ChunkSpan> chunks;
    std::size_t at = kFileHeader;
    while (at + kChunkHeader <= bytes.size()) {
        ChunkSpan span;
        span.start = at;
        const std::uint32_t payload_size = readLe32(bytes, at + 4);
        span.records = readLe32(bytes, at + 8);
        span.payloadBegin = at + kChunkHeader;
        span.end = span.payloadBegin + payload_size + 4;
        EXPECT_LE(span.end, bytes.size()) << "truncated pristine file?";
        chunks.push_back(span);
        at = span.end;
    }
    EXPECT_EQ(at, bytes.size());
    return chunks;
}

TEST(TraceCorruptionFuzz, StrictReaderAlwaysErrorsNeverCrashes)
{
    const std::vector<std::uint8_t> &pristine = pristineTraceBytes();
    ASSERT_GT(pristine.size(), 16u);
    const auto path = tempPath("fuzz_strict.cbt2");

    // Sanity: the unmutated file round-trips.
    writeBytes(path, pristine);
    EXPECT_EQ(drainFile(path, RecoveryMode::kStrict).size(),
              TraceFileReader(path.string()).recordCount());

    Rng rng(0xF00DF00Du);
    constexpr int kFlips = 200;
    for (int i = 0; i < kFlips; ++i) {
        // Skip the 4 magic bytes (see file comment); everything else
        // is fair game, header and chunk bytes alike.
        const std::size_t offset =
            4 + static_cast<std::size_t>(
                    rng.nextBelow(pristine.size() - 4));
        const auto mask =
            static_cast<std::uint8_t>(1 + rng.nextBelow(255));
        std::vector<std::uint8_t> mutated = pristine;
        mutated[offset] ^= mask;
        writeBytes(path, mutated);

        bool threw = false;
        try {
            drainFile(path, RecoveryMode::kStrict);
        } catch (const std::exception &) {
            threw = true;
        }
        EXPECT_TRUE(threw)
            << "flip #" << i << " at offset " << offset << " (mask 0x"
            << std::hex << int(mask) << std::dec
            << ") was silently accepted in kStrict mode";
    }
}

TEST(TraceCorruptionFuzz, SkipCorruptDropsExactlyTheDamagedChunk)
{
    const std::vector<std::uint8_t> &pristine = pristineTraceBytes();
    const std::vector<ChunkSpan> chunks = parseChunks(pristine);
    ASSERT_GE(chunks.size(), 2u)
        << "need multiple chunks to prove per-chunk isolation";

    const auto ref_path = tempPath("fuzz_skip_ref.cbt2");
    writeBytes(ref_path, pristine);
    const std::vector<BranchRecord> reference =
        drainFile(ref_path, RecoveryMode::kStrict);

    const auto path = tempPath("fuzz_skip.cbt2");
    Rng rng(0xBADC0FFEu);
    constexpr int kFlips = 48;
    for (int i = 0; i < kFlips; ++i) {
        // Choose a victim chunk, then flip a byte confined to its
        // payload+CRC region — the chunk header stays intact so the
        // reader can still resynchronize at the next chunk.
        const std::size_t victim =
            static_cast<std::size_t>(rng.nextBelow(chunks.size()));
        const ChunkSpan &span = chunks[victim];
        const std::size_t offset =
            span.payloadBegin +
            static_cast<std::size_t>(
                rng.nextBelow(span.end - span.payloadBegin));
        const auto mask =
            static_cast<std::uint8_t>(1 + rng.nextBelow(255));
        std::vector<std::uint8_t> mutated = pristine;
        mutated[offset] ^= mask;
        writeBytes(path, mutated);

        SCOPED_TRACE("flip #" + std::to_string(i) + " chunk " +
                     std::to_string(victim) + " offset " +
                     std::to_string(offset));
        TraceFileReader reader(path.string(),
                               RecoveryMode::kSkipCorrupt);
        std::uint64_t hook_calls = 0;
        std::uint64_t hook_chunk = 0;
        std::uint64_t hook_dropped = 0;
        reader.setCorruptionHook([&](const std::string &,
                                     std::uint64_t chunk_index,
                                     std::uint64_t dropped) {
            ++hook_calls;
            hook_chunk = chunk_index;
            hook_dropped = dropped;
        });
        std::vector<BranchRecord> delivered;
        BranchRecord record;
        while (reader.next(record))
            delivered.push_back(record);

        // Accounting: exactly the victim chunk's records vanished.
        EXPECT_EQ(reader.droppedRecords(), span.records);
        EXPECT_EQ(delivered.size(), reference.size() - span.records);
        EXPECT_EQ(hook_calls, 1u);
        EXPECT_EQ(hook_chunk, victim + 1); // hook reports 1-based
        EXPECT_EQ(hook_dropped, span.records);

        // Content: the survivors are bit-identical to the pristine
        // sequence with the damaged chunk excised.
        std::uint64_t chunk_first = 0;
        for (std::size_t c = 0; c < victim; ++c)
            chunk_first += chunks[c].records;
        bool match = true;
        for (std::size_t r = 0; r < delivered.size(); ++r) {
            const std::size_t ref_index =
                r < chunk_first
                    ? r
                    : r + static_cast<std::size_t>(span.records);
            if (!(delivered[r] == reference[ref_index])) {
                match = false;
                break;
            }
        }
        EXPECT_TRUE(match) << "a surviving record was altered";
    }
}

TEST(CheckpointCorruptionFuzz, AnySingleByteFlipIsRejected)
{
    // A real checkpoint: predictor + estimator components on top of
    // the header metadata, just like the driver writes.
    GsharePredictor predictor(1024, 10);
    OneLevelCounterConfidence estimator(IndexScheme::PcXorBhr, 512,
                                        CounterKind::Resetting, 16, 0);
    {
        const auto suite = BenchmarkSuite::ibsSmall(4'000);
        const auto source = suite.makeGenerator(1);
        BranchRecord record;
        BranchContext ctx;
        while (source->next(record)) {
            if (!record.isConditional())
                continue;
            ctx.pc = record.pc;
            const bool correct =
                predictor.predict(record.pc) == record.taken;
            estimator.bucketOf(ctx);
            estimator.update(ctx, correct, record.taken);
            predictor.update(record.pc, record.taken);
        }
    }
    Checkpoint ckpt;
    ckpt.label = "fuzz-checkpoint";
    ckpt.watermark = 4'321;
    ckpt.branches = 4'000;
    ckpt.addComponent("predictor:" + predictor.name(), predictor);
    ckpt.addComponent("estimator:" + estimator.name(), estimator);

    const auto path = tempPath("fuzz_ckpt.csk1");
    writeCheckpointFile(path.string(), ckpt);
    const std::vector<std::uint8_t> pristine = slurp(path);
    ASSERT_GT(pristine.size(), 32u);

    // Sanity: the unmutated file loads and matches.
    const Checkpoint reread = readCheckpointFile(path.string());
    EXPECT_EQ(reread.label, ckpt.label);
    EXPECT_EQ(reread.watermark, ckpt.watermark);
    EXPECT_EQ(reread.components().size(), ckpt.components().size());

    Rng rng(0xC5C5C5C5u);
    constexpr int kFlips = 200;
    for (int i = 0; i < kFlips; ++i) {
        // The whole-file CRC covers every byte, magic included.
        const std::size_t offset =
            static_cast<std::size_t>(rng.nextBelow(pristine.size()));
        const auto mask =
            static_cast<std::uint8_t>(1 + rng.nextBelow(255));
        std::vector<std::uint8_t> mutated = pristine;
        mutated[offset] ^= mask;
        writeBytes(path, mutated);

        SCOPED_TRACE("flip #" + std::to_string(i) + " at offset " +
                     std::to_string(offset));
        bool threw = false;
        try {
            readCheckpointFile(path.string());
        } catch (const std::exception &) {
            threw = true;
        }
        EXPECT_TRUE(threw) << "corrupt checkpoint was accepted";

        // The tolerant inspector must flag the damage, not throw.
        const CheckpointInspection report = inspectCheckpoint(mutated);
        EXPECT_FALSE(report.valid());
    }
}

TEST(CheckpointCorruptionFuzz, TageStateSingleByteFlipIsRejected)
{
    // Same contract over the richest component layout we serialize: a
    // trained TAGE predictor (tagged tables + bimodal + history +
    // use_alt counter) and its provider-confidence shadow replica.
    TagePredictor predictor(TageConfig::makeSmall());
    TageProviderConfidence estimator(TageConfig::makeSmall());
    {
        const auto suite = BenchmarkSuite::ibsSmall(4'000);
        const auto source = suite.makeGenerator(2);
        BranchRecord record;
        BranchContext ctx;
        while (source->next(record)) {
            if (!record.isConditional())
                continue;
            ctx.pc = record.pc;
            const bool correct =
                predictor.predict(record.pc) == record.taken;
            estimator.bucketOf(ctx);
            estimator.update(ctx, correct, record.taken);
            predictor.update(record.pc, record.taken);
        }
    }
    Checkpoint ckpt;
    ckpt.label = "fuzz-tage-checkpoint";
    ckpt.watermark = 8'765;
    ckpt.branches = 4'000;
    ckpt.addComponent("predictor:" + predictor.name(), predictor);
    ckpt.addComponent("estimator:" + estimator.name(), estimator);

    const auto path = tempPath("fuzz_tage_ckpt.csk1");
    writeCheckpointFile(path.string(), ckpt);
    const std::vector<std::uint8_t> pristine = slurp(path);
    ASSERT_GT(pristine.size(), 32u);

    // Sanity: the unmutated file restores into a replica that writes
    // byte-identical state back out.
    {
        const Checkpoint reread = readCheckpointFile(path.string());
        TagePredictor restored(TageConfig::makeSmall());
        reread.restoreComponent("predictor:" + predictor.name(),
                                restored);
        StateWriter original_state;
        StateWriter restored_state;
        predictor.saveState(original_state);
        restored.saveState(restored_state);
        EXPECT_EQ(restored_state.bytes(), original_state.bytes());
    }

    Rng rng(0x7A6E7A6Eu);
    constexpr int kFlips = 200;
    for (int i = 0; i < kFlips; ++i) {
        const std::size_t offset =
            static_cast<std::size_t>(rng.nextBelow(pristine.size()));
        const auto mask =
            static_cast<std::uint8_t>(1 + rng.nextBelow(255));
        std::vector<std::uint8_t> mutated = pristine;
        mutated[offset] ^= mask;
        writeBytes(path, mutated);

        SCOPED_TRACE("flip #" + std::to_string(i) + " at offset " +
                     std::to_string(offset));
        bool threw = false;
        try {
            readCheckpointFile(path.string());
        } catch (const std::exception &) {
            threw = true;
        }
        EXPECT_TRUE(threw) << "corrupt TAGE checkpoint was accepted";

        const CheckpointInspection report = inspectCheckpoint(mutated);
        EXPECT_FALSE(report.valid());
    }
}

} // namespace
} // namespace confsim
