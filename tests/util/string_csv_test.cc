/** @file Unit tests for string utilities and the CSV writer. */

#include "util/csv.h"
#include "util/string_utils.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(StringUtilsTest, FormatFixed)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(-0.5, 1), "-0.5");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
}

TEST(StringUtilsTest, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.896, 2), "89.60");
    EXPECT_EQ(formatPercent(1.0, 0), "100");
}

TEST(StringUtilsTest, Padding)
{
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(StringUtilsTest, SplitString)
{
    const auto parts = splitString("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilsTest, SplitEmptyString)
{
    const auto parts = splitString("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(StringUtilsTest, StartsWith)
{
    EXPECT_TRUE(startsWith("--option", "--"));
    EXPECT_FALSE(startsWith("-", "--"));
    EXPECT_TRUE(startsWith("abc", ""));
}

TEST(StringUtilsTest, ParseUnsigned)
{
    EXPECT_EQ(parseUnsigned("12345"), 12345u);
    EXPECT_EQ(parseUnsigned("0x10"), 16u);
    EXPECT_THROW(parseUnsigned("12abc"), std::runtime_error);
    EXPECT_THROW(parseUnsigned(""), std::runtime_error);
}

TEST(StringUtilsTest, ParseDouble)
{
    EXPECT_DOUBLE_EQ(parseDouble("2.5"), 2.5);
    EXPECT_THROW(parseDouble("xyz"), std::runtime_error);
}

class CsvWriterTest : public ::testing::Test
{
  protected:
    // Unique per test: the cases run concurrently under `ctest -j`,
    // and a shared path lets UnwritablePathIsFatal clobber a file
    // another case is reading.
    std::string path_ = ::testing::TempDir() + "/confsim_csv_" +
                        ::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name() +
                        ".csv";

    std::string
    readBack()
    {
        std::ifstream in(path_);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }

    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvWriterTest, WritesPlainRows)
{
    {
        CsvWriter csv(path_);
        csv.writeRow({"a", "b", "c"});
        csv.writeRow({"1", "2", "3"});
    }
    EXPECT_EQ(readBack(), "a,b,c\n1,2,3\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCells)
{
    {
        CsvWriter csv(path_);
        csv.writeRow({"with,comma", "with\"quote", "plain"});
    }
    EXPECT_EQ(readBack(), "\"with,comma\",\"with\"\"quote\",plain\n");
}

TEST_F(CsvWriterTest, NumericRows)
{
    {
        CsvWriter csv(path_);
        csv.writeNumericRow({1.5, 2.25}, 2);
    }
    EXPECT_EQ(readBack(), "1.50,2.25\n");
}

TEST_F(CsvWriterTest, UnwritablePathIsFatal)
{
    // The writer creates missing parent directories, so an unwritable
    // path needs a parent that is a regular file, not a missing one.
    std::ofstream(path_) << "not a directory";
    EXPECT_THROW(CsvWriter(path_ + "/x.csv"), std::runtime_error);
}

} // namespace
} // namespace confsim
