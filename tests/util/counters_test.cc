/** @file Unit tests for saturating and resetting counters. */

#include "util/resetting_counter.h"
#include "util/saturating_counter.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(SaturatingCounterTest, SaturatesHigh)
{
    SaturatingCounter c(3, 2);
    EXPECT_EQ(c.increment(), 3u);
    EXPECT_EQ(c.increment(), 3u);
    EXPECT_TRUE(c.isMax());
}

TEST(SaturatingCounterTest, SaturatesLow)
{
    SaturatingCounter c(3, 1);
    EXPECT_EQ(c.decrement(), 0u);
    EXPECT_EQ(c.decrement(), 0u);
    EXPECT_TRUE(c.isMin());
}

TEST(SaturatingCounterTest, InitialValueClamped)
{
    SaturatingCounter c(3, 99);
    EXPECT_EQ(c.value(), 3u);
}

TEST(SaturatingCounterTest, TwoBitPredictionThreshold)
{
    // Standard 2-bit scheme: 0, 1 -> not taken; 2, 3 -> taken.
    SaturatingCounter c(3, 0);
    EXPECT_FALSE(c.predictsTaken());
    c.increment();
    EXPECT_FALSE(c.predictsTaken());
    c.increment();
    EXPECT_TRUE(c.predictsTaken());
    c.increment();
    EXPECT_TRUE(c.predictsTaken());
}

TEST(SaturatingCounterTest, WeaklyTakenIsTaken)
{
    // "Weakly taken" init (value 2 of 0..3) must predict taken, as the
    // paper initializes its predictor tables.
    SaturatingCounter c(3, 2);
    EXPECT_TRUE(c.predictsTaken());
}

TEST(SaturatingCounterTest, SetClamps)
{
    SaturatingCounter c(16, 0);
    c.set(20);
    EXPECT_EQ(c.value(), 16u);
    c.set(5);
    EXPECT_EQ(c.value(), 5u);
}

TEST(SaturatingCounterTest, ZeroToSixteenRange)
{
    // The paper's confidence counters count 0..16.
    SaturatingCounter c(16, 0);
    for (int i = 0; i < 16; ++i)
        c.increment();
    EXPECT_TRUE(c.isMax());
    EXPECT_EQ(c.value(), 16u);
}

TEST(ResettingCounterTest, IncrementsOnCorrect)
{
    ResettingCounter c(16, 0);
    EXPECT_EQ(c.record(true), 1u);
    EXPECT_EQ(c.record(true), 2u);
}

TEST(ResettingCounterTest, ResetsToZeroOnIncorrect)
{
    ResettingCounter c(16, 0);
    for (int i = 0; i < 10; ++i)
        c.record(true);
    EXPECT_EQ(c.value(), 10u);
    EXPECT_EQ(c.record(false), 0u);
}

TEST(ResettingCounterTest, SaturatesAtMax)
{
    ResettingCounter c(16, 0);
    for (int i = 0; i < 40; ++i)
        c.record(true);
    EXPECT_EQ(c.value(), 16u);
    EXPECT_TRUE(c.isMax());
}

TEST(ResettingCounterTest, ValueCountsCorrectStreakExactly)
{
    // Value = min(correct predictions since last mispredict, max).
    ResettingCounter c(16, 16);
    c.record(false);
    for (int i = 1; i <= 5; ++i) {
        c.record(true);
        EXPECT_EQ(c.value(), static_cast<std::uint32_t>(i));
    }
}

TEST(ResettingCounterTest, PaperSequenceMatchesCirSemantics)
{
    // 3 correct, 1 incorrect, 4 correct (the paper's CIR example
    // 00010000): a resetting counter ends at 4 — the position of the
    // most recent misprediction.
    ResettingCounter c(16, 0);
    c.record(true);
    c.record(true);
    c.record(true);
    c.record(false);
    for (int i = 0; i < 4; ++i)
        c.record(true);
    EXPECT_EQ(c.value(), 4u);
}

} // namespace
} // namespace confsim
