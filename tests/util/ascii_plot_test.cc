/** @file Unit tests for util/ascii_plot.h. */

#include "util/ascii_plot.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace confsim {
namespace {

PlotOptions
smallOptions()
{
    PlotOptions options;
    options.width = 20;
    options.height = 10;
    return options;
}

TEST(AsciiPlotTest, RendersTitleAxesAndLegend)
{
    PlotOptions options = smallOptions();
    options.title = "My Title";
    options.xLabel = "X axis";
    AsciiPlot plot(options);
    plot.addSeries({"series-a", {{0, 0}, {100, 100}}});
    const std::string out = plot.render();
    EXPECT_NE(out.find("My Title"), std::string::npos);
    EXPECT_NE(out.find("X axis"), std::string::npos);
    EXPECT_NE(out.find("series-a"), std::string::npos);
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find("100"), std::string::npos);
}

TEST(AsciiPlotTest, DistinctGlyphsPerSeries)
{
    AsciiPlot plot(smallOptions());
    plot.addSeries({"a", {{0, 0}, {100, 50}}});
    plot.addSeries({"b", {{0, 100}, {100, 100}}});
    const std::string out = plot.render();
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlotTest, TooManySeriesIsFatal)
{
    AsciiPlot plot(smallOptions());
    for (int i = 0; i < 8; ++i)
        plot.addSeries({"s", {{0, 0}}});
    EXPECT_THROW(plot.addSeries({"s9", {{0, 0}}}), std::runtime_error);
}

TEST(AsciiPlotTest, TinyCanvasIsFatal)
{
    PlotOptions options;
    options.width = 2;
    options.height = 2;
    EXPECT_THROW(AsciiPlot{options}, std::runtime_error);
}

TEST(AsciiPlotTest, EmptyAxisRangeIsFatal)
{
    PlotOptions options = smallOptions();
    options.xMin = options.xMax = 5.0;
    EXPECT_THROW(AsciiPlot{options}, std::runtime_error);
}

TEST(AsciiPlotTest, OutOfRangePointsAreClipped)
{
    AsciiPlot plot(smallOptions());
    plot.addSeries({"a", {{-50, -50}, {150, 150}}});
    // Must not crash; points outside the canvas are simply dropped.
    const std::string out = plot.render();
    EXPECT_FALSE(out.empty());
}

TEST(AsciiPlotTest, ConnectsPointsWhenRequested)
{
    PlotOptions options = smallOptions();
    options.connectPoints = true;
    AsciiPlot plot(options);
    plot.addSeries({"a", {{0, 0}, {100, 100}}});
    const std::string connected = plot.render();

    PlotOptions sparse_options = smallOptions();
    sparse_options.connectPoints = false;
    AsciiPlot sparse(sparse_options);
    sparse.addSeries({"a", {{0, 0}, {100, 100}}});
    const std::string dots = sparse.render();

    const auto count = [](const std::string &s, char c) {
        return std::count(s.begin(), s.end(), c);
    };
    EXPECT_GT(count(connected, '*'), count(dots, '*'));
}

TEST(AsciiPlotTest, LongLabelsDoNotCrash)
{
    PlotOptions options = smallOptions();
    options.xLabel = std::string(300, 'x');
    AsciiPlot plot(options);
    plot.addSeries({"a", {{50, 50}}});
    EXPECT_FALSE(plot.render().empty());
}

} // namespace
} // namespace confsim
