/** @file Unit tests for streaming statistics and histograms. */

#include "util/running_stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace confsim {
namespace {

TEST(RunningStatsTest, EmptyIsZeroed)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSmallSample)
{
    RunningStats stats;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(v);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 4.0); // classic example
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
    EXPECT_NEAR(stats.sampleVariance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential)
{
    Rng rng(4242);
    RunningStats whole;
    RunningStats left;
    RunningStats right;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble() * 10.0 - 3.0;
        whole.add(v);
        (i % 2 == 0 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, ShardedMergeMatchesSingleStream)
{
    // The parallel-reduction pattern the telemetry layer relies on:
    // many per-worker accumulators folded pairwise in arbitrary order
    // must equal one sequential stream.
    constexpr int kShards = 7;
    Rng rng(99);
    RunningStats whole;
    RunningStats shards[kShards];
    for (int i = 0; i < 35000; ++i) {
        const double v = rng.nextDouble() * 1000.0 - 250.0;
        whole.add(v);
        shards[i % kShards].add(v);
    }
    RunningStats merged;
    for (int s = kShards - 1; s >= 0; --s)
        merged.merge(shards[s]);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptySides)
{
    RunningStats a;
    RunningStats b;
    b.add(3.0);
    a.merge(b); // empty <- nonempty
    EXPECT_EQ(a.count(), 1u);
    RunningStats c;
    a.merge(c); // nonempty <- empty
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(HistogramTest, BinningAndEdges)
{
    Histogram hist(0.0, 10.0, 5); // bins of width 2
    hist.add(0.0);   // bin 0 (inclusive low edge)
    hist.add(1.99);  // bin 0
    hist.add(2.0);   // bin 1
    hist.add(9.99);  // bin 4
    hist.add(10.0);  // overflow (exclusive upper bound)
    hist.add(-0.01); // underflow
    EXPECT_EQ(hist.binCount(0), 2u);
    EXPECT_EQ(hist.binCount(1), 1u);
    EXPECT_EQ(hist.binCount(4), 1u);
    EXPECT_EQ(hist.overflow(), 1u);
    EXPECT_EQ(hist.underflow(), 1u);
    EXPECT_EQ(hist.total(), 6u);
    EXPECT_DOUBLE_EQ(hist.binLow(1), 2.0);
}

TEST(HistogramTest, BadParametersAreFatal)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::runtime_error);
    EXPECT_THROW(Histogram(2.0, 1.0, 4), std::runtime_error);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::runtime_error);
}

} // namespace
} // namespace confsim
