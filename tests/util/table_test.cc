/** @file Unit tests for util/fixed_vector_table.h and util/status.h. */

#include "util/fixed_vector_table.h"
#include "util/status.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(FixedVectorTableTest, SizeAndIndexBits)
{
    FixedVectorTable<int> table(1024, 0, 8);
    EXPECT_EQ(table.size(), 1024u);
    EXPECT_EQ(table.indexBits(), 10u);
}

TEST(FixedVectorTableTest, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(FixedVectorTable<int>(1000, 0, 8), std::runtime_error);
}

TEST(FixedVectorTableTest, IndexWrapsToLowBits)
{
    FixedVectorTable<int> table(16, 0, 8);
    table[3] = 42;
    // Index 19 = 16 + 3 wraps to entry 3.
    EXPECT_EQ(table[19], 42);
    EXPECT_EQ(table[3 + 32], 42);
}

TEST(FixedVectorTableTest, StorageBitsAccounting)
{
    // The paper's CT: 2^16 entries x 16 bits = 1 Mbit.
    FixedVectorTable<int> table(1 << 16, 0, 16);
    EXPECT_EQ(table.storageBits(), std::uint64_t{1} << 20);
}

TEST(FixedVectorTableTest, FillResetsEveryEntry)
{
    FixedVectorTable<int> table(8, 7, 8);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(table[i], 7);
    table[5] = 1;
    table.fill(9);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(table[i], 9);
}

TEST(FixedVectorTableTest, IterationCoversAllEntries)
{
    FixedVectorTable<int> table(4, 1, 8);
    int sum = 0;
    for (int v : table)
        sum += v;
    EXPECT_EQ(sum, 4);
}

TEST(StatusTest, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("boom"), std::runtime_error);
    try {
        fatal("specific message");
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "fatal: specific message");
    }
}

} // namespace
} // namespace confsim
