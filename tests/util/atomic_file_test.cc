/**
 * @file
 * Tests for the crash-safe AtomicFileWriter: commit visibility,
 * abandon/destructor cleanup, overwrite atomicity, and parent-directory
 * creation.
 */

#include "util/atomic_file.h"

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace confsim {
namespace {

namespace fs = std::filesystem;

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

class AtomicFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) / info->name();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    fs::path dir_;
};

TEST_F(AtomicFileTest, NothingVisibleBeforeCommit)
{
    const fs::path target = dir_ / "out.txt";
    AtomicFileWriter writer(target.string());
    writer.stream() << "payload";
    writer.stream().flush();
    EXPECT_FALSE(fs::exists(target));
    EXPECT_TRUE(fs::exists(writer.tmpPath()));
    writer.commit();
    EXPECT_TRUE(writer.committed());
    EXPECT_TRUE(fs::exists(target));
    EXPECT_FALSE(fs::exists(writer.tmpPath()));
    EXPECT_EQ(slurp(target), "payload");
}

TEST_F(AtomicFileTest, DestructionWithoutCommitLeavesNoFiles)
{
    const fs::path target = dir_ / "out.txt";
    std::string tmp_path;
    {
        AtomicFileWriter writer(target.string());
        writer.stream() << "half-written";
        tmp_path = writer.tmpPath();
    }
    EXPECT_FALSE(fs::exists(target));
    EXPECT_FALSE(fs::exists(tmp_path));
}

TEST_F(AtomicFileTest, AbandonedOverwriteKeepsThePreviousFile)
{
    const fs::path target = dir_ / "out.txt";
    atomicWriteFile(target.string(), "generation 1");
    {
        AtomicFileWriter writer(target.string());
        writer.stream() << "generation 2, interrupted";
        writer.abandon();
    }
    EXPECT_EQ(slurp(target), "generation 1");
}

TEST_F(AtomicFileTest, CommittedOverwriteReplacesThePreviousFile)
{
    const fs::path target = dir_ / "out.txt";
    atomicWriteFile(target.string(), "generation 1");
    atomicWriteFile(target.string(), "generation 2");
    EXPECT_EQ(slurp(target), "generation 2");
    EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
}

TEST_F(AtomicFileTest, CreatesMissingParentDirectories)
{
    const fs::path target = dir_ / "a" / "b" / "out.jsonl";
    ASSERT_FALSE(fs::exists(target.parent_path()));
    atomicWriteFile(target.string(), "nested");
    EXPECT_EQ(slurp(target), "nested");
}

TEST_F(AtomicFileTest, CommitAfterAbandonThrows)
{
    const fs::path target = dir_ / "out.txt";
    AtomicFileWriter writer(target.string());
    writer.abandon();
    EXPECT_THROW(writer.commit(), std::runtime_error);
}

} // namespace
} // namespace confsim
