/** @file Unit tests for util/shift_register.h (the CIR / BHR). */

#include "util/shift_register.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(ShiftRegisterTest, PaperCirExample)
{
    // "if a prediction is correct 3 times, followed by an incorrect
    // prediction, followed by 4 correct predictions, then an 8-bit CIR
    // contains 00010000" (1 = incorrect, newest at LSB).
    ShiftRegister cir(8, 0);
    cir.shiftIn(false);
    cir.shiftIn(false);
    cir.shiftIn(false);
    cir.shiftIn(true);
    for (int i = 0; i < 4; ++i)
        cir.shiftIn(false);
    EXPECT_EQ(cir.value(), 0b00010000u);
}

TEST(ShiftRegisterTest, OldBitsFallOff)
{
    ShiftRegister reg(4, 0b1111);
    reg.shiftIn(false);
    EXPECT_EQ(reg.value(), 0b1110u);
    reg.shiftIn(false);
    reg.shiftIn(false);
    reg.shiftIn(false);
    EXPECT_EQ(reg.value(), 0u);
}

TEST(ShiftRegisterTest, InitialValueMasked)
{
    ShiftRegister reg(4, 0xFF);
    EXPECT_EQ(reg.value(), 0xFu);
}

TEST(ShiftRegisterTest, YoungestAndOldestBit)
{
    ShiftRegister reg(4, 0b1000);
    EXPECT_TRUE(reg.oldestBit());
    EXPECT_FALSE(reg.youngestBit());
    reg.shiftIn(true);
    EXPECT_TRUE(reg.youngestBit());
    EXPECT_FALSE(reg.oldestBit()); // the 1 moved to position 0 -> 1
}

TEST(ShiftRegisterTest, FillAndClear)
{
    ShiftRegister reg(16, 0);
    reg.fill();
    EXPECT_EQ(reg.value(), 0xFFFFu);
    EXPECT_EQ(reg.onesCount(), 16u);
    reg.clear();
    EXPECT_EQ(reg.value(), 0u);
    EXPECT_EQ(reg.onesCount(), 0u);
}

TEST(ShiftRegisterTest, LastBitInitialization)
{
    // Section 5.4: only the oldest bit set.
    ShiftRegister reg(16, 0);
    reg.setLastBitOnly();
    EXPECT_EQ(reg.value(), 0x8000u);
    EXPECT_TRUE(reg.oldestBit());
    EXPECT_EQ(reg.onesCount(), 1u);
    // After 16 shifts the lastbit marker is gone.
    for (int i = 0; i < 16; ++i)
        reg.shiftIn(false);
    EXPECT_EQ(reg.value(), 0u);
}

TEST(ShiftRegisterTest, FullWidth64)
{
    ShiftRegister reg(64, 0);
    reg.shiftIn(true);
    for (int i = 0; i < 63; ++i)
        reg.shiftIn(false);
    EXPECT_TRUE(reg.oldestBit());
    reg.shiftIn(false);
    EXPECT_EQ(reg.value(), 0u);
}

TEST(ShiftRegisterTest, SetMasksToWidth)
{
    ShiftRegister reg(8, 0);
    reg.set(0x1FF);
    EXPECT_EQ(reg.value(), 0xFFu);
}

} // namespace
} // namespace confsim
