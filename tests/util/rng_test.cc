/** @file Unit tests for util/rng.h. */

#include "util/rng.h"

#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDifferentStreams)
{
    Rng a(1);
    Rng b(2);
    int differences = 0;
    for (int i = 0; i < 64; ++i)
        differences += (a.next() != b.next());
    EXPECT_GT(differences, 60);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
    }
}

TEST(RngTest, NextDoubleMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBelowStaysInRangeAndHitsAllValues)
{
    Rng rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.nextBelow(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBelowOneIsAlwaysZero)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(rng.nextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive)
{
    Rng rng(19);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextInRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BernoulliExtremes)
{
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        ASSERT_FALSE(rng.nextBernoulli(0.0));
        ASSERT_TRUE(rng.nextBernoulli(1.0));
        ASSERT_FALSE(rng.nextBernoulli(-0.5));
        ASSERT_TRUE(rng.nextBernoulli(1.5));
    }
}

TEST(RngTest, BernoulliFrequencyMatchesProbability)
{
    Rng rng(29);
    const int n = 200000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GeometricMeanMatches)
{
    Rng rng(31);
    const double p = 0.25;
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    // Mean of failures-before-success geometric = (1 - p) / p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, GeometricWithPOneIsZero)
{
    Rng rng(37);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(rng.nextGeometric(1.0), 0u);
}

TEST(RngTest, SplitProducesDecorrelatedChild)
{
    Rng parent(41);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 4);
}

TEST(ZipfTest, ZeroSkewIsUniform)
{
    ZipfSampler zipf(4, 0.0);
    for (std::size_t r = 0; r < 4; ++r)
        EXPECT_NEAR(zipf.probabilityOf(r), 0.25, 1e-12);
}

TEST(ZipfTest, ProbabilitiesSumToOneAndDecrease)
{
    ZipfSampler zipf(100, 1.2);
    double total = 0.0;
    double prev = 1.0;
    for (std::size_t r = 0; r < zipf.size(); ++r) {
        const double p = zipf.probabilityOf(r);
        EXPECT_LE(p, prev + 1e-12);
        prev = p;
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RngStateTest, StateWordsRoundTripReproducesTheStream)
{
    Rng original(0xC5EED);
    for (int i = 0; i < 1000; ++i) // advance past the seed state
        (void)original.next();

    const auto snapshot = original.stateWords();
    std::vector<std::uint64_t> expected;
    for (int i = 0; i < 256; ++i)
        expected.push_back(original.next());

    Rng restored(1); // different seed; snapshot must fully override it
    restored.setStateWords(snapshot);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(restored.next(), expected[i]) << "draw " << i;
}

TEST(RngStateTest, AllZeroStateIsRejected)
{
    Rng rng(7);
    EXPECT_THROW(rng.setStateWords({0, 0, 0, 0}), std::runtime_error);
}

TEST(ZipfTest, SampleFrequenciesTrackProbabilities)
{
    ZipfSampler zipf(8, 1.0);
    Rng rng(43);
    std::vector<int> counts(8, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (std::size_t r = 0; r < 8; ++r) {
        EXPECT_NEAR(static_cast<double>(counts[r]) / n,
                    zipf.probabilityOf(r), 0.01);
    }
}

} // namespace
} // namespace confsim
