/** @file Unit tests for util/cli.h. */

#include "util/cli.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(CliTest, DefaultsWhenNotGiven)
{
    CliParser cli("test");
    cli.addOption("branches", "1000", "count");
    const char *argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, argv));
    EXPECT_EQ(cli.getUnsigned("branches"), 1000u);
}

TEST(CliTest, SpaceSeparatedValue)
{
    CliParser cli("test");
    cli.addOption("branches", "1000", "count");
    const char *argv[] = {"prog", "--branches", "5000"};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_EQ(cli.getUnsigned("branches"), 5000u);
}

TEST(CliTest, EqualsSeparatedValue)
{
    CliParser cli("test");
    cli.addOption("name", "x", "a name");
    const char *argv[] = {"prog", "--name=hello"};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_EQ(cli.getString("name"), "hello");
}

TEST(CliTest, FlagsDefaultFalse)
{
    CliParser cli("test");
    cli.addFlag("fast", "go fast");
    const char *argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, argv));
    EXPECT_FALSE(cli.getFlag("fast"));
}

TEST(CliTest, FlagsSetWhenGiven)
{
    CliParser cli("test");
    cli.addFlag("fast", "go fast");
    const char *argv[] = {"prog", "--fast"};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_TRUE(cli.getFlag("fast"));
}

TEST(CliTest, UnknownOptionIsFatal)
{
    CliParser cli("test");
    const char *argv[] = {"prog", "--bogus"};
    EXPECT_THROW(cli.parse(2, argv), std::runtime_error);
}

TEST(CliTest, MissingValueIsFatal)
{
    CliParser cli("test");
    cli.addOption("n", "1", "count");
    const char *argv[] = {"prog", "--n"};
    EXPECT_THROW(cli.parse(2, argv), std::runtime_error);
}

TEST(CliTest, FlagWithValueIsFatal)
{
    CliParser cli("test");
    cli.addFlag("fast", "go fast");
    const char *argv[] = {"prog", "--fast=1"};
    EXPECT_THROW(cli.parse(2, argv), std::runtime_error);
}

TEST(CliTest, PositionalArgumentsCollected)
{
    CliParser cli("test");
    cli.addOption("n", "1", "count");
    const char *argv[] = {"prog", "input.trc", "--n", "2", "out.csv"};
    ASSERT_TRUE(cli.parse(5, argv));
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "input.trc");
    EXPECT_EQ(cli.positional()[1], "out.csv");
}

TEST(CliTest, HelpReturnsFalse)
{
    CliParser cli("test");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliTest, GetDoubleParses)
{
    CliParser cli("test");
    cli.addOption("frac", "0.2", "fraction");
    const char *argv[] = {"prog", "--frac", "0.35"};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_DOUBLE_EQ(cli.getDouble("frac"), 0.35);
}

} // namespace
} // namespace confsim
