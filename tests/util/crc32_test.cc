/** @file Unit tests for the CRC-32 helper. */

#include "util/crc32.h"

#include <string>

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(Crc32Test, KnownCheckValue)
{
    // The standard CRC-32 check vector.
    const std::string data = "123456789";
    EXPECT_EQ(crc32(data.data(), data.size()), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsZero)
{
    EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
}

TEST(Crc32Test, IncrementalMatchesOneShot)
{
    const std::string data = "the quick brown fox jumps over "
                             "the lazy dog";
    Crc32 crc;
    crc.update(data.data(), 10);
    crc.update(data.data() + 10, data.size() - 10);
    EXPECT_EQ(crc.value(), crc32(data.data(), data.size()));
}

TEST(Crc32Test, ByteAtATimeMatchesOneShot)
{
    const std::string data = "confsim";
    Crc32 crc;
    for (const char c : data)
        crc.update(static_cast<std::uint8_t>(c));
    EXPECT_EQ(crc.value(), crc32(data.data(), data.size()));
}

TEST(Crc32Test, ResetRestoresEmptyState)
{
    Crc32 crc;
    crc.update("junk", 4);
    crc.reset();
    EXPECT_EQ(crc.value(), crc32(nullptr, 0));
}

TEST(Crc32Test, SingleBitFlipChangesValue)
{
    std::string data(256, '\0');
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<char>(i);
    const std::uint32_t clean = crc32(data.data(), data.size());
    for (std::size_t byte = 0; byte < data.size(); byte += 37) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string flipped = data;
            flipped[byte] ^= static_cast<char>(1 << bit);
            EXPECT_NE(crc32(flipped.data(), flipped.size()), clean)
                << "byte " << byte << " bit " << bit;
        }
    }
}

} // namespace
} // namespace confsim
