/** @file Unit tests for util/bits.h. */

#include "util/bits.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(BitsTest, MaskBasics)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 0x1u);
    EXPECT_EQ(mask(4), 0xFu);
    EXPECT_EQ(mask(16), 0xFFFFu);
    EXPECT_EQ(mask(63), 0x7FFFFFFFFFFFFFFFull);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(BitsTest, MaskBeyond64SaturatesToAllOnes)
{
    EXPECT_EQ(mask(65), ~std::uint64_t{0});
    EXPECT_EQ(mask(200), ~std::uint64_t{0});
}

TEST(BitsTest, BitsOfExtractsPaperPcField)
{
    // The paper's "bits 17 through 2 of the program counter".
    const std::uint64_t pc = 0x0003FFFCull;
    EXPECT_EQ(bitsOf(pc, 17, 2), 0xFFFFull);
    EXPECT_EQ(bitsOf(0x4ull, 17, 2), 0x1ull);
    EXPECT_EQ(bitsOf(0x40000ull, 17, 2), 0x0ull); // bit 18 excluded
}

TEST(BitsTest, BitsOfSingleBitField)
{
    EXPECT_EQ(bitsOf(0b1010, 3, 3), 1u);
    EXPECT_EQ(bitsOf(0b1010, 2, 2), 0u);
}

TEST(BitsTest, BitOf)
{
    EXPECT_EQ(bitOf(0b100, 2), 1u);
    EXPECT_EQ(bitOf(0b100, 1), 0u);
    EXPECT_EQ(bitOf(~std::uint64_t{0}, 63), 1u);
}

TEST(BitsTest, XorFoldPreservesLowBitsForNarrowValues)
{
    EXPECT_EQ(xorFold(0xAB, 8), 0xABu);
    EXPECT_EQ(xorFold(0xAB, 16), 0xABu);
}

TEST(BitsTest, XorFoldCombinesChunks)
{
    EXPECT_EQ(xorFold(0x1234'5678ull, 16), 0x1234ull ^ 0x5678ull);
    EXPECT_EQ(xorFold(0xFF00'00FFull, 8),
              0xFFull ^ 0x00ull ^ 0x00ull ^ 0xFFull);
}

TEST(BitsTest, XorFoldZeroWidthIsZero)
{
    EXPECT_EQ(xorFold(0x1234, 0), 0u);
}

TEST(BitsTest, Popcount)
{
    EXPECT_EQ(popcount(0), 0u);
    EXPECT_EQ(popcount(0xFFFF), 16u);
    EXPECT_EQ(popcount(0x8000'0000'0000'0001ull), 2u);
}

TEST(BitsTest, PowerOfTwoPredicates)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(65536));
    EXPECT_FALSE(isPowerOfTwo(65537));
    EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << 63));
}

TEST(BitsTest, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(65536), 16u);
    EXPECT_EQ(log2Exact(std::uint64_t{1} << 40), 40u);
}

TEST(BitsTest, CeilPowerOfTwo)
{
    EXPECT_EQ(ceilPowerOfTwo(0), 1u);
    EXPECT_EQ(ceilPowerOfTwo(1), 1u);
    EXPECT_EQ(ceilPowerOfTwo(2), 2u);
    EXPECT_EQ(ceilPowerOfTwo(3), 4u);
    EXPECT_EQ(ceilPowerOfTwo(17), 32u);   // a 0..16 counter needs 5 bits
    EXPECT_EQ(ceilPowerOfTwo(65536), 65536u);
}

} // namespace
} // namespace confsim
