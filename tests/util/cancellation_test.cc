/**
 * @file
 * CancellationToken semantics: parent->child chaining (the mechanism
 * the sweep service uses to fan one SIGTERM out to every job), child
 * isolation, concurrent cancel/poll safety, throwIfCancelled's error
 * category, and interruptibleSleepMs wakeup latency.
 */

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/cancellation.h"
#include "util/error.h"

namespace confsim {
namespace {

TEST(CancellationTokenTest, StartsUncancelled)
{
    CancellationToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_NO_THROW(token.throwIfCancelled("work"));
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    token.cancel(); // idempotent
    EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, ThrowIfCancelledRaisesCancelledCategory)
{
    CancellationToken token;
    token.cancel();
    try {
        token.throwIfCancelled("benchmark gcc");
        FAIL() << "expected Error{kCancelled}";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kCancelled);
        EXPECT_NE(std::string(e.what()).find("benchmark gcc"),
                  std::string::npos);
        EXPECT_FALSE(e.retryable());
    }
}

TEST(CancellationTokenTest, ChildObservesParentCancel)
{
    CancellationToken parent;
    CancellationToken child(&parent);
    EXPECT_FALSE(child.cancelled());
    parent.cancel();
    EXPECT_TRUE(child.cancelled());
}

TEST(CancellationTokenTest, ChildCancelNeverPropagatesUp)
{
    CancellationToken parent;
    CancellationToken child(&parent);
    CancellationToken sibling(&parent);
    child.cancel();
    EXPECT_TRUE(child.cancelled());
    EXPECT_FALSE(parent.cancelled());
    EXPECT_FALSE(sibling.cancelled());
}

TEST(CancellationTokenTest, GrandchildChainsThroughBothAncestors)
{
    CancellationToken root;
    CancellationToken service(&root);
    CancellationToken job(&service);
    EXPECT_FALSE(job.cancelled());
    root.cancel();
    EXPECT_TRUE(service.cancelled());
    EXPECT_TRUE(job.cancelled());
}

TEST(CancellationTokenTest, NullParentBehavesLikeRoot)
{
    CancellationToken token(nullptr);
    EXPECT_FALSE(token.cancelled());
    token.cancel();
    EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, ConcurrentCancelIsObservedByEveryChild)
{
    // One parent, many children polled from many threads while the
    // parent is cancelled concurrently: every poller must settle on
    // cancelled, with no torn reads (TSan-clean by construction).
    CancellationToken parent;
    constexpr int kChildren = 8;
    std::vector<std::unique_ptr<CancellationToken>> children;
    for (int i = 0; i < kChildren; ++i)
        children.push_back(
            std::make_unique<CancellationToken>(&parent));

    std::atomic<int> sawCancel{0};
    std::vector<std::thread> pollers;
    for (int i = 0; i < kChildren; ++i) {
        pollers.emplace_back([&, i] {
            const auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::seconds(10);
            while (!children[i]->cancelled()) {
                if (std::chrono::steady_clock::now() > deadline)
                    return;
            }
            ++sawCancel;
        });
    }
    std::thread canceller([&] { parent.cancel(); });
    canceller.join();
    for (std::thread &poller : pollers)
        poller.join();
    EXPECT_EQ(sawCancel.load(), kChildren);
}

TEST(CancellationTokenTest, InterruptibleSleepCompletesWhenUncancelled)
{
    CancellationToken token;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_TRUE(interruptibleSleepMs(&token, 30));
    const auto elapsed = std::chrono::duration_cast<
                             std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    EXPECT_GE(elapsed, 25);
    // Null token: plain bounded sleep.
    EXPECT_TRUE(interruptibleSleepMs(nullptr, 1));
}

TEST(CancellationTokenTest, InterruptibleSleepWakesPromptlyOnCancel)
{
    CancellationToken parent;
    CancellationToken child(&parent);
    std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        parent.cancel(); // wakes a child sleeper through the chain
    });
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(interruptibleSleepMs(&child, 10'000));
    const auto elapsed = std::chrono::duration_cast<
                             std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    canceller.join();
    // 10 ms poll slices: the 10 s sleep must end within a few slices
    // of the cancel, not anywhere near the full duration.
    EXPECT_LT(elapsed, 2'000);
}

TEST(CancellationTokenTest, SleepReturnsImmediatelyWhenPreCancelled)
{
    CancellationToken token;
    token.cancel();
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(interruptibleSleepMs(&token, 10'000));
    const auto elapsed = std::chrono::duration_cast<
                             std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    EXPECT_LT(elapsed, 1'000);
}

} // namespace
} // namespace confsim
