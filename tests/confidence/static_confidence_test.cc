/** @file Unit tests for the profile-based static confidence method. */

#include "confidence/static_confidence.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

StaticBranchProfile
sampleProfile()
{
    // Three static branches:
    //   0x100: 100 execs, 50 misses (rate 0.50)
    //   0x200: 300 execs, 30 misses (rate 0.10)
    //   0x300: 600 execs,  6 misses (rate 0.01)
    StaticBranchProfile profile;
    auto fill = [&profile](std::uint64_t pc, int execs, int misses) {
        for (int i = 0; i < execs; ++i)
            profile.record(pc, i < misses);
    };
    fill(0x100, 100, 50);
    fill(0x200, 300, 30);
    fill(0x300, 600, 6);
    return profile;
}

TEST(StaticProfileTest, Totals)
{
    const auto profile = sampleProfile();
    EXPECT_EQ(profile.size(), 3u);
    EXPECT_EQ(profile.totalExecutions(), 1000u);
    EXPECT_EQ(profile.totalMispredictions(), 86u);
}

TEST(StaticProfileTest, EntryRates)
{
    const auto profile = sampleProfile();
    EXPECT_DOUBLE_EQ(profile.entries().at(0x100).rate(), 0.5);
    EXPECT_DOUBLE_EQ(profile.entries().at(0x300).rate(), 0.01);
}

TEST(StaticProfileTest, LowSetByRefFractionTakesWorstFirst)
{
    const auto profile = sampleProfile();
    // 10% of 1000 execs: only the worst branch (0x100, 100 execs).
    const auto low10 = profile.lowSetByRefFraction(0.10);
    EXPECT_EQ(low10.size(), 1u);
    EXPECT_TRUE(low10.count(0x100));
    // 40%: worst two.
    const auto low40 = profile.lowSetByRefFraction(0.40);
    EXPECT_EQ(low40.size(), 2u);
    EXPECT_TRUE(low40.count(0x200));
    // 100%: everything.
    EXPECT_EQ(profile.lowSetByRefFraction(1.0).size(), 3u);
    // 0%: nothing.
    EXPECT_TRUE(profile.lowSetByRefFraction(0.0).empty());
}

TEST(StaticProfileTest, LowSetByRateThreshold)
{
    const auto profile = sampleProfile();
    const auto low = profile.lowSetByRateThreshold(0.10);
    EXPECT_EQ(low.size(), 2u);
    EXPECT_TRUE(low.count(0x100));
    EXPECT_TRUE(low.count(0x200));
    EXPECT_TRUE(profile.lowSetByRateThreshold(0.9).empty());
}

TEST(StaticProfileTest, EmptyProfileYieldsEmptySets)
{
    StaticBranchProfile profile;
    EXPECT_TRUE(profile.lowSetByRefFraction(0.5).empty());
    EXPECT_TRUE(profile.lowSetByRateThreshold(0.0).empty());
}

TEST(StaticConfidenceTest, BucketsByMembership)
{
    StaticConfidence est({0x100, 0x200});
    BranchContext ctx;
    ctx.pc = 0x100;
    EXPECT_EQ(est.bucketOf(ctx), 0u); // low confidence
    ctx.pc = 0x300;
    EXPECT_EQ(est.bucketOf(ctx), 1u); // high confidence
    EXPECT_EQ(est.numBuckets(), 2u);
    EXPECT_TRUE(est.bucketsAreOrdered());
}

TEST(StaticConfidenceTest, UpdateIsANoop)
{
    StaticConfidence est({0x100});
    BranchContext ctx;
    ctx.pc = 0x100;
    est.update(ctx, true, true);
    est.update(ctx, false, true);
    EXPECT_EQ(est.bucketOf(ctx), 0u);
}

TEST(StaticConfidenceTest, StorageCountsTagBits)
{
    StaticConfidence est({0x100, 0x200, 0x300});
    EXPECT_EQ(est.storageBits(), 3u);
}

TEST(StaticConfidenceTest, EndToEndFromProfile)
{
    const auto profile = sampleProfile();
    StaticConfidence est(profile.lowSetByRefFraction(0.40));
    BranchContext ctx;
    ctx.pc = 0x100;
    EXPECT_EQ(est.bucketOf(ctx), 0u);
    ctx.pc = 0x200;
    EXPECT_EQ(est.bucketOf(ctx), 0u);
    ctx.pc = 0x300;
    EXPECT_EQ(est.bucketOf(ctx), 1u);
}

} // namespace
} // namespace confsim
