/** @file Unit tests for the set-associative tagged confidence table. */

#include "confidence/associative_ct.h"

#include <gtest/gtest.h>

#include "confidence/unaliased.h"

namespace confsim {
namespace {

BranchContext
context(std::uint64_t pc, std::uint64_t bhr = 0)
{
    BranchContext ctx;
    ctx.pc = pc;
    ctx.bhr = bhr;
    return ctx;
}

TEST(AssociativeCtTest, UnseenContextReadsPowerOnValue)
{
    AssociativeCounterConfidence est(IndexScheme::Pc, 64, 2, 8,
                                     CounterKind::Resetting, 16);
    EXPECT_EQ(est.bucketOf(context(0x1000)), 0u);
    EXPECT_EQ(est.tagMisses(), 1u);
    EXPECT_EQ(est.lookups(), 1u);
}

TEST(AssociativeCtTest, HitTracksOwnCounter)
{
    AssociativeCounterConfidence est(IndexScheme::Pc, 64, 2, 8,
                                     CounterKind::Resetting, 16);
    const auto ctx = context(0x1000);
    for (int i = 0; i < 5; ++i)
        est.update(ctx, true, true);
    EXPECT_EQ(est.bucketOf(ctx), 5u);
    est.update(ctx, false, true);
    EXPECT_EQ(est.bucketOf(ctx), 0u);
}

TEST(AssociativeCtTest, TagsSeparateAliasingContexts)
{
    // Two PCs that collide in a direct-mapped table of 64 entries but
    // differ in tag bits: the tagged table keeps them apart (2 ways).
    AssociativeCounterConfidence tagged(IndexScheme::Pc, 64, 2, 8,
                                        CounterKind::Resetting, 16);
    OneLevelCounterConfidence direct(IndexScheme::Pc, 128,
                                     CounterKind::Resetting, 16, 0);
    // set bits = 6; contexts with identical low 6 index bits:
    const auto a = context(0x1000);          // index bits ...
    const auto b = context(0x1000 + (64 << 2)); // same set, diff tag
    for (int i = 0; i < 10; ++i) {
        tagged.update(a, true, true);
        direct.update(a, true, true);
    }
    // b mispredicts; in the tagged table this allocates a second way
    // and must NOT disturb a's streak.
    tagged.update(b, false, true);
    EXPECT_EQ(tagged.bucketOf(a), 10u);
    EXPECT_EQ(tagged.bucketOf(b), 0u);
}

TEST(AssociativeCtTest, LruEvictsOldestWay)
{
    // 1 set x 2 ways: touch three distinct tags; the first must be
    // evicted.
    AssociativeCounterConfidence est(IndexScheme::Pc, 1, 2, 8,
                                     CounterKind::Resetting, 16);
    const auto a = context(0x0 << 2);
    const auto b = context(0x1 << 2);
    const auto c = context(0x2 << 2);
    for (int i = 0; i < 4; ++i)
        est.update(a, true, true);
    est.update(b, true, true);
    est.update(c, true, true); // evicts a (LRU)
    // a restarts from the power-on value.
    EXPECT_EQ(est.bucketOf(a), 0u);
    // b and c retain their counters.
    EXPECT_EQ(est.bucketOf(b), 1u);
    EXPECT_EQ(est.bucketOf(c), 1u);
}

TEST(AssociativeCtTest, MatchesUnaliasedWhenCapacitySuffices)
{
    // With enough sets/ways for the working set, behaviour must match
    // the alias-free reference exactly.
    AssociativeCounterConfidence assoc(IndexScheme::Pc, 64, 4, 16,
                                       CounterKind::Resetting, 16);
    UnaliasedCounterConfidence ref(IndexScheme::Pc,
                                   CounterKind::Resetting, 16);
    for (int step = 0; step < 2000; ++step) {
        const auto ctx = context(0x4000 + 4 * (step % 24));
        const bool correct = (step % 5) != 0;
        ASSERT_EQ(assoc.bucketOf(ctx), ref.bucketOf(ctx)) << step;
        assoc.update(ctx, correct, true);
        ref.update(ctx, correct, true);
    }
}

TEST(AssociativeCtTest, StorageAccountsTagsValidAndLru)
{
    // 64 sets x 2 ways, 8-bit tags, 0..16 counters (5 bits), valid
    // bit, 1 LRU bit per entry.
    AssociativeCounterConfidence est(IndexScheme::Pc, 64, 2, 8,
                                     CounterKind::Resetting, 16);
    EXPECT_EQ(est.storageBits(), 128u * (5u + 8u + 1u + 1u));
    // Direct-mapped (1 way) needs no LRU bits.
    AssociativeCounterConfidence dm(IndexScheme::Pc, 64, 1, 8,
                                    CounterKind::Resetting, 16);
    EXPECT_EQ(dm.storageBits(), 64u * (5u + 8u + 1u));
}

TEST(AssociativeCtTest, ResetClearsEverything)
{
    AssociativeCounterConfidence est(IndexScheme::Pc, 64, 2, 8,
                                     CounterKind::Resetting, 16);
    est.update(context(0x1000), true, true);
    est.bucketOf(context(0x1000));
    est.reset();
    EXPECT_EQ(est.lookups(), 0u);
    EXPECT_EQ(est.tagMisses(), 0u);
    EXPECT_EQ(est.bucketOf(context(0x1000)), 0u);
    EXPECT_EQ(est.tagMisses(), 1u); // miss again after reset
}

TEST(AssociativeCtTest, BadGeometryIsFatal)
{
    EXPECT_THROW(AssociativeCounterConfidence(IndexScheme::Pc, 63, 2,
                                              8,
                                              CounterKind::Resetting),
                 std::runtime_error);
    EXPECT_THROW(AssociativeCounterConfidence(IndexScheme::Pc, 64, 0,
                                              8,
                                              CounterKind::Resetting),
                 std::runtime_error);
    EXPECT_THROW(AssociativeCounterConfidence(IndexScheme::Pc, 64, 2,
                                              0,
                                              CounterKind::Resetting),
                 std::runtime_error);
    EXPECT_THROW(AssociativeCounterConfidence(
                     IndexScheme::Pc, std::size_t{1} << 20, 2, 16,
                     CounterKind::Resetting),
                 std::runtime_error);
}

TEST(AssociativeCtTest, NameEncodesGeometry)
{
    AssociativeCounterConfidence est(IndexScheme::PcXorBhr, 256, 4, 6,
                                     CounterKind::Resetting, 16);
    EXPECT_EQ(est.name(), "assoc-PCxorBHR-reset16-256sx4w-t6");
}

} // namespace
} // namespace confsim
