/** @file Unit tests for the interference probe. */

#include "confidence/interference_probe.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

BranchContext
context(std::uint64_t pc, std::uint64_t bhr = 0)
{
    BranchContext ctx;
    ctx.pc = pc;
    ctx.bhr = bhr;
    return ctx;
}

TEST(InterferenceProbeTest, DistinctEntriesAreUnshared)
{
    InterferenceProbe probe(IndexScheme::Pc, 8);
    probe.observe(context(0x1000));
    probe.observe(context(0x1004));
    probe.observe(context(0x1000));
    const auto report = probe.report();
    EXPECT_EQ(report.accesses, 3u);
    EXPECT_EQ(report.entriesTouched, 2u);
    EXPECT_EQ(report.sharedEntries, 0u);
    EXPECT_DOUBLE_EQ(report.sharedEntryFraction(), 0.0);
    EXPECT_DOUBLE_EQ(report.averageContextsPerEntry, 1.0);
}

TEST(InterferenceProbeTest, AliasingContextsAreDetected)
{
    // 8-bit index on PC: pc and pc + (256 << 2) share an entry but
    // differ in the 32-bit context id.
    InterferenceProbe probe(IndexScheme::Pc, 8);
    probe.observe(context(0x1000));
    probe.observe(context(0x1000 + (256 << 2)));
    probe.observe(context(0x1000));
    const auto report = probe.report();
    EXPECT_EQ(report.entriesTouched, 1u);
    EXPECT_EQ(report.sharedEntries, 1u);
    EXPECT_EQ(report.sharedAccesses, 3u);
    EXPECT_DOUBLE_EQ(report.sharedAccessFraction(), 1.0);
    EXPECT_DOUBLE_EQ(report.averageContextsPerEntry, 2.0);
}

TEST(InterferenceProbeTest, HistorySpreadsContextsUnderXorIndexing)
{
    // The same PC with different histories creates distinct contexts;
    // under PC^BHR indexing with a narrow table some must collide.
    InterferenceProbe probe(IndexScheme::PcXorBhr, 2);
    for (std::uint64_t h = 0; h < 16; ++h)
        probe.observe(context(0x1000, h));
    const auto report = probe.report();
    EXPECT_EQ(report.accesses, 16u);
    EXPECT_LE(report.entriesTouched, 4u);
    EXPECT_GT(report.sharedEntries, 0u);
}

TEST(InterferenceProbeTest, TrackingCapBoundsMemoryNotCounts)
{
    InterferenceProbe probe(IndexScheme::Pc, 1, 2);
    // Many distinct contexts, all colliding into <= 2 entries.
    for (std::uint64_t i = 0; i < 100; ++i)
        probe.observe(context(0x1000 + (i << 4)));
    const auto report = probe.report();
    EXPECT_EQ(report.accesses, 100u);
    // Per-entry context lists are capped at 2.
    EXPECT_LE(report.averageContextsPerEntry, 2.0);
    EXPECT_GT(report.sharedEntries, 0u);
}

TEST(InterferenceProbeTest, ResetForgets)
{
    InterferenceProbe probe(IndexScheme::Pc, 8);
    probe.observe(context(0x1000));
    probe.reset();
    const auto report = probe.report();
    EXPECT_EQ(report.accesses, 0u);
    EXPECT_EQ(report.entriesTouched, 0u);
}

TEST(InterferenceProbeTest, BadParametersAreFatal)
{
    EXPECT_THROW(InterferenceProbe(IndexScheme::Pc, 0),
                 std::runtime_error);
    EXPECT_THROW(InterferenceProbe(IndexScheme::Pc, 40),
                 std::runtime_error);
    EXPECT_THROW(InterferenceProbe(IndexScheme::Pc, 8, 1),
                 std::runtime_error);
}

} // namespace
} // namespace confsim
