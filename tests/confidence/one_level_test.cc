/** @file Unit tests for one-level confidence estimators. */

#include "confidence/one_level.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

BranchContext
context(std::uint64_t pc, std::uint64_t bhr = 0)
{
    BranchContext ctx;
    ctx.pc = pc;
    ctx.bhr = bhr;
    return ctx;
}

TEST(OneLevelCirTest, RawBucketIsTheCir)
{
    OneLevelCirConfidence est(IndexScheme::Pc, 256, 8,
                              CirReduction::RawPattern, CtInit::Zeros);
    const auto ctx = context(0x1000);
    EXPECT_EQ(est.bucketOf(ctx), 0u);
    est.update(ctx, false, true); // incorrect
    EXPECT_EQ(est.bucketOf(ctx), 1u);
    est.update(ctx, true, true);
    EXPECT_EQ(est.bucketOf(ctx), 2u);
}

TEST(OneLevelCirTest, OnesInitReadsAllOnes)
{
    OneLevelCirConfidence est(IndexScheme::Pc, 256, 16,
                              CirReduction::RawPattern, CtInit::Ones);
    EXPECT_EQ(est.bucketOf(context(0x1000)), 0xFFFFu);
}

TEST(OneLevelCirTest, OnesCountBucket)
{
    OneLevelCirConfidence est(IndexScheme::Pc, 256, 8,
                              CirReduction::OnesCount, CtInit::Zeros);
    const auto ctx = context(0x1000);
    EXPECT_EQ(est.bucketOf(ctx), 0u);
    est.update(ctx, false, true);
    est.update(ctx, true, true);
    est.update(ctx, false, true);
    EXPECT_EQ(est.bucketOf(ctx), 2u);
    EXPECT_EQ(est.numBuckets(), 9u); // 0..8 ones
}

TEST(OneLevelCirTest, NumBucketsRaw)
{
    OneLevelCirConfidence est(IndexScheme::Pc, 256, 16,
                              CirReduction::RawPattern);
    EXPECT_EQ(est.numBuckets(), std::uint64_t{1} << 16);
}

TEST(OneLevelCirTest, WideRawCirIsFatal)
{
    EXPECT_THROW(OneLevelCirConfidence(IndexScheme::Pc, 256, 32,
                                       CirReduction::RawPattern),
                 std::runtime_error);
}

TEST(OneLevelCirTest, IndexSchemeSelectsDifferentEntries)
{
    // Under BHR indexing, the same PC with different history reads
    // different table entries.
    OneLevelCirConfidence est(IndexScheme::Bhr, 256, 8,
                              CirReduction::RawPattern, CtInit::Zeros);
    est.update(context(0x1000, 0x1), false, true);
    EXPECT_EQ(est.bucketOf(context(0x1000, 0x1)), 1u);
    EXPECT_EQ(est.bucketOf(context(0x1000, 0x2)), 0u);
    // Under PC indexing they share an entry.
    OneLevelCirConfidence pc_est(IndexScheme::Pc, 256, 8,
                                 CirReduction::RawPattern,
                                 CtInit::Zeros);
    pc_est.update(context(0x1000, 0x1), false, true);
    EXPECT_EQ(pc_est.bucketOf(context(0x1000, 0x2)), 1u);
}

TEST(OneLevelCirTest, ResetRestoresInit)
{
    OneLevelCirConfidence est(IndexScheme::Pc, 256, 8,
                              CirReduction::RawPattern, CtInit::Ones);
    est.update(context(0x1000), true, true);
    est.reset();
    EXPECT_EQ(est.bucketOf(context(0x1000)), 0xFFu);
}

TEST(OneLevelCirTest, StorageAndName)
{
    OneLevelCirConfidence est(IndexScheme::PcXorBhr, 1 << 16, 16,
                              CirReduction::RawPattern);
    EXPECT_EQ(est.storageBits(), std::uint64_t{1} << 20);
    EXPECT_EQ(est.name(), "1lvl-PCxorBHR-cir16-raw-65536");
    EXPECT_FALSE(est.bucketsAreOrdered());
}

class CounterKindTest : public ::testing::TestWithParam<CounterKind>
{};

TEST_P(CounterKindTest, StartsAtConfiguredInitialValue)
{
    OneLevelCounterConfidence est(IndexScheme::Pc, 256, GetParam(), 16,
                                  0);
    EXPECT_EQ(est.bucketOf(context(0x1000)), 0u);
    OneLevelCounterConfidence est16(IndexScheme::Pc, 256, GetParam(),
                                    16, 16);
    EXPECT_EQ(est16.bucketOf(context(0x1000)), 16u);
}

TEST_P(CounterKindTest, CountsUpOnCorrectAndSaturates)
{
    OneLevelCounterConfidence est(IndexScheme::Pc, 256, GetParam(), 16,
                                  0);
    const auto ctx = context(0x1000);
    for (int i = 0; i < 20; ++i)
        est.update(ctx, true, true);
    EXPECT_EQ(est.bucketOf(ctx), 16u);
}

TEST_P(CounterKindTest, OrderedBucketsAndCount)
{
    OneLevelCounterConfidence est(IndexScheme::Pc, 256, GetParam(), 16);
    EXPECT_TRUE(est.bucketsAreOrdered());
    EXPECT_EQ(est.numBuckets(), 17u);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, CounterKindTest,
                         ::testing::Values(CounterKind::Saturating,
                                           CounterKind::Resetting),
                         [](const auto &info) {
                             return toString(info.param);
                         });

TEST(CounterEstimatorTest, SaturatingStepsDownOnIncorrect)
{
    OneLevelCounterConfidence est(IndexScheme::Pc, 256,
                                  CounterKind::Saturating, 16, 0);
    const auto ctx = context(0x1000);
    for (int i = 0; i < 10; ++i)
        est.update(ctx, true, true);
    est.update(ctx, false, true);
    EXPECT_EQ(est.bucketOf(ctx), 9u);
}

TEST(CounterEstimatorTest, ResettingDropsToZeroOnIncorrect)
{
    OneLevelCounterConfidence est(IndexScheme::Pc, 256,
                                  CounterKind::Resetting, 16, 0);
    const auto ctx = context(0x1000);
    for (int i = 0; i < 10; ++i)
        est.update(ctx, true, true);
    est.update(ctx, false, true);
    EXPECT_EQ(est.bucketOf(ctx), 0u);
}

TEST(CounterEstimatorTest, PaperSingleMispredictionContrast)
{
    // Section 5.1: after a long correct run, one misprediction
    // followed by one correct prediction leaves a saturating counter
    // near max (16 -> 15 -> 16) but a resetting counter at 1. This is
    // why saturating counters inflate the "zero bucket".
    OneLevelCounterConfidence sat(IndexScheme::Pc, 256,
                                  CounterKind::Saturating, 16, 0);
    OneLevelCounterConfidence reset(IndexScheme::Pc, 256,
                                    CounterKind::Resetting, 16, 0);
    const auto ctx = context(0x2000);
    for (int i = 0; i < 30; ++i) {
        sat.update(ctx, true, true);
        reset.update(ctx, true, true);
    }
    sat.update(ctx, false, true);
    reset.update(ctx, false, true);
    sat.update(ctx, true, true);
    reset.update(ctx, true, true);
    EXPECT_EQ(sat.bucketOf(ctx), 16u);
    EXPECT_EQ(reset.bucketOf(ctx), 1u);
}

TEST(CounterEstimatorTest, StorageUsesCeilLog2Bits)
{
    // 0..16 needs 5 bits/entry.
    OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 4096,
                                  CounterKind::Resetting, 16);
    EXPECT_EQ(est.storageBits(), 4096u * 5u);
    // 0..15 needs 4 bits/entry (the cheaper variant the paper notes).
    OneLevelCounterConfidence est15(IndexScheme::PcXorBhr, 4096,
                                    CounterKind::Resetting, 15);
    EXPECT_EQ(est15.storageBits(), 4096u * 4u);
}

TEST(CounterEstimatorTest, CostRelativeToSmallGshare)
{
    // Section 5.3: a 4K-entry resetting-counter CT costs twice the
    // 4K-entry 2-bit gshare (4-bit counters would; our 0..16 counters
    // cost 5 bits, documented in EXPERIMENTS.md). Check the 0..15
    // variant reproduces the paper's 2x claim.
    OneLevelCounterConfidence ct(IndexScheme::PcXorBhr, 4096,
                                 CounterKind::Resetting, 15);
    const std::uint64_t gshare_bits = 4096 * 2;
    EXPECT_EQ(ct.storageBits(), 2 * gshare_bits);
}

TEST(CounterEstimatorTest, ResetRestoresInitialValue)
{
    OneLevelCounterConfidence est(IndexScheme::Pc, 256,
                                  CounterKind::Resetting, 16, 3);
    const auto ctx = context(0x3000);
    est.update(ctx, true, true);
    est.reset();
    EXPECT_EQ(est.bucketOf(ctx), 3u);
}

TEST(CounterEstimatorTest, NameEncodesConfiguration)
{
    OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 4096,
                                  CounterKind::Resetting, 16);
    EXPECT_EQ(est.name(), "1lvl-PCxorBHR-reset16-4096");
}

TEST(CounterEstimatorTest, BadGeometryIsFatal)
{
    EXPECT_THROW(OneLevelCounterConfidence(IndexScheme::Pc, 100,
                                           CounterKind::Resetting, 16),
                 std::runtime_error);
    EXPECT_THROW(OneLevelCounterConfidence(IndexScheme::Pc, 256,
                                           CounterKind::Resetting, 0),
                 std::runtime_error);
}


TEST(CounterEstimatorTest, HalfResetHalvesOnIncorrect)
{
    OneLevelCounterConfidence est(IndexScheme::Pc, 256,
                                  CounterKind::HalfReset, 16, 0);
    const auto ctx = context(0x1000);
    for (int i = 0; i < 12; ++i)
        est.update(ctx, true, true);
    EXPECT_EQ(est.bucketOf(ctx), 12u);
    est.update(ctx, false, true);
    EXPECT_EQ(est.bucketOf(ctx), 6u);
    est.update(ctx, false, true);
    EXPECT_EQ(est.bucketOf(ctx), 3u);
    // Repeated halving bottoms out at 0.
    est.update(ctx, false, true);
    est.update(ctx, false, true);
    EXPECT_EQ(est.bucketOf(ctx), 0u);
    EXPECT_EQ(est.name(), "1lvl-PC-halfreset16-256");
}

TEST(CounterEstimatorTest, HalfResetSitsBetweenSatAndReset)
{
    // After a long correct streak and one miss: saturating keeps 15,
    // half-reset keeps 8, resetting keeps 0 — a strict ordering of
    // how much confidence one misprediction destroys.
    OneLevelCounterConfidence sat(IndexScheme::Pc, 64,
                                  CounterKind::Saturating, 16, 0);
    OneLevelCounterConfidence half(IndexScheme::Pc, 64,
                                   CounterKind::HalfReset, 16, 0);
    OneLevelCounterConfidence reset(IndexScheme::Pc, 64,
                                    CounterKind::Resetting, 16, 0);
    const auto ctx = context(0x2000);
    for (int i = 0; i < 30; ++i) {
        sat.update(ctx, true, true);
        half.update(ctx, true, true);
        reset.update(ctx, true, true);
    }
    sat.update(ctx, false, true);
    half.update(ctx, false, true);
    reset.update(ctx, false, true);
    EXPECT_EQ(sat.bucketOf(ctx), 15u);
    EXPECT_EQ(half.bucketOf(ctx), 8u);
    EXPECT_EQ(reset.bucketOf(ctx), 0u);
}
} // namespace
} // namespace confsim
