/** @file Unit tests for confidence-signal serialization. */

#include "confidence/signal_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "metrics/confidence_curve.h"

namespace confsim {
namespace {

class SignalIoTest : public ::testing::Test
{
  protected:
    // Unique per test so the cases can run concurrently under
    // `ctest -j` without clobbering each other's file.
    std::string path_ = ::testing::TempDir() + "/confsim_signal_" +
                        ::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name() +
                        ".txt";

    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SignalIoTest, RoundTripPreservesMask)
{
    std::vector<bool> mask(17, false);
    mask[0] = mask[3] = mask[16] = true;
    writeSignalImage(path_, "1lvl-PCxorBHR-reset16-65536", mask);
    const auto image = readSignalImage(path_);
    EXPECT_EQ(image.estimatorName, "1lvl-PCxorBHR-reset16-65536");
    EXPECT_EQ(image.lowBuckets, mask);
}

TEST_F(SignalIoTest, EmptyLowSetRoundTrips)
{
    writeSignalImage(path_, "est", std::vector<bool>(8, false));
    const auto image = readSignalImage(path_);
    EXPECT_EQ(image.lowBuckets, std::vector<bool>(8, false));
}

TEST_F(SignalIoTest, EstimatorNameGuard)
{
    writeSignalImage(path_, "est-a", std::vector<bool>(4, true));
    EXPECT_NO_THROW(readSignalImage(path_, "est-a"));
    EXPECT_THROW(readSignalImage(path_, "est-b"),
                 std::runtime_error);
}

TEST_F(SignalIoTest, CurveDerivedMaskRoundTrips)
{
    // The full paper flow: profile -> curve -> operating point ->
    // image -> reload.
    BucketStats stats(17);
    for (int v = 0; v < 17; ++v) {
        for (int i = 0; i < 50 + v * 100; ++i)
            stats.record(v, i < (17 - v));
    }
    const auto curve = ConfidenceCurve::fromBucketStats(stats);
    const auto mask = curve.lowBucketMaskForRefFraction(0.2, 17);
    writeSignalImage(path_, "reset16", mask);
    EXPECT_EQ(readSignalImage(path_, "reset16").lowBuckets, mask);
}

TEST_F(SignalIoTest, MalformedImagesAreFatal)
{
    const auto write_file = [this](const std::string &content) {
        std::ofstream out(path_);
        out << content;
    };
    write_file("wrong header\n");
    EXPECT_THROW(readSignalImage(path_), std::runtime_error);
    write_file("confsim-signal v1\nestimator e\nbuckets 0\nlow\n");
    EXPECT_THROW(readSignalImage(path_), std::runtime_error);
    write_file("confsim-signal v1\nestimator e\nbuckets 4\nlow 9\n");
    EXPECT_THROW(readSignalImage(path_), std::runtime_error);
    write_file("confsim-signal v1\nestimator e\nbuckets 4\nlow 2 1\n");
    EXPECT_THROW(readSignalImage(path_), std::runtime_error);
    write_file("confsim-signal v1\nestimator e\nbuckets 4\nlow 1 x\n");
    EXPECT_THROW(readSignalImage(path_), std::runtime_error);
}

TEST_F(SignalIoTest, MissingFileAndBadWritesAreFatal)
{
    EXPECT_THROW(readSignalImage("/no/such/image.txt"),
                 std::runtime_error);
    EXPECT_THROW(writeSignalImage(path_, "e", {}),
                 std::runtime_error);
    EXPECT_THROW(writeSignalImage(path_, "two\nlines",
                                  std::vector<bool>(2, true)),
                 std::runtime_error);
}

} // namespace
} // namespace confsim
