/** @file Unit tests for confidence/index_scheme.h. */

#include "confidence/index_scheme.h"

#include <gtest/gtest.h>

#include "util/bits.h"

namespace confsim {
namespace {

BranchContext
context(std::uint64_t pc, std::uint64_t bhr, std::uint64_t gcir = 0)
{
    BranchContext ctx;
    ctx.pc = pc;
    ctx.bhr = bhr;
    ctx.gcir = gcir;
    return ctx;
}

TEST(IndexSchemeTest, PcUsesBitsAboveWordOffset)
{
    // 16-bit index from PC bits 17..2 (the paper's field).
    const auto ctx = context(0x0003FFFC, 0);
    EXPECT_EQ(computeIndex(IndexScheme::Pc, ctx, 16), 0xFFFFu);
    EXPECT_EQ(computeIndex(IndexScheme::Pc, context(0x4, 0), 16), 1u);
    // Byte-offset bits are ignored.
    EXPECT_EQ(computeIndex(IndexScheme::Pc, context(0x7, 0), 16), 1u);
}

TEST(IndexSchemeTest, BhrAndGcirUseLowBits)
{
    const auto ctx = context(0, 0x12345, 0xABCDE);
    EXPECT_EQ(computeIndex(IndexScheme::Bhr, ctx, 16), 0x2345u);
    EXPECT_EQ(computeIndex(IndexScheme::Gcir, ctx, 16), 0xBCDEu);
}

TEST(IndexSchemeTest, XorCombinations)
{
    const auto ctx = context(0x4 << 2, 0x3, 0x5); // pc field = 4
    EXPECT_EQ(computeIndex(IndexScheme::PcXorBhr, ctx, 16),
              0x4u ^ 0x3u);
    EXPECT_EQ(computeIndex(IndexScheme::PcXorGcir, ctx, 16),
              0x4u ^ 0x5u);
    EXPECT_EQ(computeIndex(IndexScheme::BhrXorGcir, ctx, 16),
              0x3u ^ 0x5u);
    EXPECT_EQ(computeIndex(IndexScheme::PcXorBhrXorGcir, ctx, 16),
              0x4u ^ 0x3u ^ 0x5u);
}

TEST(IndexSchemeTest, ConcatSplitsTheIndex)
{
    // 8-bit index: low 4 bits from PC, high 4 from BHR.
    const auto ctx = context(0xA << 2, 0x5);
    EXPECT_EQ(computeIndex(IndexScheme::PcConcatBhr, ctx, 8),
              (0x5u << 4) | 0xAu);
}

TEST(IndexSchemeTest, ConcatOddWidthGivesExtraBitToPc)
{
    const auto ctx = context(0x7F << 2, 0x7F);
    // 7-bit index: 4 PC bits + 3 BHR bits.
    EXPECT_EQ(computeIndex(IndexScheme::PcConcatBhr, ctx, 7),
              (0x7u << 4) | 0xFu);
}

TEST(IndexSchemeTest, ResultAlwaysFitsIndexWidth)
{
    const auto ctx = context(0xFFFFFFFC, 0xFFFF, 0xFFFF);
    for (auto scheme :
         {IndexScheme::Pc, IndexScheme::Bhr, IndexScheme::Gcir,
          IndexScheme::PcXorBhr, IndexScheme::PcXorGcir,
          IndexScheme::BhrXorGcir, IndexScheme::PcXorBhrXorGcir,
          IndexScheme::PcConcatBhr}) {
        for (unsigned bits : {4u, 12u, 16u}) {
            EXPECT_LE(computeIndex(scheme, ctx, bits), mask(bits));
        }
    }
}

TEST(IndexSchemeTest, BadWidthIsFatal)
{
    const auto ctx = context(0, 0);
    EXPECT_THROW(computeIndex(IndexScheme::Pc, ctx, 0),
                 std::runtime_error);
    EXPECT_THROW(computeIndex(IndexScheme::Pc, ctx, 33),
                 std::runtime_error);
}

TEST(IndexSchemeTest, Names)
{
    EXPECT_STREQ(toString(IndexScheme::PcXorBhr), "PCxorBHR");
    EXPECT_STREQ(toString(IndexScheme::Gcir), "GCIR");
    EXPECT_STREQ(toString(IndexScheme::PcConcatBhr), "PCconcatBHR");
}

} // namespace
} // namespace confsim
