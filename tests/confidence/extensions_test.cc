/** @file
 * Unit tests for the confidence extensions: counter-strength
 * (SelfCounterConfidence), cross-product composites, multi-level
 * signals, and the alias-free reference estimator.
 */

#include <gtest/gtest.h>

#include "confidence/composite_confidence.h"
#include "confidence/multi_level_signal.h"
#include "confidence/one_level.h"
#include "confidence/self_counter.h"
#include "confidence/unaliased.h"

namespace confsim {
namespace {

BranchContext
context(std::uint64_t pc, std::uint64_t bhr = 0)
{
    BranchContext ctx;
    ctx.pc = pc;
    ctx.bhr = bhr;
    return ctx;
}

TEST(SelfCounterTest, StartsWeakAndStrengthens)
{
    SelfCounterConfidence est(IndexScheme::Pc, 256, 3);
    const auto ctx = context(0x1000);
    // Weakly-taken init (4 of 0..7): strength 0.
    EXPECT_EQ(est.bucketOf(ctx), 0u);
    EXPECT_TRUE(est.shadowPredictsTaken(ctx));
    for (int i = 0; i < 3; ++i)
        est.update(ctx, true, true);
    // Counter saturated at 7: strength 3 (max).
    EXPECT_EQ(est.bucketOf(ctx), 3u);
}

TEST(SelfCounterTest, StrengthIsSymmetric)
{
    SelfCounterConfidence est(IndexScheme::Pc, 256, 3);
    const auto ctx = context(0x2000);
    for (int i = 0; i < 10; ++i)
        est.update(ctx, true, false); // drive toward not-taken
    EXPECT_EQ(est.bucketOf(ctx), 3u); // counter 0: also max strength
    EXPECT_FALSE(est.shadowPredictsTaken(ctx));
}

TEST(SelfCounterTest, LearnsFromOutcomeNotCorrectness)
{
    SelfCounterConfidence est(IndexScheme::Pc, 256, 3);
    const auto ctx = context(0x3000);
    // correct=false, taken=true repeatedly: must still strengthen
    // toward taken (it tracks the outcome).
    for (int i = 0; i < 5; ++i)
        est.update(ctx, false, true);
    EXPECT_TRUE(est.shadowPredictsTaken(ctx));
    EXPECT_EQ(est.bucketOf(ctx), 3u);
}

TEST(SelfCounterTest, BucketCountAndOrdering)
{
    SelfCounterConfidence est3(IndexScheme::Pc, 256, 3);
    EXPECT_EQ(est3.numBuckets(), 4u); // strengths 0..3
    EXPECT_TRUE(est3.bucketsAreOrdered());
    SelfCounterConfidence est2(IndexScheme::Pc, 256, 2);
    EXPECT_EQ(est2.numBuckets(), 2u); // weak/strong
}

TEST(SelfCounterTest, StorageAndReset)
{
    SelfCounterConfidence est(IndexScheme::Pc, 1024, 3);
    EXPECT_EQ(est.storageBits(), 1024u * 3u);
    const auto ctx = context(0x1000);
    for (int i = 0; i < 5; ++i)
        est.update(ctx, true, true);
    est.reset();
    EXPECT_EQ(est.bucketOf(ctx), 0u);
}

TEST(SelfCounterTest, BadGeometryIsFatal)
{
    EXPECT_THROW(SelfCounterConfidence(IndexScheme::Pc, 100, 3),
                 std::runtime_error);
    EXPECT_THROW(SelfCounterConfidence(IndexScheme::Pc, 256, 1),
                 std::runtime_error);
    EXPECT_THROW(SelfCounterConfidence(IndexScheme::Pc, 256, 7),
                 std::runtime_error);
}

std::unique_ptr<CompositeConfidence>
makeComposite()
{
    return std::make_unique<CompositeConfidence>(
        std::make_unique<OneLevelCounterConfidence>(
            IndexScheme::PcXorBhr, 256, CounterKind::Resetting, 16, 0),
        std::make_unique<SelfCounterConfidence>(IndexScheme::Pc, 256,
                                                3));
}

TEST(CompositeTest, BucketEncodesBothParts)
{
    auto composite = makeComposite();
    EXPECT_EQ(composite->numBuckets(), 17u * 4u);
    const auto ctx = context(0x1000, 0x5);
    // Initially: resetting counter 0, strength 0 -> bucket 0.
    EXPECT_EQ(composite->bucketOf(ctx), 0u);
    for (int i = 0; i < 16; ++i)
        composite->update(ctx, true, true);
    // Resetting 16, strength 3 -> bucket 16*4 + 3.
    EXPECT_EQ(composite->bucketOf(ctx), 16u * 4u + 3u);
    const auto [a, b] = composite->splitBucket(composite->bucketOf(ctx));
    EXPECT_EQ(a, 16u);
    EXPECT_EQ(b, 3u);
}

TEST(CompositeTest, UpdatesBothConstituents)
{
    auto composite = makeComposite();
    const auto ctx = context(0x2000);
    // Mispredicted but taken: resetting part resets; strength part
    // still strengthens toward taken.
    for (int i = 0; i < 8; ++i)
        composite->update(ctx, false, true);
    const auto [reset_bucket, strength] =
        composite->splitBucket(composite->bucketOf(ctx));
    EXPECT_EQ(reset_bucket, 0u);
    EXPECT_EQ(strength, 3u);
}

TEST(CompositeTest, StorageIsSumAndNameCombined)
{
    auto composite = makeComposite();
    EXPECT_EQ(composite->storageBits(),
              composite->first().storageBits() +
                  composite->second().storageBits());
    EXPECT_NE(composite->name().find("composite("), std::string::npos);
}

TEST(CompositeTest, ResetRestoresBoth)
{
    auto composite = makeComposite();
    const auto ctx = context(0x1000);
    for (int i = 0; i < 10; ++i)
        composite->update(ctx, true, true);
    composite->reset();
    EXPECT_EQ(composite->bucketOf(ctx), 0u);
}

TEST(CompositeTest, GuardsAgainstHugeSpacesAndNull)
{
    EXPECT_THROW(
        CompositeConfidence(
            std::make_unique<OneLevelCirConfidence>(
                IndexScheme::Pc, 256, 16, CirReduction::RawPattern),
            std::make_unique<OneLevelCirConfidence>(
                IndexScheme::Bhr, 256, 16, CirReduction::RawPattern)),
        std::runtime_error);
    EXPECT_THROW(CompositeConfidence(
                     nullptr, std::make_unique<SelfCounterConfidence>(
                                  IndexScheme::Pc, 256, 3)),
                 std::runtime_error);
}

class MultiLevelTest : public ::testing::Test
{
  protected:
    MultiLevelTest()
        : est_(IndexScheme::Pc, 256, CounterKind::Resetting, 4, 0),
          stats_(est_.numBuckets())
    {
        // Bucket rates descending with value: 0 worst, 4 best.
        const int refs[5] = {100, 200, 300, 400, 4000};
        const int misses[5] = {50, 60, 45, 20, 25};
        for (int b = 0; b < 5; ++b) {
            for (int i = 0; i < refs[b]; ++i)
                stats_.record(b, i < misses[b]);
        }
    }

    OneLevelCounterConfidence est_;
    BucketStats stats_;
};

TEST_F(MultiLevelTest, ClassesFollowRateSortedCuts)
{
    // Cuts at 2% and 12% of 5000 refs = 100 and 600 refs: class 0 =
    // {bucket 0}, class 1 = {buckets 1, 2}, class 2 = the rest.
    MultiLevelConfidenceSignal signal(est_, stats_, {0.02, 0.12});
    EXPECT_EQ(signal.numClasses(), 3u);
    EXPECT_EQ(signal.classOfBucket(0), 0u);
    EXPECT_EQ(signal.classOfBucket(1), 1u);
    EXPECT_EQ(signal.classOfBucket(2), 1u);
    EXPECT_EQ(signal.classOfBucket(3), 2u);
    EXPECT_EQ(signal.classOfBucket(4), 2u);
}

TEST_F(MultiLevelTest, SummariesPartitionTheMass)
{
    MultiLevelConfidenceSignal signal(est_, stats_, {0.02, 0.12});
    const auto &summaries = signal.classSummaries();
    ASSERT_EQ(summaries.size(), 3u);
    double total = 0.0;
    for (const auto &summary : summaries)
        total += summary.refFraction;
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Misprediction rate must fall with the class index.
    EXPECT_GT(summaries[0].mispredictRate,
              summaries[1].mispredictRate);
    EXPECT_GT(summaries[1].mispredictRate,
              summaries[2].mispredictRate);
}

TEST_F(MultiLevelTest, ClassOfQueriesEstimator)
{
    MultiLevelConfidenceSignal signal(est_, stats_, {0.02, 0.12});
    const auto ctx = context(0x1000);
    EXPECT_EQ(signal.classOf(ctx), 0u); // counter 0 -> worst class
    for (int i = 0; i < 4; ++i)
        est_.update(ctx, true, true);
    EXPECT_EQ(signal.classOf(ctx), 2u); // saturated -> best class
}

TEST_F(MultiLevelTest, BadCutsAreFatal)
{
    EXPECT_THROW(MultiLevelConfidenceSignal(est_, stats_, {}),
                 std::runtime_error);
    EXPECT_THROW(MultiLevelConfidenceSignal(est_, stats_, {0.0}),
                 std::runtime_error);
    EXPECT_THROW(MultiLevelConfidenceSignal(est_, stats_, {0.5, 0.2}),
                 std::runtime_error);
    BucketStats empty(est_.numBuckets());
    EXPECT_THROW(MultiLevelConfidenceSignal(est_, empty, {0.2}),
                 std::runtime_error);
}

TEST(UnaliasedTest, DistinctContextsNeverCollide)
{
    UnaliasedCounterConfidence est(IndexScheme::PcXorBhr,
                                   CounterKind::Resetting, 16);
    const auto a = context(0x1000, 0x1);
    const auto b = context(0x1000, 0x2);
    for (int i = 0; i < 5; ++i)
        est.update(a, true, true);
    EXPECT_EQ(est.bucketOf(a), 5u);
    EXPECT_EQ(est.bucketOf(b), 0u); // untouched
    EXPECT_EQ(est.observedContexts(), 1u);
}

TEST(UnaliasedTest, MatchesFiniteTableWithoutAliasing)
{
    // On a context set small enough to never alias a 256-entry table,
    // the unaliased estimator and the finite one agree bucket by
    // bucket.
    UnaliasedCounterConfidence inf(IndexScheme::Pc,
                                   CounterKind::Resetting, 16);
    OneLevelCounterConfidence fin(IndexScheme::Pc, 256,
                                  CounterKind::Resetting, 16, 0);
    for (int step = 0; step < 1000; ++step) {
        const auto ctx = context(0x1000 + 4 * (step % 32));
        const bool correct = (step % 7) != 0;
        ASSERT_EQ(inf.bucketOf(ctx), fin.bucketOf(ctx));
        inf.update(ctx, correct, true);
        fin.update(ctx, correct, true);
    }
}

TEST(UnaliasedTest, ResetClearsObservations)
{
    UnaliasedCounterConfidence est(IndexScheme::Pc,
                                   CounterKind::Resetting, 16);
    est.update(context(0x1000), true, true);
    EXPECT_EQ(est.observedContexts(), 1u);
    est.reset();
    EXPECT_EQ(est.observedContexts(), 0u);
    EXPECT_EQ(est.bucketOf(context(0x1000)), 0u);
}

TEST(UnaliasedTest, StorageGrowsWithContexts)
{
    UnaliasedCounterConfidence est(IndexScheme::PcXorBhr,
                                   CounterKind::Resetting, 16);
    EXPECT_EQ(est.storageBits(), 0u);
    est.update(context(0x1000, 0x1), true, true);
    est.update(context(0x1000, 0x2), true, true);
    EXPECT_EQ(est.storageBits(), 2u * 5u);
}

} // namespace
} // namespace confsim
