/** @file Unit tests for the CIR table (CT). */

#include "confidence/cir_table.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(CirTableTest, OnesInitSetsEveryBit)
{
    CirTable table(64, 16, CtInit::Ones);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_EQ(table.read(i), 0xFFFFu);
}

TEST(CirTableTest, ZerosInit)
{
    CirTable table(64, 16, CtInit::Zeros);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_EQ(table.read(i), 0u);
}

TEST(CirTableTest, LastBitInitSetsOnlyOldestBit)
{
    CirTable table(64, 16, CtInit::LastBit);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_EQ(table.read(i), 0x8000u);
}

TEST(CirTableTest, RandomInitIsDeterministicPerSeed)
{
    CirTable a(256, 16, CtInit::Random, 42);
    CirTable b(256, 16, CtInit::Random, 42);
    CirTable c(256, 16, CtInit::Random, 43);
    bool all_same_ac = true;
    for (std::size_t i = 0; i < 256; ++i) {
        EXPECT_EQ(a.read(i), b.read(i));
        all_same_ac = all_same_ac && (a.read(i) == c.read(i));
    }
    EXPECT_FALSE(all_same_ac);
}

TEST(CirTableTest, UpdateShiftsInIncorrectAsOne)
{
    CirTable table(16, 8, CtInit::Zeros);
    table.update(3, false); // incorrect -> 1
    EXPECT_EQ(table.read(3), 0b1u);
    table.update(3, true); // correct -> 0
    EXPECT_EQ(table.read(3), 0b10u);
}

TEST(CirTableTest, PaperCirSequence)
{
    // 3 correct, 1 incorrect, 4 correct -> 00010000 (8-bit CIR).
    CirTable table(16, 8, CtInit::Zeros);
    for (int i = 0; i < 3; ++i)
        table.update(0, true);
    table.update(0, false);
    for (int i = 0; i < 4; ++i)
        table.update(0, true);
    EXPECT_EQ(table.read(0), 0b00010000u);
}

TEST(CirTableTest, EntriesAreIndependent)
{
    CirTable table(16, 8, CtInit::Zeros);
    table.update(1, false);
    EXPECT_EQ(table.read(1), 1u);
    EXPECT_EQ(table.read(2), 0u);
}

TEST(CirTableTest, IndexWrapsOnTableSize)
{
    CirTable table(16, 8, CtInit::Zeros);
    table.update(16 + 5, false);
    EXPECT_EQ(table.read(5), 1u);
}

TEST(CirTableTest, CirWidthMasksShiftedBits)
{
    CirTable table(4, 4, CtInit::Ones);
    // Shifting 4 correct predictions into an all-ones 4-bit CIR
    // clears it completely.
    for (int i = 0; i < 4; ++i)
        table.update(0, true);
    EXPECT_EQ(table.read(0), 0u);
}

TEST(CirTableTest, ResetRestoresInitPolicy)
{
    CirTable table(16, 8, CtInit::LastBit);
    table.update(0, true);
    table.update(0, false);
    table.reset();
    EXPECT_EQ(table.read(0), 0x80u);
}

TEST(CirTableTest, StorageBits)
{
    // The paper's CT: 2^16 x 16 bits.
    CirTable table(1 << 16, 16, CtInit::Ones);
    EXPECT_EQ(table.storageBits(), std::uint64_t{1} << 20);
}

TEST(CirTableTest, BadGeometryIsFatal)
{
    EXPECT_THROW(CirTable(100, 16, CtInit::Ones), std::runtime_error);
    EXPECT_THROW(CirTable(64, 0, CtInit::Ones), std::runtime_error);
    EXPECT_THROW(CirTable(64, 65, CtInit::Ones), std::runtime_error);
}

TEST(CirTableTest, InitNames)
{
    EXPECT_STREQ(toString(CtInit::Ones), "ones");
    EXPECT_STREQ(toString(CtInit::Zeros), "zeros");
    EXPECT_STREQ(toString(CtInit::Random), "random");
    EXPECT_STREQ(toString(CtInit::LastBit), "lastbit");
}

} // namespace
} // namespace confsim
