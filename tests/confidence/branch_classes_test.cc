/** @file Unit tests for static branch classification. */

#include "confidence/branch_classes.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(BranchClassTest, TakenRateBands)
{
    EXPECT_EQ(classifyTakenRate(0.0), BranchClass::AlwaysOneSided);
    EXPECT_EQ(classifyTakenRate(1.0), BranchClass::AlwaysOneSided);
    EXPECT_EQ(classifyTakenRate(0.0005), BranchClass::AlwaysOneSided);
    EXPECT_EQ(classifyTakenRate(0.03), BranchClass::StronglyBiased);
    EXPECT_EQ(classifyTakenRate(0.97), BranchClass::StronglyBiased);
    EXPECT_EQ(classifyTakenRate(0.2), BranchClass::MostlyBiased);
    EXPECT_EQ(classifyTakenRate(0.8), BranchClass::MostlyBiased);
    EXPECT_EQ(classifyTakenRate(0.5), BranchClass::Mixed);
    EXPECT_EQ(classifyTakenRate(0.35), BranchClass::Mixed);
}

TEST(BranchClassTest, Names)
{
    EXPECT_STREQ(toString(BranchClass::AlwaysOneSided),
                 "always-one-sided");
    EXPECT_STREQ(toString(BranchClass::Mixed), "mixed");
}

TEST(BranchClassTest, ProfileEntriesTrackTakenCounts)
{
    StaticBranchProfile profile;
    profile.record(0x100, false, true);
    profile.record(0x100, true, false);
    profile.record(0x100, false, true);
    const auto &entry = profile.entries().at(0x100);
    EXPECT_EQ(entry.takenCount, 2u);
    EXPECT_NEAR(entry.takenRate(), 2.0 / 3.0, 1e-12);
}

TEST(BranchClassTest, ClassifyProfileAggregates)
{
    StaticBranchProfile profile;
    // Branch A: always taken, never misses (100 execs).
    for (int i = 0; i < 100; ++i)
        profile.record(0xA, false, true);
    // Branch B: 50/50 mixed, 30 misses (100 execs).
    for (int i = 0; i < 100; ++i)
        profile.record(0xB, i < 30, i % 2 == 0);
    // Branch C: 90% taken (mostly biased), 10 misses (100 execs).
    for (int i = 0; i < 100; ++i)
        profile.record(0xC, i < 10, i % 10 != 0);

    const auto breakdown = classifyProfile(profile);
    const auto &one_sided = breakdown[static_cast<std::size_t>(
        BranchClass::AlwaysOneSided)];
    const auto &mixed =
        breakdown[static_cast<std::size_t>(BranchClass::Mixed)];
    const auto &mostly = breakdown[static_cast<std::size_t>(
        BranchClass::MostlyBiased)];

    EXPECT_EQ(one_sided.staticBranches, 1u);
    EXPECT_EQ(one_sided.mispredictions, 0u);
    EXPECT_EQ(mixed.staticBranches, 1u);
    EXPECT_EQ(mixed.mispredictions, 30u);
    EXPECT_NEAR(mixed.rate(), 0.30, 1e-12);
    EXPECT_EQ(mostly.staticBranches, 1u);
    EXPECT_EQ(mostly.executions, 100u);
}

TEST(BranchClassTest, RenderContainsEveryClassAndTotals)
{
    StaticBranchProfile profile;
    profile.record(0x100, false, true);
    const auto table =
        renderBranchClassTable(classifyProfile(profile));
    EXPECT_NE(table.find("always-one-sided"), std::string::npos);
    EXPECT_NE(table.find("mixed"), std::string::npos);
    EXPECT_NE(table.find("total"), std::string::npos);
}

} // namespace
} // namespace confsim
