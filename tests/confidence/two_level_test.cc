/** @file Unit tests for two-level confidence estimators. */

#include "confidence/two_level.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

BranchContext
context(std::uint64_t pc, std::uint64_t bhr = 0)
{
    BranchContext ctx;
    ctx.pc = pc;
    ctx.bhr = bhr;
    return ctx;
}

TEST(TwoLevelConfidenceTest, StorageSumsBothTables)
{
    // Level 1: 2^8 x 8 bits; level 2: 2^8 x 8 bits.
    TwoLevelConfidence est(IndexScheme::Pc, 256, 8,
                           SecondLevelIndex::Cir, 8);
    EXPECT_EQ(est.storageBits(), 256u * 8u * 2u);
}

TEST(TwoLevelConfidenceTest, SecondLevelSizeIsTwoToFirstCirBits)
{
    // 10-bit level-1 CIRs -> 1024-entry level-2 table of 16-bit CIRs.
    TwoLevelConfidence est(IndexScheme::Pc, 256, 10,
                           SecondLevelIndex::Cir, 16);
    EXPECT_EQ(est.storageBits(), 256u * 10u + 1024u * 16u);
}

TEST(TwoLevelConfidenceTest, BucketComesFromSecondLevel)
{
    TwoLevelConfidence est(IndexScheme::Pc, 256, 8,
                           SecondLevelIndex::Cir, 8,
                           CirReduction::RawPattern, CtInit::Zeros);
    const auto ctx = context(0x1000);
    // Both tables all-zero: level-1 CIR 0 -> level-2 entry 0 -> CIR 0.
    EXPECT_EQ(est.bucketOf(ctx), 0u);
    est.update(ctx, false, true);
    // Level-2 entry 0 recorded the incorrect prediction; the level-1
    // CIR became 1, so the NEXT read indexes level-2 entry 1 (still 0).
    EXPECT_EQ(est.bucketOf(ctx), 0u);
    // Another incorrect: recorded at level-2 entry 1; level-1 -> 0b11.
    est.update(ctx, false, true);
    EXPECT_EQ(est.bucketOf(ctx), 0u);
    // Now revisit: two corrects drive level-1 back through 0b110,
    // 0b1100; reading level-2 entry 0b1100 is untouched -> 0.
    est.update(ctx, true, true);
    EXPECT_EQ(est.bucketOf(ctx), 0u);
}

TEST(TwoLevelConfidenceTest, RecordsHistoryOfFirstLevelPattern)
{
    TwoLevelConfidence est(IndexScheme::Pc, 256, 4,
                           SecondLevelIndex::Cir, 8,
                           CirReduction::RawPattern, CtInit::Zeros);
    const auto ctx = context(0x2000);
    // Drive the level-1 CIR through a repeating 4-step cycle:
    // incorrect, correct, correct, correct => level-1 patterns cycle
    // 0001, 0010, 0100, 1000. The incorrect step of every cycle after
    // the first happens when the level-1 CIR reads 0b1000, so level-2
    // entry 8 accumulates one incorrect (1) bit per cycle.
    for (int cycle = 0; cycle < 3; ++cycle) {
        est.update(ctx, false, true);
        est.update(ctx, true, true);
        est.update(ctx, true, true);
        est.update(ctx, true, true);
    }
    // Level-1 CIR is now 0b1000, so bucketOf reads level-2 entry 8,
    // which saw the incorrect step in cycles 2 and 3: CIR 0b11.
    EXPECT_EQ(est.bucketOf(ctx), 0b11u);
}

TEST(TwoLevelConfidenceTest, VariantsProduceDistinctIndices)
{
    // With a nonzero PC and BHR the three paper variants read
    // different level-2 entries; verify via divergent training.
    for (auto variant :
         {SecondLevelIndex::Cir, SecondLevelIndex::CirXorPc,
          SecondLevelIndex::CirXorBhr,
          SecondLevelIndex::CirXorPcXorBhr}) {
        TwoLevelConfidence est(IndexScheme::PcXorBhr, 256, 8, variant,
                               8, CirReduction::RawPattern,
                               CtInit::Zeros);
        const auto ctx = context(0x1230, 0x55);
        est.update(ctx, false, true);
        // Not asserting specific values — just exercising each path
        // and checking bucket ids stay in range.
        EXPECT_LT(est.bucketOf(ctx), est.numBuckets());
    }
}

TEST(TwoLevelConfidenceTest, OnesCountReductionBucketRange)
{
    TwoLevelConfidence est(IndexScheme::PcXorBhr, 256, 8,
                           SecondLevelIndex::Cir, 12,
                           CirReduction::OnesCount);
    EXPECT_EQ(est.numBuckets(), 13u);
    EXPECT_LE(est.bucketOf(context(0x1000, 0x3)), 12u);
}

TEST(TwoLevelConfidenceTest, OnesInitMakesInitialBucketAllOnes)
{
    TwoLevelConfidence est(IndexScheme::Pc, 256, 8,
                           SecondLevelIndex::Cir, 8,
                           CirReduction::RawPattern, CtInit::Ones);
    EXPECT_EQ(est.bucketOf(context(0x1000)), 0xFFu);
}

TEST(TwoLevelConfidenceTest, ResetRestoresBothTables)
{
    TwoLevelConfidence est(IndexScheme::Pc, 256, 8,
                           SecondLevelIndex::Cir, 8,
                           CirReduction::RawPattern, CtInit::Ones);
    const auto ctx = context(0x1000);
    for (int i = 0; i < 20; ++i)
        est.update(ctx, true, true);
    est.reset();
    EXPECT_EQ(est.bucketOf(ctx), 0xFFu);
}

TEST(TwoLevelConfidenceTest, BadGeometryIsFatal)
{
    EXPECT_THROW(TwoLevelConfidence(IndexScheme::Pc, 256, 25,
                                    SecondLevelIndex::Cir, 8),
                 std::runtime_error);
    EXPECT_THROW(TwoLevelConfidence(IndexScheme::Pc, 256, 8,
                                    SecondLevelIndex::Cir, 32),
                 std::runtime_error);
}

TEST(TwoLevelConfidenceTest, NamesMatchPaperNotation)
{
    TwoLevelConfidence est(IndexScheme::PcXorBhr, 256, 8,
                           SecondLevelIndex::CirXorPcXorBhr, 8);
    EXPECT_EQ(est.name(), "2lvl-PCxorBHR-CIRxorPCxorBHR-raw");
    EXPECT_STREQ(toString(SecondLevelIndex::Cir), "CIR");
}

} // namespace
} // namespace confsim
