/**
 * @file
 * Property/invariant tests for every confidence estimator family.
 *
 * Three invariants that must hold for ANY estimator, independent of
 * workload:
 *
 *  1. Bucket ceiling: bucketOf() never reaches numBuckets(), and for
 *     the CIR/counter families numBuckets() equals the bit-width or
 *     counter-range ceiling the geometry implies (a b-bit CIR can only
 *     produce 2^b raw patterns; a max-M counter only M+1 values).
 *  2. Conservation: the driver's per-estimator bucket totals sum
 *     exactly to the number of recorded conditional branches — every
 *     prediction lands in exactly one bucket.
 *  3. Threshold monotonicity: sorting buckets by misprediction rate
 *     (the paper's reduction order) and growing the low-confidence
 *     prefix one bucket at a time, PVN (P(mispredict | low)) and SPEC
 *     (fraction of correct predictions left in the high set) are both
 *     non-increasing. PVN is a running weighted average of
 *     non-increasing rates; SPEC only loses correct predictions as
 *     the high set shrinks. A violation means either the reduction
 *     sort or the bucket accounting is broken.
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "confidence/associative_ct.h"
#include "confidence/composite_confidence.h"
#include "confidence/one_level.h"
#include "confidence/self_counter.h"
#include "confidence/two_level.h"
#include "confidence/unaliased.h"
#include "metrics/classification_metrics.h"
#include "predictor/gshare.h"
#include "predictor/history_register.h"
#include "sim/driver.h"
#include "util/shift_register.h"
#include "workload/suite.h"

namespace confsim {
namespace {

constexpr std::uint64_t kBranches = 30'000;

/** A labelled estimator builder for the property matrix. */
struct NamedEstimator
{
    std::string label;
    std::unique_ptr<ConfidenceEstimator> estimator;
};

std::vector<NamedEstimator>
allEstimators()
{
    std::vector<NamedEstimator> out;
    out.push_back({"one_level_raw",
                   std::make_unique<OneLevelCirConfidence>(
                       IndexScheme::PcXorBhr, 1024, 8,
                       CirReduction::RawPattern, CtInit::Ones)});
    out.push_back({"one_level_ones",
                   std::make_unique<OneLevelCirConfidence>(
                       IndexScheme::Pc, 1024, 12,
                       CirReduction::OnesCount, CtInit::Ones)});
    out.push_back({"counter_saturating",
                   std::make_unique<OneLevelCounterConfidence>(
                       IndexScheme::PcXorBhr, 1024,
                       CounterKind::Saturating, 16, 0)});
    out.push_back({"counter_resetting",
                   std::make_unique<OneLevelCounterConfidence>(
                       IndexScheme::PcXorBhr, 1024,
                       CounterKind::Resetting, 16, 0)});
    out.push_back({"counter_half_reset",
                   std::make_unique<OneLevelCounterConfidence>(
                       IndexScheme::Pc, 1024, CounterKind::HalfReset,
                       16, 0)});
    out.push_back({"two_level",
                   std::make_unique<TwoLevelConfidence>(
                       IndexScheme::Pc, 1024, 8,
                       SecondLevelIndex::CirXorPc, 8)});
    out.push_back({"self_counter",
                   std::make_unique<SelfCounterConfidence>(
                       IndexScheme::Pc, 1024, 3)});
    out.push_back({"unaliased",
                   std::make_unique<UnaliasedCounterConfidence>(
                       IndexScheme::PcXorBhr, CounterKind::Resetting,
                       16)});
    out.push_back({"associative",
                   std::make_unique<AssociativeCounterConfidence>(
                       IndexScheme::Pc, 256, 4, 8,
                       CounterKind::Saturating, 16)});
    out.push_back({"composite",
                   std::make_unique<CompositeConfidence>(
                       std::make_unique<OneLevelCounterConfidence>(
                           IndexScheme::PcXorBhr, 1024,
                           CounterKind::Resetting, 16, 0),
                       std::make_unique<SelfCounterConfidence>(
                           IndexScheme::Pc, 1024, 3))});
    return out;
}

TEST(EstimatorInvariants, GeometryCeilingsMatchBitWidths)
{
    // A b-bit CIR has exactly 2^b raw patterns and b+1 ones-counts.
    EXPECT_EQ(OneLevelCirConfidence(IndexScheme::Pc, 64, 8,
                                    CirReduction::RawPattern)
                  .numBuckets(),
              std::uint64_t{1} << 8);
    EXPECT_EQ(OneLevelCirConfidence(IndexScheme::Pc, 64, 12,
                                    CirReduction::RawPattern)
                  .numBuckets(),
              std::uint64_t{1} << 12);
    EXPECT_EQ(OneLevelCirConfidence(IndexScheme::Pc, 64, 8,
                                    CirReduction::OnesCount)
                  .numBuckets(),
              9u);
    // A counter saturating at M emits exactly M+1 values.
    EXPECT_EQ(OneLevelCounterConfidence(IndexScheme::Pc, 64,
                                        CounterKind::Saturating, 16)
                  .numBuckets(),
              17u);
    EXPECT_EQ(OneLevelCounterConfidence(IndexScheme::Pc, 64,
                                        CounterKind::Resetting, 7)
                  .numBuckets(),
              8u);
}

TEST(EstimatorInvariants, BucketsNeverExceedCeiling)
{
    // Drive every estimator with a realistic predictor-correctness
    // stream and assert the emitted bucket stays below numBuckets()
    // on every single branch.
    for (auto &named : allEstimators()) {
        SCOPED_TRACE(named.label);
        ConfidenceEstimator &estimator = *named.estimator;
        const std::uint64_t ceiling = estimator.numBuckets();
        ASSERT_GT(ceiling, 0u);

        GsharePredictor predictor(4096, 12);
        HistoryRegister bhr(16);
        ShiftRegister gcir(16, 0);
        BranchContext ctx;

        const auto suite = BenchmarkSuite::ibsSmall(kBranches);
        const auto source = suite.makeGenerator(0);
        BranchRecord record;
        while (source->next(record)) {
            if (!record.isConditional())
                continue;
            ctx.pc = record.pc;
            ctx.bhr = bhr.value();
            ctx.gcir = gcir.value();
            const bool correct =
                predictor.predict(record.pc) == record.taken;
            ASSERT_LT(estimator.bucketOf(ctx), ceiling);
            estimator.update(ctx, correct, record.taken);
            predictor.update(record.pc, record.taken);
            bhr.recordOutcome(record.taken);
            gcir.shiftIn(!correct);
        }
    }
}

TEST(EstimatorInvariants, BucketTotalsSumToRecordedBranches)
{
    // Every prediction lands in exactly one bucket: the driver's
    // per-estimator totals must equal its recorded branch count,
    // exactly, with and without a warmup exclusion window.
    for (const std::uint64_t warmup : {std::uint64_t{0},
                                       std::uint64_t{5'000}}) {
        auto named = allEstimators();
        std::vector<ConfidenceEstimator *> raw;
        raw.reserve(named.size());
        for (auto &entry : named)
            raw.push_back(entry.estimator.get());

        GsharePredictor predictor(4096, 12);
        DriverOptions options;
        options.warmupBranches = warmup;
        SimulationDriver driver(predictor, raw, options);
        const auto suite = BenchmarkSuite::ibsSmall(kBranches);
        const auto source = suite.makeGenerator(1);
        const DriverResult result = driver.run(*source);

        ASSERT_GT(result.branches, 0u);
        for (std::size_t e = 0; e < raw.size(); ++e) {
            SCOPED_TRACE(named[e].label + " warmup=" +
                         std::to_string(warmup));
            EXPECT_EQ(result.estimatorStats[e].totalRefs(),
                      static_cast<double>(result.branches));
            EXPECT_EQ(result.estimatorStats[e].totalMispredicts(),
                      static_cast<double>(result.mispredicts));
        }
    }
}

TEST(EstimatorInvariants, PvnAndSpecMonotoneAlongRateSortedThresholds)
{
    auto named = allEstimators();
    std::vector<ConfidenceEstimator *> raw;
    raw.reserve(named.size());
    for (auto &entry : named)
        raw.push_back(entry.estimator.get());

    GsharePredictor predictor(4096, 12);
    SimulationDriver driver(predictor, raw, DriverOptions{});
    const auto suite = BenchmarkSuite::ibsSmall(kBranches);
    const auto source = suite.makeGenerator(2);
    const DriverResult result = driver.run(*source);

    // Exact-count sums tolerate no rounding, but the PVN/SPEC ratios
    // divide accumulated doubles, so allow for one ulp of slack.
    constexpr double kEps = 1e-12;
    for (std::size_t e = 0; e < raw.size(); ++e) {
        SCOPED_TRACE(named[e].label);
        std::vector<KeyedBucketCounts> buckets =
            result.estimatorStats[e].nonEmpty();
        ASSERT_GT(buckets.size(), 1u)
            << "degenerate run: everything in one bucket";
        // The paper's reduction order: worst (highest-rate) first.
        std::sort(buckets.begin(), buckets.end(),
                  [](const KeyedBucketCounts &a,
                     const KeyedBucketCounts &b) {
                      return a.counts.rate() > b.counts.rate();
                  });

        double total_refs = 0.0, total_miss = 0.0;
        for (const auto &bucket : buckets) {
            total_refs += bucket.counts.refs;
            total_miss += bucket.counts.mispredicts;
        }
        const double total_correct = total_refs - total_miss;

        double low_refs = 0.0, low_miss = 0.0;
        double prev_pvn = 1.0 + kEps, prev_spec = 1.0 + kEps;
        for (std::size_t k = 0; k + 1 < buckets.size(); ++k) {
            low_refs += buckets[k].counts.refs;
            low_miss += buckets[k].counts.mispredicts;
            const double pvn = low_miss / low_refs;
            const double low_correct = low_refs - low_miss;
            const double spec =
                (total_correct - low_correct) / total_correct;
            EXPECT_LE(pvn, prev_pvn + kEps)
                << "PVN rose at threshold " << k;
            EXPECT_LE(spec, prev_spec + kEps)
                << "SPEC rose at threshold " << k;
            prev_pvn = pvn;
            prev_spec = spec;
        }
    }
}

} // namespace
} // namespace confsim
