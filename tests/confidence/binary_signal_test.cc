/** @file Unit tests for the binary high/low confidence signal. */

#include "confidence/binary_signal.h"

#include <gtest/gtest.h>

#include "confidence/one_level.h"

namespace confsim {
namespace {

BranchContext
context(std::uint64_t pc)
{
    BranchContext ctx;
    ctx.pc = pc;
    return ctx;
}

TEST(BinarySignalTest, ThresholdMarksLowBuckets)
{
    OneLevelCounterConfidence est(IndexScheme::Pc, 256,
                                  CounterKind::Resetting, 16, 0);
    const auto signal = BinaryConfidenceSignal::fromThreshold(est, 3);
    const auto &low = signal.lowBuckets();
    ASSERT_EQ(low.size(), 17u);
    for (std::uint64_t b = 0; b <= 16; ++b)
        EXPECT_EQ(low[b], b <= 3);
}

TEST(BinarySignalTest, TracksEstimatorState)
{
    OneLevelCounterConfidence est(IndexScheme::Pc, 256,
                                  CounterKind::Resetting, 16, 0);
    const auto signal = BinaryConfidenceSignal::fromThreshold(est, 15);
    const auto ctx = context(0x1000);
    // Counter 0: low confidence.
    EXPECT_TRUE(signal.isLowConfidence(ctx));
    for (int i = 0; i < 16; ++i)
        est.update(ctx, true, true);
    // Saturated counter: high confidence (the "zero bucket").
    EXPECT_FALSE(signal.isLowConfidence(ctx));
    est.update(ctx, false, true);
    EXPECT_TRUE(signal.isLowConfidence(ctx));
}

TEST(BinarySignalTest, ExplicitMaskAnyShape)
{
    OneLevelCounterConfidence est(IndexScheme::Pc, 256,
                                  CounterKind::Saturating, 4, 0);
    // Mark only bucket 2 low (non-contiguous masks are allowed).
    std::vector<bool> mask(5, false);
    mask[2] = true;
    const BinaryConfidenceSignal signal(est, std::move(mask));
    const auto ctx = context(0x1000);
    est.update(ctx, true, true);
    est.update(ctx, true, true); // counter = 2
    EXPECT_TRUE(signal.isLowConfidence(ctx));
    est.update(ctx, true, true); // counter = 3
    EXPECT_FALSE(signal.isLowConfidence(ctx));
}

TEST(BinarySignalTest, WrongMaskSizeIsFatal)
{
    OneLevelCounterConfidence est(IndexScheme::Pc, 256,
                                  CounterKind::Resetting, 16);
    EXPECT_THROW(BinaryConfidenceSignal(est, std::vector<bool>(5)),
                 std::runtime_error);
}

TEST(BinarySignalTest, ThresholdBeyondRangeMarksEverythingLow)
{
    OneLevelCounterConfidence est(IndexScheme::Pc, 256,
                                  CounterKind::Resetting, 4);
    const auto signal = BinaryConfidenceSignal::fromThreshold(est, 99);
    for (bool low : signal.lowBuckets())
        EXPECT_TRUE(low);
}

} // namespace
} // namespace confsim
