/**
 * @file
 * Golden-output regression tests for the figure CSV artifacts.
 *
 * Regenerates fig05_one_level.csv and fig09_benchmarks.csv in-process
 * with the bench harnesses' exact --fast pipeline (reduced IBS suite,
 * 200'000 branches per benchmark, the suite's fixed per-benchmark
 * seeds) and diffs them cell-by-cell against the frozen fixtures in
 * tests/golden/. Identifier cells (series, bucket) must match
 * exactly; ratio cells (bucket_rate, ref_pct, mispred_pct) are parsed
 * and compared with a 1e-9 absolute tolerance so the fixtures survive
 * innocuous float-formatting changes while still pinning every value
 * to nine digits.
 *
 * The whole pipeline is deterministic — synthetic workload seeds,
 * in-repo RNG, no threading — so any diff here is a behavior change:
 * either an intentional modeling change (refresh the fixtures, see
 * tests/golden/README.md) or a regression (fix it).
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/confidence_curve.h"
#include "sim/experiment.h"

#ifndef CONFSIM_GOLDEN_DIR
#error "CONFSIM_GOLDEN_DIR must point at the fixture directory"
#endif

namespace confsim {
namespace {

/** The --fast bench environment, replicated field-for-field. */
ExperimentEnv
fastEnv(const std::string &csv_dir)
{
    ExperimentEnv env;
    env.fullSuite = false;
    env.branchesPerBenchmark = 200'000;
    env.csvDir = csv_dir;
    env.tool = "golden_outputs_test";
    return env;
}

std::vector<std::vector<std::string>>
readCsv(const std::filesystem::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::vector<std::vector<std::string>> rows;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::vector<std::string> cells;
        std::stringstream split(line);
        std::string cell;
        while (std::getline(split, cell, ','))
            cells.push_back(cell);
        rows.push_back(std::move(cells));
    }
    return rows;
}

/**
 * Cell-by-cell diff: columns 0-1 (series, bucket) exact, columns 2-4
 * (bucket_rate, ref_pct, mispred_pct) numeric within 1e-9.
 */
void
expectCsvMatchesGolden(const std::filesystem::path &actual_path,
                       const std::string &fixture_name)
{
    const std::filesystem::path golden_path =
        std::filesystem::path(CONFSIM_GOLDEN_DIR) / fixture_name;
    ASSERT_TRUE(std::filesystem::exists(golden_path))
        << golden_path << " missing — generate it per "
        << "tests/golden/README.md";

    const auto expected = readCsv(golden_path);
    const auto actual = readCsv(actual_path);
    ASSERT_GT(expected.size(), 1u) << "empty fixture " << fixture_name;
    ASSERT_EQ(actual.size(), expected.size())
        << fixture_name << ": row count changed";

    constexpr double kRatioTolerance = 1e-9;
    for (std::size_t r = 0; r < expected.size(); ++r) {
        ASSERT_EQ(actual[r].size(), expected[r].size())
            << fixture_name << " row " << r << ": column count changed";
        for (std::size_t c = 0; c < expected[r].size(); ++c) {
            SCOPED_TRACE(fixture_name + " row " + std::to_string(r) +
                         " col " + std::to_string(c));
            const bool ratio_column = r > 0 && c >= 2;
            if (!ratio_column) {
                EXPECT_EQ(actual[r][c], expected[r][c]);
                continue;
            }
            const double want = std::strtod(expected[r][c].c_str(),
                                            nullptr);
            const double got = std::strtod(actual[r][c].c_str(),
                                           nullptr);
            EXPECT_NEAR(got, want, kRatioTolerance)
                << "frozen '" << expected[r][c] << "' vs regenerated '"
                << actual[r][c] << "'";
        }
    }
}

TEST(GoldenOutputs, Fig05OneLevelCsvIsFrozen)
{
    // bench/fig05_one_level.cc's pipeline, verbatim: three one-level
    // ideal-reduction index schemes plus the static composite, with
    // the TAGE-provider and perceptron-margin native families riding
    // the same sweep.
    const auto csv_dir = std::filesystem::path(::testing::TempDir()) /
                         "golden_fig05";
    std::filesystem::create_directories(csv_dir);
    const ExperimentEnv env = fastEnv(csv_dir.string());

    const std::vector<EstimatorConfig> configs = {
        oneLevelIdealConfig(IndexScheme::Pc),
        oneLevelIdealConfig(IndexScheme::Bhr),
        oneLevelIdealConfig(IndexScheme::PcXorBhr),
    };
    const std::vector<SweepExperimentConfig> sweep_configs = {
        {"gshare+CIR", largeGshareFactory(), configs},
        {"tage", tageFactory(), {tageProviderConfig()}},
        {"perceptron", perceptronFactory(), {perceptronMarginConfig()}},
    };
    const SweepSuiteResult sweep =
        runSweepSuiteExperiment(env, sweep_configs);
    const SuiteRunResult &result = sweep.perConfig[0];

    std::vector<NamedCurve> curves;
    curves.push_back(staticCompositeCurve(result));
    for (std::size_t i = 0; i < configs.size(); ++i)
        curves.push_back(compositeCurve(result, i, configs[i].label));
    curves.push_back(compositeCurve(
        sweep.perConfig[1], 0, sweep_configs[1].estimators[0].label));
    curves.push_back(compositeCurve(
        sweep.perConfig[2], 0, sweep_configs[2].estimators[0].label));
    const auto csv = csv_dir / "fig05_one_level.csv";
    writeCurvesCsv(csv.string(), curves);

    expectCsvMatchesGolden(csv, "fig05_one_level.csv");
}

TEST(GoldenOutputs, Fig09BenchmarksCsvIsFrozen)
{
    // bench/fig09_benchmarks.cc's pipeline, verbatim: per-benchmark
    // curves for the paper's best (jpeg) / worst (gcc) pair under the
    // best one-level method, plus the same pair under the two native
    // confidence families.
    const auto csv_dir = std::filesystem::path(::testing::TempDir()) /
                         "golden_fig09";
    std::filesystem::create_directories(csv_dir);
    const ExperimentEnv env = fastEnv(csv_dir.string());

    const std::vector<EstimatorConfig> configs = {
        oneLevelIdealConfig(IndexScheme::PcXorBhr),
    };
    const std::vector<SweepExperimentConfig> sweep_configs = {
        {"gshare+CIR", largeGshareFactory(), configs},
        {"tage", tageFactory(), {tageProviderConfig()}},
        {"perceptron", perceptronFactory(), {perceptronMarginConfig()}},
    };
    const SweepSuiteResult sweep =
        runSweepSuiteExperiment(env, sweep_configs);
    const SuiteRunResult &result = sweep.perConfig[0];

    std::vector<NamedCurve> figure_curves;
    for (const auto &bench : result.perBenchmark) {
        if (bench.name == "jpeg" || bench.name == "real_gcc") {
            figure_curves.push_back(
                {bench.name, ConfidenceCurve::fromBucketStats(
                                 bench.estimatorStats[0])});
        }
    }
    const char *const kNativeTags[] = {"tage", "perc"};
    for (std::size_t c = 1; c < sweep.perConfig.size(); ++c) {
        for (const auto &bench : sweep.perConfig[c].perBenchmark) {
            if (bench.name != "jpeg" && bench.name != "real_gcc")
                continue;
            figure_curves.push_back(
                {bench.name + "-" + kNativeTags[c - 1],
                 ConfidenceCurve::fromBucketStats(
                     bench.estimatorStats[0])});
        }
    }
    ASSERT_EQ(figure_curves.size(), 6u);
    const auto csv = csv_dir / "fig09_benchmarks.csv";
    writeCurvesCsv(csv.string(), figure_curves);

    expectCsvMatchesGolden(csv, "fig09_benchmarks.csv");
}

} // namespace
} // namespace confsim
