/**
 * @file
 * NDJSON job-protocol tests: the strict JSON reader (valid documents,
 * escapes, surrogate pairs, depth/garbage rejection — always
 * Error{kConfig}, never a crash), request decoding into JobSpec, the
 * named-configuration registry, and the response builders. Responses
 * are round-tripped through the same parser, so the writer and reader
 * keep each other honest.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/job_protocol.h"
#include "sim/run_policy.h"
#include "util/error.h"

namespace confsim {
namespace {

void
expectParseConfigError(const std::string &text)
{
    try {
        parseJson(text);
        FAIL() << "expected Error{kConfig} for: " << text;
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kConfig) << text;
    }
}

TEST(JsonParserTest, ParsesScalarsObjectsAndArrays)
{
    const JsonValue doc = parseJson(
        R"({"s":"hi","n":-12.5e1,"t":true,"f":false,"z":null,)"
        R"("a":[1,2,3],"o":{"inner":"x"}})");
    ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
    EXPECT_EQ(doc.find("s")->asString("s"), "hi");
    EXPECT_EQ(doc.find("n")->asNumber("n"), -125.0);
    EXPECT_TRUE(doc.find("t")->asBool("t"));
    EXPECT_FALSE(doc.find("f")->asBool("f"));
    EXPECT_EQ(doc.find("z")->kind, JsonValue::Kind::kNull);
    ASSERT_EQ(doc.find("a")->items.size(), 3u);
    EXPECT_EQ(doc.find("a")->items[1].asUnsigned("a[1]"), 2u);
    EXPECT_EQ(doc.find("o")->find("inner")->asString("inner"), "x");
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParserTest, DecodesEscapesAndSurrogatePairs)
{
    const JsonValue doc = parseJson(
        R"({"esc":"a\"b\\c\/d\n\t\u0041","smile":"\uD83D\uDE00"})");
    EXPECT_EQ(doc.find("esc")->text, "a\"b\\c/d\n\tA");
    EXPECT_EQ(doc.find("smile")->text, "\xF0\x9F\x98\x80");
}

TEST(JsonParserTest, RejectsMalformedInputWithConfigErrors)
{
    expectParseConfigError("");
    expectParseConfigError("{");
    expectParseConfigError("{\"a\":}");
    expectParseConfigError("{\"a\":1,}");
    expectParseConfigError("[1 2]");
    expectParseConfigError("{\"a\":1} trailing");
    expectParseConfigError("nul");
    expectParseConfigError("{\"a\":01}");
    expectParseConfigError("\"unterminated");
    expectParseConfigError("{\"bad\":\"\\u12\"}");
    expectParseConfigError("{\"lone\":\"\\uD83D\"}");

    // Depth bomb: deeper than the parser's recursion cap must error,
    // not overflow the stack.
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += "[";
    expectParseConfigError(deep);
}

TEST(JsonParserTest, TypedAccessorsRejectWrongKinds)
{
    const JsonValue doc = parseJson(R"({"s":"x","n":3.5,"neg":-1})");
    EXPECT_THROW(doc.find("s")->asNumber("s"), Error);
    EXPECT_THROW(doc.find("n")->asString("n"), Error);
    EXPECT_THROW(doc.find("n")->asBool("n"), Error);
    EXPECT_THROW(doc.find("n")->asUnsigned("n"), Error);  // not whole
    EXPECT_THROW(doc.find("neg")->asUnsigned("neg"), Error);
}

TEST(JobProtocolTest, DecodesFullSubmitRequest)
{
    const ProtocolRequest request = parseProtocolRequest(
        R"({"op":"submit","tenant":"alice","label":"sweep1",)"
        R"("benchmarks":["groff","jpeg"],"branches":50000,)"
        R"("configs":["ones","resetting"],"predictor":"gshare-small",)"
        R"("error_mode":"continue","max_attempts":3,)"
        R"("watchdog_ms":1000,"checkpoint":true,)"
        R"("checkpoint_every":10000,"resume":true})");
    EXPECT_EQ(request.op, ProtocolRequest::Op::kSubmit);
    EXPECT_EQ(request.spec.tenant, "alice");
    EXPECT_EQ(request.spec.label, "sweep1");
    EXPECT_EQ(request.spec.benchmarks,
              (std::vector<std::string>{"groff", "jpeg"}));
    EXPECT_EQ(request.spec.branches, 50'000u);
    ASSERT_EQ(request.spec.configs.size(), 2u);
    EXPECT_NE(request.spec.configs[0].makePredictor(), nullptr);
    EXPECT_FALSE(request.spec.configs[1].makeEstimators().empty());
    EXPECT_EQ(request.spec.policy.errorMode,
              ErrorMode::kContinueOnError);
    EXPECT_EQ(request.spec.policy.maxAttempts, 3u);
    EXPECT_EQ(request.spec.policy.watchdogMs, 1'000u);
    EXPECT_TRUE(request.spec.checkpoint);
    EXPECT_EQ(request.spec.checkpointEvery, 10'000u);
    EXPECT_TRUE(request.spec.resume);
}

TEST(JobProtocolTest, SubmitDefaultsAreMinimal)
{
    const ProtocolRequest request = parseProtocolRequest(
        R"({"op":"submit","configs":["saturating"]})");
    EXPECT_EQ(request.spec.tenant, "default");
    EXPECT_EQ(request.spec.label, "");
    EXPECT_TRUE(request.spec.benchmarks.empty());
    EXPECT_EQ(request.spec.policy.errorMode, ErrorMode::kFailFast);
    EXPECT_FALSE(request.spec.checkpoint);
    EXPECT_FALSE(request.spec.resume);
}

TEST(JobProtocolTest, DecodesControlRequests)
{
    EXPECT_EQ(parseProtocolRequest(R"({"op":"status"})").op,
              ProtocolRequest::Op::kStatus);
    EXPECT_FALSE(parseProtocolRequest(R"({"op":"status"})").hasId);

    const ProtocolRequest wait =
        parseProtocolRequest(R"({"op":"wait","id":7})");
    EXPECT_EQ(wait.op, ProtocolRequest::Op::kWait);
    EXPECT_TRUE(wait.hasId);
    EXPECT_EQ(wait.id, 7u);

    EXPECT_EQ(parseProtocolRequest(R"({"op":"cancel","id":1})").op,
              ProtocolRequest::Op::kCancel);
    EXPECT_EQ(parseProtocolRequest(
                  R"({"op":"drain","mode":"checkpoint"})")
                  .drainMode,
              DrainMode::kCheckpoint);
    EXPECT_EQ(parseProtocolRequest(R"({"op":"drain"})").drainMode,
              DrainMode::kWait);
    EXPECT_EQ(parseProtocolRequest(R"({"op":"quit"})").op,
              ProtocolRequest::Op::kQuit);
}

TEST(JobProtocolTest, RejectsBadRequestsWithConfigErrors)
{
    const std::vector<std::string> bad = {
        R"({"op":"explode"})",          // unknown op
        R"([1,2,3])",                   // not an object
        R"({"op":"wait"})",             // missing id
        R"({"op":"cancel"})",           // missing id
        R"({"op":"drain","mode":"x"})", // unknown drain mode
        R"({"op":"submit","configs":["no-such-config"]})",
        R"({"op":"submit","configs":["ones"],)"
        R"("predictor":"no-such-predictor"})",
        R"({"op":"submit","configs":["ones"],)"
        R"("error_mode":"maybe"})",
    };
    for (const std::string &line : bad) {
        try {
            parseProtocolRequest(line);
            FAIL() << "expected Error{kConfig} for: " << line;
        } catch (const Error &e) {
            EXPECT_EQ(e.category(), ErrorCategory::kConfig) << line;
        }
    }
}

TEST(JobProtocolTest, RegistryCoversEveryAdvertisedName)
{
    const std::vector<std::string> names = knownConfigNames();
    EXPECT_GE(names.size(), 5u);
    for (const std::string &name : names) {
        for (const char *predictor :
             {"gshare-large", "gshare-small"}) {
            const SweepConfiguration config =
                makeNamedConfiguration(name, predictor);
            EXPECT_NE(config.label, "");
            EXPECT_NE(config.makePredictor(), nullptr) << name;
            EXPECT_EQ(config.makeEstimators().size(), 1u) << name;
        }
    }
    EXPECT_THROW(makeNamedConfiguration("bogus", "gshare-large"),
                 Error);
}

TEST(JobProtocolTest, ResponsesRoundTripThroughTheParser)
{
    const JsonValue submit = parseJson(protocolSubmitOk(42));
    EXPECT_TRUE(submit.find("ok")->asBool("ok"));
    EXPECT_EQ(submit.find("op")->asString("op"), "submit");
    EXPECT_EQ(submit.find("id")->asUnsigned("id"), 42u);

    const JsonValue ok = parseJson(protocolOk("drain"));
    EXPECT_TRUE(ok.find("ok")->asBool("ok"));
    EXPECT_EQ(ok.find("op")->asString("op"), "drain");

    const JsonValue error = parseJson(protocolError(
        "submit", "queue is full \"now\"", ErrorCategory::kResource));
    EXPECT_FALSE(error.find("ok")->asBool("ok"));
    EXPECT_EQ(error.find("category")->asString("category"),
              "resource");
    EXPECT_EQ(error.find("error")->asString("error"),
              "queue is full \"now\"");

    JobStatus job;
    job.id = 3;
    job.tenant = "alice";
    job.label = "j";
    job.state = JobState::kFailed;
    job.error = "trace decode failed";
    job.errorCategory = ErrorCategory::kTrace;
    job.checkpointed = true;
    const JsonValue status = parseJson(protocolJobStatus("wait", job));
    EXPECT_EQ(status.find("state")->asString("state"), "failed");
    EXPECT_EQ(status.find("category")->asString("category"), "trace");
    EXPECT_TRUE(
        status.find("checkpointed")->asBool("checkpointed"));

    ServiceStatus service;
    service.submitted = 5;
    service.admitted = 4;
    service.rejected = 1;
    TenantStatus tenant;
    tenant.tenant = "alice";
    tenant.admitted = 4;
    service.tenants.push_back(tenant);
    const JsonValue counters =
        parseJson(protocolServiceStatus(service));
    EXPECT_EQ(counters.find("submitted")->asUnsigned("submitted"), 5u);
    EXPECT_EQ(counters.find("rejected")->asUnsigned("rejected"), 1u);
    ASSERT_EQ(counters.find("tenants")->items.size(), 1u);
    EXPECT_EQ(counters.find("tenants")
                  ->items[0]
                  .find("tenant")
                  ->asString("tenant"),
              "alice");
}

} // namespace
} // namespace confsim
