/**
 * @file
 * SweepService contract tests: admission control and load shedding,
 * tenant fairness, exact accounting under concurrency, per-job fault
 * isolation, cooperative cancellation, and every drain mode.
 *
 * The scheduling invariants the service promises are all checked
 * against the two accounting identities documented in
 * serve/sweep_service.h:
 *
 *   submitted == admitted + rejected          (always)
 *   admitted  == finished + failed
 *               + cancelled + drained         (after drain)
 *
 * Timing control uses GateSource, a TraceSource decorator that parks
 * a job's trace stream on a test-owned flag: jobs stay predictably
 * in-flight until the test releases them, with no sleeps-as-sync.
 * Bit-exactness is asserted against direct SuiteRunner::runSweep runs
 * of the same spec — scheduling must never perturb simulation.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "fault/fault_injection.h"
#include "predictor/gshare.h"
#include "serve/sweep_service.h"
#include "sim/suite_runner.h"
#include "util/error.h"
#include "workload/suite.h"

namespace confsim {
namespace {

constexpr std::uint64_t kBranches = 20'000;

/** Shared open/reached flag for GateSource. */
using Flag = std::shared_ptr<std::atomic<bool>>;

Flag
makeFlag(bool value = false)
{
    return std::make_shared<std::atomic<bool>>(value);
}

/**
 * TraceSource decorator that delivers @p gateAfter records, then
 * parks until @p open becomes true (setting @p reached when it starts
 * waiting). A 30 s cap keeps a buggy test from deadlocking the suite.
 * Serialization delegates to the inner source, so a gated job's
 * checkpoints resume through an un-gated source bit-exactly.
 */
class GateSource : public TraceSource
{
  public:
    GateSource(std::unique_ptr<TraceSource> inner, Flag open,
               std::uint64_t gateAfter = 0, Flag reached = nullptr)
        : inner_(std::move(inner)), open_(std::move(open)),
          reached_(std::move(reached)), gateAfter_(gateAfter)
    {}

    bool
    next(BranchRecord &record) override
    {
        if (!passed_ && delivered_ == gateAfter_) {
            if (reached_)
                reached_->store(true);
            const auto deadline = std::chrono::steady_clock::now() +
                                  std::chrono::seconds(30);
            while (!open_->load()) {
                if (std::chrono::steady_clock::now() > deadline)
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
            passed_ = true;
        }
        if (!inner_->next(record))
            return false;
        ++delivered_;
        return true;
    }

    void
    reset() override
    {
        inner_->reset();
        delivered_ = 0;
        passed_ = false;
    }

    bool checkpointable() const override
    {
        return inner_->checkpointable();
    }
    void saveState(StateWriter &out) const override
    {
        inner_->saveState(out);
    }
    void loadState(StateReader &in) override { inner_->loadState(in); }
    std::uint32_t stateVersion() const override
    {
        return inner_->stateVersion();
    }

  private:
    std::unique_ptr<TraceSource> inner_;
    Flag open_;
    Flag reached_;
    std::uint64_t gateAfter_ = 0;
    std::uint64_t delivered_ = 0;
    bool passed_ = false;
};

/** A wrapSource hook that gates every benchmark of the job. */
SourceWrapper
gateWrapper(Flag open, std::uint64_t gateAfter = 0,
            Flag reached = nullptr)
{
    return [open, gateAfter, reached](std::size_t,
                                      std::unique_ptr<TraceSource>
                                          inner) {
        return std::make_unique<GateSource>(std::move(inner), open,
                                            gateAfter, reached);
    };
}

/** One cheap single-estimator configuration grid (small gshare). */
std::vector<SweepConfiguration>
testGrid(std::size_t configs = 1)
{
    std::vector<SweepConfiguration> grid;
    for (std::size_t i = 0; i < configs; ++i) {
        SweepConfiguration config;
        config.label = "cfg" + std::to_string(i);
        config.makePredictor = [] {
            return std::make_unique<GsharePredictor>(4096, 12);
        };
        config.makeEstimators = [i] {
            std::vector<std::unique_ptr<ConfidenceEstimator>> set;
            set.push_back(std::make_unique<OneLevelCounterConfidence>(
                IndexScheme::PcXorBhr, 1024,
                i % 2 == 0 ? CounterKind::Resetting
                           : CounterKind::Saturating,
                16, 0));
            return set;
        };
        grid.push_back(std::move(config));
    }
    return grid;
}

JobSpec
testSpec(std::string tenant, std::string label,
         std::size_t configs = 1)
{
    JobSpec spec;
    spec.tenant = std::move(tenant);
    spec.label = std::move(label);
    spec.benchmarks = {"groff"};
    spec.branches = kBranches;
    spec.configs = testGrid(configs);
    return spec;
}

/** Poll @p predicate for up to 10 s. */
template <typename Predicate>
bool
eventually(Predicate &&predicate)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
}

/** The two accounting identities, checked from one snapshot. */
void
expectExactAccounting(const ServiceStatus &status, bool settled)
{
    EXPECT_EQ(status.submitted, status.admitted + status.rejected);
    if (settled) {
        EXPECT_EQ(status.admitted, status.finished + status.failed +
                                       status.cancelled +
                                       status.drained);
    }
    std::uint64_t tenantAdmitted = 0;
    std::uint64_t tenantRejected = 0;
    for (const TenantStatus &tenant : status.tenants) {
        tenantAdmitted += tenant.admitted;
        tenantRejected += tenant.rejected;
    }
    EXPECT_EQ(tenantAdmitted, status.admitted);
    EXPECT_EQ(tenantRejected, status.rejected);
}

TEST(SweepServiceTest, RunsJobsToCompletionWithExactAccounting)
{
    SweepService service(ServiceOptions{});
    const std::uint64_t a = service.submit(testSpec("alice", "a", 2));
    const std::uint64_t b = service.submit(testSpec("bob", "b"));

    const JobStatus doneA = service.wait(a);
    const JobStatus doneB = service.wait(b);
    EXPECT_EQ(doneA.state, JobState::kFinished);
    EXPECT_EQ(doneB.state, JobState::kFinished);
    ASSERT_NE(doneA.result, nullptr);
    EXPECT_EQ(doneA.result->perConfig.size(), 2u);
    EXPECT_EQ(doneA.error, "");
    EXPECT_GE(doneA.runMs, 0.0);

    service.drain(DrainMode::kWait);
    const ServiceStatus status = service.serviceStatus();
    EXPECT_EQ(status.submitted, 2u);
    EXPECT_EQ(status.finished, 2u);
    EXPECT_EQ(status.rejected, 0u);
    expectExactAccounting(status, true);
    EXPECT_TRUE(service.drained());
}

TEST(SweepServiceTest, ResultsBitExactWithDirectRunSweep)
{
    SweepService service(ServiceOptions{});
    const std::uint64_t id =
        service.submit(testSpec("alice", "exact", 2));
    const JobStatus done = service.wait(id);
    ASSERT_EQ(done.state, JobState::kFinished);
    ASSERT_NE(done.result, nullptr);

    SuiteRunner runner(BenchmarkSuite::ibsSubset({"groff"}, kBranches));
    const SweepSuiteResult direct =
        runner.runSweep(testGrid(2), DriverOptions{}, SweepOptions{});

    ASSERT_EQ(done.result->perConfig.size(), direct.perConfig.size());
    for (std::size_t c = 0; c < direct.perConfig.size(); ++c) {
        const SuiteRunResult &got = done.result->perConfig[c];
        const SuiteRunResult &want = direct.perConfig[c];
        EXPECT_EQ(got.compositeMispredictRate,
                  want.compositeMispredictRate);
        ASSERT_EQ(got.perBenchmark.size(), want.perBenchmark.size());
        for (std::size_t b = 0; b < want.perBenchmark.size(); ++b) {
            EXPECT_EQ(got.perBenchmark[b].branches,
                      want.perBenchmark[b].branches);
            EXPECT_EQ(got.perBenchmark[b].mispredicts,
                      want.perBenchmark[b].mispredicts);
        }
    }
}

TEST(SweepServiceTest, ShedsLoadWhenQueueIsFull)
{
    const Flag open = makeFlag();
    ServiceOptions options;
    options.queueDepth = 1;
    options.jobSlots = 1;
    options.poolWorkers = 1;
    SweepService service(options);

    JobSpec running = testSpec("alice", "running");
    running.wrapSource = gateWrapper(open);
    const std::uint64_t first = service.submit(std::move(running));
    ASSERT_TRUE(eventually([&] {
        return service.status(first).state == JobState::kRunning;
    }));

    // One queued job fits; the next submit must shed with kResource.
    const std::uint64_t second =
        service.submit(testSpec("alice", "queued"));
    try {
        service.submit(testSpec("alice", "shed"));
        FAIL() << "expected Error{kResource}";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kResource);
        EXPECT_TRUE(e.retryable());
    }

    ServiceStatus status = service.serviceStatus();
    EXPECT_EQ(status.rejected, 1u);
    EXPECT_EQ(status.queued, 1u);
    expectExactAccounting(status, false);

    open->store(true);
    EXPECT_EQ(service.wait(first).state, JobState::kFinished);
    EXPECT_EQ(service.wait(second).state, JobState::kFinished);
    service.drain(DrainMode::kWait);
    status = service.serviceStatus();
    EXPECT_EQ(status.submitted, 3u);
    EXPECT_EQ(status.finished, 2u);
    expectExactAccounting(status, true);
}

TEST(SweepServiceTest, TenantInFlightCapYieldsSlotToOtherTenant)
{
    const Flag open = makeFlag();
    ServiceOptions options;
    options.jobSlots = 2;
    options.tenantMaxInFlight = 1;
    options.poolWorkers = 1;
    SweepService service(options);

    JobSpec a1 = testSpec("alice", "a1");
    a1.wrapSource = gateWrapper(open);
    JobSpec a2 = testSpec("alice", "a2");
    a2.wrapSource = gateWrapper(open);
    const std::uint64_t firstA = service.submit(std::move(a1));
    const std::uint64_t secondA = service.submit(std::move(a2));

    // Both slots are free, but alice's cap holds a2 in the queue.
    ASSERT_TRUE(eventually([&] {
        return service.status(firstA).state == JobState::kRunning;
    }));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(service.status(secondA).state, JobState::kQueued);
    EXPECT_EQ(service.serviceStatus().running, 1u);

    // A second tenant's job bypasses the queued a2 onto the idle slot.
    JobSpec b1 = testSpec("bob", "b1");
    b1.wrapSource = gateWrapper(open);
    const std::uint64_t firstB = service.submit(std::move(b1));
    ASSERT_TRUE(eventually([&] {
        return service.status(firstB).state == JobState::kRunning;
    }));
    EXPECT_EQ(service.status(secondA).state, JobState::kQueued);
    for (const TenantStatus &tenant :
         service.serviceStatus().tenants) {
        EXPECT_LE(tenant.inFlight, 1u) << tenant.tenant;
    }

    open->store(true);
    EXPECT_EQ(service.wait(firstA).state, JobState::kFinished);
    EXPECT_EQ(service.wait(secondA).state, JobState::kFinished);
    EXPECT_EQ(service.wait(firstB).state, JobState::kFinished);
    service.drain(DrainMode::kWait);
    expectExactAccounting(service.serviceStatus(), true);
}

TEST(SweepServiceTest, RejectsUnrunnableSpecsAsConfig)
{
    const Flag open = makeFlag();
    ServiceOptions options;
    options.poolWorkers = 1;
    options.jobSlots = 1;
    SweepService service(options); // no jobDir

    JobSpec empty = testSpec("alice", "empty");
    empty.configs.clear();
    EXPECT_THROW(
        {
            try {
                service.submit(std::move(empty));
            } catch (const Error &e) {
                EXPECT_EQ(e.category(), ErrorCategory::kConfig);
                throw;
            }
        },
        Error);

    JobSpec ckpt = testSpec("alice", "ckpt");
    ckpt.checkpoint = true;
    EXPECT_THROW(service.submit(std::move(ckpt)), Error);

    // A live duplicate tenant+label is rejected; after the original
    // finishes the label is reusable.
    JobSpec gated = testSpec("alice", "dup");
    gated.wrapSource = gateWrapper(open);
    const std::uint64_t id = service.submit(std::move(gated));
    EXPECT_THROW(service.submit(testSpec("alice", "dup")), Error);
    EXPECT_NO_THROW(service.submit(testSpec("bob", "dup")));
    open->store(true);
    EXPECT_EQ(service.wait(id).state, JobState::kFinished);
    EXPECT_NO_THROW(service.submit(testSpec("alice", "dup")));

    service.drain(DrainMode::kWait);
    const ServiceStatus status = service.serviceStatus();
    EXPECT_EQ(status.rejected, 3u);
    expectExactAccounting(status, true);
}

TEST(SweepServiceTest, FaultedJobNeverPerturbsItsSibling)
{
    ServiceOptions options;
    options.jobSlots = 2;
    SweepService service(options);

    // The faulty tenant's trace stream hard-fails mid-run; the clean
    // tenant's concurrent job must finish bit-exact with a direct run.
    JobSpec faulty = testSpec("mallory", "faulty");
    faulty.wrapSource = [](std::size_t,
                           std::unique_ptr<TraceSource> inner) {
        FaultSpec spec;
        spec.failAfter = 1'000;
        return std::make_unique<FaultInjectingTraceSource>(
            std::move(inner), spec);
    };
    JobSpec clean = testSpec("alice", "clean");

    const std::uint64_t badId = service.submit(std::move(faulty));
    const std::uint64_t goodId = service.submit(std::move(clean));
    const JobStatus bad = service.wait(badId);
    const JobStatus good = service.wait(goodId);

    EXPECT_EQ(bad.state, JobState::kFailed);
    EXPECT_EQ(bad.errorCategory, ErrorCategory::kTrace);
    EXPECT_NE(bad.error, "");
    EXPECT_EQ(bad.result, nullptr);

    ASSERT_EQ(good.state, JobState::kFinished);
    ASSERT_NE(good.result, nullptr);
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"groff"}, kBranches));
    const SweepSuiteResult direct =
        runner.runSweep(testGrid(), DriverOptions{}, SweepOptions{});
    EXPECT_EQ(good.result->perConfig[0].compositeMispredictRate,
              direct.perConfig[0].compositeMispredictRate);
    EXPECT_EQ(good.result->perConfig[0].perBenchmark[0].mispredicts,
              direct.perConfig[0].perBenchmark[0].mispredicts);

    service.drain(DrainMode::kWait);
    const ServiceStatus status = service.serviceStatus();
    EXPECT_EQ(status.finished, 1u);
    EXPECT_EQ(status.failed, 1u);
    expectExactAccounting(status, true);
}

TEST(SweepServiceTest, CancelsQueuedAndRunningJobs)
{
    const Flag open = makeFlag();
    ServiceOptions options;
    options.jobSlots = 1;
    options.poolWorkers = 1;
    SweepService service(options);

    JobSpec running = testSpec("alice", "running");
    running.wrapSource = gateWrapper(open);
    const std::uint64_t runId = service.submit(std::move(running));
    const std::uint64_t queuedId =
        service.submit(testSpec("alice", "queued"));
    ASSERT_TRUE(eventually([&] {
        return service.status(runId).state == JobState::kRunning;
    }));

    // Queued: cancels synchronously without ever starting.
    EXPECT_TRUE(service.cancelJob(queuedId));
    EXPECT_EQ(service.status(queuedId).state, JobState::kCancelled);
    EXPECT_FALSE(service.cancelJob(queuedId)); // already terminal
    EXPECT_FALSE(service.cancelJob(9999));     // unknown

    // Running: the per-job token unwinds it once the gate opens.
    EXPECT_TRUE(service.cancelJob(runId));
    open->store(true);
    const JobStatus cancelled = service.wait(runId);
    EXPECT_EQ(cancelled.state, JobState::kCancelled);
    EXPECT_EQ(cancelled.errorCategory, ErrorCategory::kCancelled);

    service.drain(DrainMode::kWait);
    const ServiceStatus status = service.serviceStatus();
    EXPECT_EQ(status.cancelled, 2u);
    EXPECT_EQ(status.finished, 0u);
    expectExactAccounting(status, true);
}

TEST(SweepServiceTest, AccountingStaysExactUnderConcurrentSubmits)
{
    ServiceOptions options;
    options.queueDepth = 4;
    options.jobSlots = 2;
    options.poolWorkers = 1;
    SweepService service(options);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 8;
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> shed{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                JobSpec spec =
                    testSpec("tenant" + std::to_string(t),
                             "job" + std::to_string(i));
                spec.branches = 2'000; // fast: accounting, not sim
                try {
                    service.submit(std::move(spec));
                    ++accepted;
                } catch (const Error &e) {
                    EXPECT_EQ(e.category(),
                              ErrorCategory::kResource);
                    ++shed;
                }
            }
        });
    }
    for (std::thread &thread : submitters)
        thread.join();

    service.drain(DrainMode::kWait);
    const ServiceStatus status = service.serviceStatus();
    EXPECT_EQ(status.submitted,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(status.admitted, accepted.load());
    EXPECT_EQ(status.rejected, shed.load());
    EXPECT_EQ(status.finished, accepted.load());
    expectExactAccounting(status, true);
}

TEST(SweepServiceTest, DrainCancelSettlesInFlightAndQueuedJobs)
{
    const Flag open = makeFlag();
    ServiceOptions options;
    options.jobSlots = 1;
    options.poolWorkers = 1;
    SweepService service(options);

    JobSpec running = testSpec("alice", "running");
    running.wrapSource = gateWrapper(open);
    const std::uint64_t runId = service.submit(std::move(running));
    const std::uint64_t queuedId =
        service.submit(testSpec("alice", "queued"));
    ASSERT_TRUE(eventually([&] {
        return service.status(runId).state == JobState::kRunning;
    }));

    // Drain blocks on the gated job; release the gate once the drain
    // has cancelled the service token so the driver unwinds.
    std::thread drainer([&] { service.drain(DrainMode::kCancel); });
    ASSERT_TRUE(
        eventually([&] { return service.serviceStatus().draining; }));
    open->store(true);
    drainer.join();

    EXPECT_TRUE(service.drained());
    EXPECT_EQ(service.status(runId).state, JobState::kCancelled);
    EXPECT_EQ(service.status(queuedId).state, JobState::kCancelled);

    // Post-drain submits are rejected (kCancelled) and still counted.
    try {
        service.submit(testSpec("alice", "late"));
        FAIL() << "expected Error{kCancelled}";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kCancelled);
    }
    const ServiceStatus status = service.serviceStatus();
    EXPECT_EQ(status.submitted, 3u);
    EXPECT_EQ(status.cancelled, 2u);
    EXPECT_EQ(status.rejected, 1u);
    expectExactAccounting(status, true);
}

TEST(SweepServiceTest, ExternalTokenCancelRejectsNewSubmits)
{
    CancellationToken external;
    ServiceOptions options;
    options.poolWorkers = 1;
    options.jobSlots = 1;
    options.cancel = &external;
    SweepService service(options);

    EXPECT_NO_THROW(service.submit(testSpec("alice", "before")));
    external.cancel();
    try {
        service.submit(testSpec("alice", "after"));
        FAIL() << "expected Error{kCancelled}";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kCancelled);
    }
    service.drain(DrainMode::kCancel);
    expectExactAccounting(service.serviceStatus(), true);
}

TEST(SweepServiceTest, CheckpointDrainLeavesResumableJobThatMatches)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() / "confsim_sweep_service_test";
    fs::remove_all(root);
    fs::create_directories(root);

    constexpr std::uint64_t kLongTrace = 60'000;
    const auto specFor = [&](bool resume) {
        JobSpec spec = testSpec("alice", "resumable");
        spec.branches = kLongTrace;
        spec.checkpoint = true;
        spec.checkpointEvery = 8'000;
        spec.resume = resume;
        return spec;
    };

    const Flag open = makeFlag();
    const Flag reached = makeFlag();
    std::uint64_t id = 0;
    {
        ServiceOptions options;
        options.jobSlots = 1;
        options.poolWorkers = 1;
        options.jobDir = root.string();
        SweepService service(options);

        // Deliver 30k records (several checkpoint generations), then
        // park until the drain below has cancelled the job.
        JobSpec spec = specFor(false);
        spec.wrapSource = gateWrapper(open, 30'000, reached);
        id = service.submit(std::move(spec));
        ASSERT_TRUE(eventually([&] { return reached->load(); }));

        std::thread drainer(
            [&] { service.drain(DrainMode::kCheckpoint); });
        ASSERT_TRUE(eventually(
            [&] { return service.serviceStatus().draining; }));
        open->store(true);
        drainer.join();

        const JobStatus status = service.status(id);
        EXPECT_EQ(status.state, JobState::kDrained);
        EXPECT_TRUE(status.checkpointed);
        EXPECT_TRUE(hasCheckpointFiles(status.jobDir + "/ckpt"));
        const ServiceStatus totals = service.serviceStatus();
        EXPECT_EQ(totals.drained, 1u);
        expectExactAccounting(totals, true);
    }

    // A fresh service over the same jobDir resumes the drained job
    // (same tenant+label keys the same directory) to completion.
    SweepSuiteResult resumed;
    {
        ServiceOptions options;
        options.jobSlots = 1;
        options.poolWorkers = 1;
        options.jobDir = root.string();
        SweepService service(options);
        const std::uint64_t resumeId = service.submit(specFor(true));
        const JobStatus done = service.wait(resumeId);
        ASSERT_EQ(done.state, JobState::kFinished) << done.error;
        ASSERT_NE(done.result, nullptr);
        resumed = *done.result;
        service.drain(DrainMode::kWait);
    }

    // Bit-exact with one uninterrupted direct run of the same spec.
    SuiteRunner runner(
        BenchmarkSuite::ibsSubset({"groff"}, kLongTrace));
    const SweepSuiteResult direct =
        runner.runSweep(testGrid(), DriverOptions{}, SweepOptions{});
    ASSERT_EQ(resumed.perConfig.size(), direct.perConfig.size());
    EXPECT_EQ(resumed.perConfig[0].compositeMispredictRate,
              direct.perConfig[0].compositeMispredictRate);
    EXPECT_EQ(resumed.perConfig[0].perBenchmark[0].mispredicts,
              direct.perConfig[0].perBenchmark[0].mispredicts);
    EXPECT_EQ(resumed.perConfig[0].perBenchmark[0].branches,
              direct.perConfig[0].perBenchmark[0].branches);

    fs::remove_all(root);
}

TEST(SweepServiceTest, SanitizePathComponentIsLexicalAndStable)
{
    EXPECT_EQ(sanitizePathComponent("alice-1.2_x"), "alice-1.2_x");
    EXPECT_EQ(sanitizePathComponent("../../etc"), ".._.._etc");
    EXPECT_EQ(sanitizePathComponent("a b/c"), "a_b_c");
    EXPECT_EQ(sanitizePathComponent(""), "_");
    EXPECT_EQ(sanitizePathComponent("tenant"),
              sanitizePathComponent("tenant"));
}

} // namespace
} // namespace confsim
