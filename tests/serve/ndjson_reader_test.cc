/**
 * @file
 * Tests for the bounded NDJSON line framer, plus a regression test
 * driving the sweep_server binary through its --requests transport
 * with CRLF line endings and an over-long line (the two framing
 * faults the reader exists to fix).
 */

#include "serve/ndjson_reader.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace confsim {
namespace {

/** Drain every ready line. */
std::vector<NdjsonLineReader::Line>
drain(NdjsonLineReader &reader)
{
    std::vector<NdjsonLineReader::Line> out;
    NdjsonLineReader::Line line;
    while (reader.next(line))
        out.push_back(line);
    return out;
}

TEST(NdjsonReaderTest, SplitsLfTerminatedLines)
{
    NdjsonLineReader reader;
    const std::string input = "one\ntwo\nthree\n";
    reader.feed(input.data(), input.size());
    const auto lines = drain(reader);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0].text, "one");
    EXPECT_EQ(lines[1].text, "two");
    EXPECT_EQ(lines[2].text, "three");
    for (const auto &line : lines) {
        EXPECT_FALSE(line.oversize);
        EXPECT_EQ(line.bytes, line.text.size());
    }
}

TEST(NdjsonReaderTest, StripsCrlfEndings)
{
    NdjsonLineReader reader;
    const std::string input = "{\"op\":\"status\"}\r\nplain\n";
    reader.feed(input.data(), input.size());
    const auto lines = drain(reader);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].text, "{\"op\":\"status\"}");
    EXPECT_EQ(lines[0].bytes, lines[0].text.size());
    EXPECT_EQ(lines[1].text, "plain");
}

TEST(NdjsonReaderTest, ReassemblesLinesAcrossFeeds)
{
    NdjsonLineReader reader;
    const std::string input = "hello world\r\n";
    for (char c : input)
        reader.feed(&c, 1);
    const auto lines = drain(reader);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].text, "hello world");
}

TEST(NdjsonReaderTest, SkipsBlankAndCrOnlyLines)
{
    NdjsonLineReader reader;
    const std::string input = "\n\r\na\n\n";
    reader.feed(input.data(), input.size());
    const auto lines = drain(reader);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].text, "a");
}

TEST(NdjsonReaderTest, FinishFlushesUnterminatedTail)
{
    NdjsonLineReader reader;
    const std::string input = "tail-no-newline";
    reader.feed(input.data(), input.size());
    EXPECT_TRUE(drain(reader).empty());
    reader.finish();
    const auto lines = drain(reader);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].text, "tail-no-newline");
}

TEST(NdjsonReaderTest, OversizeLineIsFlaggedNotSplit)
{
    NdjsonLineReader reader(16);
    const std::string big(100, 'x');
    const std::string input = big + "\nafter\n";
    reader.feed(input.data(), input.size());
    const auto lines = drain(reader);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_TRUE(lines[0].oversize);
    EXPECT_EQ(lines[0].bytes, 100u);
    // The kept prefix is capped — memory stays bounded.
    EXPECT_EQ(lines[0].text.size(), 16u);
    // Framing recovers cleanly on the next line.
    EXPECT_FALSE(lines[1].oversize);
    EXPECT_EQ(lines[1].text, "after");
}

TEST(NdjsonReaderTest, OversizeDetectionSpansFeeds)
{
    NdjsonLineReader reader(8);
    const std::string chunk(5, 'y');
    reader.feed(chunk.data(), chunk.size());
    reader.feed(chunk.data(), chunk.size());
    const char nl = '\n';
    reader.feed(&nl, 1);
    const auto lines = drain(reader);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(lines[0].oversize);
    EXPECT_EQ(lines[0].bytes, 10u);
}

TEST(NdjsonReaderTest, ZeroCapIsFatal)
{
    EXPECT_THROW(NdjsonLineReader(0), std::runtime_error);
}

#ifdef CONFSIM_SWEEP_SERVER

/** Run the server over @p requests_path; return stdout lines. */
std::vector<std::string>
runServer(const std::string &requests_path, const std::string &job_dir)
{
    const std::string cmd = std::string(CONFSIM_SWEEP_SERVER) +
                            " --requests " + requests_path +
                            " --job-dir " + job_dir + " 2>/dev/null";
    std::FILE *pipe = ::popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::vector<std::string> lines;
    if (pipe != nullptr) {
        char buf[4096];
        std::string current;
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0)
            current.append(buf, n);
        const int status = ::pclose(pipe);
        EXPECT_EQ(status, 0);
        std::size_t start = 0;
        while (start < current.size()) {
            const std::size_t eol = current.find('\n', start);
            const std::size_t stop =
                eol == std::string::npos ? current.size() : eol;
            lines.push_back(current.substr(start, stop - start));
            start = stop + 1;
        }
    }
    return lines;
}

TEST(SweepServerRequestsFileTest, CrlfAndOversizeLines)
{
    const std::string dir =
        ::testing::TempDir() + "ndjson_server_regression";
    const std::string requests = dir + "_requests.ndjson";
    {
        std::ofstream out(requests, std::ios::binary);
        ASSERT_TRUE(out.good());
        // CRLF-terminated request: must parse, not fail on the '\r'.
        out << "{\"op\":\"status\"}\r\n";
        // One ~2 MiB junk line: must yield a single structured
        // kConfig error, not a crash or a cascade of parse errors.
        out << std::string(2u << 20, 'x') << "\n";
        // CRLF again after the oversize line: framing recovered.
        out << "{\"op\":\"quit\"}\r\n";
    }

    const auto lines = runServer(requests, dir + "_jobs");
    ASSERT_EQ(lines.size(), 3u) << "one response per logical line";
    EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
    EXPECT_NE(lines[0].find("\"op\":\"status\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"ok\":false"), std::string::npos);
    EXPECT_NE(lines[1].find("\"category\":\"config\""),
              std::string::npos);
    EXPECT_NE(lines[1].find("exceeds"), std::string::npos);
    EXPECT_NE(lines[2].find("\"ok\":true"), std::string::npos);
    EXPECT_NE(lines[2].find("\"op\":\"quit\""), std::string::npos);
    std::remove(requests.c_str());
}

#endif // CONFSIM_SWEEP_SERVER

} // namespace
} // namespace confsim
