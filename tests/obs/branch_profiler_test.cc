/** @file Tests for per-branch attribution (obs/branch_profiler.h). */

#include "obs/branch_profiler.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/telemetry.h"

namespace confsim {
namespace {

std::vector<BranchProfileEstimatorInfo>
oneOrderedEstimator(std::size_t buckets = 16)
{
    return {{"est-ordered", buckets, true}};
}

/** Feed one retired branch through the profile. */
void
feed(BranchProfile *profile, std::uint64_t pc, std::uint64_t bucket,
     bool correct)
{
    profile->onBucket(0, bucket, correct);
    profile->onBranch(pc, !correct);
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(BranchProfileTest, DisabledUntilConfigured)
{
    BranchProfile profile;
    EXPECT_FALSE(profile.enabled());
    profile.configure(BranchProfileOptions{}, oneOrderedEstimator());
    EXPECT_TRUE(profile.enabled());
}

TEST(BranchProfileTest, TracksPerPcTotals)
{
    BranchProfile profile;
    profile.configure(BranchProfileOptions{}, oneOrderedEstimator());
    feed(&profile, 0x100, 15, true);
    feed(&profile, 0x100, 3, false);
    feed(&profile, 0x200, 0, false);

    EXPECT_EQ(profile.totalExecutions(), 3u);
    EXPECT_EQ(profile.totalMispredictions(), 2u);
    ASSERT_EQ(profile.entries().size(), 2u);
    const auto &hot = profile.entries().at(0x100);
    EXPECT_EQ(hot.executions, 2u);
    EXPECT_EQ(hot.mispredictions, 1u);
    // Bucket 15 is the saturated (high-confidence) bucket; buckets 3
    // and 0 are below saturation, hence low-confidence.
    EXPECT_EQ(hot.lowConfidence, 1u);
    const auto &cold = profile.entries().at(0x200);
    EXPECT_EQ(cold.executions, 1u);
    EXPECT_EQ(cold.lowConfidence, 1u);
}

TEST(BranchProfileTest, EvictionKeepsTotalsExact)
{
    BranchProfileOptions options;
    options.capacity = 8;
    BranchProfile profile;
    profile.configure(options, oneOrderedEstimator());

    // 100 distinct PCs, every third one mispredicted: far over
    // capacity, so heavy-hitter eviction must trigger.
    const std::uint64_t kPcs = 100;
    std::uint64_t fed_mispredicts = 0;
    for (std::uint64_t pc = 0; pc < kPcs; ++pc) {
        const bool correct = pc % 3 != 0;
        fed_mispredicts += correct ? 0 : 1;
        feed(&profile, 0x1000 + pc, 5, correct);
    }

    EXPECT_LE(profile.entries().size(), options.capacity);
    EXPECT_GT(profile.evictedPcs(), 0u);
    EXPECT_EQ(profile.entries().size() + profile.evictedPcs(), kPcs);

    // The acceptance invariant: evicted counts are aggregated, never
    // discarded, so grand totals equal exactly what was fed.
    EXPECT_EQ(profile.totalExecutions(), kPcs);
    EXPECT_EQ(profile.totalMispredictions(), fed_mispredicts);
    std::uint64_t tracked_exec = 0;
    std::uint64_t tracked_mis = 0;
    for (const auto &entry : profile.entries()) {
        tracked_exec += entry.second.executions;
        tracked_mis += entry.second.mispredictions;
    }
    EXPECT_EQ(tracked_exec + profile.evicted().executions, kPcs);
    EXPECT_EQ(tracked_mis + profile.evicted().mispredictions,
              fed_mispredicts);
}

TEST(BranchProfileTest, TopByMispredictionsOrdersWorstFirst)
{
    BranchProfile profile;
    profile.configure(BranchProfileOptions{}, oneOrderedEstimator());
    // pc 0x30: 3 mispredicts; 0x10: 1; 0x20 and 0x40: 2 each (the tie
    // breaks by ascending PC for determinism).
    for (int i = 0; i < 3; ++i)
        feed(&profile, 0x30, 0, false);
    feed(&profile, 0x10, 0, false);
    for (int i = 0; i < 2; ++i)
        feed(&profile, 0x40, 0, false);
    for (int i = 0; i < 2; ++i)
        feed(&profile, 0x20, 0, false);

    const auto top = profile.topByMispredictions(3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].first, 0x30u);
    EXPECT_EQ(top[1].first, 0x20u);
    EXPECT_EQ(top[2].first, 0x40u);
    EXPECT_EQ(profile.topByMispredictions(100).size(), 4u);
}

TEST(BranchProfileTest, CalibrationBinsMapConfidenceToAccuracy)
{
    BranchProfileOptions options;
    options.reliabilityBins = 10;
    BranchProfile profile;
    // 11 buckets so bucket b has estimated confidence b/10.
    profile.configure(options, oneOrderedEstimator(11));

    // Bucket 10 (confidence 1.0) twice correct -> last bin.
    feed(&profile, 0x1, 10, true);
    feed(&profile, 0x1, 10, true);
    // Bucket 5 (confidence 0.5) one correct, one wrong -> bin 5.
    feed(&profile, 0x1, 5, true);
    feed(&profile, 0x1, 5, false);

    const auto &cells = profile.calibration(0);
    ASSERT_EQ(cells.size(), 10u);
    EXPECT_EQ(cells[9].predictions, 2u);
    EXPECT_EQ(cells[9].correct, 2u);
    EXPECT_DOUBLE_EQ(cells[9].accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(cells[9].meanConfidence(), 1.0);
    EXPECT_EQ(cells[5].predictions, 2u);
    EXPECT_EQ(cells[5].correct, 1u);
    EXPECT_DOUBLE_EQ(cells[5].accuracy(), 0.5);
    EXPECT_DOUBLE_EQ(cells[5].meanConfidence(), 0.5);
}

TEST(BranchProfileTest, UnorderedEstimatorGetsPerBucketCells)
{
    BranchProfile profile;
    profile.configure(BranchProfileOptions{},
                      {{"est-unordered", 4, false}});
    feed(&profile, 0x1, 2, true);
    feed(&profile, 0x1, 0, false);
    const auto &cells = profile.calibration(0);
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[2].predictions, 1u);
    EXPECT_EQ(cells[0].predictions, 1u);
    // Unordered bucket 0 is the low-confidence marker.
    EXPECT_EQ(profile.entries().at(0x1).lowConfidence, 1u);
}

TEST(BranchProfileTest, MergeFromTagsPcsAndAdoptsShape)
{
    BranchProfile source;
    source.configure(BranchProfileOptions{}, oneOrderedEstimator());
    feed(&source, 0x100, 0, false);
    feed(&source, 0x100, 15, true);

    BranchProfile merged; // unconfigured: adopts source's shape
    const std::uint64_t tag = std::uint64_t{3} << 48;
    merged.mergeFrom(source, tag);
    merged.mergeFrom(source, std::uint64_t{4} << 48);

    EXPECT_TRUE(merged.enabled());
    ASSERT_EQ(merged.entries().size(), 2u);
    const auto &entry = merged.entries().at(tag | 0x100);
    EXPECT_EQ(entry.executions, 2u);
    EXPECT_EQ(entry.mispredictions, 1u);
    EXPECT_EQ(merged.totalExecutions(), 4u);
    EXPECT_EQ(merged.totalMispredictions(), 2u);
    // Calibration cells merge bin-wise.
    EXPECT_EQ(merged.calibration(0)[0].predictions, 2u);
}

TEST(BranchProfileTest, CsvExportEndsWithExactTotalRow)
{
    BranchProfile profile;
    profile.configure(BranchProfileOptions{}, oneOrderedEstimator());
    feed(&profile, 0xAB, 0, false);
    feed(&profile, 0xCD, 15, true);

    const std::string path =
        ::testing::TempDir() + "/confsim_profile_total.csv";
    profile.writeCsv(path, {});
    const auto lines = readLines(path);
    ASSERT_GE(lines.size(), 2u);
    EXPECT_EQ(lines[0].rfind("kind,benchmark,pc,estimator,bin,", 0),
              0u);
    // branch rows worst-first: 0xab (1 mispredict) before 0xcd (0).
    EXPECT_EQ(lines[1].rfind("branch,,0xab,", 0), 0u);
    EXPECT_EQ(lines[2].rfind("branch,,0xcd,", 0), 0u);
    const std::string &total = lines.back();
    EXPECT_EQ(total.rfind("total,", 0), 0u);
    EXPECT_NE(total.find(",2,1,"), std::string::npos)
        << "total row must carry the exact run aggregates: " << total;
    std::remove(path.c_str());
}

TEST(BranchProfileTest, PublishWritesFileAndEmitsEvent)
{
    BranchProfile profile;
    profile.configure(BranchProfileOptions{}, oneOrderedEstimator());
    feed(&profile, 0xEE, 0, false);

    const std::string csv_path =
        ::testing::TempDir() + "/confsim_profile_publish.csv";
    const std::string jsonl_path =
        ::testing::TempDir() + "/confsim_profile_publish.jsonl";
    const std::string telemetry_path =
        ::testing::TempDir() + "/confsim_profile_telemetry.jsonl";

    TelemetryOptions telemetry_options;
    telemetry_options.jsonlPath = telemetry_path;
    auto telemetry = Telemetry::fromOptions(telemetry_options);
    ASSERT_NE(telemetry, nullptr);

    // Format dispatch on the path suffix; empty path is a no-op.
    publishBranchProfile(profile, "", {}, telemetry.get());
    publishBranchProfile(profile, csv_path, {}, telemetry.get());
    publishBranchProfile(profile, jsonl_path, {}, telemetry.get());
    telemetry.reset();

    const auto csv = readLines(csv_path);
    ASSERT_FALSE(csv.empty());
    EXPECT_EQ(csv[0].rfind("kind,", 0), 0u);
    const auto jsonl = readLines(jsonl_path);
    ASSERT_FALSE(jsonl.empty());
    EXPECT_EQ(jsonl[0].rfind("{\"type\":\"branch\"", 0), 0u);

    std::size_t written_events = 0;
    for (const auto &line : readLines(telemetry_path))
        if (line.find("branch_profile_written") != std::string::npos)
            ++written_events;
    EXPECT_EQ(written_events, 2u) << "empty path must not emit";

    std::remove(csv_path.c_str());
    std::remove(jsonl_path.c_str());
    std::remove(telemetry_path.c_str());
}

} // namespace
} // namespace confsim
