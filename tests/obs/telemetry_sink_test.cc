/** @file Tests for telemetry sinks, events, and the Telemetry context. */

#include "obs/telemetry.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event.h"
#include "obs/run_manifest.h"

namespace confsim {
namespace {

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

class SinkFileTest : public ::testing::Test
{
  protected:
    std::string
    tempPath(const std::string &suffix)
    {
        const std::string path =
            ::testing::TempDir() + "/confsim_obs_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name() +
            suffix;
        paths_.push_back(path);
        return path;
    }

    void
    TearDown() override
    {
        for (const auto &path : paths_)
            std::remove(path.c_str());
    }

  private:
    std::vector<std::string> paths_;
};

RunManifest
sampleManifest()
{
    RunManifest manifest = RunManifest::withBuildInfo();
    manifest.tool = "sink_test";
    manifest.suite = "single";
    ManifestBenchmark bench;
    bench.name = "jpeg";
    bench.seed = 13;
    bench.branches = 1000;
    bench.traceChecksum = 0xDEADBEEF;
    manifest.benchmarks.push_back(bench);
    manifest.predictor = "gshare-test";
    manifest.estimators = {"est-a", "est-b"};
    return manifest;
}

TEST(TelemetryEventTest, ToJsonQuotesStringsOnly)
{
    TelemetryEvent event(
        "demo", {field("name", "va\"lue"), field("n", std::uint64_t{7}),
                 field("x", 0.5), field("ok", true)});
    event.tMs = 1.5;
    EXPECT_EQ(event.toJson(),
              "{\"type\":\"demo\",\"t_ms\":1.5,\"name\":\"va\\\"lue\","
              "\"n\":7,\"x\":0.5,\"ok\":true}");
}

TEST(TelemetryEventTest, FieldValueLookup)
{
    const TelemetryEvent event("demo", {field("a", "x")});
    EXPECT_EQ(event.fieldValue("a"), "x");
    EXPECT_EQ(event.fieldValue("missing"), "");
}

TEST(TelemetryTest, FromOptionsIsNullWhenNoSinkEnabled)
{
    EXPECT_EQ(Telemetry::fromOptions(TelemetryOptions{}), nullptr);
}

TEST_F(SinkFileTest, JsonlStreamIsManifestFirstThenEvents)
{
    const std::string path = tempPath(".jsonl");
    {
        TelemetryOptions options;
        options.jsonlPath = path;
        const auto telemetry = Telemetry::fromOptions(options);
        ASSERT_NE(telemetry, nullptr);
        telemetry->setManifest(sampleManifest());
        telemetry->emit(TelemetryEvent(events::kBenchmarkFinished,
                                       {field("benchmark", "jpeg")}));
    } // destructor emits metrics_snapshot and flushes

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("\"type\":\"manifest\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"schema\":\"confsim-telemetry-v1\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"trace_checksum\":3735928559"),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"type\":\"benchmark_finished\""),
              std::string::npos);
    EXPECT_NE(lines[1].find("\"benchmark\":\"jpeg\""),
              std::string::npos);
    EXPECT_NE(lines[2].find("\"type\":\"metrics_snapshot\""),
              std::string::npos);
}

TEST_F(SinkFileTest, ManifestIsWrittenOnlyOnce)
{
    const std::string path = tempPath(".jsonl");
    {
        TelemetryOptions options;
        options.jsonlPath = path;
        Telemetry telemetry(options);
        telemetry.setManifest(sampleManifest());
        telemetry.setManifest(sampleManifest());
        telemetry.finish();
    }
    const auto lines = readLines(path);
    std::size_t manifests = 0;
    for (const auto &line : lines) {
        if (line.find("\"type\":\"manifest\"") != std::string::npos)
            ++manifests;
    }
    EXPECT_EQ(manifests, 1u);
}

TEST_F(SinkFileTest, CsvSinkEmitsLongFormatRows)
{
    const std::string path = tempPath(".csv");
    {
        TelemetryOptions options;
        options.csvPath = path;
        Telemetry telemetry(options);
        telemetry.setManifest(sampleManifest());
        telemetry.emit(TelemetryEvent(
            events::kBenchmarkFinished,
            {field("benchmark", "jpeg"), field("wall_ms", 1.25)}));
        telemetry.finish();
    }
    const auto lines = readLines(path);
    ASSERT_GE(lines.size(), 4u);
    EXPECT_EQ(lines[0], "t_ms,type,key,value");
    // Manifest rows precede event rows.
    EXPECT_NE(lines[1].find("manifest"), std::string::npos);
    bool found_wall = false;
    for (const auto &line : lines) {
        if (line.find("benchmark_finished,wall_ms,1.25") !=
            std::string::npos) {
            found_wall = true;
        }
    }
    EXPECT_TRUE(found_wall);
}

TEST_F(SinkFileTest, FinishSnapshotCarriesRegistryMetrics)
{
    const std::string path = tempPath(".jsonl");
    {
        TelemetryOptions options;
        options.jsonlPath = path;
        Telemetry telemetry(options);
        telemetry.registry().increment("demo.count", 42);
        telemetry.registry().observe("demo.ms", 2.0);
        telemetry.finish();
        telemetry.finish(); // idempotent
    }
    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"type\":\"metrics_snapshot\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"demo.count\":42"), std::string::npos);
    EXPECT_NE(lines[0].find("\"demo.ms.mean\":2"), std::string::npos);
}

TEST(RunManifestTest, BuildInfoIsPopulated)
{
    const RunManifest manifest = RunManifest::withBuildInfo();
    EXPECT_FALSE(manifest.compiler.empty());
    EXPECT_FALSE(manifest.cxxStandard.empty());
    EXPECT_EQ(manifest.schema, "confsim-telemetry-v1");
}

} // namespace
} // namespace confsim
