/** @file Tests for the execution-span tracer (obs/span.h). */

#include "obs/span.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/telemetry.h"

// Global allocation counter for the zero-allocation contract test.
// Counting (not forbidding) keeps this safe for the rest of the test
// binary, which allocates freely.
namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size == 0 ? 1 : size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace confsim {
namespace {

std::string
tempTracePath(const char *name)
{
    return ::testing::TempDir() + "/confsim_span_" + name + ".json";
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST(SpanTest, FromOptionsIsNullWhenPathEmpty)
{
    EXPECT_EQ(SpanTracer::fromOptions(SpanTracerOptions{}), nullptr);
}

TEST(SpanTest, DisabledTracerAllocatesNothing)
{
    // The null-facade contract quoted in span.h: a ScopedSpan over a
    // null tracer must not allocate (and, structurally, cannot read
    // the clock — there is no tracer to read it from).
    SpanTracer *tracer = nullptr;
    const std::uint64_t before =
        g_allocation_count.load(std::memory_order_relaxed);
    for (int i = 0; i < 10000; ++i) {
        ScopedSpan span(tracer, "disabled.span");
    }
    const std::uint64_t after =
        g_allocation_count.load(std::memory_order_relaxed);
    EXPECT_EQ(before, after);
}

TEST(SpanTest, RecordsNestedSpansInThreadOrder)
{
    SpanTracerOptions options;
    options.path = tempTracePath("nested");
    SpanTracer tracer(options);
    {
        ScopedSpan outer(&tracer, "outer");
        ScopedSpan inner(&tracer, "inner");
    }
    const auto events = tracer.snapshotEvents();
    ASSERT_EQ(events.size(), 4u);
    // LIFO nesting on one thread: B outer, B inner, E inner, E outer.
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[0].phase, 'B');
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[1].phase, 'B');
    EXPECT_EQ(events[2].name, "inner");
    EXPECT_EQ(events[2].phase, 'E');
    EXPECT_EQ(events[3].name, "outer");
    EXPECT_EQ(events[3].phase, 'E');
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].tsNs, events[i - 1].tsNs);
    std::remove(options.path.c_str());
}

TEST(SpanTest, RingWraparoundKeepsNewestAndCountsDropped)
{
    SpanTracerOptions options;
    options.path = tempTracePath("wrap");
    options.ringCapacity = 8;
    const int kSpans = 100; // 200 events >> capacity 8
    std::uint64_t dropped;
    std::uint64_t events_retained;
    {
        SpanTracer tracer(options);
        for (int i = 0; i < kSpans; ++i) {
            ScopedSpan span(&tracer, "wrapped");
        }
        const auto events = tracer.snapshotEvents();
        EXPECT_LE(events.size(), 8u);
        ASSERT_FALSE(events.empty());
        // Oldest events are overwritten: the retained tail must end
        // with the final end event.
        EXPECT_EQ(events.back().phase, 'E');
        const auto summary = tracer.finish();
        dropped = summary.dropped;
        events_retained = summary.events;
        EXPECT_EQ(summary.path, options.path);
    }
    // head = 200 events ever pushed, capacity 8 retained.
    EXPECT_EQ(dropped, static_cast<std::uint64_t>(2 * kSpans) - 8);
    EXPECT_GE(events_retained, 1u);
    EXPECT_LE(events_retained, 8u);

    // The exporter repairs begin/end balance across the dropped
    // prefix: the emitted JSON must have matching B and E counts.
    const std::string json = readWholeFile(options.path);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""),
              countOccurrences(json, "\"ph\":\"E\""));
    std::remove(options.path.c_str());
}

TEST(SpanTest, CounterAndThreadNameAreExported)
{
    SpanTracerOptions options;
    options.path = tempTracePath("counter");
    SpanTracer tracer(options);
    tracer.setCurrentThreadName("first-name");
    tracer.setCurrentThreadName("second-name"); // first name wins
    tracer.counter("ring.depth", 7);
    const auto events = tracer.snapshotEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].phase, 'C');
    EXPECT_EQ(events[0].name, "ring.depth");
    EXPECT_EQ(events[0].value, 7u);
    EXPECT_EQ(events[0].threadName, "first-name");
    tracer.finish();
    const std::string json = readWholeFile(options.path);
    EXPECT_NE(json.find("\"first-name\""), std::string::npos);
    EXPECT_EQ(json.find("\"second-name\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("ring.depth"), std::string::npos);
    std::remove(options.path.c_str());
}

TEST(SpanTest, SummaryAggregatesPerNameAndIsIdempotent)
{
    SpanTracerOptions options;
    options.path = tempTracePath("summary");
    SpanTracer tracer(options);
    {
        ScopedSpan a1(&tracer, "alpha");
    }
    {
        ScopedSpan a2(&tracer, "alpha");
    }
    {
        ScopedSpan b(&tracer, "beta");
    }
    const auto summary = tracer.finish();
    EXPECT_EQ(summary.threads, 1u);
    EXPECT_EQ(summary.events, 6u);
    EXPECT_EQ(summary.dropped, 0u);
    ASSERT_EQ(summary.spans.size(), 2u);
    // Name-sorted aggregates.
    EXPECT_EQ(summary.spans[0].name, "alpha");
    EXPECT_EQ(summary.spans[0].count, 2u);
    EXPECT_GE(summary.spans[0].totalNs, 0.0);
    EXPECT_EQ(summary.spans[1].name, "beta");
    EXPECT_EQ(summary.spans[1].count, 1u);

    // finish() is idempotent: the second call returns the first
    // summary without rewriting the file.
    const auto again = tracer.finish();
    EXPECT_EQ(again.events, summary.events);
    EXPECT_EQ(again.spans.size(), summary.spans.size());
    std::remove(options.path.c_str());
}

TEST(SpanTest, TracksEveryEmittingThread)
{
    SpanTracerOptions options;
    options.path = tempTracePath("threads");
    SpanTracer tracer(options);
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
        workers.emplace_back([&tracer] {
            tracer.setCurrentThreadName("worker");
            ScopedSpan span(&tracer, "work");
        });
    }
    for (auto &worker : workers)
        worker.join();
    EXPECT_EQ(tracer.threadsSeen(), 3u);
    const auto summary = tracer.finish();
    EXPECT_EQ(summary.threads, 3u);
    ASSERT_EQ(summary.spans.size(), 1u);
    EXPECT_EQ(summary.spans[0].count, 3u);
    std::remove(options.path.c_str());
}

TEST(SpanTest, LongNamesTruncateToMaxName)
{
    SpanTracerOptions options;
    options.path = tempTracePath("truncate");
    SpanTracer tracer(options);
    const std::string longName(2 * SpanTracer::kMaxName, 'x');
    {
        ScopedSpan span(&tracer, longName.c_str());
    }
    const auto events = tracer.snapshotEvents();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].name.size(), SpanTracer::kMaxName);
    EXPECT_EQ(events[0].name,
              longName.substr(0, SpanTracer::kMaxName));
    std::remove(options.path.c_str());
}

TEST(SpanTest, PublishSpanSummaryEmitsTelemetryEvent)
{
    const std::string trace_path = tempTracePath("publish");
    const std::string jsonl_path =
        ::testing::TempDir() + "/confsim_span_publish.jsonl";
    SpanTracerOptions options;
    options.path = trace_path;
    SpanTracer tracer(options);
    {
        ScopedSpan span(&tracer, "published.span");
    }
    TelemetryOptions telemetry_options;
    telemetry_options.jsonlPath = jsonl_path;
    auto telemetry = Telemetry::fromOptions(telemetry_options);
    ASSERT_NE(telemetry, nullptr);
    publishSpanSummary(tracer.finish(), telemetry.get());
    telemetry.reset(); // flush
    const std::string jsonl = readWholeFile(jsonl_path);
    EXPECT_NE(jsonl.find("span_summary"), std::string::npos);
    EXPECT_NE(jsonl.find("published.span"), std::string::npos);
    std::remove(trace_path.c_str());
    std::remove(jsonl_path.c_str());
}

} // namespace
} // namespace confsim
