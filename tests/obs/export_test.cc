/**
 * @file
 * Golden-string and round-trip tests for the CSV exporters of the
 * metrics report types (Table-1 counter tables, confidence-curve
 * points). The writers promise deterministic fixed-precision output,
 * so exact string comparison is valid.
 */

#include "obs/export.h"

#include <gtest/gtest.h>

#include "metrics/bucket_stats.h"

namespace confsim {
namespace {

std::vector<CounterTableRow>
sampleTable()
{
    // A 3-value counter distribution with easy percentages.
    BucketStats stats(3);
    for (int i = 0; i < 50; ++i)
        stats.record(0, i < 25); // 50 refs, 25 mispredicts
    for (int i = 0; i < 30; ++i)
        stats.record(1, i < 3); // 30 refs, 3 mispredicts
    for (int i = 0; i < 20; ++i)
        stats.record(2, false); // 20 refs, clean
    return buildCounterTable(stats);
}

TEST(ExportTest, CounterTableGoldenCsv)
{
    const std::string csv = counterTableToCsv(sampleTable());
    const std::string expected =
        "counter_value,mispredict_rate,ref_pct,mispred_pct,"
        "cum_ref_pct,cum_mispred_pct\n"
        "0,0.500000000,50.000000000,89.285714286,50.000000000,"
        "89.285714286\n"
        "1,0.100000000,30.000000000,10.714285714,80.000000000,"
        "100.000000000\n"
        "2,0.000000000,20.000000000,0.000000000,100.000000000,"
        "100.000000000\n";
    EXPECT_EQ(csv, expected);
}

TEST(ExportTest, CounterTableRoundTrips)
{
    const auto rows = sampleTable();
    const auto parsed = counterTableFromCsv(counterTableToCsv(rows));
    ASSERT_EQ(parsed.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(parsed[i].counterValue, rows[i].counterValue);
        EXPECT_NEAR(parsed[i].mispredictRate, rows[i].mispredictRate,
                    1e-9);
        EXPECT_NEAR(parsed[i].refPercent, rows[i].refPercent, 1e-8);
        EXPECT_NEAR(parsed[i].mispredictPercent,
                    rows[i].mispredictPercent, 1e-8);
        EXPECT_NEAR(parsed[i].cumRefPercent, rows[i].cumRefPercent,
                    1e-8);
        EXPECT_NEAR(parsed[i].cumMispredictPercent,
                    rows[i].cumMispredictPercent, 1e-8);
    }
}

TEST(ExportTest, ConfidenceCurveGoldenCsv)
{
    const std::vector<CurvePoint> points = {
        {0, 0.5, 0.25, 0.75},
        {1, 0.125, 1.0, 1.0},
    };
    const std::string csv = confidenceCurveToCsv(points);
    const std::string expected =
        "bucket,bucket_rate,ref_fraction,mispred_fraction\n"
        "0,0.500000000,0.250000000,0.750000000\n"
        "1,0.125000000,1.000000000,1.000000000\n";
    EXPECT_EQ(csv, expected);
}

TEST(ExportTest, ConfidenceCurveRoundTripsThroughRealStats)
{
    BucketStats stats(4);
    for (int i = 0; i < 100; ++i)
        stats.record(static_cast<std::uint64_t>(i % 4), i % 5 == 0);
    const auto curve = ConfidenceCurve::fromBucketStats(stats);
    const auto &points = curve.points();
    const auto parsed =
        confidenceCurveFromCsv(confidenceCurveToCsv(points));
    ASSERT_EQ(parsed.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(parsed[i].bucket, points[i].bucket);
        EXPECT_NEAR(parsed[i].bucketRate, points[i].bucketRate, 1e-9);
        EXPECT_NEAR(parsed[i].refFraction, points[i].refFraction,
                    1e-9);
        EXPECT_NEAR(parsed[i].mispredFraction,
                    points[i].mispredFraction, 1e-9);
    }
}

TEST(ExportTest, EmptyInputsProduceHeaderOnly)
{
    EXPECT_EQ(counterTableToCsv({}),
              std::string(kCounterTableCsvHeader) + "\n");
    EXPECT_EQ(confidenceCurveToCsv({}),
              std::string(kCurveCsvHeader) + "\n");
    EXPECT_TRUE(counterTableFromCsv(counterTableToCsv({})).empty());
    EXPECT_TRUE(
        confidenceCurveFromCsv(confidenceCurveToCsv({})).empty());
}

TEST(ExportTest, WrongHeaderIsFatal)
{
    EXPECT_THROW(counterTableFromCsv("bad,header\n1,2\n"),
                 std::runtime_error);
    EXPECT_THROW(confidenceCurveFromCsv("nope\n"),
                 std::runtime_error);
}

} // namespace
} // namespace confsim
