/** @file Unit tests for the metrics registry and ScopedTimer. */

#include "obs/metrics_registry.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(MetricsRegistryTest, CountersStartAtZeroAndAccumulate)
{
    MetricsRegistry registry;
    EXPECT_EQ(registry.counter("absent"), 0u);
    registry.increment("runs");
    registry.increment("runs");
    registry.increment("branches", 1000);
    EXPECT_EQ(registry.counter("runs"), 2u);
    EXPECT_EQ(registry.counter("branches"), 1000u);
}

TEST(MetricsRegistryTest, GaugesKeepLastValue)
{
    MetricsRegistry registry;
    EXPECT_EQ(registry.gauge("absent"), 0.0);
    registry.setGauge("rate", 0.25);
    registry.setGauge("rate", 0.5);
    EXPECT_EQ(registry.gauge("rate"), 0.5);
}

TEST(MetricsRegistryTest, ObserveFeedsRunningStats)
{
    MetricsRegistry registry;
    registry.observe("wall_ms", 1.0);
    registry.observe("wall_ms", 3.0);
    const RunningStats stats = registry.stats("wall_ms");
    EXPECT_EQ(stats.count(), 2u);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(MetricsRegistryTest, MergeStatsMatchesDirectObservation)
{
    MetricsRegistry direct;
    MetricsRegistry merged;
    RunningStats local;
    for (double v : {2.0, 4.0, 8.0, 16.0}) {
        direct.observe("ns", v);
        local.add(v);
    }
    merged.mergeStats("ns", local);
    EXPECT_EQ(merged.stats("ns").count(), direct.stats("ns").count());
    EXPECT_DOUBLE_EQ(merged.stats("ns").mean(),
                     direct.stats("ns").mean());
    EXPECT_DOUBLE_EQ(merged.stats("ns").variance(),
                     direct.stats("ns").variance());
}

TEST(MetricsRegistryTest, SnapshotIsNameSorted)
{
    MetricsRegistry registry;
    registry.increment("zeta");
    registry.increment("alpha");
    registry.setGauge("mid", 1.0);
    registry.observe("stat", 2.0);
    registry.observeHistogram("hist", 0.5, 0.0, 1.0, 4);
    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "alpha");
    EXPECT_EQ(snap.counters[1].first, "zeta");
    ASSERT_EQ(snap.gauges.size(), 1u);
    ASSERT_EQ(snap.stats.size(), 1u);
    ASSERT_EQ(snap.histograms.size(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsNameSortedIncludingHistograms)
{
    // Pins the ordering contract documented on snapshot(): every
    // section — histograms included — is sorted by name, ascending,
    // byte-wise, regardless of insertion order.
    MetricsRegistry registry;
    for (const char *name : {"z.hist", "a.hist", "m.hist", "Z.hist"})
        registry.observeHistogram(name, 0.5, 0.0, 1.0, 4);
    registry.increment("b.counter");
    registry.increment("B.counter");
    registry.setGauge("g2", 1.0);
    registry.setGauge("g10", 2.0);
    registry.observe("s.b", 1.0);
    registry.observe("s.a", 1.0);

    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.histograms.size(), 4u);
    EXPECT_EQ(snap.histograms[0].first, "Z.hist"); // 'Z' < 'a'
    EXPECT_EQ(snap.histograms[1].first, "a.hist");
    EXPECT_EQ(snap.histograms[2].first, "m.hist");
    EXPECT_EQ(snap.histograms[3].first, "z.hist");
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "B.counter");
    ASSERT_EQ(snap.gauges.size(), 2u);
    EXPECT_EQ(snap.gauges[0].first, "g10"); // byte-wise: '1' < '2'
    EXPECT_EQ(snap.gauges[1].first, "g2");
    ASSERT_EQ(snap.stats.size(), 2u);
    EXPECT_EQ(snap.stats[0].first, "s.a");
    EXPECT_EQ(snap.stats[1].first, "s.b");
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreNotLost)
{
    MetricsRegistry registry;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry] {
            for (int i = 0; i < kPerThread; ++i)
                registry.increment("shared");
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(registry.counter("shared"),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ScopedTimerTest, RecordsOneObservationOnScopeExit)
{
    MetricsRegistry registry;
    {
        ScopedTimer timer(&registry, "phase_ms");
    }
    EXPECT_EQ(registry.stats("phase_ms").count(), 1u);
    EXPECT_GE(registry.stats("phase_ms").min(), 0.0);
}

TEST(ScopedTimerTest, StopIsIdempotent)
{
    MetricsRegistry registry;
    ScopedTimer timer(&registry, "phase_ms");
    timer.stop();
    timer.stop();
    EXPECT_EQ(registry.stats("phase_ms").count(), 1u);
}

TEST(ScopedTimerTest, NullRegistryIsANoOp)
{
    ScopedTimer timer(nullptr, "ignored");
    EXPECT_GE(timer.stop(), 0.0);
}

} // namespace
} // namespace confsim
