/** @file Unit tests for workload/branch_behavior.h. */

#include "workload/branch_behavior.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(WorkloadContextTest, RecordsAndExposesHistory)
{
    WorkloadContext ctx;
    ctx.recordOutcome(true);
    ctx.recordOutcome(false);
    ctx.recordOutcome(true);
    // pastOutcome(0) = most recent.
    EXPECT_TRUE(ctx.pastOutcome(0));
    EXPECT_FALSE(ctx.pastOutcome(1));
    EXPECT_TRUE(ctx.pastOutcome(2));
    EXPECT_FALSE(ctx.pastOutcome(3));
}

TEST(WorkloadContextTest, ResetClearsHistory)
{
    WorkloadContext ctx;
    ctx.recordOutcome(true);
    ctx.reset();
    EXPECT_EQ(ctx.historyValue(), 0u);
}

TEST(BiasedBehaviorTest, FrequencyMatchesProbability)
{
    WorkloadContext ctx;
    Rng rng(5);
    BiasedBehavior biased(0.8);
    int taken = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        taken += biased.nextOutcome(ctx, rng);
    EXPECT_NEAR(static_cast<double>(taken) / n, 0.8, 0.01);
}

TEST(BiasedBehaviorTest, RejectsBadProbability)
{
    EXPECT_THROW(BiasedBehavior(-0.1), std::runtime_error);
    EXPECT_THROW(BiasedBehavior(1.1), std::runtime_error);
}

TEST(LoopBehaviorTest, FixedTripPattern)
{
    // Trip 4: T T T N, repeating.
    WorkloadContext ctx;
    Rng rng(9);
    LoopBehavior loop(4, TripCountModel::Fixed);
    for (int pass = 0; pass < 3; ++pass) {
        EXPECT_TRUE(loop.nextOutcome(ctx, rng));
        EXPECT_TRUE(loop.nextOutcome(ctx, rng));
        EXPECT_TRUE(loop.nextOutcome(ctx, rng));
        EXPECT_FALSE(loop.nextOutcome(ctx, rng));
    }
}

TEST(LoopBehaviorTest, TripOneNeverIterates)
{
    WorkloadContext ctx;
    Rng rng(9);
    LoopBehavior loop(1, TripCountModel::Fixed);
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(loop.nextOutcome(ctx, rng));
}

TEST(LoopBehaviorTest, JitteredStaysInRange)
{
    WorkloadContext ctx;
    Rng rng(11);
    LoopBehavior loop(10, TripCountModel::Jittered, 2);
    for (int pass = 0; pass < 200; ++pass) {
        int trip = 0;
        while (loop.nextOutcome(ctx, rng))
            ++trip;
        ++trip; // the exit execution is also one trip
        EXPECT_GE(trip, 8);
        EXPECT_LE(trip, 12);
    }
}

TEST(LoopBehaviorTest, GeometricMeanApproximatelyCorrect)
{
    WorkloadContext ctx;
    Rng rng(13);
    LoopBehavior loop(8, TripCountModel::Geometric);
    double total = 0.0;
    const int passes = 20000;
    for (int pass = 0; pass < passes; ++pass) {
        int trip = 1;
        while (loop.nextOutcome(ctx, rng))
            ++trip;
        total += trip;
    }
    EXPECT_NEAR(total / passes, 8.0, 0.7);
}

TEST(LoopBehaviorTest, ResetReArms)
{
    WorkloadContext ctx;
    Rng rng(15);
    LoopBehavior loop(3, TripCountModel::Fixed);
    EXPECT_TRUE(loop.nextOutcome(ctx, rng));
    loop.reset();
    // After reset the loop starts a fresh trip: T T N.
    EXPECT_TRUE(loop.nextOutcome(ctx, rng));
    EXPECT_TRUE(loop.nextOutcome(ctx, rng));
    EXPECT_FALSE(loop.nextOutcome(ctx, rng));
}

TEST(LoopBehaviorTest, RejectsBadParameters)
{
    EXPECT_THROW(LoopBehavior(0, TripCountModel::Fixed),
                 std::runtime_error);
    EXPECT_THROW(LoopBehavior(4, TripCountModel::Jittered, 4),
                 std::runtime_error);
}

TEST(PatternBehaviorTest, ReplaysCyclically)
{
    WorkloadContext ctx;
    Rng rng(17);
    PatternBehavior pattern({true, true, false});
    for (int pass = 0; pass < 4; ++pass) {
        EXPECT_TRUE(pattern.nextOutcome(ctx, rng));
        EXPECT_TRUE(pattern.nextOutcome(ctx, rng));
        EXPECT_FALSE(pattern.nextOutcome(ctx, rng));
    }
}

TEST(PatternBehaviorTest, ResetRestartsPhase)
{
    WorkloadContext ctx;
    Rng rng(17);
    PatternBehavior pattern({true, false});
    EXPECT_TRUE(pattern.nextOutcome(ctx, rng));
    pattern.reset();
    EXPECT_TRUE(pattern.nextOutcome(ctx, rng));
}

TEST(PatternBehaviorTest, EmptyPatternIsFatal)
{
    EXPECT_THROW(PatternBehavior({}), std::runtime_error);
}

TEST(HistoryCorrelatedTest, ParityFollowsTaps)
{
    WorkloadContext ctx;
    Rng rng(19);
    HistoryCorrelatedBehavior parity({0, 1}, CorrelationOp::Parity, 0.0);
    ctx.recordOutcome(true);
    ctx.recordOutcome(false); // history (newest first): 0, 1
    EXPECT_TRUE(parity.nextOutcome(ctx, rng)); // 0 xor 1 = 1
    ctx.recordOutcome(true); // history: 1, 0
    EXPECT_TRUE(parity.nextOutcome(ctx, rng));
    ctx.recordOutcome(true); // history: 1, 1
    EXPECT_FALSE(parity.nextOutcome(ctx, rng));
}

TEST(HistoryCorrelatedTest, MajorityAndAnd)
{
    WorkloadContext ctx;
    Rng rng(23);
    ctx.recordOutcome(true);
    ctx.recordOutcome(true);
    ctx.recordOutcome(false); // newest first: 0, 1, 1
    HistoryCorrelatedBehavior maj({0, 1, 2}, CorrelationOp::Majority,
                                  0.0);
    EXPECT_TRUE(maj.nextOutcome(ctx, rng)); // two of three taken
    HistoryCorrelatedBehavior all({0, 1, 2}, CorrelationOp::And, 0.0);
    EXPECT_FALSE(all.nextOutcome(ctx, rng)); // newest is not taken
    HistoryCorrelatedBehavior all12({1, 2}, CorrelationOp::And, 0.0);
    EXPECT_TRUE(all12.nextOutcome(ctx, rng));
}

TEST(HistoryCorrelatedTest, InvertFlips)
{
    WorkloadContext ctx;
    Rng rng(29);
    ctx.recordOutcome(true);
    HistoryCorrelatedBehavior plain({0}, CorrelationOp::Parity, 0.0,
                                    false);
    HistoryCorrelatedBehavior inverted({0}, CorrelationOp::Parity, 0.0,
                                       true);
    EXPECT_TRUE(plain.nextOutcome(ctx, rng));
    EXPECT_FALSE(inverted.nextOutcome(ctx, rng));
}

TEST(HistoryCorrelatedTest, NoiseFlipsAtConfiguredRate)
{
    WorkloadContext ctx;
    Rng rng(31);
    HistoryCorrelatedBehavior noisy({0}, CorrelationOp::Parity, 0.2);
    ctx.recordOutcome(true); // functional outcome always "taken"
    int flips = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        flips += !noisy.nextOutcome(ctx, rng);
    EXPECT_NEAR(static_cast<double>(flips) / n, 0.2, 0.01);
}

TEST(HistoryCorrelatedTest, RejectsDeepTapsAndBadNoise)
{
    EXPECT_THROW(
        HistoryCorrelatedBehavior({16}, CorrelationOp::Parity, 0.0),
        std::runtime_error);
    EXPECT_THROW(
        HistoryCorrelatedBehavior({}, CorrelationOp::Parity, 0.0),
        std::runtime_error);
    EXPECT_THROW(
        HistoryCorrelatedBehavior({0}, CorrelationOp::Parity, 1.5),
        std::runtime_error);
}

TEST(ChainBehaviorTest, EchoesPastOutcome)
{
    WorkloadContext ctx;
    Rng rng(37);
    ChainBehavior chain(1, false, 0.0);
    ctx.recordOutcome(true);
    ctx.recordOutcome(false); // depth 1 = second most recent = taken
    EXPECT_TRUE(chain.nextOutcome(ctx, rng));
    ChainBehavior inverted(1, true, 0.0);
    EXPECT_FALSE(inverted.nextOutcome(ctx, rng));
}

TEST(ChainBehaviorTest, RejectsDeepChain)
{
    EXPECT_THROW(ChainBehavior(16, false, 0.0), std::runtime_error);
}

TEST(CloneTest, ClonesAreIndependentAndFresh)
{
    WorkloadContext ctx;
    Rng rng(41);
    LoopBehavior loop(3, TripCountModel::Fixed);
    EXPECT_TRUE(loop.nextOutcome(ctx, rng)); // advance original
    auto clone = loop.clone();
    // Clone starts a fresh trip: T T N.
    EXPECT_TRUE(clone->nextOutcome(ctx, rng));
    EXPECT_TRUE(clone->nextOutcome(ctx, rng));
    EXPECT_FALSE(clone->nextOutcome(ctx, rng));
}

} // namespace
} // namespace confsim
