/** @file Tests for the benchmark suite and IBS profiles. */

#include "workload/suite.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(IbsProfilesTest, NineNamedProfiles)
{
    const auto profiles = ibsProfiles();
    ASSERT_EQ(profiles.size(), 9u);
    const std::vector<std::string> expected = {
        "groff", "gs", "jpeg", "mpeg", "nroff",
        "real_gcc", "sdet", "verilog", "video_play"};
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(profiles[i].name, expected[i]);
    EXPECT_EQ(ibsProfileNames(), expected);
}

TEST(IbsProfilesTest, SeedsAndPcBasesAreDistinct)
{
    const auto profiles = ibsProfiles();
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        for (std::size_t j = i + 1; j < profiles.size(); ++j) {
            EXPECT_NE(profiles[i].seed, profiles[j].seed);
            EXPECT_NE(profiles[i].pcBase, profiles[j].pcBase);
        }
    }
}

TEST(IbsProfilesTest, GccIsLargestJpegIsSmall)
{
    // The working-set relationships the paper's Fig. 9 relies on.
    const auto gcc = ibsProfile("real_gcc");
    const auto jpeg = ibsProfile("jpeg");
    for (const auto &profile : ibsProfiles()) {
        EXPECT_LE(profile.targetBlocks, gcc.targetBlocks);
    }
    EXPECT_LT(jpeg.targetBlocks, 2 * 260u);
}

TEST(IbsProfilesTest, UnknownNameIsFatal)
{
    EXPECT_THROW(ibsProfile("nonesuch"), std::runtime_error);
}

TEST(BenchmarkSuiteTest, FullSuiteHasAllBenchmarks)
{
    const auto suite = BenchmarkSuite::ibs(1000);
    EXPECT_EQ(suite.size(), 9u);
    EXPECT_EQ(suite.branchesPerBenchmark(), 1000u);
}

TEST(BenchmarkSuiteTest, SmallSuiteIsSubset)
{
    const auto suite = BenchmarkSuite::ibsSmall(1000);
    EXPECT_LT(suite.size(), 9u);
    EXPECT_GE(suite.size(), 2u);
}

TEST(BenchmarkSuiteTest, SubsetByName)
{
    const auto suite = BenchmarkSuite::ibsSubset({"jpeg", "sdet"}, 500);
    ASSERT_EQ(suite.size(), 2u);
    EXPECT_EQ(suite.profile(0).name, "jpeg");
    EXPECT_EQ(suite.profile(1).name, "sdet");
}

TEST(BenchmarkSuiteTest, GeneratorsHonorSuiteLength)
{
    const auto suite = BenchmarkSuite::ibsSubset({"jpeg"}, 777);
    auto gen = suite.makeGenerator(0);
    BranchRecord record;
    std::uint64_t n = 0;
    while (gen->next(record))
        ++n;
    EXPECT_EQ(n, 777u);
}

TEST(BenchmarkSuiteTest, OutOfRangeGeneratorIsFatal)
{
    const auto suite = BenchmarkSuite::ibsSmall(100);
    EXPECT_THROW(suite.makeGenerator(99), std::runtime_error);
}

TEST(BenchmarkSuiteTest, EmptySubsetIsFatal)
{
    EXPECT_THROW(BenchmarkSuite::ibsSubset({}, 100),
                 std::runtime_error);
}

} // namespace
} // namespace confsim
