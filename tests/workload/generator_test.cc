/** @file Behavioural tests for the workload generator. */

#include "workload/workload_generator.h"

#include <unordered_map>

#include <gtest/gtest.h>

#include "trace/trace_stats.h"

namespace confsim {
namespace {

BenchmarkProfile
testProfile()
{
    BenchmarkProfile p;
    p.name = "gen-test";
    p.targetBlocks = 150;
    p.seed = 33;
    p.defaultLength = 5000;
    p.mix = BehaviorMix{0.4, 0.1, 0.02, 0.3, 0.05, 0.1};
    return p;
}

TEST(WorkloadGeneratorTest, ProducesExactlyRequestedLength)
{
    WorkloadGenerator gen(testProfile(), 1234);
    BranchRecord record;
    std::uint64_t n = 0;
    while (gen.next(record))
        ++n;
    EXPECT_EQ(n, 1234u);
    // Exhausted: further next() calls keep returning false.
    EXPECT_FALSE(gen.next(record));
}

TEST(WorkloadGeneratorTest, ZeroLengthUsesProfileDefault)
{
    WorkloadGenerator gen(testProfile(), 0);
    EXPECT_EQ(gen.length(), 5000u);
}

TEST(WorkloadGeneratorTest, AllRecordsAreConditionalWithValidPcs)
{
    WorkloadGenerator gen(testProfile(), 2000);
    BranchRecord record;
    while (gen.next(record)) {
        ASSERT_TRUE(record.isConditional());
        ASSERT_EQ(record.pc % 4, 0u);
        ASSERT_NE(record.pc, 0u);
    }
}

TEST(WorkloadGeneratorTest, DeterministicAcrossInstances)
{
    WorkloadGenerator a(testProfile(), 3000);
    WorkloadGenerator b(testProfile(), 3000);
    BranchRecord ra;
    BranchRecord rb;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        ASSERT_EQ(ra, rb);
    }
    EXPECT_FALSE(b.next(rb));
}

TEST(WorkloadGeneratorTest, ResetReplaysIdenticalStream)
{
    WorkloadGenerator gen(testProfile(), 2000);
    std::vector<BranchRecord> first;
    BranchRecord record;
    while (gen.next(record))
        first.push_back(record);
    gen.reset();
    std::size_t i = 0;
    while (gen.next(record)) {
        ASSERT_LT(i, first.size());
        ASSERT_EQ(record, first[i]);
        ++i;
    }
    EXPECT_EQ(i, first.size());
}

TEST(WorkloadGeneratorTest, TargetMatchesTakenSuccessorPc)
{
    WorkloadGenerator gen(testProfile(), 1000);
    BranchRecord record;
    ASSERT_TRUE(gen.next(record));
    // The target of a record equals some block's branch PC.
    bool found = false;
    for (std::size_t b = 0; b < gen.cfg().numBlocks(); ++b) {
        if (gen.cfg().block(b).branchPc == record.target) {
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found);
}

TEST(WorkloadGeneratorTest, PathFollowsOutcomes)
{
    // Consecutive records must be linked: record i+1's PC is the
    // branch PC of the successor selected by record i's outcome.
    WorkloadGenerator gen(testProfile(), 2000);
    const SyntheticCfg &cfg = gen.cfg();

    // Map branch PC -> block index.
    std::unordered_map<std::uint64_t, std::size_t> pc_to_block;
    for (std::size_t b = 0; b < cfg.numBlocks(); ++b)
        pc_to_block[cfg.block(b).branchPc] = b;

    BranchRecord prev;
    ASSERT_TRUE(gen.next(prev));
    BranchRecord cur;
    while (gen.next(cur)) {
        const CfgBlock &prev_block = cfg.block(pc_to_block.at(prev.pc));
        const std::size_t expected_next =
            prev.taken ? prev_block.takenNext : prev_block.fallNext;
        ASSERT_EQ(cur.pc, cfg.block(expected_next).branchPc);
        prev = cur;
    }
}

TEST(WorkloadGeneratorTest, ExercisesManyStaticBranches)
{
    WorkloadGenerator gen(testProfile(), 50000);
    const TraceStats stats = collectTraceStats(gen);
    // The walk must cover a large share of the program.
    EXPECT_GT(stats.staticBranchCount, gen.cfg().numBlocks() / 2);
    // Both directions must occur.
    EXPECT_GT(stats.takenRate(), 0.2);
    EXPECT_LT(stats.takenRate(), 0.95);
}

TEST(WorkloadGeneratorTest, DifferentProfilesProduceDifferentStreams)
{
    BenchmarkProfile p1 = testProfile();
    BenchmarkProfile p2 = testProfile();
    p2.seed = 34;
    WorkloadGenerator a(p1, 500);
    WorkloadGenerator b(p2, 500);
    BranchRecord ra;
    BranchRecord rb;
    int same = 0;
    int total = 0;
    while (a.next(ra) && b.next(rb)) {
        same += (ra == rb);
        ++total;
    }
    EXPECT_LT(same, total / 2);
}


TEST(WorkloadGeneratorTest, NonConditionalEmissionAddsRealisticCtis)
{
    BenchmarkProfile profile = testProfile();
    profile.emitNonConditional = true;
    WorkloadGenerator gen(profile, 20000);
    const TraceStats stats = collectTraceStats(gen);
    EXPECT_EQ(stats.conditionalCount, 20000u);
    EXPECT_GT(stats.callCount, 0u);
    EXPECT_GT(stats.returnCount, 0u);
    EXPECT_GT(stats.unconditionalCount, 0u);
    // Non-conditional records are a modest minority.
    EXPECT_LT(stats.totalRecords, 20000u * 2u);
}

TEST(WorkloadGeneratorTest, ConditionalStreamUnaffectedByEmissionFlag)
{
    // Toggling emitNonConditional must not change the conditional
    // stream at all (the flag only adds records).
    BenchmarkProfile plain = testProfile();
    BenchmarkProfile rich = testProfile();
    rich.emitNonConditional = true;
    WorkloadGenerator a(plain, 5000);
    WorkloadGenerator b(rich, 5000);
    BranchRecord ra;
    BranchRecord rb;
    while (a.next(ra)) {
        // Skip b's non-conditional records.
        do {
            ASSERT_TRUE(b.next(rb));
        } while (!rb.isConditional());
        ASSERT_EQ(ra, rb);
    }
}
} // namespace
} // namespace confsim
