/** @file Structural tests for the synthetic CFG builder. */

#include "workload/synthetic_cfg.h"

#include <set>

#include <gtest/gtest.h>

namespace confsim {
namespace {

BenchmarkProfile
testProfile(unsigned blocks = 200, std::uint64_t seed = 7)
{
    BenchmarkProfile p;
    p.name = "test";
    p.targetBlocks = blocks;
    p.seed = seed;
    p.mix = BehaviorMix{0.4, 0.1, 0.02, 0.3, 0.05, 0.1};
    return p;
}

TEST(SyntheticCfgTest, ReachesTargetBlockCount)
{
    SyntheticCfg cfg(testProfile(500));
    EXPECT_GE(cfg.numBlocks(), 500u);
    // Overshoot is bounded by one construct's expansion.
    EXPECT_LT(cfg.numBlocks(), 800u);
}

TEST(SyntheticCfgTest, AllSuccessorsInRange)
{
    SyntheticCfg cfg(testProfile());
    for (std::size_t b = 0; b < cfg.numBlocks(); ++b) {
        EXPECT_LT(cfg.block(b).takenNext, cfg.numBlocks());
        EXPECT_LT(cfg.block(b).fallNext, cfg.numBlocks());
        EXPECT_NE(cfg.block(b).behavior, nullptr);
    }
}

TEST(SyntheticCfgTest, BranchPcsAreUniqueWordAlignedAndAscending)
{
    SyntheticCfg cfg(testProfile());
    std::set<std::uint64_t> pcs;
    std::uint64_t prev = 0;
    for (std::size_t b = 0; b < cfg.numBlocks(); ++b) {
        const std::uint64_t pc = cfg.block(b).branchPc;
        EXPECT_EQ(pc % 4, 0u);
        EXPECT_GT(pc, prev);
        prev = pc;
        pcs.insert(pc);
    }
    EXPECT_EQ(pcs.size(), cfg.numBlocks());
}

TEST(SyntheticCfgTest, DeterministicForSameSeed)
{
    SyntheticCfg a(testProfile(300, 42));
    SyntheticCfg b(testProfile(300, 42));
    ASSERT_EQ(a.numBlocks(), b.numBlocks());
    for (std::size_t i = 0; i < a.numBlocks(); ++i) {
        EXPECT_EQ(a.block(i).branchPc, b.block(i).branchPc);
        EXPECT_EQ(a.block(i).takenNext, b.block(i).takenNext);
        EXPECT_EQ(a.block(i).fallNext, b.block(i).fallNext);
    }
}

TEST(SyntheticCfgTest, DifferentSeedsDiffer)
{
    SyntheticCfg a(testProfile(300, 1));
    SyntheticCfg b(testProfile(300, 2));
    bool differs = a.numBlocks() != b.numBlocks();
    if (!differs) {
        for (std::size_t i = 0; i < a.numBlocks(); ++i) {
            if (a.block(i).takenNext != b.block(i).takenNext) {
                differs = true;
                break;
            }
        }
    }
    EXPECT_TRUE(differs);
}

TEST(SyntheticCfgTest, LoopLatchesHaveBackEdges)
{
    SyntheticCfg cfg(testProfile(400));
    unsigned latches = 0;
    for (std::size_t b = 0; b < cfg.numBlocks(); ++b) {
        const CfgBlock &block = cfg.block(b);
        if (block.isLoopLatch) {
            ++latches;
            EXPECT_LE(block.takenNext, b); // back (or self) edge
        }
    }
    EXPECT_GT(latches, 0u);
}

TEST(SyntheticCfgTest, LastBlockWrapsToEntry)
{
    SyntheticCfg cfg(testProfile());
    const CfgBlock &wrap = cfg.block(cfg.numBlocks() - 1);
    EXPECT_EQ(wrap.takenNext, 0u);
    EXPECT_EQ(wrap.fallNext, 0u);
}

TEST(SyntheticCfgTest, GraphIsConnectedFromEntry)
{
    // Every block must be reachable: the builder only creates forward
    // fall-through chains, forward skips, and back edges, so walk
    // reachability from block 0.
    SyntheticCfg cfg(testProfile(300));
    std::vector<bool> seen(cfg.numBlocks(), false);
    std::vector<std::size_t> stack = {0};
    while (!stack.empty()) {
        const std::size_t b = stack.back();
        stack.pop_back();
        if (seen[b])
            continue;
        seen[b] = true;
        stack.push_back(cfg.block(b).takenNext);
        stack.push_back(cfg.block(b).fallNext);
    }
    std::size_t reachable = 0;
    for (bool s : seen)
        reachable += s;
    // The taken edge of an if skips its then-region, but the fall edge
    // enters it, so everything should be reachable.
    EXPECT_EQ(reachable, cfg.numBlocks());
}

TEST(SyntheticCfgTest, TooFewBlocksIsFatal)
{
    BenchmarkProfile p = testProfile(2);
    EXPECT_THROW(SyntheticCfg{p}, std::runtime_error);
}

TEST(SyntheticCfgTest, EmptyMixIsFatal)
{
    BenchmarkProfile p = testProfile();
    p.mix = BehaviorMix{};
    EXPECT_THROW(SyntheticCfg{p}, std::runtime_error);
}

TEST(SyntheticCfgTest, IbsProfilesAllBuild)
{
    for (const auto &profile : ibsProfiles()) {
        SyntheticCfg cfg(profile);
        EXPECT_GE(cfg.numBlocks(), profile.targetBlocks) << profile.name;
    }
}

} // namespace
} // namespace confsim
