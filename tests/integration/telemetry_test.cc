/**
 * @file
 * End-to-end telemetry tests: a full nine-benchmark suite run with a
 * fault-injecting trace source must leave a JSONL stream holding the
 * run manifest, per-benchmark timings and attempt counts, and one
 * fault_injected event per injected fault; retries and corrupt-chunk
 * recovery must likewise surface as events.
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "obs/telemetry.h"
#include "predictor/gshare.h"
#include "sim/suite_runner.h"
#include "fault/fault_injection.h"
#include "trace/trace_io.h"

namespace confsim {
namespace {

PredictorFactory
makePredictor()
{
    return [] { return std::make_unique<GsharePredictor>(4096, 12); };
}

EstimatorSetFactory
makeEstimators()
{
    return [] {
        std::vector<std::unique_ptr<ConfidenceEstimator>> out;
        out.push_back(std::make_unique<OneLevelCounterConfidence>(
            IndexScheme::PcXorBhr, 4096, CounterKind::Resetting, 16,
            0));
        return out;
    };
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

std::size_t
countContaining(const std::vector<std::string> &lines,
                const std::string &needle)
{
    std::size_t n = 0;
    for (const auto &line : lines)
        n += line.find(needle) != std::string::npos ? 1 : 0;
    return n;
}

class TelemetryIntegrationTest : public ::testing::Test
{
  protected:
    std::string
    tempPath(const std::string &suffix)
    {
        const std::string path =
            ::testing::TempDir() + "/confsim_tel_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name() +
            suffix;
        paths_.push_back(path);
        return path;
    }

    void
    TearDown() override
    {
        for (const auto &path : paths_)
            std::remove(path.c_str());
    }

  private:
    std::vector<std::string> paths_;
};

TEST_F(TelemetryIntegrationTest, FullSuiteWithFaultsLeavesCompleteLog)
{
    const std::string log = tempPath(".jsonl");
    const BenchmarkSuite suite = BenchmarkSuite::ibs(3000);
    ASSERT_EQ(suite.size(), 9u);
    const std::string faulty = suite.profile(0).name;
    {
        TelemetryOptions telemetry_options;
        telemetry_options.jsonlPath = log;
        const auto telemetry = Telemetry::fromOptions(telemetry_options);

        RunManifest manifest = RunManifest::withBuildInfo();
        manifest.tool = "telemetry_test";
        manifest.suite = "ibs-full";
        for (std::size_t i = 0; i < suite.size(); ++i) {
            ManifestBenchmark bench;
            bench.name = suite.profile(i).name;
            bench.seed = suite.profile(i).seed;
            bench.branches = 3000;
            manifest.benchmarks.push_back(bench);
        }
        telemetry->setManifest(manifest);

        SuiteRunner runner(suite);
        runner.setSourceWrapper(
            [](std::size_t bench, std::unique_ptr<TraceSource> inner)
                -> std::unique_ptr<TraceSource> {
                if (bench != 0)
                    return inner;
                FaultSpec spec;
                spec.dropProb = 0.01;
                spec.takenFlipProb = 0.01;
                return std::make_unique<FaultInjectingTraceSource>(
                    std::move(inner), spec);
            });
        DriverOptions options;
        options.telemetry = telemetry.get();
        runner.run(makePredictor(), makeEstimators(), options);
        telemetry->finish();
    }

    const auto lines = readLines(log);
    ASSERT_GE(lines.size(), 12u);

    // Manifest first, naming the suite and all nine benchmarks.
    EXPECT_NE(lines[0].find("\"type\":\"manifest\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"suite\":\"ibs-full\""),
              std::string::npos);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_NE(lines[0].find("\"" + suite.profile(i).name + "\""),
                  std::string::npos);
    }

    // One lifecycle pair, nine started/finished benchmark events.
    EXPECT_EQ(countContaining(lines, "\"type\":\"suite_run_started\""),
              1u);
    EXPECT_EQ(
        countContaining(lines, "\"type\":\"suite_run_finished\""), 1u);
    EXPECT_EQ(countContaining(lines, "\"type\":\"benchmark_started\""),
              9u);
    EXPECT_EQ(
        countContaining(lines, "\"type\":\"benchmark_finished\""), 9u);
    EXPECT_EQ(countContaining(lines, "\"survivors\":9"), 1u);

    // Every benchmark_finished reports a first-try success and timing.
    for (const auto &line : lines) {
        if (line.find("\"type\":\"benchmark_finished\"") ==
            std::string::npos) {
            continue;
        }
        EXPECT_NE(line.find("\"attempts\":1"), std::string::npos)
            << line;
        EXPECT_NE(line.find("\"wall_ms\":"), std::string::npos);
        EXPECT_NE(line.find("\"mispredict_rate\":"),
                  std::string::npos);
    }

    // Fault events fired, all attributed to the wrapped benchmark,
    // and the registry counters agree with the event count (i.e. no
    // injected fault went unreported).
    const std::size_t drops =
        countContaining(lines, "\"kind\":\"drop\"");
    const std::size_t flips =
        countContaining(lines, "\"kind\":\"taken_flip\"");
    EXPECT_GT(drops, 0u);
    EXPECT_GT(flips, 0u);
    EXPECT_EQ(countContaining(lines, "\"type\":\"fault_injected\""),
              drops + flips);
    for (const auto &line : lines) {
        if (line.find("\"type\":\"fault_injected\"") !=
            std::string::npos) {
            EXPECT_NE(line.find("\"benchmark\":\"" + faulty + "\""),
                      std::string::npos)
                << line;
        }
    }
    const std::string &snapshot = lines.back();
    EXPECT_NE(snapshot.find("\"type\":\"metrics_snapshot\""),
              std::string::npos);
    EXPECT_NE(snapshot.find("\"faults.drop\":" +
                            std::to_string(drops)),
              std::string::npos);
    EXPECT_NE(snapshot.find("\"faults.taken_flip\":" +
                            std::to_string(flips)),
              std::string::npos);
    EXPECT_NE(snapshot.find("\"driver.runs\":9"), std::string::npos);
}

TEST_F(TelemetryIntegrationTest, RetriesSurfaceAsEvents)
{
    const std::string log = tempPath(".jsonl");
    const BenchmarkSuite suite =
        BenchmarkSuite::ibsSubset({"jpeg", "groff"}, 5000);
    {
        TelemetryOptions telemetry_options;
        telemetry_options.jsonlPath = log;
        const auto telemetry = Telemetry::fromOptions(telemetry_options);
        SuiteRunner runner(suite);
        runner.setSourceWrapper(
            [](std::size_t bench, std::unique_ptr<TraceSource> inner)
                -> std::unique_ptr<TraceSource> {
                if (bench != 1)
                    return inner;
                FaultSpec spec;
                spec.failAfter = 1000; // deterministic hard failure
                return std::make_unique<FaultInjectingTraceSource>(
                    std::move(inner), spec);
            });
        DriverOptions options;
        options.telemetry = telemetry.get();
        RunPolicy policy;
        policy.errorMode = ErrorMode::kContinueOnError;
        policy.maxAttempts = 2;
        const auto result = runner.run(makePredictor(),
                                       makeEstimators(), options,
                                       policy);
        EXPECT_TRUE(result.degraded);
        ASSERT_EQ(result.perBenchmark.size(), 2u);
        EXPECT_EQ(result.perBenchmark[1].attempts, 2u);
        telemetry->finish();
    }

    const auto lines = readLines(log);
    EXPECT_EQ(countContaining(lines, "\"type\":\"benchmark_retry\""),
              1u);
    // One hard_fail fault event per attempt.
    EXPECT_EQ(countContaining(lines, "\"kind\":\"hard_fail\""), 2u);
    // The failed benchmark reports both attempts and its error.
    bool saw_failed = false;
    for (const auto &line : lines) {
        if (line.find("\"type\":\"benchmark_finished\"") !=
                std::string::npos &&
            line.find("\"benchmark\":\"groff\"") !=
                std::string::npos) {
            saw_failed = true;
            EXPECT_NE(line.find("\"attempts\":2"), std::string::npos);
            EXPECT_NE(line.find("injected fault"), std::string::npos);
        }
    }
    EXPECT_TRUE(saw_failed);
    EXPECT_EQ(countContaining(lines, "\"degraded\":true"), 1u);
}

TEST_F(TelemetryIntegrationTest, CorruptChunkRecoveryEmitsSkipEvents)
{
    const std::string log = tempPath(".jsonl");
    const std::string trace = tempPath(".cbt");
    const BenchmarkSuite suite =
        BenchmarkSuite::ibsSubset({"jpeg"}, 20000);
    {
        auto generator = suite.makeGenerator(0);
        writeTraceFile(*generator, trace);
        // Flip one payload bit inside the first chunk.
        std::fstream file(trace, std::ios::binary | std::ios::in |
                                     std::ios::out);
        ASSERT_TRUE(file);
        file.seekg(16 + 12 + 100);
        char byte = 0;
        file.get(byte);
        file.seekp(16 + 12 + 100);
        file.put(static_cast<char>(byte ^ 0x10));
    }
    {
        TelemetryOptions telemetry_options;
        telemetry_options.jsonlPath = log;
        const auto telemetry = Telemetry::fromOptions(telemetry_options);
        SuiteRunner runner(suite);
        runner.setSourceWrapper(
            [&trace](std::size_t, std::unique_ptr<TraceSource>)
                -> std::unique_ptr<TraceSource> {
                return std::make_unique<TraceFileReader>(
                    trace, RecoveryMode::kSkipCorrupt);
            });
        DriverOptions options;
        options.telemetry = telemetry.get();
        const auto result =
            runner.run(makePredictor(), makeEstimators(), options);
        EXPECT_FALSE(result.degraded);
        telemetry->finish();
    }

    const auto lines = readLines(log);
    const std::size_t skips =
        countContaining(lines, "\"type\":\"corrupt_chunk_skipped\"");
    EXPECT_GE(skips, 1u);
    bool saw_detail = false;
    for (const auto &line : lines) {
        if (line.find("\"type\":\"corrupt_chunk_skipped\"") !=
            std::string::npos) {
            saw_detail = true;
            EXPECT_NE(line.find("\"what\":"), std::string::npos);
            EXPECT_NE(line.find("\"dropped_records\":"),
                      std::string::npos);
        }
    }
    EXPECT_TRUE(saw_detail);
    EXPECT_NE(lines.back().find("\"trace.corrupt_chunks_skipped\":"),
              std::string::npos);
}

} // namespace
} // namespace confsim
