/**
 * @file
 * Sampling determinism + accuracy differentials.
 *
 * The sampling engine inherits the sweep engine's bit-exactness
 * contract: given one seed, region selections AND estimates must be
 * bit-identical however the replay is parallelized (worker threads,
 * decode-ahead depth, batch size). And against the differential
 * harness's exact ground truth, the 95% CIs must do their job: contain
 * the full-replay misprediction rate, per benchmark and composite.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "predictor/gshare.h"
#include "sim/sampling_engine.h"
#include "sim/suite_runner.h"

namespace confsim {
namespace {

std::vector<SweepConfiguration>
twoConfigs()
{
    std::vector<SweepConfiguration> configs;
    for (const char *label : {"large", "small"}) {
        SweepConfiguration config;
        config.label = label;
        const bool large = std::string(label) == "large";
        config.makePredictor = [large] {
            return std::make_unique<GsharePredictor>(
                large ? 65536 : 4096, large ? 16 : 12);
        };
        config.makeEstimators = [] {
            std::vector<std::unique_ptr<ConfidenceEstimator>> out;
            out.push_back(std::make_unique<OneLevelCirConfidence>(
                IndexScheme::PcXorBhr, 4096, 16,
                CirReduction::RawPattern, CtInit::Ones));
            return out;
        };
        configs.push_back(std::move(config));
    }
    return configs;
}

SamplingOptions
baseOptions()
{
    SamplingOptions options;
    options.sampleRate = 0.1;
    options.regionBranches = 2000;
    options.strata = 4;
    options.subsamples = 5;
    options.seed = 0xFEED;
    return options;
}

SamplingRunResult
runSampled(const SamplingOptions &options)
{
    SuiteRunner runner(
        BenchmarkSuite::ibsSubset({"jpeg", "real_gcc"}, 100000));
    SamplingEngine engine(twoConfigs(), DriverOptions{}, options);
    return engine.runSuite(runner);
}

void
expectIdentical(const SamplingRunResult &a, const SamplingRunResult &b)
{
    ASSERT_EQ(a.perBenchmark.size(), b.perBenchmark.size());
    EXPECT_EQ(a.totalBranches, b.totalBranches);
    EXPECT_EQ(a.recordedBranches, b.recordedBranches);
    for (std::size_t i = 0; i < a.perBenchmark.size(); ++i) {
        const SamplingBenchmarkResult &ba = a.perBenchmark[i];
        const SamplingBenchmarkResult &bb = b.perBenchmark[i];
        EXPECT_EQ(ba.sampledRegionIds, bb.sampledRegionIds)
            << ba.name;
        ASSERT_EQ(ba.perConfig.size(), bb.perConfig.size());
        for (std::size_t c = 0; c < ba.perConfig.size(); ++c) {
            const SamplingConfigEstimate &ea = ba.perConfig[c];
            const SamplingConfigEstimate &eb = bb.perConfig[c];
            // Bit-identical, not approximately equal: the plan cursor
            // is a pure function of the per-config simulated count.
            EXPECT_EQ(ea.rateSubsamples, eb.rateSubsamples)
                << ba.name << "/" << ea.label;
            EXPECT_EQ(ea.coverageSubsamples, eb.coverageSubsamples);
            EXPECT_EQ(ea.pvnSubsamples, eb.pvnSubsamples);
            EXPECT_DOUBLE_EQ(ea.mispredictRate.mean,
                             eb.mispredictRate.mean);
            EXPECT_DOUBLE_EQ(ea.mispredictRate.ciHalf,
                             eb.mispredictRate.ciHalf);
        }
    }
    ASSERT_EQ(a.composite.size(), b.composite.size());
    for (std::size_t c = 0; c < a.composite.size(); ++c) {
        EXPECT_EQ(a.composite[c].rateSubsamples,
                  b.composite[c].rateSubsamples);
        EXPECT_DOUBLE_EQ(a.composite[c].mispredictRate.mean,
                         b.composite[c].mispredictRate.mean);
    }
}

TEST(SamplingDifferentialTest, ThreadCountNeverChangesEstimates)
{
    SamplingOptions one = baseOptions();
    one.sweep.threads = 1;
    SamplingOptions many = baseOptions();
    many.sweep.threads = 4;
    expectIdentical(runSampled(one), runSampled(many));
}

TEST(SamplingDifferentialTest, DecodeAheadNeverChangesEstimates)
{
    SamplingOptions sync = baseOptions();
    sync.sweep.decodeAhead = 1;
    SamplingOptions deep = baseOptions();
    deep.sweep.decodeAhead = 4;
    expectIdentical(runSampled(sync), runSampled(deep));
}

TEST(SamplingDifferentialTest, BatchSizeNeverChangesEstimates)
{
    SamplingOptions small = baseOptions();
    small.sweep.batchSize = 512;
    SamplingOptions large = baseOptions();
    large.sweep.batchSize = 8192;
    expectIdentical(runSampled(small), runSampled(large));
}

TEST(SamplingDifferentialTest,
     ThreadCountNeverChangesBoundedWarmingEstimates)
{
    SamplingOptions one = baseOptions();
    one.warmupRegions = 2;
    one.sweep.threads = 1;
    SamplingOptions many = baseOptions();
    many.warmupRegions = 2;
    many.sweep.threads = 4;
    expectIdentical(runSampled(one), runSampled(many));
}

TEST(SamplingDifferentialTest, CiContainsExactGroundTruth)
{
    // The differential harness as oracle: replay the identical suite
    // exactly through the sweep engine, then require every sampled
    // 95% CI — per benchmark and composite — to contain it.
    SuiteRunner runner(
        BenchmarkSuite::ibsSubset({"jpeg", "real_gcc", "groff"},
                                  100000));
    const SweepSuiteResult exact =
        runner.runSweep(twoConfigs(), DriverOptions{}, SweepOptions{});

    SamplingEngine engine(twoConfigs(), DriverOptions{},
                          baseOptions());
    const SamplingRunResult sampled = engine.runSuite(runner);

    EXPECT_GE(sampled.reductionFactor(), 5.0);
    for (std::size_t c = 0; c < exact.perConfig.size(); ++c) {
        const SuiteRunResult &truth = exact.perConfig[c];
        for (std::size_t b = 0; b < sampled.perBenchmark.size();
             ++b) {
            const IntervalEstimate &est =
                sampled.perBenchmark[b].perConfig[c].mispredictRate;
            EXPECT_TRUE(est.contains(
                truth.perBenchmark[b].mispredictRate))
                << sampled.perBenchmark[b].name << "/"
                << truth.perBenchmark[b].name << " config " << c
                << ": exact " << truth.perBenchmark[b].mispredictRate
                << " outside [" << est.ciLow() << ", "
                << est.ciHigh() << "]";
        }
        const IntervalEstimate &composite =
            sampled.composite[c].mispredictRate;
        EXPECT_TRUE(
            composite.contains(truth.compositeMispredictRate))
            << "composite config " << c << ": exact "
            << truth.compositeMispredictRate << " outside ["
            << composite.ciLow() << ", " << composite.ciHigh()
            << "]";
    }
}

} // namespace
} // namespace confsim
