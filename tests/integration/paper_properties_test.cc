/** @file
 * Property tests for the paper's qualitative claims, run at reduced
 * scale (a benchmark subset with shorter traces) so the full test
 * suite stays fast. The bench/ harnesses reproduce the quantitative
 * figures at full scale.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace confsim {
namespace {

/** Shared small-scale experiment environment. */
ExperimentEnv
smallEnv()
{
    ExperimentEnv env;
    env.branchesPerBenchmark = 150000;
    env.fullSuite = false; // jpeg, real_gcc, groff
    return env;
}

double
coverageAt20(const NamedCurve &curve)
{
    return curve.curve.mispredCoverageAt(0.20);
}

class OneLevelProperties : public ::testing::Test
{
  protected:
    static const SuiteRunResult &
    result()
    {
        static const SuiteRunResult r = runSuiteExperiment(
            smallEnv(), largeGshareFactory(),
            {
                oneLevelIdealConfig(IndexScheme::Pc),
                oneLevelIdealConfig(IndexScheme::Bhr),
                oneLevelIdealConfig(IndexScheme::PcXorBhr),
                oneLevelIdealConfig(IndexScheme::Gcir),
                oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                      CounterKind::Resetting),
                oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                      CounterKind::Saturating),
                oneLevelOnesCountConfig(IndexScheme::PcXorBhr),
            });
        return r;
    }
};

TEST_F(OneLevelProperties, DynamicBeatsIdealStatic)
{
    // Section 4.1: "the dynamic methods are capable of performing
    // much better than the optimistic static method."
    const auto dynamic = compositeCurve(result(), 2, "PCxorBHR");
    const auto static_curve = staticCompositeCurve(result());
    EXPECT_GT(coverageAt20(dynamic), coverageAt20(static_curve) + 0.05);
}

TEST_F(OneLevelProperties, PcXorBhrIsBestIndexing)
{
    // Fig. 5 ordering: PC^BHR > BHR > PC.
    const double pc = coverageAt20(compositeCurve(result(), 0, "PC"));
    const double bhr = coverageAt20(compositeCurve(result(), 1, "BHR"));
    const double both =
        coverageAt20(compositeCurve(result(), 2, "PCxorBHR"));
    EXPECT_GT(both, pc);
    EXPECT_GE(both, bhr - 0.01); // "a close second"
    EXPECT_GT(bhr, pc);
}

TEST_F(OneLevelProperties, GcirIndexingIsPoor)
{
    // Section 3.1: "indexing with a global CIR is of little value".
    const double gcir =
        coverageAt20(compositeCurve(result(), 3, "GCIR"));
    const double both =
        coverageAt20(compositeCurve(result(), 2, "PCxorBHR"));
    EXPECT_LT(gcir, both - 0.10);
}

TEST_F(OneLevelProperties, ResettingTracksIdealClosely)
{
    // Fig. 8: the resetting counter "tracks the ideal curve closely".
    const double ideal =
        coverageAt20(compositeCurve(result(), 2, "ideal"));
    const double reset =
        coverageAt20(compositeCurve(result(), 4, "reset"));
    EXPECT_GT(reset, ideal - 0.12);
}

TEST_F(OneLevelProperties, SaturatingCannotCoverBeyondItsMaxBucket)
{
    // Fig. 8: saturating counters inflate the max-count bucket, so
    // their curve cannot reach high coverage before the huge bucket.
    // Compare the ref-fraction needed for 85% coverage.
    const auto reset = compositeCurve(result(), 4, "reset");
    const auto sat = compositeCurve(result(), 5, "sat");
    EXPECT_LT(reset.curve.refFractionForCoverage(0.85),
              sat.curve.refFractionForCoverage(0.85));
}

TEST_F(OneLevelProperties, SaturatingMaxBucketOutweighsResettingMax)
{
    // The mechanism behind the previous test: the saturated bucket of
    // the saturating counter carries more misprediction mass than the
    // resetting counter's.
    const auto &reset_stats = result().compositeEstimatorStats[4];
    const auto &sat_stats = result().compositeEstimatorStats[5];
    const double reset_max_miss_share =
        reset_stats[16].mispredicts / reset_stats.totalMispredicts();
    const double sat_max_miss_share =
        sat_stats[16].mispredicts / sat_stats.totalMispredicts();
    EXPECT_GT(sat_max_miss_share, reset_max_miss_share);
}

TEST_F(OneLevelProperties, OnesCountZeroBucketMatchesIdealZeroBucket)
{
    // Fig. 8: "for ones counting the zero bucket lines up with the
    // optimistic zero bucket (as it should)" — bucket 0 of the
    // ones-count estimator aggregates exactly the all-zeros CIRs.
    const auto &ideal_stats = result().compositeEstimatorStats[2];
    const auto &ones_stats = result().compositeEstimatorStats[6];
    EXPECT_NEAR(ones_stats[0].refs, ideal_stats[0].refs,
                1e-6 * std::max(1.0, ideal_stats[0].refs));
    EXPECT_NEAR(ones_stats[0].mispredicts, ideal_stats[0].mispredicts,
                1e-6 * std::max(1.0, ideal_stats[0].mispredicts));
}

TEST_F(OneLevelProperties, ZeroBucketDominatesReferences)
{
    // Section 4.1: the all-zeros CIR is by far the most frequent
    // pattern (paper: ~80% of predictions with a 96% accurate
    // predictor).
    const auto &stats = result().compositeEstimatorStats[2];
    EXPECT_GT(stats[0].refs / stats.totalRefs(), 0.5);
    // ... but carries a small share of the mispredictions.
    EXPECT_LT(stats[0].mispredicts / stats.totalMispredicts(), 0.3);
}

class TwoLevelProperties : public ::testing::Test
{
  protected:
    static const SuiteRunResult &
    result()
    {
        static const SuiteRunResult r = runSuiteExperiment(
            smallEnv(), largeGshareFactory(),
            {
                oneLevelIdealConfig(IndexScheme::PcXorBhr),
                twoLevelConfig(IndexScheme::PcXorBhr,
                               SecondLevelIndex::Cir),
            });
        return r;
    }
};

TEST_F(TwoLevelProperties, TwoLevelIsNotBetterThanOneLevel)
{
    // Fig. 7: "the one and two level methods give very similar
    // performance. If anything, the two level method performs very
    // slightly worse."
    const double one =
        coverageAt20(compositeCurve(result(), 0, "1lvl"));
    const double two =
        coverageAt20(compositeCurve(result(), 1, "2lvl"));
    EXPECT_LT(two, one + 0.03);
}

TEST(InitializationProperties, ZerosInitIsWorst)
{
    // Fig. 11: all-zeros CT initialization performs clearly worse;
    // ones / random / lastbit are similar.
    ExperimentEnv env = smallEnv();
    const auto result = runSuiteExperiment(
        env, largeGshareFactory(),
        {
            oneLevelIdealConfig(IndexScheme::PcXorBhr,
                                paper::kLargeCtEntries,
                                paper::kCirBits, CtInit::Ones),
            oneLevelIdealConfig(IndexScheme::PcXorBhr,
                                paper::kLargeCtEntries,
                                paper::kCirBits, CtInit::Zeros),
            oneLevelIdealConfig(IndexScheme::PcXorBhr,
                                paper::kLargeCtEntries,
                                paper::kCirBits, CtInit::LastBit),
        });
    const double ones = coverageAt20(compositeCurve(result, 0, "1"));
    const double zeros = coverageAt20(compositeCurve(result, 1, "0"));
    const double lastbit =
        coverageAt20(compositeCurve(result, 2, "lb"));
    EXPECT_GT(ones, zeros);
    EXPECT_NEAR(lastbit, ones, 0.05);
}

TEST(SmallTableProperties, AliasingDegradesGracefully)
{
    // Fig. 10: performance diminishes in a well-behaved manner as the
    // CT shrinks.
    ExperimentEnv env = smallEnv();
    env.branchesPerBenchmark = 100000;
    const auto result = runSuiteExperiment(
        env, smallGshareFactory(),
        {
            oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                  CounterKind::Resetting, 4096),
            oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                  CounterKind::Resetting, 512),
            oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                  CounterKind::Resetting, 128),
        });
    const double big = coverageAt20(compositeCurve(result, 0, "4096"));
    const double mid = coverageAt20(compositeCurve(result, 1, "512"));
    const double tiny = coverageAt20(compositeCurve(result, 2, "128"));
    EXPECT_GT(big, mid - 0.02);
    EXPECT_GT(mid, tiny - 0.02);
    EXPECT_GT(big, tiny);
    // Still useful even tiny (paper: smaller tables remain "fairly
    // good").
    EXPECT_GT(tiny, 0.35);
}

TEST(BenchmarkVariationProperties, JpegBeatsGcc)
{
    // Fig. 9: jpeg is the best-behaved benchmark, gcc the worst.
    ExperimentEnv env;
    env.branchesPerBenchmark = 150000;
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"jpeg", "real_gcc"},
                                                 env.branchesPerBenchmark));
    DriverOptions options;
    options.profileStatic = false;
    const auto result = runner.run(
        largeGshareFactory(),
        [] {
            std::vector<std::unique_ptr<ConfidenceEstimator>> out;
            out.push_back(oneLevelIdealConfig(IndexScheme::PcXorBhr)
                              .make());
            return out;
        },
        options);
    const auto jpeg = ConfidenceCurve::fromBucketStats(
        result.perBenchmark[0].estimatorStats[0]);
    const auto gcc = ConfidenceCurve::fromBucketStats(
        result.perBenchmark[1].estimatorStats[0]);
    EXPECT_LT(result.perBenchmark[0].mispredictRate,
              result.perBenchmark[1].mispredictRate);
    // jpeg's zero bucket holds a larger fraction of branches.
    const auto &jpeg_stats = result.perBenchmark[0].estimatorStats[0];
    const auto &gcc_stats = result.perBenchmark[1].estimatorStats[0];
    EXPECT_GT(jpeg_stats[0].refs / jpeg_stats.totalRefs(),
              gcc_stats[0].refs / gcc_stats.totalRefs());
}

} // namespace
} // namespace confsim
