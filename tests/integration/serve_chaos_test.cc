/**
 * @file
 * Chaos drills for the sweep job service: many tenants submitting
 * concurrently while some jobs carry injected faults, a hang injected
 * into the shared worker pool while the service drains, and the
 * service telemetry stream staying schema-complete through all of it.
 *
 * The invariants under test are the service's headline promises:
 *
 *  1. Tenant isolation — a faulted job fails alone; every surviving
 *     job's results are bit-exact with a direct, sequential
 *     SuiteRunner::runSweep of the same spec.
 *  2. Exact accounting — after drain, submitted == admitted +
 *     rejected and admitted == finished + failed + cancelled +
 *     drained, under concurrency and chaos.
 *  3. Drain cleanliness — drain(kCancel) terminates promptly even
 *     when an injected hang has parked a job's sweep shard, because
 *     the hang parks polling the job's cancellation chain.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "fault/fault_injection.h"
#include "fault/fault_plan.h"
#include "obs/telemetry.h"
#include "predictor/gshare.h"
#include "serve/sweep_service.h"
#include "sim/suite_runner.h"
#include "util/error.h"
#include "workload/suite.h"

namespace confsim {
namespace {

constexpr std::uint64_t kBranches = 20'000;

std::vector<SweepConfiguration>
chaosGrid(std::size_t configs)
{
    std::vector<SweepConfiguration> grid;
    for (std::size_t i = 0; i < configs; ++i) {
        SweepConfiguration config;
        config.label = "chaos" + std::to_string(i);
        config.makePredictor = [] {
            return std::make_unique<GsharePredictor>(4096, 12);
        };
        config.makeEstimators = [i] {
            std::vector<std::unique_ptr<ConfidenceEstimator>> set;
            set.push_back(std::make_unique<OneLevelCounterConfidence>(
                IndexScheme::PcXorBhr, 1024,
                i % 2 == 0 ? CounterKind::Resetting
                           : CounterKind::HalfReset,
                16, 0));
            return set;
        };
        grid.push_back(std::move(config));
    }
    return grid;
}

JobSpec
chaosSpec(std::string tenant, std::string label, std::string bench,
          std::size_t configs)
{
    JobSpec spec;
    spec.tenant = std::move(tenant);
    spec.label = std::move(label);
    spec.benchmarks = {std::move(bench)};
    spec.branches = kBranches;
    spec.configs = chaosGrid(configs);
    return spec;
}

/** Direct (service-free) reference run of the same spec. */
SweepSuiteResult
directRun(const JobSpec &spec)
{
    SuiteRunner runner(
        BenchmarkSuite::ibsSubset(spec.benchmarks, spec.branches));
    return runner.runSweep(chaosGrid(spec.configs.size()),
                           DriverOptions{}, SweepOptions{});
}

void
expectBitExact(const SweepSuiteResult &got,
               const SweepSuiteResult &want, const std::string &label)
{
    ASSERT_EQ(got.perConfig.size(), want.perConfig.size()) << label;
    for (std::size_t c = 0; c < want.perConfig.size(); ++c) {
        EXPECT_EQ(got.perConfig[c].compositeMispredictRate,
                  want.perConfig[c].compositeMispredictRate)
            << label << " config " << c;
        ASSERT_EQ(got.perConfig[c].perBenchmark.size(),
                  want.perConfig[c].perBenchmark.size());
        for (std::size_t b = 0;
             b < want.perConfig[c].perBenchmark.size(); ++b) {
            EXPECT_EQ(got.perConfig[c].perBenchmark[b].mispredicts,
                      want.perConfig[c].perBenchmark[b].mispredicts)
                << label << " config " << c << " bench " << b;
            EXPECT_EQ(got.perConfig[c].perBenchmark[b].branches,
                      want.perConfig[c].perBenchmark[b].branches);
        }
    }
}

TEST(ServeChaosTest, SurvivorsBitExactWhileFaultedTenantsFail)
{
    ServiceOptions options;
    options.jobSlots = 2;
    options.queueDepth = 32;
    SweepService service(options);

    // Six tenants, two of them with hard trace faults at different
    // stream positions; the faulty ones run concurrently with the
    // clean ones over the one shared worker pool.
    const std::vector<std::string> benches = {"groff", "jpeg",
                                              "mpeg"};
    struct Submitted
    {
        std::uint64_t id;
        JobSpec reference;
        bool faulty;
    };
    std::vector<Submitted> jobs;
    for (int i = 0; i < 6; ++i) {
        const bool faulty = i == 1 || i == 4;
        JobSpec spec = chaosSpec("tenant" + std::to_string(i),
                                 "chaos", benches[i % benches.size()],
                                 1 + i % 2);
        JobSpec reference = chaosSpec(
            spec.tenant, spec.label, spec.benchmarks[0],
            spec.configs.size());
        if (faulty) {
            spec.wrapSource =
                [i](std::size_t, std::unique_ptr<TraceSource> inner) {
                    FaultSpec fault;
                    fault.failAfter = 500 * (i + 1);
                    return std::make_unique<
                        FaultInjectingTraceSource>(std::move(inner),
                                                   fault);
                };
        }
        jobs.push_back({service.submit(std::move(spec)),
                        std::move(reference), faulty});
    }

    std::uint64_t finished = 0;
    std::uint64_t failed = 0;
    for (const Submitted &job : jobs) {
        const JobStatus done = service.wait(job.id);
        if (job.faulty) {
            ++failed;
            EXPECT_EQ(done.state, JobState::kFailed);
            EXPECT_EQ(done.errorCategory, ErrorCategory::kTrace);
            EXPECT_EQ(done.result, nullptr);
        } else {
            ++finished;
            ASSERT_EQ(done.state, JobState::kFinished) << done.error;
            ASSERT_NE(done.result, nullptr);
            expectBitExact(*done.result, directRun(job.reference),
                           job.reference.tenant);
        }
    }

    service.drain(DrainMode::kWait);
    const ServiceStatus status = service.serviceStatus();
    EXPECT_EQ(status.submitted, 6u);
    EXPECT_EQ(status.admitted, 6u);
    EXPECT_EQ(status.finished, finished);
    EXPECT_EQ(status.failed, failed);
    EXPECT_EQ(status.submitted, status.admitted + status.rejected);
    EXPECT_EQ(status.admitted, status.finished + status.failed +
                                   status.cancelled + status.drained);
}

TEST(ServeChaosTest, AccountingExactUnderConcurrentChaosSubmits)
{
    ServiceOptions options;
    options.jobSlots = 2;
    options.queueDepth = 3;
    options.poolWorkers = 2;
    SweepService service(options);

    constexpr int kThreads = 3;
    constexpr int kPerThread = 6;
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> expectFailed{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                JobSpec spec =
                    chaosSpec("tenant" + std::to_string(t),
                              "job" + std::to_string(i), "groff", 1);
                spec.branches = 4'000;
                const bool faulty = i % 3 == 0;
                if (faulty) {
                    spec.wrapSource =
                        [](std::size_t,
                           std::unique_ptr<TraceSource> inner) {
                            FaultSpec fault;
                            fault.failAfter = 200;
                            return std::make_unique<
                                FaultInjectingTraceSource>(
                                std::move(inner), fault);
                        };
                }
                try {
                    service.submit(std::move(spec));
                    ++accepted;
                    if (faulty)
                        ++expectFailed;
                } catch (const Error &e) {
                    EXPECT_EQ(e.category(),
                              ErrorCategory::kResource);
                    ++shed;
                }
            }
        });
    }
    for (std::thread &thread : submitters)
        thread.join();

    service.drain(DrainMode::kWait);
    const ServiceStatus status = service.serviceStatus();
    EXPECT_EQ(status.submitted,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(status.admitted, accepted.load());
    EXPECT_EQ(status.rejected, shed.load());
    EXPECT_EQ(status.failed, expectFailed.load());
    EXPECT_EQ(status.finished, accepted.load() - expectFailed.load());
    EXPECT_EQ(status.submitted, status.admitted + status.rejected);
    EXPECT_EQ(status.admitted, status.finished + status.failed +
                                   status.cancelled + status.drained);
}

TEST(ServeChaosTest, CancelDrainUnwindsAnInjectedHang)
{
    // Park the first replayed batch of config 0 via the process-wide
    // fault plane, then cancel-drain: the hang site polls the job's
    // cancellation chain, so the drain must settle promptly instead
    // of deadlocking behind the parked shard.
    ScopedFaultPlan plan("shard:cfg=0,batch=1:hang");

    ServiceOptions options;
    options.jobSlots = 1;
    options.poolWorkers = 1;
    SweepService service(options);

    const std::uint64_t id =
        service.submit(chaosSpec("alice", "hung", "groff", 1));
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (service.status(id).state == JobState::kQueued &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_NE(service.status(id).state, JobState::kQueued);

    const auto start = std::chrono::steady_clock::now();
    service.drain(DrainMode::kCancel);
    const auto drainMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();

    // Well under the 30 s park cap: the unwind must come from the
    // cancellation chain, not the hang's own timeout.
    EXPECT_LT(drainMs, 15'000);
    const JobStatus done = service.status(id);
    EXPECT_TRUE(done.state == JobState::kCancelled ||
                done.state == JobState::kFailed)
        << toString(done.state);
    const ServiceStatus status = service.serviceStatus();
    EXPECT_EQ(status.admitted, 1u);
    EXPECT_EQ(status.admitted, status.finished + status.failed +
                                   status.cancelled + status.drained);
}

TEST(ServeChaosTest, ServiceTelemetryStreamStaysWellFormed)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "confsim_serve_chaos_telemetry";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "serve.jsonl").string();

    {
        TelemetryOptions telemetryOptions;
        telemetryOptions.jsonlPath = path;
        const auto telemetry =
            Telemetry::fromOptions(telemetryOptions);
        ServiceOptions options;
        options.jobSlots = 2;
        options.poolWorkers = 1;
        options.telemetry = telemetry.get();
        SweepService service(options);

        // Exercise every event type: admit, start, finish, fail,
        // reject, and the drain summary. The rejection is a
        // deterministic config one (empty grid) — queue-full shedding
        // is timing-dependent and tested elsewhere.
        service.submit(chaosSpec("alice", "ok", "groff", 1));
        JobSpec faulty = chaosSpec("bob", "bad", "groff", 1);
        faulty.wrapSource = [](std::size_t,
                               std::unique_ptr<TraceSource> inner) {
            FaultSpec fault;
            fault.failAfter = 100;
            return std::make_unique<FaultInjectingTraceSource>(
                std::move(inner), fault);
        };
        service.submit(std::move(faulty));
        JobSpec unrunnable = chaosSpec("carol", "empty", "groff", 1);
        unrunnable.configs.clear();
        EXPECT_THROW(service.submit(std::move(unrunnable)), Error);
        service.drain(DrainMode::kWait);
        telemetry->finish();
    }

    // The stream must be one well-formed JSON object per line, led by
    // the manifest, with the service lifecycle events present.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t lines = 0;
    bool sawAdmitted = false;
    bool sawStarted = false;
    bool sawFinished = false;
    bool sawFailed = false;
    bool sawRejected = false;
    bool sawDrainSummary = false;
    std::string firstType;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++lines;
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
        const auto typeAt = line.find("\"type\":\"");
        ASSERT_NE(typeAt, std::string::npos) << line;
        const auto from = typeAt + 8;
        const std::string type =
            line.substr(from, line.find('"', from) - from);
        if (lines == 1)
            firstType = type;
        if (type == "job_admitted")
            sawAdmitted = true;
        if (type == "job_started")
            sawStarted = true;
        if (type == "job_finished")
            sawFinished = true;
        if (type == "job_failed")
            sawFailed = true;
        if (type == "job_rejected")
            sawRejected = true;
        if (type == "service_drained")
            sawDrainSummary = true;
    }
    EXPECT_EQ(firstType, "manifest");
    EXPECT_TRUE(sawAdmitted);
    EXPECT_TRUE(sawStarted);
    EXPECT_TRUE(sawFinished);
    EXPECT_TRUE(sawFailed);
    EXPECT_TRUE(sawRejected);
    EXPECT_TRUE(sawDrainSummary);
    fs::remove_all(dir);
}

} // namespace
} // namespace confsim
