/**
 * @file
 * Integration tests for per-branch attribution profiling: profiling
 * must be bit-exact-neutral in the sequential driver and in every
 * sweep config replica, its totals must equal the run aggregates
 * exactly (the acceptance invariant behind --branch-profile), and the
 * suite merge must tag PCs by benchmark index.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "obs/branch_profiler.h"
#include "predictor/gshare.h"
#include "sim/driver.h"
#include "sim/suite_runner.h"
#include "sim/sweep_engine.h"
#include "workload/suite.h"

namespace confsim {
namespace {

constexpr std::uint64_t kBranches = 40'000;

PredictorFactory
testPredictor()
{
    return [] { return std::make_unique<GsharePredictor>(4096, 12); };
}

EstimatorSetFactory
testEstimators()
{
    return [] {
        std::vector<std::unique_ptr<ConfidenceEstimator>> out;
        out.push_back(std::make_unique<OneLevelCounterConfidence>(
            IndexScheme::PcXorBhr, 1024, CounterKind::Resetting, 16,
            0));
        return out;
    };
}

DriverResult
runSequential(DriverOptions options,
              std::uint64_t branches = kBranches)
{
    auto predictor = testPredictor()();
    auto owned = testEstimators()();
    std::vector<ConfidenceEstimator *> raw;
    for (auto &estimator : owned)
        raw.push_back(estimator.get());
    SimulationDriver driver(*predictor, raw, options);
    auto source = BenchmarkSuite::ibsSmall(branches).makeGenerator(0);
    return driver.run(*source);
}

void
expectProfilesIdentical(const BranchProfile &expected,
                        const BranchProfile &actual)
{
    EXPECT_EQ(expected.totalExecutions(), actual.totalExecutions());
    EXPECT_EQ(expected.totalMispredictions(),
              actual.totalMispredictions());
    EXPECT_EQ(expected.evictedPcs(), actual.evictedPcs());
    ASSERT_EQ(expected.entries().size(), actual.entries().size());
    for (const auto &[pc, entry] : expected.entries()) {
        const auto it = actual.entries().find(pc);
        ASSERT_NE(it, actual.entries().end()) << "pc " << pc;
        EXPECT_EQ(entry.executions, it->second.executions);
        EXPECT_EQ(entry.mispredictions, it->second.mispredictions);
        EXPECT_EQ(entry.lowConfidence, it->second.lowConfidence);
        EXPECT_EQ(entry.confidenceSum, it->second.confidenceSum);
    }
}

TEST(BranchProfileIntegration, ProfilingIsBitExactNeutral)
{
    DriverOptions plain;
    const DriverResult reference = runSequential(plain);

    DriverOptions profiled = plain;
    profiled.profileBranches = true;
    const DriverResult result = runSequential(profiled);

    // Simulation outputs are untouched by the observer.
    EXPECT_EQ(reference.branches, result.branches);
    EXPECT_EQ(reference.mispredicts, result.mispredicts);
    ASSERT_EQ(reference.estimatorStats.size(),
              result.estimatorStats.size());
    const BucketStats &eb = reference.estimatorStats[0];
    const BucketStats &ab = result.estimatorStats[0];
    ASSERT_EQ(eb.numBuckets(), ab.numBuckets());
    for (std::uint64_t b = 0; b < eb.numBuckets(); ++b) {
        EXPECT_EQ(eb[b].refs, ab[b].refs);
        EXPECT_EQ(eb[b].mispredicts, ab[b].mispredicts);
    }

    // The acceptance invariant: profile totals equal the run
    // aggregates exactly (eviction folds, never discards).
    ASSERT_TRUE(result.branchProfile.enabled());
    EXPECT_EQ(result.branchProfile.totalExecutions(), result.branches);
    EXPECT_EQ(result.branchProfile.totalMispredictions(),
              result.mispredicts);
    EXPECT_FALSE(reference.branchProfile.enabled());

    // And the top-K table's mass plus the evicted aggregate recovers
    // the total: nothing is double counted or lost.
    std::uint64_t tracked = 0;
    for (const auto &entry : result.branchProfile.topByMispredictions(
             result.branchProfile.entries().size()))
        tracked += entry.second.mispredictions;
    EXPECT_EQ(tracked +
                  result.branchProfile.evicted().mispredictions,
              result.mispredicts);
}

TEST(BranchProfileIntegration, WarmupGatesProfileLikeTheAggregates)
{
    DriverOptions options;
    options.profileBranches = true;
    options.warmupBranches = 5'000;
    const DriverResult result = runSequential(options);
    ASSERT_GT(result.branches, 0u);
    // Warmup branches are excluded from both sides identically.
    EXPECT_EQ(result.branchProfile.totalExecutions(), result.branches);
    EXPECT_EQ(result.branchProfile.totalMispredictions(),
              result.mispredicts);
}

TEST(BranchProfileIntegration, SweepReplicaMatchesSequential)
{
    DriverOptions options;
    options.profileBranches = true;
    const DriverResult reference = runSequential(options);

    SweepOptions sweep;
    sweep.threads = 2;
    sweep.decodeAhead = 3;
    sweep.batchSize = 777;
    std::vector<SweepConfiguration> configs;
    for (int c = 0; c < 3; ++c)
        configs.push_back({"cfg" + std::to_string(c), testPredictor(),
                           testEstimators()});
    SweepEngine engine(configs, options, sweep);
    auto source = BenchmarkSuite::ibsSmall(kBranches).makeGenerator(0);
    const SweepRunResult result = engine.run(*source);

    ASSERT_EQ(result.perConfig.size(), configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        SCOPED_TRACE("config " + std::to_string(c));
        ASSERT_TRUE(result.perConfig[c].branchProfile.enabled());
        expectProfilesIdentical(reference.branchProfile,
                                result.perConfig[c].branchProfile);
        EXPECT_EQ(result.perConfig[c].branchProfile
                      .totalMispredictions(),
                  result.perConfig[c].mispredicts);
    }
}

TEST(BranchProfileIntegration, SuiteMergeTagsPcsByBenchmark)
{
    DriverOptions options;
    options.profileBranches = true;
    // Room for every benchmark's statics so the per-PC re-keying
    // below is exhaustive (no eviction in the merged profile).
    options.branchProfile.capacity = 1u << 16;
    SuiteRunner runner(BenchmarkSuite::ibsSmall(10'000));
    const SuiteRunResult result = runner.run(
        testPredictor(), testEstimators(), options, RunPolicy{});

    ASSERT_TRUE(result.branchProfile.enabled());
    std::uint64_t exec_sum = 0;
    std::uint64_t mis_sum = 0;
    for (std::size_t bench = 0; bench < result.perBenchmark.size();
         ++bench) {
        const BenchmarkRunResult &br = result.perBenchmark[bench];
        ASSERT_FALSE(br.failed()) << br.name;
        ASSERT_TRUE(br.branchProfile.enabled()) << br.name;
        EXPECT_EQ(br.branchProfile.totalExecutions(), br.branches);
        EXPECT_EQ(br.branchProfile.totalMispredictions(),
                  br.mispredicts);
        exec_sum += br.branches;
        mis_sum += br.mispredicts;

        // Every per-benchmark PC reappears in the merged profile
        // re-keyed under this benchmark's tag.
        const std::uint64_t tag = static_cast<std::uint64_t>(bench)
                                  << 48;
        for (const auto &[pc, entry] :
             br.branchProfile.entries()) {
            const auto it =
                result.branchProfile.entries().find(tag | pc);
            ASSERT_NE(it, result.branchProfile.entries().end())
                << br.name << " pc " << pc;
            EXPECT_EQ(entry.executions, it->second.executions);
            EXPECT_EQ(entry.mispredictions,
                      it->second.mispredictions);
        }
    }
    // Merged totals are the exact suite sums.
    EXPECT_EQ(result.branchProfile.totalExecutions(), exec_sum);
    EXPECT_EQ(result.branchProfile.totalMispredictions(), mis_sum);
}

} // namespace
} // namespace confsim
