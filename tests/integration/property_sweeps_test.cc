/** @file
 * Parameterized property sweeps: invariants that must hold for every
 * estimator configuration (bucket ranges, mass conservation, replay
 * determinism), plus golden regression values pinning the simulator's
 * exact behaviour for fixed seeds.
 */

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "confidence/self_counter.h"
#include "confidence/two_level.h"
#include "predictor/gshare.h"
#include "sim/driver.h"
#include "workload/workload_generator.h"

namespace confsim {
namespace {

BenchmarkProfile
sweepProfile()
{
    BenchmarkProfile p;
    p.name = "sweep";
    p.targetBlocks = 200;
    p.seed = 77;
    p.mix = BehaviorMix{0.35, 0.12, 0.03, 0.33, 0.02, 0.10};
    return p;
}

/** Build one of several estimator shapes by index. */
std::unique_ptr<ConfidenceEstimator>
makeEstimator(int kind, IndexScheme scheme, std::size_t entries,
              CtInit init)
{
    switch (kind) {
      case 0:
        return std::make_unique<OneLevelCirConfidence>(
            scheme, entries, 12, CirReduction::RawPattern, init);
      case 1:
        return std::make_unique<OneLevelCirConfidence>(
            scheme, entries, 12, CirReduction::OnesCount, init);
      case 2:
        return std::make_unique<OneLevelCounterConfidence>(
            scheme, entries, CounterKind::Resetting, 16, 0);
      case 3:
        return std::make_unique<OneLevelCounterConfidence>(
            scheme, entries, CounterKind::Saturating, 16, 0);
      case 4:
        return std::make_unique<TwoLevelConfidence>(
            scheme, entries, 10, SecondLevelIndex::Cir, 10,
            CirReduction::RawPattern, init);
      case 5:
        return std::make_unique<SelfCounterConfidence>(scheme,
                                                       entries, 3);
    }
    return nullptr;
}

using SweepParam = std::tuple<int, IndexScheme, std::size_t, CtInit>;

class EstimatorSweep : public ::testing::TestWithParam<SweepParam>
{};

TEST_P(EstimatorSweep, InvariantsHoldOverARealWorkload)
{
    const auto [kind, scheme, entries, init] = GetParam();
    auto estimator = makeEstimator(kind, scheme, entries, init);
    ASSERT_NE(estimator, nullptr);

    const std::uint64_t branches = 20000;
    WorkloadGenerator gen(sweepProfile(), branches);
    GsharePredictor pred(4096, 12);
    SimulationDriver driver(pred, {estimator.get()});
    const auto result = driver.run(gen);

    // Mass conservation: every prediction lands in exactly one bucket.
    const BucketStats &stats = result.estimatorStats[0];
    EXPECT_DOUBLE_EQ(stats.totalRefs(),
                     static_cast<double>(result.branches));
    EXPECT_DOUBLE_EQ(stats.totalMispredicts(),
                     static_cast<double>(result.mispredicts));
    EXPECT_EQ(result.branches, branches);

    // Bucket-range safety: every bucket the estimator can now emit is
    // inside its declared space (probe with fresh contexts).
    WorkloadGenerator probe(sweepProfile(), 2000);
    BranchRecord record;
    BranchContext ctx;
    while (probe.next(record)) {
        ctx.pc = record.pc;
        ctx.bhr = record.pc >> 3; // arbitrary history probe
        ctx.gcir = record.pc >> 5;
        ASSERT_LT(estimator->bucketOf(ctx), estimator->numBuckets());
    }

    // Replay determinism: a fresh identical run produces identical
    // bucket statistics.
    auto estimator2 = makeEstimator(kind, scheme, entries, init);
    WorkloadGenerator gen2(sweepProfile(), branches);
    GsharePredictor pred2(4096, 12);
    SimulationDriver driver2(pred2, {estimator2.get()});
    const auto result2 = driver2.run(gen2);
    for (std::uint64_t b = 0; b < stats.numBuckets(); ++b) {
        ASSERT_DOUBLE_EQ(stats[b].refs,
                         result2.estimatorStats[0][b].refs);
        ASSERT_DOUBLE_EQ(stats[b].mispredicts,
                         result2.estimatorStats[0][b].mispredicts);
    }

    // reset() restores power-on behaviour: the first-query bucket
    // matches a freshly constructed estimator's.
    estimator->reset();
    auto fresh = makeEstimator(kind, scheme, entries, init);
    ctx.pc = 0x123400;
    ctx.bhr = 0x1A2B;
    ctx.gcir = 0x3C4D;
    EXPECT_EQ(estimator->bucketOf(ctx), fresh->bucketOf(ctx));

    // Storage accounting is positive and stable.
    EXPECT_GT(estimator->storageBits(), 0u);
    EXPECT_EQ(estimator->storageBits(), fresh->storageBits());
    EXPECT_FALSE(estimator->name().empty());
}

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    const int kind = std::get<0>(info.param);
    const IndexScheme scheme = std::get<1>(info.param);
    const std::size_t entries = std::get<2>(info.param);
    const CtInit init = std::get<3>(info.param);
    const char *kinds[] = {"rawcir", "onescnt", "reset",
                           "sat",    "twolvl",  "selfcnt"};
    return std::string(kinds[kind]) + "_" + toString(scheme) + "_" +
           std::to_string(entries) + "_" + toString(init);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EstimatorSweep,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 3, 4, 5),
        ::testing::Values(IndexScheme::Pc, IndexScheme::PcXorBhr,
                          IndexScheme::PcConcatBhr),
        ::testing::Values(std::size_t{256}, std::size_t{4096}),
        ::testing::Values(CtInit::Ones, CtInit::Zeros)),
    sweepName);

TEST(GoldenRegression, FixedSeedSimulationIsPinned)
{
    // Golden values pin the exact end-to-end behaviour (workload
    // generation + gshare + resetting-counter confidence) for a fixed
    // configuration. Any change to the RNG, the CFG builder, the
    // behaviour models, the predictor, or the driver ordering will
    // move these numbers — which is exactly the point: such changes
    // must be deliberate, and EXPERIMENTS.md must be regenerated.
    BenchmarkProfile profile;
    profile.name = "golden";
    profile.targetBlocks = 300;
    profile.seed = 12345;
    profile.mix = BehaviorMix{0.40, 0.10, 0.02, 0.33, 0.05, 0.10};

    WorkloadGenerator gen(profile, 100000);
    GsharePredictor pred(4096, 12);
    OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 4096,
                                  CounterKind::Resetting, 16, 0);
    SimulationDriver driver(pred, {&est});
    const auto result = driver.run(gen);

    // Structure of the generated program.
    constexpr std::uint64_t kGoldenMispredicts = 8802;
    constexpr double kGoldenZeroBucketRefs = 40725.0;
    EXPECT_EQ(gen.cfg().numBlocks(), 329u);
    // Exact simulation outcome.
    EXPECT_EQ(result.branches, 100000u);
    const std::uint64_t mispredicts = result.mispredicts;
    const double zero_bucket_refs = result.estimatorStats[0][16].refs;
    // First run establishes the values below; they are asserted
    // exactly so CI catches accidental nondeterminism.
    RecordProperty("mispredicts", std::to_string(mispredicts));
    RecordProperty("zero_bucket_refs",
                   std::to_string(zero_bucket_refs));
    EXPECT_EQ(mispredicts, kGoldenMispredicts);
    EXPECT_DOUBLE_EQ(zero_bucket_refs, kGoldenZeroBucketRefs);
}

} // namespace
} // namespace confsim
