/**
 * @file
 * Integration test for execution-span tracing across the pipelined
 * sweep: an 8-configuration decode-ahead sweep with checkpointing must
 * emit correctly nested producer/shard/barrier spans on correctly
 * named threads, and the exported Chrome trace file must be balanced.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint_store.h"
#include "confidence/one_level.h"
#include "confidence/two_level.h"
#include "obs/span.h"
#include "predictor/gshare.h"
#include "sim/sweep_engine.h"
#include "workload/suite.h"

namespace confsim {
namespace {

PredictorFactory
testPredictor()
{
    return [] { return std::make_unique<GsharePredictor>(4096, 12); };
}

/** Eight small sweep configurations (the acceptance scenario). */
std::vector<SweepConfiguration>
eightConfigs()
{
    auto one = [](std::unique_ptr<ConfidenceEstimator> estimator) {
        std::vector<std::unique_ptr<ConfidenceEstimator>> out;
        out.push_back(std::move(estimator));
        return out;
    };
    std::vector<SweepConfiguration> configs;
    for (int i = 0; i < 4; ++i) {
        configs.push_back(
            {"resetting_" + std::to_string(i), testPredictor(),
             [one, i] {
                 return one(
                     std::make_unique<OneLevelCounterConfidence>(
                         IndexScheme::PcXorBhr, 256u << i,
                         CounterKind::Resetting, 16, 0));
             }});
        configs.push_back(
            {"two_level_" + std::to_string(i), testPredictor(),
             [one, i] {
                 return one(std::make_unique<TwoLevelConfidence>(
                     IndexScheme::Pc, 256u << i, 8,
                     SecondLevelIndex::CirXorPc, 8));
             }});
    }
    return configs;
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST(SpanTraceIntegration, PipelinedSweepEmitsNestedNamedSpans)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        "span_trace_integration";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string trace_path = (dir / "trace.json").string();

    SpanTracerOptions span_options;
    span_options.path = trace_path;
    SpanTracer tracer(span_options);

    DriverOptions options;
    options.spans = &tracer;
    SweepOptions sweep;
    sweep.threads = 2;
    sweep.decodeAhead = 3;

    CheckpointStore store(dir.string(), "span-trace", 2);
    store.setSpanTracer(&tracer);
    SweepRunResult result;
    {
        SweepEngine engine(eightConfigs(), options, sweep);
        engine.checkpointEvery(15'000, &store);
        auto source = BenchmarkSuite::ibsSmall(60'000).makeGenerator(0);
        result = engine.run(*source);
    }

    ASSERT_EQ(result.perConfig.size(), 8u);
    ASSERT_GT(result.checkpointsWritten, 0u);

    // Pipeline-occupancy accounting derived from the same run.
    EXPECT_GT(result.shardBusyFrac, 0.0);
    EXPECT_LE(result.shardBusyFrac, 1.0 + 1e-9);
    EXPECT_GE(result.barrierWaitMs, 0.0);

    const auto events = tracer.snapshotEvents();
    ASSERT_FALSE(events.empty());

    // Per-thread LIFO nesting: within each tid the begin/end stream
    // must nest like matched parentheses with monotonic timestamps
    // (the ring is far larger than this run, so nothing was dropped).
    std::map<int, std::vector<std::string>> stacks;
    std::map<int, std::uint64_t> last_ts;
    std::set<std::string> names;
    std::map<std::string, std::string> thread_of_span;
    for (const auto &event : events) {
        auto ts_it = last_ts.find(event.tid);
        if (ts_it != last_ts.end())
            EXPECT_GE(event.tsNs, ts_it->second)
                << "timestamps regress on tid " << event.tid;
        last_ts[event.tid] = event.tsNs;
        names.insert(event.name);
        if (event.phase == 'B') {
            stacks[event.tid].push_back(event.name);
            thread_of_span[event.name] = event.threadName;
        } else if (event.phase == 'E') {
            auto &stack = stacks[event.tid];
            ASSERT_FALSE(stack.empty())
                << "unmatched end of '" << event.name << "' on tid "
                << event.tid;
            EXPECT_EQ(stack.back(), event.name)
                << "spans must close LIFO on tid " << event.tid;
            stack.pop_back();
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty())
            << stack.size() << " spans left open on tid " << tid;

    // The instrumented pipeline stages all fired...
    EXPECT_TRUE(names.count("decode.refill"));
    EXPECT_TRUE(names.count("decode.barrier_wait"));
    EXPECT_TRUE(names.count("shard.replay"));
    EXPECT_TRUE(names.count("ckpt.write"));
    EXPECT_TRUE(names.count("ckpt.store_write"));
    EXPECT_TRUE(names.count("decode_ring.filled"));
    EXPECT_TRUE(names.count("sweep.pool_occupancy"));
    // ...on the threads they belong to.
    EXPECT_EQ(thread_of_span["decode.refill"], "decode-producer");
    EXPECT_EQ(thread_of_span["decode.barrier_wait"],
              "decode-producer");
    EXPECT_EQ(thread_of_span["shard.replay"], "sweep-worker");

    const auto summary = tracer.finish();
    EXPECT_EQ(summary.dropped, 0u);
    EXPECT_GE(summary.threads, 3u); // consumer + producer + workers

    // The exported file is Chrome/Perfetto trace-event JSON with
    // process/thread metadata and balanced duration events.
    const std::string json = readWholeFile(trace_path);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"decode-producer\""), std::string::npos);
    EXPECT_NE(json.find("\"sweep-worker\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""),
              countOccurrences(json, "\"ph\":\"E\""));

    std::filesystem::remove_all(dir);
}

TEST(SpanTraceIntegration, TracingNeverChangesSweepResults)
{
    // Differential: the same pipelined sweep with and without a span
    // tracer attached must be bit-exact (the null-facade contract,
    // end to end).
    const auto run = [](SpanTracer *tracer) {
        DriverOptions options;
        options.spans = tracer;
        SweepOptions sweep;
        sweep.threads = 2;
        sweep.decodeAhead = 3;
        SweepEngine engine(eightConfigs(), options, sweep);
        auto source = BenchmarkSuite::ibsSmall(30'000).makeGenerator(0);
        return engine.run(*source);
    };

    const SweepRunResult plain = run(nullptr);
    SpanTracerOptions span_options;
    span_options.path =
        ::testing::TempDir() + "/confsim_span_differential.json";
    SweepRunResult traced;
    {
        SpanTracer tracer(span_options);
        traced = run(&tracer);
    }

    ASSERT_EQ(plain.perConfig.size(), traced.perConfig.size());
    for (std::size_t c = 0; c < plain.perConfig.size(); ++c) {
        SCOPED_TRACE("config " + std::to_string(c));
        EXPECT_EQ(plain.perConfig[c].branches,
                  traced.perConfig[c].branches);
        EXPECT_EQ(plain.perConfig[c].mispredicts,
                  traced.perConfig[c].mispredicts);
        const auto &eb = plain.perConfig[c].estimatorStats;
        const auto &ab = traced.perConfig[c].estimatorStats;
        ASSERT_EQ(eb.size(), ab.size());
        for (std::size_t e = 0; e < eb.size(); ++e) {
            ASSERT_EQ(eb[e].numBuckets(), ab[e].numBuckets());
            for (std::uint64_t b = 0; b < eb[e].numBuckets(); ++b) {
                EXPECT_EQ(eb[e][b].refs, ab[e][b].refs);
                EXPECT_EQ(eb[e][b].mispredicts, ab[e][b].mispredicts);
            }
        }
    }
    std::remove(span_options.path.c_str());
}

} // namespace
} // namespace confsim
