/**
 * @file
 * Chaos-hardening suite for the sweep pipeline.
 *
 * Every test here runs a sweep under an injected FaultPlan
 * (fault/fault_plan.h) and checks the three invariants the robustness
 * design promises:
 *
 *  1. Survivors are bit-exact: a fault in one configuration (or one
 *     checkpoint write) never perturbs any other configuration's
 *     results — they match independent sequential SimulationDriver
 *     runs without tolerance.
 *  2. Fault accounting is exact: every installed rule that could fire
 *     did fire exactly once, at the scope/key/occurrence it named, and
 *     nothing else was injected.
 *  3. Checkpoints stay crash-safe: an injected write failure loses
 *     freshness, never resumability — every generation on disk resumes
 *     bit-exactly.
 *
 * The seeded schedule test runs 20 randomized fault plans over the
 * pipelined engine; the deterministic tests pin each fault site,
 * cancellation path, retry interaction, and the suite deadline budget
 * individually. Benchmarks are scheduled serially (benchParallel=1)
 * wherever a plan must fire in a known scope — the one-shot rule
 * semantics documented in fault_plan.h.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "ckpt/checkpoint_store.h"
#include "confidence/one_level.h"
#include "confidence/self_counter.h"
#include "fault/fault_plan.h"
#include "obs/telemetry.h"
#include "predictor/gshare.h"
#include "sim/driver.h"
#include "sim/run_policy.h"
#include "sim/suite_runner.h"
#include "sim/sweep_engine.h"
#include "util/cancellation.h"
#include "util/error.h"
#include "workload/suite.h"

namespace confsim {
namespace {

constexpr std::uint64_t kBranches = 20'000;

PredictorFactory
testPredictor()
{
    return [] { return std::make_unique<GsharePredictor>(4096, 12); };
}

/** One estimator family: a label plus a single-estimator factory. */
struct Family
{
    std::string label;
    EstimatorSetFactory make;
};

/** Four cheap, structurally distinct families for chaos runs. */
std::vector<Family>
chaosFamilies()
{
    auto one = [](std::unique_ptr<ConfidenceEstimator> estimator) {
        std::vector<std::unique_ptr<ConfidenceEstimator>> out;
        out.push_back(std::move(estimator));
        return out;
    };
    std::vector<Family> families;
    families.push_back(
        {"one_level_raw_pc", [one] {
             return one(std::make_unique<OneLevelCirConfidence>(
                 IndexScheme::Pc, 1024, 8, CirReduction::RawPattern,
                 CtInit::Ones));
         }});
    families.push_back(
        {"counter_saturating", [one] {
             return one(std::make_unique<OneLevelCounterConfidence>(
                 IndexScheme::PcXorBhr, 1024,
                 CounterKind::Saturating, 16, 0));
         }});
    families.push_back(
        {"counter_resetting", [one] {
             return one(std::make_unique<OneLevelCounterConfidence>(
                 IndexScheme::PcXorBhr, 1024, CounterKind::Resetting,
                 16, 0));
         }});
    families.push_back(
        {"self_counter", [one] {
             return one(std::make_unique<SelfCounterConfidence>(
                 IndexScheme::Pc, 1024, 3));
         }});
    return families;
}

std::vector<SweepConfiguration>
familyConfigs(const std::vector<Family> &families)
{
    std::vector<SweepConfiguration> configs;
    configs.reserve(families.size());
    for (const auto &family : families)
        configs.push_back(
            {family.label, testPredictor(), family.make});
    return configs;
}

/** Fresh deterministic source: benchmark 0 of the reduced suite. */
std::unique_ptr<TraceSource>
freshSource(std::uint64_t branches = kBranches)
{
    return BenchmarkSuite::ibsSmall(branches).makeGenerator(0);
}

/** Independent sequential reference for one family. */
DriverResult
runSequential(const Family &family, DriverOptions options = {},
              std::uint64_t branches = kBranches)
{
    auto predictor = testPredictor()();
    auto owned = family.make();
    std::vector<ConfidenceEstimator *> raw;
    raw.reserve(owned.size());
    for (auto &estimator : owned)
        raw.push_back(estimator.get());
    SimulationDriver driver(*predictor, raw, options);
    auto source = freshSource(branches);
    return driver.run(*source);
}

/** Bit-exact comparison of one surviving config vs its reference. */
void
expectConfigMatches(const DriverResult &sequential,
                    const SweepConfigResult &sweep,
                    const std::string &context)
{
    SCOPED_TRACE(context);
    EXPECT_FALSE(sweep.failed()) << sweep.error;
    EXPECT_EQ(sequential.branches, sweep.branches);
    EXPECT_EQ(sequential.mispredicts, sweep.mispredicts);
    EXPECT_EQ(sequential.contextSwitches, sweep.contextSwitches);
    ASSERT_EQ(sequential.estimatorStats.size(),
              sweep.estimatorStats.size());
    for (std::size_t e = 0; e < sequential.estimatorStats.size();
         ++e) {
        const BucketStats &expected = sequential.estimatorStats[e];
        const BucketStats &actual = sweep.estimatorStats[e];
        ASSERT_EQ(expected.numBuckets(), actual.numBuckets());
        for (std::uint64_t b = 0; b < expected.numBuckets(); ++b) {
            EXPECT_EQ(expected[b].refs, actual[b].refs)
                << "bucket " << b;
            EXPECT_EQ(expected[b].mispredicts, actual[b].mispredicts)
                << "bucket " << b;
        }
    }
}

/** A scratch checkpoint directory, wiped before use. */
std::filesystem::path
scratchDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Deterministic per-seed random stream (splitmix64). */
std::uint64_t
nextRand(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

TEST(ChaosSweep, ShardFaultIsolatesSingleConfig)
{
    const std::vector<Family> families = chaosFamilies();
    Telemetry telemetry{TelemetryOptions{}};
    DriverOptions options;
    options.telemetry = &telemetry;

    SweepOptions sweep;
    sweep.threads = 2;
    sweep.isolateConfigFailures = true;

    ScopedFaultPlan scoped("shard:cfg=1,batch=2:throw");
    SweepEngine engine(familyConfigs(families), options, sweep);
    auto source = freshSource();
    const SweepRunResult result = engine.run(*source);

    ASSERT_EQ(result.perConfig.size(), families.size());
    EXPECT_TRUE(result.perConfig[1].failed());
    EXPECT_NE(result.perConfig[1].error.find("injected fault"),
              std::string::npos);
    for (const std::size_t c : {std::size_t{0}, std::size_t{2},
                                std::size_t{3}}) {
        expectConfigMatches(runSequential(families[c], DriverOptions{}),
                            result.perConfig[c],
                            families[c].label + " survivor");
    }
    EXPECT_EQ(FaultInjector::instance().injectedCount(), 1u);
    EXPECT_EQ(telemetry.registry().counter("sweep.config_failed"), 1u);
}

TEST(ChaosSweep, ShardFaultWithoutIsolationFailsRun)
{
    const std::vector<Family> families = chaosFamilies();
    SweepOptions sweep;
    sweep.threads = 1;
    sweep.isolateConfigFailures = false;

    ScopedFaultPlan scoped("shard:cfg=0,batch=1:crash");
    SweepEngine engine(familyConfigs(families), DriverOptions{},
                       sweep);
    auto source = freshSource();
    try {
        engine.run(*source);
        FAIL() << "expected the injected crash to fail the pass";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kInternal);
        EXPECT_NE(std::string(e.what()).find("simulated crash"),
                  std::string::npos);
    }
}

TEST(ChaosSweep, CheckpointWriteFaultDegradesFreshnessNotResults)
{
    const std::filesystem::path dir =
        scratchDir("chaos_ckpt_enospc");
    const std::vector<Family> families = {chaosFamilies()[0],
                                          chaosFamilies()[2]};
    Telemetry telemetry{TelemetryOptions{}};
    DriverOptions options;
    options.telemetry = &telemetry;

    SweepOptions sweep;
    sweep.threads = 2;

    CheckpointStore store(dir.string(), "chaos", 8);
    ScopedFaultPlan scoped("ckpt:write=2:enospc");
    SweepEngine engine(familyConfigs(families), options, sweep);
    engine.checkpointEvery(4'000, &store);
    auto source = freshSource();
    const SweepRunResult result = engine.run(*source);

    // The second write attempt hit ENOSPC; the sweep shrugged it off.
    EXPECT_EQ(FaultInjector::instance().injectedCount(), 1u);
    EXPECT_EQ(telemetry.registry().counter("ckpt.write_failed"), 1u);
    ASSERT_GT(result.checkpointsWritten, 0u);
    // Successful writes and on-disk generations agree exactly — the
    // failed attempt published nothing.
    EXPECT_EQ(result.checkpointsWritten, store.generations().size());

    // Results are unaffected by the lost checkpoint.
    for (std::size_t c = 0; c < families.size(); ++c) {
        expectConfigMatches(runSequential(families[c], DriverOptions{}),
                            result.perConfig[c], families[c].label);
    }

    // Every surviving generation resumes bit-exactly.
    for (const std::uint64_t gen : store.generations()) {
        const auto ckpt = store.load(gen);
        ASSERT_TRUE(ckpt.has_value()) << "generation " << gen;
        SweepEngine resumed_engine(familyConfigs(families),
                                   DriverOptions{}, sweep);
        auto resumed_source = freshSource();
        const SweepRunResult resumed =
            resumed_engine.resume(*resumed_source, *ckpt);
        for (std::size_t c = 0; c < families.size(); ++c) {
            expectConfigMatches(
                runSequential(families[c], DriverOptions{}),
                resumed.perConfig[c],
                families[c].label + " resumed from generation " +
                    std::to_string(gen));
        }
    }
}

TEST(ChaosSweep, DecodeFaultFailsPassButCheckpointsResume)
{
    const std::filesystem::path dir =
        scratchDir("chaos_decode_resume");
    const std::vector<Family> families = {chaosFamilies()[1],
                                          chaosFamilies()[3]};
    SweepOptions sweep;
    sweep.threads = 2;
    sweep.batchSize = 512;
    sweep.decodeAhead = 3;

    CheckpointStore store(dir.string(), "chaos", 4);
    {
        ScopedFaultPlan scoped("decode:batch=8:throw");
        SweepEngine engine(familyConfigs(families), DriverOptions{},
                           sweep);
        engine.checkpointEvery(200, &store);
        auto source = freshSource();
        try {
            engine.run(*source);
            FAIL() << "expected the injected decode fault to fail the "
                      "pass";
        } catch (const Error &e) {
            EXPECT_EQ(e.category(), ErrorCategory::kTrace);
            EXPECT_NE(std::string(e.what()).find("injected fault"),
                      std::string::npos);
        }
        EXPECT_EQ(FaultInjector::instance().injectedCount(), 1u);
    }

    // The crash-interrupted store still resumes bit-exactly.
    ASSERT_FALSE(store.generations().empty());
    const auto ckpt = store.loadLatestValid();
    ASSERT_TRUE(ckpt.has_value());
    SweepEngine resumed_engine(familyConfigs(families),
                               DriverOptions{}, sweep);
    auto resumed_source = freshSource();
    const SweepRunResult resumed =
        resumed_engine.resume(*resumed_source, *ckpt);
    for (std::size_t c = 0; c < families.size(); ++c) {
        expectConfigMatches(runSequential(families[c], DriverOptions{}),
                            resumed.perConfig[c], families[c].label);
    }
}

TEST(ChaosSweep, HangUnwindsViaWatchdog)
{
    const std::vector<Family> families = {chaosFamilies()[0],
                                          chaosFamilies()[1]};
    DriverOptions options;
    options.wallClockLimitMs = 300;
    SweepOptions sweep;
    sweep.threads = 1;

    ScopedFaultPlan scoped("shard:cfg=0,batch=2:hang");
    SweepEngine engine(familyConfigs(families), options, sweep);
    auto source = freshSource();
    const auto start = std::chrono::steady_clock::now();
    try {
        engine.run(*source);
        FAIL() << "expected the injected hang to hit the watchdog";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kTimeout);
    }
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    // Unwound at the watchdog deadline, not the 30 s parking cap.
    EXPECT_LT(elapsed.count(), 10'000);
}

TEST(ChaosSweep, ExternalCancellationUnwindsSweep)
{
    const std::vector<Family> families = {chaosFamilies()[0],
                                          chaosFamilies()[2]};
    CancellationToken token;
    token.cancel();
    DriverOptions options;
    options.cancel = &token;
    SweepOptions sweep;
    sweep.threads = 2;
    sweep.decodeAhead = 3;

    SweepEngine engine(familyConfigs(families), options, sweep);
    auto source = freshSource();
    try {
        engine.run(*source);
        FAIL() << "expected cancellation to unwind the pass";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kCancelled);
        EXPECT_FALSE(e.retryable());
    }
}

TEST(ChaosSweep, SeededChaosSchedulesSurvivorsBitExact)
{
    const std::vector<Family> families = chaosFamilies();
    // References computed once; every seed's survivors must hit them.
    std::vector<DriverResult> references;
    references.reserve(families.size());
    for (const auto &family : families)
        references.push_back(runSequential(family));

    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        std::uint64_t rng = seed * 0x9e3779b97f4a7c15ULL + 1;

        // Randomized schedule: 1-2 shard faults on distinct configs
        // within the first twelve batches (every config replays at
        // least 20, so they always fire — some seeds checkpoint
        // before the fault lands, some fail first), plus — on even
        // seeds — an ENOSPC on the first checkpoint write.
        const std::size_t first_cfg = nextRand(rng) % families.size();
        const std::size_t num_shard = 1 + (nextRand(rng) % 2);
        const std::size_t second_cfg =
            (first_cfg + 1 + (nextRand(rng) % (families.size() - 1))) %
            families.size();
        std::vector<std::size_t> shard_cfgs = {first_cfg};
        if (num_shard == 2)
            shard_cfgs.push_back(second_cfg);
        std::string spec;
        for (const std::size_t cfg : shard_cfgs) {
            if (!spec.empty())
                spec += ';';
            spec += "shard:cfg=" + std::to_string(cfg) +
                    ",batch=" + std::to_string(1 + nextRand(rng) % 12) +
                    ((nextRand(rng) % 2) == 0 ? ":throw" : ":crash");
        }
        const bool with_ckpt_fault = seed % 2 == 0;
        if (with_ckpt_fault)
            spec += ";ckpt:write=1:enospc";

        SweepOptions sweep;
        sweep.isolateConfigFailures = true;
        sweep.threads = 1u << (nextRand(rng) % 3); // 1, 2, or 4
        sweep.decodeAhead = 1 + nextRand(rng) % 3;
        sweep.batchSize =
            std::vector<std::size_t>{256, 512, 1000}[nextRand(rng) %
                                                     3];

        const std::filesystem::path dir = scratchDir(
            "chaos_seed_" + std::to_string(seed));
        // keepGenerations exceeds the worst-case write count so the
        // generations-on-disk == successful-writes assertion below
        // never trips over pruning.
        CheckpointStore store(dir.string(), "chaos", 16);

        SweepRunResult result;
        std::vector<FaultHit> hits;
        {
            ScopedFaultPlan scoped(spec);
            SweepEngine engine(familyConfigs(families),
                               DriverOptions{}, sweep);
            engine.checkpointEvery(2'000, &store);
            auto source = freshSource();
            result = engine.run(*source);
            hits = FaultInjector::instance().hits();
        }

        // Exact accounting: every shard rule fired once on its target
        // config; the checkpoint rule fired iff a write was attempted.
        std::size_t shard_hits = 0;
        bool ckpt_hit = false;
        for (const FaultHit &hit : hits) {
            if (hit.site == FaultSite::kShardReplay) {
                ++shard_hits;
                EXPECT_TRUE(hit.key == first_cfg ||
                            hit.key == second_cfg)
                    << "unexpected shard key " << hit.key;
            } else {
                ASSERT_EQ(hit.site, FaultSite::kCheckpointWrite);
                ckpt_hit = true;
            }
        }
        EXPECT_EQ(shard_hits, shard_cfgs.size());
        EXPECT_EQ(hits.size(),
                  shard_cfgs.size() + (ckpt_hit ? 1u : 0u));
        if (!with_ckpt_fault) {
            EXPECT_FALSE(ckpt_hit);
        }
        if (with_ckpt_fault && !ckpt_hit) {
            // The schedule failed every due config before the first
            // write became due — then no write may have happened.
            EXPECT_EQ(result.checkpointsWritten, 0u);
        }
        // Published generations are exactly the successful writes.
        EXPECT_EQ(result.checkpointsWritten,
                  store.generations().size());

        // Exactly the targeted configs failed; survivors bit-exact.
        for (std::size_t c = 0; c < families.size(); ++c) {
            const bool targeted =
                std::find(shard_cfgs.begin(), shard_cfgs.end(), c) !=
                shard_cfgs.end();
            if (targeted) {
                EXPECT_TRUE(result.perConfig[c].failed())
                    << families[c].label;
                EXPECT_NE(result.perConfig[c].error.find(
                              "injected fault"),
                          std::string::npos);
            } else {
                expectConfigMatches(references[c],
                                    result.perConfig[c],
                                    families[c].label);
            }
        }

        // Every published generation snapshots a fully healthy pass:
        // resuming the newest one (fault plan cleared) completes all
        // configurations bit-exactly.
        if (!store.generations().empty()) {
            const auto ckpt = store.loadLatestValid();
            ASSERT_TRUE(ckpt.has_value());
            SweepEngine resumed_engine(familyConfigs(families),
                                       DriverOptions{}, sweep);
            auto resumed_source = freshSource();
            const SweepRunResult resumed =
                resumed_engine.resume(*resumed_source, *ckpt);
            for (std::size_t c = 0; c < families.size(); ++c) {
                expectConfigMatches(references[c],
                                    resumed.perConfig[c],
                                    families[c].label + " resumed");
            }
        }
    }
}

/** Serial, deterministic sweep knobs for suite-level chaos tests. */
SweepOptions
serialSweep()
{
    SweepOptions sweep;
    sweep.threads = 1;
    sweep.decodeAhead = 1;
    sweep.benchParallel = 1;
    return sweep;
}

TEST(ChaosSuite, ContinueOnErrorDegradesOnlyFaultedConfig)
{
    const std::vector<Family> families = {chaosFamilies()[0],
                                          chaosFamilies()[2]};
    SuiteRunner runner(BenchmarkSuite::ibsSmall(8'000));

    const SweepSuiteResult reference =
        runner.runSweep(familyConfigs(families), DriverOptions{},
                        serialSweep(), RunPolicy::continueOnError());
    ASSERT_FALSE(reference.degraded());

    // The one-shot rule fires in the first scheduled benchmark
    // (suite order, benchParallel=1): config 1's first batch.
    ScopedFaultPlan scoped("shard:cfg=1,batch=1:throw");
    const SweepSuiteResult result =
        runner.runSweep(familyConfigs(families), DriverOptions{},
                        serialSweep(), RunPolicy::continueOnError());

    ASSERT_EQ(result.perConfig.size(), 2u);
    EXPECT_FALSE(result.perConfig[0].degraded);
    EXPECT_TRUE(result.perConfig[1].degraded);
    EXPECT_TRUE(result.degraded());

    const auto &faulted = result.perConfig[1].perBenchmark;
    ASSERT_EQ(faulted.size(), 3u);
    EXPECT_TRUE(faulted[0].failed());
    EXPECT_NE(faulted[0].error.find("injected fault"),
              std::string::npos);
    EXPECT_FALSE(faulted[1].failed());
    EXPECT_FALSE(faulted[2].failed());

    // Bit-exactness: the healthy config everywhere, and the faulted
    // config's untouched benchmarks, match the fault-free run.
    for (std::size_t c = 0; c < 2; ++c) {
        for (std::size_t b = 0; b < 3; ++b) {
            if (c == 1 && b == 0)
                continue;
            SCOPED_TRACE("config " + std::to_string(c) +
                         " benchmark " + std::to_string(b));
            const BenchmarkRunResult &expected =
                reference.perConfig[c].perBenchmark[b];
            const BenchmarkRunResult &actual =
                result.perConfig[c].perBenchmark[b];
            EXPECT_EQ(expected.branches, actual.branches);
            EXPECT_EQ(expected.mispredicts, actual.mispredicts);
            ASSERT_EQ(expected.estimatorStats.size(),
                      actual.estimatorStats.size());
            for (std::size_t e = 0;
                 e < expected.estimatorStats.size(); ++e) {
                const BucketStats &es = expected.estimatorStats[e];
                const BucketStats &as = actual.estimatorStats[e];
                ASSERT_EQ(es.numBuckets(), as.numBuckets());
                for (std::uint64_t bucket = 0;
                     bucket < es.numBuckets(); ++bucket) {
                    EXPECT_EQ(es[bucket].refs, as[bucket].refs);
                    EXPECT_EQ(es[bucket].mispredicts,
                              as[bucket].mispredicts);
                }
            }
        }
    }

    // The healthy config's composites are NOT degraded — only the
    // faulted config composites over a survivor subset.
    EXPECT_EQ(reference.perConfig[0].compositeMispredictRate,
              result.perConfig[0].compositeMispredictRate);
}

TEST(ChaosSuite, FailFastSurfacesInjectedFault)
{
    const std::vector<Family> families = {chaosFamilies()[1]};
    SuiteRunner runner(BenchmarkSuite::ibsSmall(8'000));

    ScopedFaultPlan scoped("shard:cfg=0,batch=1:crash");
    try {
        runner.runSweep(familyConfigs(families), DriverOptions{},
                        serialSweep(), RunPolicy::failFast());
        FAIL() << "expected fail-fast to throw on the injected crash";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kInternal);
        const std::string what = e.what();
        EXPECT_NE(what.find("failed"), std::string::npos);
        EXPECT_NE(what.find("injected fault"), std::string::npos);
    }
}

TEST(ChaosSuite, RetryRecoversOneShotTransientFault)
{
    const std::vector<Family> families = {chaosFamilies()[0],
                                          chaosFamilies()[3]};
    SuiteRunner runner(BenchmarkSuite::ibsSmall(8'000));
    Telemetry telemetry{TelemetryOptions{}};
    DriverOptions options;
    options.telemetry = &telemetry;

    const SweepSuiteResult reference =
        runner.runSweep(familyConfigs(families), DriverOptions{},
                        serialSweep(), RunPolicy::continueOnError());

    // One-shot decode fault + one retry = a transient failure the
    // policy absorbs: attempt 1 throws kTrace, attempt 2 runs clean.
    RunPolicy policy = RunPolicy::failFast();
    policy.maxAttempts = 2;
    policy.retryBackoffMs = 1;

    ScopedFaultPlan scoped("decode:batch=1:throw");
    const SweepSuiteResult result = runner.runSweep(
        familyConfigs(families), options, serialSweep(), policy);

    EXPECT_EQ(telemetry.registry().counter("suite.retries"), 1u);
    EXPECT_FALSE(result.degraded());
    ASSERT_EQ(result.perConfig.size(), reference.perConfig.size());
    for (std::size_t c = 0; c < reference.perConfig.size(); ++c) {
        for (std::size_t b = 0;
             b < reference.perConfig[c].perBenchmark.size(); ++b) {
            SCOPED_TRACE("config " + std::to_string(c) +
                         " benchmark " + std::to_string(b));
            EXPECT_EQ(
                reference.perConfig[c].perBenchmark[b].mispredicts,
                result.perConfig[c].perBenchmark[b].mispredicts);
            EXPECT_EQ(reference.perConfig[c].perBenchmark[b].branches,
                      result.perConfig[c].perBenchmark[b].branches);
        }
    }
}

TEST(ChaosSuite, WatchdogTimeoutIsNeverRetried)
{
    const std::vector<Family> families = {chaosFamilies()[0]};
    // A trace far too long for the watchdog budget: every benchmark
    // times out; maxAttempts=3 must not re-run blown budgets.
    SuiteRunner runner(BenchmarkSuite::ibsSmall(50'000'000));
    Telemetry telemetry{TelemetryOptions{}};
    DriverOptions options;
    options.telemetry = &telemetry;

    RunPolicy policy = RunPolicy::continueOnError();
    policy.watchdogMs = 50;
    policy.maxAttempts = 3;

    const SweepSuiteResult result = runner.runSweep(
        familyConfigs(families), options, serialSweep(), policy);

    const auto &benches = result.perConfig[0].perBenchmark;
    ASSERT_EQ(benches.size(), 3u);
    for (const BenchmarkRunResult &bench : benches) {
        EXPECT_TRUE(bench.failed()) << bench.name;
        EXPECT_EQ(bench.errorCategory, ErrorCategory::kTimeout)
            << bench.name;
    }
    EXPECT_EQ(telemetry.registry().counter("suite.retries"), 0u);
    EXPECT_EQ(telemetry.registry().counter("suite.watchdog_timeouts"),
              3u);
}

TEST(ChaosSuite, DeadlineCancelsRemainingBenchmarks)
{
    const std::vector<Family> families = {chaosFamilies()[0]};
    SuiteRunner runner(BenchmarkSuite::ibsSmall(50'000'000));

    RunPolicy policy = RunPolicy::continueOnError();
    policy.deadlineMs = 30;

    const auto start = std::chrono::steady_clock::now();
    const SweepSuiteResult result = runner.runSweep(
        familyConfigs(families), DriverOptions{}, serialSweep(),
        policy);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);

    // The budget beats every benchmark: whichever was in flight hits
    // its clipped watchdog (kTimeout), the rest never start
    // (kCancelled) — and the suite returns quickly either way.
    const auto &benches = result.perConfig[0].perBenchmark;
    ASSERT_EQ(benches.size(), 3u);
    for (const BenchmarkRunResult &bench : benches) {
        EXPECT_TRUE(bench.failed()) << bench.name;
        EXPECT_TRUE(bench.errorCategory == ErrorCategory::kTimeout ||
                    bench.errorCategory == ErrorCategory::kCancelled)
            << bench.name << ": " << bench.error;
    }
    EXPECT_TRUE(benches.back().cancelled) << benches.back().error;
    EXPECT_TRUE(result.degraded());
    EXPECT_LT(elapsed.count(), 30'000);
}

TEST(ChaosSuite, PreCancelledTokenMarksEverythingCancelled)
{
    const std::vector<Family> families = {chaosFamilies()[2]};
    SuiteRunner runner(BenchmarkSuite::ibsSmall(8'000));
    CancellationToken token;
    token.cancel();

    // Continue-on-error: every benchmark is marked cancelled, nothing
    // simulates, the suite returns degraded.
    RunPolicy tolerant = RunPolicy::continueOnError();
    tolerant.cancel = &token;
    const SweepSuiteResult result = runner.runSweep(
        familyConfigs(families), DriverOptions{}, serialSweep(),
        tolerant);
    for (const BenchmarkRunResult &bench :
         result.perConfig[0].perBenchmark) {
        EXPECT_TRUE(bench.failed()) << bench.name;
        EXPECT_TRUE(bench.cancelled) << bench.name;
        EXPECT_EQ(bench.errorCategory, ErrorCategory::kCancelled);
    }
    EXPECT_TRUE(result.degraded());

    // Fail-fast: the run throws kCancelled (the fallback culprit when
    // every failure is a cancellation).
    RunPolicy strict = RunPolicy::failFast();
    strict.cancel = &token;
    try {
        runner.runSweep(familyConfigs(families), DriverOptions{},
                        serialSweep(), strict);
        FAIL() << "expected the pre-cancelled run to throw";
    } catch (const Error &e) {
        EXPECT_EQ(e.category(), ErrorCategory::kCancelled);
    }
}

} // namespace
} // namespace confsim
