/**
 * @file
 * End-to-end checkpoint/resume acceptance tests: a suite run is killed
 * mid-benchmark (via fault injection), then resumed from its on-disk
 * checkpoints, and the recovered results must be BIT-EXACT against an
 * uninterrupted reference run — for a gshare + one-level configuration
 * and for a hybrid + two-level one. Corrupting the newest generation
 * must be detected, reported through telemetry, and recovered by
 * falling back one generation; completed benchmarks must be reused
 * from their done-markers without any re-simulation.
 *
 * The checkpoint directory honours CONFSIM_CKPT_TEST_DIR (used by the
 * CI kill-resume job to upload the directory as an artifact when a
 * test fails); directories are kept on failure for that reason.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "confidence/two_level.h"
#include "obs/telemetry.h"
#include "predictor/bimodal.h"
#include "predictor/gshare.h"
#include "predictor/hybrid.h"
#include "sim/suite_runner.h"
#include "fault/fault_injection.h"

namespace confsim {
namespace {

PredictorFactory
gshareFactory()
{
    return [] { return std::make_unique<GsharePredictor>(4096, 12); };
}

EstimatorSetFactory
oneLevelFactory()
{
    return [] {
        std::vector<std::unique_ptr<ConfidenceEstimator>> out;
        out.push_back(std::make_unique<OneLevelCounterConfidence>(
            IndexScheme::PcXorBhr, 4096, CounterKind::Resetting, 16,
            0));
        return out;
    };
}

PredictorFactory
hybridFactory()
{
    return [] {
        return std::make_unique<HybridPredictor>(
            std::make_unique<GsharePredictor>(1024, 10),
            std::make_unique<BimodalPredictor>(1024), 1024);
    };
}

EstimatorSetFactory
twoLevelFactory()
{
    return [] {
        std::vector<std::unique_ptr<ConfidenceEstimator>> out;
        out.push_back(std::make_unique<TwoLevelConfidence>(
            IndexScheme::PcXorBhr, 1024, 6, SecondLevelIndex::Cir, 4));
        return out;
    };
}

class CheckpointResumeTest : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t kBranches = 50000;
    static constexpr std::uint64_t kEvery = 5000;
    static constexpr std::uint64_t kKillAfter = 30000; // records

    std::vector<std::string> names_ = {"jpeg", "groff"};
    BenchmarkSuite suite_ = BenchmarkSuite::ibsSubset(names_,
                                                      kBranches);
    std::string dir_;

    void
    SetUp() override
    {
        const char *base = std::getenv("CONFSIM_CKPT_TEST_DIR");
        dir_ = (base != nullptr && *base != '\0') ? std::string(base)
                                                  : ::testing::TempDir();
        dir_ += "/confsim_resume_";
        dir_ += ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name();
        std::filesystem::remove_all(dir_);
    }

    void
    TearDown() override
    {
        // Keep the directory when the test failed so CI can upload it.
        if (!HasFailure())
            std::filesystem::remove_all(dir_);
    }

    /**
     * Wrap every benchmark's generator in a FaultInjectingTraceSource.
     * ALL runs (reference, killed, resumed) use this wrapper so the
     * checkpointed "source" component always matches the live source
     * type; @p fail_after == 0 makes the wrapper transparent.
     */
    static SourceWrapper
    faultWrapper(std::uint64_t fail_after)
    {
        return [fail_after](std::size_t,
                            std::unique_ptr<TraceSource> inner)
                   -> std::unique_ptr<TraceSource> {
            FaultSpec spec;
            spec.failAfter = fail_after;
            return std::make_unique<FaultInjectingTraceSource>(
                std::move(inner), spec);
        };
    }

    RunPolicy
    checkpointed(bool resume,
                 ErrorMode mode = ErrorMode::kFailFast) const
    {
        RunPolicy policy;
        policy.errorMode = mode;
        policy.checkpoint.directory = dir_;
        policy.checkpoint.everyBranches = kEvery;
        policy.checkpoint.resume = resume;
        return policy;
    }

    /** Files in the checkpoint dir whose name starts with @p prefix. */
    std::vector<std::string>
    filesWithPrefix(const std::string &prefix) const
    {
        std::vector<std::string> out;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir_)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind(prefix, 0) == 0)
                out.push_back(entry.path().string());
        }
        std::sort(out.begin(), out.end());
        return out;
    }

    static void
    corruptFile(const std::string &path)
    {
        std::fstream file(path, std::ios::binary | std::ios::in |
                                    std::ios::out);
        ASSERT_TRUE(file);
        file.seekg(0, std::ios::end);
        const auto pos = static_cast<std::streamoff>(file.tellg()) / 2;
        file.seekg(pos);
        char byte = 0;
        file.get(byte);
        file.seekp(pos);
        file.put(static_cast<char>(byte ^ 0x08));
    }

    /**
     * The acceptance bar: every count identical, every double the
     * exact same bit pattern (EXPECT_EQ on doubles is exact equality).
     */
    static void
    expectBitExact(const SuiteRunResult &got, const SuiteRunResult &want)
    {
        ASSERT_EQ(got.perBenchmark.size(), want.perBenchmark.size());
        for (std::size_t i = 0; i < want.perBenchmark.size(); ++i) {
            const auto &g = got.perBenchmark[i];
            const auto &w = want.perBenchmark[i];
            SCOPED_TRACE(w.name);
            EXPECT_EQ(g.name, w.name);
            EXPECT_FALSE(g.failed()) << g.error;
            EXPECT_EQ(g.branches, w.branches);
            EXPECT_EQ(g.mispredicts, w.mispredicts);
            EXPECT_EQ(g.mispredictRate, w.mispredictRate);
            EXPECT_EQ(g.estimatorNames, w.estimatorNames);
            ASSERT_EQ(g.estimatorStats.size(), w.estimatorStats.size());
            for (std::size_t e = 0; e < w.estimatorStats.size(); ++e) {
                const auto &gs = g.estimatorStats[e];
                const auto &ws = w.estimatorStats[e];
                ASSERT_EQ(gs.numBuckets(), ws.numBuckets());
                for (std::uint64_t b = 0; b < ws.numBuckets(); ++b) {
                    EXPECT_EQ(gs[b].refs, ws[b].refs)
                        << "bucket " << b;
                    EXPECT_EQ(gs[b].mispredicts, ws[b].mispredicts)
                        << "bucket " << b;
                }
            }
        }
        EXPECT_EQ(got.compositeMispredictRate,
                  want.compositeMispredictRate);
        EXPECT_FALSE(got.degraded);
    }

    /** Kill mid-run, resume, and compare against the clean reference. */
    void
    runKillResume(const PredictorFactory &make_predictor,
                  const EstimatorSetFactory &make_estimators)
    {
        // Uninterrupted reference (no checkpointing at all).
        SuiteRunner reference_runner(suite_);
        reference_runner.setSourceWrapper(faultWrapper(0));
        const SuiteRunResult reference =
            reference_runner.run(make_predictor, make_estimators);

        // Killed run: every benchmark dies after kKillAfter records,
        // leaving rotating checkpoint generations behind.
        SuiteRunner killed_runner(suite_);
        killed_runner.setSourceWrapper(faultWrapper(kKillAfter));
        const SuiteRunResult killed = killed_runner.run(
            make_predictor, make_estimators, {},
            checkpointed(false, ErrorMode::kContinueOnError));
        EXPECT_EQ(killed.failedBenchmarks(), names_.size());
        for (const auto &name : names_)
            ASSERT_FALSE(filesWithPrefix(name + ".g").empty())
                << "killed run left no checkpoints for " << name;

        // Resumed run: picks up from the newest intact generation.
        SuiteRunner resumed_runner(suite_);
        resumed_runner.setSourceWrapper(faultWrapper(0));
        const SuiteRunResult resumed = resumed_runner.run(
            make_predictor, make_estimators, {}, checkpointed(true));

        expectBitExact(resumed, reference);

        // Completion replaced the generations with done-markers.
        for (const auto &name : names_) {
            EXPECT_TRUE(filesWithPrefix(name + ".g").empty());
            EXPECT_EQ(filesWithPrefix(name + ".done").size(), 1u);
        }
    }
};

TEST_F(CheckpointResumeTest, BitExactResumeGshareOneLevel)
{
    runKillResume(gshareFactory(), oneLevelFactory());
}

TEST_F(CheckpointResumeTest, BitExactResumeHybridTwoLevel)
{
    runKillResume(hybridFactory(), twoLevelFactory());
}

TEST_F(CheckpointResumeTest, CorruptGenerationFallsBackAndReports)
{
    SuiteRunner reference_runner(suite_);
    reference_runner.setSourceWrapper(faultWrapper(0));
    const SuiteRunResult reference =
        reference_runner.run(gshareFactory(), oneLevelFactory());

    SuiteRunner killed_runner(suite_);
    killed_runner.setSourceWrapper(faultWrapper(kKillAfter));
    (void)killed_runner.run(
        gshareFactory(), oneLevelFactory(), {},
        checkpointed(false, ErrorMode::kContinueOnError));

    // Damage groff's NEWEST generation; the older one must carry the
    // resume (the fall-back-one-generation rule).
    const auto groff_gens = filesWithPrefix("groff.g");
    ASSERT_GE(groff_gens.size(), 2u);
    corruptFile(groff_gens.back()); // zero-padded => sorted = numeric

    const std::string events_path = dir_ + "/resume_events.jsonl";
    SuiteRunResult resumed;
    {
        TelemetryOptions telemetry_options;
        telemetry_options.jsonlPath = events_path;
        const auto telemetry =
            Telemetry::fromOptions(telemetry_options);
        ASSERT_NE(telemetry, nullptr);
        DriverOptions options;
        options.telemetry = telemetry.get();
        SuiteRunner resumed_runner(suite_);
        resumed_runner.setSourceWrapper(faultWrapper(0));
        resumed = resumed_runner.run(gshareFactory(), oneLevelFactory(),
                                     options, checkpointed(true));
    } // telemetry closes (atomically publishes) the JSONL here

    expectBitExact(resumed, reference);

    // The event stream must carry the corruption report AND the
    // successful restore from the older generation.
    std::ifstream events(events_path);
    ASSERT_TRUE(events);
    bool saw_corrupt = false;
    bool saw_restored = false;
    bool saw_written = false;
    for (std::string line; std::getline(events, line);) {
        saw_corrupt |=
            line.find("\"checkpoint_corrupt\"") != std::string::npos &&
            line.find("groff") != std::string::npos;
        saw_restored |=
            line.find("\"checkpoint_restored\"") != std::string::npos;
        saw_written |=
            line.find("\"checkpoint_written\"") != std::string::npos;
    }
    EXPECT_TRUE(saw_corrupt);
    EXPECT_TRUE(saw_restored);
    EXPECT_TRUE(saw_written);
}

TEST_F(CheckpointResumeTest, DoneMarkerSkipsCompletedBenchmarks)
{
    // Full checkpointed run to completion: leaves only done-markers.
    SuiteRunner first_runner(suite_);
    first_runner.setSourceWrapper(faultWrapper(0));
    const SuiteRunResult first = first_runner.run(
        gshareFactory(), oneLevelFactory(), {}, checkpointed(false));
    for (const auto &name : names_) {
        ASSERT_EQ(filesWithPrefix(name + ".done").size(), 1u);
        ASSERT_TRUE(filesWithPrefix(name + ".g").empty());
    }

    // Poisoned resume: any attempt to actually simulate dies on the
    // first record, and the policy is fail-fast — so success proves
    // every benchmark was served from its done-marker.
    SuiteRunner resumed_runner(suite_);
    resumed_runner.setSourceWrapper(faultWrapper(1));
    const SuiteRunResult resumed = resumed_runner.run(
        gshareFactory(), oneLevelFactory(), {}, checkpointed(true));

    expectBitExact(resumed, first);
}

} // namespace
} // namespace confsim
