/**
 * @file
 * End-to-end fault-tolerance tests: a suite run over trace files where
 * one benchmark's file is corrupted on disk. Under the default
 * fail-fast policy the run throws; under continue-on-error it
 * completes with that benchmark marked failed and the composites
 * computed over the survivors and flagged degraded. A second path
 * drives the same machinery with FaultInjectingTraceSource instead of
 * on-disk corruption, and a third shows kSkipCorrupt turning the hard
 * failure into a partial (but successful) benchmark.
 */

#include <cstdio>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "predictor/gshare.h"
#include "sim/suite_runner.h"
#include "fault/fault_injection.h"
#include "trace/trace_io.h"

namespace confsim {
namespace {

PredictorFactory
makePredictor()
{
    return [] { return std::make_unique<GsharePredictor>(4096, 12); };
}

EstimatorSetFactory
makeEstimators()
{
    return [] {
        std::vector<std::unique_ptr<ConfidenceEstimator>> out;
        out.push_back(std::make_unique<OneLevelCounterConfidence>(
            IndexScheme::PcXorBhr, 4096, CounterKind::Resetting, 16,
            0));
        return out;
    };
}

class FaultToleranceTest : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t kBranches = 20000;
    std::vector<std::string> names_ = {"jpeg", "groff", "real_gcc"};
    BenchmarkSuite suite_ = BenchmarkSuite::ibsSubset(names_,
                                                      kBranches);
    std::vector<std::string> paths_;

    void
    SetUp() override
    {
        // Materialize each benchmark's trace as a CBT2 file.
        for (std::size_t bench = 0; bench < suite_.size(); ++bench) {
            paths_.push_back(::testing::TempDir() + "/confsim_ft_" +
                             names_[bench] + ".cbt");
            auto generator = suite_.makeGenerator(bench);
            writeTraceFile(*generator, paths_.back());
        }
    }

    void
    TearDown() override
    {
        for (const auto &path : paths_)
            std::remove(path.c_str());
    }

    /** Flip one payload bit of the first chunk of @p path. */
    void
    corruptFile(const std::string &path)
    {
        std::fstream file(path, std::ios::binary | std::ios::in |
                                    std::ios::out);
        ASSERT_TRUE(file);
        // 16-byte CBT2 header + 12-byte chunk header, then payload.
        file.seekp(16 + 12 + 100);
        char byte = 0;
        file.seekg(16 + 12 + 100);
        file.get(byte);
        file.seekp(16 + 12 + 100);
        file.put(static_cast<char>(byte ^ 0x10));
    }

    /** Replay benchmarks from their trace files. */
    SourceWrapper
    fileWrapper(RecoveryMode mode)
    {
        auto paths = paths_;
        return [paths, mode](std::size_t bench,
                             std::unique_ptr<TraceSource>)
                   -> std::unique_ptr<TraceSource> {
            return std::make_unique<TraceFileReader>(paths[bench],
                                                     mode);
        };
    }
};

TEST_F(FaultToleranceTest, CorruptFileFailsFastByDefault)
{
    corruptFile(paths_[1]);
    SuiteRunner runner(suite_);
    runner.setSourceWrapper(fileWrapper(RecoveryMode::kStrict));
    try {
        runner.run(makePredictor(), makeEstimators());
        FAIL() << "corrupt benchmark trace did not abort the run";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("groff"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("CRC"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(FaultToleranceTest, CorruptFileIsIsolatedUnderContinueOnError)
{
    corruptFile(paths_[1]);

    // Reference: the same suite over intact generators.
    SuiteRunner clean_runner(suite_);
    const auto clean =
        clean_runner.run(makePredictor(), makeEstimators());

    SuiteRunner runner(suite_);
    runner.setSourceWrapper(fileWrapper(RecoveryMode::kStrict));
    const auto result =
        runner.run(makePredictor(), makeEstimators(), {},
                   RunPolicy::continueOnError());

    ASSERT_EQ(result.perBenchmark.size(), 3u);
    EXPECT_FALSE(result.perBenchmark[0].failed());
    EXPECT_TRUE(result.perBenchmark[1].failed());
    EXPECT_FALSE(result.perBenchmark[2].failed());
    EXPECT_TRUE(result.degraded);

    // Survivors replay their file traces bit-identically to the
    // generator-driven reference run.
    for (const std::size_t bench : {std::size_t{0}, std::size_t{2}}) {
        EXPECT_EQ(result.perBenchmark[bench].branches,
                  clean.perBenchmark[bench].branches);
        EXPECT_EQ(result.perBenchmark[bench].mispredicts,
                  clean.perBenchmark[bench].mispredicts);
    }
    const double survivor_mean =
        (clean.perBenchmark[0].mispredictRate +
         clean.perBenchmark[2].mispredictRate) /
        2.0;
    EXPECT_NEAR(result.compositeMispredictRate, survivor_mean, 1e-12);
    // Equal-weight composite: 1e6 of mass per surviving benchmark.
    ASSERT_EQ(result.compositeEstimatorStats.size(), 1u);
    EXPECT_NEAR(result.compositeEstimatorStats[0].totalRefs(), 2e6,
                1.0);
}

TEST_F(FaultToleranceTest, InjectedFaultIsIsolatedUnderContinueOnError)
{
    // Same acceptance path, driven by FaultInjectingTraceSource
    // instead of on-disk corruption.
    SuiteRunner runner(suite_);
    runner.setSourceWrapper(
        [](std::size_t bench, std::unique_ptr<TraceSource> inner)
            -> std::unique_ptr<TraceSource> {
            if (bench != 1)
                return inner;
            FaultSpec spec;
            spec.failAfter = 1000;
            return std::make_unique<FaultInjectingTraceSource>(
                std::move(inner), spec);
        });

    EXPECT_THROW(runner.run(makePredictor(), makeEstimators()),
                 std::runtime_error);

    const auto result =
        runner.run(makePredictor(), makeEstimators(), {},
                   RunPolicy::continueOnError());
    ASSERT_EQ(result.perBenchmark.size(), 3u);
    EXPECT_TRUE(result.perBenchmark[1].failed());
    EXPECT_EQ(result.failedBenchmarks(), 1u);
    EXPECT_TRUE(result.degraded);
    EXPECT_GT(result.compositeMispredictRate, 0.0);
}

TEST_F(FaultToleranceTest, SkipCorruptReaderAvoidsTheFailureEntirely)
{
    corruptFile(paths_[1]);
    SuiteRunner runner(suite_);
    runner.setSourceWrapper(fileWrapper(RecoveryMode::kSkipCorrupt));
    const auto result =
        runner.run(makePredictor(), makeEstimators(), {},
                   RunPolicy::continueOnError());

    // Recovery downgraded the hard failure to a shorter benchmark:
    // nothing fails, but the corrupted benchmark lost its first chunk.
    EXPECT_FALSE(result.degraded);
    ASSERT_EQ(result.perBenchmark.size(), 3u);
    EXPECT_FALSE(result.perBenchmark[1].failed());
    EXPECT_LT(result.perBenchmark[1].branches,
              result.perBenchmark[0].branches);
    EXPECT_GT(result.perBenchmark[1].branches, 0u);
}

} // namespace
} // namespace confsim
