/**
 * @file
 * Differential correctness harness for the sweep engine.
 *
 * The sweep engine's entire contract is bit-exactness: running N
 * configurations through one shared decode pass must produce EXACTLY
* what N independent sequential SimulationDriver runs produce — same
 * branch counts, same per-bucket reference/misprediction doubles, same
 * reduction curves, same serialized component bytes. These tests run
 * every (predictor, estimator) family in the shared registry
 * (sim/family_registry.h) through both paths and compare without
 * tolerance — a family added to the registry can never silently skip
 * this wall. Thread count and batch size are varied to prove they
 * never leak into results, and sweep checkpoints are round-tripped to
 * prove resume is bit-exact too.
 */

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "ckpt/checkpoint_store.h"
#include "metrics/confidence_curve.h"
#include "sim/driver.h"
#include "sim/family_registry.h"
#include "sim/suite_runner.h"
#include "sim/sweep_engine.h"
#include "workload/suite.h"

namespace confsim {
namespace {

constexpr std::uint64_t kBranches = 60'000;

using Family = DifferentialFamily;

/** Every (predictor, estimator) family in the shared registry. */
std::vector<Family>
allFamilies()
{
    return differentialFamilyRegistry();
}

/** Fresh deterministic source: benchmark 0 of the reduced suite. */
std::unique_ptr<TraceSource>
freshSource(std::uint64_t branches = kBranches)
{
    return BenchmarkSuite::ibsSmall(branches).makeGenerator(0);
}

/** The sequential reference: one driver run plus final state bytes. */
struct SequentialRun
{
    DriverResult result;
    std::vector<std::uint8_t> stateBytes;
};

/** Serialize predictor + estimator state with fixed component names. */
std::vector<std::uint8_t>
snapshotBytes(BranchPredictor &predictor,
              const std::vector<ConfidenceEstimator *> &estimators)
{
    Checkpoint ckpt;
    ckpt.label = "differential";
    ckpt.addComponent("predictor", predictor);
    for (std::size_t i = 0; i < estimators.size(); ++i) {
        ckpt.addComponent("estimator" + std::to_string(i),
                          *estimators[i]);
    }
    return ckpt.serialize();
}

SequentialRun
runSequential(const Family &family, DriverOptions options,
              std::uint64_t branches = kBranches)
{
    auto predictor = family.makePredictor();
    auto owned = family.makeEstimators();
    std::vector<ConfidenceEstimator *> raw;
    raw.reserve(owned.size());
    for (auto &estimator : owned)
        raw.push_back(estimator.get());
    SimulationDriver driver(*predictor, raw, options);
    auto source = freshSource(branches);
    SequentialRun run;
    run.result = driver.run(*source);
    run.stateBytes = snapshotBytes(*predictor, raw);
    return run;
}

/** Bit-exact comparison of one config's sweep result vs the driver. */
void
expectIdentical(const DriverResult &sequential,
                const SweepConfigResult &sweep,
                const std::string &context)
{
    SCOPED_TRACE(context);
    EXPECT_EQ(sequential.branches, sweep.branches);
    EXPECT_EQ(sequential.mispredicts, sweep.mispredicts);
    EXPECT_EQ(sequential.contextSwitches, sweep.contextSwitches);
    ASSERT_EQ(sequential.estimatorStats.size(),
              sweep.estimatorStats.size());
    for (std::size_t e = 0; e < sequential.estimatorStats.size();
         ++e) {
        const BucketStats &expected = sequential.estimatorStats[e];
        const BucketStats &actual = sweep.estimatorStats[e];
        ASSERT_EQ(expected.numBuckets(), actual.numBuckets());
        for (std::uint64_t b = 0; b < expected.numBuckets(); ++b) {
            // Exact double equality: both paths perform identical
            // +1.0 increments in identical order.
            EXPECT_EQ(expected[b].refs, actual[b].refs)
                << "bucket " << b;
            EXPECT_EQ(expected[b].mispredicts, actual[b].mispredicts)
                << "bucket " << b;
        }

        const ConfidenceCurve expected_curve =
            ConfidenceCurve::fromBucketStats(expected);
        const ConfidenceCurve actual_curve =
            ConfidenceCurve::fromBucketStats(actual);
        ASSERT_EQ(expected_curve.points().size(),
                  actual_curve.points().size());
        for (std::size_t p = 0; p < expected_curve.points().size();
             ++p) {
            EXPECT_EQ(expected_curve.points()[p].bucket,
                      actual_curve.points()[p].bucket);
            EXPECT_EQ(expected_curve.points()[p].refFraction,
                      actual_curve.points()[p].refFraction);
            EXPECT_EQ(expected_curve.points()[p].mispredFraction,
                      actual_curve.points()[p].mispredFraction);
        }
    }

    // Static profile (only populated when profiling was on).
    ASSERT_EQ(sequential.staticProfile.size(),
              sweep.staticProfile.size());
    for (const auto &[pc, entry] :
         sequential.staticProfile.entries()) {
        const auto it = sweep.staticProfile.entries().find(pc);
        ASSERT_NE(it, sweep.staticProfile.entries().end())
            << "pc " << pc;
        EXPECT_EQ(entry.executions, it->second.executions);
        EXPECT_EQ(entry.mispredictions, it->second.mispredictions);
        EXPECT_EQ(entry.takenCount, it->second.takenCount);
    }
}

/** Build a sweep configuration per family. */
std::vector<SweepConfiguration>
familyConfigs(const std::vector<Family> &families)
{
    std::vector<SweepConfiguration> configs;
    configs.reserve(families.size());
    for (const auto &family : families)
        configs.push_back({family.label, family.makePredictor,
                           family.makeEstimators});
    return configs;
}

TEST(SweepDifferential, AllFamiliesBitExactSingleThread)
{
    const std::vector<Family> families = allFamilies();
    DriverOptions options;
    options.profileStatic = true;

    SweepOptions sweep;
    sweep.threads = 1;
    SweepEngine engine(familyConfigs(families), options, sweep);
    auto source = freshSource();
    const SweepRunResult result = engine.run(*source);

    ASSERT_EQ(result.perConfig.size(), families.size());
    for (std::size_t c = 0; c < families.size(); ++c) {
        const SequentialRun reference =
            runSequential(families[c], options);
        expectIdentical(reference.result, result.perConfig[c],
                        families[c].label + " (1 thread)");
    }
}

TEST(SweepDifferential, AllFamiliesBitExactMultiThread)
{
    const std::vector<Family> families = allFamilies();
    DriverOptions options;
    options.profileStatic = true;

    SweepOptions sweep;
    sweep.threads = 4;
    sweep.batchSize = 1000; // not a divisor of the trace length
    SweepEngine engine(familyConfigs(families), options, sweep);
    auto source = freshSource();
    const SweepRunResult result = engine.run(*source);

    ASSERT_EQ(result.perConfig.size(), families.size());
    for (std::size_t c = 0; c < families.size(); ++c) {
        const SequentialRun reference =
            runSequential(families[c], options);
        expectIdentical(reference.result, result.perConfig[c],
                        families[c].label + " (4 threads)");
    }
}

TEST(SweepDifferential, BatchSizeNeverChangesResults)
{
    const Family family = differentialFamilyNamed("counter_resetting");
    DriverOptions options;
    options.profileStatic = true;
    const SequentialRun reference = runSequential(family, options);

    for (const std::size_t batch_size :
         {std::size_t{1}, std::size_t{7}, std::size_t{101},
          std::size_t{4096}}) {
        SweepOptions sweep;
        sweep.threads = 2;
        sweep.batchSize = batch_size;
        SweepEngine engine(familyConfigs({family, family}), options,
                           sweep);
        auto source = freshSource();
        const SweepRunResult result = engine.run(*source);
        ASSERT_EQ(result.perConfig.size(), 2u);
        for (std::size_t c = 0; c < 2; ++c) {
            expectIdentical(reference.result, result.perConfig[c],
                            "batch size " +
                                std::to_string(batch_size) +
                                " config " + std::to_string(c));
        }
    }
}

TEST(SweepDifferential, WarmupAndContextSwitchCombosBitExact)
{
    const Family family = differentialFamilyNamed("counter_saturating");
    struct Combo
    {
        std::uint64_t warmup;
        std::uint64_t interval;
        bool flushPredictor;
        bool flushEstimators;
    };
    const Combo combos[] = {
        {0, 0, true, true},       {1000, 0, true, true},
        {0, 777, true, true},     {500, 500, true, true},
        {2000, 700, false, true}, {100, 1, true, false},
    };
    for (const Combo &combo : combos) {
        DriverOptions options;
        options.profileStatic = true;
        options.warmupBranches = combo.warmup;
        options.contextSwitchInterval = combo.interval;
        options.flushPredictorOnSwitch = combo.flushPredictor;
        options.flushEstimatorsOnSwitch = combo.flushEstimators;

        const SequentialRun reference =
            runSequential(family, options, 20'000);

        SweepOptions sweep;
        sweep.threads = 2;
        sweep.batchSize = 333;
        SweepEngine engine(familyConfigs({family, family}), options,
                           sweep);
        auto source = freshSource(20'000);
        const SweepRunResult result = engine.run(*source);
        for (std::size_t c = 0; c < 2; ++c) {
            expectIdentical(
                reference.result, result.perConfig[c],
                "warmup=" + std::to_string(combo.warmup) +
                    " interval=" + std::to_string(combo.interval) +
                    " config " + std::to_string(c));
        }
    }
}

TEST(SweepDifferential, FinalComponentBytesMatchSequential)
{
    // Serialize the final predictor/estimator state reached through
    // each path with identical component names: the checkpoint bytes
    // must be identical, which subsumes every counter, CIR, and table
    // entry the estimator owns.
    const std::vector<Family> families = allFamilies();
    DriverOptions options;

    // Drive the sweep manually so the final states stay accessible:
    // one config per engine, capturing through a wrapper factory.
    for (const auto &family : families) {
        const SequentialRun reference = runSequential(family, options);

        BranchPredictor *sweep_predictor = nullptr;
        std::vector<ConfidenceEstimator *> sweep_estimators;
        SweepConfiguration config;
        config.label = family.label;
        config.makePredictor = [&family, &sweep_predictor] {
            auto predictor = family.makePredictor();
            sweep_predictor = predictor.get();
            return predictor;
        };
        config.makeEstimators = [&family, &sweep_estimators] {
            auto owned = family.makeEstimators();
            sweep_estimators.clear();
            for (auto &estimator : owned)
                sweep_estimators.push_back(estimator.get());
            return owned;
        };

        SweepOptions sweep;
        sweep.threads = 1;
        SweepEngine engine({config}, options, sweep);
        auto source = freshSource();
        engine.run(*source);

        ASSERT_NE(sweep_predictor, nullptr);
        EXPECT_EQ(reference.stateBytes,
                  snapshotBytes(*sweep_predictor, sweep_estimators))
            << family.label;
    }
}

TEST(SweepDifferential, CheckpointResumeIsBitExact)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        "sweep_resume_differential";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    const std::vector<Family> families = {
        differentialFamilyNamed("one_level_raw_pc"),
        differentialFamilyNamed("counter_resetting"),
        differentialFamilyNamed("tage_provider"),
        differentialFamilyNamed("perceptron_margin")};
    DriverOptions options;
    options.profileStatic = true;
    SweepOptions sweep;
    sweep.threads = 2;

    // Uninterrupted reference sweep.
    SweepEngine reference_engine(familyConfigs(families), options,
                                 sweep);
    auto reference_source = freshSource();
    const SweepRunResult reference =
        reference_engine.run(*reference_source);

    // Checkpointed sweep: write generations mid-run...
    CheckpointStore store(dir.string(), "sweep-test", 2);
    SweepEngine first_engine(familyConfigs(families), options, sweep);
    first_engine.checkpointEvery(20'000, &store);
    auto first_source = freshSource();
    const SweepRunResult first = first_engine.run(*first_source);
    ASSERT_GT(first.checkpointsWritten, 0u);

    // ...then resume a fresh engine from the newest valid generation
    // and compare against the uninterrupted run.
    const auto ckpt = store.loadLatestValid();
    ASSERT_TRUE(ckpt.has_value());
    SweepEngine resumed_engine(familyConfigs(families), options,
                               sweep);
    auto resumed_source = freshSource();
    const SweepRunResult resumed =
        resumed_engine.resume(*resumed_source, *ckpt);

    ASSERT_EQ(reference.perConfig.size(), resumed.perConfig.size());
    for (std::size_t c = 0; c < reference.perConfig.size(); ++c) {
        const SweepConfigResult &expected = reference.perConfig[c];
        const SweepConfigResult &actual = resumed.perConfig[c];
        SCOPED_TRACE(families[c].label);
        EXPECT_EQ(expected.branches, actual.branches);
        EXPECT_EQ(expected.mispredicts, actual.mispredicts);
        ASSERT_EQ(expected.estimatorStats.size(),
                  actual.estimatorStats.size());
        for (std::size_t e = 0; e < expected.estimatorStats.size();
             ++e) {
            const BucketStats &eb = expected.estimatorStats[e];
            const BucketStats &ab = actual.estimatorStats[e];
            ASSERT_EQ(eb.numBuckets(), ab.numBuckets());
            for (std::uint64_t b = 0; b < eb.numBuckets(); ++b) {
                EXPECT_EQ(eb[b].refs, ab[b].refs);
                EXPECT_EQ(eb[b].mispredicts, ab[b].mispredicts);
            }
        }
    }
}

TEST(SweepDifferential, DecodeAheadDepthNeverChangesResults)
{
    const Family family = differentialFamilyNamed("two_level");
    DriverOptions options;
    options.profileStatic = true;
    const SequentialRun reference = runSequential(family, options);

    for (const std::size_t depth :
         {std::size_t{1}, std::size_t{2}, std::size_t{3},
          std::size_t{5}}) {
        SweepOptions sweep;
        sweep.threads = 2;
        sweep.batchSize = 777; // not a divisor of the trace length
        sweep.decodeAhead = depth;
        SweepEngine engine(familyConfigs({family, family}), options,
                           sweep);
        auto source = freshSource();
        const SweepRunResult result = engine.run(*source);
        ASSERT_EQ(result.perConfig.size(), 2u);
        for (std::size_t c = 0; c < 2; ++c) {
            expectIdentical(reference.result, result.perConfig[c],
                            "decode-ahead " + std::to_string(depth) +
                                " config " + std::to_string(c));
        }
    }
}

TEST(SweepDifferential, SharedPoolWithSurplusWorkersBitExact)
{
    // More pool workers than configurations: the engine must cap its
    // shards at the config count and leave the surplus workers idle
    // (they exist to serve other benchmarks' concurrent passes), with
    // results identical to a lone engine.
    const std::vector<Family> families = {
        differentialFamilyNamed("one_level_ones_pcxorbhr"),
        differentialFamilyNamed("tage_provider"),
        differentialFamilyNamed("unaliased")};
    DriverOptions options;
    options.profileStatic = true;

    SweepWorkerPool pool(6);
    SweepOptions sweep;
    sweep.pool = &pool;
    sweep.decodeAhead = 3;

    // Two engines sharing one pool back to back, as runSweep does.
    for (int pass = 0; pass < 2; ++pass) {
        SweepEngine engine(familyConfigs(families), options, sweep);
        auto source = freshSource();
        const SweepRunResult result = engine.run(*source);
        ASSERT_EQ(result.perConfig.size(), families.size());
        for (std::size_t c = 0; c < families.size(); ++c) {
            const SequentialRun reference =
                runSequential(families[c], options);
            expectIdentical(reference.result, result.perConfig[c],
                            families[c].label + " (shared pool pass " +
                                std::to_string(pass) + ")");
        }
    }
    EXPECT_GT(pool.occupancyStats().count(), 0u);
}

TEST(SweepDifferential, CheckpointResumeWithDecodeAheadBitExact)
{
    // Checkpoints written by the pipelined engine (producer paused at
    // the checkpoint barrier) must resume bit-exactly — including
    // when the resuming engine uses a *different* decode-ahead depth.
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        "sweep_resume_decode_ahead";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    const std::vector<Family> families = {
        differentialFamilyNamed("perceptron_margin"),
        differentialFamilyNamed("counter_half_reset")};
    DriverOptions options;
    options.profileStatic = true;

    // Reference: synchronous-refill engine, uninterrupted.
    SweepOptions sync_sweep;
    sync_sweep.threads = 2;
    sync_sweep.decodeAhead = 1;
    SweepEngine reference_engine(familyConfigs(families), options,
                                 sync_sweep);
    auto reference_source = freshSource();
    const SweepRunResult reference =
        reference_engine.run(*reference_source);

    // Checkpoint cadence must be depth-independent too: count the
    // synchronous engine's generations, then the pipelined engine's.
    CheckpointStore sync_store(dir.string(), "sweep-sync", 4);
    SweepEngine sync_ckpt_engine(familyConfigs(families), options,
                                 sync_sweep);
    sync_ckpt_engine.checkpointEvery(20'000, &sync_store);
    auto sync_ckpt_source = freshSource();
    const SweepRunResult sync_ckpt =
        sync_ckpt_engine.run(*sync_ckpt_source);

    SweepOptions ring_sweep;
    ring_sweep.threads = 2;
    ring_sweep.decodeAhead = 3;
    CheckpointStore store(dir.string(), "sweep-ring", 4);
    SweepEngine first_engine(familyConfigs(families), options,
                             ring_sweep);
    first_engine.checkpointEvery(20'000, &store);
    auto first_source = freshSource();
    const SweepRunResult first = first_engine.run(*first_source);
    ASSERT_GT(first.checkpointsWritten, 0u);
    EXPECT_EQ(first.checkpointsWritten, sync_ckpt.checkpointsWritten);

    const auto ckpt = store.loadLatestValid();
    ASSERT_TRUE(ckpt.has_value());
    SweepOptions resume_sweep;
    resume_sweep.threads = 2;
    resume_sweep.decodeAhead = 2; // differs from the writing engine
    SweepEngine resumed_engine(familyConfigs(families), options,
                               resume_sweep);
    auto resumed_source = freshSource();
    const SweepRunResult resumed =
        resumed_engine.resume(*resumed_source, *ckpt);

    ASSERT_EQ(reference.perConfig.size(), resumed.perConfig.size());
    for (std::size_t c = 0; c < reference.perConfig.size(); ++c) {
        const SweepConfigResult &expected = reference.perConfig[c];
        const SweepConfigResult &actual = resumed.perConfig[c];
        SCOPED_TRACE(families[c].label);
        EXPECT_EQ(expected.branches, actual.branches);
        EXPECT_EQ(expected.mispredicts, actual.mispredicts);
        EXPECT_EQ(expected.contextSwitches, actual.contextSwitches);
        ASSERT_EQ(expected.estimatorStats.size(),
                  actual.estimatorStats.size());
        for (std::size_t e = 0; e < expected.estimatorStats.size();
             ++e) {
            const BucketStats &eb = expected.estimatorStats[e];
            const BucketStats &ab = actual.estimatorStats[e];
            ASSERT_EQ(eb.numBuckets(), ab.numBuckets());
            for (std::uint64_t b = 0; b < eb.numBuckets(); ++b) {
                EXPECT_EQ(eb[b].refs, ab[b].refs);
                EXPECT_EQ(eb[b].mispredicts, ab[b].mispredicts);
            }
        }
    }
}

/** Exact comparison of two SweepSuiteResults (ignores wall times). */
void
expectSuiteResultsIdentical(const SweepSuiteResult &expected,
                            const SweepSuiteResult &actual)
{
    ASSERT_EQ(expected.perConfig.size(), actual.perConfig.size());
    ASSERT_EQ(expected.labels, actual.labels);
    for (std::size_t c = 0; c < expected.perConfig.size(); ++c) {
        SCOPED_TRACE("config " + expected.labels[c]);
        const SuiteRunResult &ec = expected.perConfig[c];
        const SuiteRunResult &ac = actual.perConfig[c];
        ASSERT_EQ(ec.perBenchmark.size(), ac.perBenchmark.size());
        for (std::size_t b = 0; b < ec.perBenchmark.size(); ++b) {
            const BenchmarkRunResult &eb = ec.perBenchmark[b];
            const BenchmarkRunResult &ab = ac.perBenchmark[b];
            EXPECT_EQ(eb.name, ab.name);
            EXPECT_EQ(eb.error, ab.error);
            EXPECT_EQ(eb.branches, ab.branches);
            EXPECT_EQ(eb.mispredicts, ab.mispredicts);
            EXPECT_EQ(eb.mispredictRate, ab.mispredictRate);
            EXPECT_EQ(eb.staticStats.totalRefs(),
                      ab.staticStats.totalRefs());
            EXPECT_EQ(eb.staticStats.totalMispredicts(),
                      ab.staticStats.totalMispredicts());
            ASSERT_EQ(eb.estimatorStats.size(),
                      ab.estimatorStats.size());
            for (std::size_t e = 0; e < eb.estimatorStats.size();
                 ++e) {
                const BucketStats &es = eb.estimatorStats[e];
                const BucketStats &as = ab.estimatorStats[e];
                ASSERT_EQ(es.numBuckets(), as.numBuckets());
                for (std::uint64_t bucket = 0;
                     bucket < es.numBuckets(); ++bucket) {
                    EXPECT_EQ(es[bucket].refs, as[bucket].refs);
                    EXPECT_EQ(es[bucket].mispredicts,
                              as[bucket].mispredicts);
                }
            }
        }
        EXPECT_EQ(ec.compositeMispredictRate,
                  ac.compositeMispredictRate);
        EXPECT_EQ(ec.degraded, ac.degraded);
        ASSERT_EQ(ec.compositeEstimatorStats.size(),
                  ac.compositeEstimatorStats.size());
        for (std::size_t e = 0;
             e < ec.compositeEstimatorStats.size(); ++e) {
            const BucketStats &es = ec.compositeEstimatorStats[e];
            const BucketStats &as = ac.compositeEstimatorStats[e];
            ASSERT_EQ(es.numBuckets(), as.numBuckets());
            for (std::uint64_t bucket = 0; bucket < es.numBuckets();
                 ++bucket) {
                EXPECT_EQ(es[bucket].refs, as[bucket].refs);
                EXPECT_EQ(es[bucket].mispredicts,
                          as[bucket].mispredicts);
            }
        }
        EXPECT_EQ(ec.compositeStaticStats.totalRefs(),
                  ac.compositeStaticStats.totalRefs());
    }
}

TEST(SweepDifferential, BenchParallelScheduleNeverChangesResults)
{
    // Concurrent benchmark passes on a shared pool vs strictly
    // sequential single-threaded passes: identical outputs, identical
    // suite ordering, identical composites.
    const std::vector<Family> families = {
        differentialFamilyNamed("counter_resetting"),
        differentialFamilyNamed("tage_provider")};
    DriverOptions options;
    options.profileStatic = true;
    SuiteRunner runner(BenchmarkSuite::ibsSmall(20'000));

    SweepOptions sequential;
    sequential.threads = 1;
    sequential.decodeAhead = 1;
    sequential.benchParallel = 1;
    const SweepSuiteResult reference = runner.runSweep(
        familyConfigs(families), options, sequential, RunPolicy{});

    for (const unsigned slots : {2u, 3u}) {
        SweepOptions pipelined;
        pipelined.threads = 4;
        pipelined.decodeAhead = 3;
        pipelined.benchParallel = slots;
        const SweepSuiteResult result = runner.runSweep(
            familyConfigs(families), options, pipelined, RunPolicy{});
        SCOPED_TRACE("bench-parallel " + std::to_string(slots));
        expectSuiteResultsIdentical(reference, result);
    }
}

TEST(SweepDifferential, SweepWallTimeIsSharedEquallyAcrossConfigs)
{
    // The pass is shared: each config's per-benchmark wallMs must be
    // an equal 1/numConfigs share, so summing over configs recovers
    // the pass cost instead of multiplying it.
    const std::vector<Family> families = {
        differentialFamilyNamed("one_level_raw_pc"),
        differentialFamilyNamed("counter_saturating"),
        differentialFamilyNamed("self_counter")};
    SuiteRunner runner(BenchmarkSuite::ibsSmall(10'000));
    const SweepSuiteResult swept = runner.runSweep(
        familyConfigs(families), DriverOptions{}, SweepOptions{},
        RunPolicy{});
    ASSERT_EQ(swept.perConfig.size(), families.size());
    const std::size_t benches = swept.perConfig[0].perBenchmark.size();
    ASSERT_GT(benches, 0u);
    for (std::size_t b = 0; b < benches; ++b) {
        const double share =
            swept.perConfig[0].perBenchmark[b].wallMs;
        EXPECT_GE(share, 0.0);
        for (std::size_t c = 1; c < families.size(); ++c) {
            EXPECT_EQ(share,
                      swept.perConfig[c].perBenchmark[b].wallMs)
                << "benchmark " << b << " config " << c;
        }
    }
}

TEST(SweepDifferential, SuiteRunnerSweepMatchesSequentialRun)
{
    // The full SuiteRunner integration: per-benchmark results AND the
    // Section 1.2 composites must match the sequential path exactly,
    // for every attached configuration.
    const std::vector<Family> families = {
        differentialFamilyNamed("counter_saturating"),
        differentialFamilyNamed("perceptron_margin")};
    DriverOptions options;
    options.profileStatic = true;

    SuiteRunner runner(BenchmarkSuite::ibsSmall(20'000));

    SweepOptions sweep;
    sweep.threads = 2;
    const SweepSuiteResult swept = runner.runSweep(
        familyConfigs(families), options, sweep, RunPolicy{});

    ASSERT_EQ(swept.perConfig.size(), families.size());
    for (std::size_t c = 0; c < families.size(); ++c) {
        SCOPED_TRACE(families[c].label);
        const SuiteRunResult expected =
            runner.run(families[c].makePredictor,
                       families[c].makeEstimators, options, RunPolicy{});
        const SuiteRunResult &actual = swept.perConfig[c];

        ASSERT_EQ(expected.perBenchmark.size(),
                  actual.perBenchmark.size());
        for (std::size_t b = 0; b < expected.perBenchmark.size();
             ++b) {
            const BenchmarkRunResult &eb = expected.perBenchmark[b];
            const BenchmarkRunResult &ab = actual.perBenchmark[b];
            EXPECT_EQ(eb.name, ab.name);
            EXPECT_EQ(eb.branches, ab.branches);
            EXPECT_EQ(eb.mispredicts, ab.mispredicts);
            EXPECT_EQ(eb.mispredictRate, ab.mispredictRate);
            EXPECT_EQ(eb.staticStats.totalRefs(),
                      ab.staticStats.totalRefs());
            EXPECT_EQ(eb.staticStats.totalMispredicts(),
                      ab.staticStats.totalMispredicts());
        }

        ASSERT_EQ(expected.compositeEstimatorStats.size(),
                  actual.compositeEstimatorStats.size());
        for (std::size_t e = 0;
             e < expected.compositeEstimatorStats.size(); ++e) {
            const BucketStats &eb =
                expected.compositeEstimatorStats[e];
            const BucketStats &ab =
                actual.compositeEstimatorStats[e];
            ASSERT_EQ(eb.numBuckets(), ab.numBuckets());
            for (std::uint64_t b = 0; b < eb.numBuckets(); ++b) {
                EXPECT_EQ(eb[b].refs, ab[b].refs);
                EXPECT_EQ(eb[b].mispredicts, ab[b].mispredicts);
            }
        }
        EXPECT_EQ(expected.compositeMispredictRate,
                  actual.compositeMispredictRate);
        EXPECT_EQ(expected.compositeStaticStats.totalRefs(),
                  actual.compositeStaticStats.totalRefs());
    }
}

} // namespace
} // namespace confsim
