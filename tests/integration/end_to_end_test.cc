/** @file End-to-end integration tests across the whole library. */

#include <cstdio>

#include <gtest/gtest.h>

#include "confidence/binary_signal.h"
#include "confidence/one_level.h"
#include "metrics/classification_metrics.h"
#include "metrics/confidence_curve.h"
#include "predictor/gshare.h"
#include "predictor/history_register.h"
#include "sim/driver.h"
#include "trace/trace_io.h"
#include "workload/workload_generator.h"

namespace confsim {
namespace {

TEST(EndToEndTest, GeneratorToFileToDriverMatchesDirectRun)
{
    // Write a synthetic trace to disk, read it back, and verify the
    // simulation result is bit-identical to driving the generator
    // directly.
    const std::string path =
        ::testing::TempDir() + "/confsim_e2e.cbt";
    BenchmarkProfile profile = ibsProfile("mpeg");
    WorkloadGenerator gen(profile, 50000);
    writeTraceFile(gen, path);

    auto run = [](TraceSource &source) {
        GsharePredictor pred(4096, 12);
        OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 4096,
                                      CounterKind::Resetting, 16, 0);
        SimulationDriver driver(pred, {&est});
        return driver.run(source);
    };

    WorkloadGenerator direct(profile, 50000);
    const auto direct_result = run(direct);
    TraceFileReader reader(path);
    const auto file_result = run(reader);

    EXPECT_EQ(direct_result.branches, file_result.branches);
    EXPECT_EQ(direct_result.mispredicts, file_result.mispredicts);
    for (std::uint64_t b = 0;
         b < direct_result.estimatorStats[0].numBuckets(); ++b) {
        ASSERT_DOUBLE_EQ(direct_result.estimatorStats[0][b].refs,
                         file_result.estimatorStats[0][b].refs);
    }
    std::remove(path.c_str());
}

TEST(EndToEndTest, CurveFeedsBinarySignalWithMatchingOperatingPoint)
{
    // Profile a run, pick the 20% operating point from the curve,
    // replay with the induced binary signal, and verify the measured
    // (lowFraction, sensitivity) lands near the curve reading. This
    // closes the loop between the ideal evaluation methodology and an
    // online mechanism.
    BenchmarkProfile profile = ibsProfile("groff");
    const std::uint64_t length = 150000;

    GsharePredictor pred(4096, 12);
    OneLevelCounterConfidence est(IndexScheme::PcXorBhr, 4096,
                                  CounterKind::Resetting, 16, 0);
    WorkloadGenerator gen(profile, length);
    SimulationDriver driver(pred, {&est});
    const auto profile_run = driver.run(gen);

    const auto curve =
        ConfidenceCurve::fromBucketStats(profile_run.estimatorStats[0]);
    const auto mask =
        curve.lowBucketMaskForRefFraction(0.2, est.numBuckets());

    // Replay from scratch with the mask as an online signal.
    GsharePredictor pred2(4096, 12);
    OneLevelCounterConfidence est2(IndexScheme::PcXorBhr, 4096,
                                   CounterKind::Resetting, 16, 0);
    const BinaryConfidenceSignal signal(est2, mask);
    WorkloadGenerator gen2(profile, length);

    ConfusionCounts confusion;
    BranchRecord record;
    BranchContext ctx;
    HistoryRegister bhr(16);
    while (gen2.next(record)) {
        ctx.pc = record.pc;
        ctx.bhr = bhr.value();
        const bool predicted = pred2.predict(record.pc);
        const bool correct = predicted == record.taken;
        const bool low = signal.isLowConfidence(ctx);
        if (low) {
            confusion.lowMispredicted += !correct;
            confusion.lowCorrect += correct;
        } else {
            confusion.highMispredicted += !correct;
            confusion.highCorrect += correct;
        }
        est2.update(ctx, correct, true);
        pred2.update(record.pc, record.taken);
        bhr.recordOutcome(record.taken);
    }
    const auto metrics = computeMetrics(confusion);
    // The replay is identical to the profiling run, so the measured
    // operating point must match the curve reading closely.
    EXPECT_NEAR(metrics.sensitivity,
                curve.mispredCoverageAt(metrics.lowFraction), 0.02);
    EXPECT_GT(metrics.sensitivity, 0.5);
    EXPECT_GT(metrics.pvn, profile_run.mispredictRate());
}

TEST(EndToEndTest, StorageBudgetsMatchPaperCosts)
{
    // Paper Section 5.3: "the cost of the confidence method is twice
    // the underlying predictor (4-bit resetting counters versus 2-bit
    // saturating counters)" for equal-entry tables.
    GsharePredictor small = GsharePredictor::makeSmallPaperConfig();
    OneLevelCounterConfidence ct(IndexScheme::PcXorBhr, 4096,
                                 CounterKind::Resetting, 15, 0);
    EXPECT_EQ(ct.storageBits(), 2 * (small.storageBits() - 12));
}

} // namespace
} // namespace confsim
