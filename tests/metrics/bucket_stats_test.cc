/** @file Unit tests for per-bucket statistics and compositing. */

#include "metrics/bucket_stats.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(BucketStatsTest, RecordAccumulates)
{
    BucketStats stats(4);
    stats.record(1, false);
    stats.record(1, true);
    stats.record(1, true);
    EXPECT_DOUBLE_EQ(stats[1].refs, 3.0);
    EXPECT_DOUBLE_EQ(stats[1].mispredicts, 2.0);
    EXPECT_NEAR(stats[1].rate(), 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats[0].refs, 0.0);
}

TEST(BucketStatsTest, Totals)
{
    BucketStats stats(4);
    stats.record(0, true);
    stats.record(1, false);
    stats.record(2, true);
    EXPECT_DOUBLE_EQ(stats.totalRefs(), 3.0);
    EXPECT_DOUBLE_EQ(stats.totalMispredicts(), 2.0);
    EXPECT_NEAR(stats.overallRate(), 2.0 / 3.0, 1e-12);
}

TEST(BucketStatsTest, EmptyRateIsZero)
{
    BucketStats stats(4);
    EXPECT_DOUBLE_EQ(stats.overallRate(), 0.0);
    EXPECT_DOUBLE_EQ(stats[2].rate(), 0.0);
}

TEST(BucketStatsTest, NonEmptySkipsUnreferencedBuckets)
{
    BucketStats stats(8);
    stats.record(3, true);
    stats.record(6, false);
    const auto keyed = stats.nonEmpty();
    ASSERT_EQ(keyed.size(), 2u);
    EXPECT_EQ(keyed[0].bucket, 3u);
    EXPECT_EQ(keyed[1].bucket, 6u);
}

TEST(BucketStatsTest, AddWeightedScales)
{
    BucketStats a(2);
    a.record(0, true);
    a.record(1, false);
    BucketStats b(2);
    b.record(0, false);
    b.addWeighted(a, 2.0);
    EXPECT_DOUBLE_EQ(b[0].refs, 3.0);
    EXPECT_DOUBLE_EQ(b[0].mispredicts, 2.0);
    EXPECT_DOUBLE_EQ(b[1].refs, 2.0);
}

TEST(BucketStatsTest, MismatchedMergeIsFatal)
{
    BucketStats a(2);
    BucketStats b(3);
    EXPECT_THROW(a.addWeighted(b, 1.0), std::runtime_error);
}

TEST(BucketStatsTest, ZeroBucketsIsFatal)
{
    EXPECT_THROW(BucketStats(0), std::runtime_error);
}

TEST(BucketStatsTest, ClearZeroes)
{
    BucketStats stats(2);
    stats.record(0, true);
    stats.clear();
    EXPECT_DOUBLE_EQ(stats.totalRefs(), 0.0);
}

TEST(SparseBucketStatsTest, RecordAndAggregate)
{
    SparseBucketStats stats;
    stats.record(0xDEADBEEF, true);
    stats.record(0xDEADBEEF, false);
    stats.recordAggregate(0x42, 10.0, 3.0);
    EXPECT_EQ(stats.size(), 2u);
    EXPECT_DOUBLE_EQ(stats.totalRefs(), 12.0);
    EXPECT_DOUBLE_EQ(stats.totalMispredicts(), 4.0);
}

TEST(SparseBucketStatsTest, AddWeighted)
{
    SparseBucketStats a;
    a.recordAggregate(1, 100.0, 10.0);
    SparseBucketStats b;
    b.recordAggregate(1, 1.0, 1.0);
    b.recordAggregate(2, 5.0, 0.0);
    a.addWeighted(b, 10.0);
    EXPECT_DOUBLE_EQ(a.totalRefs(), 100.0 + 10.0 + 50.0);
    EXPECT_DOUBLE_EQ(a.totalMispredicts(), 10.0 + 10.0);
    EXPECT_EQ(a.size(), 2u);
}

TEST(EqualWeightCompositeTest, EachComponentContributesEqualMass)
{
    // Benchmark A: 100 branches, all in bucket 0, 10% misses.
    BucketStats a(2);
    for (int i = 0; i < 100; ++i)
        a.record(0, i < 10);
    // Benchmark B: 10000 branches, all in bucket 1, 1% misses.
    BucketStats b(2);
    for (int i = 0; i < 10000; ++i)
        b.record(1, i < 100);

    EqualWeightComposite composite(2);
    composite.add(a);
    composite.add(b);
    const BucketStats &out = composite.result();
    // Despite B having 100x the raw branches, both buckets carry the
    // same reference mass.
    EXPECT_NEAR(out[0].refs, out[1].refs, 1e-6);
    // Rates are preserved per component.
    EXPECT_NEAR(out[0].rate(), 0.10, 1e-12);
    EXPECT_NEAR(out[1].rate(), 0.01, 1e-12);
    // Composite rate = average of the two rates (the paper's
    // equal-weight averaging).
    EXPECT_NEAR(out.overallRate(), 0.055, 1e-9);
}

TEST(EqualWeightCompositeTest, EmptyComponentIsFatal)
{
    EqualWeightComposite composite(2);
    BucketStats empty(2);
    EXPECT_THROW(composite.add(empty), std::runtime_error);
}

} // namespace
} // namespace confsim
