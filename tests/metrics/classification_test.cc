/** @file Unit tests for binary classification metrics. */

#include "metrics/classification_metrics.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(ClassificationTest, PerfectSplit)
{
    ConfusionCounts counts;
    counts.lowMispredicted = 50;
    counts.highCorrect = 950;
    const auto metrics = computeMetrics(counts);
    EXPECT_DOUBLE_EQ(metrics.sensitivity, 1.0);
    EXPECT_DOUBLE_EQ(metrics.specificity, 1.0);
    EXPECT_DOUBLE_EQ(metrics.pvn, 1.0);
    EXPECT_DOUBLE_EQ(metrics.pvp, 1.0);
    EXPECT_DOUBLE_EQ(metrics.lowFraction, 0.05);
}

TEST(ClassificationTest, TypicalValues)
{
    // 1000 predictions, 4% miss rate; the low set holds 20% of
    // predictions and catches 80% of misses.
    ConfusionCounts counts;
    counts.lowMispredicted = 32;
    counts.lowCorrect = 168;
    counts.highMispredicted = 8;
    counts.highCorrect = 792;
    const auto metrics = computeMetrics(counts);
    EXPECT_DOUBLE_EQ(metrics.lowFraction, 0.2);
    EXPECT_DOUBLE_EQ(metrics.sensitivity, 0.8);
    EXPECT_NEAR(metrics.pvn, 32.0 / 200.0, 1e-12);
    EXPECT_NEAR(metrics.pvp, 792.0 / 800.0, 1e-12);
    EXPECT_NEAR(metrics.specificity, 792.0 / 960.0, 1e-12);
}

TEST(ClassificationTest, EmptyCountsGiveZeros)
{
    const auto metrics = computeMetrics(ConfusionCounts{});
    EXPECT_DOUBLE_EQ(metrics.lowFraction, 0.0);
    EXPECT_DOUBLE_EQ(metrics.sensitivity, 0.0);
    EXPECT_DOUBLE_EQ(metrics.pvn, 0.0);
}

TEST(ClassificationTest, ConfusionFromBuckets)
{
    std::vector<KeyedBucketCounts> buckets = {
        {0, {100.0, 40.0}}, // low bucket
        {1, {900.0, 10.0}}, // high bucket
        {5, {50.0, 5.0}},   // id beyond mask -> treated high
    };
    std::vector<bool> low_mask = {true, false};
    const auto counts = confusionFromBuckets(buckets, low_mask);
    EXPECT_DOUBLE_EQ(counts.lowMispredicted, 40.0);
    EXPECT_DOUBLE_EQ(counts.lowCorrect, 60.0);
    EXPECT_DOUBLE_EQ(counts.highMispredicted, 15.0);
    EXPECT_DOUBLE_EQ(counts.highCorrect, 935.0);
    EXPECT_DOUBLE_EQ(counts.total(), 1050.0);
}

TEST(ClassificationTest, SensitivityMatchesCurveReading)
{
    // The paper's "X% of branches capture Y% of mispredictions" is
    // exactly (lowFraction, sensitivity).
    ConfusionCounts counts;
    counts.lowMispredicted = 89;
    counts.lowCorrect = 111;
    counts.highMispredicted = 11;
    counts.highCorrect = 789;
    const auto metrics = computeMetrics(counts);
    EXPECT_NEAR(metrics.lowFraction, 0.2, 1e-12);
    EXPECT_NEAR(metrics.sensitivity, 0.89, 1e-12);
}

} // namespace
} // namespace confsim
