/** @file Unit tests for the cumulative confidence curve. */

#include "metrics/confidence_curve.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

namespace confsim {
namespace {

/** Two buckets: a hot bad one and a big good one. */
BucketStats
twoBucketStats()
{
    BucketStats stats(2);
    // Bucket 0: 200 refs, 80 misses (rate 0.4).
    for (int i = 0; i < 200; ++i)
        stats.record(0, i < 80);
    // Bucket 1: 800 refs, 20 misses (rate 0.025).
    for (int i = 0; i < 800; ++i)
        stats.record(1, i < 20);
    return stats;
}

TEST(CurveTest, SortsByRateAndAccumulates)
{
    const auto curve =
        ConfidenceCurve::fromBucketStats(twoBucketStats());
    ASSERT_EQ(curve.points().size(), 2u);
    // Worst bucket first.
    EXPECT_EQ(curve.points()[0].bucket, 0u);
    EXPECT_NEAR(curve.points()[0].refFraction, 0.2, 1e-12);
    EXPECT_NEAR(curve.points()[0].mispredFraction, 0.8, 1e-12);
    // Final point reaches (1, 1).
    EXPECT_NEAR(curve.points()[1].refFraction, 1.0, 1e-12);
    EXPECT_NEAR(curve.points()[1].mispredFraction, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(curve.totalRefs(), 1000.0);
    EXPECT_DOUBLE_EQ(curve.totalMispredicts(), 100.0);
}

TEST(CurveTest, MonotonicNondecreasing)
{
    BucketStats stats(16);
    for (int b = 0; b < 16; ++b) {
        for (int i = 0; i < 50 + 13 * b; ++i)
            stats.record(b, i < (b * 3) % 17);
    }
    const auto curve = ConfidenceCurve::fromBucketStats(stats);
    double x = 0.0;
    double y = 0.0;
    double rate = 1.1;
    for (const auto &point : curve.points()) {
        EXPECT_GE(point.refFraction, x);
        EXPECT_GE(point.mispredFraction, y - 1e-12);
        EXPECT_LE(point.bucketRate, rate + 1e-12); // sorted descending
        x = point.refFraction;
        y = point.mispredFraction;
        rate = point.bucketRate;
    }
    EXPECT_NEAR(x, 1.0, 1e-9);
    EXPECT_NEAR(y, 1.0, 1e-9);
}

TEST(CurveTest, CoverageInterpolatesLinearly)
{
    const auto curve =
        ConfidenceCurve::fromBucketStats(twoBucketStats());
    // At exactly the first point.
    EXPECT_NEAR(curve.mispredCoverageAt(0.2), 0.8, 1e-12);
    // Halfway to the first point: linear from (0,0).
    EXPECT_NEAR(curve.mispredCoverageAt(0.1), 0.4, 1e-12);
    // Between the points.
    EXPECT_NEAR(curve.mispredCoverageAt(0.6), 0.9, 1e-12);
    // Beyond the end.
    EXPECT_NEAR(curve.mispredCoverageAt(1.5), 1.0, 1e-12);
    // Degenerate inputs.
    EXPECT_DOUBLE_EQ(curve.mispredCoverageAt(0.0), 0.0);
    EXPECT_DOUBLE_EQ(curve.mispredCoverageAt(-1.0), 0.0);
}

TEST(CurveTest, InverseReading)
{
    const auto curve =
        ConfidenceCurve::fromBucketStats(twoBucketStats());
    EXPECT_NEAR(curve.refFractionForCoverage(0.8), 0.2, 1e-12);
    EXPECT_NEAR(curve.refFractionForCoverage(0.4), 0.1, 1e-12);
    EXPECT_NEAR(curve.refFractionForCoverage(0.9), 0.6, 1e-12);
    EXPECT_NEAR(curve.refFractionForCoverage(1.0), 1.0, 1e-12);
}

TEST(CurveTest, LowBucketSelection)
{
    const auto curve =
        ConfidenceCurve::fromBucketStats(twoBucketStats());
    // 20% of refs -> just the worst bucket.
    const auto low = curve.lowBucketsForRefFraction(0.2);
    ASSERT_EQ(low.size(), 1u);
    EXPECT_EQ(low[0], 0u);
    // 21% -> needs part of the second; the prefix rule includes it.
    EXPECT_EQ(curve.lowBucketsForRefFraction(0.21).size(), 2u);
    // Mask form.
    const auto mask = curve.lowBucketMaskForRefFraction(0.2, 2);
    EXPECT_TRUE(mask[0]);
    EXPECT_FALSE(mask[1]);
}

/** Build a randomized curve; deliberately includes rate ties and
 * zero-mispredict buckets so plateaus (flat Y runs) appear. */
ConfidenceCurve
randomCurve(std::mt19937_64 &rng)
{
    std::uniform_int_distribution<int> bucket_count(1, 12);
    std::uniform_int_distribution<int> ref_count(1, 40);
    std::uniform_int_distribution<int> kind(0, 3);
    const int buckets = bucket_count(rng);
    BucketStats stats(static_cast<std::uint64_t>(buckets));
    for (int b = 0; b < buckets; ++b) {
        const int refs = ref_count(rng);
        int misses = 0;
        switch (kind(rng)) {
        case 0: misses = 0; break;              // zero-mispredict plateau
        case 1: misses = refs; break;           // all-miss (rate ties at 1)
        case 2: misses = refs / 2; break;       // rate ties at ~0.5
        default:
            misses = std::uniform_int_distribution<int>(0, refs)(rng);
            break;
        }
        for (int i = 0; i < refs; ++i)
            stats.record(static_cast<std::uint64_t>(b), i < misses);
    }
    return ConfidenceCurve::fromBucketStats(stats);
}

TEST(CurveTest, RoundTripPropertyOnRandomizedCurves)
{
    std::mt19937_64 rng(0xC0FFEEu);
    constexpr double kEps = 1e-9;
    for (int trial = 0; trial < 500; ++trial) {
        const auto curve = randomCurve(rng);

        // Degenerate targets never require any branches.
        EXPECT_DOUBLE_EQ(curve.refFractionForCoverage(0.0), 0.0);
        EXPECT_DOUBLE_EQ(curve.refFractionForCoverage(-0.5), 0.0);

        // Forward then inverse: the smallest sufficient branch
        // fraction for the achieved coverage never exceeds the
        // fraction we started from.
        for (int i = 0; i <= 20; ++i) {
            const double x = i / 20.0;
            const double y = curve.mispredCoverageAt(x);
            EXPECT_LE(curve.refFractionForCoverage(y), x + kEps)
                << "trial " << trial << " x=" << x << " y=" << y;
        }

        // Inverse then forward: the branch fraction reported for a
        // coverage target actually achieves that coverage (when the
        // target is reachable at all).
        const double y_max =
            curve.points().empty()
                ? 0.0
                : curve.points().back().mispredFraction;
        for (int i = 0; i <= 20; ++i) {
            const double y = i / 20.0;
            if (y > y_max)
                continue;
            const double x = curve.refFractionForCoverage(y);
            EXPECT_GE(curve.mispredCoverageAt(x), y - kEps)
                << "trial " << trial << " y=" << y << " x=" << x;
        }
    }
}

TEST(CurveTest, PlateauInverseDoesNotOvershoot)
{
    // Bucket 0: rate 0.5 (10/20). Buckets 1 and 2: zero mispredicts —
    // the curve is flat (plateau) from x=0.2 through x=1.0 at y=1.0.
    BucketStats stats(3);
    for (int i = 0; i < 20; ++i)
        stats.record(0, i < 10);
    for (int i = 0; i < 50; ++i)
        stats.record(1, false);
    for (int i = 0; i < 30; ++i)
        stats.record(2, false);
    const auto curve = ConfidenceCurve::fromBucketStats(stats);

    // Full coverage is reached at x=0.2 already; the inverse must
    // report the plateau's left edge, not its right edge.
    EXPECT_NEAR(curve.refFractionForCoverage(1.0), 0.2, 1e-12);
    // And the round trip holds there.
    EXPECT_NEAR(curve.mispredCoverageAt(0.2), 1.0, 1e-12);
}

TEST(CurveTest, MaskWithTooFewBucketsIsFatal)
{
    const auto curve =
        ConfidenceCurve::fromBucketStats(twoBucketStats());
    EXPECT_THROW(curve.lowBucketMaskForRefFraction(1.0, 1),
                 std::runtime_error);
}

TEST(CurveTest, AucPerfectAndDiagonal)
{
    // Perfect concentration: one bucket holds every miss and almost
    // no refs -> AUC near 1.
    BucketStats perfect(2);
    for (int i = 0; i < 10; ++i)
        perfect.record(0, true);
    for (int i = 0; i < 990; ++i)
        perfect.record(1, false);
    EXPECT_GT(ConfidenceCurve::fromBucketStats(perfect)
                  .areaUnderCurve(),
              0.98);

    // No information: uniform rate everywhere -> AUC 0.5.
    BucketStats flat(4);
    for (int b = 0; b < 4; ++b) {
        for (int i = 0; i < 100; ++i)
            flat.record(b, i < 10);
    }
    EXPECT_NEAR(ConfidenceCurve::fromBucketStats(flat).areaUnderCurve(),
                0.5, 1e-9);
}

TEST(CurveTest, EmptyStatsGiveEmptyCurve)
{
    BucketStats stats(4);
    const auto curve = ConfidenceCurve::fromBucketStats(stats);
    EXPECT_TRUE(curve.points().empty());
    EXPECT_DOUBLE_EQ(curve.mispredCoverageAt(0.5), 0.0);
}

TEST(CurveTest, EmptyCurveReadsZeroInBothDirections)
{
    // An empty curve recorded nothing, so both readings must agree:
    // no coverage is achieved (forward) and no branch fraction is
    // needed for any target (inverse) — refFractionForCoverage used
    // to fall through to 1.0 here.
    const ConfidenceCurve curve =
        ConfidenceCurve::fromBucketStats(BucketStats(4));
    for (const double x : {0.0, 0.2, 0.5, 1.0}) {
        EXPECT_DOUBLE_EQ(curve.mispredCoverageAt(x), 0.0) << x;
        EXPECT_DOUBLE_EQ(curve.refFractionForCoverage(x), 0.0) << x;
    }
}

TEST(CurveTest, SinglePointCurveReadsBothDirections)
{
    // One populated bucket collapses the curve to the single point
    // (1, 1); both directions interpolate linearly from (0, 0).
    BucketStats stats(4);
    for (int i = 0; i < 100; ++i)
        stats.record(2, i < 25);
    const auto curve = ConfidenceCurve::fromBucketStats(stats);
    ASSERT_EQ(curve.points().size(), 1u);
    EXPECT_NEAR(curve.points()[0].refFraction, 1.0, 1e-12);
    EXPECT_NEAR(curve.points()[0].mispredFraction, 1.0, 1e-12);

    EXPECT_NEAR(curve.mispredCoverageAt(0.5), 0.5, 1e-12);
    EXPECT_NEAR(curve.mispredCoverageAt(1.0), 1.0, 1e-12);
    EXPECT_NEAR(curve.refFractionForCoverage(0.5), 0.5, 1e-12);
    EXPECT_NEAR(curve.refFractionForCoverage(1.0), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(curve.mispredCoverageAt(0.0), 0.0);
    EXPECT_DOUBLE_EQ(curve.refFractionForCoverage(0.0), 0.0);
}

TEST(CurveTest, ThinningKeepsEndpointsAndSpacing)
{
    BucketStats stats(100);
    for (int b = 0; b < 100; ++b) {
        for (int i = 0; i < 10; ++i)
            stats.record(b, i < (100 - b) % 7);
    }
    const auto curve = ConfidenceCurve::fromBucketStats(stats);
    const auto thin = curve.thinnedPoints(0.025);
    EXPECT_LT(thin.size(), curve.points().size());
    EXPECT_EQ(thin.front().bucket, curve.points().front().bucket);
    EXPECT_EQ(thin.back().bucket, curve.points().back().bucket);
}

TEST(CurveTest, SparseStatsPathWorks)
{
    SparseBucketStats stats;
    stats.recordAggregate(0xAAA, 100, 50);
    stats.recordAggregate(0xBBB, 900, 10);
    const auto curve = ConfidenceCurve::fromSparseStats(stats);
    ASSERT_EQ(curve.points().size(), 2u);
    EXPECT_EQ(curve.points()[0].bucket, 0xAAAu);
}

TEST(CurveTest, DeterministicTieBreakOnEqualRates)
{
    BucketStats stats(3);
    for (int b = 0; b < 3; ++b) {
        for (int i = 0; i < 10; ++i)
            stats.record(b, i < 5);
    }
    const auto curve = ConfidenceCurve::fromBucketStats(stats);
    EXPECT_EQ(curve.points()[0].bucket, 0u);
    EXPECT_EQ(curve.points()[1].bucket, 1u);
    EXPECT_EQ(curve.points()[2].bucket, 2u);
}

} // namespace
} // namespace confsim
