/** @file Unit tests for Table-1-style counter reports. */

#include "metrics/table_report.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace confsim {
namespace {

BucketStats
counterStats()
{
    // Counter values 0..4 with decreasing rates, mimicking Table 1.
    BucketStats stats(5);
    const int refs[5] = {100, 150, 200, 250, 2000};
    const int misses[5] = {40, 30, 20, 10, 20};
    for (int v = 0; v < 5; ++v) {
        for (int i = 0; i < refs[v]; ++i)
            stats.record(v, i < misses[v]);
    }
    return stats;
}

TEST(TableReportTest, RowsInCounterOrder)
{
    const auto rows = buildCounterTable(counterStats());
    ASSERT_EQ(rows.size(), 5u);
    for (std::size_t v = 0; v < 5; ++v)
        EXPECT_EQ(rows[v].counterValue, v);
}

TEST(TableReportTest, RatesAndPercentages)
{
    const auto rows = buildCounterTable(counterStats());
    EXPECT_NEAR(rows[0].mispredictRate, 0.40, 1e-12);
    const double total_refs = 2700.0;
    const double total_misses = 120.0;
    EXPECT_NEAR(rows[0].refPercent, 100.0 * 100.0 / total_refs, 1e-9);
    EXPECT_NEAR(rows[0].mispredictPercent,
                100.0 * 40.0 / total_misses, 1e-9);
}

TEST(TableReportTest, CumulativeColumnsAccumulateDownTheTable)
{
    const auto rows = buildCounterTable(counterStats());
    double cum_refs = 0.0;
    double cum_misses = 0.0;
    for (const auto &row : rows) {
        EXPECT_GE(row.cumRefPercent, cum_refs - 1e-9);
        EXPECT_GE(row.cumMispredictPercent, cum_misses - 1e-9);
        cum_refs = row.cumRefPercent;
        cum_misses = row.cumMispredictPercent;
    }
    EXPECT_NEAR(cum_refs, 100.0, 1e-9);
    EXPECT_NEAR(cum_misses, 100.0, 1e-9);
}

TEST(TableReportTest, PaperReadingCountZeroIsolatesItsMisses)
{
    // "If we were to use a count value of 0 to define the low
    // confidence set, then we could isolate ..." — row 0's cumulative
    // cells are exactly its own percentages.
    const auto rows = buildCounterTable(counterStats());
    EXPECT_NEAR(rows[0].cumRefPercent, rows[0].refPercent, 1e-12);
    EXPECT_NEAR(rows[0].cumMispredictPercent,
                rows[0].mispredictPercent, 1e-12);
}

TEST(TableReportTest, EmptyBucketsRenderAsZeros)
{
    BucketStats stats(3);
    stats.record(1, true);
    const auto rows = buildCounterTable(stats);
    EXPECT_DOUBLE_EQ(rows[0].refPercent, 0.0);
    EXPECT_DOUBLE_EQ(rows[2].cumRefPercent, 100.0);
}

TEST(TableReportTest, RenderContainsHeaderAndEveryRow)
{
    const auto rows = buildCounterTable(counterStats());
    const std::string text = renderCounterTable(rows);
    EXPECT_NE(text.find("Count"), std::string::npos);
    EXPECT_NE(text.find("Cum.% Mispreds."), std::string::npos);
    // One line per row plus the header.
    const auto lines = std::count(text.begin(), text.end(), '\n');
    EXPECT_EQ(lines, 6);
}

} // namespace
} // namespace confsim
