/** @file Unit tests for repeated-subsampling interval estimates. */

#include "metrics/interval_estimate.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(IntervalEstimateTest, StudentTTableEndpoints)
{
    EXPECT_NEAR(studentT95(1), 12.706, 1e-3);
    EXPECT_NEAR(studentT95(2), 4.303, 1e-3);
    EXPECT_NEAR(studentT95(4), 2.776, 1e-3);
    EXPECT_NEAR(studentT95(30), 2.042, 1e-3);
    // Beyond the table the normal quantile takes over.
    EXPECT_NEAR(studentT95(31), 1.96, 1e-9);
    EXPECT_NEAR(studentT95(10000), 1.96, 1e-9);
}

TEST(IntervalEstimateTest, StudentTZeroDofIsFatal)
{
    EXPECT_THROW(studentT95(0), std::runtime_error);
}

TEST(IntervalEstimateTest, KnownSeriesMeanAndError)
{
    // n = 4, mean 5, sample variance 20/3, SE = sqrt(20/12).
    const std::vector<double> values = {2.0, 4.0, 6.0, 8.0};
    const IntervalEstimate est = estimateFromSubsamples(values);
    EXPECT_EQ(est.subsamples, 4u);
    EXPECT_NEAR(est.mean, 5.0, 1e-12);
    EXPECT_NEAR(est.stdError, std::sqrt(20.0 / 12.0), 1e-12);
    EXPECT_NEAR(est.ciHalf, studentT95(3) * est.stdError, 1e-12);
    EXPECT_NEAR(est.ciLow(), est.mean - est.ciHalf, 1e-12);
    EXPECT_NEAR(est.ciHigh(), est.mean + est.ciHalf, 1e-12);
}

TEST(IntervalEstimateTest, SingleValueHasZeroErrorBars)
{
    const IntervalEstimate est = estimateFromSubsamples({0.25});
    EXPECT_EQ(est.subsamples, 1u);
    EXPECT_DOUBLE_EQ(est.mean, 0.25);
    EXPECT_DOUBLE_EQ(est.stdError, 0.0);
    EXPECT_DOUBLE_EQ(est.ciHalf, 0.0);
    EXPECT_TRUE(est.contains(0.25));
    EXPECT_FALSE(est.contains(0.26));
}

TEST(IntervalEstimateTest, EmptySeriesIsFatal)
{
    EXPECT_THROW(estimateFromSubsamples({}), std::runtime_error);
}

TEST(IntervalEstimateTest, ContainsIsInclusive)
{
    const IntervalEstimate est =
        estimateFromSubsamples({1.0, 2.0, 3.0});
    EXPECT_TRUE(est.contains(est.ciLow()));
    EXPECT_TRUE(est.contains(est.ciHigh()));
    EXPECT_TRUE(est.contains(est.mean));
    EXPECT_FALSE(est.contains(est.ciLow() - 1e-9));
    EXPECT_FALSE(est.contains(est.ciHigh() + 1e-9));
}

TEST(IntervalEstimateTest, IdenticalValuesCollapseTheInterval)
{
    const IntervalEstimate est =
        estimateFromSubsamples({0.5, 0.5, 0.5, 0.5, 0.5});
    EXPECT_DOUBLE_EQ(est.mean, 0.5);
    EXPECT_DOUBLE_EQ(est.stdError, 0.0);
    EXPECT_DOUBLE_EQ(est.ciHalf, 0.0);
}

} // namespace
} // namespace confsim
