/** @file Unit tests for the simulation driver. */

#include "sim/driver.h"

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "predictor/bimodal.h"
#include "predictor/static_predictor.h"
#include "trace/vector_trace_source.h"

namespace confsim {
namespace {

std::vector<BranchRecord>
repeated(std::uint64_t pc, const std::vector<bool> &outcomes)
{
    std::vector<BranchRecord> records;
    for (bool taken : outcomes)
        records.push_back({pc, pc + 16, taken, BranchType::Conditional});
    return records;
}

TEST(DriverTest, CountsBranchesAndMispredicts)
{
    // Static always-taken predictor on a known stream: misses =
    // not-taken outcomes.
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    VectorTraceSource source(
        repeated(0x1000, {true, false, true, false, false}));
    SimulationDriver driver(pred, {});
    const auto result = driver.run(source);
    EXPECT_EQ(result.branches, 5u);
    EXPECT_EQ(result.mispredicts, 3u);
    EXPECT_DOUBLE_EQ(result.mispredictRate(), 0.6);
}

TEST(DriverTest, SkipsNonConditionalRecords)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    VectorTraceSource source({
        {0x100, 0x200, true, BranchType::Call},
        {0x104, 0x200, true, BranchType::Conditional},
        {0x108, 0x200, true, BranchType::Return},
    });
    SimulationDriver driver(pred, {});
    const auto result = driver.run(source);
    EXPECT_EQ(result.branches, 1u);
}

TEST(DriverTest, EstimatorStatsMatchPredictorAccuracy)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 4, 0);
    VectorTraceSource source(
        repeated(0x1000, {true, true, false, true, true}));
    SimulationDriver driver(pred, {&est});
    const auto result = driver.run(source);
    ASSERT_EQ(result.estimatorStats.size(), 1u);
    const BucketStats &stats = result.estimatorStats[0];
    EXPECT_DOUBLE_EQ(stats.totalRefs(), 5.0);
    EXPECT_DOUBLE_EQ(stats.totalMispredicts(), 1.0);
    // Bucket sequence: counter goes 0,1,2,(miss->0),1 — so buckets
    // read are 0,1,2,0(after reset? no: read before update).
    // reads: 0 (then +1), 1 (then +1), 2 (miss, then reset), 0, 1.
    EXPECT_DOUBLE_EQ(stats[0].refs, 2.0);
    EXPECT_DOUBLE_EQ(stats[1].refs, 2.0);
    EXPECT_DOUBLE_EQ(stats[2].refs, 1.0);
    EXPECT_DOUBLE_EQ(stats[2].mispredicts, 1.0);
}

TEST(DriverTest, StaticProfileCollectsPerPcCounts)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    DriverOptions options;
    options.profileStatic = true;
    std::vector<BranchRecord> records =
        repeated(0x1000, {true, false, true});
    const auto more = repeated(0x2000, {false, false});
    records.insert(records.end(), more.begin(), more.end());
    VectorTraceSource source(records);
    SimulationDriver driver(pred, {}, options);
    const auto result = driver.run(source);
    EXPECT_EQ(result.staticProfile.size(), 2u);
    EXPECT_EQ(result.staticProfile.entries().at(0x1000).executions, 3u);
    EXPECT_EQ(result.staticProfile.entries().at(0x1000).mispredictions,
              1u);
    EXPECT_EQ(result.staticProfile.entries().at(0x2000).mispredictions,
              2u);
}

TEST(DriverTest, ContextCarriesArchitecturalHistory)
{
    // With BHR indexing and a width-4 BHR, two branches with the same
    // PC but different preceding outcomes hit different CT entries.
    // Construct a stream where the second visit to PC 0x1000 has
    // different history from the first and verify the estimator's
    // bucket statistics spread across entries.
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCirConfidence est(IndexScheme::Bhr, 16, 4,
                              CirReduction::RawPattern, CtInit::Zeros);
    std::vector<BranchRecord> records;
    // First: history 0000 when reaching 0x1000 (all prior taken=F).
    records.push_back({0x2000, 0, false, BranchType::Conditional});
    records.push_back({0x1000, 0, false, BranchType::Conditional});
    // Then: history contains a taken.
    records.push_back({0x2000, 0, true, BranchType::Conditional});
    records.push_back({0x1000, 0, false, BranchType::Conditional});
    VectorTraceSource source(records);
    SimulationDriver driver(pred, {&est});
    const auto result = driver.run(source);
    // All four references landed somewhere; the two 0x1000 visits
    // were recorded against different CIR-table entries, so at least
    // 2 distinct buckets were observed in total.
    EXPECT_DOUBLE_EQ(result.estimatorStats[0].totalRefs(), 4.0);
}

TEST(DriverTest, MultipleEstimatorsRunIndependently)
{
    BimodalPredictor pred(256);
    OneLevelCounterConfidence sat(IndexScheme::Pc, 64,
                                  CounterKind::Saturating, 16, 0);
    OneLevelCounterConfidence reset(IndexScheme::Pc, 64,
                                    CounterKind::Resetting, 16, 0);
    VectorTraceSource source(repeated(
        0x1000, std::vector<bool>(50, true)));
    SimulationDriver driver(pred, {&sat, &reset});
    const auto result = driver.run(source);
    ASSERT_EQ(result.estimatorStats.size(), 2u);
    EXPECT_DOUBLE_EQ(result.estimatorStats[0].totalRefs(), 50.0);
    EXPECT_DOUBLE_EQ(result.estimatorStats[1].totalRefs(), 50.0);
}


TEST(DriverTest, WarmupExcludesEarlyBranchesFromStats)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    DriverOptions options;
    options.warmupBranches = 3;
    // 5 branches: first 3 (T, N, T) are warmup; recorded: N, N.
    VectorTraceSource source(
        repeated(0x1000, {true, false, true, false, false}));
    SimulationDriver driver(pred, {}, options);
    const auto result = driver.run(source);
    EXPECT_EQ(result.branches, 2u);
    EXPECT_EQ(result.mispredicts, 2u);
}

TEST(DriverTest, WarmupStillTrainsStructures)
{
    // The predictor must have learned during warmup: a bimodal
    // predictor sees 10 not-taken warmup branches, so the recorded
    // region is predicted correctly from its first branch.
    BimodalPredictor pred(256);
    DriverOptions options;
    options.warmupBranches = 10;
    VectorTraceSource source(
        repeated(0x1000, std::vector<bool>(20, false)));
    SimulationDriver driver(pred, {}, options);
    const auto result = driver.run(source);
    EXPECT_EQ(result.branches, 10u);
    EXPECT_EQ(result.mispredicts, 0u);
}

TEST(DriverTest, ContextSwitchFlushesPredictor)
{
    // A bimodal predictor fully trained to not-taken would predict the
    // stream perfectly; flushing every 4 branches forces it back to
    // weakly-taken, so every post-switch window restarts with misses.
    BimodalPredictor pred(256);
    DriverOptions options;
    options.contextSwitchInterval = 4;
    VectorTraceSource source(
        repeated(0x1000, std::vector<bool>(40, false)));
    SimulationDriver driver(pred, {}, options);
    const auto result = driver.run(source);

    BimodalPredictor pred2(256);
    VectorTraceSource source2(
        repeated(0x1000, std::vector<bool>(40, false)));
    SimulationDriver undisturbed(pred2, {});
    const auto baseline = undisturbed.run(source2);

    EXPECT_GT(result.mispredicts, baseline.mispredicts);
    // Weakly-taken init mispredicts the first not-taken branch of
    // every 4-branch window: 10 windows.
    EXPECT_EQ(result.mispredicts, 10u);
}

TEST(DriverTest, ContextSwitchFlushesEstimators)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 16, 0);
    DriverOptions options;
    options.contextSwitchInterval = 8;
    options.flushPredictorOnSwitch = false;
    VectorTraceSource source(
        repeated(0x1000, std::vector<bool>(32, true)));
    SimulationDriver driver(pred, {&est}, options);
    const auto result = driver.run(source);
    // The counter restarts at 0 after every 8 branches, so no bucket
    // beyond 7 is ever read.
    const BucketStats &stats = result.estimatorStats[0];
    for (std::uint64_t b = 8; b <= 16; ++b)
        EXPECT_DOUBLE_EQ(stats[b].refs, 0.0) << b;
    EXPECT_DOUBLE_EQ(stats[0].refs, 4.0); // one per window
}

TEST(DriverTest, SelectiveFlushLeavesEstimatorsAlone)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    OneLevelCounterConfidence est(IndexScheme::Pc, 64,
                                  CounterKind::Resetting, 16, 0);
    DriverOptions options;
    options.contextSwitchInterval = 8;
    options.flushEstimatorsOnSwitch = false;
    VectorTraceSource source(
        repeated(0x1000, std::vector<bool>(32, true)));
    SimulationDriver driver(pred, {&est}, options);
    const auto result = driver.run(source);
    // Without estimator flushes the counter keeps climbing past 8.
    const BucketStats &stats = result.estimatorStats[0];
    EXPECT_GT(stats[10].refs, 0.0);
}

} // namespace
} // namespace confsim
