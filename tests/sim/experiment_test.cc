/** @file Unit tests for experiment plumbing (configs, curves, CSV). */

#include "sim/experiment.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(ExperimentEnvTest, CliDefaultsAndFast)
{
    ExperimentEnv env;
    const char *argv[] = {"bench"};
    ASSERT_TRUE(ExperimentEnv::fromCli(1, argv, "test", env));
    EXPECT_EQ(env.branchesPerBenchmark, 2'000'000u);
    EXPECT_TRUE(env.fullSuite);

    ExperimentEnv fast;
    const char *argv2[] = {"bench", "--fast"};
    ASSERT_TRUE(ExperimentEnv::fromCli(2, argv2, "test", fast));
    EXPECT_FALSE(fast.fullSuite);
    EXPECT_LE(fast.branchesPerBenchmark, 200'000u);
}

TEST(ExperimentEnvTest, SuiteSizeFollowsFullFlag)
{
    ExperimentEnv env;
    env.fullSuite = true;
    EXPECT_EQ(env.makeSuite().size(), 9u);
    env.fullSuite = false;
    EXPECT_LT(env.makeSuite().size(), 9u);
}

TEST(ExperimentConfigTest, FactoriesProduceFreshInstances)
{
    const auto config = oneLevelIdealConfig(IndexScheme::PcXorBhr, 256,
                                            8);
    auto a = config.make();
    auto b = config.make();
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->name(), b->name());
    EXPECT_EQ(config.label, "PCxorBHR");
}

TEST(ExperimentConfigTest, PredictorFactories)
{
    auto large = largeGshareFactory()();
    auto small = smallGshareFactory()();
    EXPECT_EQ(large->name(), "gshare-65536x2b-h16");
    EXPECT_EQ(small->name(), "gshare-4096x2b-h12");
}

TEST(ExperimentConfigTest, LabelsMatchPaperFigureKeys)
{
    EXPECT_EQ(oneLevelOnesCountConfig(IndexScheme::PcXorBhr).label,
              "PCxorBHR.1Cnt");
    EXPECT_EQ(oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                    CounterKind::Saturating)
                  .label,
              "PCxorBHR.Sat");
    EXPECT_EQ(oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                    CounterKind::Resetting)
                  .label,
              "PCxorBHR.Reset");
    EXPECT_EQ(twoLevelConfig(IndexScheme::PcXorBhr,
                             SecondLevelIndex::Cir)
                  .label,
              "PCxorBHR-CIR");
}

class ExperimentRunTest : public ::testing::Test
{
  protected:
    static const SuiteRunResult &
    sharedResult()
    {
        static const SuiteRunResult result = [] {
            ExperimentEnv env;
            env.branchesPerBenchmark = 30000;
            env.fullSuite = false;
            return runSuiteExperiment(
                env, smallGshareFactory(),
                {oneLevelCounterConfig(IndexScheme::PcXorBhr,
                                       CounterKind::Resetting, 4096)});
        }();
        return result;
    }
};

TEST_F(ExperimentRunTest, ProducesCurvesWithMassAtOne)
{
    const auto &result = sharedResult();
    const auto curve = compositeCurve(result, 0, "reset");
    ASSERT_FALSE(curve.curve.points().empty());
    EXPECT_NEAR(curve.curve.points().back().refFraction, 1.0, 1e-9);
    EXPECT_NEAR(curve.curve.points().back().mispredFraction, 1.0,
                1e-9);
    // Counter estimators have at most 17 buckets.
    EXPECT_LE(curve.curve.points().size(), 17u);
}

TEST_F(ExperimentRunTest, StaticCurveAvailable)
{
    const auto named = staticCompositeCurve(sharedResult());
    EXPECT_EQ(named.name, "static");
    EXPECT_GT(named.curve.points().size(), 100u);
}

TEST_F(ExperimentRunTest, PlotRendersAllSeries)
{
    const auto &result = sharedResult();
    std::vector<NamedCurve> curves = {compositeCurve(result, 0, "r")};
    curves.push_back(staticCompositeCurve(result));
    const std::string plot = plotCurves("title", curves);
    EXPECT_NE(plot.find("title"), std::string::npos);
    EXPECT_NE(plot.find("static"), std::string::npos);
}

TEST_F(ExperimentRunTest, CsvHasHeaderAndRows)
{
    const auto &result = sharedResult();
    const std::string path =
        ::testing::TempDir() + "/confsim_experiment_test.csv";
    writeCurvesCsv(path, {compositeCurve(result, 0, "reset")});
    std::ifstream in(path);
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header, "series,bucket,bucket_rate,ref_pct,mispred_pct");
    std::string line;
    int rows = 0;
    while (std::getline(in, line))
        ++rows;
    EXPECT_GT(rows, 0);
    std::remove(path.c_str());
}

} // namespace
} // namespace confsim
