/** @file Unit tests for the suite runner. */

#include "sim/suite_runner.h"

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "predictor/gshare.h"

namespace confsim {
namespace {

SuiteRunResult
runSmall(std::uint64_t branches, bool profile_static = true)
{
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"jpeg", "real_gcc"},
                                                 branches));
    DriverOptions options;
    options.profileStatic = profile_static;
    return runner.run(
        [] {
            return std::make_unique<GsharePredictor>(4096, 12);
        },
        [] {
            std::vector<std::unique_ptr<ConfidenceEstimator>> out;
            out.push_back(std::make_unique<OneLevelCounterConfidence>(
                IndexScheme::PcXorBhr, 4096, CounterKind::Resetting,
                16, 0));
            return out;
        },
        options);
}

TEST(SuiteRunnerTest, RunsEveryBenchmark)
{
    const auto result = runSmall(20000);
    ASSERT_EQ(result.perBenchmark.size(), 2u);
    EXPECT_EQ(result.perBenchmark[0].name, "jpeg");
    EXPECT_EQ(result.perBenchmark[1].name, "real_gcc");
    for (const auto &bench : result.perBenchmark) {
        EXPECT_EQ(bench.branches, 20000u);
        EXPECT_GT(bench.mispredicts, 0u);
    }
}

TEST(SuiteRunnerTest, EstimatorNamesReported)
{
    const auto result = runSmall(5000);
    ASSERT_EQ(result.estimatorNames.size(), 1u);
    EXPECT_EQ(result.estimatorNames[0], "1lvl-PCxorBHR-reset16-4096");
}

TEST(SuiteRunnerTest, CompositeRateIsEqualWeightMean)
{
    const auto result = runSmall(20000);
    const double mean = (result.perBenchmark[0].mispredictRate +
                         result.perBenchmark[1].mispredictRate) /
                        2.0;
    EXPECT_NEAR(result.compositeMispredictRate, mean, 1e-12);
}

TEST(SuiteRunnerTest, CompositeStatsGiveEqualMassPerBenchmark)
{
    const auto result = runSmall(20000);
    ASSERT_EQ(result.compositeEstimatorStats.size(), 1u);
    const auto &composite = result.compositeEstimatorStats[0];
    // Two benchmarks, each scaled to 1e6 references.
    EXPECT_NEAR(composite.totalRefs(), 2e6, 1.0);
}

TEST(SuiteRunnerTest, StaticKeysDoNotCollideAcrossBenchmarks)
{
    const auto result = runSmall(20000);
    std::size_t per_bench_total = 0;
    for (const auto &bench : result.perBenchmark)
        per_bench_total += bench.staticStats.size();
    // The composite preserves every distinct (benchmark, pc) key.
    EXPECT_EQ(result.compositeStaticStats.size(), per_bench_total);
}

TEST(SuiteRunnerTest, StaticProfilingOffLeavesStatsEmpty)
{
    const auto result = runSmall(5000, false);
    EXPECT_EQ(result.compositeStaticStats.size(), 0u);
}

TEST(SuiteRunnerTest, JpegPredictsBetterThanGcc)
{
    // The Fig. 9 property at suite-runner level.
    const auto result = runSmall(100000);
    EXPECT_LT(result.perBenchmark[0].mispredictRate,
              result.perBenchmark[1].mispredictRate);
}

TEST(SuiteRunnerTest, NullPredictorFactoryIsFatal)
{
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"jpeg"}, 100));
    EXPECT_THROW(
        runner.run([] { return std::unique_ptr<BranchPredictor>{}; },
                   [] {
                       return std::vector<
                           std::unique_ptr<ConfidenceEstimator>>{};
                   }),
        std::runtime_error);
}

} // namespace
} // namespace confsim
