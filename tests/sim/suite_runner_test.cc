/** @file Unit tests for the suite runner. */

#include "sim/suite_runner.h"

#include <atomic>
#include <cmath>

#include "sim/sweep_engine.h"

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "predictor/gshare.h"
#include "fault/fault_injection.h"

namespace confsim {
namespace {

PredictorFactory
smallPredictor()
{
    return [] { return std::make_unique<GsharePredictor>(4096, 12); };
}

EstimatorSetFactory
smallEstimators()
{
    return [] {
        std::vector<std::unique_ptr<ConfidenceEstimator>> out;
        out.push_back(std::make_unique<OneLevelCounterConfidence>(
            IndexScheme::PcXorBhr, 4096, CounterKind::Resetting, 16,
            0));
        return out;
    };
}

SuiteRunResult
runSmall(std::uint64_t branches, bool profile_static = true)
{
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"jpeg", "real_gcc"},
                                                 branches));
    DriverOptions options;
    options.profileStatic = profile_static;
    return runner.run(
        [] {
            return std::make_unique<GsharePredictor>(4096, 12);
        },
        [] {
            std::vector<std::unique_ptr<ConfidenceEstimator>> out;
            out.push_back(std::make_unique<OneLevelCounterConfidence>(
                IndexScheme::PcXorBhr, 4096, CounterKind::Resetting,
                16, 0));
            return out;
        },
        options);
}

TEST(SuiteRunnerTest, RunsEveryBenchmark)
{
    const auto result = runSmall(20000);
    ASSERT_EQ(result.perBenchmark.size(), 2u);
    EXPECT_EQ(result.perBenchmark[0].name, "jpeg");
    EXPECT_EQ(result.perBenchmark[1].name, "real_gcc");
    for (const auto &bench : result.perBenchmark) {
        EXPECT_EQ(bench.branches, 20000u);
        EXPECT_GT(bench.mispredicts, 0u);
    }
}

TEST(SuiteRunnerTest, AttemptsIsOneOnFirstTrySuccess)
{
    const auto result = runSmall(5000);
    for (const auto &bench : result.perBenchmark) {
        EXPECT_TRUE(bench.error.empty());
        EXPECT_EQ(bench.attempts, 1u) << bench.name;
        EXPECT_GT(bench.wallMs, 0.0) << bench.name;
    }
    EXPECT_GT(result.wallMs, 0.0);
}

TEST(SuiteRunnerTest, EstimatorNamesReported)
{
    const auto result = runSmall(5000);
    ASSERT_EQ(result.estimatorNames.size(), 1u);
    EXPECT_EQ(result.estimatorNames[0], "1lvl-PCxorBHR-reset16-4096");
}

TEST(SuiteRunnerTest, CompositeRateIsEqualWeightMean)
{
    const auto result = runSmall(20000);
    const double mean = (result.perBenchmark[0].mispredictRate +
                         result.perBenchmark[1].mispredictRate) /
                        2.0;
    EXPECT_NEAR(result.compositeMispredictRate, mean, 1e-12);
}

TEST(SuiteRunnerTest, CompositeStatsGiveEqualMassPerBenchmark)
{
    const auto result = runSmall(20000);
    ASSERT_EQ(result.compositeEstimatorStats.size(), 1u);
    const auto &composite = result.compositeEstimatorStats[0];
    // Two benchmarks, each scaled to 1e6 references.
    EXPECT_NEAR(composite.totalRefs(), 2e6, 1.0);
}

/** Truncates the wrapped source after a fixed number of records. */
class TruncatingSource : public TraceSource
{
  public:
    TruncatingSource(std::unique_ptr<TraceSource> inner,
                     std::uint64_t limit)
        : inner_(std::move(inner)), limit_(limit)
    {
    }

    bool
    next(BranchRecord &record) override
    {
        if (produced_ >= limit_ || !inner_->next(record))
            return false;
        ++produced_;
        return true;
    }

    void
    reset() override
    {
        inner_->reset();
        produced_ = 0;
    }

  private:
    std::unique_ptr<TraceSource> inner_;
    std::uint64_t limit_ = 0;
    std::uint64_t produced_ = 0;
};

/** Truncate benchmark 0 below the warmup window: it completes without
 * error but records zero branches. */
SourceWrapper
truncateFirstBenchmark(std::uint64_t limit)
{
    return [limit](std::size_t bench,
                   std::unique_ptr<TraceSource> inner)
               -> std::unique_ptr<TraceSource> {
        if (bench == 0) {
            return std::make_unique<TruncatingSource>(std::move(inner),
                                                      limit);
        }
        return inner;
    };
}

TEST(SuiteRunnerTest, ZeroRecordBenchmarkExcludedFromComposites)
{
    SuiteRunner runner(
        BenchmarkSuite::ibsSubset({"jpeg", "real_gcc"}, 5000));
    runner.setSourceWrapper(truncateFirstBenchmark(500));
    DriverOptions options;
    options.warmupBranches = 1000;
    const auto result =
        runner.run(smallPredictor(), smallEstimators(), options);

    ASSERT_EQ(result.perBenchmark.size(), 2u);
    EXPECT_TRUE(result.perBenchmark[0].error.empty());
    EXPECT_EQ(result.perBenchmark[0].branches, 0u);
    EXPECT_GT(result.perBenchmark[1].branches, 0u);

    // Nothing failed, but the composites cover only the recorded
    // benchmark — flagged via the degraded-composite marker.
    EXPECT_FALSE(result.degraded);
    EXPECT_EQ(result.zeroRecordBenchmarks, 1u);
    EXPECT_TRUE(result.compositeDegraded);
    EXPECT_NEAR(result.compositeMispredictRate,
                result.perBenchmark[1].mispredictRate, 1e-12);
    ASSERT_EQ(result.compositeEstimatorStats.size(), 1u);
    // One benchmark scaled to the 1e6 common mass, not two.
    EXPECT_NEAR(result.compositeEstimatorStats[0].totalRefs(), 1e6,
                1.0);
}

TEST(SuiteRunnerTest, AllZeroRecordBenchmarksGiveZeroComposite)
{
    SuiteRunner runner(
        BenchmarkSuite::ibsSubset({"jpeg", "real_gcc"}, 2000));
    DriverOptions options;
    options.warmupBranches = 10000; // warmup covers the whole trace
    const auto result =
        runner.run(smallPredictor(), smallEstimators(), options);

    for (const auto &bench : result.perBenchmark) {
        EXPECT_TRUE(bench.error.empty()) << bench.name;
        EXPECT_EQ(bench.branches, 0u) << bench.name;
    }
    EXPECT_FALSE(result.degraded);
    EXPECT_EQ(result.zeroRecordBenchmarks, 2u);
    EXPECT_TRUE(result.compositeDegraded);
    EXPECT_EQ(result.compositeMispredictRate, 0.0);
    EXPECT_FALSE(std::isnan(result.compositeMispredictRate));
    EXPECT_TRUE(result.compositeEstimatorStats.empty());
}

TEST(SuiteRunnerTest, SweepZeroRecordBenchmarkExcludedFromComposites)
{
    SuiteRunner runner(
        BenchmarkSuite::ibsSubset({"jpeg", "real_gcc"}, 5000));
    runner.setSourceWrapper(truncateFirstBenchmark(500));
    DriverOptions options;
    options.warmupBranches = 1000;
    std::vector<SweepConfiguration> configs;
    configs.push_back(
        {"a", smallPredictor(), smallEstimators()});
    configs.push_back(
        {"b", smallPredictor(), smallEstimators()});
    const auto sweep =
        runner.runSweep(configs, options, SweepOptions{});

    ASSERT_EQ(sweep.perConfig.size(), 2u);
    for (const auto &config_result : sweep.perConfig) {
        ASSERT_EQ(config_result.perBenchmark.size(), 2u);
        EXPECT_EQ(config_result.perBenchmark[0].branches, 0u);
        EXPECT_FALSE(config_result.degraded);
        EXPECT_EQ(config_result.zeroRecordBenchmarks, 1u);
        EXPECT_TRUE(config_result.compositeDegraded);
        EXPECT_NEAR(
            config_result.compositeMispredictRate,
            config_result.perBenchmark[1].mispredictRate, 1e-12);
        // The per-config wall share stays finite for every entry.
        for (const auto &bench : config_result.perBenchmark)
            EXPECT_TRUE(std::isfinite(bench.wallMs)) << bench.name;
    }
}

TEST(SuiteRunnerTest, StaticKeysDoNotCollideAcrossBenchmarks)
{
    const auto result = runSmall(20000);
    std::size_t per_bench_total = 0;
    for (const auto &bench : result.perBenchmark)
        per_bench_total += bench.staticStats.size();
    // The composite preserves every distinct (benchmark, pc) key.
    EXPECT_EQ(result.compositeStaticStats.size(), per_bench_total);
}

TEST(SuiteRunnerTest, StaticProfilingOffLeavesStatsEmpty)
{
    const auto result = runSmall(5000, false);
    EXPECT_EQ(result.compositeStaticStats.size(), 0u);
}

TEST(SuiteRunnerTest, JpegPredictsBetterThanGcc)
{
    // The Fig. 9 property at suite-runner level.
    const auto result = runSmall(100000);
    EXPECT_LT(result.perBenchmark[0].mispredictRate,
              result.perBenchmark[1].mispredictRate);
}

TEST(SuiteRunnerTest, NullPredictorFactoryIsFatal)
{
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"jpeg"}, 100));
    EXPECT_THROW(
        runner.run([] { return std::unique_ptr<BranchPredictor>{}; },
                   [] {
                       return std::vector<
                           std::unique_ptr<ConfidenceEstimator>>{};
                   }),
        std::runtime_error);
}

// ---------------------------------------------------------------------
// RunPolicy: error isolation, retries, watchdog.

/** Wrap benchmark @p faulty_bench so its stream throws mid-run. */
SourceWrapper
failingWrapper(std::size_t faulty_bench)
{
    return [faulty_bench](std::size_t bench,
                          std::unique_ptr<TraceSource> inner)
               -> std::unique_ptr<TraceSource> {
        if (bench != faulty_bench)
            return inner;
        FaultSpec spec;
        spec.failAfter = 500;
        return std::make_unique<FaultInjectingTraceSource>(
            std::move(inner), spec);
    };
}

TEST(SuiteRunnerTest, FailFastThrowsOnInjectedFault)
{
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"jpeg", "real_gcc"},
                                                 5000));
    runner.setSourceWrapper(failingWrapper(1));
    EXPECT_THROW(runner.run(smallPredictor(), smallEstimators()),
                 std::runtime_error);
}

TEST(SuiteRunnerTest, ContinueOnErrorIsolatesTheFailure)
{
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"jpeg", "real_gcc"},
                                                 5000));
    runner.setSourceWrapper(failingWrapper(0));
    const auto result =
        runner.run(smallPredictor(), smallEstimators(), {},
                   RunPolicy::continueOnError());

    ASSERT_EQ(result.perBenchmark.size(), 2u);
    EXPECT_TRUE(result.perBenchmark[0].failed());
    EXPECT_NE(result.perBenchmark[0].error.find("injected fault"),
              std::string::npos);
    EXPECT_FALSE(result.perBenchmark[1].failed());
    EXPECT_TRUE(result.degraded);
    EXPECT_EQ(result.failedBenchmarks(), 1u);

    // Composites cover exactly the surviving benchmark.
    EXPECT_DOUBLE_EQ(result.compositeMispredictRate,
                     result.perBenchmark[1].mispredictRate);
    ASSERT_EQ(result.compositeEstimatorStats.size(), 1u);
    EXPECT_NEAR(result.compositeEstimatorStats[0].totalRefs(), 1e6,
                1.0);
    ASSERT_EQ(result.estimatorNames.size(), 1u);
    EXPECT_EQ(result.estimatorNames[0], "1lvl-PCxorBHR-reset16-4096");
}

TEST(SuiteRunnerTest, AllBenchmarksFailingGivesEmptyComposites)
{
    // When every benchmark fails under continue-on-error the composite
    // pass has zero survivors; it must report a clean degenerate
    // result (zero rate, empty composites), never NaN from a 0/0.
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"jpeg", "real_gcc"},
                                                 5000));
    runner.setSourceWrapper(
        [](std::size_t, std::unique_ptr<TraceSource> inner)
            -> std::unique_ptr<TraceSource> {
            FaultSpec spec;
            spec.failAfter = 500;
            return std::make_unique<FaultInjectingTraceSource>(
                std::move(inner), spec);
        });
    const auto result =
        runner.run(smallPredictor(), smallEstimators(), {},
                   RunPolicy::continueOnError());

    ASSERT_EQ(result.perBenchmark.size(), 2u);
    EXPECT_TRUE(result.perBenchmark[0].failed());
    EXPECT_TRUE(result.perBenchmark[1].failed());
    EXPECT_TRUE(result.degraded);
    EXPECT_EQ(result.failedBenchmarks(), 2u);
    EXPECT_FALSE(std::isnan(result.compositeMispredictRate));
    EXPECT_DOUBLE_EQ(result.compositeMispredictRate, 0.0);
    EXPECT_TRUE(result.estimatorNames.empty());
    EXPECT_TRUE(result.compositeEstimatorStats.empty());
    EXPECT_EQ(result.compositeStaticStats.size(), 0u);
}

TEST(SuiteRunnerTest, ContinueOnErrorWithoutFailuresIsNotDegraded)
{
    const auto fail_fast = runSmall(5000);
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"jpeg", "real_gcc"},
                                                 5000));
    DriverOptions options;
    options.profileStatic = true;
    const auto lenient =
        runner.run(smallPredictor(), smallEstimators(), options,
                   RunPolicy::continueOnError());

    EXPECT_FALSE(lenient.degraded);
    EXPECT_EQ(lenient.failedBenchmarks(), 0u);
    // Bit-identical to the default policy when nothing fails.
    ASSERT_EQ(lenient.perBenchmark.size(),
              fail_fast.perBenchmark.size());
    for (std::size_t i = 0; i < lenient.perBenchmark.size(); ++i) {
        EXPECT_EQ(lenient.perBenchmark[i].mispredicts,
                  fail_fast.perBenchmark[i].mispredicts);
        EXPECT_EQ(lenient.perBenchmark[i].branches,
                  fail_fast.perBenchmark[i].branches);
    }
    EXPECT_DOUBLE_EQ(lenient.compositeMispredictRate,
                     fail_fast.compositeMispredictRate);
}

TEST(SuiteRunnerTest, RetriesRecoverTransientFailures)
{
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"jpeg"}, 2000));
    auto first_attempts = std::make_shared<std::atomic<int>>(0);
    runner.setSourceWrapper(
        [first_attempts](std::size_t,
                         std::unique_ptr<TraceSource> inner)
            -> std::unique_ptr<TraceSource> {
            if (first_attempts->fetch_add(1) == 0) {
                FaultSpec spec;
                spec.failAfter = 100; // transient: first attempt only
                return std::make_unique<FaultInjectingTraceSource>(
                    std::move(inner), spec);
            }
            return inner;
        });

    RunPolicy policy = RunPolicy::continueOnError();
    policy.maxAttempts = 3;
    const auto result =
        runner.run(smallPredictor(), smallEstimators(), {}, policy);
    ASSERT_EQ(result.perBenchmark.size(), 1u);
    EXPECT_FALSE(result.perBenchmark[0].failed());
    EXPECT_EQ(result.perBenchmark[0].attempts, 2u);
    EXPECT_FALSE(result.degraded);
}

TEST(SuiteRunnerTest, PersistentFailureExhaustsAttempts)
{
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"jpeg"}, 2000));
    runner.setSourceWrapper(failingWrapper(0));
    RunPolicy policy = RunPolicy::continueOnError();
    policy.maxAttempts = 3;
    const auto result =
        runner.run(smallPredictor(), smallEstimators(), {}, policy);
    ASSERT_EQ(result.perBenchmark.size(), 1u);
    EXPECT_TRUE(result.perBenchmark[0].failed());
    EXPECT_EQ(result.perBenchmark[0].attempts, 3u);
}

TEST(SuiteRunnerTest, WatchdogMarksHungBenchmarkFailed)
{
    // A 1 ms budget on a multi-million-branch benchmark must trip the
    // watchdog; the benchmark is marked failed, not wedged, and the
    // timeout is not retried (attempts stays 1 despite maxAttempts).
    SuiteRunner runner(
        BenchmarkSuite::ibsSubset({"jpeg"}, 20'000'000));
    RunPolicy policy = RunPolicy::continueOnError();
    policy.watchdogMs = 1;
    policy.maxAttempts = 3;
    const auto result =
        runner.run(smallPredictor(), smallEstimators(), {}, policy);
    ASSERT_EQ(result.perBenchmark.size(), 1u);
    EXPECT_TRUE(result.perBenchmark[0].failed());
    EXPECT_NE(result.perBenchmark[0].error.find("wall-clock"),
              std::string::npos);
    EXPECT_EQ(result.perBenchmark[0].attempts, 1u);
    EXPECT_TRUE(result.degraded);
    EXPECT_EQ(result.compositeEstimatorStats.size(), 0u);
}

TEST(SuiteRunnerTest, FactoriesInvokedExactlyOncePerBenchmark)
{
    SuiteRunner runner(BenchmarkSuite::ibsSubset({"jpeg", "real_gcc"},
                                                 2000));
    auto predictor_calls = std::make_shared<std::atomic<int>>(0);
    auto estimator_calls = std::make_shared<std::atomic<int>>(0);
    const auto result = runner.run(
        [predictor_calls] {
            predictor_calls->fetch_add(1);
            return std::make_unique<GsharePredictor>(4096, 12);
        },
        [estimator_calls]()
            -> std::vector<std::unique_ptr<ConfidenceEstimator>> {
            estimator_calls->fetch_add(1);
            std::vector<std::unique_ptr<ConfidenceEstimator>> out;
            out.push_back(std::make_unique<OneLevelCounterConfidence>(
                IndexScheme::PcXorBhr, 4096, CounterKind::Resetting,
                16, 0));
            return out;
        });
    EXPECT_EQ(predictor_calls->load(), 2);
    EXPECT_EQ(estimator_calls->load(), 2);
    ASSERT_EQ(result.estimatorNames.size(), 1u);
    EXPECT_EQ(result.estimatorNames[0], "1lvl-PCxorBHR-reset16-4096");
}

} // namespace
} // namespace confsim
