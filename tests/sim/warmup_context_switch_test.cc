/**
 * @file
 * Regression tests pinning how `warmupBranches` exclusion and
 * `contextSwitchInterval` flushes compose in the driver.
 *
 * The documented order (sim/driver.h):
 *
 *  - The warmup window is an exclusion on STATISTICS only: branches
 *    [0, warmupBranches) train every structure but are not counted in
 *    branches/mispredicts/bucket stats/static profile.
 *  - The context-switch interval counts EVERY simulated conditional
 *    branch, warmup included — the OS does not pause the scheduler
 *    while a predictor warms up.
 *  - A switch fires AFTER the triggering branch has fully trained
 *    (predictor, estimators, BHR, GCIR), flushes per the flags, and
 *    never clears accumulated statistics.
 *
 * Each test replays the same trace through a hand-rolled reference
 * loop that encodes exactly this order, then asserts the driver
 * matches bit-for-bit across W<S, W=S, W>S, and S=1 compositions. A
 * discrepancy here means the driver's loop order drifted from the
 * documentation.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "predictor/gshare.h"
#include "predictor/history_register.h"
#include "sim/driver.h"
#include "util/shift_register.h"
#include "workload/suite.h"

namespace confsim {
namespace {

constexpr std::uint64_t kBranches = 12'000;

std::unique_ptr<TraceSource>
freshSource()
{
    return BenchmarkSuite::ibsSmall(kBranches).makeGenerator(0);
}

struct ReferenceResult
{
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t contextSwitches = 0;
    BucketStats stats;
    StaticBranchProfile profile;

    explicit ReferenceResult(std::uint64_t buckets) : stats(buckets) {}
};

/** The documented composition order, spelled out independently. */
ReferenceResult
referenceRun(TraceSource &source, const DriverOptions &options)
{
    GsharePredictor predictor(4096, 12);
    OneLevelCounterConfidence estimator(IndexScheme::PcXorBhr, 1024,
                                        CounterKind::Resetting, 16, 0);
    ReferenceResult result(estimator.numBuckets());

    HistoryRegister bhr(options.bhrBits);
    ShiftRegister gcir(options.gcirBits, 0);
    BranchContext ctx;
    ctx.bhrBits = options.bhrBits;
    ctx.gcirBits = options.gcirBits;

    std::uint64_t simulated = 0;
    std::uint64_t since_switch = 0;
    BranchRecord record;
    while (source.next(record)) {
        if (!record.isConditional())
            continue;

        ctx.pc = record.pc;
        ctx.bhr = bhr.value();
        ctx.gcir = gcir.value();
        const bool correct =
            predictor.predict(record.pc) == record.taken;

        // Warmup is a statistics exclusion only: the window is the
        // first warmupBranches SIMULATED branches, [0, W).
        const bool recording = simulated >= options.warmupBranches;
        if (recording) {
            ++result.branches;
            if (!correct)
                ++result.mispredicts;
            result.stats.record(estimator.bucketOf(ctx), !correct);
            result.profile.record(record.pc, !correct, record.taken);
        } else {
            // Not recorded — but the estimator still reads its bucket
            // (the driver queries unconditionally) and still trains.
            estimator.bucketOf(ctx);
        }
        estimator.update(ctx, correct, record.taken);
        predictor.update(record.pc, record.taken);
        bhr.recordOutcome(record.taken);
        gcir.shiftIn(!correct);
        ++simulated;

        // The switch clock ticks on every simulated branch — warmup
        // included — and fires after the branch finished training.
        if (options.contextSwitchInterval != 0 &&
            ++since_switch == options.contextSwitchInterval) {
            since_switch = 0;
            if (options.flushPredictorOnSwitch)
                predictor.reset();
            if (options.flushEstimatorsOnSwitch)
                estimator.reset();
            bhr.reset();
            gcir.clear();
            ++result.contextSwitches;
        }
    }
    return result;
}

DriverResult
driverRun(TraceSource &source, const DriverOptions &options)
{
    GsharePredictor predictor(4096, 12);
    OneLevelCounterConfidence estimator(IndexScheme::PcXorBhr, 1024,
                                        CounterKind::Resetting, 16, 0);
    SimulationDriver driver(predictor, {&estimator}, options);
    return driver.run(source);
}

void
expectSameAsReference(const DriverOptions &options,
                      const std::string &context)
{
    SCOPED_TRACE(context);
    auto reference_source = freshSource();
    const ReferenceResult expected =
        referenceRun(*reference_source, options);
    auto driver_source = freshSource();
    const DriverResult actual = driverRun(*driver_source, options);

    EXPECT_EQ(expected.branches, actual.branches);
    EXPECT_EQ(expected.mispredicts, actual.mispredicts);
    EXPECT_EQ(expected.contextSwitches, actual.contextSwitches);
    ASSERT_EQ(actual.estimatorStats.size(), 1u);
    ASSERT_EQ(expected.stats.numBuckets(),
              actual.estimatorStats[0].numBuckets());
    for (std::uint64_t b = 0; b < expected.stats.numBuckets(); ++b) {
        EXPECT_EQ(expected.stats[b].refs,
                  actual.estimatorStats[0][b].refs)
            << "bucket " << b;
        EXPECT_EQ(expected.stats[b].mispredicts,
                  actual.estimatorStats[0][b].mispredicts)
            << "bucket " << b;
    }
    if (options.profileStatic) {
        ASSERT_EQ(expected.profile.size(),
                  actual.staticProfile.size());
        for (const auto &[pc, entry] : expected.profile.entries()) {
            const auto it = actual.staticProfile.entries().find(pc);
            ASSERT_NE(it, actual.staticProfile.entries().end());
            EXPECT_EQ(entry.executions, it->second.executions);
            EXPECT_EQ(entry.mispredictions,
                      it->second.mispredictions);
        }
    }
}

TEST(WarmupContextSwitch, ComposeInDocumentedOrder)
{
    struct Combo
    {
        std::uint64_t warmup;
        std::uint64_t interval;
        const char *label;
    };
    const Combo combos[] = {
        {1'000, 3'000, "W<S"},     {2'500, 2'500, "W=S"},
        {5'000, 1'500, "W>S"},     {1'000, 1, "S=1"},
        {0, 2'000, "no warmup"},   {3'000, 0, "no switches"},
    };
    for (const Combo &combo : combos) {
        DriverOptions options;
        options.profileStatic = true;
        options.warmupBranches = combo.warmup;
        options.contextSwitchInterval = combo.interval;
        expectSameAsReference(options, combo.label);
    }
}

TEST(WarmupContextSwitch, FlushFlagsComposeWithWarmup)
{
    const bool flags[][2] = {
        {true, true}, {true, false}, {false, true}, {false, false}};
    for (const auto &flag : flags) {
        DriverOptions options;
        options.warmupBranches = 2'000;
        options.contextSwitchInterval = 900;
        options.flushPredictorOnSwitch = flag[0];
        options.flushEstimatorsOnSwitch = flag[1];
        expectSameAsReference(
            options, std::string("flushPredictor=") +
                         (flag[0] ? "1" : "0") + " flushEstimators=" +
                         (flag[1] ? "1" : "0"));
    }
}

TEST(WarmupContextSwitch, SwitchClockTicksThroughWarmup)
{
    // With W > S the first switches happen INSIDE the warmup window:
    // the interval counts warmup branches too. floor(N / S) switches
    // total, independent of W.
    DriverOptions options;
    options.warmupBranches = 6'000;
    options.contextSwitchInterval = 1'000;
    auto source = freshSource();
    const DriverResult result = driverRun(*source, options);

    const std::uint64_t simulated =
        result.branches + options.warmupBranches;
    EXPECT_EQ(result.contextSwitches,
              simulated / options.contextSwitchInterval);
    // And warmup excluded exactly W branches from the counters.
    auto full_source = freshSource();
    DriverOptions no_warmup = options;
    no_warmup.warmupBranches = 0;
    const DriverResult full = driverRun(*full_source, no_warmup);
    EXPECT_EQ(full.branches,
              result.branches + options.warmupBranches);
    EXPECT_EQ(full.contextSwitches, result.contextSwitches);
}

} // namespace
} // namespace confsim
