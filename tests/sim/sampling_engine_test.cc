/** @file Unit tests for the statistical sampling engine. */

#include "sim/sampling_engine.h"

#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "confidence/one_level.h"
#include "metrics/operating_point.h"
#include "predictor/gshare.h"
#include "workload/workload_generator.h"

namespace confsim {
namespace {

std::vector<SweepConfiguration>
oneConfig()
{
    SweepConfiguration config;
    config.label = "gshare+CIR";
    config.makePredictor = [] {
        return std::make_unique<GsharePredictor>(4096, 12);
    };
    config.makeEstimators = [] {
        std::vector<std::unique_ptr<ConfidenceEstimator>> out;
        out.push_back(std::make_unique<OneLevelCirConfidence>(
            IndexScheme::PcXorBhr, 4096, 16,
            CirReduction::RawPattern, CtInit::Ones));
        return out;
    };
    std::vector<SweepConfiguration> configs;
    configs.push_back(std::move(config));
    return configs;
}

SamplingEngine::SourceFactory
jpegSource(std::uint64_t branches)
{
    return [branches]() -> std::unique_ptr<TraceSource> {
        return std::make_unique<WorkloadGenerator>(ibsProfile("jpeg"),
                                                   branches);
    };
}

/** An immediately exhausted trace. */
class EmptySource : public TraceSource
{
  public:
    bool next(BranchRecord &) override { return false; }
    void reset() override {}
};

TEST(SamplingEngineTest, FullRateSingleSubsampleIsExact)
{
    SamplingOptions options;
    options.sampleRate = 1.0;
    options.strata = 1;
    options.subsamples = 1;
    options.regionBranches = 2000;
    SamplingEngine engine(oneConfig(), DriverOptions{}, options);
    const SamplingBenchmarkResult sampled =
        engine.runTrace("jpeg", jpegSource(40000));

    SweepEngine exact_engine(oneConfig(), DriverOptions{},
                             SweepOptions{});
    WorkloadGenerator workload(ibsProfile("jpeg"), 40000);
    const SweepRunResult exact = exact_engine.run(workload);

    EXPECT_EQ(sampled.totalBranches, 40000u);
    EXPECT_EQ(sampled.recordedBranches, 40000u);
    EXPECT_EQ(sampled.regions, 20u);
    EXPECT_EQ(sampled.sampledRegions, 20u);
    ASSERT_EQ(sampled.perConfig.size(), 1u);
    const SamplingConfigEstimate &est = sampled.perConfig[0];
    ASSERT_EQ(est.rateSubsamples.size(), 1u);
    const double exact_rate =
        static_cast<double>(exact.perConfig[0].mispredicts) /
        static_cast<double>(exact.perConfig[0].branches);
    EXPECT_DOUBLE_EQ(est.mispredictRate.mean, exact_rate);
    EXPECT_DOUBLE_EQ(est.mispredictRate.ciHalf, 0.0);

    // Coverage/PVN at the 20% point match the exact aggregates too
    // (the weighted bucket mass is the aggregate mass, rescaled).
    const OperatingPoint exact_point =
        operatingPointAt20(exact.perConfig[0].estimatorStats[0]);
    ASSERT_EQ(est.coverageAt20.size(), 1u);
    EXPECT_NEAR(est.coverageAt20[0].mean, exact_point.coverage, 1e-9);
    EXPECT_NEAR(est.pvnAt20[0].mean, exact_point.pvn, 1e-9);
}

TEST(SamplingEngineTest, SelectionAndEstimatesAreDeterministic)
{
    SamplingOptions options;
    options.sampleRate = 0.2;
    options.regionBranches = 1000;
    options.seed = 1234;
    SamplingEngine a(oneConfig(), DriverOptions{}, options);
    SamplingEngine b(oneConfig(), DriverOptions{}, options);
    const SamplingBenchmarkResult ra =
        a.runTrace("jpeg", jpegSource(60000));
    const SamplingBenchmarkResult rb =
        b.runTrace("jpeg", jpegSource(60000));
    EXPECT_EQ(ra.sampledRegionIds, rb.sampledRegionIds);
    ASSERT_EQ(ra.perConfig.size(), rb.perConfig.size());
    EXPECT_EQ(ra.perConfig[0].rateSubsamples,
              rb.perConfig[0].rateSubsamples);
    EXPECT_DOUBLE_EQ(ra.perConfig[0].mispredictRate.ciHalf,
                     rb.perConfig[0].mispredictRate.ciHalf);
}

TEST(SamplingEngineTest, SeedChangesTheSelection)
{
    SamplingOptions options;
    options.sampleRate = 0.1;
    options.regionBranches = 1000;
    options.seed = 1;
    SamplingEngine a(oneConfig(), DriverOptions{}, options);
    options.seed = 2;
    SamplingEngine b(oneConfig(), DriverOptions{}, options);
    const SamplingBenchmarkResult ra =
        a.runTrace("jpeg", jpegSource(60000));
    const SamplingBenchmarkResult rb =
        b.runTrace("jpeg", jpegSource(60000));
    EXPECT_EQ(ra.sampledRegions, rb.sampledRegions);
    EXPECT_NE(ra.sampledRegionIds, rb.sampledRegionIds);
}

TEST(SamplingEngineTest, SampledSubsetRecordsFewerBranches)
{
    SamplingOptions options;
    options.sampleRate = 0.1;
    options.regionBranches = 1000;
    SamplingEngine engine(oneConfig(), DriverOptions{}, options);
    const SamplingBenchmarkResult result =
        engine.runTrace("jpeg", jpegSource(60000));
    EXPECT_EQ(result.regions, 60u);
    EXPECT_EQ(result.sampledRegions, 6u);
    EXPECT_EQ(result.recordedBranches, 6000u);
    EXPECT_NEAR(result.reductionFactor(), 10.0, 1e-9);
    // Sorted unique ids, all in range.
    for (std::size_t i = 1; i < result.sampledRegionIds.size(); ++i) {
        EXPECT_LT(result.sampledRegionIds[i - 1],
                  result.sampledRegionIds[i]);
    }
    for (const std::uint64_t id : result.sampledRegionIds)
        EXPECT_LT(id, result.regions);
}

TEST(SamplingEngineTest, BoundedWarmingKeepsRecordedBranches)
{
    SamplingOptions options;
    options.sampleRate = 0.1;
    options.regionBranches = 1000;
    options.warmupRegions = 2;
    SamplingEngine engine(oneConfig(), DriverOptions{}, options);
    const SamplingBenchmarkResult result =
        engine.runTrace("jpeg", jpegSource(60000));
    // Fast-forwarding changes which branches warm the predictor, not
    // which branches are recorded.
    EXPECT_EQ(result.recordedBranches, 6000u);
    EXPECT_EQ(result.sampledRegions, 6u);
    ASSERT_EQ(result.perConfig.size(), 1u);
    EXPECT_FALSE(result.perConfig[0].rateSubsamples.empty());
}

TEST(SamplingEngineTest, EmptyTraceYieldsEmptyResult)
{
    SamplingOptions options;
    SamplingEngine engine(oneConfig(), DriverOptions{}, options);
    const SamplingBenchmarkResult result = engine.runTrace(
        "empty", [] { return std::make_unique<EmptySource>(); });
    EXPECT_EQ(result.totalBranches, 0u);
    EXPECT_EQ(result.regions, 0u);
    EXPECT_EQ(result.sampledRegions, 0u);
    EXPECT_TRUE(result.perConfig.empty());
    EXPECT_DOUBLE_EQ(result.reductionFactor(), 0.0);
}

TEST(SamplingEngineTest, InvalidOptionsAreFatal)
{
    const auto build = [](SamplingOptions options) {
        SamplingEngine engine(oneConfig(), DriverOptions{}, options);
    };
    SamplingOptions bad;
    bad.sampleRate = 0.0;
    EXPECT_THROW(build(bad), std::runtime_error);
    bad = SamplingOptions{};
    bad.sampleRate = 1.5;
    EXPECT_THROW(build(bad), std::runtime_error);
    bad = SamplingOptions{};
    bad.regionBranches = 0;
    EXPECT_THROW(build(bad), std::runtime_error);
    bad = SamplingOptions{};
    bad.strata = 0;
    EXPECT_THROW(build(bad), std::runtime_error);
    bad = SamplingOptions{};
    bad.subsamples = 0;
    EXPECT_THROW(build(bad), std::runtime_error);
    bad = SamplingOptions{};
    bad.rankSetSize = 0;
    EXPECT_THROW(build(bad), std::runtime_error);
    SweepRecordingPlan plan;
    bad = SamplingOptions{};
    bad.sweep.recordingPlan = &plan;
    EXPECT_THROW(build(bad), std::runtime_error);
    EXPECT_THROW(SamplingEngine({}, DriverOptions{},
                                SamplingOptions{}),
                 std::runtime_error);
}

} // namespace
} // namespace confsim
