/** @file Unit tests for the gshare predictor (the paper's predictor). */

#include "predictor/gshare.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace confsim {
namespace {

TEST(GshareTest, PaperConfigurations)
{
    auto large = GsharePredictor::makeLargePaperConfig();
    // 2^16 x 2-bit counters + 16-bit BHR.
    EXPECT_EQ(large.storageBits(), (std::uint64_t{1} << 17) + 16);
    EXPECT_EQ(large.historyBits(), 16u);

    auto small = GsharePredictor::makeSmallPaperConfig();
    EXPECT_EQ(small.storageBits(), (std::uint64_t{1} << 13) + 12);
    EXPECT_EQ(small.historyBits(), 12u);
}

TEST(GshareTest, HistoryDeeperThanIndexIsFatal)
{
    EXPECT_THROW(GsharePredictor(1024, 11), std::runtime_error);
}

TEST(GshareTest, InitiallyWeaklyTaken)
{
    auto pred = GsharePredictor::makeLargePaperConfig();
    EXPECT_TRUE(pred.predict(0x40fc));
}

TEST(GshareTest, UpdateShiftsHistory)
{
    GsharePredictor pred(256, 8);
    EXPECT_EQ(pred.historyValue(), 0u);
    pred.update(0x1000, true);
    EXPECT_EQ(pred.historyValue(), 1u);
    pred.update(0x1000, false);
    EXPECT_EQ(pred.historyValue(), 2u);
    pred.update(0x1000, true);
    EXPECT_EQ(pred.historyValue(), 5u);
}

TEST(GshareTest, LearnsBiasedBranch)
{
    GsharePredictor pred(4096, 12);
    for (int i = 0; i < 64; ++i)
        pred.update(0x2000, false);
    EXPECT_FALSE(pred.predict(0x2000));
}

TEST(GshareTest, LearnsAlternatingPatternViaHistory)
{
    // A strictly alternating branch executed back-to-back is perfectly
    // predictable with history but not with a PC-only counter.
    GsharePredictor pred(4096, 12);
    bool outcome = false;
    for (int i = 0; i < 4000; ++i) {
        pred.update(0x3000, outcome);
        outcome = !outcome;
    }
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        correct += (pred.predict(0x3000) == outcome);
        pred.update(0x3000, outcome);
        outcome = !outcome;
    }
    EXPECT_GT(correct, 195);
}

TEST(GshareTest, LearnsLoopExitWithinHistoryWindow)
{
    // trip-4 loop (T T T N repeating): the 12-deep history pins the
    // position, so steady-state prediction is perfect.
    GsharePredictor pred(4096, 12);
    auto run_loop = [&](int passes, bool measure) {
        int correct = 0;
        int total = 0;
        for (int pass = 0; pass < passes; ++pass) {
            for (int i = 0; i < 4; ++i) {
                const bool taken = (i < 3);
                if (measure) {
                    correct += (pred.predict(0x4000) == taken);
                    ++total;
                }
                pred.update(0x4000, taken);
            }
        }
        return total == 0 ? 1.0
                          : static_cast<double>(correct) / total;
    };
    run_loop(500, false);
    EXPECT_GT(run_loop(100, true), 0.99);
}

TEST(GshareTest, ResetClearsLearnedState)
{
    GsharePredictor pred(1024, 10);
    for (int i = 0; i < 20; ++i)
        pred.update(0x5000, false);
    pred.reset();
    EXPECT_TRUE(pred.predict(0x5000));
    EXPECT_EQ(pred.historyValue(), 0u);
}

TEST(GshareTest, BeatsBimodalOnCorrelatedStream)
{
    // Sanity property behind the paper's choice of gshare: with a
    // history-correlated outcome, gshare's accuracy must far exceed a
    // static majority guess.
    GsharePredictor pred(1 << 14, 14);
    Rng rng(77);
    unsigned hist = 0;
    int correct = 0;
    const int warmup = 20000;
    const int measure = 20000;
    for (int i = 0; i < warmup + measure; ++i) {
        // Outcome = parity of the last two outcomes (plus occasional
        // unrelated interleaved branch).
        const bool taken = ((hist & 1) ^ ((hist >> 1) & 1)) != 0;
        if (i >= warmup)
            correct += (pred.predict(0x6000) == taken);
        pred.update(0x6000, taken);
        hist = (hist << 1) | (taken ? 1 : 0);
        // Interleave a biased branch to perturb the history.
        const bool other = rng.nextBernoulli(0.9);
        pred.update(0x7000, other);
        hist = (hist << 1) | (other ? 1 : 0);
    }
    EXPECT_GT(static_cast<double>(correct) / measure, 0.95);
}

TEST(GshareTest, NameEncodesGeometry)
{
    auto pred = GsharePredictor::makeLargePaperConfig();
    EXPECT_EQ(pred.name(), "gshare-65536x2b-h16");
}

} // namespace
} // namespace confsim
