/** @file Unit tests for the agree predictor. */

#include "predictor/agree.h"

#include <gtest/gtest.h>

#include "predictor/gshare.h"
#include "sim/driver.h"
#include "workload/workload_generator.h"

namespace confsim {
namespace {

TEST(AgreeTest, BiasSetAtFirstExecution)
{
    AgreePredictor pred(1024, 8);
    EXPECT_TRUE(pred.biasOf(0x1000)); // unseen default
    pred.update(0x1000, false);
    EXPECT_FALSE(pred.biasOf(0x1000));
    // Bias never changes afterwards.
    pred.update(0x1000, true);
    pred.update(0x1000, true);
    EXPECT_FALSE(pred.biasOf(0x1000));
}

TEST(AgreeTest, PredictsBiasWhenAgreeing)
{
    AgreePredictor pred(1024, 8);
    // Branch biased not-taken; counters start weakly-agree, so the
    // prediction follows the bias immediately after the first update.
    pred.update(0x1000, false);
    EXPECT_FALSE(pred.predict(0x1000));
    // Train disagreement: outcomes flip to taken. More than
    // history-depth updates so the history saturates (all ones) and
    // the counter at the final index is actually trained.
    for (int i = 0; i < 20; ++i)
        pred.update(0x1000, true);
    EXPECT_TRUE(pred.predict(0x1000));
}

TEST(AgreeTest, LearnsBiasedBranchesLikeGshare)
{
    AgreePredictor pred(4096, 12);
    for (int i = 0; i < 100; ++i)
        pred.update(0x2000, false);
    EXPECT_FALSE(pred.predict(0x2000));
}

TEST(AgreeTest, AliasingIsConstructiveForSameAgreementBranches)
{
    // Two branches with opposite directions but both 100% stable
    // share counters constructively under agree (both push "agree"),
    // where a plain gshare would fight over the shared counter if
    // aliased. Here we just verify both are predicted perfectly.
    AgreePredictor pred(64, 6); // tiny table: heavy aliasing
    int correct = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        correct += (pred.predict(0x1000) == true);
        pred.update(0x1000, true);
        correct += (pred.predict(0x2000) == false);
        pred.update(0x2000, false);
    }
    EXPECT_GT(correct, 2 * n - 10);
}

TEST(AgreeTest, CompetitiveWithGshareOnRealWorkload)
{
    // At a small table size, agree must be in the same accuracy range
    // as gshare (its selling point is aliasing robustness, not raw
    // accuracy).
    auto run = [](BranchPredictor &pred) {
        WorkloadGenerator gen(ibsProfile("groff"), 200000);
        SimulationDriver driver(pred, {});
        return driver.run(gen).mispredictRate();
    };
    AgreePredictor agree(1024, 10);
    GsharePredictor gshare(1024, 10);
    const double agree_rate = run(agree);
    const double gshare_rate = run(gshare);
    EXPECT_LT(agree_rate, gshare_rate * 1.3);
}

TEST(AgreeTest, StorageCountsBiasBits)
{
    AgreePredictor pred(1024, 8);
    const std::uint64_t base = 1024 * 2 + 8;
    EXPECT_EQ(pred.storageBits(), base);
    pred.update(0x1000, true);
    pred.update(0x2000, false);
    EXPECT_EQ(pred.storageBits(), base + 2);
}

TEST(AgreeTest, ResetClearsEverything)
{
    AgreePredictor pred(1024, 8);
    pred.update(0x1000, false);
    pred.reset();
    EXPECT_TRUE(pred.biasOf(0x1000));
    EXPECT_TRUE(pred.predict(0x1000));
}

TEST(AgreeTest, NameAndGeometryChecks)
{
    AgreePredictor pred(2048, 11);
    EXPECT_EQ(pred.name(), "agree-2048x2b-h11");
    EXPECT_THROW(AgreePredictor(1024, 11), std::runtime_error);
}

} // namespace
} // namespace confsim
