/** @file Unit tests for static predictors and the McFarling hybrid. */

#include "predictor/hybrid.h"
#include "predictor/static_predictor.h"

#include <memory>

#include <gtest/gtest.h>

#include "predictor/bimodal.h"
#include "predictor/gshare.h"

namespace confsim {
namespace {

TEST(StaticPredictorTest, AlwaysTakenAndNotTaken)
{
    StaticPredictor taken(StaticPolicy::AlwaysTaken);
    StaticPredictor not_taken(StaticPolicy::AlwaysNotTaken);
    EXPECT_TRUE(taken.predict(0x1000));
    EXPECT_FALSE(not_taken.predict(0x1000));
    // Updates never change anything.
    taken.update(0x1000, false);
    not_taken.update(0x1000, true);
    EXPECT_TRUE(taken.predict(0x1000));
    EXPECT_FALSE(not_taken.predict(0x1000));
}

TEST(StaticPredictorTest, BtfntUsesTargetDirection)
{
    StaticPredictor pred(StaticPolicy::BackwardTaken);
    pred.setTarget(0x2000, 0x1000); // backward -> predict taken
    pred.setTarget(0x3000, 0x4000); // forward -> predict not taken
    EXPECT_TRUE(pred.predict(0x2000));
    EXPECT_FALSE(pred.predict(0x3000));
    // Unknown branch falls back to not-taken.
    EXPECT_FALSE(pred.predict(0x9999));
}

TEST(StaticPredictorTest, ZeroStorageAndNames)
{
    StaticPredictor pred(StaticPolicy::AlwaysTaken);
    EXPECT_EQ(pred.storageBits(), 0u);
    EXPECT_EQ(pred.name(), "static-taken");
    EXPECT_EQ(StaticPredictor(StaticPolicy::BackwardTaken).name(),
              "static-btfnt");
}

std::unique_ptr<HybridPredictor>
makeHybrid()
{
    return std::make_unique<HybridPredictor>(
        std::make_unique<BimodalPredictor>(1024),
        std::make_unique<GsharePredictor>(1024, 10), 1024);
}

TEST(HybridTest, StorageIsSumOfParts)
{
    auto hybrid = makeHybrid();
    const std::uint64_t expected = 2048u             // bimodal
                                   + 2048u + 10u     // gshare + BHR
                                   + 2048u;          // chooser
    EXPECT_EQ(hybrid->storageBits(), expected);
}

TEST(HybridTest, ChooserMovesTowardCorrectConstituent)
{
    // Construct a stream the gshare constituent learns but bimodal
    // cannot: a strict alternation. The chooser must migrate to the
    // second (gshare) constituent.
    auto hybrid = makeHybrid();
    bool outcome = false;
    for (int i = 0; i < 4000; ++i) {
        hybrid->update(0x1000, outcome);
        outcome = !outcome;
    }
    EXPECT_TRUE(hybrid->selectsSecond(0x1000));
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        correct += (hybrid->predict(0x1000) == outcome);
        hybrid->update(0x1000, outcome);
        outcome = !outcome;
    }
    EXPECT_GT(correct, 190);
}

TEST(HybridTest, AgreementDoesNotTrainChooser)
{
    auto hybrid = makeHybrid();
    // Both constituents learn "always taken" and agree; the chooser
    // must stay at its initial weakly-first state.
    const bool initially_second = hybrid->selectsSecond(0x2000);
    for (int i = 0; i < 500; ++i)
        hybrid->update(0x2000, true);
    EXPECT_EQ(hybrid->selectsSecond(0x2000), initially_second);
}

TEST(HybridTest, TracksBetterThanWorseConstituentOnMixedStream)
{
    auto hybrid = makeHybrid();
    auto bimodal_alone = std::make_unique<BimodalPredictor>(1024);
    bool outcome = false;
    int hybrid_correct = 0;
    int bimodal_correct = 0;
    const int warmup = 3000;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        // Alternation: worst case for bimodal.
        if (i >= warmup) {
            hybrid_correct += (hybrid->predict(0x3000) == outcome);
            bimodal_correct +=
                (bimodal_alone->predict(0x3000) == outcome);
        }
        hybrid->update(0x3000, outcome);
        bimodal_alone->update(0x3000, outcome);
        outcome = !outcome;
    }
    EXPECT_GT(hybrid_correct, bimodal_correct + 500);
}

TEST(HybridTest, ResetRestoresEverything)
{
    auto hybrid = makeHybrid();
    bool outcome = false;
    for (int i = 0; i < 2000; ++i) {
        hybrid->update(0x1000, outcome);
        outcome = !outcome;
    }
    hybrid->reset();
    EXPECT_FALSE(hybrid->selectsSecond(0x1000));
    EXPECT_TRUE(hybrid->predict(0x1000)); // weakly taken again
}

TEST(HybridTest, NullConstituentIsFatal)
{
    EXPECT_THROW(HybridPredictor(nullptr,
                                 std::make_unique<BimodalPredictor>(64),
                                 64),
                 std::runtime_error);
}

TEST(HybridTest, NameCombinesConstituents)
{
    auto hybrid = makeHybrid();
    EXPECT_EQ(hybrid->name(),
              "hybrid(bimodal-1024,gshare-1024x2b-h10)");
}

} // namespace
} // namespace confsim
