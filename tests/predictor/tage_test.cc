/**
 * @file
 * Property tests for the TAGE predictor and its provider-confidence
 * estimator. The white-box invariants here are the ones the paper-wall
 * relies on: useful counters move only on provider-vs-alternate
 * disagreement outcomes, periodic aging halves every useful counter,
 * allocation on a mispredict claims the first u == 0 candidate (or
 * decays all candidates when none is free), and the shadow replica in
 * TageProviderConfidence stays bit-identical to a main predictor fed
 * the same outcome stream.
 */

#include "predictor/tage.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/state_io.h"
#include "confidence/tage_confidence.h"

namespace confsim {
namespace {

/** Deterministic xorshift stream for synthesizing branch activity. */
class Xorshift
{
  public:
    explicit Xorshift(std::uint64_t seed)
        : state_(seed)
    {}

    std::uint64_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }

  private:
    std::uint64_t state_;
};

/** makeSmall with aging disabled so u deltas are fully attributable. */
TageConfig
noAgingConfig()
{
    TageConfig config = TageConfig::makeSmall();
    config.agingPeriod = 0;
    return config;
}

TEST(TageTest, ConfigValidation)
{
    TageConfig no_tables = TageConfig::makeSmall();
    no_tables.historyLengths.clear();
    EXPECT_THROW(TagePredictor{no_tables}, std::runtime_error);

    TageConfig non_pow2 = TageConfig::makeSmall();
    non_pow2.taggedEntries = 100;
    EXPECT_THROW(TagePredictor{non_pow2}, std::runtime_error);

    TageConfig wide_tag = TageConfig::makeSmall();
    wide_tag.tagBits = 17;
    EXPECT_THROW(TagePredictor{wide_tag}, std::runtime_error);

    TageConfig non_increasing = TageConfig::makeSmall();
    non_increasing.historyLengths = {4, 4, 18};
    EXPECT_THROW(TagePredictor{non_increasing}, std::runtime_error);

    TageConfig too_deep = TageConfig::makeSmall();
    too_deep.historyLengths = {4, 9, 65};
    EXPECT_THROW(TagePredictor{too_deep}, std::runtime_error);
}

TEST(TageTest, NameAndStorageReflectGeometry)
{
    TagePredictor pred(TageConfig::makeSmall());
    EXPECT_EQ(pred.name(), "tage-3x128-h18");
    EXPECT_EQ(pred.numTables(), 3u);
    // 3-bit counters (values 0..7, midpoint 4) distinguish 4
    // strength levels per direction.
    EXPECT_EQ(pred.strengthLevels(), 4u);
    EXPECT_GT(pred.storageBits(), 0u);
}

TEST(TageTest, UsefulCounterMovesOnlyOnProviderAltDisagreement)
{
    TagePredictor pred(noAgingConfig());
    const std::uint8_t u_max = 3; // 2-bit useful counters

    Xorshift rng(0x7A6E0001u);
    int disagreements = 0;
    for (int i = 0; i < 200'000; ++i) {
        const std::uint64_t r = rng.next();
        const std::uint64_t pc = ((r >> 8) & 0x3F) * 4;
        const bool taken = (r & 1) != 0;

        const TagePrediction d = pred.predictDetail(pc);
        if (d.providerTable < 0) {
            pred.update(pc, taken);
            continue;
        }
        const auto table = static_cast<std::size_t>(d.providerTable);
        const std::uint64_t index = pred.indexOf(table, pc);
        const std::uint8_t u_before = pred.entryAt(table, index).u;

        pred.update(pc, taken);
        const std::uint8_t u_after = pred.entryAt(table, index).u;

        if (d.providerTaken == d.altTaken) {
            // Agreement carries no evidence about the provider's worth.
            // Allocation/decay can only touch *longer* tables, so the
            // provider entry's u must be untouched.
            ASSERT_EQ(u_after, u_before)
                << "u moved without provider/alt disagreement at step "
                << i;
        } else {
            ++disagreements;
            const std::uint8_t expected =
                d.providerTaken == taken
                    ? static_cast<std::uint8_t>(
                          u_before < u_max ? u_before + 1 : u_max)
                    : static_cast<std::uint8_t>(
                          u_before > 0 ? u_before - 1 : 0);
            ASSERT_EQ(u_after, expected)
                << "wrong u delta on disagreement at step " << i;
        }
    }
    EXPECT_GT(disagreements, 100)
        << "stream never exercised the disagreement path";
}

TEST(TageTest, PeriodicAgingHalvesUsefulCounters)
{
    TageConfig config = TageConfig::makeSmall();
    config.agingPeriod = 4096;
    TagePredictor pred(config);

    Xorshift rng(0x7A6E0002u);
    // Stop one update short of the aging boundary.
    while (pred.updateCount() < config.agingPeriod - 1) {
        const std::uint64_t r = rng.next();
        pred.update(((r >> 8) & 0x3F) * 4, (r & 1) != 0);
    }

    // The final update may itself move u at the entries it touches
    // (provider entry, allocation candidates at this pc's indices), so
    // check the halving on every entry it cannot reach.
    const std::uint64_t r = rng.next();
    const std::uint64_t pc = ((r >> 8) & 0x3F) * 4;
    const bool taken = (r & 1) != 0;
    std::vector<std::vector<std::uint8_t>> before(pred.numTables());
    std::vector<std::uint64_t> touched(pred.numTables());
    std::uint64_t nonzero = 0;
    for (std::size_t t = 0; t < pred.numTables(); ++t) {
        touched[t] = pred.indexOf(t, pc);
        for (std::uint64_t e = 0; e < config.taggedEntries; ++e) {
            before[t].push_back(pred.entryAt(t, e).u);
            if (pred.entryAt(t, e).u != 0)
                ++nonzero;
        }
    }
    ASSERT_GT(nonzero, 0u) << "training left no useful counters set";

    pred.update(pc, taken);
    ASSERT_EQ(pred.updateCount(), config.agingPeriod);
    for (std::size_t t = 0; t < pred.numTables(); ++t) {
        for (std::uint64_t e = 0; e < config.taggedEntries; ++e) {
            if (e == touched[t])
                continue;
            ASSERT_EQ(pred.entryAt(t, e).u,
                      static_cast<std::uint8_t>(before[t][e] >> 1))
                << "table " << t << " entry " << e
                << " was not halved at the aging boundary";
        }
    }
}

TEST(TageTest, MispredictAllocatesFirstFreeCandidateOrDecaysAll)
{
    TagePredictor pred(noAgingConfig());
    const std::uint8_t ctr_mid = 4; // 3-bit counter midpoint

    Xorshift rng(0x7A6E0003u);
    int allocations = 0;
    int decays = 0;
    for (int i = 0; i < 200'000; ++i) {
        const std::uint64_t r = rng.next();
        const std::uint64_t pc = ((r >> 8) & 0x3F) * 4;
        const bool taken = (r & 1) != 0;

        const TagePrediction d = pred.predictDetail(pc);
        const auto first =
            static_cast<std::size_t>(d.providerTable + 1);
        const bool mispredicted = d.taken != taken;
        if (!mispredicted || first >= pred.numTables()) {
            pred.update(pc, taken);
            continue;
        }

        struct Candidate
        {
            std::uint64_t index;
            std::uint16_t tag;
            TageEntry before;
        };
        std::vector<Candidate> candidates;
        int victim = -1;
        for (std::size_t t = first; t < pred.numTables(); ++t) {
            Candidate c;
            c.index = pred.indexOf(t, pc);
            c.tag = pred.tagOf(t, pc);
            c.before = pred.entryAt(t, c.index);
            if (victim < 0 && c.before.u == 0)
                victim = static_cast<int>(t - first);
            candidates.push_back(c);
        }

        pred.update(pc, taken);

        for (std::size_t c = 0; c < candidates.size(); ++c) {
            const std::size_t t = first + c;
            const TageEntry after =
                pred.entryAt(t, candidates[c].index);
            if (victim >= 0 &&
                c == static_cast<std::size_t>(victim)) {
                // The first free candidate is claimed, weakly
                // initialized toward the actual outcome.
                ++allocations;
                EXPECT_EQ(after.tag, candidates[c].tag);
                EXPECT_EQ(after.ctr,
                          taken ? ctr_mid
                                : static_cast<std::uint8_t>(ctr_mid -
                                                            1));
                EXPECT_EQ(after.u, 0);
            } else if (victim >= 0) {
                // Everything else is left alone.
                EXPECT_EQ(after.tag, candidates[c].before.tag);
                EXPECT_EQ(after.u, candidates[c].before.u);
            } else {
                // No free slot: every candidate decays instead.
                ++decays;
                EXPECT_EQ(after.tag, candidates[c].before.tag);
                EXPECT_EQ(after.u,
                          static_cast<std::uint8_t>(
                              candidates[c].before.u > 0
                                  ? candidates[c].before.u - 1
                                  : 0));
            }
        }
    }
    EXPECT_GT(allocations, 100) << "stream never allocated";
    EXPECT_GT(decays, 0) << "stream never hit the all-useful decay path";
}

TEST(TageTest, ResetRestoresInitialPredictions)
{
    TagePredictor pred(noAgingConfig());
    TagePredictor fresh(noAgingConfig());
    Xorshift rng(0x7A6E0004u);
    for (int i = 0; i < 20'000; ++i) {
        const std::uint64_t r = rng.next();
        pred.update(((r >> 8) & 0xFF) * 4, (r & 1) != 0);
    }
    pred.reset();
    EXPECT_EQ(pred.updateCount(), 0u);
    EXPECT_EQ(pred.historyValue(), 0u);
    for (std::uint64_t pc = 0; pc < 1024; pc += 4)
        ASSERT_EQ(pred.predict(pc), fresh.predict(pc)) << pc;
}

TEST(TageTest, LoadStateRejectsMismatchedGeometry)
{
    TagePredictor small(TageConfig::makeSmall());
    StateWriter out;
    small.saveState(out);

    TagePredictor large(TageConfig::makeDefault());
    StateReader in(out.bytes());
    EXPECT_THROW(large.loadState(in), std::runtime_error);
}

TEST(TageProviderConfidenceTest, ShadowTracksMainPredictorBitExactly)
{
    // The estimator's whole design premise: fed the same (pc, outcome)
    // stream, the shadow replica reproduces the main predictor's
    // provider state exactly.
    TagePredictor main(TageConfig::makeSmall());
    TageProviderConfidence conf(TageConfig::makeSmall());

    Xorshift rng(0x7A6E0005u);
    BranchContext ctx;
    for (int i = 0; i < 50'000; ++i) {
        const std::uint64_t r = rng.next();
        const std::uint64_t pc = ((r >> 8) & 0xFF) * 4;
        const bool taken = (r & 1) != 0;
        ctx.pc = pc;

        const TagePrediction expect = main.predictDetail(pc);
        const TagePrediction got = conf.shadowDetail(ctx);
        ASSERT_EQ(got.taken, expect.taken) << "step " << i;
        ASSERT_EQ(got.providerTable, expect.providerTable)
            << "step " << i;
        ASSERT_EQ(got.providerStrength, expect.providerStrength)
            << "step " << i;
        ASSERT_EQ(got.altTaken, expect.altTaken) << "step " << i;

        const std::uint64_t bucket = conf.bucketOf(ctx);
        const std::uint64_t want =
            2 * expect.providerStrength +
            (expect.providerTaken == expect.altTaken ? 1 : 0);
        ASSERT_EQ(bucket, want) << "step " << i;
        ASSERT_LT(bucket, conf.numBuckets());

        const bool correct = main.predict(pc) == taken;
        conf.update(ctx, correct, taken);
        main.update(pc, taken);
    }
}

TEST(TageProviderConfidenceTest, BucketCountAndOrdering)
{
    TageProviderConfidence conf(TageConfig::makeSmall());
    // 4 strength levels x {disagree, agree} corroboration.
    EXPECT_EQ(conf.numBuckets(), 8u);
    EXPECT_TRUE(conf.bucketsAreOrdered());
    EXPECT_EQ(conf.name(), "tage-provider");
    EXPECT_TRUE(conf.checkpointable());
}

} // namespace
} // namespace confsim
