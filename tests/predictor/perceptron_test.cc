/**
 * @file
 * Property tests for the perceptron predictor and its margin-based
 * confidence estimator. The load-bearing invariants: the prediction is
 * exactly the sign of the margin, training fires iff the prediction
 * was wrong or |margin| <= theta (and moves every weight by exactly
 * +/-1 toward agreement, clamped to the weight range), the confidence
 * bucket is monotone in |margin|, and the estimator's shadow replica
 * reproduces a main predictor's margins bit-for-bit.
 */

#include "predictor/perceptron.h"

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/state_io.h"
#include "confidence/perceptron_margin.h"

namespace confsim {
namespace {

/** Deterministic xorshift stream for synthesizing branch activity. */
class Xorshift
{
  public:
    explicit Xorshift(std::uint64_t seed)
        : state_(seed)
    {}

    std::uint64_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }

  private:
    std::uint64_t state_;
};

TEST(PerceptronTest, ConfigValidationAndTheta)
{
    PerceptronConfig non_pow2 = PerceptronConfig::makeSmall();
    non_pow2.numRows = 100;
    EXPECT_THROW(PerceptronPredictor{non_pow2}, std::runtime_error);

    PerceptronConfig deep = PerceptronConfig::makeSmall();
    deep.historyBits = 65;
    EXPECT_THROW(PerceptronPredictor{deep}, std::runtime_error);

    // Jimenez's tuned threshold: floor(1.93 h + 14).
    EXPECT_EQ(PerceptronConfig::makeSmall().theta(),
              static_cast<std::int64_t>(1.93 * 12 + 14.0));
    EXPECT_EQ(PerceptronConfig::makeDefault().theta(),
              static_cast<std::int64_t>(1.93 * 24 + 14.0));
}

TEST(PerceptronTest, PredictionIsSignOfMargin)
{
    PerceptronPredictor pred(PerceptronConfig::makeSmall());
    Xorshift rng(0x9EC50001u);
    for (int i = 0; i < 50'000; ++i) {
        const std::uint64_t r = rng.next();
        const std::uint64_t pc = ((r >> 8) & 0xFF) * 4;
        const bool taken = (r & 1) != 0;
        ASSERT_EQ(pred.predict(pc), pred.marginOf(pc) >= 0)
            << "step " << i;
        pred.update(pc, taken);
    }
}

TEST(PerceptronTest, TrainsIffMispredictOrMarginWithinTheta)
{
    const PerceptronConfig config = PerceptronConfig::makeSmall();
    PerceptronPredictor pred(config);
    const auto weight_max =
        static_cast<std::int32_t>((1 << (config.weightBits - 1)) - 1);
    const std::int32_t weight_min = -weight_max - 1;

    Xorshift rng(0x9EC50002u);
    int trained = 0;
    int skipped = 0;
    for (int i = 0; i < 50'000; ++i) {
        const std::uint64_t r = rng.next();
        const std::uint64_t pc = ((r >> 8) & 0xFF) * 4;
        const bool taken = (r & 1) != 0;

        const std::int64_t margin = pred.marginOf(pc);
        const bool mispredict = (margin >= 0) != taken;
        const bool should_train =
            mispredict || std::llabs(margin) <= pred.theta();
        ASSERT_EQ(pred.wouldTrain(pc, taken), should_train)
            << "step " << i;

        const std::uint64_t row = pred.rowOf(pc);
        const std::uint64_t history = pred.historyValue();
        std::vector<std::int32_t> before;
        for (unsigned w = 0; w <= config.historyBits; ++w)
            before.push_back(pred.weightAt(row, w));

        pred.update(pc, taken);

        for (unsigned w = 0; w <= config.historyBits; ++w) {
            std::int32_t expected = before[w];
            if (should_train) {
                // Bias trains on the outcome itself; weight i trains
                // on agreement between history bit i and the outcome.
                const bool agree =
                    w == 0 ? taken
                           : (((history >> (w - 1)) & 1) != 0) == taken;
                expected += agree ? 1 : -1;
                if (expected > weight_max)
                    expected = weight_max;
                if (expected < weight_min)
                    expected = weight_min;
            }
            ASSERT_EQ(pred.weightAt(row, w), expected)
                << "weight " << w << " at step " << i
                << (should_train ? " (trained)" : " (frozen)");
        }
        (should_train ? trained : skipped) += 1;
    }
    EXPECT_GT(trained, 1000);
    EXPECT_GT(skipped, 1000)
        << "stream never exercised the confident-skip path";
}

TEST(PerceptronTest, WeightsStayClampedUnderConstantOutcome)
{
    const PerceptronConfig config = PerceptronConfig::makeSmall();
    PerceptronPredictor pred(config);
    const auto weight_max =
        static_cast<std::int32_t>((1 << (config.weightBits - 1)) - 1);
    const std::int32_t weight_min = -weight_max - 1;

    // A single always-taken branch drives its bias to saturation.
    for (int i = 0; i < 4 * weight_max; ++i)
        pred.update(0x40, true);
    const std::uint64_t row = pred.rowOf(0x40);
    for (unsigned w = 0; w <= config.historyBits; ++w) {
        ASSERT_LE(pred.weightAt(row, w), weight_max);
        ASSERT_GE(pred.weightAt(row, w), weight_min);
    }
    EXPECT_TRUE(pred.predict(0x40));
    EXPECT_GT(pred.marginOf(0x40), pred.theta())
        << "saturated weights should clear the training threshold";
}

TEST(PerceptronTest, LoadStateRejectsMismatchedGeometry)
{
    PerceptronPredictor small(PerceptronConfig::makeSmall());
    StateWriter out;
    small.saveState(out);

    PerceptronPredictor large(PerceptronConfig::makeDefault());
    StateReader in(out.bytes());
    EXPECT_THROW(large.loadState(in), std::runtime_error);
}

TEST(PerceptronMarginConfidenceTest, BucketIsMonotoneInMargin)
{
    const PerceptronConfig config = PerceptronConfig::makeSmall();
    PerceptronMarginConfidence conf(config, 8);
    EXPECT_EQ(conf.numBuckets(), 8u);
    EXPECT_TRUE(conf.bucketsAreOrdered());

    const std::int64_t theta = config.theta();
    std::uint64_t prev = 0;
    for (std::int64_t m = 0; m <= theta + 16; ++m) {
        const std::uint64_t bucket = conf.bucketForMargin(m);
        ASSERT_GE(bucket, prev) << "bucket fell at |margin| = " << m;
        ASSERT_LT(bucket, conf.numBuckets());
        // Sign never matters: confidence is the magnitude.
        ASSERT_EQ(conf.bucketForMargin(-m), bucket);
        prev = bucket;
    }
    EXPECT_EQ(conf.bucketForMargin(0), 0u);
    EXPECT_EQ(conf.bucketForMargin(theta + 1), conf.numBuckets() - 1);
    EXPECT_EQ(prev, conf.numBuckets() - 1)
        << "the top bucket is unreachable";
}

TEST(PerceptronMarginConfidenceTest, RejectsDegenerateLevelCount)
{
    EXPECT_THROW(
        PerceptronMarginConfidence(PerceptronConfig::makeSmall(), 1),
        std::runtime_error);
}

TEST(PerceptronMarginConfidenceTest, ShadowTracksMainPredictorBitExactly)
{
    PerceptronPredictor main(PerceptronConfig::makeSmall());
    PerceptronMarginConfidence conf(PerceptronConfig::makeSmall(), 8);

    Xorshift rng(0x9EC50003u);
    BranchContext ctx;
    for (int i = 0; i < 50'000; ++i) {
        const std::uint64_t r = rng.next();
        const std::uint64_t pc = ((r >> 8) & 0xFF) * 4;
        const bool taken = (r & 1) != 0;
        ctx.pc = pc;

        const std::int64_t margin = main.marginOf(pc);
        ASSERT_EQ(conf.shadowMargin(ctx), margin) << "step " << i;
        ASSERT_EQ(conf.bucketOf(ctx), conf.bucketForMargin(margin))
            << "step " << i;

        const bool correct = main.predict(pc) == taken;
        conf.update(ctx, correct, taken);
        main.update(pc, taken);
    }
}

} // namespace
} // namespace confsim
