/** @file Unit tests for the Yeh-Patt two-level predictor family. */

#include "predictor/two_level.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(TwoLevelTest, SchemeNames)
{
    EXPECT_STREQ(toString(TwoLevelScheme::GAg), "GAg");
    EXPECT_STREQ(toString(TwoLevelScheme::GAp), "GAp");
    EXPECT_STREQ(toString(TwoLevelScheme::PAg), "PAg");
    EXPECT_STREQ(toString(TwoLevelScheme::PAp), "PAp");
    TwoLevelPredictor pred(TwoLevelScheme::GAg, 8);
    EXPECT_EQ(pred.name(), "GAg-h8");
}

TEST(TwoLevelTest, StorageAccounting)
{
    // GAg h=10: one 10-bit BHR + 2^10 2-bit counters.
    TwoLevelPredictor gag(TwoLevelScheme::GAg, 10);
    EXPECT_EQ(gag.storageBits(), 10u + 2048u);

    // PAg h=8 with 64 BHRs: 64*8 + 2^8*2.
    TwoLevelPredictor pag(TwoLevelScheme::PAg, 8, 64);
    EXPECT_EQ(pag.storageBits(), 64u * 8u + 512u);

    // GAp h=8 with 4 PHTs: 8 + 4*2^8*2.
    TwoLevelPredictor gap(TwoLevelScheme::GAp, 8, 64, 4);
    EXPECT_EQ(gap.storageBits(), 8u + 4u * 512u);
}

TEST(TwoLevelTest, RejectsBadGeometry)
{
    EXPECT_THROW(TwoLevelPredictor(TwoLevelScheme::GAg, 0),
                 std::runtime_error);
    EXPECT_THROW(TwoLevelPredictor(TwoLevelScheme::GAg, 30),
                 std::runtime_error);
    EXPECT_THROW(TwoLevelPredictor(TwoLevelScheme::PAg, 8, 100),
                 std::runtime_error);
    EXPECT_THROW(TwoLevelPredictor(TwoLevelScheme::PAp, 8, 64, 3),
                 std::runtime_error);
}

class TwoLevelSchemeTest
    : public ::testing::TestWithParam<TwoLevelScheme>
{};

TEST_P(TwoLevelSchemeTest, InitiallyPredictsTaken)
{
    TwoLevelPredictor pred(GetParam(), 8);
    EXPECT_TRUE(pred.predict(0x1000));
}

TEST_P(TwoLevelSchemeTest, LearnsStronglyBiasedBranch)
{
    TwoLevelPredictor pred(GetParam(), 8);
    for (int i = 0; i < 600; ++i)
        pred.update(0x1000, false);
    EXPECT_FALSE(pred.predict(0x1000));
}

TEST_P(TwoLevelSchemeTest, LearnsPeriodicPattern)
{
    // T T N repeating, single branch: any two-level scheme with an
    // 8-deep history learns it perfectly.
    TwoLevelPredictor pred(GetParam(), 8);
    int phase = 0;
    for (int i = 0; i < 3000; ++i) {
        pred.update(0x2000, phase != 2);
        phase = (phase + 1) % 3;
    }
    int correct = 0;
    for (int i = 0; i < 300; ++i) {
        const bool taken = phase != 2;
        correct += (pred.predict(0x2000) == taken);
        pred.update(0x2000, taken);
        phase = (phase + 1) % 3;
    }
    EXPECT_GT(correct, 295);
}

TEST_P(TwoLevelSchemeTest, ResetRestoresInitialState)
{
    TwoLevelPredictor pred(GetParam(), 8);
    for (int i = 0; i < 100; ++i)
        pred.update(0x3000, false);
    pred.reset();
    EXPECT_TRUE(pred.predict(0x3000));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TwoLevelSchemeTest,
                         ::testing::Values(TwoLevelScheme::GAg,
                                           TwoLevelScheme::GAp,
                                           TwoLevelScheme::PAg,
                                           TwoLevelScheme::PAp),
                         [](const auto &info) {
                             return toString(info.param);
                         });

TEST(TwoLevelTest, PerAddressHistoryIsolatesBranches)
{
    // PAg: an alternating branch B must not destroy the history of a
    // constant branch A (their level-1 registers differ).
    // PCs 0x1000 and 0x1004 select different level-1 registers
    // ((pc >> 2) mod 256 differs).
    TwoLevelPredictor pred(TwoLevelScheme::PAp, 6, 256, 16);
    for (int i = 0; i < 2000; ++i) {
        pred.update(0x1000, true);        // A: always taken
        pred.update(0x1004, i % 2 == 0);  // B: alternating
    }
    EXPECT_TRUE(pred.predict(0x1000));
}

} // namespace
} // namespace confsim
