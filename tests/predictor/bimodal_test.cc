/** @file Unit tests for the bimodal predictor. */

#include "predictor/bimodal.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(BimodalTest, InitiallyPredictsTaken)
{
    // Counters initialize weakly taken, as in the paper.
    BimodalPredictor pred(1024);
    EXPECT_TRUE(pred.predict(0x1000));
}

TEST(BimodalTest, LearnsNotTakenAfterTwoUpdates)
{
    BimodalPredictor pred(1024);
    pred.update(0x1000, false); // weakly taken -> weakly not taken
    pred.update(0x1000, false); // -> strongly not taken
    EXPECT_FALSE(pred.predict(0x1000));
}

TEST(BimodalTest, HysteresisSurvivesOneAnomaly)
{
    BimodalPredictor pred(1024);
    for (int i = 0; i < 4; ++i)
        pred.update(0x1000, true); // strongly taken
    pred.update(0x1000, false);    // one anomaly
    EXPECT_TRUE(pred.predict(0x1000));
}

TEST(BimodalTest, DistinctPcsAreIndependent)
{
    BimodalPredictor pred(1024);
    pred.update(0x1000, false);
    pred.update(0x1000, false);
    EXPECT_FALSE(pred.predict(0x1000));
    EXPECT_TRUE(pred.predict(0x1004));
}

TEST(BimodalTest, AliasingWrapsOnTableSize)
{
    BimodalPredictor pred(16); // indexes on (pc >> 2) & 15
    pred.update(0x0, false);
    pred.update(0x0, false);
    // PC 16*4 = 0x40 aliases to the same entry.
    EXPECT_FALSE(pred.predict(0x40));
}

TEST(BimodalTest, StorageBits)
{
    BimodalPredictor pred(4096, 2);
    EXPECT_EQ(pred.storageBits(), 8192u);
}

TEST(BimodalTest, ResetRestoresWeaklyTaken)
{
    BimodalPredictor pred(64);
    pred.update(0x1000, false);
    pred.update(0x1000, false);
    pred.reset();
    EXPECT_TRUE(pred.predict(0x1000));
}

TEST(BimodalTest, PredictIsIdempotent)
{
    BimodalPredictor pred(64);
    const bool first = pred.predict(0x1000);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(pred.predict(0x1000), first);
}

TEST(BimodalTest, NameIncludesSize)
{
    BimodalPredictor pred(2048);
    EXPECT_EQ(pred.name(), "bimodal-2048");
}

} // namespace
} // namespace confsim
