/** @file Unit tests for the gselect predictor. */

#include "predictor/gselect.h"

#include <gtest/gtest.h>

#include "predictor/gshare.h"

namespace confsim {
namespace {

TEST(GselectTest, GeometryAndName)
{
    GselectPredictor pred(4096, 6);
    EXPECT_EQ(pred.storageBits(), 4096u * 2u + 6u);
    EXPECT_EQ(pred.name(), "gselect-4096x2b-h6");
}

TEST(GselectTest, HistoryMustLeavePcBits)
{
    EXPECT_THROW(GselectPredictor(1024, 10), std::runtime_error);
    EXPECT_THROW(GselectPredictor(1024, 12), std::runtime_error);
}

TEST(GselectTest, InitiallyWeaklyTaken)
{
    GselectPredictor pred(1024, 4);
    EXPECT_TRUE(pred.predict(0x1000));
}

TEST(GselectTest, LearnsBiasedBranch)
{
    GselectPredictor pred(4096, 6);
    for (int i = 0; i < 200; ++i)
        pred.update(0x2000, false);
    EXPECT_FALSE(pred.predict(0x2000));
}

TEST(GselectTest, LearnsAlternationViaHistory)
{
    GselectPredictor pred(4096, 6);
    bool outcome = false;
    for (int i = 0; i < 2000; ++i) {
        pred.update(0x3000, outcome);
        outcome = !outcome;
    }
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        correct += (pred.predict(0x3000) == outcome);
        pred.update(0x3000, outcome);
        outcome = !outcome;
    }
    EXPECT_GT(correct, 195);
}

TEST(GselectTest, HistoryPartitionsPcAliases)
{
    // Two PCs that agree in the low (kept) bits but differ above: in
    // gselect they alias; the history field then separates contexts.
    // This just checks the index composition doesn't fault and the
    // predictor behaves deterministically.
    GselectPredictor pred(256, 4); // 4 PC bits + 4 history bits
    pred.update(0x1000, true);
    pred.update(0x2000, true);
    EXPECT_TRUE(pred.predict(0x1000));
}

TEST(GselectTest, ResetRestores)
{
    GselectPredictor pred(1024, 4);
    for (int i = 0; i < 50; ++i)
        pred.update(0x1000, false);
    pred.reset();
    EXPECT_TRUE(pred.predict(0x1000));
}

} // namespace
} // namespace confsim
