/** @file Unit tests for trace/branch_record.h and vector sources. */

#include "trace/branch_record.h"
#include "trace/vector_trace_source.h"

#include <gtest/gtest.h>

namespace confsim {
namespace {

TEST(BranchRecordTest, DefaultsAreConditionalNotTaken)
{
    BranchRecord record;
    EXPECT_TRUE(record.isConditional());
    EXPECT_FALSE(record.taken);
    EXPECT_EQ(record.pc, 0u);
}

TEST(BranchRecordTest, OnlyConditionalIsConditional)
{
    BranchRecord record;
    record.type = BranchType::Call;
    EXPECT_FALSE(record.isConditional());
    record.type = BranchType::Return;
    EXPECT_FALSE(record.isConditional());
    record.type = BranchType::Unconditional;
    EXPECT_FALSE(record.isConditional());
    record.type = BranchType::Conditional;
    EXPECT_TRUE(record.isConditional());
}

TEST(BranchRecordTest, EqualityComparesAllFields)
{
    BranchRecord a{0x1000, 0x2000, true, BranchType::Conditional};
    BranchRecord b = a;
    EXPECT_EQ(a, b);
    b.taken = false;
    EXPECT_NE(a, b);
}

TEST(VectorTraceSourceTest, YieldsRecordsInOrder)
{
    std::vector<BranchRecord> records = {
        {0x100, 0x200, true, BranchType::Conditional},
        {0x104, 0x300, false, BranchType::Conditional},
    };
    VectorTraceSource source(records);
    BranchRecord out;
    ASSERT_TRUE(source.next(out));
    EXPECT_EQ(out, records[0]);
    ASSERT_TRUE(source.next(out));
    EXPECT_EQ(out, records[1]);
    EXPECT_FALSE(source.next(out));
}

TEST(VectorTraceSourceTest, ResetReplaysIdentically)
{
    VectorTraceSource source({{0x100, 0x200, true,
                               BranchType::Conditional}});
    BranchRecord first;
    ASSERT_TRUE(source.next(first));
    ASSERT_FALSE(source.next(first));
    source.reset();
    BranchRecord again;
    ASSERT_TRUE(source.next(again));
    EXPECT_EQ(again.pc, 0x100u);
}

TEST(VectorTraceSourceTest, EmptySourceIsImmediatelyExhausted)
{
    VectorTraceSource source({});
    BranchRecord out;
    EXPECT_FALSE(source.next(out));
    source.reset();
    EXPECT_FALSE(source.next(out));
}

} // namespace
} // namespace confsim
