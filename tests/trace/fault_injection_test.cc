/** @file Unit tests for the fault-injecting trace decorator. */

#include "fault/fault_injection.h"

#include <gtest/gtest.h>

#include "trace/vector_trace_source.h"
#include "util/rng.h"

namespace confsim {
namespace {

std::vector<BranchRecord>
makeRecords(std::size_t n)
{
    std::vector<BranchRecord> records;
    for (std::size_t i = 0; i < n; ++i) {
        BranchRecord r;
        r.pc = 0x1000 + 4 * i;
        r.target = r.pc + 64;
        r.taken = (i % 3) == 0;
        records.push_back(r);
    }
    return records;
}

std::vector<BranchRecord>
drain(TraceSource &source)
{
    std::vector<BranchRecord> out;
    BranchRecord record;
    while (source.next(record))
        out.push_back(record);
    return out;
}

TEST(FaultInjectionTest, DefaultSpecIsPassthrough)
{
    const auto records = makeRecords(500);
    VectorTraceSource inner(records);
    FaultInjectingTraceSource faulty(inner, FaultSpec{});
    EXPECT_EQ(drain(faulty), records);
    EXPECT_EQ(faulty.stats().total(), 0u);
    EXPECT_FALSE(faulty.stats().truncated);
}

TEST(FaultInjectionTest, SameSeedSameFaultStream)
{
    const auto records = makeRecords(2000);
    FaultSpec spec;
    spec.takenFlipProb = 0.05;
    spec.pcBitFlipProb = 0.05;
    spec.dropProb = 0.02;
    spec.duplicateProb = 0.02;

    VectorTraceSource inner_a(records);
    VectorTraceSource inner_b(records);
    FaultInjectingTraceSource a(inner_a, spec);
    FaultInjectingTraceSource b(inner_b, spec);
    EXPECT_EQ(drain(a), drain(b));
    EXPECT_GT(a.stats().total(), 0u);
    EXPECT_EQ(a.stats().takenFlips, b.stats().takenFlips);
}

TEST(FaultInjectionTest, ResetReplaysIdenticalCorruption)
{
    const auto records = makeRecords(1000);
    FaultSpec spec;
    spec.takenFlipProb = 0.1;
    spec.dropProb = 0.05;
    VectorTraceSource inner(records);
    FaultInjectingTraceSource faulty(inner, spec);

    const auto first = drain(faulty);
    faulty.reset();
    EXPECT_EQ(drain(faulty), first);
}

TEST(FaultInjectionTest, DropsShrinkAndDuplicatesGrowTheStream)
{
    const auto records = makeRecords(4000);
    {
        FaultSpec spec;
        spec.dropProb = 0.1;
        VectorTraceSource inner(records);
        FaultInjectingTraceSource faulty(inner, spec);
        const auto out = drain(faulty);
        EXPECT_EQ(out.size() + faulty.stats().drops, records.size());
        EXPECT_GT(faulty.stats().drops, 0u);
    }
    {
        FaultSpec spec;
        spec.duplicateProb = 0.1;
        VectorTraceSource inner(records);
        FaultInjectingTraceSource faulty(inner, spec);
        const auto out = drain(faulty);
        EXPECT_GT(out.size(), records.size());
        EXPECT_GT(faulty.stats().duplicates, 0u);
    }
}

TEST(FaultInjectionTest, TakenFlipCountMatchesDelta)
{
    const auto records = makeRecords(3000);
    FaultSpec spec;
    spec.takenFlipProb = 0.25;
    VectorTraceSource inner(records);
    FaultInjectingTraceSource faulty(inner, spec);
    const auto out = drain(faulty);
    ASSERT_EQ(out.size(), records.size());
    std::uint64_t differing = 0;
    for (std::size_t i = 0; i < out.size(); ++i)
        differing += out[i].taken != records[i].taken ? 1 : 0;
    EXPECT_EQ(differing, faulty.stats().takenFlips);
    EXPECT_GT(differing, 0u);
}

TEST(FaultInjectionTest, PcFlipChangesExactlyOneBit)
{
    const auto records = makeRecords(1000);
    FaultSpec spec;
    spec.pcBitFlipProb = 1.0; // corrupt every record
    VectorTraceSource inner(records);
    FaultInjectingTraceSource faulty(inner, spec);
    const auto out = drain(faulty);
    ASSERT_EQ(out.size(), records.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        const std::uint64_t diff = out[i].pc ^ records[i].pc;
        EXPECT_EQ(__builtin_popcountll(diff), 1) << "record " << i;
    }
    EXPECT_EQ(faulty.stats().pcFlips, records.size());
}

TEST(FaultInjectionTest, TruncationStopsTheStream)
{
    const auto records = makeRecords(100);
    FaultSpec spec;
    spec.truncateAfter = 40;
    VectorTraceSource inner(records);
    FaultInjectingTraceSource faulty(inner, spec);
    const auto out = drain(faulty);
    EXPECT_EQ(out.size(), 40u);
    EXPECT_TRUE(faulty.stats().truncated);
}

TEST(FaultInjectionTest, FailAfterThrows)
{
    const auto records = makeRecords(100);
    FaultSpec spec;
    spec.failAfter = 10;
    VectorTraceSource inner(records);
    FaultInjectingTraceSource faulty(inner, spec);
    BranchRecord record;
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(faulty.next(record));
    EXPECT_THROW(faulty.next(record), std::runtime_error);
}

TEST(FaultInjectionTest, OwningConstructorRejectsNull)
{
    EXPECT_THROW(FaultInjectingTraceSource(
                     std::unique_ptr<TraceSource>{}, FaultSpec{}),
                 std::runtime_error);
}

} // namespace
} // namespace confsim
