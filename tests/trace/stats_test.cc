/** @file Unit tests for trace/trace_stats.h. */

#include "trace/trace_stats.h"

#include <gtest/gtest.h>

#include "trace/vector_trace_source.h"

namespace confsim {
namespace {

TEST(TraceStatsTest, CountsByType)
{
    VectorTraceSource source({
        {0x100, 0x200, true, BranchType::Conditional},
        {0x104, 0x200, false, BranchType::Conditional},
        {0x108, 0x300, true, BranchType::Call},
        {0x10C, 0x400, true, BranchType::Return},
        {0x110, 0x500, true, BranchType::Unconditional},
    });
    const TraceStats stats = collectTraceStats(source);
    EXPECT_EQ(stats.totalRecords, 5u);
    EXPECT_EQ(stats.conditionalCount, 2u);
    EXPECT_EQ(stats.takenCount, 1u);
    EXPECT_EQ(stats.callCount, 1u);
    EXPECT_EQ(stats.returnCount, 1u);
    EXPECT_EQ(stats.unconditionalCount, 1u);
}

TEST(TraceStatsTest, TakenRate)
{
    VectorTraceSource source({
        {0x100, 0x200, true, BranchType::Conditional},
        {0x100, 0x200, true, BranchType::Conditional},
        {0x100, 0x200, true, BranchType::Conditional},
        {0x100, 0x200, false, BranchType::Conditional},
    });
    const TraceStats stats = collectTraceStats(source);
    EXPECT_DOUBLE_EQ(stats.takenRate(), 0.75);
}

TEST(TraceStatsTest, EmptyTraceHasZeroRate)
{
    VectorTraceSource source({});
    const TraceStats stats = collectTraceStats(source);
    EXPECT_EQ(stats.totalRecords, 0u);
    EXPECT_DOUBLE_EQ(stats.takenRate(), 0.0);
}

TEST(TraceStatsTest, StaticWorkingSetCountsDistinctPcs)
{
    VectorTraceSource source({
        {0x100, 0x200, true, BranchType::Conditional},
        {0x104, 0x200, true, BranchType::Conditional},
        {0x100, 0x200, false, BranchType::Conditional},
        {0x108, 0x300, true, BranchType::Call}, // not conditional
    });
    const TraceStats stats = collectTraceStats(source);
    EXPECT_EQ(stats.staticBranchCount, 2u);
    EXPECT_EQ(stats.perPcCounts.at(0x100), 2u);
    EXPECT_EQ(stats.perPcCounts.at(0x104), 1u);
}

} // namespace
} // namespace confsim
