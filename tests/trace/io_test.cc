/** @file Round-trip and robustness tests for the binary trace format. */

#include "trace/trace_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "trace/vector_trace_source.h"
#include "util/rng.h"

namespace confsim {
namespace {

class TraceIoTest : public ::testing::Test
{
  protected:
    std::string path_ = ::testing::TempDir() + "/confsim_io_test.cbt";

    void TearDown() override { std::remove(path_.c_str()); }

    std::vector<BranchRecord>
    randomRecords(std::size_t n, std::uint64_t seed)
    {
        Rng rng(seed);
        std::vector<BranchRecord> records;
        std::uint64_t pc = 0x400000;
        for (std::size_t i = 0; i < n; ++i) {
            BranchRecord r;
            // Mix of local steps and far jumps to exercise deltas.
            if (rng.nextBernoulli(0.8))
                pc += 4 * (1 + rng.nextBelow(16));
            else
                pc = 0x400000 + 4 * rng.nextBelow(1 << 20);
            r.pc = pc;
            r.target = pc + 4 * (rng.nextInRange(-2048, 2048));
            r.taken = rng.nextBernoulli(0.6);
            r.type = static_cast<BranchType>(rng.nextBelow(4));
            records.push_back(r);
        }
        return records;
    }
};

TEST_F(TraceIoTest, ZigZagRoundTrips)
{
    for (std::int64_t v : {0LL, 1LL, -1LL, 1234567LL, -1234567LL,
                           (1LL << 62), -(1LL << 62)}) {
        EXPECT_EQ(zigZagDecode(zigZagEncode(v)), v);
    }
}

TEST_F(TraceIoTest, ZigZagSmallMagnitudesEncodeSmall)
{
    EXPECT_EQ(zigZagEncode(0), 0u);
    EXPECT_EQ(zigZagEncode(-1), 1u);
    EXPECT_EQ(zigZagEncode(1), 2u);
    EXPECT_EQ(zigZagEncode(-2), 3u);
}

TEST_F(TraceIoTest, RoundTripPreservesEveryRecord)
{
    const auto records = randomRecords(5000, 99);
    VectorTraceSource source(records);
    EXPECT_EQ(writeTraceFile(source, path_), 5000u);

    TraceFileReader reader(path_);
    EXPECT_EQ(reader.recordCount(), 5000u);
    BranchRecord out;
    for (const auto &expected : records) {
        ASSERT_TRUE(reader.next(out));
        ASSERT_EQ(out, expected);
    }
    EXPECT_FALSE(reader.next(out));
}

TEST_F(TraceIoTest, ReaderResetReplays)
{
    const auto records = randomRecords(100, 7);
    VectorTraceSource source(records);
    writeTraceFile(source, path_);

    TraceFileReader reader(path_);
    BranchRecord out;
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(reader.next(out));
    ASSERT_FALSE(reader.next(out));
    reader.reset();
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out, records[0]);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    VectorTraceSource source({});
    EXPECT_EQ(writeTraceFile(source, path_), 0u);
    TraceFileReader reader(path_);
    EXPECT_EQ(reader.recordCount(), 0u);
    BranchRecord out;
    EXPECT_FALSE(reader.next(out));
}

TEST_F(TraceIoTest, CompressionBeatsNaiveEncoding)
{
    const auto records = randomRecords(10000, 3);
    VectorTraceSource source(records);
    writeTraceFile(source, path_);
    std::ifstream in(path_, std::ios::ate | std::ios::binary);
    const auto size = static_cast<std::uint64_t>(in.tellg());
    // A naive fixed-size encoding would be 17 bytes/record.
    EXPECT_LT(size, 10000u * 17u / 2u);
}

TEST_F(TraceIoTest, MissingFileIsFatal)
{
    EXPECT_THROW(TraceFileReader("/no/such/file.cbt"),
                 std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicIsFatal)
{
    std::ofstream out(path_, std::ios::binary);
    out << "NOPE00000000";
    out.close();
    EXPECT_THROW(TraceFileReader{path_}, std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedRecordsAreFatal)
{
    const auto records = randomRecords(100, 5);
    VectorTraceSource source(records);
    writeTraceFile(source, path_);

    // Truncate the file in the middle of the record stream.
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    const auto full = static_cast<std::size_t>(in.tellg());
    std::vector<char> bytes(full / 2);
    in.seekg(0);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();

    TraceFileReader reader(path_);
    BranchRecord record;
    EXPECT_THROW(
        {
            while (reader.next(record)) {
            }
        },
        std::runtime_error);
}

TEST_F(TraceIoTest, TextTraceWritesOneLinePerRecord)
{
    const auto records = randomRecords(50, 21);
    VectorTraceSource source(records);
    const std::string text_path =
        ::testing::TempDir() + "/confsim_io_test.txt";
    EXPECT_EQ(writeTextTrace(source, text_path), 50u);
    std::ifstream in(text_path);
    std::string line;
    int lines = 0;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, 50);
    std::remove(text_path.c_str());
}


TEST_F(TraceIoTest, TextRoundTripPreservesRecords)
{
    const auto records = randomRecords(500, 42);
    VectorTraceSource source(records);
    const std::string text_path =
        ::testing::TempDir() + "/confsim_text_rt.txt";
    writeTextTrace(source, text_path);

    TextTraceReader reader(text_path);
    BranchRecord out;
    for (const auto &expected : records) {
        ASSERT_TRUE(reader.next(out));
        ASSERT_EQ(out, expected);
    }
    EXPECT_FALSE(reader.next(out));
    std::remove(text_path.c_str());
}

TEST_F(TraceIoTest, TextReaderSkipsCommentsAndBlanks)
{
    const std::string text_path =
        ::testing::TempDir() + "/confsim_text_cmt.txt";
    {
        std::ofstream out(text_path);
        out << "# a comment line\n";
        out << "\n";
        out << "  0x1000 0x2000 T 0\n";
        out << "# another\n";
        out << "0x1004 0x3000 N 1\n";
    }
    TextTraceReader reader(text_path);
    BranchRecord record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.pc, 0x1000u);
    EXPECT_TRUE(record.taken);
    EXPECT_EQ(record.type, BranchType::Conditional);
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.pc, 0x1004u);
    EXPECT_FALSE(record.taken);
    EXPECT_EQ(record.type, BranchType::Unconditional);
    EXPECT_FALSE(reader.next(record));
    std::remove(text_path.c_str());
}

TEST_F(TraceIoTest, TextReaderResetReplays)
{
    const std::string text_path =
        ::testing::TempDir() + "/confsim_text_reset.txt";
    {
        std::ofstream out(text_path);
        out << "0x1000 0x2000 T 0\n";
    }
    TextTraceReader reader(text_path);
    BranchRecord record;
    ASSERT_TRUE(reader.next(record));
    ASSERT_FALSE(reader.next(record));
    reader.reset();
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.pc, 0x1000u);
    std::remove(text_path.c_str());
}

TEST_F(TraceIoTest, TextReaderRejectsMalformedLines)
{
    const std::string text_path =
        ::testing::TempDir() + "/confsim_text_bad.txt";
    for (const char *bad_line :
         {"0x1000 0x2000 X 0", "0x1000 0x2000 T 9", "garbage",
          "0x1000 0x2000"}) {
        {
            std::ofstream out(text_path);
            out << bad_line << "\n";
        }
        TextTraceReader reader(text_path);
        BranchRecord record;
        EXPECT_THROW(reader.next(record), std::runtime_error)
            << bad_line;
    }
    std::remove(text_path.c_str());
}

TEST_F(TraceIoTest, TextReaderMissingFileIsFatal)
{
    EXPECT_THROW(TextTraceReader("/no/such/file.txt"),
                 std::runtime_error);
}
} // namespace
} // namespace confsim
