/** @file Round-trip and robustness tests for the binary trace formats. */

#include "trace/trace_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "trace/vector_trace_source.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace confsim {
namespace {

class TraceIoTest : public ::testing::Test
{
  protected:
    // Unique per test: the cases run concurrently under `ctest -j`,
    // so a path shared across the fixture lets one case truncate a
    // file another is reading.
    std::string path_ = ::testing::TempDir() + "/confsim_io_" +
                        ::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name() +
                        ".cbt";

    void TearDown() override { std::remove(path_.c_str()); }

    std::vector<BranchRecord>
    randomRecords(std::size_t n, std::uint64_t seed)
    {
        Rng rng(seed);
        std::vector<BranchRecord> records;
        std::uint64_t pc = 0x400000;
        for (std::size_t i = 0; i < n; ++i) {
            BranchRecord r;
            // Mix of local steps and far jumps to exercise deltas.
            if (rng.nextBernoulli(0.8))
                pc += 4 * (1 + rng.nextBelow(16));
            else
                pc = 0x400000 + 4 * rng.nextBelow(1 << 20);
            r.pc = pc;
            r.target = pc + 4 * (rng.nextInRange(-2048, 2048));
            r.taken = rng.nextBernoulli(0.6);
            r.type = static_cast<BranchType>(rng.nextBelow(4));
            records.push_back(r);
        }
        return records;
    }

    std::vector<char>
    readFileBytes(const std::string &path)
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        std::vector<char> bytes(
            static_cast<std::size_t>(in.tellg()));
        in.seekg(0);
        in.read(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
        return bytes;
    }

    void
    writeFileBytes(const std::string &path,
                   const std::vector<char> &bytes)
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    void
    flipBit(const std::string &path, std::size_t byte_offset,
            unsigned bit)
    {
        auto bytes = readFileBytes(path);
        ASSERT_LT(byte_offset, bytes.size());
        bytes[byte_offset] ^= static_cast<char>(1u << bit);
        writeFileBytes(path, bytes);
    }

    struct ChunkInfo
    {
        std::size_t offset;       //!< of the sync marker
        std::uint32_t payloadSize;
        std::uint32_t recordCount;
    };

    /** Parse CBT2 chunk framing (assumes an intact file). */
    std::vector<ChunkInfo>
    parseChunks(const std::string &path)
    {
        const auto bytes = readFileBytes(path);
        std::vector<ChunkInfo> chunks;
        std::size_t pos = 16; // CBT2 header
        while (pos + 12 <= bytes.size()) {
            ChunkInfo info;
            info.offset = pos;
            std::memcpy(&info.payloadSize, bytes.data() + pos + 4, 4);
            std::memcpy(&info.recordCount, bytes.data() + pos + 8, 4);
            chunks.push_back(info);
            pos += 12 + info.payloadSize + 4;
        }
        return chunks;
    }
};

TEST_F(TraceIoTest, ZigZagRoundTrips)
{
    for (std::int64_t v : {0LL, 1LL, -1LL, 1234567LL, -1234567LL,
                           (1LL << 62), -(1LL << 62)}) {
        EXPECT_EQ(zigZagDecode(zigZagEncode(v)), v);
    }
}

TEST_F(TraceIoTest, ZigZagSmallMagnitudesEncodeSmall)
{
    EXPECT_EQ(zigZagEncode(0), 0u);
    EXPECT_EQ(zigZagEncode(-1), 1u);
    EXPECT_EQ(zigZagEncode(1), 2u);
    EXPECT_EQ(zigZagEncode(-2), 3u);
}

TEST_F(TraceIoTest, RoundTripPreservesEveryRecord)
{
    const auto records = randomRecords(5000, 99);
    VectorTraceSource source(records);
    EXPECT_EQ(writeTraceFile(source, path_), 5000u);

    TraceFileReader reader(path_);
    EXPECT_EQ(reader.recordCount(), 5000u);
    BranchRecord out;
    for (const auto &expected : records) {
        ASSERT_TRUE(reader.next(out));
        ASSERT_EQ(out, expected);
    }
    EXPECT_FALSE(reader.next(out));
}

TEST_F(TraceIoTest, ReaderResetReplays)
{
    const auto records = randomRecords(100, 7);
    VectorTraceSource source(records);
    writeTraceFile(source, path_);

    TraceFileReader reader(path_);
    BranchRecord out;
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(reader.next(out));
    ASSERT_FALSE(reader.next(out));
    reader.reset();
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out, records[0]);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    VectorTraceSource source({});
    EXPECT_EQ(writeTraceFile(source, path_), 0u);
    TraceFileReader reader(path_);
    EXPECT_EQ(reader.recordCount(), 0u);
    BranchRecord out;
    EXPECT_FALSE(reader.next(out));
}

TEST_F(TraceIoTest, CompressionBeatsNaiveEncoding)
{
    const auto records = randomRecords(10000, 3);
    VectorTraceSource source(records);
    writeTraceFile(source, path_);
    std::ifstream in(path_, std::ios::ate | std::ios::binary);
    const auto size = static_cast<std::uint64_t>(in.tellg());
    // A naive fixed-size encoding would be 17 bytes/record.
    EXPECT_LT(size, 10000u * 17u / 2u);
}

TEST_F(TraceIoTest, MissingFileIsFatal)
{
    EXPECT_THROW(TraceFileReader("/no/such/file.cbt"),
                 std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicIsFatal)
{
    std::ofstream out(path_, std::ios::binary);
    out << "NOPE00000000";
    out.close();
    EXPECT_THROW(TraceFileReader{path_}, std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedRecordsAreFatal)
{
    const auto records = randomRecords(100, 5);
    VectorTraceSource source(records);
    writeTraceFile(source, path_);

    // Truncate the file in the middle of the record stream.
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    const auto full = static_cast<std::size_t>(in.tellg());
    std::vector<char> bytes(full / 2);
    in.seekg(0);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();

    TraceFileReader reader(path_);
    BranchRecord record;
    EXPECT_THROW(
        {
            while (reader.next(record)) {
            }
        },
        std::runtime_error);
}

TEST_F(TraceIoTest, TextTraceWritesOneLinePerRecord)
{
    const auto records = randomRecords(50, 21);
    VectorTraceSource source(records);
    const std::string text_path =
        ::testing::TempDir() + "/confsim_io_test.txt";
    EXPECT_EQ(writeTextTrace(source, text_path), 50u);
    std::ifstream in(text_path);
    std::string line;
    int lines = 0;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, 50);
    std::remove(text_path.c_str());
}


TEST_F(TraceIoTest, TextRoundTripPreservesRecords)
{
    const auto records = randomRecords(500, 42);
    VectorTraceSource source(records);
    const std::string text_path =
        ::testing::TempDir() + "/confsim_text_rt.txt";
    writeTextTrace(source, text_path);

    TextTraceReader reader(text_path);
    BranchRecord out;
    for (const auto &expected : records) {
        ASSERT_TRUE(reader.next(out));
        ASSERT_EQ(out, expected);
    }
    EXPECT_FALSE(reader.next(out));
    std::remove(text_path.c_str());
}

TEST_F(TraceIoTest, TextReaderSkipsCommentsAndBlanks)
{
    const std::string text_path =
        ::testing::TempDir() + "/confsim_text_cmt.txt";
    {
        std::ofstream out(text_path);
        out << "# a comment line\n";
        out << "\n";
        out << "  0x1000 0x2000 T 0\n";
        out << "# another\n";
        out << "0x1004 0x3000 N 1\n";
    }
    TextTraceReader reader(text_path);
    BranchRecord record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.pc, 0x1000u);
    EXPECT_TRUE(record.taken);
    EXPECT_EQ(record.type, BranchType::Conditional);
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.pc, 0x1004u);
    EXPECT_FALSE(record.taken);
    EXPECT_EQ(record.type, BranchType::Unconditional);
    EXPECT_FALSE(reader.next(record));
    std::remove(text_path.c_str());
}

TEST_F(TraceIoTest, TextReaderResetReplays)
{
    const std::string text_path =
        ::testing::TempDir() + "/confsim_text_reset.txt";
    {
        std::ofstream out(text_path);
        out << "0x1000 0x2000 T 0\n";
    }
    TextTraceReader reader(text_path);
    BranchRecord record;
    ASSERT_TRUE(reader.next(record));
    ASSERT_FALSE(reader.next(record));
    reader.reset();
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.pc, 0x1000u);
    std::remove(text_path.c_str());
}

TEST_F(TraceIoTest, TextReaderRejectsMalformedLines)
{
    const std::string text_path =
        ::testing::TempDir() + "/confsim_text_bad.txt";
    for (const char *bad_line :
         {"0x1000 0x2000 X 0", "0x1000 0x2000 T 9", "garbage",
          "0x1000 0x2000"}) {
        {
            std::ofstream out(text_path);
            out << bad_line << "\n";
        }
        TextTraceReader reader(text_path);
        BranchRecord record;
        EXPECT_THROW(reader.next(record), std::runtime_error)
            << bad_line;
    }
    std::remove(text_path.c_str());
}

TEST_F(TraceIoTest, TextReaderMissingFileIsFatal)
{
    EXPECT_THROW(TextTraceReader("/no/such/file.txt"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// CBT1 compatibility.

TEST_F(TraceIoTest, Cbt1RoundTripStillWorks)
{
    const auto records = randomRecords(5000, 11);
    VectorTraceSource source(records);
    EXPECT_EQ(writeTraceFile(source, path_, TraceFormat::kCbt1), 5000u);

    TraceFileReader reader(path_);
    EXPECT_EQ(reader.format(), TraceFormat::kCbt1);
    EXPECT_EQ(reader.recordCount(), 5000u);
    BranchRecord out;
    for (const auto &expected : records) {
        ASSERT_TRUE(reader.next(out));
        ASSERT_EQ(out, expected);
    }
    EXPECT_FALSE(reader.next(out));
    EXPECT_EQ(reader.droppedRecords(), 0u);
}

TEST_F(TraceIoTest, Cbt1EncodingIsByteStable)
{
    // The legacy on-disk encoding must never drift: header is magic +
    // LE count, then varint zig-zag deltas + flags per record.
    BranchRecord r;
    r.pc = 0x47939C;
    r.target = 0x47ACCC;
    r.taken = false;
    r.type = BranchType::Unconditional;
    VectorTraceSource source({r});
    writeTraceFile(source, path_, TraceFormat::kCbt1);

    const std::vector<char> expected = {
        'C', 'B', 'T', '1',
        0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        '\xce', '\x93', '\x8f', '\x01', // zz(pc >> 2)
        '\x98', '\x19',                 // zz((target - pc) >> 2)
        0x02,                           // flags: not taken, type 1
    };
    EXPECT_EQ(readFileBytes(path_), expected);
}

TEST_F(TraceIoTest, Cbt1ToCbt2RoundTripCompatibility)
{
    const auto records = randomRecords(6000, 13);
    VectorTraceSource source(records);
    writeTraceFile(source, path_, TraceFormat::kCbt1);

    const std::string path2 =
        ::testing::TempDir() + "/confsim_io_test_up.cbt";
    {
        TraceFileReader legacy(path_);
        EXPECT_EQ(writeTraceFile(legacy, path2), 6000u);
    }
    TraceFileReader upgraded(path2);
    EXPECT_EQ(upgraded.format(), TraceFormat::kCbt2);
    BranchRecord out;
    for (const auto &expected : records) {
        ASSERT_TRUE(upgraded.next(out));
        ASSERT_EQ(out, expected);
    }
    EXPECT_FALSE(upgraded.next(out));
    std::remove(path2.c_str());
}

TEST_F(TraceIoTest, OverlongVarintIsFatal)
{
    // CBT1 body of eleven continuation bytes: > 10-byte varint bound.
    std::vector<char> bytes = {'C', 'B', 'T', '1',
                               0x01, 0x00, 0x00, 0x00,
                               0x00, 0x00, 0x00, 0x00};
    for (int i = 0; i < 11; ++i)
        bytes.push_back('\x80');
    writeFileBytes(path_, bytes);

    TraceFileReader reader(path_);
    BranchRecord record;
    try {
        reader.next(record);
        FAIL() << "overlong varint not detected";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("overlong varint"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(TraceIoTest, TruncatedRecordErrorNamesRecordIndex)
{
    const auto records = randomRecords(100, 5);
    VectorTraceSource source(records);
    writeTraceFile(source, path_, TraceFormat::kCbt1);

    auto bytes = readFileBytes(path_);
    bytes.resize(bytes.size() / 2);
    writeFileBytes(path_, bytes);

    TraceFileReader reader(path_);
    BranchRecord record;
    try {
        while (reader.next(record)) {
        }
        FAIL() << "truncation not detected";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("record"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find(path_),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------
// TraceWriter finalization.

TEST_F(TraceIoTest, WriterDestructorFinalizesHeaderCount)
{
    const auto records = randomRecords(10, 3);
    {
        TraceWriter writer(path_);
        for (const auto &r : records)
            writer.append(r);
        // No finish(): simulate exception unwind past the writer.
    }
    TraceFileReader reader(path_);
    EXPECT_EQ(reader.recordCount(), 10u);
    BranchRecord out;
    for (const auto &expected : records) {
        ASSERT_TRUE(reader.next(out));
        ASSERT_EQ(out, expected);
    }
    EXPECT_FALSE(reader.next(out));
}

TEST_F(TraceIoTest, WriterFinishTwiceThrows)
{
    TraceWriter writer(path_);
    writer.finish();
    EXPECT_THROW(writer.finish(), std::runtime_error);
}

// ---------------------------------------------------------------------
// CBT2 integrity checking and recovery.

TEST_F(TraceIoTest, Cbt2DetectsSingleBitFlipAnywhere)
{
    const auto records = randomRecords(200, 17);
    VectorTraceSource source(records);
    writeTraceFile(source, path_);
    const std::size_t size = readFileBytes(path_).size();

    // Flip one bit at every byte offset in turn; a strict reader must
    // throw either at open or while draining the stream.
    for (std::size_t offset = 0; offset < size; ++offset) {
        {
            VectorTraceSource again(records);
            writeTraceFile(again, path_);
        }
        flipBit(path_, offset, offset % 8);
        EXPECT_THROW(
            {
                TraceFileReader reader(path_);
                BranchRecord record;
                while (reader.next(record)) {
                }
            },
            std::runtime_error)
            << "flip at byte " << offset << " not detected";
    }
}

TEST_F(TraceIoTest, Cbt2SkipCorruptResyncsAtNextChunk)
{
    // Four chunks: 3 * 4096 full + 1 * 100 tail.
    const std::size_t n = 3 * TraceWriter::kChunkRecords + 100;
    const auto records = randomRecords(n, 23);
    VectorTraceSource source(records);
    writeTraceFile(source, path_);

    const auto chunks = parseChunks(path_);
    ASSERT_EQ(chunks.size(), 4u);

    // Corrupt a payload byte in the middle of chunk 1.
    flipBit(path_, chunks[1].offset + 12 + chunks[1].payloadSize / 2,
            3);

    TraceFileReader reader(path_, RecoveryMode::kSkipCorrupt);
    std::vector<BranchRecord> survivors;
    BranchRecord out;
    while (reader.next(out))
        survivors.push_back(out);

    EXPECT_EQ(reader.droppedRecords(), TraceWriter::kChunkRecords);
    ASSERT_EQ(survivors.size(), n - TraceWriter::kChunkRecords);

    // Chunk 0 then chunks 2..3, bit-exact: the per-chunk delta chain
    // means losing chunk 1 cannot poison its successors.
    std::vector<BranchRecord> expected(
        records.begin(),
        records.begin() + TraceWriter::kChunkRecords);
    expected.insert(expected.end(),
                    records.begin() + 2 * TraceWriter::kChunkRecords,
                    records.end());
    EXPECT_EQ(survivors, expected);
}

TEST_F(TraceIoTest, Cbt2SkipCorruptHandlesTruncatedTail)
{
    const std::size_t n = 2 * TraceWriter::kChunkRecords;
    const auto records = randomRecords(n, 29);
    VectorTraceSource source(records);
    writeTraceFile(source, path_);

    const auto chunks = parseChunks(path_);
    ASSERT_EQ(chunks.size(), 2u);
    auto bytes = readFileBytes(path_);
    bytes.resize(chunks[1].offset + 12 + chunks[1].payloadSize / 2);
    writeFileBytes(path_, bytes);

    TraceFileReader reader(path_, RecoveryMode::kSkipCorrupt);
    std::size_t delivered = 0;
    BranchRecord out;
    while (reader.next(out))
        ++delivered;
    EXPECT_EQ(delivered, TraceWriter::kChunkRecords);
    EXPECT_EQ(reader.droppedRecords(), TraceWriter::kChunkRecords);
}

TEST_F(TraceIoTest, Cbt2StrictRecordCountMismatchIsFatal)
{
    const auto records = randomRecords(100, 31);
    VectorTraceSource source(records);
    writeTraceFile(source, path_);

    // Patch the header count (and recompute its CRC so only the
    // cross-check against the chunk contents can catch the lie).
    auto bytes = readFileBytes(path_);
    std::uint64_t count = 0;
    std::memcpy(&count, bytes.data() + 4, sizeof(count));
    count += 7;
    std::memcpy(bytes.data() + 4, &count, sizeof(count));
    const std::uint32_t header_crc = crc32(&count, sizeof(count));
    std::memcpy(bytes.data() + 12, &header_crc, sizeof(header_crc));
    writeFileBytes(path_, bytes);

    TraceFileReader reader(path_);
    BranchRecord record;
    EXPECT_THROW(
        {
            while (reader.next(record)) {
            }
        },
        std::runtime_error);
}

TEST_F(TraceIoTest, Cbt2SkipCorruptSurvivesHeaderCountCorruption)
{
    const auto records = randomRecords(500, 37);
    VectorTraceSource source(records);
    writeTraceFile(source, path_);

    // Flip a bit inside the header record count without fixing the
    // CRC: strict throws at open, skip-corrupt falls back to the
    // per-chunk counts and still delivers every record.
    flipBit(path_, 6, 0);
    EXPECT_THROW(TraceFileReader{path_}, std::runtime_error);

    TraceFileReader reader(path_, RecoveryMode::kSkipCorrupt);
    std::vector<BranchRecord> out_records;
    BranchRecord out;
    while (reader.next(out))
        out_records.push_back(out);
    EXPECT_EQ(out_records.size(), records.size());
    EXPECT_EQ(out_records, records);
    EXPECT_EQ(reader.droppedRecords(), 0u);
}

TEST_F(TraceIoTest, Cbt2TruncatedHeaderIsFatal)
{
    writeFileBytes(path_, {'C', 'B', 'T', '2', 0x05, 0x00});
    EXPECT_THROW(TraceFileReader{path_}, std::runtime_error);
}

TEST_F(TraceIoTest, Cbt2ReaderResetReplaysAndClearsDropCount)
{
    const std::size_t n = TraceWriter::kChunkRecords + 50;
    const auto records = randomRecords(n, 41);
    VectorTraceSource source(records);
    writeTraceFile(source, path_);

    const auto chunks = parseChunks(path_);
    ASSERT_EQ(chunks.size(), 2u);
    flipBit(path_, chunks[0].offset + 12 + 5, 2);

    TraceFileReader reader(path_, RecoveryMode::kSkipCorrupt);
    BranchRecord out;
    std::size_t first_pass = 0;
    while (reader.next(out))
        ++first_pass;
    EXPECT_EQ(first_pass, 50u);
    EXPECT_EQ(reader.droppedRecords(), TraceWriter::kChunkRecords);

    reader.reset();
    std::size_t second_pass = 0;
    while (reader.next(out))
        ++second_pass;
    EXPECT_EQ(second_pass, first_pass);
    EXPECT_EQ(reader.droppedRecords(), TraceWriter::kChunkRecords);
}
} // namespace
} // namespace confsim
