/**
 * @file
 * Set-associative, partially-tagged confidence table.
 *
 * Section 5.3 identifies aliasing as the small-table failure mode and
 * notes that resetting counters *amplify* it (one aliased miss resets
 * a whole streak). The classic microarchitectural answer is
 * associativity plus tags: spend some of the storage budget on partial
 * tags so different contexts stop silently sharing counters.
 *
 * This estimator implements an N-way set-associative table of
 * resetting/saturating counters with per-entry partial tags and LRU
 * replacement. A lookup that misses every way allocates (evicting the
 * LRU way) with the power-on counter value; `bucketOf` for a missing
 * context also reports the power-on value, matching the allocate-on-
 * update discipline.
 *
 * bench/ablation_aliasing compares it against direct-mapped tables at
 * equal storage, quantifying when tags pay for themselves.
 */

#ifndef CONFSIM_CONFIDENCE_ASSOCIATIVE_CT_H
#define CONFSIM_CONFIDENCE_ASSOCIATIVE_CT_H

#include <vector>

#include "confidence/confidence_estimator.h"
#include "confidence/index_scheme.h"
#include "confidence/one_level.h"

namespace confsim {

/** N-way set-associative tagged counter confidence table. */
class AssociativeCounterConfidence : public ConfidenceEstimator
{
  public:
    /**
     * @param scheme Index formation (set selection + tag source).
     * @param num_sets Number of sets (power of two).
     * @param ways Associativity (>= 1).
     * @param tag_bits Partial tag width (1..16); tags come from the
     *        index bits above the set-selection field.
     * @param kind Counter style.
     * @param max_value Counter ceiling (16 in the paper's geometry).
     */
    AssociativeCounterConfidence(IndexScheme scheme,
                                 std::size_t num_sets, unsigned ways,
                                 unsigned tag_bits, CounterKind kind,
                                 std::uint32_t max_value = 16);

    std::uint64_t bucketOf(const BranchContext &ctx) const override;
    void update(const BranchContext &ctx, bool correct,
                bool taken) override;
    std::uint64_t numBuckets() const override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;
    bool bucketsAreOrdered() const override { return true; }

    /** @return lookups that missed every way (for interference
     *  reporting). */
    std::uint64_t tagMisses() const { return tagMisses_; }

    /** @return total lookups. */
    std::uint64_t lookups() const { return lookups_; }

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        std::uint8_t counter = 0;
        std::uint8_t lru = 0; //!< age; 0 = most recently used
        bool valid = false;
    };

    /** @return {set index, partial tag} for this context. */
    std::pair<std::uint64_t, std::uint16_t>
    locate(const BranchContext &ctx) const;

    /** Find the way holding @p tag in @p set, or ways_ if absent. */
    unsigned findWay(std::uint64_t set, std::uint16_t tag) const;

    void touch(std::uint64_t set, unsigned way);

    IndexScheme scheme_;
    unsigned setBits_;
    unsigned ways_;
    unsigned tagBits_;
    CounterKind kind_;
    std::uint32_t maxValue_;
    unsigned bitsPerCounter_;
    std::vector<Entry> entries_; //!< num_sets * ways, set-major
    mutable std::uint64_t tagMisses_ = 0;
    mutable std::uint64_t lookups_ = 0;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_ASSOCIATIVE_CT_H
