#include "confidence/index_scheme.h"

#include "util/bits.h"
#include "util/status.h"

namespace confsim {

const char *
toString(IndexScheme scheme)
{
    switch (scheme) {
      case IndexScheme::Pc: return "PC";
      case IndexScheme::Bhr: return "BHR";
      case IndexScheme::Gcir: return "GCIR";
      case IndexScheme::PcXorBhr: return "PCxorBHR";
      case IndexScheme::PcXorGcir: return "PCxorGCIR";
      case IndexScheme::BhrXorGcir: return "BHRxorGCIR";
      case IndexScheme::PcXorBhrXorGcir: return "PCxorBHRxorGCIR";
      case IndexScheme::PcConcatBhr: return "PCconcatBHR";
    }
    panic("unknown IndexScheme");
}

std::uint64_t
computeIndex(IndexScheme scheme, const BranchContext &ctx,
             unsigned index_bits)
{
    if (index_bits == 0 || index_bits > 32)
        fatal("confidence table index width must be in [1, 32]");

    const std::uint64_t pc_field = bitsOf(ctx.pc, index_bits + 1, 2);
    const std::uint64_t bhr_field = ctx.bhr & mask(index_bits);
    const std::uint64_t gcir_field = ctx.gcir & mask(index_bits);

    switch (scheme) {
      case IndexScheme::Pc:
        return pc_field;
      case IndexScheme::Bhr:
        return bhr_field;
      case IndexScheme::Gcir:
        return gcir_field;
      case IndexScheme::PcXorBhr:
        return pc_field ^ bhr_field;
      case IndexScheme::PcXorGcir:
        return pc_field ^ gcir_field;
      case IndexScheme::BhrXorGcir:
        return bhr_field ^ gcir_field;
      case IndexScheme::PcXorBhrXorGcir:
        return pc_field ^ bhr_field ^ gcir_field;
      case IndexScheme::PcConcatBhr: {
        // Low half from the PC, high half from the BHR (youngest
        // history bits kept on both sides).
        const unsigned lo_bits = (index_bits + 1) / 2;
        const unsigned hi_bits = index_bits - lo_bits;
        return (pc_field & mask(lo_bits)) |
               ((bhr_field & mask(hi_bits)) << lo_bits);
      }
    }
    panic("unknown IndexScheme");
}

} // namespace confsim
