/**
 * @file
 * Multi-level confidence classes.
 *
 * The paper: "in general, one could divide the branches into multiple
 * sets with a range of confidence levels. To date, we have not pursued
 * this generalization and consider only two confidence sets in this
 * paper." This is that generalization: buckets are partitioned into K
 * ordered classes (0 = least confident) by cutting the rate-sorted
 * bucket list at chosen reference-mass fractions, exactly extending
 * the binary split of BinaryConfidenceSignal.
 *
 * Applications can map classes to graded policies — e.g. dual-path
 * fork on class 0, fetch-deprioritize on class 1, full speed on the
 * top class. bench/ablation_estimators reports per-class statistics.
 */

#ifndef CONFSIM_CONFIDENCE_MULTI_LEVEL_SIGNAL_H
#define CONFSIM_CONFIDENCE_MULTI_LEVEL_SIGNAL_H

#include <vector>

#include "confidence/confidence_estimator.h"
#include "metrics/bucket_stats.h"

namespace confsim {

/** Maps estimator buckets to K ordered confidence classes. */
class MultiLevelConfidenceSignal
{
  public:
    /**
     * Build from profiled bucket statistics.
     *
     * @param estimator Bucket source; not owned, must outlive this.
     * @param stats Profiled per-bucket counts for this estimator.
     * @param ref_cuts Ascending cumulative reference-mass cut points
     *        in (0, 1); K = ref_cuts.size() + 1 classes result. E.g.
     *        {0.05, 0.20} makes three classes: the rate-sorted buckets
     *        holding the worst 5% of references, the next 15%, and the
     *        rest.
     */
    MultiLevelConfidenceSignal(const ConfidenceEstimator &estimator,
                               const BucketStats &stats,
                               const std::vector<double> &ref_cuts);

    /** @return the class (0 = least confident) of this prediction. */
    unsigned classOf(const BranchContext &ctx) const;

    /** @return number of classes K. */
    unsigned numClasses() const { return numClasses_; }

    /** @return the class of a raw bucket id. */
    unsigned classOfBucket(std::uint64_t bucket) const;

    /**
     * Per-class aggregate of the profiling stats: reference fraction
     * and misprediction rate of each class (least confident first).
     */
    struct ClassSummary
    {
        double refFraction = 0.0;
        double mispredictRate = 0.0;
    };

    /** @return summaries computed from the profiling stats. */
    const std::vector<ClassSummary> &classSummaries() const
    {
        return summaries_;
    }

  private:
    const ConfidenceEstimator &estimator_;
    std::vector<std::uint8_t> bucketClass_;
    unsigned numClasses_;
    std::vector<ClassSummary> summaries_;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_MULTI_LEVEL_SIGNAL_H
