#include "confidence/one_level.h"

#include "ckpt/state_io.h"

#include "util/status.h"

namespace confsim {

const char *
toString(CirReduction reduction)
{
    switch (reduction) {
      case CirReduction::RawPattern: return "raw";
      case CirReduction::OnesCount: return "ones";
    }
    panic("unknown CirReduction");
}

const char *
toString(CounterKind kind)
{
    switch (kind) {
      case CounterKind::Saturating: return "sat";
      case CounterKind::Resetting: return "reset";
      case CounterKind::HalfReset: return "halfreset";
    }
    panic("unknown CounterKind");
}

OneLevelCirConfidence::OneLevelCirConfidence(IndexScheme scheme,
                                             std::size_t num_entries,
                                             unsigned cir_bits,
                                             CirReduction reduction,
                                             CtInit init)
    : scheme_(scheme), table_(num_entries, cir_bits, init),
      reduction_(reduction)
{
    if (reduction == CirReduction::RawPattern && cir_bits > 24)
        fatal("raw-pattern bucket space too large; use <= 24-bit CIRs");
}

std::uint64_t
OneLevelCirConfidence::readCir(const BranchContext &ctx) const
{
    return table_.read(computeIndex(scheme_, ctx, table_.indexBits()));
}

std::uint64_t
OneLevelCirConfidence::bucketOf(const BranchContext &ctx) const
{
    const std::uint64_t cir = readCir(ctx);
    switch (reduction_) {
      case CirReduction::RawPattern:
        return cir;
      case CirReduction::OnesCount:
        return popcount(cir);
    }
    panic("unknown CirReduction");
}

void
OneLevelCirConfidence::update(const BranchContext &ctx, bool correct,
                              bool)
{
    table_.update(computeIndex(scheme_, ctx, table_.indexBits()),
                  correct);
}

std::uint64_t
OneLevelCirConfidence::numBuckets() const
{
    switch (reduction_) {
      case CirReduction::RawPattern:
        return std::uint64_t{1} << table_.cirBits();
      case CirReduction::OnesCount:
        return table_.cirBits() + 1;
    }
    panic("unknown CirReduction");
}

std::uint64_t
OneLevelCirConfidence::storageBits() const
{
    return table_.storageBits();
}

std::string
OneLevelCirConfidence::name() const
{
    return std::string("1lvl-") + toString(scheme_) + "-cir" +
           std::to_string(table_.cirBits()) + "-" +
           toString(reduction_) + "-" +
           std::to_string(table_.size());
}

void
OneLevelCirConfidence::reset()
{
    table_.reset();
}

bool
OneLevelCirConfidence::bucketsAreOrdered() const
{
    // A larger ones count means MORE recent mispredictions; we expose
    // ordered-ness only for buckets where larger = higher confidence,
    // which holds for neither reduction here (raw patterns are
    // unordered; ones count is inversely ordered). Consumers that want
    // an ordered threshold should use counter estimators or sort by
    // measured rate.
    return false;
}

OneLevelCounterConfidence::OneLevelCounterConfidence(
    IndexScheme scheme, std::size_t num_entries, CounterKind kind,
    std::uint32_t max_value, std::uint32_t initial_value)
    : scheme_(scheme), kind_(kind), maxValue_(max_value),
      initialValue_(initial_value > max_value ? max_value
                                              : initial_value)
{
    if (!isPowerOfTwo(num_entries))
        fatal("confidence counter table size must be a power of two");
    if (max_value == 0)
        fatal("confidence counter max must be >= 1");
    indexBits_ = log2Exact(num_entries);
    // Hardware stores ceil(log2(max + 1)) bits per counter.
    bitsPerCounter_ = log2Exact(ceilPowerOfTwo(
        static_cast<std::uint64_t>(max_value) + 1));
    counters_.assign(num_entries, initialValue_);
}

std::uint64_t
OneLevelCounterConfidence::bucketOf(const BranchContext &ctx) const
{
    return counters_[computeIndex(scheme_, ctx, indexBits_)];
}

void
OneLevelCounterConfidence::update(const BranchContext &ctx,
                                  bool correct, bool)
{
    auto &counter = counters_[computeIndex(scheme_, ctx, indexBits_)];
    switch (kind_) {
      case CounterKind::Saturating:
        if (correct) {
            if (counter < maxValue_)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }
        break;
      case CounterKind::Resetting:
        if (correct) {
            if (counter < maxValue_)
                ++counter;
        } else {
            counter = 0;
        }
        break;
      case CounterKind::HalfReset:
        if (correct) {
            if (counter < maxValue_)
                ++counter;
        } else {
            counter /= 2;
        }
        break;
    }
}

std::uint64_t
OneLevelCounterConfidence::numBuckets() const
{
    return static_cast<std::uint64_t>(maxValue_) + 1;
}

std::uint64_t
OneLevelCounterConfidence::storageBits() const
{
    return static_cast<std::uint64_t>(counters_.size()) *
           bitsPerCounter_;
}

std::string
OneLevelCounterConfidence::name() const
{
    return std::string("1lvl-") + toString(scheme_) + "-" +
           toString(kind_) + std::to_string(maxValue_) + "-" +
           std::to_string(counters_.size());
}

void
OneLevelCounterConfidence::reset()
{
    counters_.assign(counters_.size(), initialValue_);
}


void
OneLevelCirConfidence::saveState(StateWriter &out) const
{
    table_.saveState(out);
}

void
OneLevelCirConfidence::loadState(StateReader &in)
{
    table_.loadState(in);
}

void
OneLevelCounterConfidence::saveState(StateWriter &out) const
{
    out.putU64(counters_.size());
    for (const std::uint32_t counter : counters_)
        out.putU32(counter);
}

void
OneLevelCounterConfidence::loadState(StateReader &in)
{
    in.expectU64(counters_.size(), "counter CT size");
    for (std::uint32_t &counter : counters_)
        counter = in.getU32();
}

} // namespace confsim
