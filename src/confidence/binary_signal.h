/**
 * @file
 * The binary high/low confidence signal (paper Fig. 1).
 *
 * An estimator classifies each prediction into a bucket; applications
 * want one bit. A BinaryConfidenceSignal is an estimator plus the set of
 * buckets designated "low confidence". The set can come from a simple
 * rule (counter value <= threshold — the practical hardware the paper
 * proposes) or from profiled bucket statistics (the idealized reduction
 * function whose minterms are the low-confidence CIR patterns).
 */

#ifndef CONFSIM_CONFIDENCE_BINARY_SIGNAL_H
#define CONFSIM_CONFIDENCE_BINARY_SIGNAL_H

#include <vector>

#include "confidence/confidence_estimator.h"

namespace confsim {

/** Estimator + low-confidence bucket set = one-bit confidence signal. */
class BinaryConfidenceSignal
{
  public:
    /**
     * @param estimator The bucket source; not owned, must outlive this.
     * @param low_buckets low_buckets[b] == true marks bucket b low
     *        confidence; sized to estimator.numBuckets().
     */
    BinaryConfidenceSignal(const ConfidenceEstimator &estimator,
                           std::vector<bool> low_buckets);

    /**
     * Threshold rule for ordered (counter) estimators: buckets
     * <= @p max_low_bucket are low confidence. E.g. a resetting counter
     * with max_low_bucket 15 marks everything but the saturated value
     * low (Table 1's 20.3%/89.3% operating point).
     */
    static BinaryConfidenceSignal
    fromThreshold(const ConfidenceEstimator &estimator,
                  std::uint64_t max_low_bucket);

    /** @return true iff the current prediction is low confidence. */
    bool isLowConfidence(const BranchContext &ctx) const;

    /** @return the wrapped estimator. */
    const ConfidenceEstimator &estimator() const { return estimator_; }

    /** @return the low-bucket mask. */
    const std::vector<bool> &lowBuckets() const { return lowBuckets_; }

  private:
    const ConfidenceEstimator &estimator_;
    std::vector<bool> lowBuckets_;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_BINARY_SIGNAL_H
