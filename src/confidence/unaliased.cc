#include "confidence/unaliased.h"

#include "ckpt/state_helpers.h"

#include "util/bits.h"
#include "util/status.h"

namespace confsim {

UnaliasedCounterConfidence::UnaliasedCounterConfidence(
    IndexScheme scheme, CounterKind kind, std::uint32_t max_value)
    : scheme_(scheme), kind_(kind), maxValue_(max_value)
{
    if (max_value == 0)
        fatal("counter max must be >= 1");
}

std::uint64_t
UnaliasedCounterConfidence::keyOf(const BranchContext &ctx) const
{
    // Full-width index: 32 bits is the widest computeIndex supports
    // and far exceeds any finite CT, so distinct contexts that a real
    // table would fold together stay distinct here.
    return computeIndex(scheme_, ctx, 32);
}

std::uint64_t
UnaliasedCounterConfidence::bucketOf(const BranchContext &ctx) const
{
    const auto it = counters_.find(keyOf(ctx));
    // Unseen context == power-on state (counter 0 = the all-ones-CIR
    // equivalent, as for the finite tables).
    return it == counters_.end() ? 0 : it->second;
}

void
UnaliasedCounterConfidence::update(const BranchContext &ctx,
                                   bool correct, bool)
{
    auto &counter = counters_[keyOf(ctx)];
    switch (kind_) {
      case CounterKind::Saturating:
        if (correct) {
            if (counter < maxValue_)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }
        break;
      case CounterKind::Resetting:
        if (correct) {
            if (counter < maxValue_)
                ++counter;
        } else {
            counter = 0;
        }
        break;
      case CounterKind::HalfReset:
        if (correct) {
            if (counter < maxValue_)
                ++counter;
        } else {
            counter /= 2;
        }
        break;
    }
}

std::uint64_t
UnaliasedCounterConfidence::numBuckets() const
{
    return static_cast<std::uint64_t>(maxValue_) + 1;
}

std::uint64_t
UnaliasedCounterConfidence::storageBits() const
{
    const unsigned bits_per_counter = log2Exact(
        ceilPowerOfTwo(static_cast<std::uint64_t>(maxValue_) + 1));
    return counters_.size() * bits_per_counter;
}

std::string
UnaliasedCounterConfidence::name() const
{
    return std::string("unaliased-") + toString(scheme_) + "-" +
           toString(kind_) + std::to_string(maxValue_);
}

void
UnaliasedCounterConfidence::reset()
{
    counters_.clear();
}


void
UnaliasedCounterConfidence::saveState(StateWriter &out) const
{
    saveSortedMap(out, counters_, [](StateWriter &w, std::uint32_t c) {
        w.putU32(c);
    });
}

void
UnaliasedCounterConfidence::loadState(StateReader &in)
{
    loadMap(in, counters_, [](StateReader &r) { return r.getU32(); });
}

} // namespace confsim
