/**
 * @file
 * Alias-free reference estimator.
 *
 * Section 5.3 attributes the small-table losses to aliasing: "If any
 * branch accessing the same table entry suffers a misprediction, then
 * the counter resets... aliased counters are likely to spend more of
 * their time in the non-saturated state." To *quantify* that claim,
 * this estimator keeps one resetting counter per distinct full index
 * value (no truncation, hash-map backed) — i.e. an infinitely large
 * CT. Comparing it against finite tables isolates pure aliasing loss
 * from everything else (bench/ablation_aliasing).
 *
 * Simulation-only: storageBits() reports the bits an ideal table with
 * one entry per *observed* context would need, which is unbounded in
 * hardware terms.
 */

#ifndef CONFSIM_CONFIDENCE_UNALIASED_H
#define CONFSIM_CONFIDENCE_UNALIASED_H

#include <unordered_map>

#include "confidence/confidence_estimator.h"
#include "confidence/index_scheme.h"
#include "confidence/one_level.h"

namespace confsim {

/** Infinite-table counter confidence (aliasing-free reference). */
class UnaliasedCounterConfidence : public ConfidenceEstimator
{
  public:
    /**
     * @param scheme Index formation; computed at full 32-bit width so
     *        distinct (PC, history) contexts never collide.
     * @param kind Counter style.
     * @param max_value Saturation ceiling (16 in the paper).
     */
    UnaliasedCounterConfidence(IndexScheme scheme, CounterKind kind,
                               std::uint32_t max_value = 16);

    std::uint64_t bucketOf(const BranchContext &ctx) const override;
    void update(const BranchContext &ctx, bool correct,
                bool taken) override;
    std::uint64_t numBuckets() const override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;
    bool bucketsAreOrdered() const override { return true; }

    /** @return number of distinct contexts observed so far. */
    std::size_t observedContexts() const { return counters_.size(); }

  private:
    std::uint64_t keyOf(const BranchContext &ctx) const;

    IndexScheme scheme_;
    CounterKind kind_;
    std::uint32_t maxValue_;
    std::unordered_map<std::uint64_t, std::uint32_t> counters_;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_UNALIASED_H
