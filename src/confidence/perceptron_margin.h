/**
 * @file
 * Perceptron margin confidence as a ConfidenceEstimator.
 *
 * The perceptron's dot product is a graded vote: |margin| measures how
 * emphatically the weights agree on a direction, and theta is the
 * scale on which the training rule itself judges "confident enough to
 * stop learning". Quantizing |margin| against theta therefore yields
 * a natural multi-level confidence signal — level 0 is a coin-flip,
 * the top level is a margin beyond theta.
 *
 * Like TageProviderConfidence, this estimator trains a shadow replica
 * of the perceptron on branch outcomes inside update(); paired with a
 * main PerceptronPredictor of the same geometry the shadow's margins
 * are bit-identical to the real predictor's.
 *
 * Buckets are monotone in |margin| by construction (ordered):
 * bucket = min(|margin| * levels / (theta + 1), levels - 1).
 */

#ifndef CONFSIM_CONFIDENCE_PERCEPTRON_MARGIN_H
#define CONFSIM_CONFIDENCE_PERCEPTRON_MARGIN_H

#include "confidence/confidence_estimator.h"
#include "predictor/perceptron.h"

namespace confsim {

/** |dot product| vs. theta, quantized into ordered levels. */
class PerceptronMarginConfidence : public ConfidenceEstimator
{
  public:
    /**
     * @param config Shadow perceptron geometry (match the main
     *        predictor's for a faithful signal).
     * @param num_levels Confidence levels (buckets), >= 2.
     */
    explicit PerceptronMarginConfidence(
        PerceptronConfig config = PerceptronConfig::makeDefault(),
        unsigned num_levels = 8);

    std::uint64_t bucketOf(const BranchContext &ctx) const override;

    /** Train the shadow perceptron on the branch outcome. */
    void update(const BranchContext &ctx, bool correct,
                bool taken) override;

    std::uint64_t numBuckets() const override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;
    bool bucketsAreOrdered() const override { return true; }

    /** Quantize a margin value to its bucket (tests). */
    std::uint64_t bucketForMargin(std::int64_t margin) const;

    /** The shadow perceptron's current margin for @p ctx (tests). */
    std::int64_t shadowMargin(const BranchContext &ctx) const;

  private:
    PerceptronPredictor shadow_;
    unsigned numLevels_;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_PERCEPTRON_MARGIN_H
