/**
 * @file
 * Interference probe: measures how many distinct contexts share each
 * confidence-table entry.
 *
 * The curves show aliasing's *effect* (Fig. 10, the aliasing
 * ablation); this probe measures its *cause* directly: for a given
 * index scheme and table width, how many table entries are touched,
 * what fraction of them serve more than one distinct full context,
 * and what fraction of accesses land on such shared entries. Feed it
 * the same contexts a table sees to explain that table's losses.
 */

#ifndef CONFSIM_CONFIDENCE_INTERFERENCE_PROBE_H
#define CONFSIM_CONFIDENCE_INTERFERENCE_PROBE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "confidence/index_scheme.h"

namespace confsim {

/** Per-index-scheme context-sharing measurement. */
class InterferenceProbe
{
  public:
    /**
     * @param scheme Index formation being probed.
     * @param index_bits Table index width (log2 of the table size).
     * @param max_tracked Distinct contexts remembered per entry;
     *        beyond this the entry just counts as "many" (bounds
     *        memory on huge runs). Must be >= 2.
     */
    InterferenceProbe(IndexScheme scheme, unsigned index_bits,
                      unsigned max_tracked = 4);

    /** Record one table access with this context. */
    void observe(const BranchContext &ctx);

    /** Aggregate sharing statistics. */
    struct Report
    {
        std::uint64_t accesses = 0;
        std::uint64_t entriesTouched = 0;
        std::uint64_t sharedEntries = 0;  //!< entries with >= 2 contexts
        std::uint64_t sharedAccesses = 0; //!< accesses to such entries
        double averageContextsPerEntry = 0.0; //!< capped at max_tracked

        double
        sharedEntryFraction() const
        {
            return entriesTouched == 0
                       ? 0.0
                       : static_cast<double>(sharedEntries) /
                             entriesTouched;
        }

        double
        sharedAccessFraction() const
        {
            return accesses == 0
                       ? 0.0
                       : static_cast<double>(sharedAccesses) /
                             accesses;
        }
    };

    /** Compute the report for everything observed so far. */
    Report report() const;

    /** Forget all observations. */
    void reset() { entries_.clear(); }

  private:
    struct EntryState
    {
        std::uint64_t accesses = 0;
        /** Up to maxTracked_ distinct full-context ids. */
        std::vector<std::uint64_t> contexts;
    };

    IndexScheme scheme_;
    unsigned indexBits_;
    unsigned maxTracked_;
    std::unordered_map<std::uint64_t, EntryState> entries_;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_INTERFERENCE_PROBE_H
