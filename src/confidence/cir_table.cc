#include "confidence/cir_table.h"

#include "ckpt/state_io.h"

#include "util/rng.h"
#include "util/status.h"

namespace confsim {

const char *
toString(CtInit init)
{
    switch (init) {
      case CtInit::Ones: return "ones";
      case CtInit::Zeros: return "zeros";
      case CtInit::Random: return "random";
      case CtInit::LastBit: return "lastbit";
    }
    panic("unknown CtInit");
}

CirTable::CirTable(std::size_t num_entries, unsigned cir_bits,
                   CtInit init, std::uint64_t seed)
    : cirBits_(cir_bits), init_(init), seed_(seed)
{
    if (!isPowerOfTwo(num_entries))
        fatal("CIR table size must be a power of two");
    if (cir_bits == 0 || cir_bits > 64)
        fatal("CIR width must be in [1, 64]");
    indexBits_ = log2Exact(num_entries);
    entries_.resize(num_entries);
    reset();
}

void
CirTable::reset()
{
    switch (init_) {
      case CtInit::Ones:
        for (auto &entry : entries_)
            entry = mask(cirBits_);
        break;
      case CtInit::Zeros:
        for (auto &entry : entries_)
            entry = 0;
        break;
      case CtInit::Random: {
        Rng rng(seed_);
        for (auto &entry : entries_)
            entry = rng.next() & mask(cirBits_);
        break;
      }
      case CtInit::LastBit:
        for (auto &entry : entries_)
            entry = std::uint64_t{1} << (cirBits_ - 1);
        break;
    }
}


void
CirTable::saveState(StateWriter &out) const
{
    out.putU64(entries_.size());
    out.putU64(cirBits_);
    for (const std::uint64_t entry : entries_)
        out.putU64(entry);
}

void
CirTable::loadState(StateReader &in)
{
    in.expectU64(entries_.size(), "CIR table size");
    in.expectU64(cirBits_, "CIR width");
    for (std::uint64_t &entry : entries_)
        entry = in.getU64();
}

} // namespace confsim
