#include "confidence/tage_confidence.h"

namespace confsim {

TageProviderConfidence::TageProviderConfidence(TageConfig config)
    : shadow_(std::move(config))
{
}

std::uint64_t
TageProviderConfidence::bucketOf(const BranchContext &ctx) const
{
    const TagePrediction d = shadow_.predictDetail(ctx.pc);
    const bool agree = d.providerTaken == d.altTaken;
    return 2 * d.providerStrength + (agree ? 1 : 0);
}

void
TageProviderConfidence::update(const BranchContext &ctx, bool /*correct*/,
                               bool taken)
{
    shadow_.update(ctx.pc, taken);
}

std::uint64_t
TageProviderConfidence::numBuckets() const
{
    return 2 * shadow_.strengthLevels();
}

std::uint64_t
TageProviderConfidence::storageBits() const
{
    return shadow_.storageBits();
}

std::string
TageProviderConfidence::name() const
{
    return "tage-provider";
}

void
TageProviderConfidence::reset()
{
    shadow_.reset();
}

void
TageProviderConfidence::saveState(StateWriter &out) const
{
    shadow_.saveState(out);
}

void
TageProviderConfidence::loadState(StateReader &in)
{
    shadow_.loadState(in);
}

TagePrediction
TageProviderConfidence::shadowDetail(const BranchContext &ctx) const
{
    return shadow_.predictDetail(ctx.pc);
}

} // namespace confsim
