/**
 * @file
 * The query context handed to confidence estimators.
 *
 * Fig. 3 of the paper shows the confidence mechanism's inputs: the
 * program counter, the global branch history register, and (for the
 * index-scheme ablation of Section 3.1) a global correct/incorrect
 * register. The simulation driver maintains the architectural copies of
 * these and snapshots them into a BranchContext before each prediction.
 */

#ifndef CONFSIM_CONFIDENCE_BRANCH_CONTEXT_H
#define CONFSIM_CONFIDENCE_BRANCH_CONTEXT_H

#include <cstdint>

namespace confsim {

/** Snapshot of the global state a confidence table may index with. */
struct BranchContext
{
    std::uint64_t pc = 0;    //!< branch address
    std::uint64_t bhr = 0;   //!< global outcome history, newest bit = LSB
    unsigned bhrBits = 16;   //!< valid width of bhr
    std::uint64_t gcir = 0;  //!< global correct/incorrect history
    unsigned gcirBits = 16;  //!< valid width of gcir
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_BRANCH_CONTEXT_H
