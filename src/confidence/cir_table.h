/**
 * @file
 * The CIR table (CT) — a direct-mapped table of Correct/Incorrect
 * Registers (paper Fig. 3).
 *
 * Each entry is an n-bit shift register holding the n most recent
 * correct(0)/incorrect(1) indications observed at that entry. The
 * initialization alternatives of Section 5.4 (all ones, all zeros,
 * random, "lastbit") are supported; the paper found all-ones (or any
 * non-zero state) markedly better than all-zeros.
 */

#ifndef CONFSIM_CONFIDENCE_CIR_TABLE_H
#define CONFSIM_CONFIDENCE_CIR_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/state_io.h"
#include "util/bits.h"

namespace confsim {

/** CT initialization policies (paper Fig. 11). */
enum class CtInit
{
    Ones,    //!< every CIR bit 1 (the paper's recommended default)
    Zeros,   //!< every CIR bit 0 (degrades startup behaviour)
    Random,  //!< uniformly random patterns (deterministic seed)
    LastBit, //!< only the oldest bit set (Section 5.4 proposal)
};

/** @return short name: "ones", "zeros", "random", "lastbit". */
const char *toString(CtInit init);

/**
 * Direct-mapped table of n-bit CIRs stored as packed integers.
 *
 * Stored packed (rather than as ShiftRegister objects) because the
 * 2^16-entry tables of the paper are hot simulation state.
 */
class CirTable
{
  public:
    /**
     * @param num_entries Table size (power of two).
     * @param cir_bits CIR width n, 1..64 (16 in the paper).
     * @param init Initialization policy.
     * @param seed Seed for the Random policy.
     */
    CirTable(std::size_t num_entries, unsigned cir_bits, CtInit init,
             std::uint64_t seed = 0xC1C1C1C1);

    /** @return the CIR pattern at @p index (low index bits used). */
    std::uint64_t
    read(std::uint64_t index) const
    {
        return entries_[index & mask(indexBits_)];
    }

    /**
     * Shift the latest correctness indication into entry @p index.
     *
     * @param index Table index.
     * @param correct true iff the prediction was correct; stored as a 0
     *        bit (the paper's convention: 1 = incorrect).
     */
    void
    update(std::uint64_t index, bool correct)
    {
        auto &entry = entries_[index & mask(indexBits_)];
        entry = ((entry << 1) | (correct ? 0 : 1)) & mask(cirBits_);
    }

    /** @return number of entries. */
    std::size_t size() const { return entries_.size(); }

    /** @return CIR width in bits. */
    unsigned cirBits() const { return cirBits_; }

    /** @return log2(size()). */
    unsigned indexBits() const { return indexBits_; }

    /** @return total storage in bits. */
    std::uint64_t
    storageBits() const
    {
        return static_cast<std::uint64_t>(entries_.size()) * cirBits_;
    }

    /** Reinitialize all entries per the configured policy. */
    void reset();

    /** Checkpoint the packed CIR contents (size/width-guarded). */
    void saveState(StateWriter &out) const;

    /** Restore a saveState() snapshot into a same-shape table. */
    void loadState(StateReader &in);

  private:
    std::vector<std::uint64_t> entries_;
    unsigned cirBits_;
    unsigned indexBits_;
    CtInit init_;
    std::uint64_t seed_;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_CIR_TABLE_H
