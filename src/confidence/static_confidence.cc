#include "confidence/static_confidence.h"

#include "ckpt/state_helpers.h"

#include <algorithm>

namespace confsim {

std::uint64_t
StaticBranchProfile::totalExecutions() const
{
    std::uint64_t total = 0;
    for (const auto &[pc, entry] : entries_)
        total += entry.executions;
    return total;
}

std::uint64_t
StaticBranchProfile::totalMispredictions() const
{
    std::uint64_t total = 0;
    for (const auto &[pc, entry] : entries_)
        total += entry.mispredictions;
    return total;
}

std::vector<std::uint64_t>
StaticBranchProfile::sortedByRate() const
{
    std::vector<std::uint64_t> pcs;
    pcs.reserve(entries_.size());
    for (const auto &[pc, entry] : entries_)
        pcs.push_back(pc);
    std::sort(pcs.begin(), pcs.end(),
              [this](std::uint64_t a, std::uint64_t b) {
                  const double ra = entries_.at(a).rate();
                  const double rb = entries_.at(b).rate();
                  if (ra != rb)
                      return ra > rb;
                  return a < b; // deterministic tie break
              });
    return pcs;
}

std::unordered_set<std::uint64_t>
StaticBranchProfile::lowSetByRefFraction(double ref_fraction) const
{
    std::unordered_set<std::uint64_t> low;
    const auto total =
        static_cast<double>(totalExecutions());
    if (total == 0.0)
        return low;
    double accumulated = 0.0;
    for (std::uint64_t pc : sortedByRate()) {
        if (accumulated / total >= ref_fraction)
            break;
        low.insert(pc);
        accumulated +=
            static_cast<double>(entries_.at(pc).executions);
    }
    return low;
}

std::unordered_set<std::uint64_t>
StaticBranchProfile::lowSetByRateThreshold(double rate_threshold) const
{
    std::unordered_set<std::uint64_t> low;
    for (const auto &[pc, entry] : entries_) {
        if (entry.rate() >= rate_threshold)
            low.insert(pc);
    }
    return low;
}

StaticConfidence::StaticConfidence(
    std::unordered_set<std::uint64_t> low_set)
    : lowSet_(std::move(low_set))
{}

std::uint64_t
StaticConfidence::bucketOf(const BranchContext &ctx) const
{
    return lowSet_.count(ctx.pc) ? 0 : 1;
}

void
StaticConfidence::update(const BranchContext &, bool, bool)
{
    // Static confidence never adapts online.
}

std::uint64_t
StaticConfidence::storageBits() const
{
    // One tag bit per low-confidence static branch (e.g. in the
    // instruction encoding or an i-cache bit, like the S-1 and
    // PowerPC 601 schemes cited in Section 1.1).
    return lowSet_.size();
}


void
StaticBranchProfile::saveState(StateWriter &out) const
{
    saveSortedMap(out, entries_, [](StateWriter &w, const Entry &entry) {
        w.putU64(entry.executions);
        w.putU64(entry.mispredictions);
        w.putU64(entry.takenCount);
    });
}

void
StaticBranchProfile::loadState(StateReader &in)
{
    loadMap(in, entries_, [](StateReader &r) {
        Entry entry;
        entry.executions = r.getU64();
        entry.mispredictions = r.getU64();
        entry.takenCount = r.getU64();
        return entry;
    });
}

} // namespace confsim
