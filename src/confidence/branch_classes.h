/**
 * @file
 * Static branch classification (in the tradition of Chang/Hao/Yeh/
 * Patt's branch classification work): partition static branches by
 * their dynamic taken rate and relate each class to its share of the
 * misprediction mass.
 *
 * The analysis explains confidence behaviour from first principles:
 * heavily one-sided branches populate the zero bucket; mixed-direction
 * branches supply the persistent low-confidence contexts the low sets
 * capture. bench/fig02_static prints this table alongside the static
 * confidence curve.
 */

#ifndef CONFSIM_CONFIDENCE_BRANCH_CLASSES_H
#define CONFSIM_CONFIDENCE_BRANCH_CLASSES_H

#include <array>
#include <cstdint>
#include <string>

#include "confidence/static_confidence.h"

namespace confsim {

/** Taken-rate bands, one-sided classes folded together. */
enum class BranchClass : unsigned
{
    AlwaysOneSided = 0, //!< taken rate <= 0.1% or >= 99.9%
    StronglyBiased,     //!< <= 5% or >= 95%
    MostlyBiased,       //!< <= 30% or >= 70%
    Mixed,              //!< 30% .. 70%
    NumClasses
};

/** @return a short class label. */
const char *toString(BranchClass cls);

/** Classify a taken rate into its band. */
BranchClass classifyTakenRate(double taken_rate);

/** Aggregates for one class. */
struct BranchClassStats
{
    std::uint64_t staticBranches = 0;
    std::uint64_t executions = 0;
    std::uint64_t mispredictions = 0;

    /** @return misprediction rate within this class. */
    double
    rate() const
    {
        return executions == 0
                   ? 0.0
                   : static_cast<double>(mispredictions) /
                         static_cast<double>(executions);
    }
};

/** Per-class aggregates for a whole profile. */
using BranchClassBreakdown =
    std::array<BranchClassStats,
               static_cast<std::size_t>(BranchClass::NumClasses)>;

/** Classify every branch of @p profile. */
BranchClassBreakdown
classifyProfile(const StaticBranchProfile &profile);

/** Render the breakdown as a printable table. */
std::string
renderBranchClassTable(const BranchClassBreakdown &breakdown);

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_BRANCH_CLASSES_H
