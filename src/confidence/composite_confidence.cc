#include "confidence/composite_confidence.h"

#include "ckpt/state_io.h"

#include "util/status.h"

namespace confsim {

CompositeConfidence::CompositeConfidence(
    std::unique_ptr<ConfidenceEstimator> first,
    std::unique_ptr<ConfidenceEstimator> second)
    : first_(std::move(first)), second_(std::move(second))
{
    if (!first_ || !second_)
        fatal("CompositeConfidence requires two constituents");
    if (first_->numBuckets() * second_->numBuckets() >
        (std::uint64_t{1} << 24)) {
        fatal("composite bucket space too large; use coarser "
              "constituents");
    }
}

std::uint64_t
CompositeConfidence::bucketOf(const BranchContext &ctx) const
{
    return first_->bucketOf(ctx) * second_->numBuckets() +
           second_->bucketOf(ctx);
}

void
CompositeConfidence::update(const BranchContext &ctx, bool correct,
                            bool taken)
{
    first_->update(ctx, correct, taken);
    second_->update(ctx, correct, taken);
}

std::uint64_t
CompositeConfidence::numBuckets() const
{
    return first_->numBuckets() * second_->numBuckets();
}

std::uint64_t
CompositeConfidence::storageBits() const
{
    return first_->storageBits() + second_->storageBits();
}

std::string
CompositeConfidence::name() const
{
    return "composite(" + first_->name() + "," + second_->name() + ")";
}

void
CompositeConfidence::reset()
{
    first_->reset();
    second_->reset();
}

std::pair<std::uint64_t, std::uint64_t>
CompositeConfidence::splitBucket(std::uint64_t bucket) const
{
    return {bucket / second_->numBuckets(),
            bucket % second_->numBuckets()};
}


bool
CompositeConfidence::checkpointable() const
{
    return first_->checkpointable() && second_->checkpointable();
}

void
CompositeConfidence::saveState(StateWriter &out) const
{
    first_->saveState(out);
    second_->saveState(out);
}

void
CompositeConfidence::loadState(StateReader &in)
{
    first_->loadState(in);
    second_->loadState(in);
}

} // namespace confsim
