#include "confidence/signal_io.h"

#include <fstream>
#include <sstream>

#include "util/status.h"

namespace confsim {

void
writeSignalImage(const std::string &path,
                 const std::string &estimator_name,
                 const std::vector<bool> &low_buckets)
{
    if (low_buckets.empty())
        fatal("cannot serialize an empty bucket mask");
    if (estimator_name.find('\n') != std::string::npos)
        fatal("estimator name must be a single line");

    std::ofstream out(path);
    if (!out)
        fatal("cannot open signal image for writing: " + path);
    out << "confsim-signal v1\n";
    out << "estimator " << estimator_name << '\n';
    out << "buckets " << low_buckets.size() << '\n';
    out << "low";
    for (std::size_t b = 0; b < low_buckets.size(); ++b) {
        if (low_buckets[b])
            out << ' ' << b;
    }
    out << '\n';
    if (!out)
        fatal("error writing signal image: " + path);
}

SignalImage
readSignalImage(const std::string &path,
                const std::string &expected_estimator)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open signal image: " + path);

    auto bad = [&path](const std::string &why) {
        fatal("malformed signal image " + path + ": " + why);
    };

    std::string line;
    if (!std::getline(in, line) || line != "confsim-signal v1")
        bad("missing or unsupported header");

    SignalImage image;
    if (!std::getline(in, line) || line.rfind("estimator ", 0) != 0)
        bad("missing estimator line");
    image.estimatorName = line.substr(10);
    if (!expected_estimator.empty() &&
        image.estimatorName != expected_estimator) {
        fatal("signal image " + path + " is for estimator '" +
              image.estimatorName + "', expected '" +
              expected_estimator + "'");
    }

    if (!std::getline(in, line) || line.rfind("buckets ", 0) != 0)
        bad("missing buckets line");
    std::size_t num_buckets = 0;
    try {
        num_buckets = std::stoull(line.substr(8));
    } catch (...) {
        bad("unparsable bucket count");
    }
    if (num_buckets == 0 || num_buckets > (std::size_t{1} << 24))
        bad("bucket count out of range");
    image.lowBuckets.assign(num_buckets, false);

    if (!std::getline(in, line) || line.rfind("low", 0) != 0)
        bad("missing low-bucket line");
    std::istringstream ids(line.substr(3));
    long long previous = -1;
    long long id = 0;
    while (ids >> id) {
        if (id < 0 || static_cast<std::size_t>(id) >= num_buckets)
            bad("bucket id out of range");
        if (id <= previous)
            bad("bucket ids must be strictly ascending");
        image.lowBuckets[static_cast<std::size_t>(id)] = true;
        previous = id;
    }
    if (!ids.eof())
        bad("trailing garbage on low-bucket line");
    return image;
}

} // namespace confsim
