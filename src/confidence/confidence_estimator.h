/**
 * @file
 * The confidence estimator interface.
 *
 * Every mechanism in the paper — one-level CIR tables under any
 * reduction, two-level tables, embedded counters, the static method —
 * boils down to: at prediction time the mechanism maps a branch to a
 * *bucket* (a CIR pattern, a counter value, a ones count, a static
 * branch class), and the evaluation methodology sorts buckets by
 * measured misprediction rate to form the cumulative curves and to pick
 * the high/low confidence cut. Estimators therefore expose their bucket
 * id; the binary high/low signal is a threshold over buckets
 * (binary_signal.h), and the "ideal reduction function" of Sections 2/4
 * is simply profiling over raw-pattern buckets.
 */

#ifndef CONFSIM_CONFIDENCE_CONFIDENCE_ESTIMATOR_H
#define CONFSIM_CONFIDENCE_CONFIDENCE_ESTIMATOR_H

#include <cstdint>
#include <string>

#include "ckpt/serializable.h"
#include "confidence/branch_context.h"

namespace confsim {

/**
 * Abstract branch-prediction confidence mechanism.
 *
 * Also Serializable: estimators used in checkpointed runs implement
 * saveState()/loadState() for bit-exact resume (see src/ckpt/).
 */
class ConfidenceEstimator : public Serializable
{
  public:
    virtual ~ConfidenceEstimator() = default;

    /**
     * The bucket this prediction falls into, queried at prediction time
     * (before the branch resolves). Bucket ids are < numBuckets().
     */
    virtual std::uint64_t bucketOf(const BranchContext &ctx) const = 0;

    /**
     * Train with the resolved branch. Must be called exactly once per
     * dynamic branch, after bucketOf(), with the same context.
     *
     * Both the prediction's correctness and the branch outcome are
     * supplied — hardware has both at resolution time. CIR/counter
     * estimators use only @p correct; direction-sensitive estimators
     * (e.g. SelfCounterConfidence) use @p taken.
     *
     * @param ctx The same context used for bucketOf().
     * @param correct true iff the underlying prediction was correct.
     * @param taken the branch's resolved direction.
     */
    virtual void update(const BranchContext &ctx, bool correct,
                        bool taken) = 0;

    /** @return one past the largest bucket id this estimator produces. */
    virtual std::uint64_t numBuckets() const = 0;

    /** @return confidence-structure storage in bits (cost metric). */
    virtual std::uint64_t storageBits() const = 0;

    /** @return short identifier, e.g. "1lvl-PCxorBHR-reset16". */
    virtual std::string name() const = 0;

    /** Restore the initial (power-on) state. */
    virtual void reset() = 0;

    /**
     * True if larger bucket ids mean *higher* confidence by
     * construction (counter and ones-count estimators). Raw-pattern
     * estimators return false: their buckets are unordered and only the
     * profiled ideal reduction orders them.
     */
    virtual bool bucketsAreOrdered() const { return false; }
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_CONFIDENCE_ESTIMATOR_H
