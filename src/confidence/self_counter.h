/**
 * @file
 * Counter-strength confidence (paper Section 1.1, citing [9] J. E.
 * Smith 1981: "a proposal for assigning confidence levels to different
 * counter values in predictors based on saturating counters").
 *
 * The estimator keeps a shadow table of up/down saturating counters
 * trained on branch outcomes (like a bimodal predictor) and reports
 * the counter's *strength* — its distance from the taken/not-taken
 * decision boundary — as the confidence bucket. A strongly saturated
 * counter (0 or max) means the branch has been consistently one-sided,
 * i.e. high confidence; a counter hovering at the boundary means low
 * confidence.
 *
 * Included as the historical baseline the paper's CIR-based methods
 * improve upon; bench/ablation_estimators compares them.
 */

#ifndef CONFSIM_CONFIDENCE_SELF_COUNTER_H
#define CONFSIM_CONFIDENCE_SELF_COUNTER_H

#include <vector>

#include "confidence/confidence_estimator.h"
#include "confidence/index_scheme.h"

namespace confsim {

/**
 * Shadow-counter strength estimator. Bucket = distance of the shadow
 * counter from the decision boundary, in [0, 2^(bits-1)]; larger =
 * higher confidence (ordered buckets).
 */
class SelfCounterConfidence : public ConfidenceEstimator
{
  public:
    /**
     * @param scheme Shadow-table index formation (PC in Smith's
     *        original proposal; any scheme is allowed).
     * @param num_entries Shadow table size (power of two).
     * @param counter_bits Shadow counter width (2..6). Wider counters
     *        give more strength levels: buckets 0..2^(bits-1).
     */
    SelfCounterConfidence(IndexScheme scheme, std::size_t num_entries,
                          unsigned counter_bits = 3);

    std::uint64_t bucketOf(const BranchContext &ctx) const override;

    /**
     * Train the shadow counter. Unlike the CIR-based estimators, this
     * estimator learns from the branch *outcome* (@p taken), not from
     * the main predictor's correctness.
     */
    void update(const BranchContext &ctx, bool correct,
                bool taken) override;

    std::uint64_t numBuckets() const override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;
    bool bucketsAreOrdered() const override { return true; }

    /** @return the shadow counter's current direction guess. */
    bool shadowPredictsTaken(const BranchContext &ctx) const;

  private:
    std::uint64_t indexOf(const BranchContext &ctx) const;
    std::uint64_t strengthOf(std::uint32_t counter) const;

    IndexScheme scheme_;
    unsigned counterBits_;
    unsigned indexBits_;
    std::uint32_t maxValue_;
    std::uint32_t initialValue_;
    std::vector<std::uint32_t> counters_;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_SELF_COUNTER_H
