#include "confidence/interference_probe.h"

#include <algorithm>

#include "util/status.h"

namespace confsim {

InterferenceProbe::InterferenceProbe(IndexScheme scheme,
                                     unsigned index_bits,
                                     unsigned max_tracked)
    : scheme_(scheme), indexBits_(index_bits), maxTracked_(max_tracked)
{
    if (index_bits == 0 || index_bits > 32)
        fatal("interference probe index width must be in [1, 32]");
    if (max_tracked < 2)
        fatal("interference probe must track at least 2 contexts");
}

void
InterferenceProbe::observe(const BranchContext &ctx)
{
    const std::uint64_t index = computeIndex(scheme_, ctx, indexBits_);
    // The full-width index identifies the context: two contexts that
    // differ only above 32 index bits are indistinguishable to any
    // table this library can build, so treating them as equal is
    // exact for our purposes.
    const std::uint64_t context_id = computeIndex(scheme_, ctx, 32);

    EntryState &entry = entries_[index];
    ++entry.accesses;
    if (entry.contexts.size() < maxTracked_ &&
        std::find(entry.contexts.begin(), entry.contexts.end(),
                  context_id) == entry.contexts.end()) {
        entry.contexts.push_back(context_id);
    }
}

InterferenceProbe::Report
InterferenceProbe::report() const
{
    Report out;
    double context_sum = 0.0;
    for (const auto &[index, entry] : entries_) {
        ++out.entriesTouched;
        out.accesses += entry.accesses;
        context_sum += static_cast<double>(entry.contexts.size());
        if (entry.contexts.size() >= 2) {
            ++out.sharedEntries;
            out.sharedAccesses += entry.accesses;
        }
    }
    out.averageContextsPerEntry =
        out.entriesTouched == 0
            ? 0.0
            : context_sum / static_cast<double>(out.entriesTouched);
    return out;
}

} // namespace confsim
