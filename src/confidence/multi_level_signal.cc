#include "confidence/multi_level_signal.h"

#include <algorithm>

#include "util/status.h"

namespace confsim {

MultiLevelConfidenceSignal::MultiLevelConfidenceSignal(
    const ConfidenceEstimator &estimator, const BucketStats &stats,
    const std::vector<double> &ref_cuts)
    : estimator_(estimator)
{
    if (stats.numBuckets() != estimator.numBuckets())
        fatal("bucket stats do not match the estimator");
    if (ref_cuts.empty())
        fatal("multi-level signal needs at least one cut point");
    for (std::size_t i = 0; i < ref_cuts.size(); ++i) {
        if (ref_cuts[i] <= 0.0 || ref_cuts[i] >= 1.0)
            fatal("cut points must lie strictly inside (0, 1)");
        if (i > 0 && ref_cuts[i] <= ref_cuts[i - 1])
            fatal("cut points must be strictly ascending");
    }
    numClasses_ = static_cast<unsigned>(ref_cuts.size()) + 1;
    if (numClasses_ > 255)
        fatal("too many confidence classes");

    // Sort buckets by misprediction rate, worst first (the same order
    // the confidence curves use), then walk the cumulative reference
    // mass assigning classes.
    auto keyed = stats.nonEmpty();
    std::sort(keyed.begin(), keyed.end(),
              [](const KeyedBucketCounts &a, const KeyedBucketCounts &b) {
                  const double ra = a.counts.rate();
                  const double rb = b.counts.rate();
                  if (ra != rb)
                      return ra > rb;
                  return a.bucket < b.bucket;
              });
    const double total_refs = stats.totalRefs();
    if (total_refs <= 0.0)
        fatal("cannot build a multi-level signal from empty stats");

    // Unreferenced buckets default to the most confident class: with
    // the recommended all-ones initialization an unseen context reads
    // as low confidence via its referenced neighbours; classifying
    // truly unseen buckets as confident is conservative for profiled
    // operating points.
    bucketClass_.assign(stats.numBuckets(),
                        static_cast<std::uint8_t>(numClasses_ - 1));
    summaries_.assign(numClasses_, ClassSummary{});

    std::vector<double> class_refs(numClasses_, 0.0);
    std::vector<double> class_misses(numClasses_, 0.0);
    double cumulative = 0.0;
    for (const auto &entry : keyed) {
        const double frac_before = cumulative / total_refs;
        unsigned cls = numClasses_ - 1;
        for (std::size_t c = 0; c < ref_cuts.size(); ++c) {
            if (frac_before < ref_cuts[c]) {
                cls = static_cast<unsigned>(c);
                break;
            }
        }
        bucketClass_[entry.bucket] = static_cast<std::uint8_t>(cls);
        class_refs[cls] += entry.counts.refs;
        class_misses[cls] += entry.counts.mispredicts;
        cumulative += entry.counts.refs;
    }
    for (unsigned c = 0; c < numClasses_; ++c) {
        summaries_[c].refFraction = class_refs[c] / total_refs;
        summaries_[c].mispredictRate =
            class_refs[c] > 0.0 ? class_misses[c] / class_refs[c]
                                : 0.0;
    }
}

unsigned
MultiLevelConfidenceSignal::classOf(const BranchContext &ctx) const
{
    return classOfBucket(estimator_.bucketOf(ctx));
}

unsigned
MultiLevelConfidenceSignal::classOfBucket(std::uint64_t bucket) const
{
    if (bucket >= bucketClass_.size())
        return numClasses_ - 1;
    return bucketClass_[bucket];
}

} // namespace confsim
