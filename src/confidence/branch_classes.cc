#include "confidence/branch_classes.h"

#include "util/status.h"
#include "util/string_utils.h"

namespace confsim {

const char *
toString(BranchClass cls)
{
    switch (cls) {
      case BranchClass::AlwaysOneSided: return "always-one-sided";
      case BranchClass::StronglyBiased: return "strongly-biased";
      case BranchClass::MostlyBiased: return "mostly-biased";
      case BranchClass::Mixed: return "mixed";
      case BranchClass::NumClasses: break;
    }
    panic("unknown BranchClass");
}

BranchClass
classifyTakenRate(double taken_rate)
{
    // Fold the two one-sided directions together.
    const double one_sidedness =
        taken_rate <= 0.5 ? taken_rate : 1.0 - taken_rate;
    if (one_sidedness <= 0.001)
        return BranchClass::AlwaysOneSided;
    if (one_sidedness <= 0.05)
        return BranchClass::StronglyBiased;
    if (one_sidedness <= 0.30)
        return BranchClass::MostlyBiased;
    return BranchClass::Mixed;
}

BranchClassBreakdown
classifyProfile(const StaticBranchProfile &profile)
{
    BranchClassBreakdown out{};
    for (const auto &[pc, entry] : profile.entries()) {
        const auto cls = static_cast<std::size_t>(
            classifyTakenRate(entry.takenRate()));
        ++out[cls].staticBranches;
        out[cls].executions += entry.executions;
        out[cls].mispredictions += entry.mispredictions;
    }
    return out;
}

std::string
renderBranchClassTable(const BranchClassBreakdown &breakdown)
{
    std::uint64_t total_static = 0;
    std::uint64_t total_exec = 0;
    std::uint64_t total_miss = 0;
    for (const auto &cls : breakdown) {
        total_static += cls.staticBranches;
        total_exec += cls.executions;
        total_miss += cls.mispredictions;
    }

    std::string out;
    out += padRight("class", 18) + padLeft("statics", 9) +
           padLeft("% dyn", 8) + padLeft("% miss", 8) +
           padLeft("rate", 8) + "\n";
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(BranchClass::NumClasses); ++c) {
        const auto &cls = breakdown[c];
        out += padRight(toString(static_cast<BranchClass>(c)), 18);
        out += padLeft(std::to_string(cls.staticBranches), 9);
        out += padLeft(
            formatFixed(total_exec == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(
                                          cls.executions) /
                                  static_cast<double>(total_exec),
                        1),
            8);
        out += padLeft(
            formatFixed(total_miss == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(
                                          cls.mispredictions) /
                                  static_cast<double>(total_miss),
                        1),
            8);
        out += padLeft(formatPercent(cls.rate(), 2) + "%", 8);
        out += "\n";
    }
    out += padRight("total", 18) + padLeft(std::to_string(total_static), 9) +
           padLeft("100.0", 8) + padLeft("100.0", 8) +
           padLeft(formatPercent(total_exec == 0
                                     ? 0.0
                                     : static_cast<double>(total_miss) /
                                           static_cast<double>(
                                               total_exec),
                                 2) +
                       "%",
                   8) +
           "\n";
    return out;
}

} // namespace confsim
