#include "confidence/self_counter.h"

#include "ckpt/state_io.h"

#include "util/bits.h"
#include "util/status.h"

namespace confsim {

SelfCounterConfidence::SelfCounterConfidence(IndexScheme scheme,
                                             std::size_t num_entries,
                                             unsigned counter_bits)
    : scheme_(scheme), counterBits_(counter_bits)
{
    if (!isPowerOfTwo(num_entries))
        fatal("shadow counter table size must be a power of two");
    if (counter_bits < 2 || counter_bits > 6)
        fatal("shadow counter width must be in [2, 6]");
    indexBits_ = log2Exact(num_entries);
    maxValue_ = static_cast<std::uint32_t>(mask(counter_bits));
    // "Weakly taken", as for prediction counters.
    initialValue_ = (maxValue_ + 1) / 2;
    counters_.assign(num_entries, initialValue_);
}

std::uint64_t
SelfCounterConfidence::indexOf(const BranchContext &ctx) const
{
    return computeIndex(scheme_, ctx, indexBits_);
}

std::uint64_t
SelfCounterConfidence::strengthOf(std::uint32_t counter) const
{
    // Distance from the taken/not-taken boundary. For a 3-bit counter
    // (0..7, taken >= 4): values 3 and 4 have strength 0 (weak);
    // values 0 and 7 have strength 3 (strong).
    const std::uint32_t mid = (maxValue_ + 1) / 2;
    return counter >= mid ? counter - mid : mid - 1 - counter;
}

std::uint64_t
SelfCounterConfidence::bucketOf(const BranchContext &ctx) const
{
    return strengthOf(counters_[indexOf(ctx)]);
}

bool
SelfCounterConfidence::shadowPredictsTaken(const BranchContext &ctx)
    const
{
    return counters_[indexOf(ctx)] >= (maxValue_ + 1) / 2;
}

void
SelfCounterConfidence::update(const BranchContext &ctx, bool,
                              bool taken)
{
    auto &counter = counters_[indexOf(ctx)];
    if (taken) {
        if (counter < maxValue_)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

std::uint64_t
SelfCounterConfidence::numBuckets() const
{
    return (static_cast<std::uint64_t>(maxValue_) + 1) / 2;
}

std::uint64_t
SelfCounterConfidence::storageBits() const
{
    return static_cast<std::uint64_t>(counters_.size()) * counterBits_;
}

std::string
SelfCounterConfidence::name() const
{
    return std::string("selfcnt-") + toString(scheme_) + "-" +
           std::to_string(counterBits_) + "b-" +
           std::to_string(counters_.size());
}

void
SelfCounterConfidence::reset()
{
    counters_.assign(counters_.size(), initialValue_);
}


void
SelfCounterConfidence::saveState(StateWriter &out) const
{
    out.putU64(counters_.size());
    for (const std::uint32_t counter : counters_)
        out.putU32(counter);
}

void
SelfCounterConfidence::loadState(StateReader &in)
{
    in.expectU64(counters_.size(), "self-counter CT size");
    for (std::uint32_t &counter : counters_)
        counter = in.getU32();
}

} // namespace confsim
