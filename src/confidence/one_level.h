/**
 * @file
 * One-level dynamic confidence mechanisms (paper Section 3.1, Fig. 3).
 *
 * Two estimator families:
 *
 *  - OneLevelCirConfidence: the CT holds full n-bit CIRs. The bucket is
 *    either the raw pattern (feeding the profiled "ideal" reduction of
 *    Section 4) or the pattern's ones count (the practical ones-count
 *    reduction of Section 5.1).
 *
 *  - OneLevelCounterConfidence: the CT holds compressed entries — a
 *    saturating or resetting 0..max counter per entry (Section 5.1),
 *    giving the logarithmic storage reduction the paper recommends. The
 *    bucket is the counter value read at prediction time.
 */

#ifndef CONFSIM_CONFIDENCE_ONE_LEVEL_H
#define CONFSIM_CONFIDENCE_ONE_LEVEL_H

#include <vector>

#include "confidence/cir_table.h"
#include "confidence/confidence_estimator.h"
#include "confidence/index_scheme.h"

namespace confsim {

/** Combinational function applied to a CIR read from the CT. */
enum class CirReduction
{
    RawPattern, //!< bucket = the CIR itself (ideal-reduction profiling)
    OnesCount,  //!< bucket = popcount(CIR)
};

/** @return "raw" or "ones". */
const char *toString(CirReduction reduction);

/** One-level confidence mechanism with full CIRs in the table. */
class OneLevelCirConfidence : public ConfidenceEstimator
{
  public:
    /**
     * @param scheme CT index formation.
     * @param num_entries CT size (power of two); 2^16 in the paper.
     * @param cir_bits CIR width; 16 in the paper.
     * @param reduction Bucket function.
     * @param init CT initialization (paper default: all ones).
     */
    OneLevelCirConfidence(IndexScheme scheme, std::size_t num_entries,
                          unsigned cir_bits, CirReduction reduction,
                          CtInit init = CtInit::Ones);

    std::uint64_t bucketOf(const BranchContext &ctx) const override;
    void update(const BranchContext &ctx, bool correct,
                bool taken) override;
    std::uint64_t numBuckets() const override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;
    bool bucketsAreOrdered() const override;

    /** @return the raw CIR the current context reads (for tests). */
    std::uint64_t readCir(const BranchContext &ctx) const;

  private:
    IndexScheme scheme_;
    CirTable table_;
    CirReduction reduction_;
};

/** Counter style for compressed CT entries. */
enum class CounterKind
{
    Saturating, //!< up on correct, down on incorrect (Section 5.1)
    Resetting,  //!< up on correct, reset to 0 on incorrect (Section 5.1)
    HalfReset,  //!< up on correct, halve on incorrect — a middle point
                //!< between the paper's two reductions: one miss costs
                //!< half the accumulated confidence instead of all of
                //!< it, softening the aliasing amplification of full
                //!< resets at the price of a muddier low end
};

/** @return "sat", "reset" or "halfreset". */
const char *toString(CounterKind kind);

/**
 * One-level confidence mechanism with embedded counters in the table.
 * Bucket = counter value in [0, max]; larger means more recent correct
 * predictions, i.e. higher confidence.
 */
class OneLevelCounterConfidence : public ConfidenceEstimator
{
  public:
    /**
     * @param scheme CT index formation.
     * @param num_entries CT size (power of two).
     * @param kind Counter style.
     * @param max_value Saturation ceiling; 16 in the paper (matching
     *        16-bit CIRs; a 0..15 counter would be cheaper).
     * @param initial_value Power-on counter value. 0 corresponds to the
     *        paper's recommended all-ones CIR initialization (a counter
     *        that has seen no correct predictions yet).
     */
    OneLevelCounterConfidence(IndexScheme scheme,
                              std::size_t num_entries, CounterKind kind,
                              std::uint32_t max_value = 16,
                              std::uint32_t initial_value = 0);

    std::uint64_t bucketOf(const BranchContext &ctx) const override;
    void update(const BranchContext &ctx, bool correct,
                bool taken) override;
    std::uint64_t numBuckets() const override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;
    bool bucketsAreOrdered() const override { return true; }

    /** @return the counter ceiling. */
    std::uint32_t maxValue() const { return maxValue_; }

  private:
    IndexScheme scheme_;
    CounterKind kind_;
    std::uint32_t maxValue_;
    std::uint32_t initialValue_;
    unsigned indexBits_;
    unsigned bitsPerCounter_;
    std::vector<std::uint32_t> counters_;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_ONE_LEVEL_H
