/**
 * @file
 * TAGE's built-in confidence signal as a ConfidenceEstimator.
 *
 * TAGE assigns confidence for free: the provider counter's distance
 * from its weak boundary says how settled the entry is, and agreement
 * between the provider and the alternate prediction corroborates it
 * (cf. scarab's weight_conf level mechanism, which likewise grades
 * predictions into confidence levels from predictor-internal state).
 *
 * The estimator keeps a *shadow replica* of the TAGE predictor —
 * trained on branch outcomes inside update(), exactly like
 * SelfCounterConfidence's shadow counter table — so it needs no
 * channel into the main predictor and remains an independent,
 * checkpointable hardware structure. Paired with a main TagePredictor
 * of the same geometry it sees the identical (pc, outcome) stream and
 * therefore tracks the real provider state bit-for-bit.
 *
 * Bucket = 2 * providerStrength + (provider agrees with alt), so
 * larger buckets mean stronger, corroborated predictions (ordered).
 */

#ifndef CONFSIM_CONFIDENCE_TAGE_CONFIDENCE_H
#define CONFSIM_CONFIDENCE_TAGE_CONFIDENCE_H

#include "confidence/confidence_estimator.h"
#include "predictor/tage.h"

namespace confsim {

/** Provider-strength + provider/alt-agreement confidence. */
class TageProviderConfidence : public ConfidenceEstimator
{
  public:
    explicit TageProviderConfidence(
        TageConfig config = TageConfig::makeDefault());

    std::uint64_t bucketOf(const BranchContext &ctx) const override;

    /** Train the shadow TAGE on the branch outcome. */
    void update(const BranchContext &ctx, bool correct,
                bool taken) override;

    std::uint64_t numBuckets() const override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;
    bool bucketsAreOrdered() const override { return true; }

    /** The shadow predictor's full prediction breakdown (tests). */
    TagePrediction shadowDetail(const BranchContext &ctx) const;

  private:
    TagePredictor shadow_;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_TAGE_CONFIDENCE_H
