/**
 * @file
 * Composite confidence estimation — cross-product buckets of two
 * constituent estimators.
 *
 * The paper closes by noting the confidence design space is "probably
 * as large as for branch prediction" and that other methods "can (and
 * should) be explored". A natural next step is combining orthogonal
 * confidence sources: e.g. a resetting counter (recent correctness at
 * this context) with a counter-strength estimator (how one-sided the
 * branch's outcomes are). The composite's bucket is the pair
 * (bucketA, bucketB), encoded as bucketA * numBucketsB + bucketB, so
 * the ideal-reduction methodology applies unchanged: profiling sorts
 * the pairs by measured misprediction rate and any operating point can
 * use genuinely two-dimensional information.
 *
 * bench/ablation_estimators quantifies the gain over each constituent.
 */

#ifndef CONFSIM_CONFIDENCE_COMPOSITE_CONFIDENCE_H
#define CONFSIM_CONFIDENCE_COMPOSITE_CONFIDENCE_H

#include <memory>

#include "confidence/confidence_estimator.h"

namespace confsim {

/** Cross-product combination of two estimators. */
class CompositeConfidence : public ConfidenceEstimator
{
  public:
    /**
     * @param first Constituent A (owned).
     * @param second Constituent B (owned).
     *
     * The combined bucket space is numBucketsA * numBucketsB and must
     * stay practical (<= 2^24).
     */
    CompositeConfidence(std::unique_ptr<ConfidenceEstimator> first,
                        std::unique_ptr<ConfidenceEstimator> second);

    std::uint64_t bucketOf(const BranchContext &ctx) const override;
    void update(const BranchContext &ctx, bool correct,
                bool taken) override;
    std::uint64_t numBuckets() const override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override;
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;
    /** Pairs are not totally ordered even if both parts are. */
    bool bucketsAreOrdered() const override { return false; }

    /** Split a composite bucket id back into (first, second). */
    std::pair<std::uint64_t, std::uint64_t>
    splitBucket(std::uint64_t bucket) const;

    /** @return constituent A (for tests/reports). */
    const ConfidenceEstimator &first() const { return *first_; }
    /** @return constituent B. */
    const ConfidenceEstimator &second() const { return *second_; }

  private:
    std::unique_ptr<ConfidenceEstimator> first_;
    std::unique_ptr<ConfidenceEstimator> second_;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_COMPOSITE_CONFIDENCE_H
