/**
 * @file
 * Two-level dynamic confidence mechanisms (paper Section 3.2, Fig. 4).
 *
 * A first-level CT is indexed as in the one-level methods; the n-bit CIR
 * it produces is then (optionally hashed with PC/BHR and) used to index
 * a second-level CT of p-bit CIRs, which records the correct/incorrect
 * outcomes of the p most recent times that first-level combination
 * occurred. The paper's three representative variants:
 *
 *  - PC       -> level-1,  CIR              -> level-2   ("PC-CIR")
 *  - PC^BHR   -> level-1,  CIR              -> level-2   ("BHRxorPC-CIR")
 *  - PC^BHR   -> level-1,  CIR^PC^BHR       -> level-2
 *
 * plus the remaining hash combinations for ablation studies. The paper's
 * conclusion — the second level is not worth the hardware — is
 * reproduced by bench/fig07_comparison.
 */

#ifndef CONFSIM_CONFIDENCE_TWO_LEVEL_H
#define CONFSIM_CONFIDENCE_TWO_LEVEL_H

#include "confidence/cir_table.h"
#include "confidence/confidence_estimator.h"
#include "confidence/index_scheme.h"
#include "confidence/one_level.h"

namespace confsim {

/** How the second-level index is formed from the level-1 CIR. */
enum class SecondLevelIndex
{
    Cir,          //!< level-1 CIR alone
    CirXorPc,     //!< CIR ^ PC bits
    CirXorBhr,    //!< CIR ^ BHR bits
    CirXorPcXorBhr, //!< CIR ^ PC ^ BHR (the paper's third variant)
};

/** @return short name, e.g. "CIR", "CIRxorPCxorBHR". */
const char *toString(SecondLevelIndex index);

/** Two-level CIR-table confidence estimator. */
class TwoLevelConfidence : public ConfidenceEstimator
{
  public:
    /**
     * @param first_scheme Level-1 CT index formation.
     * @param first_entries Level-1 CT size (2^m).
     * @param first_cir_bits Level-1 CIR width n; the level-2 CT has 2^n
     *        entries.
     * @param second_index Level-2 index formation.
     * @param second_cir_bits Level-2 CIR width p.
     * @param reduction Bucket function over the level-2 CIR.
     * @param init Initialization for both tables.
     */
    TwoLevelConfidence(IndexScheme first_scheme,
                       std::size_t first_entries,
                       unsigned first_cir_bits,
                       SecondLevelIndex second_index,
                       unsigned second_cir_bits,
                       CirReduction reduction = CirReduction::RawPattern,
                       CtInit init = CtInit::Ones);

    std::uint64_t bucketOf(const BranchContext &ctx) const override;
    void update(const BranchContext &ctx, bool correct,
                bool taken) override;
    std::uint64_t numBuckets() const override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

  private:
    std::uint64_t secondIndexOf(const BranchContext &ctx) const;

    IndexScheme firstScheme_;
    CirTable firstTable_;
    SecondLevelIndex secondIndex_;
    CirTable secondTable_;
    CirReduction reduction_;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_TWO_LEVEL_H
