/**
 * @file
 * Serialization of derived confidence signals.
 *
 * The paper's deployment flow (Section 1): "we propose using
 * benchmarks to collect prediction accuracy data. This data can then
 * be used to design logic so that the high and low confidence sets
 * have the characteristics we desire... once implemented, the
 * confidence logic is used for all programs."
 *
 * This module is that hand-off point in software: the profiled
 * low-confidence bucket mask (the minterm set of the reduction
 * function) is written to a small versioned file — the "programming
 * image" a hardware generator or a later simulation run consumes —
 * and read back into a BinaryConfidenceSignal-compatible mask.
 *
 * Format (text, diff-able):
 *   line 1: "confsim-signal v1"
 *   line 2: "estimator <name>"
 *   line 3: "buckets <numBuckets>"
 *   line 4: "low <index> <index> ..." (ascending bucket ids)
 */

#ifndef CONFSIM_CONFIDENCE_SIGNAL_IO_H
#define CONFSIM_CONFIDENCE_SIGNAL_IO_H

#include <string>
#include <vector>

namespace confsim {

/** A deserialized confidence-signal description. */
struct SignalImage
{
    std::string estimatorName; //!< which estimator the mask is for
    std::vector<bool> lowBuckets; //!< sized to the bucket space
};

/**
 * Write a low-bucket mask to @p path.
 *
 * @param path Output file; calls fatal() if unwritable.
 * @param estimator_name Free-form identifier recorded in the image
 *        (validated on load if the loader passes an expected name).
 * @param low_buckets The mask; its size defines the bucket space.
 */
void writeSignalImage(const std::string &path,
                      const std::string &estimator_name,
                      const std::vector<bool> &low_buckets);

/**
 * Read a signal image from @p path; calls fatal() on malformed input.
 *
 * @param expected_estimator If non-empty, the image's estimator name
 *        must match exactly (guards against programming the wrong
 *        hardware table).
 */
SignalImage readSignalImage(const std::string &path,
                            const std::string &expected_estimator = "");

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_SIGNAL_IO_H
