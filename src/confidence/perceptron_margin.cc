#include "confidence/perceptron_margin.h"

#include "util/status.h"

namespace confsim {

PerceptronMarginConfidence::PerceptronMarginConfidence(
    PerceptronConfig config, unsigned num_levels)
    : shadow_(config), numLevels_(num_levels)
{
    if (num_levels < 2)
        fatal("perceptron margin confidence needs >= 2 levels");
}

std::uint64_t
PerceptronMarginConfidence::bucketForMargin(std::int64_t margin) const
{
    const std::uint64_t magnitude =
        static_cast<std::uint64_t>(margin < 0 ? -margin : margin);
    const std::uint64_t theta =
        static_cast<std::uint64_t>(shadow_.theta());
    const std::uint64_t level = magnitude * numLevels_ / (theta + 1);
    return level >= numLevels_ ? numLevels_ - 1 : level;
}

std::uint64_t
PerceptronMarginConfidence::bucketOf(const BranchContext &ctx) const
{
    return bucketForMargin(shadow_.marginOf(ctx.pc));
}

void
PerceptronMarginConfidence::update(const BranchContext &ctx,
                                   bool /*correct*/, bool taken)
{
    shadow_.update(ctx.pc, taken);
}

std::uint64_t
PerceptronMarginConfidence::numBuckets() const
{
    return numLevels_;
}

std::uint64_t
PerceptronMarginConfidence::storageBits() const
{
    return shadow_.storageBits();
}

std::string
PerceptronMarginConfidence::name() const
{
    return "perceptron-margin";
}

void
PerceptronMarginConfidence::reset()
{
    shadow_.reset();
}

void
PerceptronMarginConfidence::saveState(StateWriter &out) const
{
    shadow_.saveState(out);
    out.putU64(numLevels_);
}

void
PerceptronMarginConfidence::loadState(StateReader &in)
{
    shadow_.loadState(in);
    in.expectU64(numLevels_, "perceptron margin levels");
}

std::int64_t
PerceptronMarginConfidence::shadowMargin(const BranchContext &ctx) const
{
    return shadow_.marginOf(ctx.pc);
}

} // namespace confsim
