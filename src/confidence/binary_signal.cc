#include "confidence/binary_signal.h"

#include "util/status.h"

namespace confsim {

BinaryConfidenceSignal::BinaryConfidenceSignal(
    const ConfidenceEstimator &estimator, std::vector<bool> low_buckets)
    : estimator_(estimator), lowBuckets_(std::move(low_buckets))
{
    if (lowBuckets_.size() != estimator.numBuckets())
        fatal("low-bucket mask size does not match estimator bucket "
              "count");
}

BinaryConfidenceSignal
BinaryConfidenceSignal::fromThreshold(
    const ConfidenceEstimator &estimator, std::uint64_t max_low_bucket)
{
    std::vector<bool> low(estimator.numBuckets(), false);
    for (std::uint64_t b = 0;
         b <= max_low_bucket && b < low.size(); ++b) {
        low[b] = true;
    }
    return BinaryConfidenceSignal(estimator, std::move(low));
}

bool
BinaryConfidenceSignal::isLowConfidence(const BranchContext &ctx) const
{
    const std::uint64_t bucket = estimator_.bucketOf(ctx);
    return bucket < lowBuckets_.size() && lowBuckets_[bucket];
}

} // namespace confsim
