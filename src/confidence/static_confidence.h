/**
 * @file
 * Profile-based static confidence (paper Section 2).
 *
 * Pass 1 profiles each static branch's prediction accuracy under the
 * chosen dynamic predictor (StaticBranchProfile, filled by the
 * simulation driver). The profile is then cut — by misprediction-rate
 * threshold or by a target fraction of dynamic branches — into low- and
 * high-confidence static branch sets, and pass 2 can consult the
 * resulting StaticConfidence estimator online.
 *
 * The paper treats this method as an optimistic baseline ("perfect
 * profiling": the profile input equals the evaluation input), and so do
 * we.
 */

#ifndef CONFSIM_CONFIDENCE_STATIC_CONFIDENCE_H
#define CONFSIM_CONFIDENCE_STATIC_CONFIDENCE_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ckpt/state_io.h"
#include "confidence/confidence_estimator.h"

namespace confsim {

/** Per-static-branch prediction accuracy profile. */
class StaticBranchProfile
{
  public:
    /** Accumulated counts for one static branch. */
    struct Entry
    {
        std::uint64_t executions = 0;
        std::uint64_t mispredictions = 0;
        std::uint64_t takenCount = 0;

        /** @return misprediction rate (0 when never executed). */
        double
        rate() const
        {
            return executions == 0
                       ? 0.0
                       : static_cast<double>(mispredictions) /
                             static_cast<double>(executions);
        }

        /** @return fraction of executions that were taken. */
        double
        takenRate() const
        {
            return executions == 0
                       ? 0.0
                       : static_cast<double>(takenCount) /
                             static_cast<double>(executions);
        }
    };

    /** Record one dynamic execution of the branch at @p pc. */
    void
    record(std::uint64_t pc, bool mispredicted, bool taken = false)
    {
        auto &entry = entries_[pc];
        ++entry.executions;
        if (mispredicted)
            ++entry.mispredictions;
        if (taken)
            ++entry.takenCount;
    }

    /** @return per-PC entries. */
    const std::unordered_map<std::uint64_t, Entry> &entries() const
    {
        return entries_;
    }

    /** @return number of profiled static branches. */
    std::size_t size() const { return entries_.size(); }

    /** Checkpoint the accumulated counts (sorted-key encoding). */
    void saveState(StateWriter &out) const;

    /** Restore a saveState() snapshot, replacing current counts. */
    void loadState(StateReader &in);

    /** @return total dynamic executions across all branches. */
    std::uint64_t totalExecutions() const;

    /** @return total mispredictions across all branches. */
    std::uint64_t totalMispredictions() const;

    /**
     * Select the low-confidence set: static branches, taken in
     * decreasing misprediction-rate order, until they account for at
     * least @p ref_fraction of dynamic executions.
     */
    std::unordered_set<std::uint64_t>
    lowSetByRefFraction(double ref_fraction) const;

    /**
     * Select the low-confidence set: every static branch whose
     * misprediction rate is >= @p rate_threshold.
     */
    std::unordered_set<std::uint64_t>
    lowSetByRateThreshold(double rate_threshold) const;

  private:
    /** PCs sorted by misprediction rate, highest first. */
    std::vector<std::uint64_t> sortedByRate() const;

    std::unordered_map<std::uint64_t, Entry> entries_;
};

/**
 * Online static confidence estimator: bucket 0 = low confidence,
 * bucket 1 = high confidence, decided purely by static branch identity.
 */
class StaticConfidence : public ConfidenceEstimator
{
  public:
    /** @param low_set PCs tagged low-confidence by the profile. */
    explicit StaticConfidence(std::unordered_set<std::uint64_t> low_set);

    std::uint64_t bucketOf(const BranchContext &ctx) const override;
    void update(const BranchContext &ctx, bool correct,
                bool taken) override;
    std::uint64_t numBuckets() const override { return 2; }
    std::uint64_t storageBits() const override;
    std::string name() const override { return "static-profile"; }
    void reset() override {}

    /** The low set is profile configuration, not run state. */
    bool checkpointable() const override { return true; }
    bool bucketsAreOrdered() const override { return true; }

  private:
    std::unordered_set<std::uint64_t> lowSet_;
};

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_STATIC_CONFIDENCE_H
