#include "confidence/associative_ct.h"

#include "ckpt/state_io.h"

#include "util/bits.h"
#include "util/status.h"

namespace confsim {

AssociativeCounterConfidence::AssociativeCounterConfidence(
    IndexScheme scheme, std::size_t num_sets, unsigned ways,
    unsigned tag_bits, CounterKind kind, std::uint32_t max_value)
    : scheme_(scheme), ways_(ways), tagBits_(tag_bits), kind_(kind),
      maxValue_(max_value)
{
    if (!isPowerOfTwo(num_sets))
        fatal("associative CT set count must be a power of two");
    if (ways == 0 || ways > 16)
        fatal("associative CT associativity must be in [1, 16]");
    if (tag_bits == 0 || tag_bits > 16)
        fatal("associative CT tag width must be in [1, 16]");
    if (max_value == 0 || max_value > 255)
        fatal("associative CT counter max must be in [1, 255]");
    setBits_ = log2Exact(num_sets);
    if (setBits_ + tag_bits > 32)
        fatal("associative CT set+tag width exceeds the 32-bit index");
    bitsPerCounter_ = log2Exact(ceilPowerOfTwo(
        static_cast<std::uint64_t>(max_value) + 1));
    entries_.assign(num_sets * ways, Entry{});
}

std::pair<std::uint64_t, std::uint16_t>
AssociativeCounterConfidence::locate(const BranchContext &ctx) const
{
    // Compute a wide index once; the low bits select the set and the
    // bits immediately above become the partial tag.
    const std::uint64_t wide =
        computeIndex(scheme_, ctx, setBits_ + tagBits_);
    const std::uint64_t set = wide & mask(setBits_);
    const auto tag =
        static_cast<std::uint16_t>((wide >> setBits_) & mask(tagBits_));
    return {set, tag};
}

unsigned
AssociativeCounterConfidence::findWay(std::uint64_t set,
                                      std::uint16_t tag) const
{
    const std::size_t base = set * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        const Entry &entry = entries_[base + w];
        if (entry.valid && entry.tag == tag)
            return w;
    }
    return ways_;
}

void
AssociativeCounterConfidence::touch(std::uint64_t set, unsigned way)
{
    const std::size_t base = set * ways_;
    const std::uint8_t old_age = entries_[base + way].lru;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &entry = entries_[base + w];
        if (w == way)
            entry.lru = 0;
        else if (entry.lru <= old_age && entry.lru < 255)
            ++entry.lru;
    }
}

std::uint64_t
AssociativeCounterConfidence::bucketOf(const BranchContext &ctx) const
{
    ++lookups_;
    const auto [set, tag] = locate(ctx);
    const unsigned way = findWay(set, tag);
    if (way == ways_) {
        ++tagMisses_;
        return 0; // power-on counter value for an unseen context
    }
    return entries_[set * ways_ + way].counter;
}

void
AssociativeCounterConfidence::update(const BranchContext &ctx,
                                     bool correct, bool)
{
    const auto [set, tag] = locate(ctx);
    unsigned way = findWay(set, tag);
    const std::size_t base = set * ways_;
    if (way == ways_) {
        // Allocate: evict the LRU way.
        way = 0;
        for (unsigned w = 1; w < ways_; ++w) {
            if (!entries_[base + w].valid) {
                way = w;
                break;
            }
            if (entries_[base + w].lru > entries_[base + way].lru)
                way = w;
        }
        Entry &entry = entries_[base + way];
        entry.valid = true;
        entry.tag = tag;
        entry.counter = 0;
    }

    Entry &entry = entries_[base + way];
    switch (kind_) {
      case CounterKind::Saturating:
        if (correct) {
            if (entry.counter < maxValue_)
                ++entry.counter;
        } else {
            if (entry.counter > 0)
                --entry.counter;
        }
        break;
      case CounterKind::Resetting:
        if (correct) {
            if (entry.counter < maxValue_)
                ++entry.counter;
        } else {
            entry.counter = 0;
        }
        break;
      case CounterKind::HalfReset:
        if (correct) {
            if (entry.counter < maxValue_)
                ++entry.counter;
        } else {
            entry.counter /= 2;
        }
        break;
    }
    touch(set, way);
}

std::uint64_t
AssociativeCounterConfidence::numBuckets() const
{
    return static_cast<std::uint64_t>(maxValue_) + 1;
}

std::uint64_t
AssociativeCounterConfidence::storageBits() const
{
    // Per entry: counter + tag + valid + ceil(log2(ways)) LRU bits.
    const unsigned lru_bits =
        ways_ == 1 ? 0 : log2Exact(ceilPowerOfTwo(ways_));
    return entries_.size() *
           (bitsPerCounter_ + tagBits_ + 1 + lru_bits);
}

std::string
AssociativeCounterConfidence::name() const
{
    return std::string("assoc-") + toString(scheme_) + "-" +
           toString(kind_) + std::to_string(maxValue_) + "-" +
           std::to_string(entries_.size() / ways_) + "sx" +
           std::to_string(ways_) + "w-t" + std::to_string(tagBits_);
}

void
AssociativeCounterConfidence::reset()
{
    entries_.assign(entries_.size(), Entry{});
    tagMisses_ = 0;
    lookups_ = 0;
}


void
AssociativeCounterConfidence::saveState(StateWriter &out) const
{
    out.putU64(entries_.size());
    for (const Entry &entry : entries_) {
        out.putU16(entry.tag);
        out.putU8(entry.counter);
        out.putU8(entry.lru);
        out.putBool(entry.valid);
    }
    out.putU64(tagMisses_);
    out.putU64(lookups_);
}

void
AssociativeCounterConfidence::loadState(StateReader &in)
{
    in.expectU64(entries_.size(), "associative CT entries");
    for (Entry &entry : entries_) {
        entry.tag = in.getU16();
        entry.counter = in.getU8();
        entry.lru = in.getU8();
        entry.valid = in.getBool();
    }
    tagMisses_ = in.getU64();
    lookups_ = in.getU64();
}

} // namespace confsim
