/**
 * @file
 * CIR-table index schemes (paper Section 3.1).
 *
 * "Beginning with these three basic methods of indexing into the CT (PC,
 * global BHR, global CIR), one can construct a number of others by
 * concatenating portions of each or exclusive-ORing them." All of those
 * variants are implemented so the index-scheme ablation bench can
 * reproduce the paper's preliminary findings (XOR beats concatenation;
 * global-CIR indexing is of little value).
 */

#ifndef CONFSIM_CONFIDENCE_INDEX_SCHEME_H
#define CONFSIM_CONFIDENCE_INDEX_SCHEME_H

#include <cstdint>
#include <string>

#include "confidence/branch_context.h"

namespace confsim {

/** How a confidence table index is formed from the branch context. */
enum class IndexScheme
{
    Pc,              //!< PC bits alone
    Bhr,             //!< global branch history alone
    Gcir,            //!< global correct/incorrect register alone
    PcXorBhr,        //!< the paper's best one-level scheme
    PcXorGcir,       //!< PC hashed with global CIR
    BhrXorGcir,      //!< BHR hashed with global CIR
    PcXorBhrXorGcir, //!< all three XORed
    PcConcatBhr,     //!< low half PC bits, high half BHR bits
};

/** @return short name used in reports, e.g. "PCxorBHR". */
const char *toString(IndexScheme scheme);

/**
 * Compute a table index of @p index_bits bits under @p scheme.
 *
 * PC contributes bits [index_bits + 1 : 2] (word-aligned instructions);
 * history registers contribute their low index_bits bits.
 */
std::uint64_t computeIndex(IndexScheme scheme, const BranchContext &ctx,
                           unsigned index_bits);

} // namespace confsim

#endif // CONFSIM_CONFIDENCE_INDEX_SCHEME_H
