#include "confidence/two_level.h"

#include "ckpt/state_io.h"

#include "util/status.h"

namespace confsim {

const char *
toString(SecondLevelIndex index)
{
    switch (index) {
      case SecondLevelIndex::Cir: return "CIR";
      case SecondLevelIndex::CirXorPc: return "CIRxorPC";
      case SecondLevelIndex::CirXorBhr: return "CIRxorBHR";
      case SecondLevelIndex::CirXorPcXorBhr: return "CIRxorPCxorBHR";
    }
    panic("unknown SecondLevelIndex");
}

TwoLevelConfidence::TwoLevelConfidence(IndexScheme first_scheme,
                                       std::size_t first_entries,
                                       unsigned first_cir_bits,
                                       SecondLevelIndex second_index,
                                       unsigned second_cir_bits,
                                       CirReduction reduction,
                                       CtInit init)
    : firstScheme_(first_scheme),
      firstTable_(first_entries, first_cir_bits, init),
      secondIndex_(second_index),
      secondTable_(std::size_t{1} << first_cir_bits, second_cir_bits,
                   init),
      reduction_(reduction)
{
    if (first_cir_bits > 24)
        fatal("level-1 CIR width > 24 would need a > 16M-entry level-2 "
              "table");
    if (reduction == CirReduction::RawPattern && second_cir_bits > 24)
        fatal("raw-pattern bucket space too large; use <= 24-bit level-2 "
              "CIRs");
}

std::uint64_t
TwoLevelConfidence::secondIndexOf(const BranchContext &ctx) const
{
    const std::uint64_t first_cir = firstTable_.read(
        computeIndex(firstScheme_, ctx, firstTable_.indexBits()));
    const unsigned bits = secondTable_.indexBits();
    switch (secondIndex_) {
      case SecondLevelIndex::Cir:
        return first_cir;
      case SecondLevelIndex::CirXorPc:
        return first_cir ^
               computeIndex(IndexScheme::Pc, ctx, bits);
      case SecondLevelIndex::CirXorBhr:
        return first_cir ^
               computeIndex(IndexScheme::Bhr, ctx, bits);
      case SecondLevelIndex::CirXorPcXorBhr:
        return first_cir ^
               computeIndex(IndexScheme::PcXorBhr, ctx, bits);
    }
    panic("unknown SecondLevelIndex");
}

std::uint64_t
TwoLevelConfidence::bucketOf(const BranchContext &ctx) const
{
    const std::uint64_t cir = secondTable_.read(secondIndexOf(ctx));
    switch (reduction_) {
      case CirReduction::RawPattern:
        return cir;
      case CirReduction::OnesCount:
        return popcount(cir);
    }
    panic("unknown CirReduction");
}

void
TwoLevelConfidence::update(const BranchContext &ctx, bool correct,
                           bool)
{
    // The level-2 index must be computed from the PRE-update level-1
    // CIR (the same value bucketOf() saw), so update level 2 first.
    secondTable_.update(secondIndexOf(ctx), correct);
    firstTable_.update(
        computeIndex(firstScheme_, ctx, firstTable_.indexBits()),
        correct);
}

std::uint64_t
TwoLevelConfidence::numBuckets() const
{
    switch (reduction_) {
      case CirReduction::RawPattern:
        return std::uint64_t{1} << secondTable_.cirBits();
      case CirReduction::OnesCount:
        return secondTable_.cirBits() + 1;
    }
    panic("unknown CirReduction");
}

std::uint64_t
TwoLevelConfidence::storageBits() const
{
    return firstTable_.storageBits() + secondTable_.storageBits();
}

std::string
TwoLevelConfidence::name() const
{
    return std::string("2lvl-") + toString(firstScheme_) + "-" +
           toString(secondIndex_) + "-" + toString(reduction_);
}

void
TwoLevelConfidence::reset()
{
    firstTable_.reset();
    secondTable_.reset();
}


void
TwoLevelConfidence::saveState(StateWriter &out) const
{
    firstTable_.saveState(out);
    secondTable_.saveState(out);
}

void
TwoLevelConfidence::loadState(StateReader &in)
{
    firstTable_.loadState(in);
    secondTable_.loadState(in);
}

} // namespace confsim
