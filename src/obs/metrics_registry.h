/**
 * @file
 * A process-local registry of named metrics: monotonic counters,
 * last-value gauges, streaming statistics (util/running_stats.h
 * Welford accumulators), and fixed-bucket histograms. The registry is
 * the aggregation point of the telemetry layer: hot paths accumulate
 * into *local* RunningStats (lock-free) and merge them in at the end
 * of a run, while coarse-grained call sites (suite runner, examples)
 * record directly through the mutex-protected API.
 *
 * ScopedTimer is the RAII phase timer: construct it around a phase and
 * its wall time lands in a named stat when it goes out of scope.
 */

#ifndef CONFSIM_OBS_METRICS_REGISTRY_H
#define CONFSIM_OBS_METRICS_REGISTRY_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/running_stats.h"

namespace confsim {

/**
 * A point-in-time copy of everything a registry holds.
 *
 * Ordering contract: every vector — counters, gauges, stats, *and*
 * histograms — is sorted by name, ascending, byte-wise
 * (std::string::operator<). snapshot() builds each from a std::map
 * walk, so consumers (the metrics_snapshot telemetry event, CSV
 * exports, tests diffing two snapshots) may rely on deterministic,
 * insertion-order-independent output. Pinned by
 * `MetricsRegistryTest.SnapshotIsNameSortedIncludingHistograms`.
 */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, RunningStats>> stats;
    std::vector<std::pair<std::string, Histogram>> histograms;
};

/**
 * Thread-safe named-metric store. Names are free-form but the
 * convention is dotted lowercase paths ("suite.bench_wall_ms",
 * "driver.branches").
 */
class MetricsRegistry
{
  public:
    /** Add @p delta to counter @p name (created at 0 on first use). */
    void increment(const std::string &name, std::uint64_t delta = 1);

    /** Set gauge @p name to @p value (created on first use). */
    void setGauge(const std::string &name, double value);

    /** Record one observation into stat @p name. */
    void observe(const std::string &name, double value);

    /** Merge a locally accumulated RunningStats into stat @p name. */
    void mergeStats(const std::string &name, const RunningStats &other);

    /**
     * Record one observation into histogram @p name, created with the
     * given shape on first use (the shape of an existing histogram is
     * not changed by later calls).
     */
    void observeHistogram(const std::string &name, double value,
                          double lo, double hi, std::size_t bins);

    /** @return counter value (0 when absent). */
    std::uint64_t counter(const std::string &name) const;

    /** @return gauge value (0.0 when absent). */
    double gauge(const std::string &name) const;

    /** @return a copy of stat @p name (empty stats when absent). */
    RunningStats stats(const std::string &name) const;

    /** @return a deterministic (name-sorted) copy of everything. */
    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, RunningStats> stats_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * RAII wall-clock phase timer: records elapsed milliseconds into
 * registry stat @p name on destruction (or at stop()).
 */
class ScopedTimer
{
  public:
    /** Start timing; @p registry may be null (timer becomes a no-op). */
    ScopedTimer(MetricsRegistry *registry, std::string name)
        : registry_(registry), name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Record now instead of at scope exit. Idempotent. */
    double
    stop()
    {
        if (stopped_)
            return elapsedMs_;
        stopped_ = true;
        elapsedMs_ = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
        if (registry_ != nullptr)
            registry_->observe(name_, elapsedMs_);
        return elapsedMs_;
    }

    ~ScopedTimer() { stop(); }

  private:
    MetricsRegistry *registry_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    bool stopped_ = false;
    double elapsedMs_ = 0.0;
};

} // namespace confsim

#endif // CONFSIM_OBS_METRICS_REGISTRY_H
