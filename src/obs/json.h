/**
 * @file
 * Minimal JSON formatting helpers for the telemetry exporters. confsim
 * only ever *writes* JSON (JSONL event streams, run manifests,
 * BENCH_*.json perf reports), so a pair of escape/format functions is
 * all that is needed — no parser, no DOM, no dependency.
 */

#ifndef CONFSIM_OBS_JSON_H
#define CONFSIM_OBS_JSON_H

#include <cstdio>
#include <string>

namespace confsim {

/** Escape @p s for inclusion inside a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** @return @p s quoted and escaped as a JSON string token. */
inline std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

/**
 * Format a double as a JSON number: shortest round-trippable decimal,
 * with non-finite values (not representable in JSON) mapped to null.
 */
inline std::string
jsonNumber(double value)
{
    if (!(value == value) || value > 1.7976931348623157e308 ||
        value < -1.7976931348623157e308) {
        return "null";
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    // Prefer the shorter %.15g form when it round-trips exactly.
    char shorter[40];
    std::snprintf(shorter, sizeof shorter, "%.15g", value);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    return back == value ? shorter : buf;
}

} // namespace confsim

#endif // CONFSIM_OBS_JSON_H
