#include "obs/telemetry_sink.h"

#include <cstdio>

#include "fault/fault_plan.h"
#include "util/status.h"
#include "util/string_utils.h"

namespace confsim {

// ---------------------------------------------------------------------
// JSONL

JsonlTelemetrySink::JsonlTelemetrySink(const std::string &path)
    : out_(path)
{}

void
JsonlTelemetrySink::writeManifest(const RunManifest &manifest)
{
    out_.stream() << manifest.toJson() << '\n';
}

void
JsonlTelemetrySink::writeEvent(const TelemetryEvent &event)
{
    out_.stream() << event.toJson() << '\n';
}

void
JsonlTelemetrySink::flush()
{
    FaultInjector &injector = FaultInjector::instance();
    if (injector.armed())
        injector.fire(FaultSite::kSinkFlush, out_.path());
    out_.stream().flush();
}

void
JsonlTelemetrySink::close()
{
    out_.commit();
}

// ---------------------------------------------------------------------
// CSV (long format)

namespace {

/** RFC-4180 cell quoting, same rule as util/csv.cc. */
std::string
csvCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\n\r") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (const char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace

CsvTelemetrySink::CsvTelemetrySink(const std::string &path)
    : out_(path)
{
    out_.stream() << "t_ms,type,key,value\n";
}

void
CsvTelemetrySink::row(double t_ms, const std::string &type,
                      const std::string &key, const std::string &value)
{
    out_.stream() << formatFixed(t_ms, 3) << ',' << csvCell(type)
                  << ',' << csvCell(key) << ',' << csvCell(value)
                  << '\n';
}

void
CsvTelemetrySink::writeManifest(const RunManifest &manifest)
{
    row(0.0, "manifest", "schema", manifest.schema);
    row(0.0, "manifest", "tool", manifest.tool);
    row(0.0, "manifest", "suite", manifest.suite);
    for (const auto &bench : manifest.benchmarks) {
        row(0.0, "manifest", "benchmark",
            bench.name + ":seed=" + std::to_string(bench.seed) +
                ":branches=" + std::to_string(bench.branches) +
                ":crc=" + std::to_string(bench.traceChecksum));
    }
    row(0.0, "manifest", "predictor", manifest.predictor);
    for (const auto &estimator : manifest.estimators)
        row(0.0, "manifest", "estimator", estimator);
    row(0.0, "manifest", "build_type", manifest.buildType);
    row(0.0, "manifest", "compiler", manifest.compiler);
}

void
CsvTelemetrySink::writeEvent(const TelemetryEvent &event)
{
    if (event.fields.empty()) {
        row(event.tMs, event.type, "", "");
        return;
    }
    for (const auto &f : event.fields)
        row(event.tMs, event.type, f.key, f.value);
}

void
CsvTelemetrySink::flush()
{
    FaultInjector &injector = FaultInjector::instance();
    if (injector.armed())
        injector.fire(FaultSite::kSinkFlush, out_.path());
    out_.stream().flush();
}

void
CsvTelemetrySink::close()
{
    out_.commit();
}

// ---------------------------------------------------------------------
// stderr heartbeat

StderrProgressSink::StderrProgressSink(unsigned every_benchmarks)
    : every_(every_benchmarks == 0 ? 1 : every_benchmarks)
{}

void
StderrProgressSink::writeManifest(const RunManifest &manifest)
{
    std::fprintf(stderr, "[confsim] %s: suite '%s', %zu benchmark(s)\n",
                 manifest.tool.c_str(), manifest.suite.c_str(),
                 manifest.benchmarks.size());
    total_ = manifest.benchmarks.size();
}

void
StderrProgressSink::writeEvent(const TelemetryEvent &event)
{
    if (event.type == events::kBenchmarkFinished) {
        ++finished_;
        if (finished_ % every_ != 0 && finished_ != total_)
            return;
        const bool failed = event.fieldValue("error") != "";
        std::fprintf(stderr,
                     "[confsim] %u/%zu benchmarks done (last: %s, "
                     "%s ms, %s attempt(s)%s)\n",
                     finished_, total_,
                     event.fieldValue("benchmark").c_str(),
                     event.fieldValue("wall_ms").c_str(),
                     event.fieldValue("attempts").c_str(),
                     failed ? ", FAILED" : "");
    } else if (event.type == events::kBenchmarkRetry) {
        std::fprintf(stderr, "[confsim] retrying %s (attempt %s): %s\n",
                     event.fieldValue("benchmark").c_str(),
                     event.fieldValue("attempt").c_str(),
                     event.fieldValue("error").c_str());
    } else if (event.type == events::kWatchdogTimeout) {
        std::fprintf(stderr, "[confsim] watchdog timeout in %s: %s\n",
                     event.fieldValue("benchmark").c_str(),
                     event.fieldValue("error").c_str());
    } else if (event.type == events::kSuiteRunFinished) {
        std::fprintf(stderr,
                     "[confsim] suite finished in %s ms "
                     "(degraded=%s, failed=%s)\n",
                     event.fieldValue("wall_ms").c_str(),
                     event.fieldValue("degraded").c_str(),
                     event.fieldValue("failed_benchmarks").c_str());
    }
}

} // namespace confsim
