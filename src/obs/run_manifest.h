/**
 * @file
 * The run manifest: everything needed to reproduce a telemetry file's
 * run — suite and per-benchmark identity (name, seed, trace length,
 * stream checksum), predictor/estimator configurations, driver knobs,
 * and build provenance (build type, compiler, language standard).
 * Every telemetry stream starts with one manifest record, so a
 * BENCH_*.json or events JSONL found on disk is a self-describing
 * artifact rather than a bag of numbers.
 */

#ifndef CONFSIM_OBS_RUN_MANIFEST_H
#define CONFSIM_OBS_RUN_MANIFEST_H

#include <cstdint>
#include <string>
#include <vector>

namespace confsim {

/** Identity of one benchmark inside a manifest. */
struct ManifestBenchmark
{
    std::string name;
    std::uint64_t seed = 0;     //!< workload-generator seed
    std::uint64_t branches = 0; //!< requested trace length (0=default)

    /**
     * CRC-32 over the head of the branch stream
     * (streamChecksum(), trace/trace_stats.h); 0 when not computed.
     * For synthetic workloads this pins generator reproducibility; for
     * file-backed runs it fingerprints the trace file content.
     */
    std::uint32_t traceChecksum = 0;
};

/** The reproducibility header of one telemetry stream. */
struct RunManifest
{
    /** Telemetry schema identifier (bump on breaking changes). */
    std::string schema = "confsim-telemetry-v1";

    std::string tool;  //!< producing binary / experiment description
    std::string suite; //!< e.g. "ibs-full", "ibs-small", "single"

    std::vector<ManifestBenchmark> benchmarks;

    std::string predictor; //!< predictor name (encodes its geometry)
    std::uint64_t predictorStorageBits = 0;
    std::vector<std::string> estimators; //!< estimator names, in order

    // Driver knobs that affect results.
    unsigned bhrBits = 0;
    unsigned gcirBits = 0;
    std::uint64_t warmupBranches = 0;
    std::uint64_t contextSwitchInterval = 0;

    // Build provenance, defaulted from compile-time facts.
    std::string buildType;    //!< CMAKE_BUILD_TYPE of the obs library
    std::string compiler;     //!< e.g. "GNU 13.2.0"
    std::string cxxStandard;  //!< e.g. "202002"

    /** A manifest pre-filled with this build's provenance fields. */
    static RunManifest withBuildInfo();

    /** @return the manifest as one JSON object (no newline). */
    std::string toJson() const;
};

} // namespace confsim

#endif // CONFSIM_OBS_RUN_MANIFEST_H
