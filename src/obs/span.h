/**
 * @file
 * Execution-span tracing: where does wall time go *inside* a run?
 *
 * The telemetry layer (telemetry.h) answers "what happened" at event
 * granularity; spans answer "when, on which thread, nested inside
 * what". Each instrumented scope pushes a begin/end pair (steady-clock
 * nanoseconds) into a lock-free ring buffer owned by the emitting
 * thread, so the hot path never takes a mutex and never allocates
 * after the thread's first span. At the end of the run the tracer
 * drains every ring into a Chrome trace-event JSON file
 * (`--trace-out trace.json`) that loads directly into Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing, with named threads,
 * nested duration spans, and counter tracks (decode-ring occupancy,
 * worker-pool occupancy).
 *
 * The facade follows the same null-pointer contract as `Telemetry`:
 * every instrumentation site takes a `SpanTracer *` and a null tracer
 * means tracing is off — `ScopedSpan{nullptr, "x"}` is a single
 * perfectly-predicted branch, no clock read, no allocation
 * (pinned by `SpanTest.DisabledTracerAllocatesNothing`).
 *
 * Rings deliberately overwrite their *oldest* entries when full (the
 * newest activity is what a post-mortem wants); the exporter repairs
 * begin/end balance across the dropped prefix, so the emitted JSON
 * always has matching "B"/"E" pairs (`scripts/validate_trace.py`
 * enforces this in CI).
 */

#ifndef CONFSIM_OBS_SPAN_H
#define CONFSIM_OBS_SPAN_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace confsim {

class Telemetry;

/** Configuration for SpanTracer::fromOptions. */
struct SpanTracerOptions
{
    /** Chrome trace JSON destination; empty disables tracing. */
    std::string path;

    /**
     * Events retained per emitting thread (rounded up to a power of
     * two). When a thread outruns its ring the oldest events are
     * overwritten and counted as dropped.
     */
    std::size_t ringCapacity = 1u << 15;

    bool enabled() const { return !path.empty(); }
};

/**
 * Collects spans and counter samples from many threads and exports a
 * Chrome trace-event file. Construction is cheap; per-thread rings are
 * allocated lazily on each thread's first span.
 */
class SpanTracer
{
  public:
    /** @return a tracer, or nullptr when @p options disables tracing. */
    static std::unique_ptr<SpanTracer>
    fromOptions(const SpanTracerOptions &options);

    explicit SpanTracer(SpanTracerOptions options);

    /** Runs finish() if nobody did. */
    ~SpanTracer();

    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

    /** Maximum name length stored per event (longer names truncate). */
    static constexpr std::size_t kMaxName = 30;

    /** Open a duration span on the calling thread. */
    void beginSpan(const char *name);

    /** Close the calling thread's innermost span named @p name. */
    void endSpan(const char *name);

    /** Record one counter-track sample (value at now). */
    void counter(const char *name, std::uint64_t value);

    /**
     * Name the calling thread's track in the exported trace. The first
     * name a thread sets wins; later calls are cheap no-ops, so
     * per-task code may call this unconditionally.
     */
    void setCurrentThreadName(const char *name);

    /** @return nanoseconds since tracer construction (steady clock). */
    std::uint64_t nowNs() const;

    /** Per-span-name aggregate in a finished trace. */
    struct NameSummary
    {
        std::string name;
        std::uint64_t count = 0; //!< closed spans of this name
        double totalNs = 0.0;    //!< summed duration of closed spans
    };

    /** What finish() observed and wrote. */
    struct Summary
    {
        std::string path;           //!< file written ("" if none)
        std::uint64_t events = 0;   //!< retained ring events exported
        std::uint64_t dropped = 0;  //!< events lost to ring wraparound
        std::uint64_t threads = 0;  //!< threads that emitted anything
        std::vector<NameSummary> spans; //!< name-sorted aggregates
    };

    /**
     * Drain all rings, write the Chrome trace JSON, and return the
     * aggregate summary. Must only run while emitting threads are
     * quiescent (the instrumented pipelines all join their workers
     * before the tracer is finished). Idempotent: the second call
     * returns the first call's summary without rewriting the file.
     */
    Summary finish();

    const SpanTracerOptions &options() const { return options_; }

    /** One drained event, for tests and the exporter. */
    struct RawEvent
    {
        int tid = 0;
        std::string threadName;
        std::string name;
        char phase = 'B'; //!< 'B' begin, 'E' end, 'C' counter
        std::uint64_t tsNs = 0;
        std::uint64_t value = 0; //!< counter sample ('C' only)
    };

    /**
     * @return every retained event in per-thread order (timestamps are
     * monotonic within one tid). Test support; does not finish().
     */
    std::vector<RawEvent> snapshotEvents() const;

    /** @return number of threads that have registered a ring. */
    std::size_t threadsSeen() const;

  private:
    struct Event
    {
        std::uint64_t tsNs = 0;
        std::uint64_t value = 0;
        char name[kMaxName + 1] = {0};
        char phase = 'B';
    };

    struct Ring
    {
        explicit Ring(std::size_t capacity) : events(capacity) {}

        std::vector<Event> events; //!< power-of-two sized
        /** Total events ever pushed; entry i lives at i % capacity. */
        std::atomic<std::uint64_t> head{0};
        int tid = 0;
        std::string threadName;
        std::atomic<bool> named{false};
    };

    Ring *ringForThisThread();
    void push(const char *name, char phase, std::uint64_t value);
    void drainRing(const Ring &ring, std::vector<RawEvent> *out) const;

    SpanTracerOptions options_;
    std::uint64_t id_;          //!< process-unique, for the TLS cache
    std::uint64_t epochNs_;     //!< steady-clock origin
    mutable std::mutex mutex_;  //!< guards rings_ registration
    std::vector<std::unique_ptr<Ring>> rings_;
    bool finished_ = false;
    Summary summary_; //!< valid once finished_
};

/**
 * RAII duration span. With a null tracer both constructor and
 * destructor are a single null test — safe to leave in hot code.
 */
class ScopedSpan
{
  public:
    ScopedSpan(SpanTracer *tracer, const char *name)
        : tracer_(tracer), name_(name)
    {
        if (tracer_)
            tracer_->beginSpan(name_);
    }

    ~ScopedSpan()
    {
        if (tracer_)
            tracer_->endSpan(name_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    SpanTracer *tracer_;
    const char *name_;
};

/**
 * Emit the post-run `span_summary` telemetry event and fold per-name
 * span aggregates into the metrics registry (`span.<name>.count`
 * counters, `span.<name>.total_ms` gauges). No-op when @p telemetry
 * is null.
 */
void publishSpanSummary(const SpanTracer::Summary &summary,
                        Telemetry *telemetry);

} // namespace confsim

#endif // CONFSIM_OBS_SPAN_H
