#include "obs/span.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <sstream>

#include "obs/event.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"
#include "util/atomic_file.h"

namespace confsim {

namespace {

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::size_t
roundUpPowerOfTwo(std::size_t n)
{
    std::size_t p = 1;
    while (p < n && p < (std::size_t{1} << 30))
        p <<= 1;
    return p;
}

/**
 * Per-thread cache of "which ring do I push into". Tracer identity is
 * a process-unique id (never an address), so a new tracer reusing a
 * dead tracer's address can never hit a stale cache entry.
 */
struct ThreadSlot
{
    std::uint64_t tracerId = 0;
    void *ring = nullptr;
};

thread_local ThreadSlot t_slot;

std::atomic<std::uint64_t> g_nextTracerId{1};

} // namespace

std::unique_ptr<SpanTracer>
SpanTracer::fromOptions(const SpanTracerOptions &options)
{
    if (!options.enabled())
        return nullptr;
    return std::make_unique<SpanTracer>(options);
}

SpanTracer::SpanTracer(SpanTracerOptions options)
    : options_(std::move(options)),
      id_(g_nextTracerId.fetch_add(1, std::memory_order_relaxed)),
      epochNs_(steadyNowNs())
{
    options_.ringCapacity =
        roundUpPowerOfTwo(std::max<std::size_t>(options_.ringCapacity, 8));
}

SpanTracer::~SpanTracer()
{
    finish();
}

std::uint64_t
SpanTracer::nowNs() const
{
    return steadyNowNs() - epochNs_;
}

SpanTracer::Ring *
SpanTracer::ringForThisThread()
{
    if (t_slot.tracerId == id_)
        return static_cast<Ring *>(t_slot.ring);
    std::lock_guard<std::mutex> lock(mutex_);
    auto ring = std::make_unique<Ring>(options_.ringCapacity);
    ring->tid = static_cast<int>(rings_.size());
    ring->threadName =
        ring->tid == 0 ? "main" : "thread-" + std::to_string(ring->tid);
    Ring *raw = ring.get();
    rings_.push_back(std::move(ring));
    t_slot = {id_, raw};
    return raw;
}

void
SpanTracer::push(const char *name, char phase, std::uint64_t value)
{
    Ring *ring = ringForThisThread();
    const std::uint64_t head =
        ring->head.load(std::memory_order_relaxed);
    Event &e = ring->events[head & (ring->events.size() - 1)];
    e.tsNs = nowNs();
    e.value = value;
    e.phase = phase;
    std::strncpy(e.name, name, kMaxName);
    e.name[kMaxName] = '\0';
    ring->head.store(head + 1, std::memory_order_release);
}

void
SpanTracer::beginSpan(const char *name)
{
    push(name, 'B', 0);
}

void
SpanTracer::endSpan(const char *name)
{
    push(name, 'E', 0);
}

void
SpanTracer::counter(const char *name, std::uint64_t value)
{
    push(name, 'C', value);
}

void
SpanTracer::setCurrentThreadName(const char *name)
{
    Ring *ring = ringForThisThread();
    if (ring->named.load(std::memory_order_relaxed))
        return;
    ring->threadName = name;
    ring->named.store(true, std::memory_order_relaxed);
}

std::size_t
SpanTracer::threadsSeen() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rings_.size();
}

void
SpanTracer::drainRing(const Ring &ring, std::vector<RawEvent> *out) const
{
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t capacity = ring.events.size();
    const std::uint64_t first = head > capacity ? head - capacity : 0;
    for (std::uint64_t i = first; i < head; ++i) {
        const Event &e = ring.events[i & (capacity - 1)];
        RawEvent raw;
        raw.tid = ring.tid;
        raw.threadName = ring.threadName;
        raw.name = e.name;
        raw.phase = e.phase;
        raw.tsNs = e.tsNs;
        raw.value = e.value;
        out->push_back(std::move(raw));
    }
}

std::vector<SpanTracer::RawEvent>
SpanTracer::snapshotEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RawEvent> out;
    for (const auto &ring : rings_)
        drainRing(*ring, &out);
    return out;
}

SpanTracer::Summary
SpanTracer::finish()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_)
        return summary_;
    finished_ = true;

    summary_.path = options_.path;
    summary_.threads = rings_.size();
    for (const auto &ring : rings_) {
        const std::uint64_t head =
            ring->head.load(std::memory_order_acquire);
        const std::uint64_t capacity = ring->events.size();
        summary_.dropped += head > capacity ? head - capacity : 0;
    }

    // Per-name aggregation (closed spans only) via a per-tid stack;
    // the same walk repairs begin/end balance across ring wraparound.
    std::map<std::string, NameSummary> byName;
    std::unique_ptr<AtomicFileWriter> writer;
    std::ostringstream discard;
    if (!options_.path.empty())
        writer = std::make_unique<AtomicFileWriter>(options_.path);
    std::ostream &out = writer ? writer->stream() : discard;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"ts\":0,\"args\":{\"name\":\"confsim\"}}";
    for (const auto &ring : rings_) {
        out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
            << "\"tid\":" << ring->tid << ",\"ts\":0,\"args\":{\"name\":"
            << jsonString(ring->threadName) << "}}";
    }

    const auto emitTs = [&out](std::uint64_t tsNs) {
        // Chrome trace timestamps are microseconds.
        out << jsonNumber(static_cast<double>(tsNs) * 1e-3);
    };

    for (const auto &ring : rings_) {
        std::vector<RawEvent> drained;
        drainRing(*ring, &drained);
        // Stack of open (name, begin-ts) pairs on this thread. RAII
        // guarantees LIFO nesting, so an 'E' that cannot be matched
        // belongs to a 'B' lost to wraparound — skip it; a 'B' still
        // open at the end of the stream is closed at the last
        // timestamp seen, keeping the file balanced either way.
        std::vector<std::pair<std::string, std::uint64_t>> open;
        std::uint64_t lastTs = 0;
        for (const RawEvent &e : drained) {
            lastTs = std::max(lastTs, e.tsNs);
            if (e.phase == 'C') {
                out << ",\n{\"name\":" << jsonString(e.name)
                    << ",\"ph\":\"C\",\"pid\":1,\"tid\":" << ring->tid
                    << ",\"ts\":";
                emitTs(e.tsNs);
                out << ",\"args\":{\"value\":" << e.value << "}}";
                continue;
            }
            if (e.phase == 'B') {
                open.emplace_back(e.name, e.tsNs);
                out << ",\n{\"name\":" << jsonString(e.name)
                    << ",\"cat\":\"confsim\",\"ph\":\"B\",\"pid\":1,"
                    << "\"tid\":" << ring->tid << ",\"ts\":";
                emitTs(e.tsNs);
                out << "}";
                summary_.events++;
                continue;
            }
            if (open.empty() || open.back().first != e.name)
                continue; // begin lost to wraparound
            NameSummary &agg = byName[e.name];
            agg.name = e.name;
            agg.count++;
            agg.totalNs +=
                static_cast<double>(e.tsNs - open.back().second);
            open.pop_back();
            out << ",\n{\"ph\":\"E\",\"pid\":1,\"tid\":" << ring->tid
                << ",\"ts\":";
            emitTs(e.tsNs);
            out << "}";
            summary_.events++;
        }
        while (!open.empty()) {
            NameSummary &agg = byName[open.back().first];
            agg.name = open.back().first;
            agg.count++;
            agg.totalNs +=
                static_cast<double>(lastTs - open.back().second);
            open.pop_back();
            out << ",\n{\"ph\":\"E\",\"pid\":1,\"tid\":" << ring->tid
                << ",\"ts\":";
            emitTs(lastTs);
            out << "}";
            summary_.events++;
        }
    }
    out << "\n]}\n";
    if (writer)
        writer->commit();

    summary_.spans.reserve(byName.size());
    for (auto &entry : byName)
        summary_.spans.push_back(std::move(entry.second));
    return summary_;
}

void
publishSpanSummary(const SpanTracer::Summary &summary,
                   Telemetry *telemetry)
{
    if (telemetry == nullptr)
        return;
    telemetry->emit(TelemetryEvent(
        events::kSpanSummary,
        {field("path", summary.path),
         field("events", summary.events),
         field("threads", summary.threads),
         field("dropped", summary.dropped),
         field("span_names", std::uint64_t{summary.spans.size()})}));
    MetricsRegistry &registry = telemetry->registry();
    for (const auto &span : summary.spans) {
        registry.increment("span." + span.name + ".count", span.count);
        registry.setGauge("span." + span.name + ".total_ms",
                          span.totalNs * 1e-6);
    }
}

} // namespace confsim
