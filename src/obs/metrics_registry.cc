#include "obs/metrics_registry.h"

namespace confsim {

void
MetricsRegistry::increment(const std::string &name, std::uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

void
MetricsRegistry::observe(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_[name].add(value);
}

void
MetricsRegistry::mergeStats(const std::string &name,
                            const RunningStats &other)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_[name].merge(other);
}

void
MetricsRegistry::observeHistogram(const std::string &name, double value,
                                  double lo, double hi,
                                  std::size_t bins)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, Histogram(lo, hi, bins)).first;
    }
    it->second.add(value);
}

std::uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

RunningStats
MetricsRegistry::stats(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = stats_.find(name);
    return it == stats_.end() ? RunningStats{} : it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    // std::map iteration is already name-sorted, so snapshots are
    // deterministic regardless of registration order.
    snap.counters.assign(counters_.begin(), counters_.end());
    snap.gauges.assign(gauges_.begin(), gauges_.end());
    snap.stats.assign(stats_.begin(), stats_.end());
    snap.histograms.assign(histograms_.begin(), histograms_.end());
    return snap;
}

} // namespace confsim
