/**
 * @file
 * Telemetry output backends. A TelemetrySink consumes the structured
 * event stream (obs/event.h) plus one leading RunManifest; the
 * implementations here cover the three consumers a simulation campaign
 * has:
 *
 *  - JsonlTelemetrySink — machine-readable event log, one JSON object
 *    per line, manifest first. The format CI validates
 *    (scripts/validate_telemetry.py) and BENCH trajectory tooling
 *    reads.
 *  - CsvTelemetrySink — long-format CSV (t_ms,type,key,value — one row
 *    per event field) for awk/pandas consumption without a JSON
 *    parser.
 *  - StderrProgressSink — human heartbeat for long suite runs: one
 *    stderr line every N finished benchmarks plus retry/timeout/fault
 *    notices.
 *
 * Sinks are driven by Telemetry (obs/telemetry.h), which serializes
 * calls, so implementations need no locking of their own.
 */

#ifndef CONFSIM_OBS_TELEMETRY_SINK_H
#define CONFSIM_OBS_TELEMETRY_SINK_H

#include <memory>
#include <string>

#include "obs/event.h"
#include "obs/run_manifest.h"
#include "util/atomic_file.h"

namespace confsim {

/** Abstract consumer of one telemetry stream. */
class TelemetrySink
{
  public:
    virtual ~TelemetrySink() = default;

    /** Called once, before any event. */
    virtual void writeManifest(const RunManifest &manifest) = 0;

    /** Called for every emitted event, in emission order. */
    virtual void writeEvent(const TelemetryEvent &event) = 0;

    /** Flush buffered output (end of run). */
    virtual void flush() {}

    /**
     * Finalize the output (end of stream). File-backed sinks write
     * through a `.tmp` sibling and atomically publish it here, so a
     * crashed run leaves either the previous complete file or nothing
     * under the final name — never a truncated log. Called once by
     * Telemetry::finish(); events arriving after close() are dropped.
     */
    virtual void close() {}
};

/** JSON-lines sink: manifest object first, then one object per event. */
class JsonlTelemetrySink : public TelemetrySink
{
  public:
    /** Open the `.tmp` sibling of @p path; calls fatal() on failure. */
    explicit JsonlTelemetrySink(const std::string &path);

    void writeManifest(const RunManifest &manifest) override;
    void writeEvent(const TelemetryEvent &event) override;
    void flush() override;
    void close() override;

  private:
    AtomicFileWriter out_;
};

/**
 * Long-format CSV sink. Header row "t_ms,type,key,value"; the manifest
 * is one row per scalar manifest property (type "manifest"), each
 * event one row per field (events without fields still get one row
 * with an empty key), RFC-4180 quoting throughout.
 */
class CsvTelemetrySink : public TelemetrySink
{
  public:
    /** Open the `.tmp` sibling of @p path; calls fatal() on failure. */
    explicit CsvTelemetrySink(const std::string &path);

    void writeManifest(const RunManifest &manifest) override;
    void writeEvent(const TelemetryEvent &event) override;
    void flush() override;
    void close() override;

  private:
    void row(double t_ms, const std::string &type,
             const std::string &key, const std::string &value);

    AtomicFileWriter out_;
};

/** Heartbeat sink for interactive/long runs; writes to stderr. */
class StderrProgressSink : public TelemetrySink
{
  public:
    /** @param every_benchmarks Heartbeat period in finished benchmarks. */
    explicit StderrProgressSink(unsigned every_benchmarks = 1);

    void writeManifest(const RunManifest &manifest) override;
    void writeEvent(const TelemetryEvent &event) override;

  private:
    unsigned every_;
    unsigned finished_ = 0;
    std::size_t total_ = 0;
};

} // namespace confsim

#endif // CONFSIM_OBS_TELEMETRY_SINK_H
