/**
 * @file
 * Per-static-branch attribution of mispredictions and confidence
 * quality: *which* PCs drive the mispredict mass, how much dynamic
 * volume runs at low confidence, and whether the estimator's
 * confidence is actually calibrated (estimated confidence vs.
 * empirical accuracy), per branch and per estimator.
 *
 * This is the workload-characterization side of the observability
 * layer (the span tracer in span.h is the execution side): the
 * paper's aggregate PVN/SPEC tables become actionable once the
 * coverage mass is attributable to concrete branches.
 *
 * Wiring is **bit-exact-neutral** by construction: the profile only
 * *observes* values the simulation already computed (PC, mispredict
 * flag, the estimator bucket returned by `bucketOf` before `update`)
 * and never touches predictor or estimator state. The differential
 * harness (`tests/integration/branch_profile_test.cc`) pins that a
 * run with profiling on is bit-identical to one with it off, and
 * that sequential-driver and sweep-replica profiles agree exactly.
 *
 * Memory is bounded: at most `capacity` distinct PCs are tracked;
 * when a new PC arrives at capacity, the coldest tracked entries
 * (fewest executions) are folded into a single `evicted()` aggregate.
 * Because evicted counts are aggregated — never discarded —
 * `totalMispredictions()` always equals the run's aggregate
 * mispredict count exactly (an acceptance invariant, also emitted as
 * the `total` row of the CSV/JSONL exports).
 */

#ifndef CONFSIM_OBS_BRANCH_PROFILER_H
#define CONFSIM_OBS_BRANCH_PROFILER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace confsim {

/** Knobs for BranchProfile::configure. */
struct BranchProfileOptions
{
    /** Max distinct PCs tracked before heavy-hitter eviction. */
    std::size_t capacity = 4096;

    /**
     * Reliability-diagram bins over estimated confidence [0, 1] for
     * ordered estimators (unordered estimators get one cell per raw
     * bucket instead, capped at 64).
     */
    std::size_t reliabilityBins = 10;
};

/** Shape of one estimator, as the profiler needs to see it. */
struct BranchProfileEstimatorInfo
{
    std::string name;
    std::size_t numBuckets = 1;
    /**
     * True when higher bucket index means higher confidence
     * (ConfidenceEstimator::bucketsAreOrdered). Estimated confidence
     * for bucket b is then b / (numBuckets - 1); for unordered
     * estimators no scalar confidence exists and calibration is
     * reported per raw bucket.
     */
    bool ordered = true;
};

/** Accumulates the per-branch attribution for one simulation run. */
class BranchProfile
{
  public:
    /** Totals for one static branch (or the evicted aggregate). */
    struct PcEntry
    {
        std::uint64_t executions = 0;
        std::uint64_t mispredictions = 0;
        /**
         * Dynamic executions the primary (index 0) estimator flagged
         * low-confidence: bucket below saturation for ordered
         * estimators (the paper's Table 1 operating point), bucket 0
         * for unordered ones.
         */
        std::uint64_t lowConfidence = 0;
        /** Sum of the primary estimator's estimated confidence. */
        double confidenceSum = 0.0;

        void
        merge(const PcEntry &other)
        {
            executions += other.executions;
            mispredictions += other.mispredictions;
            lowConfidence += other.lowConfidence;
            confidenceSum += other.confidenceSum;
        }
    };

    /** One reliability-diagram cell of one estimator. */
    struct CalibrationBin
    {
        std::uint64_t predictions = 0;
        std::uint64_t correct = 0;
        /** Sum of estimated confidence (ordered estimators only). */
        double confidenceSum = 0.0;

        double
        accuracy() const
        {
            return predictions == 0
                       ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(predictions);
        }

        double
        meanConfidence() const
        {
            return predictions == 0
                       ? 0.0
                       : confidenceSum /
                             static_cast<double>(predictions);
        }
    };

    /** Arm the profile. Until configured, record calls are invalid. */
    void configure(const BranchProfileOptions &options,
                   std::vector<BranchProfileEstimatorInfo> estimators);

    bool enabled() const { return configured_; }

    /**
     * Observe estimator @p estimator's bucket for the current branch
     * (the `bucketOf` value, read before `update`). Call once per
     * estimator per retired conditional branch, then onBranch().
     */
    void onBucket(std::size_t estimator, std::uint64_t bucket,
                  bool correct);

    /** Close out the current branch (after its onBucket calls). */
    void onBranch(std::uint64_t pc, bool mispredicted);

    /**
     * Fold @p other into this profile with every PC re-keyed as
     * `tagBase | pc` (the suite aggregation scheme: benchmark index
     * in the top 16 bits). Adopts @p other's estimator shape when
     * this profile is still unconfigured.
     */
    void mergeFrom(const BranchProfile &other, std::uint64_t tagBase);

    const std::unordered_map<std::uint64_t, PcEntry> &entries() const
    {
        return entries_;
    }

    /** Aggregate of all PCs folded out by capacity eviction. */
    const PcEntry &evicted() const { return evicted_; }

    /** Number of distinct PCs folded into evicted(). */
    std::uint64_t evictedPcs() const { return evictedPcs_; }

    /** Grand total over tracked + evicted (== run totals). */
    std::uint64_t totalExecutions() const { return totalExecutions_; }
    std::uint64_t totalMispredictions() const
    {
        return totalMispredictions_;
    }

    /** @return up to @p n tracked entries, worst mispredictor first
     * (ties broken by PC for determinism). */
    std::vector<std::pair<std::uint64_t, PcEntry>>
    topByMispredictions(std::size_t n) const;

    const std::vector<BranchProfileEstimatorInfo> &estimators() const
    {
        return estimatorInfos_;
    }

    /** @return estimator @p i's reliability-diagram cells. */
    const std::vector<CalibrationBin> &
    calibration(std::size_t estimator) const
    {
        return calibration_.at(estimator);
    }

    /**
     * Write the profile as CSV (long format with a `kind` column:
     * `branch` rows worst-first, one `evicted` aggregate row, per-
     * estimator `calibration` rows, and a final `total` row whose
     * counts equal the run aggregates). @p benchNames decodes tagged
     * PCs (index = pc >> 48) into a benchmark column; pass {} for
     * untagged single-run profiles.
     */
    void writeCsv(const std::string &path,
                  const std::vector<std::string> &benchNames) const;

    /** Same records as writeCsv, one JSON object per line. */
    void writeJsonl(const std::string &path,
                    const std::vector<std::string> &benchNames) const;

  private:
    struct EstimatorState
    {
        /** 1 / (numBuckets - 1), or 0 when numBuckets < 2. */
        double invMaxBucket = 0.0;
        std::uint64_t saturatedBucket = 0;
        bool ordered = true;
    };

    PcEntry &entryFor(std::uint64_t pc);
    void evictColdest();

    bool configured_ = false;
    BranchProfileOptions options_;
    std::vector<BranchProfileEstimatorInfo> estimatorInfos_;
    std::vector<EstimatorState> estimatorStates_;
    std::vector<std::vector<CalibrationBin>> calibration_;
    std::unordered_map<std::uint64_t, PcEntry> entries_;
    PcEntry evicted_;
    std::uint64_t evictedPcs_ = 0;
    std::uint64_t totalExecutions_ = 0;
    std::uint64_t totalMispredictions_ = 0;
    /** Primary-estimator observation pending for onBranch. */
    double pendingConfidence_ = 0.0;
    bool pendingLow_ = false;
};

class Telemetry;

/**
 * Export @p profile to @p path (JSONL when the path ends in `.jsonl`,
 * CSV otherwise; no-op when the path is empty) and emit the
 * `branch_profile_written` telemetry event plus registry metrics.
 * @p telemetry may be null (file is still written).
 */
void publishBranchProfile(const BranchProfile &profile,
                          const std::string &path,
                          const std::vector<std::string> &benchNames,
                          Telemetry *telemetry);

} // namespace confsim

#endif // CONFSIM_OBS_BRANCH_PROFILER_H
