/**
 * @file
 * CSV serialization for the metrics-layer report types — Table-1
 * counter tables (metrics/table_report.h) and confidence-curve points
 * (metrics/confidence_curve.h) — with exact-schema parsers for the
 * inverse direction. The writers emit fixed-precision, fully
 * deterministic output, so files can be golden-compared in tests and
 * diffed across runs; the parsers make the files loadable back into
 * the same structs for downstream tooling (perf-trajectory reports,
 * notebook analysis) without a JSON dependency.
 */

#ifndef CONFSIM_OBS_EXPORT_H
#define CONFSIM_OBS_EXPORT_H

#include <string>
#include <vector>

#include "metrics/confidence_curve.h"
#include "metrics/table_report.h"

namespace confsim {

/** Header emitted by counterTableToCsv(). */
inline constexpr const char *kCounterTableCsvHeader =
    "counter_value,mispredict_rate,ref_pct,mispred_pct,cum_ref_pct,"
    "cum_mispred_pct";

/** Header emitted by confidenceCurveToCsv(). */
inline constexpr const char *kCurveCsvHeader =
    "bucket,bucket_rate,ref_fraction,mispred_fraction";

/** Render Table-1 rows as CSV (header + one line per row). */
std::string
counterTableToCsv(const std::vector<CounterTableRow> &rows);

/**
 * Parse counterTableToCsv() output back into rows. Calls fatal() on a
 * wrong header or malformed line.
 */
std::vector<CounterTableRow>
counterTableFromCsv(const std::string &csv);

/** Render curve points as CSV (header + one line per point). */
std::string
confidenceCurveToCsv(const std::vector<CurvePoint> &points);

/**
 * Parse confidenceCurveToCsv() output back into points. Calls fatal()
 * on a wrong header or malformed line.
 */
std::vector<CurvePoint>
confidenceCurveFromCsv(const std::string &csv);

} // namespace confsim

#endif // CONFSIM_OBS_EXPORT_H
