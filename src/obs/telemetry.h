/**
 * @file
 * The telemetry context: one object owning the metrics registry, the
 * configured sinks, and the run clock. Simulation code takes a
 * `Telemetry *` (null = telemetry off) and calls emit(); the whole
 * feature costs a branch on a null pointer when disabled, which is the
 * contract that lets the hot simulation loop carry the hook
 * unconditionally.
 *
 * Thread-safety: emit() and the registry are safe to call from
 * concurrent benchmark workers; events are serialized into the sinks
 * in emission order.
 */

#ifndef CONFSIM_OBS_TELEMETRY_H
#define CONFSIM_OBS_TELEMETRY_H

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/run_manifest.h"
#include "obs/telemetry_sink.h"

namespace confsim {

/** User-facing telemetry knobs (CLI surface: --telemetry/--progress). */
struct TelemetryOptions
{
    std::string jsonlPath; //!< "" = no JSONL sink
    std::string csvPath;   //!< "" = no CSV sink
    bool progress = false; //!< stderr heartbeat sink

    /** Heartbeat period, in finished benchmarks. */
    unsigned heartbeatEveryBenchmarks = 1;

    /**
     * Driver-side sampling stride: estimator update cost is measured
     * on one branch in every this many (amortizes the clock reads).
     */
    std::uint64_t sampleStride = 8192;

    /** @return true iff any sink is configured. */
    bool
    enabled() const
    {
        return !jsonlPath.empty() || !csvPath.empty() || progress;
    }
};

/** Owns sinks + registry; the handle simulation code emits through. */
class Telemetry
{
  public:
    /** Construct with the sinks @p options selects (may be none). */
    explicit Telemetry(TelemetryOptions options);

    /**
     * @return a telemetry context, or null when @p options enables no
     * sink — so call sites can pass the result straight into
     * DriverOptions::telemetry and keep the disabled path free.
     */
    static std::unique_ptr<Telemetry>
    fromOptions(const TelemetryOptions &options);

    ~Telemetry();

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /**
     * Write the manifest to every sink, before any events. The first
     * manifest wins: later calls are ignored, so a binary that runs
     * several experiments over one telemetry stream keeps a single
     * well-formed manifest-first file.
     */
    void setManifest(const RunManifest &manifest);

    /** Stamp @p event with the run clock and fan it to the sinks. */
    void emit(TelemetryEvent event);

    /** @return the shared metrics registry. */
    MetricsRegistry &registry() { return registry_; }

    /** @return milliseconds since construction (monotonic). */
    double elapsedMs() const;

    /** @return the options this context was built with. */
    const TelemetryOptions &options() const { return options_; }

    /**
     * Emit a metrics_snapshot event from the registry and flush all
     * sinks. Idempotent; also invoked by the destructor so a telemetry
     * file is complete even on early exit.
     */
    void finish();

  private:
    TelemetryOptions options_;
    MetricsRegistry registry_;
    std::vector<std::unique_ptr<TelemetrySink>> sinks_;
    std::chrono::steady_clock::time_point start_;
    std::mutex mutex_;
    bool manifestSet_ = false;
    bool finished_ = false;
};

} // namespace confsim

#endif // CONFSIM_OBS_TELEMETRY_H
