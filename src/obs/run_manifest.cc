#include "obs/run_manifest.h"

#include "obs/json.h"

namespace confsim {

RunManifest
RunManifest::withBuildInfo()
{
    RunManifest manifest;
#ifdef CONFSIM_BUILD_TYPE
    manifest.buildType = CONFSIM_BUILD_TYPE;
#endif
    if (manifest.buildType.empty()) {
#ifdef NDEBUG
        manifest.buildType = "Release";
#else
        manifest.buildType = "Debug";
#endif
    }
#if defined(__clang__)
    manifest.compiler = "Clang " __clang_version__;
#elif defined(__GNUC__)
    manifest.compiler = "GNU " __VERSION__;
#else
    manifest.compiler = "unknown";
#endif
    manifest.cxxStandard = std::to_string(__cplusplus);
    return manifest;
}

std::string
RunManifest::toJson() const
{
    std::string out = "{";
    out += "\"type\":\"manifest\"";
    out += ",\"schema\":" + jsonString(schema);
    out += ",\"tool\":" + jsonString(tool);
    out += ",\"suite\":" + jsonString(suite);
    out += ",\"benchmarks\":[";
    for (std::size_t i = 0; i < benchmarks.size(); ++i) {
        const auto &bench = benchmarks[i];
        if (i != 0)
            out += ",";
        out += "{\"name\":" + jsonString(bench.name) +
               ",\"seed\":" + std::to_string(bench.seed) +
               ",\"branches\":" + std::to_string(bench.branches) +
               ",\"trace_checksum\":" +
               std::to_string(bench.traceChecksum) + "}";
    }
    out += "]";
    out += ",\"predictor\":" + jsonString(predictor);
    out += ",\"predictor_storage_bits\":" +
           std::to_string(predictorStorageBits);
    out += ",\"estimators\":[";
    for (std::size_t i = 0; i < estimators.size(); ++i) {
        if (i != 0)
            out += ",";
        out += jsonString(estimators[i]);
    }
    out += "]";
    out += ",\"bhr_bits\":" + std::to_string(bhrBits);
    out += ",\"gcir_bits\":" + std::to_string(gcirBits);
    out += ",\"warmup_branches\":" + std::to_string(warmupBranches);
    out += ",\"context_switch_interval\":" +
           std::to_string(contextSwitchInterval);
    out += ",\"build_type\":" + jsonString(buildType);
    out += ",\"compiler\":" + jsonString(compiler);
    out += ",\"cxx_standard\":" + jsonString(cxxStandard);
    out += "}";
    return out;
}

} // namespace confsim
