#include "obs/export.h"

#include "util/status.h"
#include "util/string_utils.h"

namespace confsim {

namespace {

/** Decimal places used by both writers: enough for exact 1e-9 reads. */
constexpr int kDecimals = 9;

/**
 * Split CSV text into data lines, verifying the header. All cells in
 * these schemas are numeric (never quoted/comma-bearing), so a plain
 * split is an exact parser.
 */
std::vector<std::vector<std::string>>
parseRows(const std::string &csv, const char *expected_header,
          std::size_t expected_cells)
{
    std::vector<std::vector<std::string>> rows;
    const std::vector<std::string> lines = splitString(csv, '\n');
    if (lines.empty() || lines[0] != expected_header) {
        fatal("CSV header mismatch: expected '" +
              std::string(expected_header) + "'");
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
        if (lines[i].empty())
            continue; // trailing newline
        std::vector<std::string> cells = splitString(lines[i], ',');
        if (cells.size() != expected_cells) {
            fatal("CSV line " + std::to_string(i + 1) + ": expected " +
                  std::to_string(expected_cells) + " cells, got " +
                  std::to_string(cells.size()));
        }
        rows.push_back(std::move(cells));
    }
    return rows;
}

} // namespace

std::string
counterTableToCsv(const std::vector<CounterTableRow> &rows)
{
    std::string out = kCounterTableCsvHeader;
    out += '\n';
    for (const auto &row : rows) {
        out += std::to_string(row.counterValue);
        out += ',' + formatFixed(row.mispredictRate, kDecimals);
        out += ',' + formatFixed(row.refPercent, kDecimals);
        out += ',' + formatFixed(row.mispredictPercent, kDecimals);
        out += ',' + formatFixed(row.cumRefPercent, kDecimals);
        out += ',' + formatFixed(row.cumMispredictPercent, kDecimals);
        out += '\n';
    }
    return out;
}

std::vector<CounterTableRow>
counterTableFromCsv(const std::string &csv)
{
    std::vector<CounterTableRow> rows;
    for (const auto &cells :
         parseRows(csv, kCounterTableCsvHeader, 6)) {
        CounterTableRow row;
        row.counterValue = parseUnsigned(cells[0]);
        row.mispredictRate = parseDouble(cells[1]);
        row.refPercent = parseDouble(cells[2]);
        row.mispredictPercent = parseDouble(cells[3]);
        row.cumRefPercent = parseDouble(cells[4]);
        row.cumMispredictPercent = parseDouble(cells[5]);
        rows.push_back(row);
    }
    return rows;
}

std::string
confidenceCurveToCsv(const std::vector<CurvePoint> &points)
{
    std::string out = kCurveCsvHeader;
    out += '\n';
    for (const auto &point : points) {
        out += std::to_string(point.bucket);
        out += ',' + formatFixed(point.bucketRate, kDecimals);
        out += ',' + formatFixed(point.refFraction, kDecimals);
        out += ',' + formatFixed(point.mispredFraction, kDecimals);
        out += '\n';
    }
    return out;
}

std::vector<CurvePoint>
confidenceCurveFromCsv(const std::string &csv)
{
    std::vector<CurvePoint> points;
    for (const auto &cells : parseRows(csv, kCurveCsvHeader, 4)) {
        CurvePoint point;
        point.bucket = parseUnsigned(cells[0]);
        point.bucketRate = parseDouble(cells[1]);
        point.refFraction = parseDouble(cells[2]);
        point.mispredFraction = parseDouble(cells[3]);
        points.push_back(point);
    }
    return points;
}

} // namespace confsim
