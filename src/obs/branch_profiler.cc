#include "obs/branch_profiler.h"

#include <algorithm>
#include <cstdio>

#include "obs/event.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"
#include "util/atomic_file.h"
#include "util/status.h"

namespace confsim {

namespace {

constexpr std::size_t kMaxUnorderedCells = 64;
constexpr std::uint64_t kPcMask = (std::uint64_t{1} << 48) - 1;

std::string
formatPc(std::uint64_t pc)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(pc & kPcMask));
    return buf;
}

std::string
benchOf(std::uint64_t pc, const std::vector<std::string> &benchNames)
{
    if (benchNames.empty())
        return "";
    const std::uint64_t index = pc >> 48;
    return index < benchNames.size() ? benchNames[index] : "";
}

} // namespace

void
BranchProfile::configure(
    const BranchProfileOptions &options,
    std::vector<BranchProfileEstimatorInfo> estimators)
{
    if (options.capacity == 0)
        fatal("branch profile capacity must be >= 1");
    options_ = options;
    estimatorInfos_ = std::move(estimators);
    estimatorStates_.clear();
    calibration_.clear();
    for (const auto &info : estimatorInfos_) {
        EstimatorState state;
        state.ordered = info.ordered;
        state.saturatedBucket =
            info.numBuckets == 0 ? 0 : info.numBuckets - 1;
        state.invMaxBucket =
            info.numBuckets > 1
                ? 1.0 / static_cast<double>(info.numBuckets - 1)
                : 0.0;
        estimatorStates_.push_back(state);
        const std::size_t cells =
            info.ordered
                ? std::max<std::size_t>(options_.reliabilityBins, 1)
                : std::min(std::max<std::size_t>(info.numBuckets, 1),
                           kMaxUnorderedCells);
        calibration_.emplace_back(cells);
    }
    entries_.reserve(options_.capacity + 1);
    configured_ = true;
}

void
BranchProfile::onBucket(std::size_t estimator, std::uint64_t bucket,
                        bool correct)
{
    const EstimatorState &state = estimatorStates_[estimator];
    auto &cells = calibration_[estimator];
    double confidence = 0.0;
    std::size_t cell;
    if (state.ordered) {
        confidence = static_cast<double>(bucket) * state.invMaxBucket;
        cell = std::min(
            static_cast<std::size_t>(confidence *
                                     static_cast<double>(cells.size())),
            cells.size() - 1);
    } else {
        cell = std::min(static_cast<std::size_t>(bucket),
                        cells.size() - 1);
    }
    CalibrationBin &bin = cells[cell];
    ++bin.predictions;
    bin.correct += correct ? 1 : 0;
    bin.confidenceSum += confidence;
    if (estimator == 0) {
        pendingConfidence_ = confidence;
        pendingLow_ = state.ordered ? bucket < state.saturatedBucket
                                    : bucket == 0;
    }
}

BranchProfile::PcEntry &
BranchProfile::entryFor(std::uint64_t pc)
{
    auto it = entries_.find(pc);
    if (it != entries_.end())
        return it->second;
    if (entries_.size() >= options_.capacity)
        evictColdest();
    return entries_[pc];
}

void
BranchProfile::evictColdest()
{
    // Fold out the coldest ~1/8 of tracked entries (by executions) so
    // eviction is amortized, never per-branch. Their counts move into
    // the evicted aggregate — totals stay exact.
    std::size_t toEvict =
        std::max<std::size_t>(options_.capacity / 8, 1);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> order;
    order.reserve(entries_.size());
    for (const auto &entry : entries_)
        order.emplace_back(entry.second.executions, entry.first);
    std::sort(order.begin(), order.end());
    toEvict = std::min(toEvict, order.size());
    for (std::size_t i = 0; i < toEvict; ++i) {
        auto it = entries_.find(order[i].second);
        evicted_.merge(it->second);
        entries_.erase(it);
        ++evictedPcs_;
    }
}

void
BranchProfile::onBranch(std::uint64_t pc, bool mispredicted)
{
    ++totalExecutions_;
    totalMispredictions_ += mispredicted ? 1 : 0;
    PcEntry &entry = entryFor(pc);
    ++entry.executions;
    entry.mispredictions += mispredicted ? 1 : 0;
    entry.lowConfidence += pendingLow_ ? 1 : 0;
    entry.confidenceSum += pendingConfidence_;
}

void
BranchProfile::mergeFrom(const BranchProfile &other,
                         std::uint64_t tagBase)
{
    if (!configured_ && other.configured_)
        configure(other.options_, other.estimatorInfos_);
    for (const auto &entry : other.entries_) {
        PcEntry &mine = entryFor(tagBase | entry.first);
        mine.merge(entry.second);
    }
    evicted_.merge(other.evicted_);
    evictedPcs_ += other.evictedPcs_;
    totalExecutions_ += other.totalExecutions_;
    totalMispredictions_ += other.totalMispredictions_;
    const std::size_t families =
        std::min(calibration_.size(), other.calibration_.size());
    for (std::size_t i = 0; i < families; ++i) {
        auto &mine = calibration_[i];
        const auto &theirs = other.calibration_[i];
        const std::size_t cells = std::min(mine.size(), theirs.size());
        for (std::size_t c = 0; c < cells; ++c) {
            mine[c].predictions += theirs[c].predictions;
            mine[c].correct += theirs[c].correct;
            mine[c].confidenceSum += theirs[c].confidenceSum;
        }
    }
}

std::vector<std::pair<std::uint64_t, BranchProfile::PcEntry>>
BranchProfile::topByMispredictions(std::size_t n) const
{
    std::vector<std::pair<std::uint64_t, PcEntry>> out(
        entries_.begin(), entries_.end());
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.mispredictions !=
                      b.second.mispredictions)
                      return a.second.mispredictions >
                             b.second.mispredictions;
                  return a.first < b.first;
              });
    if (out.size() > n)
        out.resize(n);
    return out;
}

namespace {

/** Row shape shared by the CSV and JSONL exporters. */
struct ProfileRow
{
    std::string kind;
    std::string benchmark;
    std::string pc;
    std::string estimator;
    std::int64_t bin = -1; //!< -1 = not applicable
    std::uint64_t executions = 0;
    std::uint64_t mispredictions = 0;
    double mispredictRate = 0.0;
    std::uint64_t lowConfidence = 0;
    double meanConfidence = 0.0;
    std::uint64_t predictions = 0;
    std::uint64_t correct = 0;
    double accuracy = 0.0;
};

} // namespace

static std::vector<ProfileRow>
buildRows(const BranchProfile &profile,
          const std::vector<std::string> &benchNames)
{
    std::vector<ProfileRow> rows;
    const auto ranked =
        profile.topByMispredictions(profile.entries().size());
    for (const auto &entry : ranked) {
        ProfileRow row;
        row.kind = "branch";
        row.benchmark = benchOf(entry.first, benchNames);
        row.pc = formatPc(entry.first);
        row.executions = entry.second.executions;
        row.mispredictions = entry.second.mispredictions;
        row.mispredictRate =
            entry.second.executions == 0
                ? 0.0
                : static_cast<double>(entry.second.mispredictions) /
                      static_cast<double>(entry.second.executions);
        row.lowConfidence = entry.second.lowConfidence;
        row.meanConfidence =
            entry.second.executions == 0
                ? 0.0
                : entry.second.confidenceSum /
                      static_cast<double>(entry.second.executions);
        rows.push_back(std::move(row));
    }
    {
        ProfileRow row;
        row.kind = "evicted";
        row.pc = std::to_string(profile.evictedPcs());
        row.executions = profile.evicted().executions;
        row.mispredictions = profile.evicted().mispredictions;
        row.mispredictRate =
            row.executions == 0
                ? 0.0
                : static_cast<double>(row.mispredictions) /
                      static_cast<double>(row.executions);
        row.lowConfidence = profile.evicted().lowConfidence;
        rows.push_back(std::move(row));
    }
    for (std::size_t i = 0; i < profile.estimators().size(); ++i) {
        const auto &cells = profile.calibration(i);
        for (std::size_t c = 0; c < cells.size(); ++c) {
            ProfileRow row;
            row.kind = "calibration";
            row.estimator = profile.estimators()[i].name;
            row.bin = static_cast<std::int64_t>(c);
            row.predictions = cells[c].predictions;
            row.correct = cells[c].correct;
            row.accuracy = cells[c].accuracy();
            row.meanConfidence = cells[c].meanConfidence();
            rows.push_back(std::move(row));
        }
    }
    {
        ProfileRow row;
        row.kind = "total";
        row.executions = profile.totalExecutions();
        row.mispredictions = profile.totalMispredictions();
        row.mispredictRate =
            row.executions == 0
                ? 0.0
                : static_cast<double>(row.mispredictions) /
                      static_cast<double>(row.executions);
        rows.push_back(std::move(row));
    }
    return rows;
}

void
BranchProfile::writeCsv(const std::string &path,
                        const std::vector<std::string> &benchNames) const
{
    AtomicFileWriter writer(path);
    std::ostream &out = writer.stream();
    out << "kind,benchmark,pc,estimator,bin,executions,mispredictions,"
           "mispredict_rate,low_confidence,mean_confidence,predictions,"
           "correct,accuracy\n";
    for (const ProfileRow &row : buildRows(*this, benchNames)) {
        out << row.kind << ',' << row.benchmark << ',' << row.pc << ','
            << row.estimator << ',';
        if (row.bin >= 0)
            out << row.bin;
        out << ',' << row.executions << ',' << row.mispredictions << ','
            << jsonNumber(row.mispredictRate) << ',' << row.lowConfidence
            << ',' << jsonNumber(row.meanConfidence) << ','
            << row.predictions << ',' << row.correct << ','
            << jsonNumber(row.accuracy) << '\n';
    }
    writer.commit();
}

void
BranchProfile::writeJsonl(
    const std::string &path,
    const std::vector<std::string> &benchNames) const
{
    AtomicFileWriter writer(path);
    std::ostream &out = writer.stream();
    for (const ProfileRow &row : buildRows(*this, benchNames)) {
        out << "{\"type\":" << jsonString(row.kind);
        if (row.kind == "branch")
            out << ",\"benchmark\":" << jsonString(row.benchmark)
                << ",\"pc\":" << jsonString(row.pc);
        if (row.kind == "evicted")
            out << ",\"evicted_pcs\":" << row.pc;
        if (row.kind == "calibration")
            out << ",\"estimator\":" << jsonString(row.estimator)
                << ",\"bin\":" << row.bin
                << ",\"predictions\":" << row.predictions
                << ",\"correct\":" << row.correct
                << ",\"accuracy\":" << jsonNumber(row.accuracy)
                << ",\"mean_confidence\":"
                << jsonNumber(row.meanConfidence) << "}\n";
        if (row.kind == "calibration")
            continue;
        out << ",\"executions\":" << row.executions
            << ",\"mispredictions\":" << row.mispredictions
            << ",\"mispredict_rate\":" << jsonNumber(row.mispredictRate)
            << ",\"low_confidence\":" << row.lowConfidence
            << ",\"mean_confidence\":" << jsonNumber(row.meanConfidence)
            << "}\n";
    }
    writer.commit();
}

void
publishBranchProfile(const BranchProfile &profile,
                     const std::string &path,
                     const std::vector<std::string> &benchNames,
                     Telemetry *telemetry)
{
    if (path.empty())
        return;
    const std::string suffix = ".jsonl";
    const bool jsonl =
        path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
    if (jsonl)
        profile.writeJsonl(path, benchNames);
    else
        profile.writeCsv(path, benchNames);
    if (telemetry == nullptr)
        return;
    telemetry->emit(TelemetryEvent(
        events::kBranchProfileWritten,
        {field("path", path), field("format", jsonl ? "jsonl" : "csv"),
         field("branches",
               static_cast<std::uint64_t>(profile.entries().size())),
         field("executions", profile.totalExecutions()),
         field("mispredictions", profile.totalMispredictions())}));
    MetricsRegistry &registry = telemetry->registry();
    registry.increment("profile.files_written");
    registry.setGauge("profile.tracked_pcs",
                      static_cast<double>(profile.entries().size()));
    registry.setGauge("profile.evicted_pcs",
                      static_cast<double>(profile.evictedPcs()));
}

} // namespace confsim
