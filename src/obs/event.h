/**
 * @file
 * The structured telemetry event: a typed name, a monotonic timestamp
 * (stamped by Telemetry::emit), and an ordered list of key/value
 * fields. Events are the unit every TelemetrySink consumes, so the
 * whole simulation stack — driver, suite runner, fault injection,
 * trace recovery — reports through this one shape.
 *
 * Field values are carried pre-formatted as strings plus a kind tag,
 * which keeps the sinks trivial (JSONL quotes strings, CSV quotes
 * everything) without dragging in a variant/JSON value type. The
 * `field()` overloads do the formatting at the emission site.
 */

#ifndef CONFSIM_OBS_EVENT_H
#define CONFSIM_OBS_EVENT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace confsim {

/** Canonical event type names (free-form types are also allowed). */
namespace events {

inline constexpr const char *kSuiteRunStarted = "suite_run_started";
inline constexpr const char *kSuiteRunFinished = "suite_run_finished";
inline constexpr const char *kBenchmarkStarted = "benchmark_started";
inline constexpr const char *kBenchmarkFinished = "benchmark_finished";
inline constexpr const char *kBenchmarkRetry = "benchmark_retry";
inline constexpr const char *kWatchdogTimeout = "watchdog_timeout";
inline constexpr const char *kDriverRun = "driver_run";
inline constexpr const char *kContextSwitchFlush =
    "context_switch_flush";
inline constexpr const char *kEstimatorUpdateCost =
    "estimator_update_cost";
inline constexpr const char *kFaultInjected = "fault_injected";
inline constexpr const char *kCorruptChunkSkipped =
    "corrupt_chunk_skipped";
inline constexpr const char *kMetricsSnapshot = "metrics_snapshot";
inline constexpr const char *kCheckpointWritten = "checkpoint_written";
inline constexpr const char *kCheckpointRestored =
    "checkpoint_restored";
inline constexpr const char *kCheckpointCorrupt = "checkpoint_corrupt";
inline constexpr const char *kSweepRunStarted = "sweep_run_started";
inline constexpr const char *kSweepRunFinished = "sweep_run_finished";
inline constexpr const char *kSweepConfigFinished =
    "sweep_config_finished";
inline constexpr const char *kSweepConfigFailed = "sweep_config_failed";
inline constexpr const char *kCheckpointWriteFailed =
    "checkpoint_write_failed";
inline constexpr const char *kSpanSummary = "span_summary";
inline constexpr const char *kBranchProfileWritten =
    "branch_profile_written";
inline constexpr const char *kSamplingRunFinished =
    "sampling_run_finished";
inline constexpr const char *kJobAdmitted = "job_admitted";
inline constexpr const char *kJobRejected = "job_rejected";
inline constexpr const char *kJobStarted = "job_started";
inline constexpr const char *kJobFinished = "job_finished";
inline constexpr const char *kJobFailed = "job_failed";
inline constexpr const char *kServiceDrained = "service_drained";

} // namespace events

/** One key/value pair of an event. */
struct EventField
{
    /** How the value should be rendered by typed sinks (JSON). */
    enum class Kind : std::uint8_t
    {
        kString,
        kNumber, //!< integer or double, already formatted
        kBool,
    };

    std::string key;
    std::string value;
    Kind kind = Kind::kString;

    /** @return the value as a JSON token (quoted iff a string). */
    std::string
    jsonValue() const
    {
        return kind == Kind::kString ? jsonString(value) : value;
    }
};

/** Build a string field. */
inline EventField
field(std::string key, std::string value)
{
    return {std::move(key), std::move(value),
            EventField::Kind::kString};
}

inline EventField
field(std::string key, const char *value)
{
    return field(std::move(key), std::string(value));
}

/** Build an unsigned integer field. */
inline EventField
field(std::string key, std::uint64_t value)
{
    return {std::move(key), std::to_string(value),
            EventField::Kind::kNumber};
}

/** Build a double field. */
inline EventField
field(std::string key, double value)
{
    return {std::move(key), jsonNumber(value),
            EventField::Kind::kNumber};
}

/** Build a boolean field. */
inline EventField
field(std::string key, bool value)
{
    return {std::move(key), value ? "true" : "false",
            EventField::Kind::kBool};
}

/** A structured telemetry event. */
struct TelemetryEvent
{
    std::string type;
    /** Milliseconds since Telemetry construction (set by emit()). */
    double tMs = 0.0;
    std::vector<EventField> fields;

    TelemetryEvent() = default;

    TelemetryEvent(std::string type_, std::vector<EventField> fields_)
        : type(std::move(type_)), fields(std::move(fields_))
    {}

    /** @return the field value for @p key, or "" when absent. */
    const std::string &
    fieldValue(const std::string &key) const
    {
        static const std::string kEmpty;
        for (const auto &f : fields) {
            if (f.key == key)
                return f.value;
        }
        return kEmpty;
    }

    /** @return this event as one JSON object (no trailing newline). */
    std::string
    toJson() const
    {
        std::string out = "{\"type\":" + jsonString(type) +
                          ",\"t_ms\":" + jsonNumber(tMs);
        for (const auto &f : fields)
            out += "," + jsonString(f.key) + ":" + f.jsonValue();
        out += "}";
        return out;
    }
};

} // namespace confsim

#endif // CONFSIM_OBS_EVENT_H
