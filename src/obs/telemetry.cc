#include "obs/telemetry.h"

#include <cstdio>

namespace confsim {

Telemetry::Telemetry(TelemetryOptions options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now())
{
    if (!options_.jsonlPath.empty()) {
        sinks_.push_back(
            std::make_unique<JsonlTelemetrySink>(options_.jsonlPath));
    }
    if (!options_.csvPath.empty()) {
        sinks_.push_back(
            std::make_unique<CsvTelemetrySink>(options_.csvPath));
    }
    if (options_.progress) {
        sinks_.push_back(std::make_unique<StderrProgressSink>(
            options_.heartbeatEveryBenchmarks));
    }
}

std::unique_ptr<Telemetry>
Telemetry::fromOptions(const TelemetryOptions &options)
{
    if (!options.enabled())
        return nullptr;
    return std::make_unique<Telemetry>(options);
}

Telemetry::~Telemetry()
{
    finish();
}

void
Telemetry::setManifest(const RunManifest &manifest)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (manifestSet_)
        return; // first manifest wins: sinks promise manifest-first
    manifestSet_ = true;
    for (auto &sink : sinks_)
        sink->writeManifest(manifest);
}

void
Telemetry::emit(TelemetryEvent event)
{
    // Stamp under the lock so sink order matches timestamp order:
    // stamping first would let a concurrent emit overtake us and
    // write a later t_ms ahead of ours, breaking the monotonic-t_ms
    // guarantee the schema validator enforces.
    std::lock_guard<std::mutex> lock(mutex_);
    event.tMs = elapsedMs();
    for (auto &sink : sinks_)
        sink->writeEvent(event);
}

double
Telemetry::elapsedMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

void
Telemetry::finish()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (finished_)
            return;
        finished_ = true;
    }
    // One flat snapshot event: counters and gauges by name, stats as
    // name.{count,mean,min,max} — greppable and schema-stable.
    TelemetryEvent snapshot_event(events::kMetricsSnapshot, {});
    const MetricsSnapshot snap = registry_.snapshot();
    for (const auto &[name, value] : snap.counters)
        snapshot_event.fields.push_back(field(name, value));
    for (const auto &[name, value] : snap.gauges)
        snapshot_event.fields.push_back(field(name, value));
    for (const auto &[name, stats] : snap.stats) {
        snapshot_event.fields.push_back(
            field(name + ".count", stats.count()));
        snapshot_event.fields.push_back(
            field(name + ".mean", stats.mean()));
        if (stats.count() > 0) {
            snapshot_event.fields.push_back(
                field(name + ".min", stats.min()));
            snapshot_event.fields.push_back(
                field(name + ".max", stats.max()));
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_event.tMs = elapsedMs();
    for (auto &sink : sinks_) {
        // A failing sink degrades observability, never the simulation:
        // flush/close failures (ENOSPC, injected sink faults) are
        // reported to stderr and the remaining sinks still get their
        // chance to publish. close() publishes file-backed sinks
        // atomically (tmp -> rename); finish() may also run from the
        // destructor, where a failure must not escape as an exception.
        try {
            sink->writeEvent(snapshot_event);
            sink->flush();
            sink->close();
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "[confsim] telemetry sink flush/close failed: %s\n",
                         e.what());
        }
    }
}

} // namespace confsim
