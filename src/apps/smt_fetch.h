/**
 * @file
 * SMT fetch-gating model (paper Section 1, application 2).
 *
 * "In SMT, instruction fetching has been identified as a critical
 * resource [10]. This resource can be more efficiently used by fetching
 * instructions only down predicted paths that have a high likelihood of
 * being correctly predicted."
 *
 * Model: N hardware threads, each running its own benchmark trace with
 * a private predictor and confidence estimator. Each fetch slot goes to
 * one thread (round-robin over eligible threads). When a thread's most
 * recent prediction was low confidence, a gating policy deprioritizes
 * it until that branch resolves. Fetched instructions between a
 * mispredicted branch and its resolution are wrong-path (wasted). The
 * bench compares wasted-fetch fractions with gating off/on, reproducing
 * the motivation of Tullsen et al.'s ICOUNT-style fetch policies.
 */

#ifndef CONFSIM_APPS_SMT_FETCH_H
#define CONFSIM_APPS_SMT_FETCH_H

#include <cstdint>
#include <memory>
#include <vector>

#include "confidence/confidence_estimator.h"
#include "predictor/branch_predictor.h"
#include "trace/trace_source.h"

namespace confsim {

/** SMT fetch-model parameters. */
struct SmtFetchConfig
{
    /** Instructions fetched per slot (fetch block size). */
    unsigned fetchBlock = 8;

    /** Instructions between a branch fetch and its resolution. Must
     *  exceed (threads x fetchBlock) for wrong-path fetch to be
     *  possible at all under round-robin scheduling — with N threads a
     *  thread is revisited only every N slots. */
    unsigned resolutionLatency = 64;

    /** Gate threads whose pending branch is low confidence. */
    bool gateOnLowConfidence = true;

    /** Average instructions between conditional branches. */
    unsigned instrsPerBranch = 6;

    /** Total fetch slots to simulate. */
    std::uint64_t fetchSlots = 500'000;
};

/** One thread of the SMT model. */
struct SmtThreadSpec
{
    TraceSource *source = nullptr;             //!< not owned
    BranchPredictor *predictor = nullptr;      //!< not owned
    ConfidenceEstimator *estimator = nullptr;  //!< not owned
    /** Buckets treated as low confidence for gating. */
    std::vector<bool> lowBuckets;
};

/** Aggregate results of an SMT fetch simulation. */
struct SmtFetchResult
{
    std::uint64_t fetchedInstructions = 0;
    std::uint64_t wastedInstructions = 0; //!< fetched on a wrong path
    std::uint64_t gatedSlots = 0;         //!< thread-skips by gating
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;

    /** @return fraction of fetched instructions that were wrong-path. */
    double wastedFraction() const
    {
        return fetchedInstructions == 0
                   ? 0.0
                   : static_cast<double>(wastedInstructions) /
                         fetchedInstructions;
    }

    /** @return useful instructions fetched per slot. */
    double usefulPerSlot(std::uint64_t slots) const
    {
        return slots == 0 ? 0.0
                          : static_cast<double>(fetchedInstructions -
                                                wastedInstructions) /
                                slots;
    }
};

/** Run the SMT fetch model over the given threads. */
SmtFetchResult runSmtFetch(std::vector<SmtThreadSpec> &threads,
                           const SmtFetchConfig &config = {});

} // namespace confsim

#endif // CONFSIM_APPS_SMT_FETCH_H
