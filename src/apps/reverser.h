/**
 * @file
 * Branch prediction reverser (paper Section 1, application 4).
 *
 * "If the confidence in a branch prediction can be determined to be
 * less than 50%, then the prediction should be reversed."
 *
 * Two-pass study: pass 1 profiles per-bucket accuracy of a confidence
 * estimator; buckets whose measured misprediction rate exceeds 50% form
 * the reversal set; pass 2 re-runs the trace inverting predictions in
 * those buckets and reports the accuracy delta.
 *
 * The paper conjectures this application and our Table-1 data shows why
 * it is hard: even the least-confident resetting-counter bucket
 * mispredicts well under 50% with a strong underlying predictor, so the
 * reversal set is usually empty there. Weaker predictors or raw-CIR
 * buckets can expose reversible buckets; the bench sweeps both.
 */

#ifndef CONFSIM_APPS_REVERSER_H
#define CONFSIM_APPS_REVERSER_H

#include <cstdint>
#include <vector>

#include "confidence/confidence_estimator.h"
#include "metrics/bucket_stats.h"
#include "predictor/branch_predictor.h"
#include "trace/trace_source.h"

namespace confsim {

/** Results of a reverser study. */
struct ReverserResult
{
    std::uint64_t branches = 0;
    std::uint64_t baseMispredicts = 0;     //!< pass-2 without reversal
    std::uint64_t reversedMispredicts = 0; //!< pass-2 with reversal
    std::uint64_t reversals = 0;           //!< predictions inverted
    std::vector<std::uint64_t> reversalBuckets; //!< buckets inverted

    double baseRate() const
    {
        return branches == 0
                   ? 0.0
                   : static_cast<double>(baseMispredicts) / branches;
    }

    double reversedRate() const
    {
        return branches == 0 ? 0.0
                             : static_cast<double>(reversedMispredicts) /
                                   branches;
    }
};

/**
 * Run the two-pass reverser study.
 *
 * @param source Trace; reset() is called between passes.
 * @param predictor Underlying predictor; reset() between passes.
 * @param estimator Confidence estimator; reset() between passes.
 * @param rate_threshold Buckets with pass-1 misprediction rate strictly
 *        above this are reversed (0.5 per the paper's rule).
 * @param min_bucket_refs Ignore buckets with fewer pass-1 references
 *        (noise guard).
 */
ReverserResult
runReverser(TraceSource &source, BranchPredictor &predictor,
            ConfidenceEstimator &estimator, double rate_threshold = 0.5,
            double min_bucket_refs = 100.0);

} // namespace confsim

#endif // CONFSIM_APPS_REVERSER_H
