/**
 * @file
 * Selective dual-path execution model (paper Section 1, application 1).
 *
 * "Resources may be made available for simultaneously executing
 * instructions down both paths following a conditional branch. ... it
 * may be desirable to set a limit of two threads at any given time and
 * to fork a second execution thread for the non-predicted path only in
 * those instances when a branch prediction is made with relatively low
 * confidence."
 *
 * The model is trace-driven: a fork may be initiated on a low-confidence
 * prediction when no fork is outstanding; an outstanding fork occupies
 * the second-thread resource until its branch resolves (approximated by
 * a fixed branch-count resolution window). A mispredicted branch that
 * was forked costs only a small squash/switch penalty; an unforked
 * misprediction costs the full pipeline-refill penalty.
 */

#ifndef CONFSIM_APPS_DUAL_PATH_H
#define CONFSIM_APPS_DUAL_PATH_H

#include <cstdint>
#include <functional>
#include <memory>

#include "confidence/binary_signal.h"
#include "predictor/branch_predictor.h"
#include "trace/trace_source.h"

namespace confsim {

/** Dual-path cost-model parameters. */
struct DualPathConfig
{
    /** Full misprediction penalty in cycles (pipeline refill). */
    double mispredictPenalty = 7.0;

    /** Residual penalty when the wrong path was being dual-executed
     *  (thread switch + partial squash). */
    double forkedMispredictPenalty = 1.0;

    /** Cycles of fetch/execute bandwidth consumed per fork (the second
     *  path's resource cost, paid whether or not it was needed). */
    double forkCost = 0.5;

    /** Branches until a forked branch resolves and frees its thread
     *  slot (models several unresolved branches in flight). */
    unsigned resolutionWindow = 4;

    /** Simultaneous forks supported. The paper's scenario is "a limit
     *  of two threads at any given time", i.e. one fork slot; more
     *  slots model wider dual-path (eager-execution-style) hardware. */
    unsigned maxForks = 1;

    /** Base cycles per branch interval with perfect prediction (used
     *  only to express results as relative penalty cycles). */
    double baseCyclesPerBranch = 4.0;
};

/** Outcomes of a dual-path simulation. */
struct DualPathResult
{
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t forks = 0;            //!< forks actually initiated
    std::uint64_t forkRequests = 0;     //!< low-confidence predictions
    std::uint64_t coveredMispredicts = 0; //!< mispredicts with a fork
    double baselineCycles = 0.0;  //!< no dual-path: full penalty always
    double dualPathCycles = 0.0;  //!< with selective dual-path

    /** @return fraction of predictions that initiated a fork. */
    double forkRate() const
    {
        return branches == 0
                   ? 0.0
                   : static_cast<double>(forks) / branches;
    }

    /** @return fraction of mispredictions that had a fork in place. */
    double coverage() const
    {
        return mispredicts == 0 ? 0.0
                                : static_cast<double>(coveredMispredicts)
                                      / mispredicts;
    }

    /** @return speedup of dual-path vs single-path baseline. */
    double speedup() const
    {
        return dualPathCycles <= 0.0 ? 1.0
                                     : baselineCycles / dualPathCycles;
    }
};

/**
 * Run the dual-path model.
 *
 * @param source Branch trace (consumed from its current position).
 * @param predictor Underlying predictor (trained online).
 * @param estimator Confidence estimator (trained online).
 * @param low_buckets Buckets treated as low confidence (fork trigger),
 *        sized to estimator.numBuckets().
 * @param config Cost model.
 */
DualPathResult
runDualPath(TraceSource &source, BranchPredictor &predictor,
            ConfidenceEstimator &estimator,
            const std::vector<bool> &low_buckets,
            const DualPathConfig &config = {});

} // namespace confsim

#endif // CONFSIM_APPS_DUAL_PATH_H
