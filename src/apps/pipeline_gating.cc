#include "apps/pipeline_gating.h"

#include <deque>

#include "predictor/history_register.h"
#include "util/shift_register.h"
#include "util/status.h"

namespace confsim {

namespace {

/** One unresolved conditional branch in flight. */
struct InFlightBranch
{
    std::uint64_t resolveCycle = 0;
    bool mispredicted = false;
    bool lowConfidence = false;
};

} // namespace

GatingResult
runPipelineGating(TraceSource &source, BranchPredictor &predictor,
                  ConfidenceEstimator &estimator,
                  const std::vector<bool> &low_buckets,
                  const GatingConfig &config)
{
    if (low_buckets.size() != estimator.numBuckets())
        fatal("pipeline-gating low-bucket mask does not match "
              "estimator");
    if (config.fetchWidth == 0)
        fatal("fetch width must be >= 1");

    GatingResult result;
    HistoryRegister bhr(16);
    ShiftRegister gcir(16, 0);
    std::deque<InFlightBranch> inflight;
    unsigned low_outstanding = 0;
    bool wrong_path = false;
    bool trace_done = false;
    unsigned until_branch = config.instrsPerBranch;

    BranchRecord record;
    BranchContext ctx;

    for (std::uint64_t cycle = 0;; ++cycle) {
        // 1. Resolve branches whose latency elapsed (FIFO order).
        while (!inflight.empty() &&
               inflight.front().resolveCycle <= cycle) {
            const InFlightBranch branch = inflight.front();
            inflight.pop_front();
            if (branch.lowConfidence)
                --low_outstanding;
            if (branch.mispredicted) {
                // Redirect: everything fetched behind it was junk and
                // has already been counted as wrong-path at fetch
                // time; correct-path fetch resumes this cycle.
                wrong_path = false;
            }
        }

        // Termination: trace consumed and the pipeline drained.
        if ((trace_done || result.branches >= config.branches) &&
            inflight.empty()) {
            result.cycles = cycle;
            break;
        }

        // 2. Gating decision for this cycle's fetch.
        const bool fetch_ended =
            trace_done || result.branches >= config.branches;
        if (fetch_ended)
            continue; // draining: no more fetch, just resolutions
        if (config.enableGating &&
            low_outstanding > config.gateThreshold) {
            ++result.gatedCycles;
            continue;
        }

        // 3. Fetch up to fetchWidth instructions.
        for (unsigned slot = 0; slot < config.fetchWidth; ++slot) {
            ++result.fetchedInstructions;
            if (wrong_path) {
                ++result.wrongPathInstructions;
                continue;
            }
            ++result.committedInstructions;
            if (until_branch > 0) {
                --until_branch;
                continue;
            }

            // This instruction is the next conditional branch.
            if (!source.next(record)) {
                trace_done = true;
                until_branch = config.instrsPerBranch;
                break;
            }
            ctx.pc = record.pc;
            ctx.bhr = bhr.value();
            ctx.gcir = gcir.value();

            const bool predicted = predictor.predict(record.pc);
            const bool correct = (predicted == record.taken);
            const std::uint64_t bucket = estimator.bucketOf(ctx);
            const bool low = low_buckets[bucket];

            ++result.branches;
            if (!correct)
                ++result.mispredicts;
            estimator.update(ctx, correct, record.taken);
            predictor.update(record.pc, record.taken);
            bhr.recordOutcome(record.taken);
            gcir.shiftIn(!correct);

            inflight.push_back(
                {cycle + config.resolveLatency, !correct, low});
            if (low)
                ++low_outstanding;
            if (!correct)
                wrong_path = true; // the rest of fetch is junk
            until_branch = config.instrsPerBranch;

            if (result.branches >= config.branches)
                break;
        }
    }
    return result;
}

} // namespace confsim
