#include "apps/reverser.h"

#include "predictor/history_register.h"
#include "util/shift_register.h"

namespace confsim {

namespace {

/** One pass over the trace; optionally reversing flagged buckets. */
struct PassResult
{
    std::uint64_t branches = 0;
    std::uint64_t effectiveMispredicts = 0;
    std::uint64_t reversals = 0;
    BucketStats stats;
};

PassResult
runPass(TraceSource &source, BranchPredictor &predictor,
        ConfidenceEstimator &estimator,
        const std::vector<bool> *reverse_mask)
{
    PassResult pass{0, 0, 0, BucketStats(estimator.numBuckets())};
    HistoryRegister bhr(16);
    ShiftRegister gcir(16, 0);
    BranchRecord record;
    BranchContext ctx;

    while (source.next(record)) {
        if (!record.isConditional())
            continue;
        ctx.pc = record.pc;
        ctx.bhr = bhr.value();
        ctx.gcir = gcir.value();

        const bool predicted = predictor.predict(record.pc);
        const std::uint64_t bucket = estimator.bucketOf(ctx);
        const bool base_correct = (predicted == record.taken);

        bool effective = predicted;
        if (reverse_mask && (*reverse_mask)[bucket]) {
            effective = !predicted;
            ++pass.reversals;
        }
        const bool effective_correct = (effective == record.taken);

        ++pass.branches;
        if (!effective_correct)
            ++pass.effectiveMispredicts;
        pass.stats.record(bucket, !base_correct);

        // All training uses the base prediction's correctness so the
        // underlying structures behave identically in both passes.
        estimator.update(ctx, base_correct, record.taken);
        predictor.update(record.pc, record.taken);
        bhr.recordOutcome(record.taken);
        gcir.shiftIn(!base_correct);
    }
    return pass;
}

} // namespace

ReverserResult
runReverser(TraceSource &source, BranchPredictor &predictor,
            ConfidenceEstimator &estimator, double rate_threshold,
            double min_bucket_refs)
{
    // Pass 1: profile per-bucket accuracy.
    PassResult profile = runPass(source, predictor, estimator, nullptr);

    std::vector<bool> reverse_mask(estimator.numBuckets(), false);
    ReverserResult result;
    for (std::uint64_t b = 0; b < estimator.numBuckets(); ++b) {
        const BucketCounts &counts = profile.stats[b];
        if (counts.refs >= min_bucket_refs &&
            counts.rate() > rate_threshold) {
            reverse_mask[b] = true;
            result.reversalBuckets.push_back(b);
        }
    }

    // Pass 2: identical replay with reversal applied.
    source.reset();
    predictor.reset();
    estimator.reset();
    PassResult reversed =
        runPass(source, predictor, estimator, &reverse_mask);

    result.branches = reversed.branches;
    result.baseMispredicts = profile.effectiveMispredicts;
    result.reversedMispredicts = reversed.effectiveMispredicts;
    result.reversals = reversed.reversals;
    return result;
}

} // namespace confsim
