#include "apps/hybrid_selector.h"

#include "predictor/history_register.h"
#include "util/shift_register.h"
#include "util/status.h"

namespace confsim {

HybridSelectorResult
runHybridSelector(TraceSource &source, BranchPredictor &first,
                  ConfidenceEstimator &first_confidence,
                  BranchPredictor &second,
                  ConfidenceEstimator &second_confidence)
{
    if (!first_confidence.bucketsAreOrdered() ||
        !second_confidence.bucketsAreOrdered()) {
        fatal("hybrid selection requires ordered-bucket (counter) "
              "confidence estimators");
    }

    HybridSelectorResult result;
    HistoryRegister bhr(16);
    ShiftRegister gcir(16, 0);
    BranchRecord record;
    BranchContext ctx;

    while (source.next(record)) {
        if (!record.isConditional())
            continue;
        ctx.pc = record.pc;
        ctx.bhr = bhr.value();
        ctx.gcir = gcir.value();

        const bool p1 = first.predict(record.pc);
        const bool p2 = second.predict(record.pc);
        const std::uint64_t c1 = first_confidence.bucketOf(ctx);
        const std::uint64_t c2 = second_confidence.bucketOf(ctx);

        // Confidence arbitration: the more confident constituent wins;
        // ties go to the second constituent.
        const bool selected = (c1 > c2) ? p1 : p2;

        const bool correct1 = (p1 == record.taken);
        const bool correct2 = (p2 == record.taken);
        const bool correct_sel = (selected == record.taken);

        ++result.branches;
        if (!correct1)
            ++result.firstMispredicts;
        if (!correct2)
            ++result.secondMispredicts;
        if (!correct_sel)
            ++result.selectedMispredicts;
        if (p1 != p2)
            ++result.disagreements;
        if (!correct1 && !correct2)
            ++result.oracleMispredicts;

        // Each estimator tracks its own constituent's correctness.
        first_confidence.update(ctx, correct1, record.taken);
        second_confidence.update(ctx, correct2, record.taken);
        first.update(record.pc, record.taken);
        second.update(record.pc, record.taken);
        bhr.recordOutcome(record.taken);
        gcir.shiftIn(!correct1); // GCIR convention: track constituent 1
    }
    return result;
}

} // namespace confsim
