#include "apps/smt_fetch.h"

#include <algorithm>

#include "predictor/history_register.h"
#include "util/shift_register.h"
#include "util/status.h"

namespace confsim {

namespace {

/** Per-thread microstate of the fetch model. */
struct ThreadState
{
    HistoryRegister bhr{16};
    ShiftRegister gcir{16, 0};
    std::uint64_t wrongPathUntilSlot = 0; //!< fetching junk before this
    std::uint64_t gateUntilSlot = 0;      //!< deprioritized before this
    unsigned untilNextBranch = 0;         //!< correct-path countdown
};

} // namespace

SmtFetchResult
runSmtFetch(std::vector<SmtThreadSpec> &threads,
            const SmtFetchConfig &config)
{
    if (threads.empty())
        fatal("SMT fetch model needs at least one thread");
    for (const auto &spec : threads) {
        if (!spec.source || !spec.predictor || !spec.estimator)
            fatal("SMT thread spec is missing a component");
        if (spec.lowBuckets.size() != spec.estimator->numBuckets())
            fatal("SMT thread low-bucket mask does not match estimator");
    }

    const std::uint64_t latency_slots = std::max<std::uint64_t>(
        1, config.resolutionLatency / config.fetchBlock);

    SmtFetchResult result;
    std::vector<ThreadState> state(threads.size());
    for (auto &ts : state)
        ts.untilNextBranch = config.instrsPerBranch;

    std::size_t rr = 0; // round-robin pointer
    BranchRecord record;
    BranchContext ctx;

    for (std::uint64_t slot = 0; slot < config.fetchSlots; ++slot) {
        // Pick the next eligible thread round-robin; count every
        // gated thread we skip over.
        std::size_t chosen = threads.size();
        for (std::size_t k = 0; k < threads.size(); ++k) {
            const std::size_t t = (rr + k) % threads.size();
            if (config.gateOnLowConfidence &&
                slot < state[t].gateUntilSlot) {
                ++result.gatedSlots;
                continue;
            }
            chosen = t;
            break;
        }
        if (chosen == threads.size()) {
            continue; // every thread gated: fetch idles this slot
        }
        rr = (chosen + 1) % threads.size();

        ThreadState &ts = state[chosen];
        SmtThreadSpec &spec = threads[chosen];

        if (slot < ts.wrongPathUntilSlot) {
            // The whole block is wrong-path junk.
            result.fetchedInstructions += config.fetchBlock;
            result.wastedInstructions += config.fetchBlock;
            continue;
        }

        for (unsigned i = 0; i < config.fetchBlock; ++i) {
            ++result.fetchedInstructions;
            if (ts.untilNextBranch > 0) {
                --ts.untilNextBranch;
                continue;
            }

            // Fetch reached the next conditional branch.
            if (!spec.source->next(record)) {
                spec.source->reset(); // loop the trace
                if (!spec.source->next(record))
                    fatal("SMT thread trace is empty");
            }
            ctx.pc = record.pc;
            ctx.bhr = ts.bhr.value();
            ctx.gcir = ts.gcir.value();

            const bool predicted = spec.predictor->predict(record.pc);
            const bool correct = (predicted == record.taken);
            const std::uint64_t bucket = spec.estimator->bucketOf(ctx);
            const bool low = spec.lowBuckets[bucket];

            ++result.branches;
            spec.estimator->update(ctx, correct, record.taken);
            spec.predictor->update(record.pc, record.taken);
            ts.bhr.recordOutcome(record.taken);
            ts.gcir.shiftIn(!correct);
            ts.untilNextBranch = config.instrsPerBranch;

            if (low)
                ts.gateUntilSlot = slot + 1 + latency_slots;

            if (!correct) {
                ++result.mispredicts;
                ts.wrongPathUntilSlot = slot + 1 + latency_slots;
                // The rest of this block is already wrong-path.
                const unsigned remaining = config.fetchBlock - 1 - i;
                result.fetchedInstructions += remaining;
                result.wastedInstructions += remaining;
                break;
            }
        }
    }
    return result;
}

} // namespace confsim
