#include "apps/dual_path.h"

#include <vector>

#include "predictor/history_register.h"
#include "util/shift_register.h"
#include "util/status.h"

namespace confsim {

DualPathResult
runDualPath(TraceSource &source, BranchPredictor &predictor,
            ConfidenceEstimator &estimator,
            const std::vector<bool> &low_buckets,
            const DualPathConfig &config)
{
    if (low_buckets.size() != estimator.numBuckets())
        fatal("dual-path low-bucket mask does not match estimator");

    if (config.maxForks == 0)
        fatal("dual-path model requires at least one fork slot");

    DualPathResult result;
    HistoryRegister bhr(16);
    ShiftRegister gcir(16, 0);

    // Fork-slot occupancy: each active slot holds the number of
    // further branches until its forked branch resolves.
    std::vector<unsigned> fork_slots(config.maxForks, 0);
    bool fork_armed = false; // a fork belongs to the current branch

    BranchRecord record;
    BranchContext ctx;
    while (source.next(record)) {
        if (!record.isConditional())
            continue;

        ctx.pc = record.pc;
        ctx.bhr = bhr.value();
        ctx.gcir = gcir.value();

        const bool predicted = predictor.predict(record.pc);
        const bool correct = (predicted == record.taken);
        const std::uint64_t bucket = estimator.bucketOf(ctx);
        const bool low_confidence =
            bucket < low_buckets.size() && low_buckets[bucket];

        ++result.branches;
        result.baselineCycles += config.baseCyclesPerBranch;
        result.dualPathCycles += config.baseCyclesPerBranch;

        fork_armed = false;
        if (low_confidence) {
            ++result.forkRequests;
            for (auto &slot : fork_slots) {
                if (slot == 0) {
                    ++result.forks;
                    slot = config.resolutionWindow;
                    fork_armed = true;
                    result.dualPathCycles += config.forkCost;
                    break;
                }
            }
        }

        if (!correct) {
            ++result.mispredicts;
            result.baselineCycles += config.mispredictPenalty;
            if (fork_armed) {
                ++result.coveredMispredicts;
                result.dualPathCycles += config.forkedMispredictPenalty;
            } else {
                result.dualPathCycles += config.mispredictPenalty;
            }
            // A misprediction squashes wrong-path work; outstanding
            // forks from older branches are squashed with it.
            for (auto &slot : fork_slots)
                slot = 0;
        } else {
            for (auto &slot : fork_slots) {
                if (slot > 0)
                    --slot;
            }
        }

        estimator.update(ctx, correct, record.taken);
        predictor.update(record.pc, record.taken);
        bhr.recordOutcome(record.taken);
        gcir.shiftIn(!correct);
    }
    return result;
}

} // namespace confsim
