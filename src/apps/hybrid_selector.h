/**
 * @file
 * Confidence-driven hybrid predictor selection (paper Section 1,
 * application 3).
 *
 * "Hybrid branch predictors [1, 5] use more than one predictor and
 * select the prediction made by one of them based on the history of
 * prediction accuracies of the constituent predictors. The methods
 * proposed in [1, 5] are basically ad hoc confidence mechanisms ...
 * By studying confidence mechanisms in general, we may be able to
 * arrive at more accurate hybrid selectors."
 *
 * This model runs two constituent predictors, each with its own
 * confidence estimator (ordered-bucket counters); on disagreement the
 * prediction of the higher-confidence constituent wins. The bench
 * compares against each constituent alone and against the classic
 * McFarling chooser (predictor/hybrid.h).
 */

#ifndef CONFSIM_APPS_HYBRID_SELECTOR_H
#define CONFSIM_APPS_HYBRID_SELECTOR_H

#include <cstdint>

#include "confidence/confidence_estimator.h"
#include "predictor/branch_predictor.h"
#include "trace/trace_source.h"

namespace confsim {

/** Results of a confidence-selector run. */
struct HybridSelectorResult
{
    std::uint64_t branches = 0;
    std::uint64_t firstMispredicts = 0;    //!< constituent 1 alone
    std::uint64_t secondMispredicts = 0;   //!< constituent 2 alone
    std::uint64_t selectedMispredicts = 0; //!< confidence selection
    std::uint64_t disagreements = 0;       //!< constituents disagreed
    std::uint64_t oracleMispredicts = 0;   //!< perfect selection bound

    double rate(std::uint64_t misses) const
    {
        return branches == 0
                   ? 0.0
                   : static_cast<double>(misses) / branches;
    }
};

/**
 * Run the confidence-based selector.
 *
 * Both estimators must have ordered buckets (bucketsAreOrdered()), so
 * "higher bucket = higher confidence" is meaningful; ties go to the
 * second constituent (by convention the more accurate one).
 *
 * @param source Trace (consumed from current position).
 * @param first Constituent 1 (e.g. bimodal) and its estimator.
 * @param second Constituent 2 (e.g. gshare) and its estimator.
 */
HybridSelectorResult
runHybridSelector(TraceSource &source, BranchPredictor &first,
                  ConfidenceEstimator &first_confidence,
                  BranchPredictor &second,
                  ConfidenceEstimator &second_confidence);

} // namespace confsim

#endif // CONFSIM_APPS_HYBRID_SELECTOR_H
