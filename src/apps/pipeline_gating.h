/**
 * @file
 * Pipeline gating / speculation control.
 *
 * The paper's introduction motivates confidence with "implementations
 * where the penalty for an incorrect speculation may be high enough
 * that it may be better not to speculate in those instances where the
 * likelihood of a branch misprediction is relatively high". The
 * best-known realization of that idea is pipeline gating (Manne,
 * Klauser & Grunwald, ISCA 1998): stop fetching when the number of
 * unresolved low-confidence branches exceeds a threshold, trading a
 * small performance loss for a large reduction in wasted (wrong-path)
 * work — an energy win.
 *
 * This is a cycle-level in-order front-end model: instructions are
 * fetched fetchWidth per cycle; each conditional branch resolves a
 * fixed latency after fetch; a mispredicted branch squashes everything
 * fetched behind it. The gating policy counts unresolved
 * low-confidence branches and stalls fetch above the threshold.
 */

#ifndef CONFSIM_APPS_PIPELINE_GATING_H
#define CONFSIM_APPS_PIPELINE_GATING_H

#include <cstdint>
#include <vector>

#include "confidence/confidence_estimator.h"
#include "predictor/branch_predictor.h"
#include "trace/trace_source.h"

namespace confsim {

/** Pipeline-gating model parameters. */
struct GatingConfig
{
    /** Instructions fetched per un-gated cycle. */
    unsigned fetchWidth = 4;

    /** Cycles between fetching a branch and resolving it. */
    unsigned resolveLatency = 12;

    /** Average instructions between conditional branches. */
    unsigned instrsPerBranch = 6;

    /**
     * Gate fetch while the number of unresolved LOW-confidence
     * branches exceeds this. 0 = stall on any unresolved
     * low-confidence branch; a large value = never gate.
     */
    unsigned gateThreshold = 1;

    /** Master switch; false = always speculate (the baseline). */
    bool enableGating = true;

    /** Conditional branches to simulate. */
    std::uint64_t branches = 1'000'000;
};

/** Results of a pipeline-gating simulation. */
struct GatingResult
{
    std::uint64_t cycles = 0;
    std::uint64_t fetchedInstructions = 0;
    std::uint64_t wrongPathInstructions = 0; //!< fetched then squashed
    std::uint64_t committedInstructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t gatedCycles = 0; //!< cycles fetch was gated

    /** @return committed instructions per cycle. */
    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(committedInstructions)
                                 / cycles;
    }

    /** @return fraction of fetched work that was squashed (the energy
     *  proxy pipeline gating attacks). */
    double
    wastedFraction() const
    {
        return fetchedInstructions == 0
                   ? 0.0
                   : static_cast<double>(wrongPathInstructions) /
                         fetchedInstructions;
    }
};

/**
 * Run the model.
 *
 * @param source Branch trace (consumed from its current position; the
 *        run ends after config.branches conditional branches or trace
 *        exhaustion, whichever comes first).
 * @param predictor Underlying predictor, trained online.
 * @param estimator Confidence estimator, trained online.
 * @param low_buckets Buckets treated as low confidence, sized to
 *        estimator.numBuckets().
 * @param config Model parameters.
 */
GatingResult
runPipelineGating(TraceSource &source, BranchPredictor &predictor,
                  ConfidenceEstimator &estimator,
                  const std::vector<bool> &low_buckets,
                  const GatingConfig &config = {});

} // namespace confsim

#endif // CONFSIM_APPS_PIPELINE_GATING_H
