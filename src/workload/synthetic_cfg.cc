#include "workload/synthetic_cfg.h"

#include "ckpt/state_io.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace confsim {

SyntheticCfg::SyntheticCfg(const BenchmarkProfile &profile)
    : profile_(profile), nextPc_(profile.pcBase)
{
    if (profile.targetBlocks < 4)
        fatal("benchmark profile needs at least 4 blocks");

    Rng rng(profile.seed * 0x9E3779B97F4A7C15ULL + 0x1234567);

    while (blocks_.size() < profile_.targetBlocks)
        buildConstruct(0, rng);

    // Outer wrap: the program is an infinite loop over its whole body.
    // A heavily-taken latch returning to block 0; both successors point
    // back so exhaustion is impossible.
    const std::size_t wrap =
        emitBlock(std::make_unique<BiasedBehavior>(0.999), rng);
    blocks_[wrap].takenNext = 0;
    blocks_[wrap].fallNext = 0;
    blocks_[wrap].isLoopLatch = true;

    // Every successor index emitted as "one past the current end" during
    // construction now resolves to the wrap block or earlier; clamp any
    // residual out-of-range indices (possible when an if-merge pointed
    // past the final construct).
    for (auto &block : blocks_) {
        if (block.takenNext >= blocks_.size())
            block.takenNext = static_cast<std::uint32_t>(wrap);
        if (block.fallNext >= blocks_.size())
            block.fallNext = static_cast<std::uint32_t>(wrap);
    }
}

std::size_t
SyntheticCfg::emitBlock(std::unique_ptr<BranchBehavior> behavior,
                        Rng &rng)
{
    // Blocks are 3..12 instructions; the conditional branch is the last
    // instruction. Word-sized (4-byte) instructions as on the MIPS/Alpha
    // machines the IBS traces came from.
    const std::uint64_t block_insts = 3 + rng.nextBelow(10);
    const std::uint64_t branch_pc = nextPc_ + (block_insts - 1) * 4;
    nextPc_ += block_insts * 4;

    CfgBlock block;
    block.branchPc = branch_pc;
    block.behavior = std::move(behavior);
    // A small fraction of blocks begin with a non-conditional control
    // transfer (call / return / jump), used only when the profile asks
    // for structurally realistic traces. The roll is drawn
    // unconditionally so toggling emitNonConditional does not perturb
    // the RNG sequence (the conditional stream stays bit-identical).
    const double event_roll = rng.nextDouble();
    if (profile_.emitNonConditional) {
        if (event_roll < 0.05)
            block.entryEvent = BlockEvent::Call;
        else if (event_roll < 0.10)
            block.entryEvent = BlockEvent::Return;
        else if (event_roll < 0.16)
            block.entryEvent = BlockEvent::Unconditional;
    }
    const auto index = static_cast<std::uint32_t>(blocks_.size());
    // Default: fall through to the next block either way; callers patch.
    block.takenNext = index + 1;
    block.fallNext = index + 1;
    blocks_.push_back(std::move(block));
    return index;
}

std::unique_ptr<BranchBehavior>
SyntheticCfg::sampleNonLoopBehavior(Rng &rng)
{
    const BehaviorMix &mix = profile_.mix;
    const double total = mix.stronglyBiased + mix.moderateBiased +
                         mix.weaklyBiased + mix.correlated +
                         mix.pattern + mix.chain;
    if (total <= 0.0)
        fatal("profile behaviour mix has no mass: " + profile_.name);
    double roll = rng.nextDouble() * total;

    auto take = [&roll](double weight) {
        if (roll < weight)
            return true;
        roll -= weight;
        return false;
    };

    if (take(mix.stronglyBiased)) {
        const double p = 0.9965 + 0.0030 * rng.nextDouble();
        return std::make_unique<BiasedBehavior>(
            rng.nextBernoulli(0.5) ? p : 1.0 - p);
    }
    if (take(mix.moderateBiased)) {
        const double p = 0.90 + 0.08 * rng.nextDouble();
        return std::make_unique<BiasedBehavior>(
            rng.nextBernoulli(0.5) ? p : 1.0 - p);
    }
    if (take(mix.weaklyBiased)) {
        const double p = 0.60 + 0.25 * rng.nextDouble();
        return std::make_unique<BiasedBehavior>(
            rng.nextBernoulli(0.5) ? p : 1.0 - p);
    }
    if (take(mix.correlated)) {
        const unsigned num_taps = 1 + static_cast<unsigned>(
            rng.nextBelow(3));
        std::vector<unsigned> taps;
        for (unsigned i = 0; i < num_taps; ++i) {
            // Mostly shallow taps; ~72% land in [12, 16), which a
            // 16-deep history captures but a 12-deep one cannot — one
            // source of the paper's 64K-vs-4K predictor gap.
            if (rng.nextBernoulli(0.72)) {
                taps.push_back(12 + static_cast<unsigned>(
                    rng.nextBelow(4)));
            } else {
                taps.push_back(static_cast<unsigned>(
                    rng.nextBelow(10)));
            }
        }
        const auto op = static_cast<CorrelationOp>(rng.nextBelow(3));
        return std::make_unique<HistoryCorrelatedBehavior>(
            std::move(taps), op, profile_.correlationNoise,
            rng.nextBernoulli(0.5));
    }
    if (take(mix.pattern)) {
        // Short structured patterns only (T^a N^b with period <= 4).
        // Long random patterns are nearly unpredictable for a global
        // history predictor: the pattern phase is not recoverable from
        // the history window unless the branch executes densely, so
        // they would behave as noise rather than as the learnable
        // periodic branches real code contains.
        const std::size_t taken_run = 1 + rng.nextBelow(3);
        const std::size_t nt_run = 1 + rng.nextBelow(4 - taken_run > 0
                                                         ? 4 - taken_run
                                                         : 1);
        std::vector<bool> pattern;
        const bool invert = rng.nextBernoulli(0.5);
        for (std::size_t i = 0; i < taken_run; ++i)
            pattern.push_back(!invert);
        for (std::size_t i = 0; i < nt_run; ++i)
            pattern.push_back(invert);
        return std::make_unique<PatternBehavior>(std::move(pattern));
    }
    // Chain: echo a recent outcome.
    const unsigned depth = 1 + static_cast<unsigned>(rng.nextBelow(13));
    return std::make_unique<ChainBehavior>(
        depth, rng.nextBernoulli(0.5), profile_.correlationNoise);
}

std::unique_ptr<BranchBehavior>
SyntheticCfg::sampleLoopBehavior(unsigned depth, Rng &rng)
{
    // Per-loop mean trip count jitters around the profile mean.
    const double factor = 0.4 + 1.4 * rng.nextDouble();
    const auto mean = static_cast<std::uint32_t>(std::max(
        2.0, std::round(profile_.meanTripCount * factor)));

    // Unpredictable trip counts are restricted to outer loops. An
    // innermost latch can account for a large share of the whole
    // dynamic stream (iterations multiply down the nest), so an
    // unlearnable innermost exit would swamp the benchmark with
    // mispredictions; an unpredictable *outer* exit is amortized over
    // its inner iterations, as in real programs where innermost trip
    // counts (array widths) are stable and outer ones are data sized.
    if (depth <= 1) {
        if (rng.nextBernoulli(profile_.geometricLoopFraction))
            return std::make_unique<LoopBehavior>(
                mean, TripCountModel::Geometric);
        const std::uint32_t jitter =
            std::max<std::uint32_t>(1, mean / 10);
        if (rng.nextBernoulli(0.1) && jitter < mean)
            return std::make_unique<LoopBehavior>(
                mean, TripCountModel::Jittered, jitter);
    }
    return std::make_unique<LoopBehavior>(mean, TripCountModel::Fixed);
}

void
SyntheticCfg::buildConstruct(unsigned depth, Rng &rng)
{
    const double roll = rng.nextDouble();

    if (roll < profile_.loopFraction && depth < profile_.maxNestDepth) {
        // Bottom-test loop: body region, then a latch whose taken edge
        // returns to the body entry.
        const auto body_entry =
            static_cast<std::uint32_t>(blocks_.size());
        const unsigned body_constructs = 1 + rng.nextBelow(3);
        for (unsigned i = 0; i < body_constructs; ++i)
            buildConstruct(depth + 1, rng);
        const std::size_t latch =
            emitBlock(sampleLoopBehavior(depth, rng), rng);
        blocks_[latch].takenNext = body_entry;
        blocks_[latch].fallNext =
            static_cast<std::uint32_t>(blocks_.size());
        blocks_[latch].isLoopLatch = true;
        return;
    }

    // Cap structural recursion: both the loop arm above and the if arm
    // here stop nesting past maxNestDepth + 2, which also keeps the
    // construct branching process subcritical (it would otherwise
    // diverge: loops/ifs each spawn >1 expected child constructs).
    if (roll < profile_.loopFraction + profile_.ifFraction &&
        depth < profile_.maxNestDepth + 2) {
        // If construct: the condition's taken edge skips the then-region
        // (fall path enters it); both paths merge after.
        const std::size_t cond =
            emitBlock(sampleNonLoopBehavior(rng), rng);
        const unsigned then_constructs = 1 + rng.nextBelow(2);
        for (unsigned i = 0; i < then_constructs; ++i)
            buildConstruct(depth + 1, rng);
        blocks_[cond].fallNext = static_cast<std::uint32_t>(cond + 1);
        blocks_[cond].takenNext =
            static_cast<std::uint32_t>(blocks_.size());
        return;
    }

    // Plain branch: direction is recorded but both arms re-merge in the
    // next block (models a short hammock).
    emitBlock(sampleNonLoopBehavior(rng), rng);
}

void
SyntheticCfg::resetBehaviors()
{
    for (auto &block : blocks_)
        block.behavior->reset();
}


void
SyntheticCfg::saveBehaviorStates(StateWriter &out) const
{
    out.putU64(blocks_.size());
    for (const CfgBlock &block : blocks_)
        block.behavior->saveState(out);
}

void
SyntheticCfg::loadBehaviorStates(StateReader &in)
{
    in.expectU64(blocks_.size(), "CFG block count");
    for (CfgBlock &block : blocks_)
        block.behavior->loadState(in);
}

} // namespace confsim
