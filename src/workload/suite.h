/**
 * @file
 * The benchmark suite: the ordered collection of IBS stand-in workloads
 * plus the equal-weight compositing rule of paper Section 1.2 ("each
 * benchmark, in effect, executes the same number of conditional
 * branches").
 */

#ifndef CONFSIM_WORKLOAD_SUITE_H
#define CONFSIM_WORKLOAD_SUITE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/benchmark_profile.h"
#include "workload/workload_generator.h"

namespace confsim {

/** An ordered set of benchmark profiles run with a common trace length. */
class BenchmarkSuite
{
  public:
    /**
     * The full nine-benchmark IBS stand-in suite.
     *
     * @param branches_per_benchmark Trace length for every benchmark
     *        (equal lengths make the equal-weight rule exact); 0 uses
     *        each profile's default.
     */
    static BenchmarkSuite ibs(std::uint64_t branches_per_benchmark = 0);

    /**
     * A reduced suite for fast tests/smoke runs: a subset of profiles
     * with short traces.
     */
    static BenchmarkSuite ibsSmall(std::uint64_t branches_per_benchmark);

    /** A suite with exactly the named IBS profiles. */
    static BenchmarkSuite
    ibsSubset(const std::vector<std::string> &names,
              std::uint64_t branches_per_benchmark);

    /** @return the number of benchmarks. */
    std::size_t size() const { return profiles_.size(); }

    /** @return profile @p index. */
    const BenchmarkProfile &profile(std::size_t index) const
    {
        return profiles_[index];
    }

    /** @return benchmark names in suite order. */
    std::vector<std::string> names() const;

    /** Construct a fresh generator for benchmark @p index. */
    std::unique_ptr<WorkloadGenerator>
    makeGenerator(std::size_t index) const;

    /** @return the per-benchmark trace length (0 = profile default). */
    std::uint64_t branchesPerBenchmark() const { return length_; }

  private:
    BenchmarkSuite(std::vector<BenchmarkProfile> profiles,
                   std::uint64_t length);

    std::vector<BenchmarkProfile> profiles_;
    std::uint64_t length_;
};

} // namespace confsim

#endif // CONFSIM_WORKLOAD_SUITE_H
