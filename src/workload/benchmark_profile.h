/**
 * @file
 * Benchmark profile: the parameter bundle from which a synthetic CFG and
 * its branch behaviours are generated, plus the nine named profiles that
 * stand in for the IBS (Instruction Benchmark Suite) Mach traces the
 * paper simulated.
 *
 * Profile constants were calibrated (see EXPERIMENTS.md) so that the
 * equal-weight composite misprediction rate of the paper's 64K-entry
 * gshare lands near the reported 3.85%, the 4K-entry configuration near
 * 8.6%, `jpeg` is the best-predicted benchmark and `real_gcc` the worst
 * (paper Fig. 9).
 */

#ifndef CONFSIM_WORKLOAD_BENCHMARK_PROFILE_H
#define CONFSIM_WORKLOAD_BENCHMARK_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace confsim {

/** Mix weights for non-loop branch behaviours; need not be normalized. */
struct BehaviorMix
{
    double stronglyBiased = 0.0; //!< Bernoulli, p in [0.93, 0.995]
    double moderateBiased = 0.0; //!< Bernoulli, p in [0.70, 0.93]
    double weaklyBiased = 0.0;   //!< Bernoulli, p in [0.50, 0.70]
    double correlated = 0.0;     //!< boolean function of global history
    double pattern = 0.0;        //!< short periodic patterns
    double chain = 0.0;          //!< echo of a recent outcome
};

/** All knobs of one synthetic benchmark. */
struct BenchmarkProfile
{
    std::string name;

    /** Base address of the synthetic text segment. */
    std::uint64_t pcBase = 0x400000;

    /** Approximate number of static conditional branches. */
    unsigned targetBlocks = 500;

    /** Probability that a generated construct is a loop. */
    double loopFraction = 0.25;

    /** Probability that a generated construct is an if (vs plain). */
    double ifFraction = 0.45;

    /** Maximum loop nesting depth. */
    unsigned maxNestDepth = 3;

    /** Mean loop trip count (per-loop means jitter around this). */
    double meanTripCount = 8.0;

    /** Fraction of loops whose trip count is geometric (hard exits). */
    double geometricLoopFraction = 0.3;

    /** Behaviour mix for non-loop branches. */
    BehaviorMix mix;

    /** Noise probability applied to correlated/chain branches. */
    double correlationNoise = 0.03;

    /**
     * Emit call/return/unconditional-jump records interleaved with the
     * conditional stream (they carry no prediction semantics — the
     * driver skips them — but make generated trace files structurally
     * realistic). Off by default: the paper's methodology concerns the
     * conditional stream only.
     */
    bool emitNonConditional = false;

    /** Default trace length in conditional branches. */
    std::uint64_t defaultLength = 2'000'000;

    /** CFG-construction and runtime noise seed. */
    std::uint64_t seed = 1;
};

/**
 * The nine IBS stand-in profiles, in suite order:
 * groff, gs, jpeg, mpeg, nroff, real_gcc, sdet, verilog, video_play.
 */
std::vector<BenchmarkProfile> ibsProfiles();

/** Look up one IBS profile by name; calls fatal() if unknown. */
BenchmarkProfile ibsProfile(const std::string &name);

/** @return the ordered list of IBS profile names. */
std::vector<std::string> ibsProfileNames();

} // namespace confsim

#endif // CONFSIM_WORKLOAD_BENCHMARK_PROFILE_H
