#include "workload/workload_generator.h"

#include <array>

#include "ckpt/state_io.h"

namespace confsim {

namespace {

/** Runtime noise stream seed: decorrelated from the CFG-build stream. */
std::uint64_t
runtimeSeed(const BenchmarkProfile &profile)
{
    return profile.seed * 0xD1B54A32D192ED03ULL + 0xABCDEF12345ULL;
}

} // namespace

WorkloadGenerator::WorkloadGenerator(const BenchmarkProfile &profile,
                                     std::uint64_t num_branches)
    : cfg_(profile),
      length_(num_branches == 0 ? profile.defaultLength : num_branches),
      runtimeRng_(runtimeSeed(profile))
{}

bool
WorkloadGenerator::next(BranchRecord &record)
{
    if (emitted_ >= length_)
        return false;

    CfgBlock &block = cfg_.block(currentBlock_);

    // Optional leading non-conditional transfer of the current block;
    // it is emitted once, before the block's conditional branch, and
    // does not advance the conditional count or the outcome history.
    if (entryEventPending_) {
        entryEventPending_ = false;
        record.pc = block.branchPc - 8; // earlier in the same block
        record.target = block.branchPc - 4;
        record.taken = true;
        switch (block.entryEvent) {
          case BlockEvent::Call:
            record.type = BranchType::Call;
            break;
          case BlockEvent::Return:
            record.type = BranchType::Return;
            break;
          default:
            record.type = BranchType::Unconditional;
            break;
        }
        return true;
    }

    const bool taken = block.behavior->nextOutcome(context_, runtimeRng_);
    context_.recordOutcome(taken);

    record.pc = block.branchPc;
    record.target = cfg_.block(block.takenNext).branchPc;
    record.taken = taken;
    record.type = BranchType::Conditional;

    currentBlock_ = taken ? block.takenNext : block.fallNext;
    ++emitted_;

    // Arm the next block's leading event, if it has one.
    entryEventPending_ =
        cfg_.block(currentBlock_).entryEvent != BlockEvent::None;
    return true;
}

void
WorkloadGenerator::reset()
{
    cfg_.resetBehaviors();
    runtimeRng_ = Rng(runtimeSeed(cfg_.profile()));
    context_.reset();
    currentBlock_ = 0;
    emitted_ = 0;
    entryEventPending_ = false;
}


void
WorkloadGenerator::saveState(StateWriter &out) const
{
    const std::array<std::uint64_t, 4> words = runtimeRng_.stateWords();
    for (const std::uint64_t word : words)
        out.putU64(word);
    out.putU64(context_.historyValue());
    out.putU32(currentBlock_);
    out.putU64(emitted_);
    out.putBool(entryEventPending_);
    cfg_.saveBehaviorStates(out);
}

void
WorkloadGenerator::loadState(StateReader &in)
{
    std::array<std::uint64_t, 4> words;
    for (std::uint64_t &word : words)
        word = in.getU64();
    runtimeRng_.setStateWords(words);
    context_.reset();
    context_.setHistory(in.getU64());
    currentBlock_ = in.getU32();
    emitted_ = in.getU64();
    entryEventPending_ = in.getBool();
    cfg_.loadBehaviorStates(in);
}

} // namespace confsim
