#include "workload/benchmark_profile.h"

#include "util/status.h"

namespace confsim {

namespace {

/**
 * Build one profile. The arguments map to the knobs that differ between
 * IBS programs: code size (static branches), loopiness, trip counts,
 * branch-class mix and noise.
 */
BenchmarkProfile
makeProfile(const std::string &name, unsigned blocks, double loop_frac,
            double mean_trip, double geo_frac, const BehaviorMix &mix,
            double noise, std::uint64_t seed)
{
    BenchmarkProfile p;
    p.name = name;
    p.pcBase = 0x00400000 + seed * 0x01000000;
    p.targetBlocks = blocks;
    p.loopFraction = loop_frac;
    p.ifFraction = 0.45;
    p.maxNestDepth = 3;
    p.meanTripCount = mean_trip;
    p.geometricLoopFraction = geo_frac;
    p.mix = mix;
    p.correlationNoise = noise;
    p.seed = seed;
    return p;
}

} // namespace

std::vector<BenchmarkProfile>
ibsProfiles()
{
    std::vector<BenchmarkProfile> out;

    // groff: text formatter; mid-sized, moderately branchy, fair amount
    // of correlated parsing decisions.
    out.push_back(makeProfile(
        "groff", 900, 0.24, 9.0, 0.052,
        BehaviorMix{0.3800, 0.0496, 0.0278, 0.5000, 0.0000, 0.0900}, 0.0024, 11));

    // gs: ghostscript; large code, rendering loops plus branchy
    // interpreter dispatch.
    out.push_back(makeProfile(
        "gs", 1800, 0.24, 9.0, 0.040,
        BehaviorMix{0.3600, 0.0578, 0.0340, 0.4800, 0.0000, 0.0900}, 0.0024, 12));

    // jpeg: DCT/Huffman kernels; small, loop-dominated, very
    // predictable (the paper's best benchmark, Fig. 9).
    out.push_back(makeProfile(
        "jpeg", 260, 0.48, 8.0, 0.005,
        BehaviorMix{0.4600, 0.0083, 0.0300, 0.4800, 0.0000, 0.0300}, 0.0006, 13));

    // mpeg: video decode; loopy kernels with some data-dependent
    // decisions.
    out.push_back(makeProfile(
        "mpeg", 420, 0.40, 20.0, 0.026,
        BehaviorMix{0.5000, 0.0248, 0.0175, 0.4000, 0.0000, 0.0700}, 0.0017, 14));

    // nroff: formatter; similar family to groff, somewhat smaller.
    out.push_back(makeProfile(
        "nroff", 900, 0.24, 12.0, 0.052,
        BehaviorMix{0.4000, 0.0496, 0.0217, 0.4800, 0.0000, 0.0800}, 0.0023, 15));

    // real_gcc: compiler; by far the largest static working set, short
    // loops, many data-dependent moderate branches (the paper's worst
    // benchmark, Fig. 9).
    out.push_back(makeProfile(
        "real_gcc", 4200, 0.15, 8.0, 0.117,
        BehaviorMix{0.2800, 0.0991, 0.0367, 0.4450, 0.0000, 0.1000}, 0.0045, 16));

    // sdet: systems-development multiprogram workload incl. kernel
    // activity; large and irregular.
    out.push_back(makeProfile(
        "sdet", 2400, 0.18, 10.0, 0.078,
        BehaviorMix{0.3200, 0.0802, 0.0292, 0.4450, 0.0000, 0.0900}, 0.0036, 17));

    // verilog: event-driven logic simulation; big tables, moderately
    // correlated event tests.
    out.push_back(makeProfile(
        "verilog", 1400, 0.22, 12.0, 0.058,
        BehaviorMix{0.3400, 0.0661, 0.0259, 0.4700, 0.0000, 0.0900}, 0.0031, 18));

    // video_play: player loop; predictable streaming kernels.
    out.push_back(makeProfile(
        "video_play", 380, 0.42, 10.0, 0.012,
        BehaviorMix{0.5000, 0.0248, 0.0240, 0.4000, 0.0000, 0.0500}, 0.0010, 19));

    return out;
}

BenchmarkProfile
ibsProfile(const std::string &name)
{
    for (const auto &profile : ibsProfiles()) {
        if (profile.name == name)
            return profile;
    }
    fatal("unknown IBS profile: " + name);
}

std::vector<std::string>
ibsProfileNames()
{
    std::vector<std::string> names;
    for (const auto &profile : ibsProfiles())
        names.push_back(profile.name);
    return names;
}

} // namespace confsim
