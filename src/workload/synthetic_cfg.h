/**
 * @file
 * Synthetic control-flow graph.
 *
 * A benchmark profile is expanded (deterministically from its seed) into
 * a graph of basic blocks, each terminated by one conditional branch with
 * an attached BranchBehavior. Loops become back edges, ifs become forward
 * skips over a sub-region, and the last block wraps to the first so the
 * walk can produce arbitrarily long traces.
 *
 * Executing the graph — rather than sampling branches independently —
 * is what gives the dynamic stream coherent global-history context:
 * which branch executes next depends on prior outcomes, exactly the
 * property gshare and PC^BHR confidence indexing exploit in real traces.
 */

#ifndef CONFSIM_WORKLOAD_SYNTHETIC_CFG_H
#define CONFSIM_WORKLOAD_SYNTHETIC_CFG_H

#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/state_io.h"
#include "util/rng.h"
#include "workload/benchmark_profile.h"
#include "workload/branch_behavior.h"

namespace confsim {

/** Non-conditional control transfer inside a block (optional). */
enum class BlockEvent : std::uint8_t
{
    None = 0,      //!< plain fall-in
    Call,          //!< the block starts with a call instruction
    Return,        //!< the block starts with a return
    Unconditional, //!< the block starts with a direct jump
};

/** One basic block: a conditional branch plus its two successors. */
struct CfgBlock
{
    std::uint64_t branchPc = 0;   //!< address of the terminating branch
    std::uint32_t takenNext = 0;  //!< successor block if taken
    std::uint32_t fallNext = 0;   //!< successor block if not taken
    std::unique_ptr<BranchBehavior> behavior; //!< outcome model
    bool isLoopLatch = false;     //!< taken edge is a back edge
    BlockEvent entryEvent = BlockEvent::None; //!< optional leading CTI
};

/** A generated program: blocks with behaviours, ready to walk. */
class SyntheticCfg
{
  public:
    /** Expand @p profile into a CFG; deterministic in profile.seed. */
    explicit SyntheticCfg(const BenchmarkProfile &profile);

    /** @return number of basic blocks (== static conditional branches). */
    std::size_t numBlocks() const { return blocks_.size(); }

    /** @return block @p index (mutable: behaviours are stateful). */
    CfgBlock &block(std::size_t index) { return blocks_[index]; }

    /** @return block @p index. */
    const CfgBlock &block(std::size_t index) const
    {
        return blocks_[index];
    }

    /** Restore every behaviour to its initial state. */
    void resetBehaviors();

    /** Checkpoint every behaviour's state (block-count guarded). */
    void saveBehaviorStates(StateWriter &out) const;

    /** Restore a saveBehaviorStates() snapshot. */
    void loadBehaviorStates(StateReader &in);

    /** @return the profile the graph was generated from. */
    const BenchmarkProfile &profile() const { return profile_; }

  private:
    /** Recursive region builder; emits >= 1 block per construct. */
    void buildConstruct(unsigned depth, Rng &rng);

    /** Append a block with @p behavior; successors patched by caller. */
    std::size_t emitBlock(std::unique_ptr<BranchBehavior> behavior,
                          Rng &rng);

    /** Sample a non-loop behaviour from the profile mix. */
    std::unique_ptr<BranchBehavior> sampleNonLoopBehavior(Rng &rng);

    /** Sample a loop-latch behaviour; @p depth is the loop nesting
     *  depth (unpredictable trip counts only at depth <= 1). */
    std::unique_ptr<BranchBehavior> sampleLoopBehavior(unsigned depth,
                                                       Rng &rng);

    BenchmarkProfile profile_;
    std::vector<CfgBlock> blocks_;
    std::uint64_t nextPc_;
};

} // namespace confsim

#endif // CONFSIM_WORKLOAD_SYNTHETIC_CFG_H
