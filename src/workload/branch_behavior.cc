#include "workload/branch_behavior.h"

#include <algorithm>

#include "util/status.h"

namespace confsim {

BiasedBehavior::BiasedBehavior(double p_taken)
    : pTaken_(p_taken)
{
    if (p_taken < 0.0 || p_taken > 1.0)
        fatal("BiasedBehavior probability must be in [0, 1]");
}

bool
BiasedBehavior::nextOutcome(const WorkloadContext &, Rng &rng)
{
    return rng.nextBernoulli(pTaken_);
}

std::unique_ptr<BranchBehavior>
BiasedBehavior::clone() const
{
    return std::make_unique<BiasedBehavior>(*this);
}

LoopBehavior::LoopBehavior(std::uint32_t mean_trip, TripCountModel model,
                           std::uint32_t jitter)
    : meanTrip_(mean_trip), model_(model), jitter_(jitter)
{
    if (mean_trip == 0)
        fatal("LoopBehavior requires a mean trip count >= 1");
    if (model == TripCountModel::Jittered && jitter >= mean_trip)
        fatal("LoopBehavior jitter must be smaller than the mean");
}

std::uint32_t
LoopBehavior::drawTripCount(Rng &rng) const
{
    switch (model_) {
      case TripCountModel::Fixed:
        return meanTrip_;
      case TripCountModel::Jittered:
        return static_cast<std::uint32_t>(rng.nextInRange(
            static_cast<std::int64_t>(meanTrip_) - jitter_,
            static_cast<std::int64_t>(meanTrip_) + jitter_));
      case TripCountModel::Geometric: {
        // Geometric with mean meanTrip_: success prob 1/mean; add 1 so
        // the loop always runs at least once.
        const double p = 1.0 / static_cast<double>(meanTrip_);
        const std::uint64_t draw = rng.nextGeometric(p) + 1;
        return static_cast<std::uint32_t>(std::min<std::uint64_t>(
            draw, 4 * static_cast<std::uint64_t>(meanTrip_) + 1));
      }
    }
    panic("unknown TripCountModel");
}

bool
LoopBehavior::nextOutcome(const WorkloadContext &, Rng &rng)
{
    if (!started_) {
        remaining_ = drawTripCount(rng);
        started_ = true;
    }
    if (remaining_ > 1) {
        --remaining_;
        return true; // continue iterating (latch taken)
    }
    // Exit: not taken; re-arm for the next entry into the loop.
    started_ = false;
    return false;
}

void
LoopBehavior::reset()
{
    remaining_ = 0;
    started_ = false;
}

std::unique_ptr<BranchBehavior>
LoopBehavior::clone() const
{
    auto copy = std::make_unique<LoopBehavior>(meanTrip_, model_, jitter_);
    return copy;
}

PatternBehavior::PatternBehavior(std::vector<bool> pattern)
    : pattern_(std::move(pattern))
{
    if (pattern_.empty())
        fatal("PatternBehavior requires a non-empty pattern");
}

bool
PatternBehavior::nextOutcome(const WorkloadContext &, Rng &)
{
    const bool out = pattern_[phase_];
    phase_ = (phase_ + 1) % pattern_.size();
    return out;
}

std::unique_ptr<BranchBehavior>
PatternBehavior::clone() const
{
    auto copy = std::make_unique<PatternBehavior>(pattern_);
    return copy;
}

HistoryCorrelatedBehavior::HistoryCorrelatedBehavior(
    std::vector<unsigned> taps, CorrelationOp op, double noise,
    bool invert)
    : taps_(std::move(taps)), op_(op), noise_(noise), invert_(invert)
{
    if (taps_.empty())
        fatal("HistoryCorrelatedBehavior requires at least one tap");
    for (unsigned tap : taps_) {
        if (tap >= 16)
            fatal("HistoryCorrelatedBehavior taps must be < 16 deep");
    }
    if (noise < 0.0 || noise > 1.0)
        fatal("HistoryCorrelatedBehavior noise must be in [0, 1]");
}

bool
HistoryCorrelatedBehavior::nextOutcome(const WorkloadContext &ctx,
                                       Rng &rng)
{
    bool value = false;
    switch (op_) {
      case CorrelationOp::Parity: {
        for (unsigned tap : taps_)
            value ^= ctx.pastOutcome(tap);
        break;
      }
      case CorrelationOp::Majority: {
        unsigned ones = 0;
        for (unsigned tap : taps_)
            ones += ctx.pastOutcome(tap) ? 1 : 0;
        value = 2 * ones > taps_.size();
        break;
      }
      case CorrelationOp::And: {
        value = true;
        for (unsigned tap : taps_)
            value = value && ctx.pastOutcome(tap);
        break;
      }
    }
    if (invert_)
        value = !value;
    if (rng.nextBernoulli(noise_))
        value = !value;
    return value;
}

std::unique_ptr<BranchBehavior>
HistoryCorrelatedBehavior::clone() const
{
    return std::make_unique<HistoryCorrelatedBehavior>(*this);
}

ChainBehavior::ChainBehavior(unsigned depth, bool invert, double noise)
    : depth_(depth), invert_(invert), noise_(noise)
{
    if (depth >= 16)
        fatal("ChainBehavior depth must be < 16");
    if (noise < 0.0 || noise > 1.0)
        fatal("ChainBehavior noise must be in [0, 1]");
}

bool
ChainBehavior::nextOutcome(const WorkloadContext &ctx, Rng &rng)
{
    bool value = ctx.pastOutcome(depth_);
    if (invert_)
        value = !value;
    if (rng.nextBernoulli(noise_))
        value = !value;
    return value;
}

std::unique_ptr<BranchBehavior>
ChainBehavior::clone() const
{
    return std::make_unique<ChainBehavior>(*this);
}

} // namespace confsim
