/**
 * @file
 * Per-static-branch outcome models for the synthetic workload generator.
 *
 * The IBS traces the paper used are unavailable, so each synthetic static
 * branch is given a behaviour drawn from the classes real conditional
 * branches fall into:
 *
 *  - loop latches: taken k-1 times then not-taken (trip-count
 *    distributions control how learnable the exit is),
 *  - biased data-dependent branches: i.i.d. Bernoulli with a skewed p,
 *  - periodic patterns: short repeating direction sequences,
 *  - history-correlated branches: a boolean function (parity or
 *    majority) of recent *global* outcomes plus noise — these are what
 *    give global-history predictors and PC^BHR confidence indexing their
 *    edge, exactly the correlation structure refs [7, 13] describe,
 *  - chained branches: echo or invert another recent outcome.
 *
 * Behaviours are stateful (loop position, pattern phase) and deterministic
 * given the Rng handed to them.
 */

#ifndef CONFSIM_WORKLOAD_BRANCH_BEHAVIOR_H
#define CONFSIM_WORKLOAD_BRANCH_BEHAVIOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/state_io.h"
#include "util/rng.h"
#include "util/shift_register.h"

namespace confsim {

/**
 * Mutable execution context shared by all behaviours of one workload:
 * the global actual-outcome history they may correlate with.
 */
class WorkloadContext
{
  public:
    WorkloadContext() : history_(64, 0) {}

    /** Record a resolved outcome into the global history. */
    void recordOutcome(bool taken) { history_.shiftIn(taken); }

    /**
     * @return the i-th most recent global outcome (i = 0 is the
     * previous branch).
     */
    bool
    pastOutcome(unsigned i) const
    {
        return bitOf(history_.value(), i) != 0;
    }

    /** @return the low 64 outcomes as a bit pattern (newest = LSB). */
    std::uint64_t historyValue() const { return history_.value(); }

    /** Clear the history (used by generator reset()). */
    void reset() { history_.clear(); }

    /** Restore a historyValue() snapshot (checkpoint resume). */
    void setHistory(std::uint64_t value) { history_.set(value); }

  private:
    ShiftRegister history_;
};

/** Abstract per-branch outcome model. */
class BranchBehavior
{
  public:
    virtual ~BranchBehavior() = default;

    /**
     * Produce this branch's next outcome.
     *
     * @param ctx Global outcome history (already includes all previous
     *            branches, not yet this one).
     * @param rng Deterministic noise source.
     * @return true if the branch is taken.
     */
    virtual bool nextOutcome(const WorkloadContext &ctx, Rng &rng) = 0;

    /** Restore initial state (loop counters, pattern phase). */
    virtual void reset() = 0;

    /** Deep copy (the CFG clones behaviours on generator reset). */
    virtual std::unique_ptr<BranchBehavior> clone() const = 0;

    /**
     * Checkpoint mutable state. Most behaviours are stateless (all
     * their variation comes from the shared Rng, which the workload
     * generator checkpoints); loop position and pattern phase are
     * the exceptions and override these.
     */
    virtual void saveState(StateWriter &out) const { (void)out; }

    /** Restore a saveState() snapshot. */
    virtual void loadState(StateReader &in) { (void)in; }
};

/** i.i.d. Bernoulli branch: taken with fixed probability. */
class BiasedBehavior : public BranchBehavior
{
  public:
    /** @param p_taken Probability of taken, in [0, 1]. */
    explicit BiasedBehavior(double p_taken);

    bool nextOutcome(const WorkloadContext &ctx, Rng &rng) override;
    void reset() override {}
    std::unique_ptr<BranchBehavior> clone() const override;

    /** @return the configured taken probability. */
    double takenProbability() const { return pTaken_; }

  private:
    double pTaken_;
};

/** Trip-count distribution shapes for LoopBehavior. */
enum class TripCountModel
{
    Fixed,     //!< always exactly the mean (fully learnable exits)
    Jittered,  //!< uniform in [mean - jitter, mean + jitter]
    Geometric, //!< geometric with the given mean (unlearnable exits)
};

/**
 * Bottom-test loop latch: taken while iterations remain, not-taken once
 * per loop execution (the exit).
 */
class LoopBehavior : public BranchBehavior
{
  public:
    /**
     * @param mean_trip Mean iteration count per loop entry; >= 1.
     * @param model Trip-count distribution.
     * @param jitter Half-width for the Jittered model.
     */
    LoopBehavior(std::uint32_t mean_trip, TripCountModel model,
                 std::uint32_t jitter = 0);

    bool nextOutcome(const WorkloadContext &ctx, Rng &rng) override;
    void reset() override;
    std::unique_ptr<BranchBehavior> clone() const override;

    void
    saveState(StateWriter &out) const override
    {
        out.putU32(remaining_);
        out.putBool(started_);
    }

    void
    loadState(StateReader &in) override
    {
        remaining_ = in.getU32();
        started_ = in.getBool();
    }

  private:
    std::uint32_t drawTripCount(Rng &rng) const;

    std::uint32_t meanTrip_;
    TripCountModel model_;
    std::uint32_t jitter_;
    std::uint32_t remaining_ = 0;
    bool started_ = false;
};

/** Fixed repeating direction pattern (e.g. T T N T T N ...). */
class PatternBehavior : public BranchBehavior
{
  public:
    /**
     * @param pattern Direction sequence; replayed cyclically. Must be
     *        non-empty.
     */
    explicit PatternBehavior(std::vector<bool> pattern);

    bool nextOutcome(const WorkloadContext &ctx, Rng &rng) override;
    void reset() override { phase_ = 0; }
    std::unique_ptr<BranchBehavior> clone() const override;

    void
    saveState(StateWriter &out) const override
    {
        out.putU64(phase_);
    }

    void
    loadState(StateReader &in) override
    {
        phase_ = static_cast<std::size_t>(in.getU64());
    }

  private:
    std::vector<bool> pattern_;
    std::size_t phase_ = 0;
};

/** Boolean combining function for HistoryCorrelatedBehavior. */
enum class CorrelationOp
{
    Parity,   //!< XOR of the tapped outcomes
    Majority, //!< majority vote of the tapped outcomes
    And,      //!< all tapped outcomes taken
};

/**
 * Outcome is a boolean function of recent global outcomes, flipped with
 * a small noise probability. Tap depths are limited to the last 16
 * outcomes so a 16-bit-history predictor can capture them (and a 12-bit
 * one partially cannot — one source of the 64K vs 4K gap).
 */
class HistoryCorrelatedBehavior : public BranchBehavior
{
  public:
    /**
     * @param taps History depths (0 = most recent) the function reads.
     * @param op Combining function.
     * @param noise Probability the functional outcome is inverted.
     * @param invert Statically invert the function (decorrelates
     *        different branches using similar taps).
     */
    HistoryCorrelatedBehavior(std::vector<unsigned> taps,
                              CorrelationOp op, double noise,
                              bool invert = false);

    bool nextOutcome(const WorkloadContext &ctx, Rng &rng) override;
    void reset() override {}
    std::unique_ptr<BranchBehavior> clone() const override;

  private:
    std::vector<unsigned> taps_;
    CorrelationOp op_;
    double noise_;
    bool invert_;
};

/**
 * Echo (or invert) the d-th most recent global outcome with noise —
 * models directly dependent branch pairs such as a repeated test of the
 * same condition.
 */
class ChainBehavior : public BranchBehavior
{
  public:
    /**
     * @param depth Which past outcome to follow (0 = most recent).
     * @param invert Invert the followed outcome.
     * @param noise Probability of deviating.
     */
    ChainBehavior(unsigned depth, bool invert, double noise);

    bool nextOutcome(const WorkloadContext &ctx, Rng &rng) override;
    void reset() override {}
    std::unique_ptr<BranchBehavior> clone() const override;

  private:
    unsigned depth_;
    bool invert_;
    double noise_;
};

} // namespace confsim

#endif // CONFSIM_WORKLOAD_BRANCH_BEHAVIOR_H
