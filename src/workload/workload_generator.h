/**
 * @file
 * The synthetic workload generator: a TraceSource that walks a
 * SyntheticCfg, evaluating each block's branch behaviour and emitting
 * one conditional BranchRecord per step.
 */

#ifndef CONFSIM_WORKLOAD_WORKLOAD_GENERATOR_H
#define CONFSIM_WORKLOAD_WORKLOAD_GENERATOR_H

#include <cstdint>

#include "trace/trace_source.h"
#include "workload/synthetic_cfg.h"

namespace confsim {

/**
 * Streaming generator for one benchmark profile.
 *
 * Deterministic: the CFG structure derives from profile.seed, and the
 * runtime noise stream from a fixed transform of the same seed, so two
 * generators with the same profile and length produce identical traces,
 * and reset() replays the identical stream.
 */
class WorkloadGenerator : public TraceSource
{
  public:
    /**
     * @param profile Benchmark description.
     * @param num_branches Trace length in conditional branches; 0 means
     *        use profile.defaultLength.
     */
    explicit WorkloadGenerator(const BenchmarkProfile &profile,
                               std::uint64_t num_branches = 0);

    bool next(BranchRecord &record) override;
    void reset() override;

    /** @return the generated program graph (for inspection/tests). */
    const SyntheticCfg &cfg() const { return cfg_; }

    /** @return configured trace length in branches. */
    std::uint64_t length() const { return length_; }

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

  private:
    SyntheticCfg cfg_;
    std::uint64_t length_;
    Rng runtimeRng_;
    WorkloadContext context_;
    std::uint32_t currentBlock_ = 0;
    std::uint64_t emitted_ = 0;     //!< conditional records emitted
    bool entryEventPending_ = false; //!< emit the block's leading CTI
};

} // namespace confsim

#endif // CONFSIM_WORKLOAD_WORKLOAD_GENERATOR_H
