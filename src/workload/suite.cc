#include "workload/suite.h"

#include "util/status.h"

namespace confsim {

BenchmarkSuite::BenchmarkSuite(std::vector<BenchmarkProfile> profiles,
                               std::uint64_t length)
    : profiles_(std::move(profiles)), length_(length)
{
    if (profiles_.empty())
        fatal("benchmark suite cannot be empty");
}

BenchmarkSuite
BenchmarkSuite::ibs(std::uint64_t branches_per_benchmark)
{
    return BenchmarkSuite(ibsProfiles(), branches_per_benchmark);
}

BenchmarkSuite
BenchmarkSuite::ibsSmall(std::uint64_t branches_per_benchmark)
{
    return ibsSubset({"jpeg", "real_gcc", "groff"},
                     branches_per_benchmark);
}

BenchmarkSuite
BenchmarkSuite::ibsSubset(const std::vector<std::string> &names,
                          std::uint64_t branches_per_benchmark)
{
    std::vector<BenchmarkProfile> profiles;
    for (const auto &name : names)
        profiles.push_back(ibsProfile(name));
    return BenchmarkSuite(std::move(profiles), branches_per_benchmark);
}

std::vector<std::string>
BenchmarkSuite::names() const
{
    std::vector<std::string> out;
    for (const auto &profile : profiles_)
        out.push_back(profile.name);
    return out;
}

std::unique_ptr<WorkloadGenerator>
BenchmarkSuite::makeGenerator(std::size_t index) const
{
    if (index >= profiles_.size())
        fatal("benchmark index out of range");
    return std::make_unique<WorkloadGenerator>(profiles_[index], length_);
}

} // namespace confsim
