#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdlib>

#include "util/error.h"

namespace confsim {

namespace {

/** Split @p text on @p sep, dropping empty pieces. */
std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find(sep, start);
        const std::string piece =
            text.substr(start, end == std::string::npos ? std::string::npos
                                                        : end - start);
        if (!piece.empty())
            out.push_back(piece);
        if (end == std::string::npos)
            break;
        start = end + 1;
    }
    return out;
}

std::uint64_t
parseCount(const std::string &rule, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        fatal(ErrorCategory::kConfig,
              "fault plan rule '" + rule + "': bad number '" + value + "'");
    return static_cast<std::uint64_t>(parsed);
}

FaultAction
parseAction(const std::string &rule, const std::string &name)
{
    if (name == "throw")
        return FaultAction::kThrow;
    if (name == "fail")
        return FaultAction::kFail;
    if (name == "crash")
        return FaultAction::kCrash;
    if (name == "enospc")
        return FaultAction::kEnospc;
    if (name == "hang")
        return FaultAction::kHang;
    fatal(ErrorCategory::kConfig,
          "fault plan rule '" + rule + "': unknown action '" + name +
              "' (expected throw|fail|crash|enospc|hang)");
}

/** Parse `site:trigger[:action]` into a FaultRule. */
FaultRule
parseRule(const std::string &text)
{
    const std::vector<std::string> parts = split(text, ':');
    if (parts.size() < 2 || parts.size() > 3)
        fatal(ErrorCategory::kConfig,
              "fault plan rule '" + text +
                  "': expected site:trigger[:action]");

    FaultRule rule;
    const std::string &site = parts[0];
    if (site == "decode")
        rule.site = FaultSite::kDecodeBatch;
    else if (site == "shard")
        rule.site = FaultSite::kShardReplay;
    else if (site == "ckpt")
        rule.site = FaultSite::kCheckpointWrite;
    else if (site == "sink")
        rule.site = FaultSite::kSinkFlush;
    else
        fatal(ErrorCategory::kConfig,
              "fault plan rule '" + text + "': unknown site '" + site +
                  "' (expected decode|shard|ckpt|sink)");

    bool sawCfg = false;
    for (const std::string &kv : split(parts[1], ',')) {
        const std::size_t eq = kv.find('=');
        const std::string name = kv.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? std::string() : kv.substr(eq + 1);
        if (name == "batch" && rule.site == FaultSite::kDecodeBatch) {
            rule.at = parseCount(text, value);
        } else if (name == "batch" &&
                   rule.site == FaultSite::kShardReplay) {
            rule.at = parseCount(text, value);
        } else if (name == "cfg" && rule.site == FaultSite::kShardReplay) {
            rule.key = parseCount(text, value);
            sawCfg = true;
        } else if (name == "write" &&
                   rule.site == FaultSite::kCheckpointWrite) {
            rule.at = parseCount(text, value);
        } else if (name == "flush" && rule.site == FaultSite::kSinkFlush) {
            rule.at = value.empty() ? 1 : parseCount(text, value);
        } else {
            fatal(ErrorCategory::kConfig,
                  "fault plan rule '" + text + "': unknown trigger key '" +
                      name + "' for site '" + site + "'");
        }
    }
    if (rule.site == FaultSite::kShardReplay && !sawCfg)
        fatal(ErrorCategory::kConfig,
              "fault plan rule '" + text + "': shard rules require cfg=N");
    if (rule.at == 0)
        fatal(ErrorCategory::kConfig,
              "fault plan rule '" + text +
                  "': occurrence counts are 1-based, got 0");

    rule.action = parts.size() == 3 ? parseAction(text, parts[2])
                                    : FaultAction::kThrow;
    return rule;
}

std::string
counterKey(FaultSite site, const std::string &scope, std::uint64_t key)
{
    return std::string(toString(site)) + '\x1f' + scope + '\x1f' +
           std::to_string(key);
}

[[noreturn]] void
raiseFault(const FaultHit &hit)
{
    const std::string where = std::string(toString(hit.site)) +
                              " (scope '" + hit.scope + "', occurrence " +
                              std::to_string(hit.occurrence) + ")";
    switch (hit.action) {
    case FaultAction::kEnospc:
        throw Error(ErrorCategory::kResource,
                    "injected fault: no space left on device (ENOSPC) at " +
                        where);
    case FaultAction::kCrash:
        throw Error(ErrorCategory::kInternal,
                    "injected fault: simulated crash at " + where);
    default:
        break;
    }
    ErrorCategory category = ErrorCategory::kInternal;
    switch (hit.site) {
    case FaultSite::kDecodeBatch:
        category = ErrorCategory::kTrace;
        break;
    case FaultSite::kCheckpointWrite:
        category = ErrorCategory::kCheckpoint;
        break;
    case FaultSite::kSinkFlush:
        category = ErrorCategory::kResource;
        break;
    case FaultSite::kShardReplay:
        category = ErrorCategory::kInternal;
        break;
    }
    throw Error(category, "injected fault: failure at " + where);
}

} // namespace

const char *
toString(FaultSite site)
{
    switch (site) {
    case FaultSite::kDecodeBatch: return "decode";
    case FaultSite::kShardReplay: return "shard";
    case FaultSite::kCheckpointWrite: return "ckpt";
    case FaultSite::kSinkFlush: return "sink";
    }
    return "unknown";
}

const char *
toString(FaultAction action)
{
    switch (action) {
    case FaultAction::kNone: return "none";
    case FaultAction::kThrow: return "throw";
    case FaultAction::kFail: return "fail";
    case FaultAction::kCrash: return "crash";
    case FaultAction::kEnospc: return "enospc";
    case FaultAction::kHang: return "hang";
    }
    return "unknown";
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    plan.spec_ = spec;
    for (const std::string &rule : split(spec, ';'))
        plan.rules_.push_back(parseRule(rule));
    return plan;
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::install(FaultPlan plan)
{
    std::lock_guard<std::mutex> lock(mutex_);
    pending_ = plan.rules();
    counters_.clear();
    hits_.clear();
    armed_.store(!pending_.empty(), std::memory_order_relaxed);
}

void
FaultInjector::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.clear();
    counters_.clear();
    hits_.clear();
    observer_ = nullptr;
    armed_.store(false, std::memory_order_relaxed);
}

void
FaultInjector::setObserver(FaultObserver observer)
{
    std::lock_guard<std::mutex> lock(mutex_);
    observer_ = std::move(observer);
}

std::uint64_t
FaultInjector::injectedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_.size();
}

std::vector<FaultHit>
FaultInjector::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

FaultAction
FaultInjector::fire(FaultSite site, const std::string &scope,
                    std::uint64_t key)
{
    FaultHit hit;
    FaultObserver observer;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (pending_.empty())
            return FaultAction::kNone;
        const std::uint64_t count = ++counters_[counterKey(site, scope, key)];
        const auto match =
            std::find_if(pending_.begin(), pending_.end(),
                         [&](const FaultRule &rule) {
                             return rule.site == site && rule.at == count &&
                                    (rule.key == FaultRule::kAnyKey ||
                                     rule.key == key);
                         });
        if (match == pending_.end())
            return FaultAction::kNone;
        hit.site = site;
        hit.action = match->action;
        hit.scope = scope;
        hit.key = key;
        hit.occurrence = count;
        pending_.erase(match);
        hits_.push_back(hit);
        if (pending_.empty())
            armed_.store(false, std::memory_order_relaxed);
        observer = observer_;
    }
    if (observer)
        observer(hit);
    if (hit.action == FaultAction::kHang || hit.action == FaultAction::kNone)
        return hit.action;
    raiseFault(hit);
}

ScopedFaultPlan::ScopedFaultPlan(const std::string &spec,
                                 FaultObserver observer)
    : ScopedFaultPlan(FaultPlan::parse(spec), std::move(observer))
{}

ScopedFaultPlan::ScopedFaultPlan(FaultPlan plan, FaultObserver observer)
{
    FaultInjector &injector = FaultInjector::instance();
    injector.install(std::move(plan));
    injector.setObserver(std::move(observer));
}

ScopedFaultPlan::~ScopedFaultPlan()
{
    FaultInjector::instance().clear();
}

} // namespace confsim
