#include "fault/fault_injection.h"

#include <array>

#include "ckpt/state_io.h"

#include "util/error.h"
#include "util/status.h"

namespace confsim {

FaultInjectingTraceSource::FaultInjectingTraceSource(TraceSource &inner,
                                                     FaultSpec spec)
    : inner_(&inner), spec_(spec), rng_(spec.seed)
{}

FaultInjectingTraceSource::FaultInjectingTraceSource(
    std::unique_ptr<TraceSource> inner, FaultSpec spec)
    : owned_(std::move(inner)), inner_(owned_.get()), spec_(spec),
      rng_(spec.seed)
{
    if (!inner_)
        fatal(ErrorCategory::kConfig, "FaultInjectingTraceSource: null inner source");
}

bool
FaultInjectingTraceSource::next(BranchRecord &record)
{
    if (spec_.truncateAfter != 0 &&
        delivered_ >= spec_.truncateAfter) {
        if (!stats_.truncated && hook_)
            hook_("truncate", delivered_);
        stats_.truncated = true;
        return false;
    }
    if (spec_.failAfter != 0 && delivered_ >= spec_.failAfter) {
        if (hook_)
            hook_("hard_fail", delivered_);
        fatal(ErrorCategory::kTrace, "injected fault: trace stream corrupt after " +
              std::to_string(delivered_) + " records");
    }
    for (;;) {
        BranchRecord r;
        if (havePending_) {
            r = pending_;
            havePending_ = false;
        } else if (!inner_->next(r)) {
            return false;
        }
        if (spec_.dropProb > 0.0 &&
            rng_.nextBernoulli(spec_.dropProb)) {
            injected(stats_.drops, "drop");
            continue;
        }
        if (spec_.duplicateProb > 0.0 &&
            rng_.nextBernoulli(spec_.duplicateProb)) {
            // The copy re-enters the fault pipeline next call, so a
            // duplicate can itself be corrupted (or dropped) again.
            pending_ = r;
            havePending_ = true;
            injected(stats_.duplicates, "duplicate");
        }
        if (spec_.pcBitFlipProb > 0.0 &&
            rng_.nextBernoulli(spec_.pcBitFlipProb)) {
            r.pc ^= std::uint64_t{1} << rng_.nextBelow(64);
            injected(stats_.pcFlips, "pc_bit_flip");
        }
        if (spec_.targetBitFlipProb > 0.0 &&
            rng_.nextBernoulli(spec_.targetBitFlipProb)) {
            r.target ^= std::uint64_t{1} << rng_.nextBelow(64);
            injected(stats_.targetFlips, "target_bit_flip");
        }
        if (spec_.takenFlipProb > 0.0 &&
            rng_.nextBernoulli(spec_.takenFlipProb)) {
            r.taken = !r.taken;
            injected(stats_.takenFlips, "taken_flip");
        }
        record = r;
        ++delivered_;
        return true;
    }
}

void
FaultInjectingTraceSource::reset()
{
    inner_->reset();
    rng_ = Rng(spec_.seed);
    stats_ = FaultStats{};
    delivered_ = 0;
    havePending_ = false;
}


bool
FaultInjectingTraceSource::checkpointable() const
{
    return inner_->checkpointable();
}

void
FaultInjectingTraceSource::saveState(StateWriter &out) const
{
    const std::array<std::uint64_t, 4> words = rng_.stateWords();
    for (const std::uint64_t word : words)
        out.putU64(word);
    out.putU64(stats_.pcFlips);
    out.putU64(stats_.targetFlips);
    out.putU64(stats_.takenFlips);
    out.putU64(stats_.drops);
    out.putU64(stats_.duplicates);
    out.putBool(stats_.truncated);
    out.putU64(delivered_);
    out.putBool(havePending_);
    out.putU64(pending_.pc);
    out.putU64(pending_.target);
    out.putBool(pending_.taken);
    out.putU8(static_cast<std::uint8_t>(pending_.type));
    inner_->saveState(out);
}

void
FaultInjectingTraceSource::loadState(StateReader &in)
{
    std::array<std::uint64_t, 4> words;
    for (std::uint64_t &word : words)
        word = in.getU64();
    rng_.setStateWords(words);
    stats_.pcFlips = in.getU64();
    stats_.targetFlips = in.getU64();
    stats_.takenFlips = in.getU64();
    stats_.drops = in.getU64();
    stats_.duplicates = in.getU64();
    stats_.truncated = in.getBool();
    delivered_ = in.getU64();
    havePending_ = in.getBool();
    pending_.pc = in.getU64();
    pending_.target = in.getU64();
    pending_.taken = in.getBool();
    pending_.type = static_cast<BranchType>(in.getU8());
    inner_->loadState(in);
}

} // namespace confsim
