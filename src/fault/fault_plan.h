/**
 * @file
 * Deterministic fault plane: a parsed FaultPlan armes the process-wide
 * FaultInjector, whose hooks are compiled into the decode-ahead
 * producer, sweep worker shards, CheckpointStore writes, and telemetry
 * sinks. With no plan installed every hook is a single relaxed atomic
 * load, so production runs pay nothing.
 *
 * Grammar (CLI `--fault-plan` / env `CONFSIM_FAULT_PLAN`):
 *
 *   plan    := rule (';' rule)*
 *   rule    := site ':' trigger [':' action]
 *   site    := decode | shard | ckpt | sink
 *   trigger := site-specific comma-separated key=value pairs
 *   action  := throw | fail | crash | enospc | hang   (default: throw)
 *
 * Triggers (all occurrence counts are 1-based and counted per scope,
 * where a scope is one benchmark run / one checkpoint store label):
 *
 *   decode:batch=N          fail decoding the Nth record batch
 *   shard:cfg=C[,batch=N]   fail config C's Nth replayed batch (N=1)
 *   ckpt:write=N            fail the Nth checkpoint-store write
 *   sink:flush[=N]          fail the Nth telemetry sink flush (N=1)
 *
 * Examples: `decode:batch=100:throw`, `ckpt:write=3:enospc`,
 * `shard:cfg=5:crash`, `sink:flush:fail`, and compositions such as
 * `shard:cfg=1,batch=2:crash;ckpt:write=1:enospc`.
 *
 * Each rule fires exactly once (the first scope to reach its trigger
 * wins); determinism therefore requires serial benchmark scheduling or
 * a single-benchmark run, which is what the chaos suite and the CI
 * smoke job use. Actions map onto the error taxonomy: throw/fail raise
 * the site's natural category (decode→kTrace, shard→kInternal,
 * ckpt→kCheckpoint, sink→kResource), enospc raises kResource with
 * ENOSPC wording, crash raises kInternal, and hang is returned to the
 * call site, which parks cooperatively until the watchdog deadline or
 * cancellation unwinds it.
 */

#ifndef CONFSIM_FAULT_FAULT_PLAN_H
#define CONFSIM_FAULT_FAULT_PLAN_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace confsim {

enum class FaultSite : std::uint8_t {
    kDecodeBatch = 0,
    kShardReplay,
    kCheckpointWrite,
    kSinkFlush,
};

/** Stable name used in telemetry counters (`fault.injected.<site>`). */
const char *toString(FaultSite site);

enum class FaultAction : std::uint8_t {
    kNone = 0,
    kThrow,  ///< raise the site's natural error category
    kFail,   ///< synonym of kThrow (reads better for sink faults)
    kCrash,  ///< raise kInternal, wording mimics an unexpected abort
    kEnospc, ///< raise kResource with ENOSPC wording
    kHang,   ///< returned to caller; caller parks until unwound
};

const char *toString(FaultAction action);

/** One parsed rule. key discriminates shard rules by config index
 *  (kAnyKey elsewhere); `at` is the 1-based occurrence to fire on. */
struct FaultRule {
    static constexpr std::uint64_t kAnyKey = ~std::uint64_t{0};

    FaultSite site = FaultSite::kDecodeBatch;
    std::uint64_t key = kAnyKey;
    std::uint64_t at = 1;
    FaultAction action = FaultAction::kThrow;
};

/** An immutable parsed schedule of FaultRules. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Parse @p spec; fatal(kConfig, ...) on any grammar violation.
     *  An empty spec yields an empty plan. */
    static FaultPlan parse(const std::string &spec);

    bool empty() const { return rules_.empty(); }
    const std::vector<FaultRule> &rules() const { return rules_; }
    const std::string &spec() const { return spec_; }

  private:
    std::vector<FaultRule> rules_;
    std::string spec_;
};

/** Description of one injected fault, passed to the observer before
 *  the corresponding error (if any) is raised. */
struct FaultHit {
    FaultSite site = FaultSite::kDecodeBatch;
    FaultAction action = FaultAction::kThrow;
    std::string scope;              ///< benchmark / store label
    std::uint64_t key = 0;          ///< shard config index, else 0
    std::uint64_t occurrence = 0;   ///< 1-based trigger count hit
};

using FaultObserver = std::function<void(const FaultHit &)>;

/**
 * Process-wide injector. install() arms it with a plan; every hook
 * calls fire(), which counts one occurrence at (site, scope, key) and,
 * when a pending rule's trigger is reached, records the hit, notifies
 * the observer, and either throws the mapped Error (throw/fail/crash/
 * enospc) or returns kHang for the caller to act on. Disarmed (the
 * common case), fire() is never reached: callers gate on armed().
 *
 * Thread-safe: counters and rule state live under one mutex; armed()
 * is a relaxed atomic so the fast path stays branch-plus-load.
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Arm with @p plan, resetting all counters and hit history. */
    void install(FaultPlan plan);

    /** Disarm and clear counters, hit history, and observer. */
    void clear();

    bool
    armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /**
     * Count one occurrence of @p site in @p scope (key @p key) and
     * fire any matching pending rule. Throws the mapped Error for
     * throwing actions; returns kHang or kNone otherwise.
     */
    FaultAction fire(FaultSite site, const std::string &scope,
                     std::uint64_t key = 0);

    /** Observer invoked (under no lock) for every injected fault. */
    void setObserver(FaultObserver observer);

    /** Total faults injected since install(). */
    std::uint64_t injectedCount() const;

    /** Hits recorded since install(), in injection order. */
    std::vector<FaultHit> hits() const;

  private:
    FaultInjector() = default;

    std::atomic<bool> armed_{false};
    mutable std::mutex mutex_;
    std::vector<FaultRule> pending_;
    std::map<std::string, std::uint64_t> counters_;
    std::vector<FaultHit> hits_;
    FaultObserver observer_;
};

/** RAII plan installation for tests and CLI main(): installs on
 *  construction, restores the disarmed state on destruction. */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const std::string &spec,
                             FaultObserver observer = nullptr);
    explicit ScopedFaultPlan(FaultPlan plan,
                             FaultObserver observer = nullptr);
    ~ScopedFaultPlan();

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

} // namespace confsim

#endif // CONFSIM_FAULT_FAULT_PLAN_H
