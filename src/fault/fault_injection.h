/**
 * @file
 * Deterministic fault injection for trace streams.
 *
 * FaultInjectingTraceSource decorates any TraceSource and corrupts the
 * stream on its way through: single-bit flips in pc/target, direction
 * flips, record drops and duplicates, early truncation, and a simulated
 * hard failure (the kind a strict CBT2 reader raises on a CRC
 * mismatch). All corruption is drawn from a seeded Rng, so a given
 * (inner stream, FaultSpec) pair always produces the identical faulty
 * stream — reset() replays it bit-for-bit.
 *
 * Two uses: end-to-end testing of the I/O hardening and RunPolicy error
 * isolation, and the robustness ablation in
 * examples/robustness_ablation.cc showing how the paper's confidence
 * estimators degrade when the branch stream itself is corrupted.
 */

#ifndef CONFSIM_FAULT_FAULT_INJECTION_H
#define CONFSIM_FAULT_FAULT_INJECTION_H

#include <cstdint>
#include <functional>
#include <memory>

#include "trace/trace_source.h"
#include "util/rng.h"

namespace confsim {

/** Per-record fault probabilities and stream-level fault points. */
struct FaultSpec
{
    std::uint64_t seed = 0xFA17ED; //!< Rng seed for all fault draws

    double pcBitFlipProb = 0.0;     //!< flip one random bit of pc
    double targetBitFlipProb = 0.0; //!< flip one random bit of target
    double takenFlipProb = 0.0;     //!< invert the resolved direction
    double dropProb = 0.0;          //!< silently lose the record
    double duplicateProb = 0.0;     //!< deliver the record twice

    /** Deliver at most this many records (0 = no truncation). */
    std::uint64_t truncateAfter = 0;

    /**
     * Throw (via fatal()) once this many records have been delivered
     * (0 = never). Models the hard failure a strict reader raises on
     * corrupt input, so error-isolation paths can be driven without a
     * real corrupt file.
     */
    std::uint64_t failAfter = 0;
};

/** Counts of faults actually injected so far. */
struct FaultStats
{
    std::uint64_t pcFlips = 0;
    std::uint64_t targetFlips = 0;
    std::uint64_t takenFlips = 0;
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    bool truncated = false;

    /** @return total corrupted/lost/duplicated records. */
    std::uint64_t
    total() const
    {
        return pcFlips + targetFlips + takenFlips + drops + duplicates;
    }
};

/**
 * Observer invoked once per injected fault, with the fault kind
 * ("pc_bit_flip", "target_bit_flip", "taken_flip", "drop",
 * "duplicate", "truncate", "hard_fail") and the count of records
 * delivered so far (i.e. the stream position the fault hit). Wired by
 * SuiteRunner to the telemetry event stream so every injected fault
 * is observable in the run's JSONL.
 */
using FaultEventHook =
    std::function<void(const char *kind, std::uint64_t delivered)>;

/** TraceSource decorator that injects FaultSpec faults. */
class FaultInjectingTraceSource : public TraceSource
{
  public:
    /** Decorate @p inner (not owned; must outlive this). */
    FaultInjectingTraceSource(TraceSource &inner, FaultSpec spec);

    /** Decorate and own @p inner; calls fatal() if it is null. */
    FaultInjectingTraceSource(std::unique_ptr<TraceSource> inner,
                              FaultSpec spec);

    bool next(BranchRecord &record) override;

    /** Rewind the inner source and replay the identical fault stream. */
    void reset() override;

    /** @return faults injected since construction or the last reset(). */
    const FaultStats &stats() const { return stats_; }

    /** @return records delivered since construction or last reset(). */
    std::uint64_t delivered() const { return delivered_; }

    bool checkpointable() const override;
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

    /** Install a per-fault observer (empty = none). */
    void setEventHook(FaultEventHook hook)
    {
        hook_ = std::move(hook);
    }

  private:
    /** Count a fault and notify the hook, if any. */
    void
    injected(std::uint64_t &stat, const char *kind)
    {
        ++stat;
        if (hook_)
            hook_(kind, delivered_);
    }

    std::unique_ptr<TraceSource> owned_;
    TraceSource *inner_;
    FaultSpec spec_;
    Rng rng_;
    FaultStats stats_;
    FaultEventHook hook_;
    std::uint64_t delivered_ = 0;
    bool havePending_ = false;
    BranchRecord pending_;
};

} // namespace confsim

#endif // CONFSIM_FAULT_FAULT_INJECTION_H
