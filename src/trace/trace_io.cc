#include "trace/trace_io.h"

#include <array>
#include <cstdio>

#include "util/status.h"

namespace confsim {

namespace {

constexpr std::array<char, 4> kMagic = {'C', 'B', 'T', '1'};
constexpr std::size_t kHeaderSize = 12;

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary)
{
    if (!out_)
        fatal("cannot open trace file for writing: " + path);
    out_.write(kMagic.data(), kMagic.size());
    // Placeholder count; patched by finish().
    const std::uint64_t zero = 0;
    out_.write(reinterpret_cast<const char *>(&zero), sizeof(zero));
}

void
TraceWriter::append(const BranchRecord &record)
{
    if (finished_)
        panic("TraceWriter::append after finish");
    const std::uint64_t pc_word = record.pc >> 2;
    const std::uint64_t target_word = record.target >> 2;
    writeVarint(zigZagEncode(
        static_cast<std::int64_t>(pc_word - prevPcWord_)));
    writeVarint(zigZagEncode(
        static_cast<std::int64_t>(target_word - pc_word)));
    const std::uint8_t flags =
        (record.taken ? 1 : 0) |
        (static_cast<std::uint8_t>(record.type) << 1);
    out_.put(static_cast<char>(flags));
    prevPcWord_ = pc_word;
    ++count_;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    out_.seekp(kMagic.size());
    out_.write(reinterpret_cast<const char *>(&count_), sizeof(count_));
    out_.close();
    if (!out_)
        fatal("error finalizing trace file");
}

TraceWriter::~TraceWriter()
{
    if (!finished_)
        finish();
}

void
TraceWriter::writeVarint(std::uint64_t value)
{
    while (value >= 0x80) {
        out_.put(static_cast<char>((value & 0x7F) | 0x80));
        value >>= 7;
    }
    out_.put(static_cast<char>(value));
}

TraceFileReader::TraceFileReader(const std::string &path)
    : in_(path, std::ios::binary), path_(path)
{
    if (!in_)
        fatal("cannot open trace file: " + path);
    readHeader();
}

void
TraceFileReader::readHeader()
{
    std::array<char, 4> magic{};
    in_.read(magic.data(), magic.size());
    if (!in_ || magic != kMagic)
        fatal("not a CBT1 trace file: " + path_);
    in_.read(reinterpret_cast<char *>(&count_), sizeof(count_));
    if (!in_)
        fatal("truncated trace header: " + path_);
}

bool
TraceFileReader::next(BranchRecord &record)
{
    if (produced_ >= count_)
        return false;
    const std::int64_t pc_delta = zigZagDecode(readVarint());
    const std::uint64_t pc_word =
        prevPcWord_ + static_cast<std::uint64_t>(pc_delta);
    const std::int64_t target_delta = zigZagDecode(readVarint());
    const std::uint64_t target_word =
        pc_word + static_cast<std::uint64_t>(target_delta);
    const int flags = in_.get();
    if (flags < 0)
        fatal("truncated trace record in " + path_);
    record.pc = pc_word << 2;
    record.target = target_word << 2;
    record.taken = (flags & 1) != 0;
    record.type = static_cast<BranchType>((flags >> 1) & 0x3);
    prevPcWord_ = pc_word;
    ++produced_;
    return true;
}

void
TraceFileReader::reset()
{
    in_.clear();
    in_.seekg(kHeaderSize);
    produced_ = 0;
    prevPcWord_ = 0;
}

std::uint64_t
TraceFileReader::readVarint()
{
    std::uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
        const int byte = in_.get();
        if (byte < 0)
            fatal("truncated varint in trace file " + path_);
        value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0)
            break;
        shift += 7;
        if (shift >= 64)
            fatal("overlong varint in trace file " + path_);
    }
    return value;
}

TextTraceReader::TextTraceReader(const std::string &path)
    : in_(path), path_(path)
{
    if (!in_)
        fatal("cannot open text trace file: " + path);
}

bool
TextTraceReader::next(BranchRecord &record)
{
    std::string line;
    while (std::getline(in_, line)) {
        ++lineNumber_;
        // Skip blanks and comments.
        std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;

        const auto bad = [this]() -> bool {
            fatal("malformed text trace line " +
                  std::to_string(lineNumber_) + " in " + path_);
        };

        char taken_char = 0;
        int type_value = -1;
        unsigned long long pc = 0;
        unsigned long long target = 0;
        const int fields =
            std::sscanf(line.c_str() + start, "%llx %llx %c %d", &pc,
                        &target, &taken_char, &type_value);
        if (fields != 4)
            return bad();
        if (taken_char != 'T' && taken_char != 'N')
            return bad();
        if (type_value < 0 || type_value > 3)
            return bad();

        record.pc = pc;
        record.target = target;
        record.taken = (taken_char == 'T');
        record.type = static_cast<BranchType>(type_value);
        return true;
    }
    return false;
}

void
TextTraceReader::reset()
{
    in_.clear();
    in_.seekg(0);
    lineNumber_ = 0;
}

std::uint64_t
writeTraceFile(TraceSource &source, const std::string &path)
{
    TraceWriter writer(path);
    BranchRecord record;
    std::uint64_t n = 0;
    while (source.next(record)) {
        writer.append(record);
        ++n;
    }
    writer.finish();
    return n;
}

std::uint64_t
writeTextTrace(TraceSource &source, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open text trace for writing: " + path);
    BranchRecord record;
    std::uint64_t n = 0;
    while (source.next(record)) {
        out << std::hex << "0x" << record.pc << " 0x" << record.target
            << std::dec << ' ' << (record.taken ? 'T' : 'N') << ' '
            << static_cast<int>(record.type) << '\n';
        ++n;
    }
    return n;
}

} // namespace confsim
