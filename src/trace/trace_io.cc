#include "trace/trace_io.h"

#include <array>
#include <cstdio>

#include "util/crc32.h"
#include "util/error.h"
#include "util/status.h"

namespace confsim {

namespace {

constexpr std::array<char, 4> kMagic1 = {'C', 'B', 'T', '1'};
constexpr std::array<char, 4> kMagic2 = {'C', 'B', 'T', '2'};
constexpr std::array<char, 4> kChunkMarker = {'C', 'H', 'N', 'K'};
constexpr std::size_t kHeader1Size = 12;
constexpr std::size_t kHeader2Size = 16;

/**
 * Upper bound a well-formed chunk payload can have: kChunkRecords
 * records of at most 21 bytes (two 10-byte varints + flags). Anything
 * larger is a corrupt size field, not a real chunk.
 */
constexpr std::uint32_t kMaxChunkPayload =
    static_cast<std::uint32_t>(TraceWriter::kChunkRecords * 21);

void
writeLe32(std::ofstream &out, std::uint32_t value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

} // namespace

TraceWriter::TraceWriter(const std::string &path, TraceFormat format)
    : out_(path, std::ios::binary), path_(path), format_(format)
{
    if (!out_)
        fatal(ErrorCategory::kTrace, "cannot open trace file for writing: " + path);
    const auto &magic =
        format_ == TraceFormat::kCbt1 ? kMagic1 : kMagic2;
    out_.write(magic.data(), magic.size());
    // Placeholder count (and, for CBT2, its CRC); patched by finish().
    const std::uint64_t zero = 0;
    out_.write(reinterpret_cast<const char *>(&zero), sizeof(zero));
    if (format_ == TraceFormat::kCbt2) {
        writeLe32(out_, 0);
        chunk_.reserve(kChunkRecords * 4);
    }
}

void
TraceWriter::append(const BranchRecord &record)
{
    if (finished_)
        panic("TraceWriter::append after finish");
    const std::uint64_t pc_word = record.pc >> 2;
    const std::uint64_t target_word = record.target >> 2;
    appendVarint(zigZagEncode(
        static_cast<std::int64_t>(pc_word - prevPcWord_)));
    appendVarint(zigZagEncode(
        static_cast<std::int64_t>(target_word - pc_word)));
    const std::uint8_t flags =
        (record.taken ? 1 : 0) |
        (static_cast<std::uint8_t>(record.type) << 1);
    prevPcWord_ = pc_word;
    ++count_;
    if (format_ == TraceFormat::kCbt2) {
        chunk_.push_back(static_cast<char>(flags));
        // flushChunk() restarts the delta chain, so it must run after
        // prevPcWord_ is updated for this record.
        if (++chunkRecords_ == kChunkRecords)
            flushChunk();
    } else {
        out_.put(static_cast<char>(flags));
    }
}

void
TraceWriter::flushChunk()
{
    if (chunkRecords_ == 0)
        return;
    out_.write(kChunkMarker.data(), kChunkMarker.size());
    writeLe32(out_, static_cast<std::uint32_t>(chunk_.size()));
    writeLe32(out_, static_cast<std::uint32_t>(chunkRecords_));
    out_.write(chunk_.data(),
               static_cast<std::streamsize>(chunk_.size()));
    writeLe32(out_, crc32(chunk_.data(), chunk_.size()));
    chunk_.clear();
    chunkRecords_ = 0;
    // The delta chain restarts per chunk so chunks decode
    // independently (a skipped chunk must not poison its successor).
    prevPcWord_ = 0;
}

void
TraceWriter::finish()
{
    if (finished_)
        fatal(ErrorCategory::kTrace, "TraceWriter::finish called twice for " + path_);
    finishImpl();
}

void
TraceWriter::finishImpl()
{
    finished_ = true;
    if (format_ == TraceFormat::kCbt2)
        flushChunk();
    out_.seekp(kMagic1.size());
    out_.write(reinterpret_cast<const char *>(&count_), sizeof(count_));
    if (format_ == TraceFormat::kCbt2)
        writeLe32(out_, crc32(&count_, sizeof(count_)));
    out_.close();
    if (!out_)
        fatal(ErrorCategory::kTrace, "error finalizing trace file: " + path_);
}

TraceWriter::~TraceWriter()
{
    if (finished_)
        return;
    // Auto-finish so the header never claims a stale record count, but
    // never throw out of a destructor (we may be unwinding already).
    try {
        finishImpl();
    } catch (...) {
    }
}

void
TraceWriter::appendVarint(std::uint64_t value)
{
    if (format_ == TraceFormat::kCbt2) {
        while (value >= 0x80) {
            chunk_.push_back(static_cast<char>((value & 0x7F) | 0x80));
            value >>= 7;
        }
        chunk_.push_back(static_cast<char>(value));
    } else {
        while (value >= 0x80) {
            out_.put(static_cast<char>((value & 0x7F) | 0x80));
            value >>= 7;
        }
        out_.put(static_cast<char>(value));
    }
}

TraceFileReader::TraceFileReader(const std::string &path,
                                 RecoveryMode mode)
    : in_(path, std::ios::binary), path_(path), mode_(mode)
{
    if (!in_)
        fatal(ErrorCategory::kTrace, "cannot open trace file: " + path);
    readHeader();
}

void
TraceFileReader::readHeader()
{
    std::array<char, 4> magic{};
    in_.read(magic.data(), magic.size());
    if (!in_)
        fatal(ErrorCategory::kTrace, "not a CBT trace file (short header): " + path_);
    if (magic == kMagic1) {
        format_ = TraceFormat::kCbt1;
    } else if (magic == kMagic2) {
        format_ = TraceFormat::kCbt2;
    } else {
        fatal(ErrorCategory::kTrace, "not a CBT1/CBT2 trace file: " + path_);
    }
    in_.read(reinterpret_cast<char *>(&count_), sizeof(count_));
    if (!in_)
        fatal(ErrorCategory::kTrace, "truncated trace header: " + path_);
    if (format_ == TraceFormat::kCbt2) {
        std::uint32_t header_crc = 0;
        in_.read(reinterpret_cast<char *>(&header_crc),
                 sizeof(header_crc));
        if (!in_)
            fatal(ErrorCategory::kTrace, "truncated trace header: " + path_);
        if (crc32(&count_, sizeof(count_)) != header_crc) {
            if (mode_ == RecoveryMode::kStrict) {
                fatal(ErrorCategory::kTrace, "corrupt trace header (record-count CRC "
                      "mismatch): " + path_);
            }
            // Recoverable: read what the chunks hold and account for
            // drops from per-chunk counts instead of the header.
            countTrusted_ = false;
        }
    }
}

void
TraceFileReader::corrupt(const std::string &what)
{
    fatal(ErrorCategory::kTrace, what + " (chunk " + std::to_string(chunkIndex_) +
          ", record " + std::to_string(produced_) + ") in " + path_);
}

void
TraceFileReader::skipped(const std::string &what, std::uint64_t dropped)
{
    if (corruptionHook_)
        corruptionHook_(what, chunkIndex_, dropped);
}

bool
TraceFileReader::next(BranchRecord &record)
{
    if (exhausted_)
        return false;
    return format_ == TraceFormat::kCbt1 ? nextCbt1(record)
                                         : nextCbt2(record);
}

bool
TraceFileReader::nextCbt1(BranchRecord &record)
{
    if (produced_ >= count_) {
        exhausted_ = true;
        return false;
    }
    const std::int64_t pc_delta = zigZagDecode(readVarintStream());
    const std::uint64_t pc_word =
        prevPcWord_ + static_cast<std::uint64_t>(pc_delta);
    const std::int64_t target_delta = zigZagDecode(readVarintStream());
    const std::uint64_t target_word =
        pc_word + static_cast<std::uint64_t>(target_delta);
    const int flags = in_.get();
    if (flags < 0) {
        fatal(ErrorCategory::kTrace, "truncated trace record " + std::to_string(produced_) +
              " in " + path_);
    }
    record.pc = pc_word << 2;
    record.target = target_word << 2;
    record.taken = (flags & 1) != 0;
    record.type = static_cast<BranchType>((flags >> 1) & 0x3);
    prevPcWord_ = pc_word;
    ++produced_;
    return true;
}

bool
TraceFileReader::nextCbt2(BranchRecord &record)
{
    for (;;) {
        if (chunkRecordsLeft_ > 0) {
            if (decodeFromChunk(record)) {
                ++produced_;
                return true;
            }
            continue; // chunk abandoned (kSkipCorrupt); try the next
        }
        if (!loadNextChunk()) {
            exhausted_ = true;
            if (mode_ == RecoveryMode::kStrict &&
                produced_ != count_) {
                fatal(ErrorCategory::kTrace, "trace record count mismatch: header promises " +
                      std::to_string(count_) + ", file contains " +
                      std::to_string(produced_) + ": " + path_);
            }
            return false;
        }
    }
}

bool
TraceFileReader::loadNextChunk()
{
    bool have_marker = false;
    for (;;) {
        if (!have_marker) {
            std::array<char, 4> marker{};
            in_.read(marker.data(), marker.size());
            const std::streamsize got = in_.gcount();
            if (got == 0)
                return false; // clean EOF at a chunk boundary
            if (got < 4 || marker != kChunkMarker) {
                const char *what = got < 4 ? "truncated chunk header"
                                           : "bad chunk sync marker";
                if (mode_ == RecoveryMode::kStrict)
                    corrupt(what);
                skipped(what, 0);
                in_.clear();
                if (!resyncToMarker())
                    return false;
            }
        }
        have_marker = false;

        std::uint32_t payload_size = 0;
        std::uint32_t chunk_count = 0;
        in_.read(reinterpret_cast<char *>(&payload_size),
                 sizeof(payload_size));
        in_.read(reinterpret_cast<char *>(&chunk_count),
                 sizeof(chunk_count));
        if (!in_) {
            if (mode_ == RecoveryMode::kStrict)
                corrupt("truncated chunk header");
            return false; // tail lost; header count settles the drops
        }
        // Plausibility: a record encodes to >= 3 bytes, so a count
        // that cannot fit the payload (or an absurd payload size)
        // means the header itself took the hit.
        if (payload_size > kMaxChunkPayload ||
            static_cast<std::uint64_t>(chunk_count) * 3 >
                payload_size) {
            if (mode_ == RecoveryMode::kStrict)
                corrupt("implausible chunk header");
            skipped("implausible chunk header", 0);
            in_.clear();
            if (!resyncToMarker())
                return false;
            have_marker = true;
            continue;
        }

        chunk_.resize(payload_size);
        in_.read(chunk_.data(),
                 static_cast<std::streamsize>(payload_size));
        std::uint32_t footer_crc = 0;
        in_.read(reinterpret_cast<char *>(&footer_crc),
                 sizeof(footer_crc));
        if (!in_) {
            if (mode_ == RecoveryMode::kStrict)
                corrupt("truncated chunk");
            return false;
        }
        ++chunkIndex_;
        if (crc32(chunk_.data(), chunk_.size()) != footer_crc) {
            if (mode_ == RecoveryMode::kStrict)
                corrupt("chunk CRC mismatch");
            skipped("chunk CRC mismatch", chunk_count);
            dropped_ += chunk_count;
            continue; // positioned at the next chunk boundary
        }
        if (chunk_count == 0)
            continue;
        chunkPos_ = 0;
        chunkRecordsLeft_ = chunk_count;
        prevPcWord_ = 0;
        return true;
    }
}

bool
TraceFileReader::resyncToMarker()
{
    // Scan the byte stream for the next "CHNK" sync marker. The four
    // marker bytes are pairwise distinct, so on mismatch the only
    // possible restart is a fresh 'C'.
    std::size_t matched = 0;
    for (;;) {
        const int c = in_.get();
        if (c < 0)
            return false;
        if (c == kChunkMarker[matched]) {
            if (++matched == kChunkMarker.size())
                return true;
        } else {
            matched = (c == kChunkMarker[0]) ? 1 : 0;
        }
    }
}

bool
TraceFileReader::decodeFromChunk(BranchRecord &record)
{
    // The payload passed its CRC, so a decode failure here means the
    // chunk header's record count disagrees with the payload.
    const auto fail = [this](const char *what) -> bool {
        if (mode_ == RecoveryMode::kStrict)
            corrupt(what);
        skipped(what, chunkRecordsLeft_);
        dropped_ += chunkRecordsLeft_; // best effort; the header
                                       // count reconciles the total
        chunkRecordsLeft_ = 0;
        chunkPos_ = chunk_.size();
        return false;
    };

    std::uint64_t raw[2] = {0, 0};
    for (auto &value : raw) {
        unsigned shift = 0;
        unsigned bytes = 0;
        for (;;) {
            if (chunkPos_ >= chunk_.size())
                return fail("record payload exhausted mid-varint");
            const auto byte =
                static_cast<std::uint8_t>(chunk_[chunkPos_++]);
            if (++bytes > 10)
                return fail("overlong varint (> 10 bytes)");
            value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
            if ((byte & 0x80) == 0)
                break;
            shift += 7;
        }
    }
    if (chunkPos_ >= chunk_.size())
        return fail("record payload exhausted before flags");
    const auto flags = static_cast<std::uint8_t>(chunk_[chunkPos_++]);

    const std::uint64_t pc_word =
        prevPcWord_ + static_cast<std::uint64_t>(zigZagDecode(raw[0]));
    const std::uint64_t target_word =
        pc_word + static_cast<std::uint64_t>(zigZagDecode(raw[1]));
    record.pc = pc_word << 2;
    record.target = target_word << 2;
    record.taken = (flags & 1) != 0;
    record.type = static_cast<BranchType>((flags >> 1) & 0x3);
    prevPcWord_ = pc_word;

    if (--chunkRecordsLeft_ == 0 && chunkPos_ != chunk_.size()) {
        if (mode_ == RecoveryMode::kStrict)
            corrupt("chunk record-count cross-check failed "
                    "(unused payload)");
        chunkPos_ = chunk_.size();
    }
    return true;
}

std::uint64_t
TraceFileReader::droppedRecords() const
{
    // With a trusted header, "promised minus delivered" is exact even
    // when resync lost chunks whose own counts were unreadable.
    if (countTrusted_ && exhausted_)
        return count_ > produced_ ? count_ - produced_ : 0;
    return dropped_;
}

void
TraceFileReader::reset()
{
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(
        format_ == TraceFormat::kCbt1 ? kHeader1Size : kHeader2Size));
    produced_ = 0;
    prevPcWord_ = 0;
    exhausted_ = false;
    chunk_.clear();
    chunkPos_ = 0;
    chunkRecordsLeft_ = 0;
    chunkIndex_ = 0;
    dropped_ = 0;
}

std::uint64_t
TraceFileReader::readVarintStream()
{
    std::uint64_t value = 0;
    unsigned shift = 0;
    unsigned bytes = 0;
    for (;;) {
        const int byte = in_.get();
        if (byte < 0) {
            fatal(ErrorCategory::kTrace, "truncated varint in record " +
                  std::to_string(produced_) + " of " + path_);
        }
        if (++bytes > 10) {
            fatal(ErrorCategory::kTrace, "overlong varint (> 10 bytes) in record " +
                  std::to_string(produced_) + " of " + path_);
        }
        value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0)
            break;
        shift += 7;
    }
    return value;
}

TextTraceReader::TextTraceReader(const std::string &path)
    : in_(path), path_(path)
{
    if (!in_)
        fatal(ErrorCategory::kTrace, "cannot open text trace file: " + path);
}

bool
TextTraceReader::next(BranchRecord &record)
{
    std::string line;
    while (std::getline(in_, line)) {
        ++lineNumber_;
        // Skip blanks and comments.
        std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;

        const auto bad = [this]() -> bool {
            fatal(ErrorCategory::kTrace, "malformed text trace line " +
                  std::to_string(lineNumber_) + " in " + path_);
        };

        char taken_char = 0;
        int type_value = -1;
        unsigned long long pc = 0;
        unsigned long long target = 0;
        const int fields =
            std::sscanf(line.c_str() + start, "%llx %llx %c %d", &pc,
                        &target, &taken_char, &type_value);
        if (fields != 4)
            return bad();
        if (taken_char != 'T' && taken_char != 'N')
            return bad();
        if (type_value < 0 || type_value > 3)
            return bad();

        record.pc = pc;
        record.target = target;
        record.taken = (taken_char == 'T');
        record.type = static_cast<BranchType>(type_value);
        return true;
    }
    return false;
}

void
TextTraceReader::reset()
{
    in_.clear();
    in_.seekg(0);
    lineNumber_ = 0;
}

std::uint64_t
writeTraceFile(TraceSource &source, const std::string &path,
               TraceFormat format)
{
    TraceWriter writer(path, format);
    BranchRecord record;
    std::uint64_t n = 0;
    while (source.next(record)) {
        writer.append(record);
        ++n;
    }
    writer.finish();
    return n;
}

std::uint64_t
writeTextTrace(TraceSource &source, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal(ErrorCategory::kTrace, "cannot open text trace for writing: " + path);
    BranchRecord record;
    std::uint64_t n = 0;
    while (source.next(record)) {
        out << std::hex << "0x" << record.pc << " 0x" << record.target
            << std::dec << ' ' << (record.taken ? 'T' : 'N') << ' '
            << static_cast<int>(record.type) << '\n';
        ++n;
    }
    return n;
}

} // namespace confsim
