/**
 * @file
 * Basic descriptive statistics over a branch trace: dynamic counts per
 * branch type, taken rate, static working-set size, and per-static-branch
 * execution counts. Used by tests to validate the synthetic workloads and
 * by the examples to characterize traces.
 */

#ifndef CONFSIM_TRACE_TRACE_STATS_H
#define CONFSIM_TRACE_TRACE_STATS_H

#include <cstdint>
#include <unordered_map>

#include "trace/trace_source.h"

namespace confsim {

/** Aggregate statistics computed by a single pass over a trace. */
struct TraceStats
{
    std::uint64_t totalRecords = 0;       //!< all branch records
    std::uint64_t conditionalCount = 0;   //!< conditional branches only
    std::uint64_t takenCount = 0;         //!< taken conditional branches
    std::uint64_t staticBranchCount = 0;  //!< distinct conditional PCs
    std::uint64_t callCount = 0;
    std::uint64_t returnCount = 0;
    std::uint64_t unconditionalCount = 0;

    /** Dynamic execution count of each static conditional branch. */
    std::unordered_map<std::uint64_t, std::uint64_t> perPcCounts;

    /** @return fraction of conditional branches that were taken. */
    double
    takenRate() const
    {
        return conditionalCount == 0
                   ? 0.0
                   : static_cast<double>(takenCount) / conditionalCount;
    }
};

/** Consume @p source (from its current position) and compute statistics. */
TraceStats collectTraceStats(TraceSource &source);

/**
 * CRC-32 fingerprint of the first @p max_records records of @p source
 * (0 = hash the whole stream). Each record's pc, target, direction,
 * and type are absorbed in a fixed little-endian byte order, so the
 * checksum identifies trace *content* independently of the container
 * format (generator, CBT file, text file). Rewinds @p source both
 * before hashing and after, leaving it ready for simulation. Telemetry
 * run manifests use this to pin down exactly which branch stream a run
 * consumed.
 */
std::uint32_t streamChecksum(TraceSource &source,
                             std::uint64_t max_records = 0);

} // namespace confsim

#endif // CONFSIM_TRACE_TRACE_STATS_H
