/**
 * @file
 * In-memory trace source; primarily for unit tests and small workloads.
 */

#ifndef CONFSIM_TRACE_VECTOR_TRACE_SOURCE_H
#define CONFSIM_TRACE_VECTOR_TRACE_SOURCE_H

#include <utility>
#include <vector>

#include "trace/trace_source.h"

namespace confsim {

/** TraceSource backed by a std::vector of records. */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<BranchRecord> records)
        : records_(std::move(records))
    {}

    bool
    next(BranchRecord &record) override
    {
        if (pos_ >= records_.size())
            return false;
        record = records_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    bool checkpointable() const override { return true; }

    void
    saveState(StateWriter &out) const override
    {
        out.putU64(records_.size());
        out.putU64(pos_);
    }

    void
    loadState(StateReader &in) override
    {
        in.expectU64(records_.size(), "vector trace length");
        pos_ = static_cast<std::size_t>(in.getU64());
    }

    /** @return the backing records (for test assertions). */
    const std::vector<BranchRecord> &records() const { return records_; }

  private:
    std::vector<BranchRecord> records_;
    std::size_t pos_ = 0;
};

} // namespace confsim

#endif // CONFSIM_TRACE_VECTOR_TRACE_SOURCE_H
