/**
 * @file
 * Replayable record batch over a TraceSource.
 *
 * The sweep engine (sim/sweep_engine.h) decodes or generates each
 * benchmark trace exactly once and broadcasts the records to many
 * attached configurations. The unit of that broadcast is a RecordBatch:
 * a fixed-capacity, contiguous buffer of BranchRecords that one
 * refill() drains from the source and every configuration then replays
 * independently (read-only, so concurrent replay from worker shards
 * needs no synchronization). The engine's decode-ahead mode keeps a
 * small ring of these batches: a producer thread refills slots while
 * workers replay earlier ones — each batch still has exactly one
 * writer at a time.
 *
 * The batch size trades decode amortization against cache footprint:
 * a batch should comfortably fit in L2 together with one
 * configuration's hot table lines. 4096 records x 24 bytes = 96 KiB is
 * the tuned default (see docs/performance.md).
 */

#ifndef CONFSIM_TRACE_RECORD_BATCH_H
#define CONFSIM_TRACE_RECORD_BATCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/trace_source.h"

namespace confsim {

/** Fixed-capacity replayable buffer of trace records. */
class RecordBatch
{
  public:
    /** Tuned default batch size in records. */
    static constexpr std::size_t kDefaultCapacity = 4096;

    /** @param capacity Maximum records per refill (>= 1). */
    explicit RecordBatch(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
        records_.resize(capacity_);
    }

    /**
     * Replace the buffer contents with the next records of @p source.
     *
     * @return the number of records buffered; 0 iff the source is
     *         exhausted. A short (non-zero) count means the source
     *         ended inside this batch.
     */
    std::size_t
    refill(TraceSource &source)
    {
        size_ = 0;
        conditionals_ = 0;
        while (size_ < capacity_) {
            if (!source.next(records_[size_]))
                break;
            if (records_[size_].isConditional())
                ++conditionals_;
            ++size_;
        }
        return size_;
    }

    /** Discard buffered records (e.g. after a failed refill). */
    void
    clear()
    {
        size_ = 0;
        conditionals_ = 0;
    }

    /** @return records buffered by the last refill(). */
    std::size_t size() const { return size_; }

    /** @return true iff the last refill() buffered nothing. */
    bool empty() const { return size_ == 0; }

    /** @return conditional records in the current batch. */
    std::size_t conditionals() const { return conditionals_; }

    /** @return the buffer capacity in records. */
    std::size_t capacity() const { return capacity_; }

    /** @return record @p index of the current batch (< size()). */
    const BranchRecord &operator[](std::size_t index) const
    {
        return records_[index];
    }

    /** Replay iteration (first size() entries are valid). */
    const BranchRecord *begin() const { return records_.data(); }
    const BranchRecord *end() const { return records_.data() + size_; }

  private:
    std::size_t capacity_;
    std::size_t size_ = 0;
    std::size_t conditionals_ = 0;
    std::vector<BranchRecord> records_;
};

} // namespace confsim

#endif // CONFSIM_TRACE_RECORD_BATCH_H
