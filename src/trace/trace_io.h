/**
 * @file
 * Binary branch-trace file format (".cbt" — conditional branch trace).
 *
 * Layout:
 *   header:  magic "CBT1" (4 bytes), record count (LE u64)
 *   records: per record —
 *     varint  zig-zag delta of (pc >> 2) from previous record's pc >> 2
 *     varint  zig-zag delta of (target >> 2) from this record's pc >> 2
 *     u8      flags: bit0 = taken, bits1-2 = BranchType
 *
 * Delta + varint encoding exploits spatial locality: typical traces
 * compress to ~3 bytes/record. A human-readable text format ("pc target
 * taken type" per line) is provided for debugging.
 */

#ifndef CONFSIM_TRACE_TRACE_IO_H
#define CONFSIM_TRACE_TRACE_IO_H

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/trace_source.h"

namespace confsim {

/** Streaming writer for the binary trace format. */
class TraceWriter
{
  public:
    /** Open @p path; calls fatal() on failure. */
    explicit TraceWriter(const std::string &path);

    /** Append one record. */
    void append(const BranchRecord &record);

    /** Patch the header record count and close the file. */
    void finish();

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

  private:
    void writeVarint(std::uint64_t value);

    std::ofstream out_;
    std::uint64_t count_ = 0;
    std::uint64_t prevPcWord_ = 0;
    bool finished_ = false;
};

/** Streaming reader for the binary trace format; a TraceSource. */
class TraceFileReader : public TraceSource
{
  public:
    /** Open @p path; calls fatal() on open or header errors. */
    explicit TraceFileReader(const std::string &path);

    bool next(BranchRecord &record) override;
    void reset() override;

    /** @return total records promised by the header. */
    std::uint64_t recordCount() const { return count_; }

  private:
    std::uint64_t readVarint();
    void readHeader();

    std::ifstream in_;
    std::string path_;
    std::uint64_t count_ = 0;
    std::uint64_t produced_ = 0;
    std::uint64_t prevPcWord_ = 0;
};

/**
 * Copy every record of @p source to a binary trace file.
 * @return the number of records written.
 */
std::uint64_t writeTraceFile(TraceSource &source, const std::string &path);

/** Write @p source to the debug text format ("pc target taken type"). */
std::uint64_t writeTextTrace(TraceSource &source, const std::string &path);

/**
 * Streaming reader for the text trace format; a TraceSource. One
 * record per line: "0x<pc> 0x<target> T|N <type>", as produced by
 * writeTextTrace(). Intended for interchange with external tools
 * (awk-able, diff-able) and for hand-written test traces; the binary
 * format is the performance path. Blank lines and lines starting with
 * '#' are skipped.
 */
class TextTraceReader : public TraceSource
{
  public:
    /** Open @p path; calls fatal() on failure. */
    explicit TextTraceReader(const std::string &path);

    bool next(BranchRecord &record) override;
    void reset() override;

  private:
    std::ifstream in_;
    std::string path_;
    std::uint64_t lineNumber_ = 0;
};

/** Zig-zag encode a signed delta into an unsigned varint payload. */
constexpr std::uint64_t
zigZagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

/** Inverse of zigZagEncode. */
constexpr std::int64_t
zigZagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

} // namespace confsim

#endif // CONFSIM_TRACE_TRACE_IO_H
