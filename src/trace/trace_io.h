/**
 * @file
 * Binary branch-trace file formats (".cbt" — conditional branch trace).
 *
 * CBT1 (legacy, still fully readable):
 *   header:  magic "CBT1" (4 bytes), record count (LE u64)
 *   records: per record —
 *     varint  zig-zag delta of (pc >> 2) from previous record's pc >> 2
 *     varint  zig-zag delta of (target >> 2) from this record's pc >> 2
 *     u8      flags: bit0 = taken, bits1-2 = BranchType
 *
 * CBT2 (default, checksummed):
 *   header:  magic "CBT2" (4 bytes), record count (LE u64),
 *            CRC32 of the count field (LE u32)
 *   chunks:  records are grouped into chunks of up to kChunkRecords;
 *            the per-record encoding is identical to CBT1 but the PC
 *            delta chain restarts at every chunk boundary so one lost
 *            chunk cannot corrupt the next. Each chunk is:
 *     u32     sync marker "CHNK"
 *     u32     payload size in bytes (LE)
 *     u32     record count in this chunk (LE)
 *     bytes   payload (the encoded records)
 *     u32     CRC32 of the payload (LE)
 *
 * A flipped bit anywhere in a chunk fails the footer CRC; a flipped bit
 * in the chunk header fails the marker, the size bound, or the
 * record-count cross-check. TraceFileReader either throws on the first
 * such error (RecoveryMode::kStrict, the default) or resynchronizes at
 * the next chunk and reports how many records were lost
 * (RecoveryMode::kSkipCorrupt).
 *
 * Delta + varint encoding exploits spatial locality: typical traces
 * compress to ~3 bytes/record. A human-readable text format ("pc target
 * taken type" per line) is provided for debugging.
 */

#ifndef CONFSIM_TRACE_TRACE_IO_H
#define CONFSIM_TRACE_TRACE_IO_H

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "trace/trace_source.h"

namespace confsim {

/** On-disk trace format version. */
enum class TraceFormat : std::uint8_t
{
    kCbt1 = 1, //!< legacy: no integrity checking
    kCbt2 = 2, //!< chunked with per-chunk CRC32 footers (default)
};

/** How TraceFileReader reacts to corruption. */
enum class RecoveryMode : std::uint8_t
{
    kStrict = 0,     //!< throw on the first integrity violation
    kSkipCorrupt = 1 //!< resync at the next chunk; count dropped records
};

/** Streaming writer for the binary trace formats. */
class TraceWriter
{
  public:
    /** Records per CBT2 chunk (the CRC/resync granularity). */
    static constexpr std::uint64_t kChunkRecords = 4096;

    /** Open @p path; calls fatal() on failure. */
    explicit TraceWriter(const std::string &path,
                         TraceFormat format = TraceFormat::kCbt2);

    /** Append one record. */
    void append(const BranchRecord &record);

    /**
     * Flush pending data, patch the header record count, and close the
     * file. Calling finish() twice is a usage error and throws; the
     * destructor finalizes automatically (and swallows I/O errors, as
     * destructors must) if finish() was never called — e.g. during
     * exception unwind — so the header never claims the wrong count.
     */
    void finish();

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

  private:
    void flushChunk();
    void finishImpl();
    void appendVarint(std::uint64_t value);

    std::ofstream out_;
    std::string path_;
    TraceFormat format_;
    std::vector<char> chunk_;         //!< CBT2: pending chunk payload
    std::uint64_t chunkRecords_ = 0;  //!< CBT2: records in chunk_
    std::uint64_t count_ = 0;
    std::uint64_t prevPcWord_ = 0;
    bool finished_ = false;
};

/** Streaming reader for the binary trace formats; a TraceSource. */
class TraceFileReader : public TraceSource
{
  public:
    /**
     * Open @p path; calls fatal() on open or header errors. The format
     * (CBT1 vs CBT2) is detected from the magic.
     *
     * @param mode Corruption handling; kSkipCorrupt only changes
     *        behaviour for CBT2 files (CBT1 has no redundancy to
     *        recover with, so it is always strict).
     */
    explicit TraceFileReader(const std::string &path,
                             RecoveryMode mode = RecoveryMode::kStrict);

    bool next(BranchRecord &record) override;
    void reset() override;

    /** @return total records promised by the header. */
    std::uint64_t recordCount() const { return count_; }

    /** @return the detected on-disk format. */
    TraceFormat format() const { return format_; }

    /**
     * @return records lost to corruption (kSkipCorrupt only).
     * Final once next() has returned false.
     */
    std::uint64_t droppedRecords() const;

    /**
     * Observer invoked each time kSkipCorrupt recovery skips over a
     * damaged region: @p what names the violation (same wording as
     * the kStrict error), @p chunk_index is the 1-based chunk the
     * reader had reached, and @p dropped_records is how many records
     * that skip is known to have cost (0 when the chunk's own count
     * was unreadable — the header count reconciles the total). Wired
     * to telemetry so corrupt-chunk events appear in run JSONL.
     */
    using CorruptionHook = std::function<void(
        const std::string &what, std::uint64_t chunk_index,
        std::uint64_t dropped_records)>;

    /** Install a corruption observer (empty = none). */
    void setCorruptionHook(CorruptionHook hook)
    {
        corruptionHook_ = std::move(hook);
    }

  private:
    void readHeader();
    void skipped(const std::string &what, std::uint64_t dropped);
    bool nextCbt1(BranchRecord &record);
    bool nextCbt2(BranchRecord &record);
    bool loadNextChunk();
    bool resyncToMarker();
    void corrupt(const std::string &what);
    std::uint64_t readVarintStream();
    std::uint64_t readVarintChunk();
    bool decodeFromChunk(BranchRecord &record);

    std::ifstream in_;
    std::string path_;
    RecoveryMode mode_;
    TraceFormat format_ = TraceFormat::kCbt1;
    std::uint64_t count_ = 0;
    bool countTrusted_ = true;
    std::uint64_t produced_ = 0;
    std::uint64_t prevPcWord_ = 0;
    bool exhausted_ = false;

    // CBT2 chunk state.
    std::vector<char> chunk_;
    std::size_t chunkPos_ = 0;
    std::uint64_t chunkRecordsLeft_ = 0;
    std::uint64_t chunkIndex_ = 0;
    std::uint64_t dropped_ = 0; //!< from chunks with a known count
    CorruptionHook corruptionHook_;
};

/**
 * Copy every record of @p source to a binary trace file.
 * @return the number of records written.
 */
std::uint64_t writeTraceFile(TraceSource &source, const std::string &path,
                             TraceFormat format = TraceFormat::kCbt2);

/** Write @p source to the debug text format ("pc target taken type"). */
std::uint64_t writeTextTrace(TraceSource &source, const std::string &path);

/**
 * Streaming reader for the text trace format; a TraceSource. One
 * record per line: "0x<pc> 0x<target> T|N <type>", as produced by
 * writeTextTrace(). Intended for interchange with external tools
 * (awk-able, diff-able) and for hand-written test traces; the binary
 * format is the performance path. Blank lines and lines starting with
 * '#' are skipped.
 */
class TextTraceReader : public TraceSource
{
  public:
    /** Open @p path; calls fatal() on failure. */
    explicit TextTraceReader(const std::string &path);

    bool next(BranchRecord &record) override;
    void reset() override;

  private:
    std::ifstream in_;
    std::string path_;
    std::uint64_t lineNumber_ = 0;
};

/** Zig-zag encode a signed delta into an unsigned varint payload. */
constexpr std::uint64_t
zigZagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

/** Inverse of zigZagEncode. */
constexpr std::int64_t
zigZagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

} // namespace confsim

#endif // CONFSIM_TRACE_TRACE_IO_H
