#include "trace/trace_stats.h"

namespace confsim {

TraceStats
collectTraceStats(TraceSource &source)
{
    TraceStats stats;
    BranchRecord record;
    while (source.next(record)) {
        ++stats.totalRecords;
        switch (record.type) {
          case BranchType::Conditional:
            ++stats.conditionalCount;
            if (record.taken)
                ++stats.takenCount;
            ++stats.perPcCounts[record.pc];
            break;
          case BranchType::Call:
            ++stats.callCount;
            break;
          case BranchType::Return:
            ++stats.returnCount;
            break;
          case BranchType::Unconditional:
            ++stats.unconditionalCount;
            break;
        }
    }
    stats.staticBranchCount = stats.perPcCounts.size();
    return stats;
}

} // namespace confsim
