#include "trace/trace_stats.h"

#include "util/crc32.h"

namespace confsim {

TraceStats
collectTraceStats(TraceSource &source)
{
    TraceStats stats;
    BranchRecord record;
    while (source.next(record)) {
        ++stats.totalRecords;
        switch (record.type) {
          case BranchType::Conditional:
            ++stats.conditionalCount;
            if (record.taken)
                ++stats.takenCount;
            ++stats.perPcCounts[record.pc];
            break;
          case BranchType::Call:
            ++stats.callCount;
            break;
          case BranchType::Return:
            ++stats.returnCount;
            break;
          case BranchType::Unconditional:
            ++stats.unconditionalCount;
            break;
        }
    }
    stats.staticBranchCount = stats.perPcCounts.size();
    return stats;
}

std::uint32_t
streamChecksum(TraceSource &source, std::uint64_t max_records)
{
    source.reset();
    Crc32 crc;
    BranchRecord record;
    std::uint64_t seen = 0;
    while (source.next(record)) {
        std::uint8_t bytes[18];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<std::uint8_t>(record.pc >> (8 * i));
        for (int i = 0; i < 8; ++i) {
            bytes[8 + i] =
                static_cast<std::uint8_t>(record.target >> (8 * i));
        }
        bytes[16] = record.taken ? 1 : 0;
        bytes[17] = static_cast<std::uint8_t>(record.type);
        crc.update(bytes, sizeof(bytes));
        if (max_records != 0 && ++seen >= max_records)
            break;
    }
    source.reset();
    return crc.value();
}

} // namespace confsim
