/**
 * @file
 * The unit of trace-driven simulation: one dynamic conditional branch.
 *
 * The paper's methodology (Section 1.2) is trace-driven simulation over
 * the conditional-branch stream; everything downstream (predictors,
 * confidence estimators, profilers) consumes a sequence of BranchRecords.
 */

#ifndef CONFSIM_TRACE_BRANCH_RECORD_H
#define CONFSIM_TRACE_BRANCH_RECORD_H

#include <cstdint>

namespace confsim {

/** Classification of a control-transfer instruction in a trace. */
enum class BranchType : std::uint8_t
{
    Conditional = 0, //!< conditional direct branch (the paper's subject)
    Unconditional,   //!< unconditional direct jump
    Call,            //!< direct call
    Return,          //!< return
};

/**
 * One dynamic branch instance.
 *
 * pc and target are byte addresses; conditional-branch PCs are 4-byte
 * aligned as on the MIPS/DEC machines the IBS traces came from, so
 * indexing hardware uses pc >> 2.
 */
struct BranchRecord
{
    std::uint64_t pc = 0;      //!< address of the branch instruction
    std::uint64_t target = 0;  //!< taken-path target address
    bool taken = false;        //!< actual resolved direction
    BranchType type = BranchType::Conditional;

    /** @return true iff this record participates in prediction. */
    bool isConditional() const { return type == BranchType::Conditional; }

    bool operator==(const BranchRecord &other) const = default;
};

} // namespace confsim

#endif // CONFSIM_TRACE_BRANCH_RECORD_H
