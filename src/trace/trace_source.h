/**
 * @file
 * Streaming trace abstraction.
 *
 * Traces can be hundreds of millions of branches, so the simulator pulls
 * records one at a time through this interface instead of materializing
 * vectors. Both the synthetic workload generator and the trace-file
 * reader implement it.
 */

#ifndef CONFSIM_TRACE_TRACE_SOURCE_H
#define CONFSIM_TRACE_TRACE_SOURCE_H

#include "ckpt/serializable.h"
#include "trace/branch_record.h"

namespace confsim {

/**
 * Pull-model source of dynamic branch records.
 *
 * Also Serializable: sources that can snapshot their position
 * (generators, in-memory vectors) override checkpointable() to
 * true; the driver falls back to a record-count watermark replay
 * for sources that cannot (e.g. streaming file readers).
 */
class TraceSource : public Serializable
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     *
     * @param record Output parameter; valid only when true is returned.
     * @return false when the trace is exhausted.
     */
    virtual bool next(BranchRecord &record) = 0;

    /** Rewind to the beginning (required for two-pass profiling). */
    virtual void reset() = 0;
};

} // namespace confsim

#endif // CONFSIM_TRACE_TRACE_SOURCE_H
