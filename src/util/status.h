/**
 * @file
 * Error-reporting helpers in the gem5 idiom: fatal() for user-caused
 * conditions (bad configuration, malformed input files) and panic() for
 * internal invariant violations. Both format a message and terminate, so
 * library code never has to propagate error codes for unrecoverable
 * conditions.
 */

#ifndef CONFSIM_UTIL_STATUS_H
#define CONFSIM_UTIL_STATUS_H

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace confsim {

/**
 * Report an unrecoverable user-caused error (bad configuration, invalid
 * arguments, malformed trace file) and throw. Use when the simulation
 * cannot continue but the simulator itself is not at fault.
 *
 * Throws std::runtime_error rather than calling std::exit so that tests
 * can assert on the failure and applications can catch at top level.
 */
[[noreturn]] inline void
fatal(const std::string &message)
{
    throw std::runtime_error("fatal: " + message);
}

/**
 * Report an internal invariant violation (a simulator bug) and abort.
 * Use only for conditions that should be impossible regardless of input.
 */
[[noreturn]] inline void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

} // namespace confsim

#endif // CONFSIM_UTIL_STATUS_H
