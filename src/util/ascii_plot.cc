#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"
#include "util/string_utils.h"

namespace confsim {

namespace {

const char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

} // namespace

AsciiPlot::AsciiPlot(PlotOptions options)
    : options_(std::move(options))
{
    if (options_.width < 10 || options_.height < 5)
        fatal("AsciiPlot canvas too small");
    if (options_.xMax <= options_.xMin || options_.yMax <= options_.yMin)
        fatal("AsciiPlot requires a non-empty axis range");
}

void
AsciiPlot::addSeries(const PlotSeries &series)
{
    if (series_.size() >= sizeof(kGlyphs))
        fatal("AsciiPlot supports at most 8 series");
    series_.push_back(series);
}

std::string
AsciiPlot::render() const
{
    const unsigned w = options_.width;
    const unsigned h = options_.height;
    std::vector<std::string> canvas(h, std::string(w, ' '));

    auto toCol = [&](double x) -> long {
        const double f =
            (x - options_.xMin) / (options_.xMax - options_.xMin);
        return std::lround(f * (w - 1));
    };
    auto toRow = [&](double y) -> long {
        const double f =
            (y - options_.yMin) / (options_.yMax - options_.yMin);
        // Row 0 is the top of the canvas.
        return std::lround((1.0 - f) * (h - 1));
    };
    auto plotCell = [&](long col, long row, char glyph) {
        if (col < 0 || col >= static_cast<long>(w) || row < 0 ||
            row >= static_cast<long>(h)) {
            return;
        }
        canvas[static_cast<std::size_t>(row)]
              [static_cast<std::size_t>(col)] = glyph;
    };

    for (std::size_t s = 0; s < series_.size(); ++s) {
        const char glyph = kGlyphs[s];
        const auto &pts = series_[s].points;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            plotCell(toCol(pts[i].first), toRow(pts[i].second), glyph);
            if (options_.connectPoints && i + 1 < pts.size()) {
                // Interpolate along the longer axis so segments are
                // visually continuous.
                const long c0 = toCol(pts[i].first);
                const long r0 = toRow(pts[i].second);
                const long c1 = toCol(pts[i + 1].first);
                const long r1 = toRow(pts[i + 1].second);
                const long steps =
                    std::max(std::labs(c1 - c0), std::labs(r1 - r0));
                for (long t = 1; t < steps; ++t) {
                    const long c = c0 + (c1 - c0) * t / steps;
                    const long r = r0 + (r1 - r0) * t / steps;
                    plotCell(c, r, glyph);
                }
            }
        }
    }

    std::string out;
    if (!options_.title.empty())
        out += options_.title + "\n";
    if (!options_.yLabel.empty())
        out += options_.yLabel + "\n";

    const std::size_t margin = 8;
    for (unsigned row = 0; row < h; ++row) {
        std::string label;
        if (row == 0) {
            label = formatFixed(options_.yMax, 0);
        } else if (row == h - 1) {
            label = formatFixed(options_.yMin, 0);
        } else if (row == (h - 1) / 2) {
            label = formatFixed(
                (options_.yMax + options_.yMin) / 2.0, 0);
        }
        out += padLeft(label, margin - 2) + " |" + canvas[row] + "\n";
    }

    out += std::string(margin, ' ');
    out.back() = '+';
    out += std::string(w, '-') + "\n";

    std::string xaxis(margin + w, ' ');
    const std::string x0 = formatFixed(options_.xMin, 0);
    const std::string xmid =
        formatFixed((options_.xMin + options_.xMax) / 2.0, 0);
    const std::string x1 = formatFixed(options_.xMax, 0);
    auto place = [&xaxis](std::size_t pos, const std::string &text) {
        if (pos + text.size() <= xaxis.size())
            xaxis.replace(pos, text.size(), text);
    };
    place(margin, x0);
    if (xmid.size() / 2 <= margin + w / 2)
        place(margin + w / 2 - xmid.size() / 2, xmid);
    if (x1.size() <= margin + w)
        place(margin + w - x1.size(), x1);
    out += xaxis + "\n";

    if (!options_.xLabel.empty()) {
        const std::size_t center = margin + w / 2;
        const std::size_t indent =
            options_.xLabel.size() / 2 <= center
                ? center - options_.xLabel.size() / 2
                : 0;
        out += std::string(indent, ' ') + options_.xLabel + "\n";
    }

    for (std::size_t s = 0; s < series_.size(); ++s) {
        out += "    ";
        out += kGlyphs[s];
        out += "  " + series_[s].name + "\n";
    }
    return out;
}

} // namespace confsim
