#include "util/cli.h"

#include <cstdio>

#include "util/status.h"
#include "util/string_utils.h"

namespace confsim {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description))
{}

void
CliParser::addOption(const std::string &name, const std::string &def,
                     const std::string &help)
{
    options_[name] = Option{def, help, false};
}

void
CliParser::addFlag(const std::string &name, const std::string &help)
{
    options_[name] = Option{"", help, true};
}

bool
CliParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usageText(argv[0]).c_str(), stdout);
            return false;
        }
        if (!startsWith(arg, "--")) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end())
            fatal("unknown option --" + name + " (see --help)");
        if (it->second.isFlag) {
            if (has_value)
                fatal("flag --" + name + " does not take a value");
            it->second.value = "1";
        } else {
            if (!has_value) {
                if (i + 1 >= argc)
                    fatal("option --" + name + " requires a value");
                value = argv[++i];
            }
            it->second.value = value;
        }
    }
    return true;
}

std::string
CliParser::getString(const std::string &name) const
{
    return lookup(name).value;
}

std::uint64_t
CliParser::getUnsigned(const std::string &name) const
{
    return parseUnsigned(lookup(name).value);
}

double
CliParser::getDouble(const std::string &name) const
{
    return parseDouble(lookup(name).value);
}

bool
CliParser::getFlag(const std::string &name) const
{
    const Option &opt = lookup(name);
    if (!opt.isFlag)
        fatal("option --" + name + " is not a flag");
    return !opt.value.empty();
}

std::string
CliParser::usageText(const std::string &argv0) const
{
    std::string out = description_ + "\n\nUsage: " + argv0 +
                      " [options]\n\nOptions:\n";
    for (const auto &[name, opt] : options_) {
        out += "  --" + padRight(name, 20);
        out += opt.help;
        if (!opt.isFlag && !opt.value.empty())
            out += " (default: " + opt.value + ")";
        out += "\n";
    }
    out += "  --" + padRight("help", 20) + "show this message\n";
    return out;
}

const CliParser::Option &
CliParser::lookup(const std::string &name) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        fatal("internal: option --" + name + " was never registered");
    return it->second;
}

} // namespace confsim
