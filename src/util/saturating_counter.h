/**
 * @file
 * Saturating up/down counter.
 *
 * Two uses in this codebase mirror the paper exactly:
 *  - 2-bit counters in the branch predictor tables ("weakly taken" init),
 *  - 0..16 saturating counters used as a compressed CIR reduction
 *    (Section 5.1, "Saturating Counters").
 */

#ifndef CONFSIM_UTIL_SATURATING_COUNTER_H
#define CONFSIM_UTIL_SATURATING_COUNTER_H

#include <cstdint>

#include "util/status.h"

namespace confsim {

/**
 * An integer counter clamped to [0, max]. increment()/decrement() saturate
 * at the extremes instead of wrapping.
 *
 * The maximum is a runtime parameter (not a template parameter) because
 * the paper sweeps counter ranges (0..15 vs 0..16) and experiments
 * configure them dynamically.
 */
class SaturatingCounter
{
  public:
    /**
     * @param max Saturation ceiling (inclusive); must be >= 1.
     * @param initial Starting value; clamped to [0, max].
     */
    explicit SaturatingCounter(std::uint32_t max, std::uint32_t initial = 0)
        : max_(max), value_(initial > max ? max : initial)
    {
        if (max == 0)
            fatal("SaturatingCounter requires max >= 1");
    }

    /** Increment, saturating at max. @return the new value. */
    std::uint32_t
    increment()
    {
        if (value_ < max_)
            ++value_;
        return value_;
    }

    /** Decrement, saturating at 0. @return the new value. */
    std::uint32_t
    decrement()
    {
        if (value_ > 0)
            --value_;
        return value_;
    }

    /** @return current value in [0, max]. */
    std::uint32_t value() const { return value_; }

    /** @return the saturation ceiling. */
    std::uint32_t max() const { return max_; }

    /** @return true iff saturated high. */
    bool isMax() const { return value_ == max_; }

    /** @return true iff saturated low. */
    bool isMin() const { return value_ == 0; }

    /** Force the value (clamped to [0, max]); used by initialization. */
    void
    set(std::uint32_t value)
    {
        value_ = value > max_ ? max_ : value;
    }

    /**
     * For a prediction counter: the taken/not-taken decision. Values in
     * the upper half (>= (max + 1) / 2) predict taken, matching the
     * standard 2-bit scheme where 2 and 3 are "taken".
     */
    bool predictsTaken() const { return value_ >= (max_ + 1) / 2; }

  private:
    std::uint32_t max_;
    std::uint32_t value_;
};

} // namespace confsim

#endif // CONFSIM_UTIL_SATURATING_COUNTER_H
