#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace confsim {

namespace {

/** SplitMix64 step; used for seeding and for Rng::split(). */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed with SplitMix64 as the xoshiro authors recommend;
    // guarantees a non-zero state for any seed.
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with bound == 0");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextInRange called with lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

bool
Rng::nextBernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        panic("Rng::nextGeometric requires 0 < p <= 1");
    if (p == 1.0)
        return 0;
    // Inverse transform: floor(log(U) / log(1 - p)).
    const double u = 1.0 - nextDouble(); // in (0, 1]
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log1p(-p)));
}

Rng
Rng::split()
{
    std::uint64_t s = next();
    return Rng(splitMix64(s));
}

std::array<std::uint64_t, 4>
Rng::stateWords() const
{
    return {state_[0], state_[1], state_[2], state_[3]};
}

void
Rng::setStateWords(const std::array<std::uint64_t, 4> &words)
{
    // The all-zero state is a fixed point of xoshiro256**; a checkpoint
    // can never legitimately contain it.
    if ((words[0] | words[1] | words[2] | words[3]) == 0)
        fatal("Rng::setStateWords: all-zero state is invalid");
    for (std::size_t i = 0; i < words.size(); ++i)
        state_[i] = words[i];
}

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    if (n == 0)
        fatal("ZipfSampler requires at least one rank");
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        total += 1.0 / std::pow(static_cast<double>(r + 1), s);
        cdf_[r] = total;
    }
    for (auto &c : cdf_)
        c /= total;
    cdf_.back() = 1.0; // guard against rounding
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfSampler::probabilityOf(std::size_t r) const
{
    if (r >= cdf_.size())
        panic("ZipfSampler::probabilityOf rank out of range");
    return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

} // namespace confsim
