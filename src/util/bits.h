/**
 * @file
 * Bit-manipulation helpers used throughout the simulator: contiguous
 * bit-field extraction, masks, XOR folding, and popcount. All helpers are
 * constexpr and operate on std::uint64_t so that program counters, history
 * registers, and CIR patterns share one set of primitives.
 */

#ifndef CONFSIM_UTIL_BITS_H
#define CONFSIM_UTIL_BITS_H

#include <bit>
#include <cstdint>

namespace confsim {

/**
 * Produce a mask with the low @p n bits set.
 *
 * @param n Number of low-order bits to set; must be <= 64.
 * @return (1 << n) - 1, computed without undefined behaviour for n == 64.
 */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/**
 * Extract the bit field [lo, hi] (inclusive on both ends) of @p value.
 *
 * Mirrors the paper's usage such as "bits 17 through 2 of the program
 * counter": bitsOf(pc, 17, 2).
 *
 * @param value Source word.
 * @param hi Most-significant bit position of the field.
 * @param lo Least-significant bit position of the field.
 * @return The field, right-justified.
 */
constexpr std::uint64_t
bitsOf(std::uint64_t value, unsigned hi, unsigned lo)
{
    return (value >> lo) & mask(hi - lo + 1);
}

/** Extract a single bit of @p value. @return 0 or 1. */
constexpr std::uint64_t
bitOf(std::uint64_t value, unsigned pos)
{
    return (value >> pos) & 1;
}

/**
 * Fold @p value down to @p width bits by XORing successive width-bit
 * chunks together. Used to hash wide values (e.g. a 32-bit PC) into a
 * narrow table index while preserving entropy from all input bits.
 */
constexpr std::uint64_t
xorFold(std::uint64_t value, unsigned width)
{
    if (width == 0)
        return 0;
    std::uint64_t out = 0;
    while (value != 0) {
        out ^= value & mask(width);
        value >>= width;
    }
    return out;
}

/** Count the number of set bits (used by the ones-count reduction). */
constexpr unsigned
popcount(std::uint64_t value)
{
    return static_cast<unsigned>(std::popcount(value));
}

/** @return true iff @p value is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/**
 * Integer log2 of a power of two.
 *
 * @pre isPowerOfTwo(value)
 */
constexpr unsigned
log2Exact(std::uint64_t value)
{
    unsigned n = 0;
    while ((value >> n) != 1)
        ++n;
    return n;
}

/** Round @p value up to the next power of two (identity on powers). */
constexpr std::uint64_t
ceilPowerOfTwo(std::uint64_t value)
{
    if (value <= 1)
        return 1;
    return std::uint64_t{1} << (64 - std::countl_zero(value - 1));
}

} // namespace confsim

#endif // CONFSIM_UTIL_BITS_H
