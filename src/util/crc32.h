/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for trace-file
 * integrity checking.
 *
 * Header-only: the 256-entry lookup table is built at compile time, and
 * both one-shot and incremental interfaces are provided. The CBT2 trace
 * format (trace/trace_io.h) stores one CRC per chunk so a single flipped
 * bit anywhere in a chunk is detected on read.
 */

#ifndef CONFSIM_UTIL_CRC32_H
#define CONFSIM_UTIL_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace confsim {

namespace detail {

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t value = i;
        for (int bit = 0; bit < 8; ++bit) {
            value = (value >> 1) ^ ((value & 1) ? 0xEDB88320u : 0u);
        }
        table[i] = value;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    makeCrc32Table();

} // namespace detail

/**
 * Incremental CRC-32 accumulator.
 *
 * Feed bytes with update(); value() may be read at any point and equals
 * the one-shot crc32() of everything fed so far.
 */
class Crc32
{
  public:
    /** Absorb @p size bytes at @p data. */
    void
    update(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const std::uint8_t *>(data);
        std::uint32_t state = state_;
        for (std::size_t i = 0; i < size; ++i) {
            state = (state >> 8) ^
                    detail::kCrc32Table[(state ^ bytes[i]) & 0xFF];
        }
        state_ = state;
    }

    /** Absorb a single byte. */
    void
    update(std::uint8_t byte)
    {
        state_ = (state_ >> 8) ^
                 detail::kCrc32Table[(state_ ^ byte) & 0xFF];
    }

    /** @return the CRC of all bytes absorbed so far. */
    std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

    /** Restore the empty-input state. */
    void reset() { state_ = 0xFFFFFFFFu; }

  private:
    std::uint32_t state_ = 0xFFFFFFFFu;
};

/** One-shot CRC-32 of a byte buffer. */
inline std::uint32_t
crc32(const void *data, std::size_t size)
{
    Crc32 crc;
    crc.update(data, size);
    return crc.value();
}

} // namespace confsim

#endif // CONFSIM_UTIL_CRC32_H
