/**
 * @file
 * Structured error taxonomy for the simulator.
 *
 * Every unrecoverable condition raised by library code carries an
 * ErrorCategory so policy layers (retry loops, degraded-sweep handling,
 * CI smoke checks) can react to the *kind* of failure instead of
 * pattern-matching message strings:
 *
 *   - kTrace       trace decode/IO failure (corrupt or truncated input)
 *   - kCheckpoint  checkpoint container/serialization failure
 *   - kResource    environment resource failure (ENOSPC, failed fsync,
 *                  unwritable paths) on checkpoints or telemetry sinks
 *   - kTimeout     cooperative wall-clock watchdog expiry
 *   - kConfig      invalid user configuration (bad flags, bad FaultPlan)
 *   - kCancelled   cooperative cancellation (fail-fast teardown, suite
 *                  deadline budget, external CancellationToken)
 *   - kInternal    simulator invariant violation / unclassified failure
 *
 * retryable() encodes the retry policy contract: transient environment
 * and input failures may be retried by RunPolicy::maxAttempts, while
 * timeouts, cancellation, and configuration errors are terminal (a
 * retry would deterministically fail again or violate teardown).
 *
 * Error derives from std::runtime_error so every pre-taxonomy
 * `catch (const std::runtime_error &)` site keeps working unchanged.
 */

#ifndef CONFSIM_UTIL_ERROR_H
#define CONFSIM_UTIL_ERROR_H

#include <stdexcept>
#include <string>

namespace confsim {

enum class ErrorCategory : std::uint8_t {
    kTrace = 0,
    kCheckpoint,
    kResource,
    kTimeout,
    kConfig,
    kCancelled,
    kInternal,
};

/** Stable lowercase name for telemetry fields and log lines. */
inline const char *
toString(ErrorCategory category)
{
    switch (category) {
    case ErrorCategory::kTrace: return "trace";
    case ErrorCategory::kCheckpoint: return "checkpoint";
    case ErrorCategory::kResource: return "resource";
    case ErrorCategory::kTimeout: return "timeout";
    case ErrorCategory::kConfig: return "config";
    case ErrorCategory::kCancelled: return "cancelled";
    case ErrorCategory::kInternal: return "internal";
    }
    return "internal";
}

/** A categorized unrecoverable error. The what() string is the full,
 *  already-formatted message (no category prefix is prepended, so
 *  migrating a fatal() call site never changes observable text). */
class Error : public std::runtime_error
{
  public:
    Error(ErrorCategory category, const std::string &message)
        : std::runtime_error(message), category_(category)
    {}

    ErrorCategory category() const { return category_; }

    /** True when a fresh attempt could plausibly succeed. */
    bool
    retryable() const
    {
        switch (category_) {
        case ErrorCategory::kTimeout:
        case ErrorCategory::kConfig:
        case ErrorCategory::kCancelled:
            return false;
        default:
            return true;
        }
    }

  private:
    ErrorCategory category_;
};

/** Category of any exception: Error reports its own, everything else is
 *  kInternal (pre-taxonomy throw sites, standard library exceptions). */
inline ErrorCategory
categoryOf(const std::exception &e)
{
    const auto *err = dynamic_cast<const Error *>(&e);
    return err != nullptr ? err->category() : ErrorCategory::kInternal;
}

/** Retry eligibility of any exception. Non-Error exceptions stay
 *  retryable, preserving the pre-taxonomy behavior where every
 *  non-watchdog failure consumed a RunPolicy attempt. */
inline bool
isRetryable(const std::exception &e)
{
    const auto *err = dynamic_cast<const Error *>(&e);
    return err == nullptr || err->retryable();
}

/** Categorized counterpart of fatal() in util/status.h: identical
 *  "fatal: " message text, but the thrown object carries @p category. */
[[noreturn]] inline void
fatal(ErrorCategory category, const std::string &message)
{
    throw Error(category, "fatal: " + message);
}

} // namespace confsim

#endif // CONFSIM_UTIL_ERROR_H
