/**
 * @file
 * Resetting counter — the reduction function the paper recommends
 * (Section 5.1, "Resetting Counters").
 *
 * The counter is incremented (saturating at max) on every correct
 * prediction and reset to zero on any misprediction, so its value is
 * "number of correct predictions since the last misprediction, capped".
 * A saturated counter is the compressed equivalent of the all-zeros CIR
 * ("zero bucket"); value 0 means the most recent prediction missed.
 */

#ifndef CONFSIM_UTIL_RESETTING_COUNTER_H
#define CONFSIM_UTIL_RESETTING_COUNTER_H

#include <cstdint>

#include "util/status.h"

namespace confsim {

/** Increment-on-correct, reset-on-incorrect counter clamped to [0, max]. */
class ResettingCounter
{
  public:
    /**
     * @param max Saturation ceiling (inclusive); the paper uses 16 to
     *            match 16-bit CIRs. Must be >= 1.
     * @param initial Starting value, clamped to [0, max].
     */
    explicit ResettingCounter(std::uint32_t max, std::uint32_t initial = 0)
        : max_(max), value_(initial > max ? max : initial)
    {
        if (max == 0)
            fatal("ResettingCounter requires max >= 1");
    }

    /**
     * Record a prediction outcome.
     *
     * @param correct true if the prediction was correct.
     * @return the new counter value.
     */
    std::uint32_t
    record(bool correct)
    {
        if (correct) {
            if (value_ < max_)
                ++value_;
        } else {
            value_ = 0;
        }
        return value_;
    }

    /** @return current value in [0, max]. */
    std::uint32_t value() const { return value_; }

    /** @return the saturation ceiling. */
    std::uint32_t max() const { return max_; }

    /** @return true iff the counter is saturated (the "zero bucket"). */
    bool isMax() const { return value_ == max_; }

    /** Force the value (clamped); used by table initialization. */
    void
    set(std::uint32_t value)
    {
        value_ = value > max_ ? max_ : value;
    }

  private:
    std::uint32_t max_;
    std::uint32_t value_;
};

} // namespace confsim

#endif // CONFSIM_UTIL_RESETTING_COUNTER_H
