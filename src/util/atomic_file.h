/**
 * @file
 * Crash-safe file writes: stream into a `.tmp` sibling, fsync, then
 * atomically rename over the destination.
 *
 * POSIX rename(2) within one filesystem is atomic, so a reader (or a
 * restarted run) only ever observes either the previous complete file
 * or the new complete file — never a truncated artifact. This is the
 * same discipline databases use for their write-ahead segments, applied
 * here to checkpoints, telemetry sinks, CSV exports, and BENCH reports.
 */

#ifndef CONFSIM_UTIL_ATOMIC_FILE_H
#define CONFSIM_UTIL_ATOMIC_FILE_H

#include <fstream>
#include <string>

namespace confsim {

/**
 * An output stream whose contents become visible at @p path only when
 * commit() succeeds. Until then all bytes live in `<path>.tmp`; an
 * abandoned or destroyed-uncommitted writer removes the temporary so
 * crashes never litter partial files under the final name.
 */
class AtomicFileWriter
{
  public:
    /** Open `<path>.tmp` for writing; fatal() if it cannot be opened. */
    explicit AtomicFileWriter(std::string path);

    /** Abandons (removes the temporary) unless commit() ran. */
    ~AtomicFileWriter();

    AtomicFileWriter(const AtomicFileWriter &) = delete;
    AtomicFileWriter &operator=(const AtomicFileWriter &) = delete;

    /** The stream feeding the temporary file. */
    std::ostream &stream() { return out_; }

    /**
     * Flush, fsync, and rename the temporary over the destination.
     * fatal() on any failure (the temporary is removed first).
     * Idempotent: a second call is a no-op.
     */
    void commit();

    /** Discard everything written; removes the temporary. */
    void abandon();

    const std::string &path() const { return path_; }
    const std::string &tmpPath() const { return tmpPath_; }
    bool committed() const { return committed_; }

  private:
    std::string path_;
    std::string tmpPath_;
    std::ofstream out_;
    bool committed_ = false;
    bool abandoned_ = false;
};

/** One-shot atomic write of @p content to @p path. */
void atomicWriteFile(const std::string &path, const std::string &content);

} // namespace confsim

#endif // CONFSIM_UTIL_ATOMIC_FILE_H
