#include "util/string_utils.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "util/status.h"

namespace confsim {

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    return formatFixed(fraction * 100.0, decimals);
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::vector<std::string>
splitString(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::uint64_t
parseUnsigned(const std::string &s)
{
    if (s.empty())
        fatal("expected an unsigned integer, got an empty string");
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (end == s.c_str() || *end != '\0')
        fatal("malformed unsigned integer: '" + s + "'");
    return v;
}

double
parseDouble(const std::string &s)
{
    if (s.empty())
        fatal("expected a number, got an empty string");
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        fatal("malformed number: '" + s + "'");
    return v;
}

} // namespace confsim
