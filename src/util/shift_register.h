/**
 * @file
 * Fixed-width shift register.
 *
 * This is the CIR (Correct/Incorrect Register) of the paper as well as
 * the global branch history register (BHR). New bits shift in at the
 * least-significant end; the most-significant bit of the window is the
 * "oldest" bit, which Section 5.4's "lastbit" initialization sets to 1.
 *
 * Bit convention for CIRs (paper Section 3.1): 1 = incorrect prediction,
 * 0 = correct prediction. For BHRs: 1 = taken, 0 = not taken.
 */

#ifndef CONFSIM_UTIL_SHIFT_REGISTER_H
#define CONFSIM_UTIL_SHIFT_REGISTER_H

#include <cstdint>

#include "util/bits.h"
#include "util/status.h"

namespace confsim {

/** An n-bit (n <= 64) shift register with newest bit at position 0. */
class ShiftRegister
{
  public:
    /**
     * @param width Register width in bits; 1 <= width <= 64.
     * @param initial Initial contents (masked to width).
     */
    explicit ShiftRegister(unsigned width, std::uint64_t initial = 0)
        : width_(width), bits_(initial & mask(width))
    {
        if (width == 0 || width > 64)
            fatal("ShiftRegister width must be in [1, 64]");
    }

    /**
     * Shift in a new bit at the least-significant position; the oldest
     * bit falls off the most-significant end.
     *
     * @param bit The new youngest bit.
     * @return the new register contents.
     */
    std::uint64_t
    shiftIn(bool bit)
    {
        bits_ = ((bits_ << 1) | (bit ? 1 : 0)) & mask(width_);
        return bits_;
    }

    /** @return the register contents, right-justified in width bits. */
    std::uint64_t value() const { return bits_; }

    /** @return register width in bits. */
    unsigned width() const { return width_; }

    /** @return the youngest (most recently shifted-in) bit. */
    bool youngestBit() const { return (bits_ & 1) != 0; }

    /** @return the oldest bit (position width - 1). */
    bool oldestBit() const { return bitOf(bits_, width_ - 1) != 0; }

    /** Overwrite the contents (masked to width). */
    void set(std::uint64_t value) { bits_ = value & mask(width_); }

    /** Set every bit (the paper's preferred CIR initialization). */
    void fill() { bits_ = mask(width_); }

    /** Clear every bit. */
    void clear() { bits_ = 0; }

    /**
     * Clear the register except the oldest bit, which is set to 1 —
     * the "lastbit" initialization of Section 5.4.
     */
    void
    setLastBitOnly()
    {
        bits_ = std::uint64_t{1} << (width_ - 1);
    }

    /** @return number of 1 bits (the ones-count reduction input). */
    unsigned onesCount() const { return popcount(bits_); }

  private:
    unsigned width_;
    std::uint64_t bits_;
};

} // namespace confsim

#endif // CONFSIM_UTIL_SHIFT_REGISTER_H
