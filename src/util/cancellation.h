/**
 * @file
 * Cooperative cancellation. A CancellationToken is a shared flag that
 * long-running loops (sequential driver, sweep shards, decode-ahead
 * producer, worker pool queues) poll at a coarse stride; cancel() makes
 * every poller unwind promptly with Error{kCancelled}.
 *
 * Tokens can be chained: a child constructed with a parent pointer
 * reports cancelled when either itself or the parent is cancelled. The
 * suite runner uses this to layer fail-fast/deadline teardown on top of
 * a caller-provided external token without ever mutating the caller's
 * object.
 */

#ifndef CONFSIM_UTIL_CANCELLATION_H
#define CONFSIM_UTIL_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "util/error.h"

namespace confsim {

class CancellationToken
{
  public:
    CancellationToken() = default;

    /** Chained token: cancelled when this or @p parent is cancelled.
     *  @p parent may be null and must outlive this token. */
    explicit CancellationToken(const CancellationToken *parent)
        : parent_(parent)
    {}

    CancellationToken(const CancellationToken &) = delete;
    CancellationToken &operator=(const CancellationToken &) = delete;

    void
    cancel() noexcept
    {
        cancelled_.store(true, std::memory_order_release);
    }

    bool
    cancelled() const noexcept
    {
        if (cancelled_.load(std::memory_order_acquire))
            return true;
        return parent_ != nullptr && parent_->cancelled();
    }

    /** Throw Error{kCancelled} when cancelled; @p what names the work
     *  being abandoned ("sweep shard", "benchmark gcc"). */
    void
    throwIfCancelled(const std::string &what) const
    {
        if (cancelled())
            throw Error(ErrorCategory::kCancelled,
                        what + " cancelled");
    }

  private:
    std::atomic<bool> cancelled_{false};
    const CancellationToken *parent_ = nullptr;
};

/**
 * Sleep for @p ms, waking early if @p cancel (nullable) is cancelled.
 * Used by retry backoff so fail-fast teardown is never stuck behind a
 * backoff sleep. @return false when the sleep was interrupted.
 */
inline bool
interruptibleSleepMs(const CancellationToken *cancel, std::uint64_t ms)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline = Clock::now() + std::chrono::milliseconds(ms);
    while (Clock::now() < deadline) {
        if (cancel != nullptr && cancel->cancelled())
            return false;
        const auto remaining = deadline - Clock::now();
        const auto slice = std::chrono::milliseconds(10);
        std::this_thread::sleep_for(remaining < slice ? remaining : slice);
    }
    return true;
}

} // namespace confsim

#endif // CONFSIM_UTIL_CANCELLATION_H
