/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every stochastic element of the synthetic benchmark suite draws from a
 * seeded Xoshiro256** generator so that experiments are bit-reproducible
 * across runs and platforms. The header also provides the distribution
 * samplers the workload generator needs: uniform ranges, Bernoulli trials,
 * geometric trip counts, and a Zipf sampler for static-branch execution
 * frequency skew.
 */

#ifndef CONFSIM_UTIL_RNG_H
#define CONFSIM_UTIL_RNG_H

#include <array>
#include <cstdint>
#include <vector>

namespace confsim {

/**
 * Xoshiro256** pseudo-random generator (Blackman & Vigna).
 *
 * Chosen over std::mt19937_64 because its output sequence is fully
 * specified here (libstdc++/libc++ agree on mt19937 too, but the
 * distributions on top of it are not portable); all samplers below are
 * implemented in-repo so results are identical everywhere.
 */
class Rng
{
  public:
    /** Seed the generator; the same seed always yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** @return the next raw 64-bit output. */
    std::uint64_t next();

    /** @return a double uniformly distributed in [0, 1). */
    double nextDouble();

    /**
     * @return an integer uniformly distributed in [0, bound)
     * using rejection sampling (unbiased). @pre bound > 0.
     */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** @return an integer uniformly distributed in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** @return true with probability @p p (clamped to [0, 1]). */
    bool nextBernoulli(double p);

    /**
     * Sample a geometric distribution: the number of failures before the
     * first success with success probability @p p. Used for loop
     * trip-count variation. @pre 0 < p <= 1.
     */
    std::uint64_t nextGeometric(double p);

    /**
     * Split off an independent child generator. Uses SplitMix64 over the
     * parent's next output, so children seeded from the same parent state
     * are decorrelated.
     */
    Rng split();

    /**
     * Snapshot the full generator state for checkpointing. Restoring
     * these four words with setStateWords() reproduces the remaining
     * output stream exactly.
     */
    std::array<std::uint64_t, 4> stateWords() const;

    /** Restore a stateWords() snapshot. @pre not all words zero. */
    void setStateWords(const std::array<std::uint64_t, 4> &words);

  private:
    std::uint64_t state_[4];
};

/**
 * Zipf(s) sampler over ranks {0, ..., n-1} with precomputed inverse CDF.
 *
 * Rank r is drawn with probability proportional to 1 / (r + 1)^s. Used to
 * give synthetic benchmarks the heavily skewed static-branch execution
 * frequency distribution real programs exhibit (a few hot branches
 * dominate the dynamic stream).
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of ranks; must be > 0.
     * @param s Skew exponent; s == 0 degenerates to uniform.
     */
    ZipfSampler(std::size_t n, double s);

    /** Draw a rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    /** @return probability mass of rank @p r. */
    double probabilityOf(std::size_t r) const;

    /** @return number of ranks. */
    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace confsim

#endif // CONFSIM_UTIL_RNG_H
