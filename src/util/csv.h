/**
 * @file
 * Minimal CSV writer used by the bench harnesses to save every figure's
 * data series next to the terminal output.
 */

#ifndef CONFSIM_UTIL_CSV_H
#define CONFSIM_UTIL_CSV_H

#include <string>
#include <vector>

#include "util/atomic_file.h"

namespace confsim {

/**
 * Writes rows of string/number cells to a CSV file. Cells containing
 * commas, quotes, or newlines are quoted per RFC 4180.
 *
 * Output is crash-safe: rows accumulate in a `.tmp` sibling and the
 * destination appears (atomically, complete) only at close(), so an
 * interrupted run never leaves a truncated CSV under the final name.
 */
class CsvWriter
{
  public:
    /** Open the `.tmp` sibling of @p path; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write a row of pre-formatted cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Write a row of doubles with @p decimals precision. */
    void writeNumericRow(const std::vector<double> &cells,
                         int decimals = 6);

    /** Publish the file atomically; also performed by the destructor. */
    void close();

    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

  private:
    static std::string escapeCell(const std::string &cell);

    AtomicFileWriter out_;
};

} // namespace confsim

#endif // CONFSIM_UTIL_CSV_H
