#include "util/csv.h"

#include <cstdio>

#include "util/string_utils.h"

namespace confsim {

CsvWriter::CsvWriter(const std::string &path)
    : out_(path)
{}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out_.stream() << ',';
        out_.stream() << escapeCell(cells[i]);
    }
    out_.stream() << '\n';
}

void
CsvWriter::writeNumericRow(const std::vector<double> &cells, int decimals)
{
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (double c : cells)
        formatted.push_back(formatFixed(c, decimals));
    writeRow(formatted);
}

void
CsvWriter::close()
{
    out_.commit();
}

CsvWriter::~CsvWriter()
{
    // commit() can fatal() (throw); destructors must not. A failure
    // here leaves no temporary behind and the destination untouched.
    try {
        close();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "[confsim] CSV close failed: %s\n",
                     e.what());
    }
}

std::string
CsvWriter::escapeCell(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace confsim
