#include "util/csv.h"

#include "util/status.h"
#include "util/string_utils.h"

namespace confsim {

CsvWriter::CsvWriter(const std::string &path)
    : out_(path)
{
    if (!out_)
        fatal("cannot open CSV output file: " + path);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << escapeCell(cells[i]);
    }
    out_ << '\n';
}

void
CsvWriter::writeNumericRow(const std::vector<double> &cells, int decimals)
{
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (double c : cells)
        formatted.push_back(formatFixed(c, decimals));
    writeRow(formatted);
}

void
CsvWriter::close()
{
    if (out_.is_open())
        out_.close();
}

CsvWriter::~CsvWriter()
{
    close();
}

std::string
CsvWriter::escapeCell(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace confsim
