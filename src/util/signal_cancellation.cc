#include "util/signal_cancellation.h"

#include <atomic>
#include <csignal>

#include "util/cancellation.h"

namespace confsim {

namespace {

std::atomic<CancellationToken *> g_token{nullptr};
std::atomic<int> g_signal{0};

extern "C" void
onCancellationSignal(int signo)
{
    g_signal.store(signo, std::memory_order_relaxed);
    if (CancellationToken *token =
            g_token.load(std::memory_order_acquire))
        token->cancel();
}

} // namespace

void
installSignalCancellation(CancellationToken &token)
{
    g_token.store(&token, std::memory_order_release);
    struct sigaction action = {};
    action.sa_handler = onCancellationSignal;
    sigemptyset(&action.sa_mask);
    // No SA_RESTART: blocking reads must wake with EINTR so the
    // caller's loop can poll the token and start its drain.
    action.sa_flags = 0;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

int
lastCancellationSignal()
{
    return g_signal.load(std::memory_order_relaxed);
}

int
exitCodeForSignal(int signal)
{
    return signal > 0 ? 128 + signal : 1;
}

} // namespace confsim
