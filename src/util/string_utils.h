/**
 * @file
 * Small string formatting helpers shared by report printers and CLIs.
 */

#ifndef CONFSIM_UTIL_STRING_UTILS_H
#define CONFSIM_UTIL_STRING_UTILS_H

#include <string>
#include <vector>

namespace confsim {

/** Format a double with @p decimals digits after the point. */
std::string formatFixed(double value, int decimals);

/** Format @p value as a percentage string, e.g. 0.896 -> "89.60". */
std::string formatPercent(double fraction, int decimals = 2);

/** Left-pad @p s with spaces to at least @p width characters. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad @p s with spaces to at least @p width characters. */
std::string padRight(const std::string &s, std::size_t width);

/** Split @p s on @p sep (no empty-token suppression). */
std::vector<std::string> splitString(const std::string &s, char sep);

/** @return true if @p s begins with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Parse a non-negative integer; calls fatal() on malformed input. */
std::uint64_t parseUnsigned(const std::string &s);

/** Parse a double; calls fatal() on malformed input. */
double parseDouble(const std::string &s);

} // namespace confsim

#endif // CONFSIM_UTIL_STRING_UTILS_H
