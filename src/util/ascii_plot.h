/**
 * @file
 * Terminal line/scatter plotting.
 *
 * The paper's evaluation is entirely graphs of cumulative mispredictions
 * versus cumulative dynamic branches. The bench harnesses render those
 * same graphs as ASCII art so the figure shape (steepness, knee location,
 * zero-bucket gap) can be eyeballed directly in the terminal, in addition
 * to the CSVs they write.
 */

#ifndef CONFSIM_UTIL_ASCII_PLOT_H
#define CONFSIM_UTIL_ASCII_PLOT_H

#include <string>
#include <vector>

namespace confsim {

/** One named data series: a polyline of (x, y) points. */
struct PlotSeries
{
    std::string name;                            //!< legend label
    std::vector<std::pair<double, double>> points; //!< sorted by x
};

/** Configuration for an AsciiPlot canvas. */
struct PlotOptions
{
    unsigned width = 72;    //!< plot area width in character cells
    unsigned height = 24;   //!< plot area height in character cells
    double xMin = 0.0;
    double xMax = 100.0;
    double yMin = 0.0;
    double yMax = 100.0;
    std::string xLabel;
    std::string yLabel;
    std::string title;
    bool connectPoints = true; //!< linearly interpolate between points
};

/**
 * Renders one or more series onto a character canvas with axes, tick
 * labels, and a legend (each series gets a distinct glyph).
 */
class AsciiPlot
{
  public:
    explicit AsciiPlot(PlotOptions options);

    /** Add a series; at most 8 series are supported per plot. */
    void addSeries(const PlotSeries &series);

    /** Render the plot to a multi-line string. */
    std::string render() const;

  private:
    PlotOptions options_;
    std::vector<PlotSeries> series_;
};

} // namespace confsim

#endif // CONFSIM_UTIL_ASCII_PLOT_H
