/**
 * @file
 * SIGINT/SIGTERM → CancellationToken bridge for long-running binaries.
 *
 * installSignalCancellation() registers handlers for SIGINT and SIGTERM
 * that cancel one process-wide CancellationToken. Every cooperative
 * poll site already threaded through the simulator (driver record
 * loops, sweep shards, decode producers, retry backoff sleeps, the
 * sweep service's admission/drain machinery) then unwinds with
 * Error{kCancelled}, so Ctrl-C produces a clean teardown — telemetry
 * sinks flushed, atomic-file temporaries cleaned up, checkpoints left
 * in a resumable state — instead of an abrupt exit mid-write.
 *
 * The handler itself only performs async-signal-safe work: a relaxed
 * atomic load of the registered token pointer, the token's own atomic
 * cancel() store, and recording which signal fired. Handlers are
 * installed without SA_RESTART so blocking reads (the sweep server's
 * stdin/socket loop) return EINTR and observe the token promptly.
 */

#ifndef CONFSIM_UTIL_SIGNAL_CANCELLATION_H
#define CONFSIM_UTIL_SIGNAL_CANCELLATION_H

namespace confsim {

class CancellationToken;

/**
 * Route SIGINT and SIGTERM to @p token.cancel(). The token must
 * outlive every subsequent signal delivery (in practice: declare it in
 * main() and install once). Calling again replaces the target token.
 */
void installSignalCancellation(CancellationToken &token);

/** @return the last signal routed to the token, or 0 when none. */
int lastCancellationSignal();

/**
 * Conventional exit code for a run terminated by @p signal
 * (128 + signo, e.g. 130 for SIGINT); 1 when @p signal is 0.
 */
int exitCodeForSignal(int signal);

} // namespace confsim

#endif // CONFSIM_UTIL_SIGNAL_CANCELLATION_H
