/**
 * @file
 * Minimal command-line option parser for the example and bench binaries.
 *
 * Supports "--name value" and "--name=value" long options plus "--flag"
 * booleans; anything else is a positional argument. Unknown options are
 * fatal so typos surface immediately.
 */

#ifndef CONFSIM_UTIL_CLI_H
#define CONFSIM_UTIL_CLI_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace confsim {

/** Declarative option table + parsed-value access. */
class CliParser
{
  public:
    /** @param program_description One-line description for --help. */
    explicit CliParser(std::string program_description);

    /** Register a string option with a default value. */
    void addOption(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Register a boolean flag (defaults to false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. On "--help" prints usage and returns false (caller
     * should exit 0). Calls fatal() on unknown options.
     */
    bool parse(int argc, const char *const *argv);

    /** @return the parsed (or default) value of a string option. */
    std::string getString(const std::string &name) const;

    /** @return the option parsed as an unsigned integer. */
    std::uint64_t getUnsigned(const std::string &name) const;

    /** @return the option parsed as a double. */
    double getDouble(const std::string &name) const;

    /** @return true iff the flag was given. */
    bool getFlag(const std::string &name) const;

    /** @return positional arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    struct Option
    {
        std::string value;
        std::string help;
        bool isFlag = false;
    };

    std::string usageText(const std::string &argv0) const;
    const Option &lookup(const std::string &name) const;

    std::string description_;
    std::map<std::string, Option> options_;
    std::vector<std::string> positional_;
};

} // namespace confsim

#endif // CONFSIM_UTIL_CLI_H
