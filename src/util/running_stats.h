/**
 * @file
 * Streaming summary statistics (Welford's algorithm) and a simple
 * fixed-width histogram. Used by the robustness harnesses
 * (bench/ablation_seed_sensitivity) and available to applications that
 * aggregate per-run metrics.
 */

#ifndef CONFSIM_UTIL_RUNNING_STATS_H
#define CONFSIM_UTIL_RUNNING_STATS_H

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/status.h"

namespace confsim {

/** Numerically stable streaming mean/variance/min/max. */
class RunningStats
{
  public:
    /** Add one observation. */
    void
    add(double value)
    {
        ++count_;
        const double delta = value - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (value - mean_);
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }

    /** @return number of observations. */
    std::uint64_t count() const { return count_; }

    /** @return sample mean (0 when empty). */
    double mean() const { return count_ == 0 ? 0.0 : mean_; }

    /** @return population variance (0 with < 2 observations). */
    double
    variance() const
    {
        return count_ < 2 ? 0.0
                          : m2_ / static_cast<double>(count_);
    }

    /** @return population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** @return sample variance (n - 1 denominator). */
    double
    sampleVariance() const
    {
        return count_ < 2 ? 0.0
                          : m2_ / static_cast<double>(count_ - 1);
    }

    /** @return smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** @return largest observation (-inf when empty). */
    double max() const { return max_; }

    /** Merge another accumulator (parallel-friendly). */
    void
    merge(const RunningStats &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        const double total =
            static_cast<double>(count_ + other.count_);
        const double delta = other.mean_ - mean_;
        m2_ += other.m2_ + delta * delta *
                               static_cast<double>(count_) *
                               static_cast<double>(other.count_) /
                               total;
        mean_ += delta * static_cast<double>(other.count_) / total;
        count_ += other.count_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-width histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the tracked range.
     * @param hi Exclusive upper bound; must be > lo.
     * @param bins Number of equal-width bins (>= 1).
     */
    Histogram(double lo, double hi, std::size_t bins)
        : lo_(lo), hi_(hi), counts_(bins, 0)
    {
        if (!(hi > lo))
            fatal("histogram range must be non-empty");
        if (bins == 0)
            fatal("histogram needs at least one bin");
    }

    /** Record one observation. */
    void
    add(double value)
    {
        ++total_;
        if (value < lo_) {
            ++underflow_;
            return;
        }
        if (value >= hi_) {
            ++overflow_;
            return;
        }
        const auto bin = static_cast<std::size_t>(
            (value - lo_) / (hi_ - lo_) *
            static_cast<double>(counts_.size()));
        ++counts_[std::min(bin, counts_.size() - 1)];
    }

    /** @return count in bin @p index. */
    std::uint64_t binCount(std::size_t index) const
    {
        return counts_.at(index);
    }

    /** @return inclusive lower edge of bin @p index. */
    double
    binLow(std::size_t index) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(index) /
                         static_cast<double>(counts_.size());
    }

    /** @return number of bins. */
    std::size_t numBins() const { return counts_.size(); }

    /** @return observations below the range. */
    std::uint64_t underflow() const { return underflow_; }

    /** @return observations at/above the upper bound. */
    std::uint64_t overflow() const { return overflow_; }

    /** @return all observations ever recorded. */
    std::uint64_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace confsim

#endif // CONFSIM_UTIL_RUNNING_STATS_H
