/**
 * @file
 * Direct-mapped hardware table template.
 *
 * Predictor pattern-history tables and confidence CIR tables are all
 * power-of-two direct-mapped arrays indexed by a hash of PC/BHR bits.
 * This template centralizes the index masking, bounds discipline, and
 * storage-bit accounting that the paper's cost discussion (Section 5.3)
 * relies on.
 */

#ifndef CONFSIM_UTIL_FIXED_VECTOR_TABLE_H
#define CONFSIM_UTIL_FIXED_VECTOR_TABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bits.h"
#include "util/status.h"

namespace confsim {

/**
 * A power-of-two sized, direct-mapped table of entries of type T.
 *
 * @tparam T Entry type (counter, shift register, ...).
 */
template <typename T>
class FixedVectorTable
{
  public:
    /**
     * @param num_entries Table size; must be a power of two.
     * @param prototype Value every entry is initialized to.
     * @param bits_per_entry Storage cost of one entry, for
     *        storageBits() accounting.
     */
    FixedVectorTable(std::size_t num_entries, const T &prototype,
                     unsigned bits_per_entry)
        : entries_(checkSize(num_entries), prototype),
          indexBits_(log2Exact(num_entries)),
          bitsPerEntry_(bits_per_entry)
    {}

    /** @return entry selected by the low index bits of @p index. */
    T &operator[](std::uint64_t index)
    {
        return entries_[index & mask(indexBits_)];
    }

    /** @return entry selected by the low index bits of @p index. */
    const T &operator[](std::uint64_t index) const
    {
        return entries_[index & mask(indexBits_)];
    }

    /** @return number of entries. */
    std::size_t size() const { return entries_.size(); }

    /** @return log2(size()): the number of index bits consumed. */
    unsigned indexBits() const { return indexBits_; }

    /** @return total storage in bits (the paper's cost metric). */
    std::uint64_t
    storageBits() const
    {
        return static_cast<std::uint64_t>(entries_.size()) * bitsPerEntry_;
    }

    /** Reset every entry to @p prototype. */
    void
    fill(const T &prototype)
    {
        for (auto &entry : entries_)
            entry = prototype;
    }

    /** Mutable iteration support (used by randomized initialization). */
    auto begin() { return entries_.begin(); }
    auto end() { return entries_.end(); }
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    static std::size_t
    checkSize(std::size_t num_entries)
    {
        if (!isPowerOfTwo(num_entries))
            fatal("table size must be a power of two");
        return num_entries;
    }

    std::vector<T> entries_;
    unsigned indexBits_;
    unsigned bitsPerEntry_;
};

} // namespace confsim

#endif // CONFSIM_UTIL_FIXED_VECTOR_TABLE_H
