#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

#include "util/error.h"
#include "util/status.h"

namespace confsim {

namespace {

/** ": <strerror>" suffix for the current errno, empty when unset. */
std::string
errnoDetail(int err)
{
    if (err == 0)
        return std::string();
    return std::string(": ") + std::strerror(err) + " (errno " +
           std::to_string(err) + ")";
}

/** fsync an already-written file by path; @return 0 or the errno. */
int
syncFile(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0)
        return errno;
    const int err = ::fsync(fd) == 0 ? 0 : errno;
    ::close(fd);
    return err;
}

/**
 * fsync the directory containing @p path so the rename itself is
 * durable. Best-effort: some filesystems reject directory fsync, and
 * the rename's atomicity does not depend on it.
 */
void
syncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

} // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmpPath_(path_ + ".tmp")
{
    // Create missing parent directories so `--telemetry newdir/run.jsonl`
    // works without a manual mkdir; open() below still reports failure.
    const auto parent = std::filesystem::path(path_).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    errno = 0;
    out_.open(tmpPath_, std::ios::binary | std::ios::trunc);
    if (!out_)
        fatal(ErrorCategory::kResource, "cannot open " + tmpPath_ +
                                            " for writing" +
                                            errnoDetail(errno));
}

AtomicFileWriter::~AtomicFileWriter()
{
    if (!committed_ && !abandoned_)
        abandon();
}

void
AtomicFileWriter::commit()
{
    if (committed_)
        return;
    if (abandoned_)
        fatal(ErrorCategory::kInternal, "commit after abandon for " + path_);
    errno = 0;
    out_.flush();
    const bool stream_ok = out_.good();
    const int flush_errno = stream_ok ? 0 : errno;
    out_.close();
    if (!stream_ok) {
        std::remove(tmpPath_.c_str());
        abandoned_ = true;
        fatal(ErrorCategory::kResource,
              "write error on " + tmpPath_ + errnoDetail(flush_errno));
    }
    if (const int err = syncFile(tmpPath_); err != 0) {
        std::remove(tmpPath_.c_str());
        abandoned_ = true;
        fatal(ErrorCategory::kResource,
              "fsync failed for " + tmpPath_ + errnoDetail(err));
    }
    errno = 0;
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0) {
        const int err = errno;
        std::remove(tmpPath_.c_str());
        abandoned_ = true;
        fatal(ErrorCategory::kResource, "rename " + tmpPath_ + " -> " +
                                            path_ + " failed" +
                                            errnoDetail(err));
    }
    syncParentDir(path_);
    committed_ = true;
}

void
AtomicFileWriter::abandon()
{
    if (committed_ || abandoned_)
        return;
    out_.close();
    std::remove(tmpPath_.c_str());
    abandoned_ = true;
}

void
atomicWriteFile(const std::string &path, const std::string &content)
{
    AtomicFileWriter writer(path);
    writer.stream().write(content.data(),
                          static_cast<std::streamsize>(content.size()));
    writer.commit();
}

} // namespace confsim
