/**
 * @file
 * McFarling combining (hybrid) predictor [McFarling 1993; Evers et al.
 * 1996 — refs 1 and 5 of the paper].
 *
 * Two constituent predictors run in parallel; a PC-indexed table of 2-bit
 * "chooser" counters selects which constituent's prediction to use. The
 * chooser trains toward the constituent that was correct when they
 * disagree. This is the ad-hoc confidence mechanism the paper's
 * hybrid-selector application (Section 1, application 3) aims to improve
 * on; apps/hybrid_selector.h builds the confidence-based alternative.
 */

#ifndef CONFSIM_PREDICTOR_HYBRID_H
#define CONFSIM_PREDICTOR_HYBRID_H

#include <memory>

#include "predictor/branch_predictor.h"
#include "util/fixed_vector_table.h"
#include "util/saturating_counter.h"

namespace confsim {

/** Chooser-based combination of two predictors. */
class HybridPredictor : public BranchPredictor
{
  public:
    /**
     * @param first Constituent selected when the chooser is low.
     * @param second Constituent selected when the chooser is high.
     * @param chooser_entries Chooser table size (power of two).
     */
    HybridPredictor(std::unique_ptr<BranchPredictor> first,
                    std::unique_ptr<BranchPredictor> second,
                    std::size_t chooser_entries);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override;
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

    /** @return which constituent the chooser currently selects at @p pc:
     *  false = first, true = second. */
    bool selectsSecond(std::uint64_t pc) const;

    /** @return constituent for white-box tests. */
    const BranchPredictor &first() const { return *first_; }
    /** @return constituent for white-box tests. */
    const BranchPredictor &second() const { return *second_; }

  private:
    std::unique_ptr<BranchPredictor> first_;
    std::unique_ptr<BranchPredictor> second_;
    FixedVectorTable<SaturatingCounter> chooser_;
};

} // namespace confsim

#endif // CONFSIM_PREDICTOR_HYBRID_H
