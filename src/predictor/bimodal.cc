#include "predictor/bimodal.h"

#include "ckpt/state_helpers.h"

#include "util/bits.h"

namespace confsim {

namespace {

/** "Weakly taken" starting value for an n-bit counter: (max + 1) / 2. */
SaturatingCounter
weaklyTakenCounter(unsigned counter_bits)
{
    const auto max = static_cast<std::uint32_t>(mask(counter_bits));
    return SaturatingCounter(max, (max + 1) / 2);
}

} // namespace

BimodalPredictor::BimodalPredictor(std::size_t num_entries,
                                   unsigned counter_bits)
    : table_(num_entries, weaklyTakenCounter(counter_bits), counter_bits),
      counterBits_(counter_bits)
{}

std::uint64_t
BimodalPredictor::indexOf(std::uint64_t pc) const
{
    // Instructions are word aligned; drop the byte-offset bits.
    return pc >> 2;
}

bool
BimodalPredictor::predict(std::uint64_t pc) const
{
    return table_[indexOf(pc)].predictsTaken();
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    auto &counter = table_[indexOf(pc)];
    if (taken)
        counter.increment();
    else
        counter.decrement();
}

std::uint64_t
BimodalPredictor::storageBits() const
{
    return table_.storageBits();
}

std::string
BimodalPredictor::name() const
{
    return "bimodal-" + std::to_string(table_.size());
}

void
BimodalPredictor::reset()
{
    table_.fill(weaklyTakenCounter(counterBits_));
}


void
BimodalPredictor::saveState(StateWriter &out) const
{
    saveCounterTable(out, table_);
}

void
BimodalPredictor::loadState(StateReader &in)
{
    loadCounterTable(in, table_);
}

} // namespace confsim
