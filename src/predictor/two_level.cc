#include "predictor/two_level.h"

#include "ckpt/state_helpers.h"

#include "util/bits.h"
#include "util/status.h"

namespace confsim {

namespace {

SaturatingCounter
weaklyTakenCounter(unsigned counter_bits)
{
    const auto max = static_cast<std::uint32_t>(mask(counter_bits));
    return SaturatingCounter(max, (max + 1) / 2);
}

bool
usesPerAddressHistory(TwoLevelScheme scheme)
{
    return scheme == TwoLevelScheme::PAg || scheme == TwoLevelScheme::PAp;
}

bool
usesPerAddressPht(TwoLevelScheme scheme)
{
    return scheme == TwoLevelScheme::GAp || scheme == TwoLevelScheme::PAp;
}

} // namespace

const char *
toString(TwoLevelScheme scheme)
{
    switch (scheme) {
      case TwoLevelScheme::GAg: return "GAg";
      case TwoLevelScheme::GAp: return "GAp";
      case TwoLevelScheme::PAg: return "PAg";
      case TwoLevelScheme::PAp: return "PAp";
    }
    panic("unknown TwoLevelScheme");
}

TwoLevelPredictor::TwoLevelPredictor(TwoLevelScheme scheme,
                                     unsigned history_bits,
                                     std::size_t bhr_entries,
                                     std::size_t pht_sets,
                                     unsigned counter_bits)
    : scheme_(scheme), historyBits_(history_bits),
      counterBits_(counter_bits)
{
    if (history_bits == 0 || history_bits > 24)
        fatal("two-level history depth must be in [1, 24]");
    const std::size_t num_histories =
        usesPerAddressHistory(scheme) ? bhr_entries : 1;
    if (!isPowerOfTwo(num_histories))
        fatal("two-level BHR table size must be a power of two");
    histories_.assign(num_histories, ShiftRegister(history_bits, 0));

    const std::size_t num_phts = usesPerAddressPht(scheme) ? pht_sets : 1;
    if (!isPowerOfTwo(num_phts))
        fatal("two-level PHT set count must be a power of two");
    const std::size_t pht_entries = std::size_t{1} << history_bits;
    phts_.reserve(num_phts);
    for (std::size_t i = 0; i < num_phts; ++i) {
        phts_.emplace_back(pht_entries, weaklyTakenCounter(counter_bits),
                           counter_bits);
    }
}

const ShiftRegister &
TwoLevelPredictor::historyFor(std::uint64_t pc) const
{
    if (histories_.size() == 1)
        return histories_[0];
    return histories_[(pc >> 2) & (histories_.size() - 1)];
}

ShiftRegister &
TwoLevelPredictor::historyFor(std::uint64_t pc)
{
    return const_cast<ShiftRegister &>(
        static_cast<const TwoLevelPredictor *>(this)->historyFor(pc));
}

std::size_t
TwoLevelPredictor::phtSetFor(std::uint64_t pc) const
{
    if (phts_.size() == 1)
        return 0;
    return static_cast<std::size_t>((pc >> 2) & (phts_.size() - 1));
}

const SaturatingCounter &
TwoLevelPredictor::counterFor(std::uint64_t pc) const
{
    return phts_[phtSetFor(pc)][historyFor(pc).value()];
}

SaturatingCounter &
TwoLevelPredictor::counterFor(std::uint64_t pc)
{
    return const_cast<SaturatingCounter &>(
        static_cast<const TwoLevelPredictor *>(this)->counterFor(pc));
}

bool
TwoLevelPredictor::predict(std::uint64_t pc) const
{
    return counterFor(pc).predictsTaken();
}

void
TwoLevelPredictor::update(std::uint64_t pc, bool taken)
{
    auto &counter = counterFor(pc);
    if (taken)
        counter.increment();
    else
        counter.decrement();
    historyFor(pc).shiftIn(taken);
}

std::uint64_t
TwoLevelPredictor::storageBits() const
{
    std::uint64_t bits =
        static_cast<std::uint64_t>(histories_.size()) * historyBits_;
    for (const auto &pht : phts_)
        bits += pht.storageBits();
    return bits;
}

std::string
TwoLevelPredictor::name() const
{
    return std::string(toString(scheme_)) + "-h" +
           std::to_string(historyBits_);
}

void
TwoLevelPredictor::reset()
{
    for (auto &history : histories_)
        history.clear();
    for (auto &pht : phts_)
        pht.fill(weaklyTakenCounter(counterBits_));
}


void
TwoLevelPredictor::saveState(StateWriter &out) const
{
    out.putU64(histories_.size());
    for (const auto &history : histories_)
        saveShiftRegister(out, history);
    out.putU64(phts_.size());
    for (const auto &pht : phts_)
        saveCounterTable(out, pht);
}

void
TwoLevelPredictor::loadState(StateReader &in)
{
    in.expectU64(histories_.size(), "two-level history count");
    for (auto &history : histories_)
        loadShiftRegister(in, history);
    in.expectU64(phts_.size(), "two-level PHT count");
    for (auto &pht : phts_)
        loadCounterTable(in, pht);
}

} // namespace confsim
