#include "predictor/agree.h"

#include "ckpt/state_helpers.h"

#include "util/bits.h"
#include "util/status.h"

namespace confsim {

namespace {

/** Agree counters initialize to "weakly agree". */
SaturatingCounter
weaklyAgreeCounter(unsigned counter_bits)
{
    const auto max = static_cast<std::uint32_t>(mask(counter_bits));
    return SaturatingCounter(max, (max + 1) / 2);
}

} // namespace

AgreePredictor::AgreePredictor(std::size_t num_entries,
                               unsigned history_bits,
                               unsigned counter_bits)
    : agreeTable_(num_entries, weaklyAgreeCounter(counter_bits),
                  counter_bits),
      history_(history_bits), counterBits_(counter_bits)
{
    if (history_bits > agreeTable_.indexBits())
        fatal("agree history depth must not exceed index width");
}

std::uint64_t
AgreePredictor::indexOf(std::uint64_t pc) const
{
    const std::uint64_t pc_field =
        bitsOf(pc, agreeTable_.indexBits() + 1, 2);
    return pc_field ^ history_.value();
}

bool
AgreePredictor::biasOf(std::uint64_t pc) const
{
    const auto it = bias_.find(pc);
    // Unseen branch: predict taken (backward-taken-style optimism).
    return it == bias_.end() ? true : it->second;
}

bool
AgreePredictor::predict(std::uint64_t pc) const
{
    const bool agree = agreeTable_[indexOf(pc)].predictsTaken();
    const bool bias = biasOf(pc);
    return agree ? bias : !bias;
}

void
AgreePredictor::update(std::uint64_t pc, bool taken)
{
    // Set the bias bit at first execution.
    const auto [it, inserted] = bias_.try_emplace(pc, taken);
    const bool bias = it->second;

    auto &counter = agreeTable_[indexOf(pc)];
    if (taken == bias)
        counter.increment();
    else
        counter.decrement();
    history_.recordOutcome(taken);
    (void)inserted;
}

std::uint64_t
AgreePredictor::storageBits() const
{
    // Agree counters + history + one bias bit per static branch seen.
    return agreeTable_.storageBits() + history_.width() + bias_.size();
}

std::string
AgreePredictor::name() const
{
    return "agree-" + std::to_string(agreeTable_.size()) + "x" +
           std::to_string(counterBits_) + "b-h" +
           std::to_string(history_.width());
}

void
AgreePredictor::reset()
{
    agreeTable_.fill(weaklyAgreeCounter(counterBits_));
    history_.reset();
    bias_.clear();
}


void
AgreePredictor::saveState(StateWriter &out) const
{
    saveCounterTable(out, agreeTable_);
    out.putU64(history_.value());
    saveSortedMap(out, bias_, [](StateWriter &w, bool bias) {
        w.putBool(bias);
    });
}

void
AgreePredictor::loadState(StateReader &in)
{
    loadCounterTable(in, agreeTable_);
    history_.setValue(in.getU64());
    loadMap(in, bias_, [](StateReader &r) { return r.getBool(); });
}

} // namespace confsim
