#include "predictor/static_predictor.h"

#include "ckpt/state_helpers.h"

#include "util/status.h"

namespace confsim {

StaticPredictor::StaticPredictor(StaticPolicy policy)
    : policy_(policy)
{}

void
StaticPredictor::setTarget(std::uint64_t pc, std::uint64_t target)
{
    targets_[pc] = target;
}

bool
StaticPredictor::predict(std::uint64_t pc) const
{
    switch (policy_) {
      case StaticPolicy::AlwaysTaken:
        return true;
      case StaticPolicy::AlwaysNotTaken:
        return false;
      case StaticPolicy::BackwardTaken: {
        const auto it = targets_.find(pc);
        // Without target information, fall back to not-taken (forward
        // branches dominate static code).
        if (it == targets_.end())
            return false;
        return it->second <= pc;
      }
    }
    panic("unknown StaticPolicy");
}

void
StaticPredictor::update(std::uint64_t, bool)
{
    // Static predictors do not adapt.
}

std::uint64_t
StaticPredictor::storageBits() const
{
    return 0;
}

std::string
StaticPredictor::name() const
{
    switch (policy_) {
      case StaticPolicy::AlwaysTaken: return "static-taken";
      case StaticPolicy::AlwaysNotTaken: return "static-not-taken";
      case StaticPolicy::BackwardTaken: return "static-btfnt";
    }
    panic("unknown StaticPolicy");
}

void
StaticPredictor::reset()
{
    // Targets are program structure, not learned state; keep them.
}


void
StaticPredictor::saveState(StateWriter &out) const
{
    // Targets arrive via setTarget() as the trace is consumed, so they
    // are run state even though the policy itself never adapts.
    saveSortedMap(out, targets_, [](StateWriter &w, std::uint64_t t) {
        w.putU64(t);
    });
}

void
StaticPredictor::loadState(StateReader &in)
{
    loadMap(in, targets_, [](StateReader &r) { return r.getU64(); });
}

} // namespace confsim
