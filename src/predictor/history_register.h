/**
 * @file
 * Global branch history register (BHR).
 *
 * A thin wrapper over ShiftRegister with branch-outcome naming. Shared by
 * history-based predictors and by the simulation driver, which maintains
 * the architectural BHR and global CIR the confidence mechanisms index
 * with (paper Fig. 3).
 */

#ifndef CONFSIM_PREDICTOR_HISTORY_REGISTER_H
#define CONFSIM_PREDICTOR_HISTORY_REGISTER_H

#include "util/shift_register.h"

namespace confsim {

/** Global branch history: 1 = taken, 0 = not taken; newest bit is LSB. */
class HistoryRegister
{
  public:
    /** @param width History depth in bits (1..64). */
    explicit HistoryRegister(unsigned width)
        : reg_(width, 0)
    {}

    /** Record a resolved branch outcome. */
    void recordOutcome(bool taken) { reg_.shiftIn(taken); }

    /** @return the history pattern, right-justified. */
    std::uint64_t value() const { return reg_.value(); }

    /** Restore a value() snapshot (checkpoint resume). */
    void setValue(std::uint64_t v) { reg_.set(v); }

    /** @return history depth in bits. */
    unsigned width() const { return reg_.width(); }

    /** Clear all history. */
    void reset() { reg_.clear(); }

  private:
    ShiftRegister reg_;
};

} // namespace confsim

#endif // CONFSIM_PREDICTOR_HISTORY_REGISTER_H
