#include "predictor/perceptron.h"

#include "ckpt/state_io.h"

#include "util/bits.h"
#include "util/status.h"

namespace confsim {

PerceptronConfig
PerceptronConfig::makeSmall()
{
    PerceptronConfig c;
    c.numRows = std::size_t{1} << 7;
    c.historyBits = 12;
    return c;
}

PerceptronPredictor::PerceptronPredictor(PerceptronConfig config)
    : config_(config),
      history_(config.historyBits)
{
    if (!isPowerOfTwo(config_.numRows))
        fatal("perceptron row count must be a power of two");
    if (config_.historyBits < 1 || config_.historyBits > 64)
        fatal("perceptron history depth must be in [1, 64]");
    if (config_.weightBits < 2 || config_.weightBits > 16)
        fatal("perceptron weight width must be in [2, 16]");
    weightMax_ = static_cast<std::int32_t>(
                     mask(config_.weightBits - 1));
    weightMin_ = -weightMax_ - 1;
    weights_.assign(config_.numRows * (config_.historyBits + 1), 0);
}

std::uint64_t
PerceptronPredictor::rowOf(std::uint64_t pc) const
{
    return xorFold(pc >> 2, log2Exact(config_.numRows));
}

std::int32_t
PerceptronPredictor::weightAt(std::uint64_t row, unsigned i) const
{
    return weights_[(row & mask(log2Exact(config_.numRows))) *
                        (config_.historyBits + 1) +
                    i];
}

std::int32_t
PerceptronPredictor::clampWeight(std::int64_t w) const
{
    if (w > weightMax_)
        return weightMax_;
    if (w < weightMin_)
        return weightMin_;
    return static_cast<std::int32_t>(w);
}

std::int64_t
PerceptronPredictor::marginOf(std::uint64_t pc) const
{
    const std::size_t base = static_cast<std::size_t>(rowOf(pc)) *
                             (config_.historyBits + 1);
    // Weight 0 is the bias (an always-taken virtual history bit).
    std::int64_t sum = weights_[base];
    const std::uint64_t hist = history_.value();
    for (unsigned i = 0; i < config_.historyBits; ++i) {
        const std::int32_t w = weights_[base + 1 + i];
        sum += bitOf(hist, i) != 0 ? w : -w;
    }
    return sum;
}

bool
PerceptronPredictor::predict(std::uint64_t pc) const
{
    return marginOf(pc) >= 0;
}

bool
PerceptronPredictor::wouldTrain(std::uint64_t pc, bool taken) const
{
    const std::int64_t margin = marginOf(pc);
    const bool predicted = margin >= 0;
    const std::int64_t magnitude = margin < 0 ? -margin : margin;
    return predicted != taken || magnitude <= theta();
}

void
PerceptronPredictor::update(std::uint64_t pc, bool taken)
{
    if (wouldTrain(pc, taken)) {
        const std::size_t base = static_cast<std::size_t>(rowOf(pc)) *
                                 (config_.historyBits + 1);
        const std::uint64_t hist = history_.value();
        weights_[base] = clampWeight(
            static_cast<std::int64_t>(weights_[base]) + (taken ? 1 : -1));
        for (unsigned i = 0; i < config_.historyBits; ++i) {
            const bool agrees = (bitOf(hist, i) != 0) == taken;
            weights_[base + 1 + i] = clampWeight(
                static_cast<std::int64_t>(weights_[base + 1 + i]) +
                (agrees ? 1 : -1));
        }
    }
    history_.recordOutcome(taken);
}

std::uint64_t
PerceptronPredictor::storageBits() const
{
    return static_cast<std::uint64_t>(weights_.size()) *
               config_.weightBits +
           history_.width();
}

std::string
PerceptronPredictor::name() const
{
    return "perceptron-" + std::to_string(config_.numRows) + "x" +
           std::to_string(config_.historyBits) + "h";
}

void
PerceptronPredictor::reset()
{
    weights_.assign(weights_.size(), 0);
    history_.reset();
}

void
PerceptronPredictor::saveState(StateWriter &out) const
{
    out.putU64(weights_.size());
    for (const std::int32_t w : weights_)
        out.putU32(static_cast<std::uint32_t>(w));
    out.putU64(history_.value());
}

void
PerceptronPredictor::loadState(StateReader &in)
{
    in.expectU64(weights_.size(), "perceptron weight count");
    for (std::int32_t &w : weights_)
        w = static_cast<std::int32_t>(in.getU32());
    history_.setValue(in.getU64());
}

} // namespace confsim
