/**
 * @file
 * Static (non-adaptive) predictors: always-taken, always-not-taken, and
 * backward-taken/forward-not-taken (BTFNT). These bound the dynamic
 * predictors from below and support the prediction-reverser discussion
 * (the S-1 and PowerPC 601 static schemes cited in Section 1.1).
 */

#ifndef CONFSIM_PREDICTOR_STATIC_PREDICTOR_H
#define CONFSIM_PREDICTOR_STATIC_PREDICTOR_H

#include <unordered_map>

#include "predictor/branch_predictor.h"

namespace confsim {

/** Static prediction policy. */
enum class StaticPolicy
{
    AlwaysTaken,
    AlwaysNotTaken,
    BackwardTaken, //!< BTFNT; requires targets via setTarget()
};

/** Stateless direction predictor with a fixed policy. */
class StaticPredictor : public BranchPredictor
{
  public:
    explicit StaticPredictor(StaticPolicy policy);

    /**
     * Provide the taken-path target for @p pc, needed by the BTFNT
     * policy to decide direction (backward target => predict taken).
     */
    void setTarget(std::uint64_t pc, std::uint64_t target);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    std::uint64_t storageBits() const override;
    std::string name() const override;
    void reset() override;

    bool checkpointable() const override { return true; }
    void saveState(StateWriter &out) const override;
    void loadState(StateReader &in) override;

  private:
    StaticPolicy policy_;
    std::unordered_map<std::uint64_t, std::uint64_t> targets_;
};

} // namespace confsim

#endif // CONFSIM_PREDICTOR_STATIC_PREDICTOR_H
